//===- examples/quickstart.cpp - The paper's overview example ----------------===//
//
// Quickstart: migrate the course-management program of the paper's Sec. 2
// from the inline-picture schema to the refactored schema with a separate
// Picture table, using the public API end to end:
//
//   parseUnit -> synthesize -> print the migrated program.
//
//===----------------------------------------------------------------------===//

#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace migrator;

int main() {
  const char *Text = R"(
schema CourseDB {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, IPic: binary)
  table TA(TaId: int, TName: string, TPic: binary)
}
schema CourseDBNew {
  table Class(ClassId: int, InstId: int, TaId: int)
  table Instructor(InstId: int, IName: string, PicId: int)
  table TA(TaId: int, TName: string, PicId: int)
  table Picture(PicId: int, Pic: binary)
}
program CourseApp on CourseDB {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Instructor values (InstId: id, IName: name, IPic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, IPic from Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into TA values (TaId: id, TName: name, TPic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, TPic from TA where TaId = id;
  }
}
)";

  // 1. Parse the schemas and the original program.
  std::variant<ParseOutput, ParseError> Parsed = parseUnit(Text);
  if (auto *E = std::get_if<ParseError>(&Parsed)) {
    std::fprintf(stderr, "parse error: %s\n", E->str().c_str());
    return 1;
  }
  ParseOutput &Out = std::get<ParseOutput>(Parsed);
  const Schema &Source = *Out.findSchema("CourseDB");
  const Schema &Target = *Out.findSchema("CourseDBNew");
  const Program &Prog = Out.findProgram("CourseApp")->Prog;

  std::printf("Source schema:\n%s\n", Source.str().c_str());
  std::printf("Target schema:\n%s\n", Target.str().c_str());

  // 2. Synthesize the migrated program.
  SynthResult R = synthesize(Source, Prog, Target);
  if (!R.succeeded()) {
    std::fprintf(stderr, "synthesis failed (VCs tried: %zu)\n",
                 R.Stats.NumVcs);
    return 1;
  }

  // 3. Report.
  std::printf("Synthesized in %.2fs (%zu value correspondence(s), "
              "%llu candidate(s), sketch space %.0f):\n\n",
              R.Stats.TotalTimeSec, R.Stats.NumVcs,
              static_cast<unsigned long long>(R.Stats.Iters),
              R.Stats.SketchSpace);
  std::printf("%s", R.Prog->str().c_str());
  return 0;
}
