//===- examples/dump_benchmarks.cpp - Export the benchmark corpus ------------===//
//
// Writes every Table 1 benchmark as a surface-syntax `.dbp` file (schema,
// target schema, and program) into a directory, so the corpus can be
// inspected, diffed, or fed back through migrate_tool.
//
// Usage: dump_benchmarks [output-dir]   (default: ./benchmarks)
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

using namespace migrator;

int main(int Argc, char **Argv) {
  std::filesystem::path Dir = Argc > 1 ? Argv[1] : "benchmarks";
  std::error_code Ec;
  std::filesystem::create_directories(Dir, Ec);
  if (Ec) {
    std::fprintf(stderr, "error: cannot create '%s': %s\n",
                 Dir.string().c_str(), Ec.message().c_str());
    return 1;
  }

  for (const std::string &Name : allBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);
    std::filesystem::path File = Dir / (Name + ".dbp");
    std::ofstream Out(File);
    if (!Out) {
      std::fprintf(stderr, "error: cannot write '%s'\n",
                   File.string().c_str());
      return 1;
    }
    Out << "// " << B.Name << " — " << B.Description << " ("
        << B.Category << ")\n"
        << "// migrate with:\n"
        << "//   migrate_tool " << File.filename().string() << " App "
        << B.Source.getName() << " " << B.Target.getName() << "\n\n";
    Out << B.Source.str() << "\n" << B.Target.str() << "\n";
    Out << "program App on " << B.Source.getName() << " {\n"
        << B.Prog.str() << "}\n";
    std::printf("wrote %s (%zu functions)\n", File.string().c_str(),
                B.numFuncs());
  }
  return 0;
}
