//===- examples/migrate_tool.cpp - The Migrator command-line tool ------------===//
//
// The push-button tool the paper describes: given a file declaring the
// source schema, the target schema, and the original program, synthesize
// and print the migrated program.
//
// Usage:
//   migrate_tool <file> <program-name> <source-schema> <target-schema>
//                [budget-seconds] [--sql] [--mode=mfi|enum|cegis]
//
// With --sql, the migrated program is printed as executable SQL (MySQL
// dialect) instead of surface syntax; --mode selects the sketch-completion
// strategy (default mfi). Any `workload` blocks bound to the program are
// replayed against both versions after synthesis. With no arguments, prints
// usage and a ready-to-run input template.
//
//===----------------------------------------------------------------------===//

#include "ast/Simplify.h"
#include "relational/ResultTable.h"
#include "relational/SchemaDiff.h"
#include "ast/SqlPrinter.h"
#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

using namespace migrator;

namespace {

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file> <program-name> <source-schema> "
               "<target-schema> [budget-seconds]\n\n"
               "input template:\n"
               "  schema Old { table T(id: int, name: string) }\n"
               "  schema New { table T(id: int, fullName: string) }\n"
               "  program App on Old {\n"
               "    update addT(i: int, n: string) {\n"
               "      insert into T values (id: i, name: n);\n"
               "    }\n"
               "    query getT(i: int) { select name from T where id = i; }\n"
               "  }\n\n"
               "then: %s input.dbp App Old New\n",
               Argv0, Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 5)
    return usage(Argv[0]);

  std::ifstream In(Argv[1]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  std::variant<ParseOutput, ParseError> Parsed = parseUnit(Buf.str());
  if (auto *E = std::get_if<ParseError>(&Parsed)) {
    std::fprintf(stderr, "%s:%s\n", Argv[1], E->str().c_str());
    return 1;
  }
  ParseOutput &Out = std::get<ParseOutput>(Parsed);

  const NamedProgram *NP = Out.findProgram(Argv[2]);
  const Schema *Source = Out.findSchema(Argv[3]);
  const Schema *Target = Out.findSchema(Argv[4]);
  if (!NP || !Source || !Target) {
    std::fprintf(stderr, "error: program or schema not found in '%s'\n",
                 Argv[1]);
    return 1;
  }

  SynthOptions Opts;
  bool EmitSql = false;
  for (int A = 5; A < Argc; ++A) {
    std::string Arg = Argv[A];
    if (Arg == "--sql") {
      EmitSql = true;
    } else if (Arg == "--mode=mfi") {
      Opts.Solver.TheMode = SolverOptions::Mode::Mfi;
    } else if (Arg == "--mode=enum") {
      Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
    } else if (Arg == "--mode=cegis") {
      Opts.Solver.TheMode = SolverOptions::Mode::Cegis;
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return 2;
    } else {
      Opts.TimeBudgetSec = std::atof(Arg.c_str());
    }
  }

  std::fprintf(stderr, "migrating '%s' from schema '%s' to schema '%s'\n",
               Argv[2], Argv[3], Argv[4]);
  std::vector<SchemaChange> Changes = diffSchemas(*Source, *Target);
  if (!Changes.empty())
    std::fprintf(stderr, "detected schema changes:\n%s",
                 diffReport(Changes).c_str());
  SynthResult R = synthesize(*Source, NP->Prog, *Target, Opts);
  if (!R.succeeded()) {
    std::fprintf(stderr,
                 "synthesis failed after %.1fs (%zu correspondences, %llu "
                 "candidates)%s\n",
                 R.Stats.TotalTimeSec, R.Stats.NumVcs,
                 static_cast<unsigned long long>(R.Stats.Iters),
                 R.Stats.TimedOut ? " [budget exhausted]" : "");
    return 1;
  }
  std::fprintf(stderr,
               "done in %.1fs (%zu correspondence(s), %llu candidate(s))\n",
               R.Stats.TotalTimeSec, R.Stats.NumVcs,
               static_cast<unsigned long long>(R.Stats.Iters));
  Program Final = simplifyProgram(*R.Prog);

  // Replay any workloads declared for this program against both versions.
  for (const NamedWorkload *W : Out.workloadsFor(Argv[2])) {
    std::optional<ResultTable> OldR = runSequence(NP->Prog, *Source, W->Seq);
    std::optional<ResultTable> NewR = runSequence(Final, *Target, W->Seq);
    bool Ok = OldR && NewR && resultsEquivalent(*OldR, *NewR);
    std::fprintf(stderr, "workload %s: %s\n", W->Name.c_str(),
                 Ok ? "results agree" : "RESULTS DIFFER");
    if (!Ok)
      return 1;
  }
  if (EmitSql) {
    std::printf("%s\n%s", sqlSchema(*Target).c_str(),
                sqlProgram(Final, *Target).c_str());
    return 0;
  }
  std::printf("program %s_migrated on %s {\n", Argv[2], Argv[4]);
  std::printf("%s", Final.str().c_str());
  std::printf("}\n");
  return 0;
}
