//===- examples/migrate_tool.cpp - The Migrator command-line tool ------------===//
//
// The push-button tool the paper describes: given a file declaring the
// source schema, the target schema, and the original program, synthesize
// and print the migrated program.
//
// Usage:
//   migrate_tool <file> <program-name> <source-schema> <target-schema>
//                [budget-seconds] [--sql] [--mode=mfi|enum|cegis]
//                [--jobs=N] [--batch=N] [--deterministic] [--no-src-cache]
//                [--no-index] [--no-cow] [--no-corpus] [--no-incremental]
//                [--dump-cnf=<dir>]
//                [--trace=<file.json>] [--stats] [--stats-json=<file>]
//                [--profile-locks] [--flight-dump=<file.json>]
//
// With --sql, the migrated program is printed as executable SQL (MySQL
// dialect) instead of surface syntax; --mode selects the sketch-completion
// strategy (default mfi). Any `workload` blocks bound to the program are
// replayed against both versions after synthesis. With no arguments, prints
// usage and a ready-to-run input template.
//
// Parallel engine (see docs/PERFORMANCE.md): --jobs=N runs a sketch
// portfolio over an N-worker pool, --batch=N tests N candidates per SAT
// round, --deterministic makes the parallel result byte-identical to the
// sequential one, and --no-src-cache disables the cross-candidate
// source-result cache. --no-index (or MIGRATOR_NO_INDEX=1) falls back to
// the naive nested-loop join engine — the differential-testing oracle; the
// synthesized program is identical either way.
//
// State engine (see docs/PERFORMANCE.md): --no-cow (or MIGRATOR_NO_COW=1)
// replaces copy-on-write table snapshots with eager deep copies — the
// differential oracle for the sharing machinery, identical output;
// --no-corpus disables failure-directed candidate screening (replaying
// recent killer sequences before the full bounded enumeration).
//
// Solver engine (see docs/PERFORMANCE.md): --no-incremental (or
// MIGRATOR_NO_INCREMENTAL=1) replaces the persistent incremental SAT
// engine (assumption solving, clause learning across queries, reduceDB)
// with a fresh scratch solver per encoding — the differential oracle for
// the solver machinery; the synthesized program is identical either way.
// --dump-cnf=<dir> writes each sketch's standalone CNF encoding to
// <dir>/sketch_<n>.cnf in DIMACS format for offline analysis.
//
// Observability (see docs/OBSERVABILITY.md): --trace=<file> writes a Chrome
// trace_event JSON of the run (load into chrome://tracing or Perfetto);
// the MIGRATOR_TRACE environment variable does the same when the flag is
// absent. --stats prints the run's pipeline metrics to stderr; --stats-json
// writes them to a file as JSON. --profile-locks attributes wait/hold time
// to named lock sites and prints the contention table (ranked by total
// wait) to stderr; the same data rides in --stats / --stats-json as
// lock.<site>.* metrics. --flight-dump=<file> keeps a bounded per-thread
// ring of recent trace events and writes it at exit — and, best-effort,
// on a fatal signal — so wedged or crashed parallel runs stay diagnosable.
//
//===----------------------------------------------------------------------===//

#include "ast/Simplify.h"
#include "eval/Plan.h"
#include "obs/Flight.h"
#include "obs/LockProfile.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "relational/ResultTable.h"
#include "relational/SchemaDiff.h"
#include "relational/Table.h"
#include "ast/SqlPrinter.h"
#include "parse/Parser.h"
#include "sat/Solver.h"
#include "synth/Encoder.h"
#include "synth/Synthesizer.h"

#include <algorithm>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include <fcntl.h>

using namespace migrator;

namespace {

/// Crash-path flight dump: the fd is opened before synthesis starts so the
/// handler never allocates or calls open(2). -1 until --flight-dump is
/// parsed.
int FlightCrashFd = -1;

void flightSignalHandler(int Sig) {
  obs::flightDumpToFd(FlightCrashFd >= 0 ? FlightCrashFd : 2);
  std::signal(Sig, SIG_DFL);
  std::raise(Sig);
}

void installFlightSignalHandlers() {
  for (int Sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
    std::signal(Sig, flightSignalHandler);
}

int usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s <file> <program-name> <source-schema> "
               "<target-schema> [budget-seconds]\n\n"
               "input template:\n"
               "  schema Old { table T(id: int, name: string) }\n"
               "  schema New { table T(id: int, fullName: string) }\n"
               "  program App on Old {\n"
               "    update addT(i: int, n: string) {\n"
               "      insert into T values (id: i, name: n);\n"
               "    }\n"
               "    query getT(i: int) { select name from T where id = i; }\n"
               "  }\n\n"
               "then: %s input.dbp App Old New\n",
               Argv0, Argv0);
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  if (Argc < 5)
    return usage(Argv[0]);

  std::ifstream In(Argv[1]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open '%s'\n", Argv[1]);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();

  std::variant<ParseOutput, ParseError> Parsed = parseUnit(Buf.str());
  if (auto *E = std::get_if<ParseError>(&Parsed)) {
    std::fprintf(stderr, "%s:%s\n", Argv[1], E->str().c_str());
    return 1;
  }
  ParseOutput &Out = std::get<ParseOutput>(Parsed);

  const NamedProgram *NP = Out.findProgram(Argv[2]);
  const Schema *Source = Out.findSchema(Argv[3]);
  const Schema *Target = Out.findSchema(Argv[4]);
  if (!NP || !Source || !Target) {
    std::fprintf(stderr, "error: program or schema not found in '%s'\n",
                 Argv[1]);
    return 1;
  }

  SynthOptions Opts;
  bool EmitSql = false;
  bool PrintStats = false;
  bool ProfileLocks = false;
  std::string TracePath, StatsJsonPath, FlightPath;
  for (int A = 5; A < Argc; ++A) {
    std::string Arg = Argv[A];
    if (Arg == "--sql") {
      EmitSql = true;
    } else if (Arg == "--mode=mfi") {
      Opts.Solver.TheMode = SolverOptions::Mode::Mfi;
    } else if (Arg == "--mode=enum") {
      Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
    } else if (Arg == "--mode=cegis") {
      Opts.Solver.TheMode = SolverOptions::Mode::Cegis;
    } else if (Arg.rfind("--jobs=", 0) == 0) {
      Opts.Jobs = static_cast<unsigned>(
          std::max(1L, std::atol(Arg.c_str() + 7)));
    } else if (Arg.rfind("--batch=", 0) == 0) {
      Opts.Solver.Batch = static_cast<unsigned>(
          std::max(1L, std::atol(Arg.c_str() + 8)));
    } else if (Arg == "--deterministic") {
      Opts.Deterministic = true;
    } else if (Arg == "--no-src-cache") {
      Opts.UseSourceCache = false;
    } else if (Arg == "--no-index") {
      setEvalIndexEnabled(false);
    } else if (Arg == "--no-cow") {
      setTableCowEnabled(false);
    } else if (Arg == "--no-corpus") {
      Opts.Solver.UseFailureCorpus = false;
    } else if (Arg == "--no-incremental") {
      sat::setSatIncrementalEnabled(false);
    } else if (Arg.rfind("--dump-cnf=", 0) == 0) {
      setSketchCnfDumpDir(Arg.substr(11));
    } else if (Arg.rfind("--trace=", 0) == 0) {
      TracePath = Arg.substr(8);
    } else if (Arg == "--stats") {
      PrintStats = true;
    } else if (Arg.rfind("--stats-json=", 0) == 0) {
      StatsJsonPath = Arg.substr(13);
    } else if (Arg == "--profile-locks") {
      ProfileLocks = true;
    } else if (Arg.rfind("--flight-dump=", 0) == 0) {
      FlightPath = Arg.substr(14);
    } else if (!Arg.empty() && Arg[0] == '-') {
      std::fprintf(stderr, "error: unknown flag '%s'\n", Arg.c_str());
      return 2;
    } else {
      Opts.TimeBudgetSec = std::atof(Arg.c_str());
    }
  }

  // Environment override: MIGRATOR_TRACE=<file> enables tracing without
  // touching the command line (handy under test harnesses).
  if (TracePath.empty())
    if (const char *Env = std::getenv("MIGRATOR_TRACE"))
      TracePath = Env;

  if (!TracePath.empty())
    obs::startTracing();
  if (PrintStats || !StatsJsonPath.empty() || !TracePath.empty())
    obs::setMetricsEnabled(true);
  if (ProfileLocks)
    obs::setLockProfilingEnabled(true);
  if (!FlightPath.empty()) {
    obs::setFlightRecorderEnabled(true);
    // The crash path needs an already-open descriptor (open(2) is off the
    // menu inside a signal handler). The clean path rewrites it at exit.
    FlightCrashFd = ::open(FlightPath.c_str(),
                           O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (FlightCrashFd < 0)
      std::fprintf(stderr, "warning: cannot open flight-dump file '%s'\n",
                   FlightPath.c_str());
    installFlightSignalHandlers();
  }

  std::fprintf(stderr, "migrating '%s' from schema '%s' to schema '%s'\n",
               Argv[2], Argv[3], Argv[4]);
  std::vector<SchemaChange> Changes = diffSchemas(*Source, *Target);
  if (!Changes.empty())
    std::fprintf(stderr, "detected schema changes:\n%s",
                 diffReport(Changes).c_str());
  SynthResult R = synthesize(*Source, NP->Prog, *Target, Opts);

  // Export observability artifacts on success and failure alike — failing
  // runs are the ones most worth profiling.
  if (!TracePath.empty()) {
    obs::stopTracing();
    if (obs::writeTraceJson(TracePath))
      std::fprintf(stderr, "trace written to %s (%zu events)\n",
                   TracePath.c_str(), obs::traceEvents().size());
    else
      std::fprintf(stderr, "warning: cannot write trace to '%s'\n",
                   TracePath.c_str());
  }
  if (PrintStats)
    std::fprintf(stderr, "--- pipeline metrics ---\n%s",
                 R.Metrics.str().c_str());
  if (ProfileLocks)
    std::fprintf(stderr, "--- lock contention (ranked by wait) ---\n%s",
                 obs::lockProfileReport().c_str());
  if (!FlightPath.empty()) {
    // Clean-path dump supersedes whatever the crash fd would have held.
    if (obs::writeFlightJson(FlightPath))
      std::fprintf(stderr, "flight recorder written to %s\n",
                   FlightPath.c_str());
    else
      std::fprintf(stderr, "warning: cannot write flight dump to '%s'\n",
                   FlightPath.c_str());
  }
  if (!StatsJsonPath.empty()) {
    std::ofstream StatsOut(StatsJsonPath);
    if (StatsOut)
      StatsOut << R.Metrics.json() << "\n";
    else
      std::fprintf(stderr, "warning: cannot write stats to '%s'\n",
                   StatsJsonPath.c_str());
  }

  if (!R.succeeded()) {
    std::fprintf(stderr,
                 "synthesis failed after %.1fs (%zu correspondences, %llu "
                 "candidates)%s\n",
                 R.Stats.TotalTimeSec, R.Stats.NumVcs,
                 static_cast<unsigned long long>(R.Stats.Iters),
                 R.Stats.TimedOut ? " [budget exhausted]" : "");
    return 1;
  }
  std::fprintf(stderr,
               "done in %.1fs (%zu correspondence(s), %llu candidate(s))\n",
               R.Stats.TotalTimeSec, R.Stats.NumVcs,
               static_cast<unsigned long long>(R.Stats.Iters));
  Program Final = simplifyProgram(*R.Prog);

  // Replay any workloads declared for this program against both versions.
  for (const NamedWorkload *W : Out.workloadsFor(Argv[2])) {
    std::optional<ResultTable> OldR = runSequence(NP->Prog, *Source, W->Seq);
    std::optional<ResultTable> NewR = runSequence(Final, *Target, W->Seq);
    bool Ok = OldR && NewR && resultsEquivalent(*OldR, *NewR);
    std::fprintf(stderr, "workload %s: %s\n", W->Name.c_str(),
                 Ok ? "results agree" : "RESULTS DIFFER");
    if (!Ok)
      return 1;
  }
  if (EmitSql) {
    std::printf("%s\n%s", sqlSchema(*Target).c_str(),
                sqlProgram(Final, *Target).c_str());
    return 0;
  }
  std::printf("program %s_migrated on %s {\n", Argv[2], Argv[4]);
  std::printf("%s", Final.str().c_str());
  std::printf("}\n");
  return 0;
}
