//===- examples/trace_check.cpp - Validate an emitted trace file -------------===//
//
// Smoke checker for the observability exporters: confirms that a file
// produced by `migrate_tool --trace=...`, `--stats-json=...`, or
// `--flight-dump=...` is a syntactically well-formed JSON document, and
// that it has the structure the flag promised — the Chrome trace_event
// envelope, per-worker lanes, the metrics object, or the flight-recorder
// dump shape.
//
// Usage:
//   trace_check <file.json>                  # well-formed JSON?
//   trace_check --trace <file.json>          # ... plus trace_event structure
//   trace_check --expect NAME <file.json>    # ... plus an event named NAME
//   trace_check --lanes <file.json>          # ... plus named worker lanes
//   trace_check --min-tids N <file.json>     # ... plus >= N distinct tids
//   trace_check --stats <file.json>          # stats-json structure
//   trace_check --expect-counter NAME <f>    # ... plus counter NAME
//   trace_check --expect-hist NAME <f>       # ... plus histogram NAME
//   trace_check --flight <file.json>         # flight-dump structure
//
// Exit code 0 on success; 1 with a diagnostic on stderr otherwise. Used by
// scripts/check.sh after its migrate_tool smoke runs.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

using namespace migrator;

namespace {

/// Distinct `"tid":<N>` values in \p Text (string-level, good enough for
/// exporter output where the key is always rendered the same way).
size_t countDistinctTids(const std::string &Text) {
  std::set<long> Tids;
  const std::string Key = "\"tid\":";
  for (size_t Pos = Text.find(Key); Pos != std::string::npos;
       Pos = Text.find(Key, Pos + Key.size()))
    Tids.insert(std::atol(Text.c_str() + Pos + Key.size()));
  return Tids.size();
}

int fail(const char *Path, const std::string &Why) {
  std::fprintf(stderr, "trace_check: '%s' %s\n", Path, Why.c_str());
  return 1;
}

} // namespace

int main(int Argc, char **Argv) {
  bool CheckTrace = false;
  bool CheckLanes = false;
  bool CheckStats = false;
  bool CheckFlight = false;
  size_t MinTids = 0;
  std::vector<std::string> Expect;
  std::vector<std::string> ExpectCounters;
  std::vector<std::string> ExpectHists;
  const char *Path = nullptr;

  for (int A = 1; A < Argc; ++A) {
    if (std::strcmp(Argv[A], "--trace") == 0) {
      CheckTrace = true;
    } else if (std::strcmp(Argv[A], "--expect") == 0 && A + 1 < Argc) {
      Expect.push_back(Argv[++A]);
      CheckTrace = true;
    } else if (std::strcmp(Argv[A], "--lanes") == 0) {
      CheckLanes = CheckTrace = true;
    } else if (std::strcmp(Argv[A], "--min-tids") == 0 && A + 1 < Argc) {
      MinTids = static_cast<size_t>(std::atol(Argv[++A]));
      CheckTrace = true;
    } else if (std::strcmp(Argv[A], "--stats") == 0) {
      CheckStats = true;
    } else if (std::strcmp(Argv[A], "--expect-counter") == 0 && A + 1 < Argc) {
      ExpectCounters.push_back(Argv[++A]);
      CheckStats = true;
    } else if (std::strcmp(Argv[A], "--expect-hist") == 0 && A + 1 < Argc) {
      ExpectHists.push_back(Argv[++A]);
      CheckStats = true;
    } else if (std::strcmp(Argv[A], "--flight") == 0) {
      CheckFlight = true;
    } else {
      Path = Argv[A];
    }
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: %s [--trace] [--expect NAME]... [--lanes] "
                 "[--min-tids N] [--stats] [--expect-counter NAME]... "
                 "[--expect-hist NAME]... [--flight] <file.json>\n",
                 Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  if (Text.empty())
    return fail(Path, "is empty");

  std::string Error;
  if (!obs::validateJson(Text, &Error))
    return fail(Path, "is not valid JSON: " + Error);

  if (CheckTrace) {
    // Structural checks, string-level on purpose: the consumers (Chrome,
    // Perfetto) only need the envelope, and validateJson already proved
    // syntax. An empty traceEvents array is a failure — a smoke run must
    // record something.
    if (Text.find("\"traceEvents\"") == std::string::npos)
      return fail(Path, "has no \"traceEvents\" key — not a Chrome trace");
    if (Text.find("\"ph\"") == std::string::npos)
      return fail(Path, "contains no events");
    for (const std::string &Name : Expect) {
      std::string Needle = "\"name\":" + obs::jsonString(Name);
      if (Text.find(Needle) == std::string::npos)
        return fail(Path, "has no event named '" + Name + "'");
    }
    if (CheckLanes) {
      // A parallel run must label its worker lanes: thread_name metadata
      // events with the pool's lane-name convention.
      if (Text.find("\"name\":\"thread_name\",\"ph\":\"M\"") ==
          std::string::npos)
        return fail(Path, "has no thread_name metadata events (--lanes)");
      if (Text.find("pool-worker-") == std::string::npos)
        return fail(Path, "has no pool-worker-* lane names (--lanes)");
    }
    if (MinTids > 0) {
      size_t Tids = countDistinctTids(Text);
      if (Tids < MinTids)
        return fail(Path, "has events on " + std::to_string(Tids) +
                              " thread(s), expected >= " +
                              std::to_string(MinTids));
    }
  }

  if (CheckStats) {
    if (Text.find("\"counters\"") == std::string::npos ||
        Text.find("\"histograms\"") == std::string::npos)
      return fail(Path, "lacks \"counters\"/\"histograms\" — not a "
                        "stats-json dump");
    for (const std::string &Name : ExpectCounters) {
      std::string Needle = obs::jsonString(Name) + ":";
      if (Text.find(Needle) == std::string::npos)
        return fail(Path, "has no counter named '" + Name + "'");
    }
    for (const std::string &Name : ExpectHists) {
      std::string Needle = obs::jsonString(Name) + ":{\"count\"";
      if (Text.find(Needle) == std::string::npos)
        return fail(Path, "has no histogram named '" + Name + "'");
    }
  }

  if (CheckFlight) {
    if (Text.find("\"flightLanes\"") == std::string::npos)
      return fail(Path, "has no \"flightLanes\" key — not a flight dump");
    if (Text.find("\"ph\"") == std::string::npos)
      return fail(Path, "contains no flight events");
    if (Text.find("\"dropped\"") == std::string::npos)
      return fail(Path, "flight lanes lack \"dropped\" counts");
  }

  std::printf("trace_check: %s OK (%zu bytes)\n", Path, Text.size());
  return 0;
}
