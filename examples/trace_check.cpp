//===- examples/trace_check.cpp - Validate an emitted trace file -------------===//
//
// Smoke checker for the observability exporters: confirms that a file
// produced by `migrate_tool --trace=...` (or --stats-json=...) is a
// syntactically well-formed JSON document, and — for traces — that it has
// the Chrome trace_event envelope ("traceEvents" array) and at least the
// expected top-level pipeline spans.
//
// Usage:
//   trace_check <file.json>               # well-formed JSON?
//   trace_check --trace <file.json>       # ... plus trace_event structure
//   trace_check --expect NAME <file.json> # ... plus an event named NAME
//
// Exit code 0 on success; 1 with a diagnostic on stderr otherwise. Used by
// scripts/check.sh after its migrate_tool smoke run.
//
//===----------------------------------------------------------------------===//

#include "obs/Json.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace migrator;

int main(int Argc, char **Argv) {
  bool CheckTrace = false;
  std::vector<std::string> Expect;
  const char *Path = nullptr;

  for (int A = 1; A < Argc; ++A) {
    if (std::strcmp(Argv[A], "--trace") == 0) {
      CheckTrace = true;
    } else if (std::strcmp(Argv[A], "--expect") == 0 && A + 1 < Argc) {
      Expect.push_back(Argv[++A]);
      CheckTrace = true;
    } else {
      Path = Argv[A];
    }
  }
  if (!Path) {
    std::fprintf(stderr,
                 "usage: %s [--trace] [--expect NAME]... <file.json>\n",
                 Argv[0]);
    return 2;
  }

  std::ifstream In(Path);
  if (!In) {
    std::fprintf(stderr, "trace_check: cannot open '%s'\n", Path);
    return 1;
  }
  std::ostringstream Buf;
  Buf << In.rdbuf();
  std::string Text = Buf.str();

  if (Text.empty()) {
    std::fprintf(stderr, "trace_check: '%s' is empty\n", Path);
    return 1;
  }

  std::string Error;
  if (!obs::validateJson(Text, &Error)) {
    std::fprintf(stderr, "trace_check: '%s' is not valid JSON: %s\n", Path,
                 Error.c_str());
    return 1;
  }

  if (CheckTrace) {
    // Structural checks, string-level on purpose: the consumers (Chrome,
    // Perfetto) only need the envelope, and validateJson already proved
    // syntax. An empty traceEvents array is a failure — a smoke run must
    // record something.
    if (Text.find("\"traceEvents\"") == std::string::npos) {
      std::fprintf(stderr,
                   "trace_check: '%s' has no \"traceEvents\" key — not a "
                   "Chrome trace\n",
                   Path);
      return 1;
    }
    if (Text.find("\"ph\"") == std::string::npos) {
      std::fprintf(stderr, "trace_check: '%s' contains no events\n", Path);
      return 1;
    }
    for (const std::string &Name : Expect) {
      std::string Needle = "\"name\":" + obs::jsonString(Name);
      if (Text.find(Needle) == std::string::npos) {
        std::fprintf(stderr,
                     "trace_check: '%s' has no event named '%s'\n", Path,
                     Name.c_str());
        return 1;
      }
    }
  }

  std::printf("trace_check: %s OK (%zu bytes)\n", Path, Text.size());
  return 0;
}
