//===- examples/pipeline_tour.cpp - A tour of the synthesis pipeline --------===//
//
// Walks the three pipeline stages by hand on a merge-tables refactoring
// (the Oracle-1 scenario): enumerate value correspondences, generate the
// program sketch for the best one, and complete the sketch — printing the
// intermediate artifacts the paper's Fig. 1 describes.
//
//===----------------------------------------------------------------------===//

#include "ast/Analysis.h"
#include "parse/Parser.h"
#include "sketch/SketchGen.h"
#include "synth/SketchSolver.h"
#include "vc/VcEnumerator.h"

#include <cstdio>

using namespace migrator;

int main() {
  const char *Text = R"(
schema HrDB {
  table Person(pid: int, firstName: string, lastName: string, phone: string)
  table PersonDetail(pid: int, street: string, city: string, remarkContent: string)
}
schema HrDBNew {
  table Person(pid: int, firstName: string, lastName: string, phone: string,
               street: string, city: string)
}
program HrApp on HrDB {
  update addPerson(p: int, fn: string, ln: string, ph: string, st: string,
                   ct: string, rm: string) {
    insert into Person join PersonDetail values (pid: p, firstName: fn,
      lastName: ln, phone: ph, street: st, city: ct, remarkContent: rm);
  }
  update removePerson(p: int) {
    delete [Person, PersonDetail] from Person join PersonDetail where pid = p;
  }
  query getPerson(p: int) {
    select firstName, lastName, phone from Person where pid = p;
  }
  query getAddress(p: int) {
    select street, city from PersonDetail where pid = p;
  }
}
)";

  ParseOutput Out = std::get<ParseOutput>(parseUnit(Text));
  const Schema &Source = *Out.findSchema("HrDB");
  const Schema &Target = *Out.findSchema("HrDBNew");
  const Program &Prog = Out.findProgram("HrApp")->Prog;

  // --- Stage 1: value correspondence enumeration (Sec. 4.2) ---
  std::set<QualifiedAttr> Queried = collectQueriedAttrs(Prog, Source);
  std::printf("Queried source attributes (hard constraints):\n");
  for (const QualifiedAttr &A : Queried)
    std::printf("  %s\n", A.str().c_str());

  VcEnumerator Vcs(Source, Target, Queried);
  std::optional<ValueCorrespondence> Phi = Vcs.next();
  if (!Phi) {
    std::fprintf(stderr, "no feasible value correspondence\n");
    return 1;
  }
  std::printf("\nBest value correspondence (weight %llu):\n%s",
              static_cast<unsigned long long>(Vcs.lastWeight()),
              Phi->str().c_str());
  std::printf("(attributes with no line above — e.g. the dropped "
              "remarkContent — have empty images)\n");

  // --- Stage 2: sketch generation (Sec. 4.3) ---
  std::optional<Sketch> Sk = generateSketch(Prog, Source, Target, *Phi);
  if (!Sk) {
    std::fprintf(stderr, "the correspondence cannot support the program\n");
    return 1;
  }
  std::printf("\nGenerated sketch (%zu holes, %.0f completions):\n%s",
              Sk->getNumHoles(), Sk->spaceSize(), Sk->str().c_str());

  // --- Stage 3: sketch completion (Sec. 4.4) ---
  SketchSolver Solver(Source, Prog, Target);
  SolveStats Stats;
  std::optional<Program> Result = Solver.solve(*Sk, Stats);
  if (!Result) {
    std::fprintf(stderr, "no completion is equivalent to the source\n");
    return 1;
  }
  std::printf("\nCompleted after %llu candidate(s); blocking clauses pruned "
              "%.0f completions.\n\nMigrated program:\n%s",
              static_cast<unsigned long long>(Stats.Iters),
              Stats.BlockedTotal, Result->str().c_str());
  return 0;
}
