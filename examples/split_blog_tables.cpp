//===- examples/split_blog_tables.cpp - Split-table migration example --------===//
//
// A blogging application whose posts table is split into content and
// metadata tables (the most common refactoring in the paper's real-world
// set). After synthesis, the example demonstrates behavioral equivalence by
// replaying the same invocation sequence against both programs and
// comparing results.
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"
#include "parse/Parser.h"
#include "synth/Synthesizer.h"

#include <cstdio>

using namespace migrator;

int main() {
  const char *Text = R"(
schema BlogDB {
  table Post(postId: int, authorName: string, title: string, body: string,
             coverImage: binary, likes: int)
}
schema BlogDBNew {
  table Post(postId: int, authorName: string, title: string, likes: int,
             contentRef: int)
  table PostContent(contentRef: int, body: string, coverImage: binary)
}
program BlogApp on BlogDB {
  update publish(p: int, a: string, t: string, b: string, img: binary) {
    insert into Post values (postId: p, authorName: a, title: t, body: b,
      coverImage: img, likes: 0);
  }
  update unpublish(p: int) {
    delete from Post where postId = p;
  }
  update like(p: int, n: int) {
    update Post set likes = n where postId = p;
  }
  query headline(p: int) {
    select title, authorName, likes from Post where postId = p;
  }
  query content(p: int) {
    select body, coverImage from Post where postId = p;
  }
  query byAuthor(a: string) {
    select postId, title from Post where authorName = a;
  }
}
)";

  ParseOutput Out = std::get<ParseOutput>(parseUnit(Text));
  const Schema &Source = *Out.findSchema("BlogDB");
  const Schema &Target = *Out.findSchema("BlogDBNew");
  const Program &Prog = Out.findProgram("BlogApp")->Prog;

  SynthResult R = synthesize(Source, Prog, Target);
  if (!R.succeeded()) {
    std::fprintf(stderr, "synthesis failed\n");
    return 1;
  }
  std::printf("Migrated program (%.2fs):\n\n%s\n", R.Stats.TotalTimeSec,
              R.Prog->str().c_str());

  // Replay a workload on both versions and compare the final query.
  InvocationSeq Workload = {
      {"publish",
       {Value::makeInt(1), Value::makeString("ada"),
        Value::makeString("Engines"), Value::makeString("..."),
        Value::makeBinary("img1")}},
      {"publish",
       {Value::makeInt(2), Value::makeString("ada"),
        Value::makeString("Notes"), Value::makeString("..."),
        Value::makeBinary("img2")}},
      {"like", {Value::makeInt(1), Value::makeInt(41)}},
      {"unpublish", {Value::makeInt(2)}},
      {"byAuthor", {Value::makeString("ada")}},
  };
  std::optional<ResultTable> Old = runSequence(Prog, Source, Workload);
  std::optional<ResultTable> New = runSequence(*R.Prog, Target, Workload);
  if (!Old || !New) {
    std::fprintf(stderr, "workload replay failed\n");
    return 1;
  }
  std::printf("Replayed workload; original result:\n%s",
              Old->str().c_str());
  std::printf("migrated result:\n%s", New->str().c_str());
  std::printf("equivalent: %s\n",
              resultsEquivalent(*Old, *New) ? "yes" : "NO");
  return resultsEquivalent(*Old, *New) ? 0 : 1;
}
