//===- support/StringExtras.h - String utility functions --------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small string utilities used throughout the project: Levenshtein edit
/// distance (the name-similarity metric of Sec. 4.2), string joining, and
/// simple case/trim helpers.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SUPPORT_STRINGEXTRAS_H
#define MIGRATOR_SUPPORT_STRINGEXTRAS_H

#include <string>
#include <string_view>
#include <vector>

namespace migrator {

/// Computes the Levenshtein (edit) distance between \p A and \p B.
///
/// This is the similarity metric used by the value-correspondence MaxSAT
/// encoding: sim(a, b) = Alpha - levenshtein(a, b).
unsigned levenshtein(std::string_view A, std::string_view B);

/// Joins \p Parts with \p Sep in between consecutive elements.
std::string join(const std::vector<std::string> &Parts, std::string_view Sep);

/// Returns a lower-cased copy of \p S (ASCII only).
std::string toLower(std::string_view S);

/// Returns true if \p S starts with \p Prefix.
bool startsWith(std::string_view S, std::string_view Prefix);

/// Splits \p S on character \p Sep; empty fields are preserved.
std::vector<std::string> split(std::string_view S, char Sep);

} // namespace migrator

#endif // MIGRATOR_SUPPORT_STRINGEXTRAS_H
