//===- support/ThreadPool.h - Work-stealing thread pool -----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small work-stealing thread pool for the parallel synthesis engine.
///
/// Design:
///
///  * one double-ended queue per worker; a worker pops its own queue LIFO
///    (cache-warm, depth-first) and steals FIFO from victims (breadth-first,
///    the classic Blumofe–Leiserson discipline);
///  * tasks are submitted through a TaskGroup, which tracks completion so a
///    caller can block until its own tasks — and only its own — are done;
///  * TaskGroup::wait() *helps*: while its tasks are outstanding the waiting
///    thread executes queued tasks instead of sleeping, so nested fan-out
///    (a portfolio worker batching tester calls onto the same pool) cannot
///    deadlock even when every worker is itself inside a wait();
///  * tasks must not throw — the synthesis pipeline reports failure through
///    return values, and an escaping exception would terminate.
///
/// Observability: `pool.tasks` counts submissions, `pool.steals` counts
/// successful cross-worker steals; each worker additionally publishes a
/// `pool.w<I>.tasks` / `.steals` / `.run_us` / `.idle_us` breakdown, labels
/// its trace lane `pool-worker-<I>`, and wraps every task execution and
/// idle wait in `pool.task` / `pool.idle` spans, so `--trace` output shows
/// per-worker run/steal/idle timelines (see docs/OBSERVABILITY.md). The
/// deque and idle-CV mutexes are profiled lock sites (`pool.queue`,
/// `pool.idle_cv`) for `--profile-locks`.
///
/// The pool makes no ordering guarantees; determinism of the synthesis
/// result is owned by the algorithm layer (see docs/PERFORMANCE.md).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SUPPORT_THREADPOOL_H
#define MIGRATOR_SUPPORT_THREADPOOL_H

#include "obs/LockProfile.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace migrator {

namespace detail {
/// Shared lock sites for the pool's deques (all report as `pool.queue`)
/// and the idle-wakeup mutex (`pool.idle_cv`).
obs::LockSite &poolQueueLockSite();
obs::LockSite &poolIdleLockSite();
} // namespace detail

class TaskGroup;

/// A fixed-size pool of worker threads with per-worker stealing deques.
class ThreadPool {
public:
  /// Spawns \p NumWorkers worker threads (at least 1).
  explicit ThreadPool(unsigned NumWorkers);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  unsigned getWorkerCount() const {
    return static_cast<unsigned>(Workers.size());
  }

  /// Pops or steals one queued task and runs it on the calling thread.
  /// Returns false when every queue is empty. Used by helping waiters.
  bool tryRunOne();

  /// Total tasks submitted / successful steals over the pool's lifetime.
  uint64_t getNumTasks() const {
    return NumTasks.load(std::memory_order_relaxed);
  }
  uint64_t getNumSteals() const {
    return NumSteals.load(std::memory_order_relaxed);
  }

private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> Fn;
    TaskGroup *Group = nullptr;
  };

  /// One worker's deque. A plain (profiled) mutex per deque: tasks here are
  /// coarse (whole candidate tests / sketch solves), so queue traffic is
  /// far off the hot path.
  struct WorkQueue {
    obs::ProfiledMutex M{detail::poolQueueLockSite()};
    std::deque<Task> Q;
  };

  void submit(Task T);
  /// \p WasStolen (optional) reports whether the task came from another
  /// worker's deque — the per-worker steal attribution.
  bool popOrSteal(Task &Out, bool *WasStolen = nullptr);
  void runTask(Task &T);
  void workerLoop(unsigned Index);

  std::vector<std::unique_ptr<WorkQueue>> Queues;
  std::vector<std::thread> Workers;

  /// Wakeup protocol: QueuedTasks counts tasks sitting in queues; a worker
  /// only blocks after re-checking it under IdleM, and submit() touches
  /// IdleM before notifying, so wakeups cannot be lost. (_any variant:
  /// IdleM is a profiled wrapper, not a std::mutex.)
  std::atomic<size_t> QueuedTasks{0};
  obs::ProfiledMutex IdleM{detail::poolIdleLockSite()};
  std::condition_variable_any IdleCv;
  bool ShuttingDown = false; ///< Guarded by IdleM.

  std::atomic<unsigned> NextQueue{0};
  std::atomic<uint64_t> NumTasks{0};
  std::atomic<uint64_t> NumSteals{0};
};

/// Tracks a set of tasks so the submitter can wait for exactly them.
///
/// Constructed with a null pool, run() executes inline on the caller — the
/// degenerate sequential mode, so call sites need no 1-thread special case.
class TaskGroup {
public:
  explicit TaskGroup(ThreadPool *Pool) : Pool(Pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup &) = delete;
  TaskGroup &operator=(const TaskGroup &) = delete;

  /// Submits \p Fn to the pool (or runs it inline without a pool).
  void run(std::function<void()> Fn);

  /// Blocks until every task run() through this group has finished,
  /// executing queued tasks on the calling thread while it waits.
  void wait();

private:
  friend class ThreadPool;
  void finishOne();

  ThreadPool *Pool;
  std::atomic<size_t> Pending{0};
  std::mutex M;
  std::condition_variable Cv;
};

} // namespace migrator

#endif // MIGRATOR_SUPPORT_THREADPOOL_H
