//===- support/StringExtras.cpp - String utility functions ---------------===//

#include "support/StringExtras.h"

#include <algorithm>
#include <cctype>

using namespace migrator;

unsigned migrator::levenshtein(std::string_view A, std::string_view B) {
  // Classic two-row dynamic program.
  const size_t N = A.size(), M = B.size();
  if (N == 0)
    return static_cast<unsigned>(M);
  if (M == 0)
    return static_cast<unsigned>(N);

  std::vector<unsigned> Prev(M + 1), Cur(M + 1);
  for (size_t J = 0; J <= M; ++J)
    Prev[J] = static_cast<unsigned>(J);

  for (size_t I = 1; I <= N; ++I) {
    Cur[0] = static_cast<unsigned>(I);
    for (size_t J = 1; J <= M; ++J) {
      unsigned Subst = Prev[J - 1] + (A[I - 1] == B[J - 1] ? 0 : 1);
      Cur[J] = std::min({Prev[J] + 1, Cur[J - 1] + 1, Subst});
    }
    std::swap(Prev, Cur);
  }
  return Prev[M];
}

std::string migrator::join(const std::vector<std::string> &Parts,
                           std::string_view Sep) {
  std::string Result;
  for (size_t I = 0; I < Parts.size(); ++I) {
    if (I != 0)
      Result.append(Sep);
    Result.append(Parts[I]);
  }
  return Result;
}

std::string migrator::toLower(std::string_view S) {
  std::string Result(S);
  std::transform(Result.begin(), Result.end(), Result.begin(),
                 [](unsigned char C) { return std::tolower(C); });
  return Result;
}

bool migrator::startsWith(std::string_view S, std::string_view Prefix) {
  return S.size() >= Prefix.size() && S.substr(0, Prefix.size()) == Prefix;
}

std::vector<std::string> migrator::split(std::string_view S, char Sep) {
  std::vector<std::string> Parts;
  size_t Start = 0;
  while (true) {
    size_t Pos = S.find(Sep, Start);
    if (Pos == std::string_view::npos) {
      Parts.emplace_back(S.substr(Start));
      return Parts;
    }
    Parts.emplace_back(S.substr(Start, Pos - Start));
    Start = Pos + 1;
  }
}
