//===- support/ThreadPool.cpp - Work-stealing thread pool -------------------===//

#include "support/ThreadPool.h"

#include "obs/Metrics.h"

#include <cassert>

using namespace migrator;

namespace {

/// Which pool (if any) the current thread works for, and its queue index.
/// Lets submit() and popOrSteal() prefer the thread's own deque.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentIndex = 0;

} // namespace

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers < 1)
    NumWorkers = 1;
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  // Callers wait their TaskGroups before the pool dies (TaskGroup's
  // destructor enforces it), so the queues are normally empty here; any
  // leftovers are tasks whose group was abandoned, and dropping them is the
  // only safe option.
  {
    std::lock_guard<std::mutex> Lock(IdleM);
    ShuttingDown = true;
  }
  IdleCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(Task T) {
  NumTasks.fetch_add(1, std::memory_order_relaxed);
  MIGRATOR_COUNTER_ADD("pool.tasks", 1);

  // A worker pushes to its own deque (depth-first; stolen breadth-first);
  // external threads scatter round-robin.
  unsigned Idx = CurrentPool == this
                     ? CurrentIndex
                     : NextQueue.fetch_add(1, std::memory_order_relaxed) %
                           Queues.size();
  {
    std::lock_guard<std::mutex> Lock(Queues[Idx]->M);
    Queues[Idx]->Q.push_back(std::move(T));
  }
  QueuedTasks.fetch_add(1, std::memory_order_release);
  {
    // Touching IdleM orders this submission against any worker that just
    // re-checked QueuedTasks and is about to block (see workerLoop).
    std::lock_guard<std::mutex> Lock(IdleM);
  }
  IdleCv.notify_one();
}

bool ThreadPool::popOrSteal(Task &Out) {
  size_t N = Queues.size();
  // Own queue first, back end (LIFO).
  if (CurrentPool == this) {
    WorkQueue &Mine = *Queues[CurrentIndex];
    std::lock_guard<std::mutex> Lock(Mine.M);
    if (!Mine.Q.empty()) {
      Out = std::move(Mine.Q.back());
      Mine.Q.pop_back();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from victims, front end (FIFO).
  unsigned Start =
      CurrentPool == this
          ? CurrentIndex + 1
          : NextQueue.fetch_add(1, std::memory_order_relaxed);
  for (size_t K = 0; K < N; ++K) {
    WorkQueue &Victim = *Queues[(Start + K) % N];
    std::lock_guard<std::mutex> Lock(Victim.M);
    if (!Victim.Q.empty()) {
      Out = std::move(Victim.Q.front());
      Victim.Q.pop_front();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      if (CurrentPool == this) {
        NumSteals.fetch_add(1, std::memory_order_relaxed);
        MIGRATOR_COUNTER_ADD("pool.steals", 1);
      }
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(Task &T) {
  T.Fn();
  if (T.Group)
    T.Group->finishOne();
}

bool ThreadPool::tryRunOne() {
  Task T;
  if (!popOrSteal(T))
    return false;
  runTask(T);
  return true;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentIndex = Index;
  while (true) {
    Task T;
    if (popOrSteal(T)) {
      runTask(T);
      continue;
    }
    std::unique_lock<std::mutex> Lock(IdleM);
    if (ShuttingDown)
      return;
    // Re-check under the lock: a submit() between our failed scan and here
    // must be observed, because it takes IdleM before notifying.
    if (QueuedTasks.load(std::memory_order_acquire) > 0)
      continue;
    IdleCv.wait(Lock);
  }
}

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

void TaskGroup::run(std::function<void()> Fn) {
  if (!Pool) {
    Fn();
    return;
  }
  Pending.fetch_add(1, std::memory_order_acq_rel);
  Pool->submit({std::move(Fn), this});
}

void TaskGroup::finishOne() {
  // The decrement happens *inside* the critical section: once a waiter can
  // observe Pending == 0 it must also be able to rely on this thread being
  // past its last touch of the group (wait() re-acquires M before
  // returning, which cannot succeed until this scope unlocks). Decrementing
  // outside the lock would let the waiter destroy the group while this
  // thread is still about to lock M / notify — a use-after-free.
  std::lock_guard<std::mutex> Lock(M);
  if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Cv.notify_all();
}

void TaskGroup::wait() {
  if (!Pool)
    return;
  while (Pending.load(std::memory_order_acquire) > 0) {
    // Help: drain queued work (ours or anyone's) instead of sleeping, so a
    // saturated pool of mutually waiting parents still makes progress.
    if (Pool->tryRunOne())
      continue;
    // Nothing runnable: our remaining tasks are executing on other
    // threads. Block until the count drains.
    std::unique_lock<std::mutex> Lock(M);
    if (Pending.load(std::memory_order_acquire) == 0)
      return; // Exits under M: the finishing thread has released the group.
    Cv.wait(Lock);
  }
  // Fast-path exit (count observed 0 outside M): the thread that ran our
  // last task may still be inside finishOne's critical section. Passing
  // through M orders its final accesses before our return — the caller may
  // destroy this group immediately after.
  std::lock_guard<std::mutex> Lock(M);
}
