//===- support/ThreadPool.cpp - Work-stealing thread pool -------------------===//

#include "support/ThreadPool.h"

#include "obs/Metrics.h"
#include "obs/Trace.h"

#include <cassert>
#include <chrono>
#include <string>

using namespace migrator;

obs::LockSite &migrator::detail::poolQueueLockSite() {
  static obs::LockSite Site("pool.queue");
  return Site;
}

obs::LockSite &migrator::detail::poolIdleLockSite() {
  static obs::LockSite Site("pool.idle_cv");
  return Site;
}

namespace {

/// Which pool (if any) the current thread works for, and its queue index.
/// Lets submit() and popOrSteal() prefer the thread's own deque.
thread_local ThreadPool *CurrentPool = nullptr;
thread_local unsigned CurrentIndex = 0;

uint64_t elapsedUs(std::chrono::steady_clock::time_point Start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - Start)
          .count());
}

/// The per-worker instrument bundle, resolved once per worker thread.
/// References are process-stable (the registry never deallocates), and the
/// counters are published live — synthesize() snapshots its metrics delta
/// before the pool is destroyed, so destructor-time publication would be
/// invisible.
struct WorkerCounters {
  obs::Counter &Tasks;
  obs::Counter &Steals;
  obs::Counter &RunUs;
  obs::Counter &IdleUs;

  explicit WorkerCounters(unsigned Index) :
      Tasks(obs::registry().counter(name(Index, "tasks"))),
      Steals(obs::registry().counter(name(Index, "steals"))),
      RunUs(obs::registry().counter(name(Index, "run_us"))),
      IdleUs(obs::registry().counter(name(Index, "idle_us"))) {}

  static std::string name(unsigned Index, const char *Leaf) {
    return "pool.w" + std::to_string(Index) + "." + Leaf;
  }
};

} // namespace

ThreadPool::ThreadPool(unsigned NumWorkers) {
  if (NumWorkers < 1)
    NumWorkers = 1;
  Queues.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Queues.push_back(std::make_unique<WorkQueue>());
  Workers.reserve(NumWorkers);
  for (unsigned I = 0; I < NumWorkers; ++I)
    Workers.emplace_back([this, I] { workerLoop(I); });
}

ThreadPool::~ThreadPool() {
  // Callers wait their TaskGroups before the pool dies (TaskGroup's
  // destructor enforces it), so the queues are normally empty here; any
  // leftovers are tasks whose group was abandoned, and dropping them is the
  // only safe option.
  {
    std::lock_guard<obs::ProfiledMutex> Lock(IdleM);
    ShuttingDown = true;
  }
  IdleCv.notify_all();
  for (std::thread &W : Workers)
    W.join();
}

void ThreadPool::submit(Task T) {
  NumTasks.fetch_add(1, std::memory_order_relaxed);
  MIGRATOR_COUNTER_ADD("pool.tasks", 1);

  // A worker pushes to its own deque (depth-first; stolen breadth-first);
  // external threads scatter round-robin.
  unsigned Idx = CurrentPool == this
                     ? CurrentIndex
                     : NextQueue.fetch_add(1, std::memory_order_relaxed) %
                           Queues.size();
  {
    std::lock_guard<obs::ProfiledMutex> Lock(Queues[Idx]->M);
    Queues[Idx]->Q.push_back(std::move(T));
  }
  QueuedTasks.fetch_add(1, std::memory_order_release);
  {
    // Touching IdleM orders this submission against any worker that just
    // re-checked QueuedTasks and is about to block (see workerLoop).
    std::lock_guard<obs::ProfiledMutex> Lock(IdleM);
  }
  IdleCv.notify_one();
}

bool ThreadPool::popOrSteal(Task &Out, bool *WasStolen) {
  if (WasStolen)
    *WasStolen = false;
  size_t N = Queues.size();
  // Own queue first, back end (LIFO).
  if (CurrentPool == this) {
    WorkQueue &Mine = *Queues[CurrentIndex];
    std::lock_guard<obs::ProfiledMutex> Lock(Mine.M);
    if (!Mine.Q.empty()) {
      Out = std::move(Mine.Q.back());
      Mine.Q.pop_back();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      return true;
    }
  }
  // Steal from victims, front end (FIFO).
  unsigned Start =
      CurrentPool == this
          ? CurrentIndex + 1
          : NextQueue.fetch_add(1, std::memory_order_relaxed);
  for (size_t K = 0; K < N; ++K) {
    WorkQueue &Victim = *Queues[(Start + K) % N];
    std::lock_guard<obs::ProfiledMutex> Lock(Victim.M);
    if (!Victim.Q.empty()) {
      Out = std::move(Victim.Q.front());
      Victim.Q.pop_front();
      QueuedTasks.fetch_sub(1, std::memory_order_relaxed);
      if (CurrentPool == this) {
        if (WasStolen)
          *WasStolen = true;
        NumSteals.fetch_add(1, std::memory_order_relaxed);
        MIGRATOR_COUNTER_ADD("pool.steals", 1);
      }
      return true;
    }
  }
  return false;
}

void ThreadPool::runTask(Task &T) {
  T.Fn();
  if (T.Group)
    T.Group->finishOne();
}

bool ThreadPool::tryRunOne() {
  Task T;
  if (!popOrSteal(T))
    return false;
  runTask(T);
  return true;
}

void ThreadPool::workerLoop(unsigned Index) {
  CurrentPool = this;
  CurrentIndex = Index;
  obs::setTraceThreadName("pool-worker-" + std::to_string(Index));
  WorkerCounters C(Index);
  while (true) {
    Task T;
    bool Stolen = false;
    if (popOrSteal(T, &Stolen)) {
      const bool Timed = obs::metricsEnabled();
      auto T0 = Timed ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point();
      {
        MIGRATOR_TRACE_SCOPE_NAMED(Span, "pool.task");
        Span.arg("worker", Index).arg("stolen", Stolen);
        runTask(T);
      }
      if (Timed) {
        C.Tasks.add(1);
        if (Stolen)
          C.Steals.add(1);
        C.RunUs.add(elapsedUs(T0));
      }
      continue;
    }
    const bool Timed = obs::metricsEnabled();
    auto I0 = Timed ? std::chrono::steady_clock::now()
                    : std::chrono::steady_clock::time_point();
    bool Exit = false;
    {
      MIGRATOR_TRACE_SCOPE("pool.idle");
      std::unique_lock<obs::ProfiledMutex> Lock(IdleM);
      if (ShuttingDown)
        Exit = true;
      // Re-check under the lock: a submit() between our failed scan and
      // here must be observed, because it takes IdleM before notifying.
      else if (QueuedTasks.load(std::memory_order_acquire) == 0)
        IdleCv.wait(Lock);
    }
    if (Timed)
      C.IdleUs.add(elapsedUs(I0));
    if (Exit)
      return;
  }
}

//===----------------------------------------------------------------------===//
// TaskGroup
//===----------------------------------------------------------------------===//

void TaskGroup::run(std::function<void()> Fn) {
  if (!Pool) {
    Fn();
    return;
  }
  Pending.fetch_add(1, std::memory_order_acq_rel);
  Pool->submit({std::move(Fn), this});
}

void TaskGroup::finishOne() {
  // The decrement happens *inside* the critical section: once a waiter can
  // observe Pending == 0 it must also be able to rely on this thread being
  // past its last touch of the group (wait() re-acquires M before
  // returning, which cannot succeed until this scope unlocks). Decrementing
  // outside the lock would let the waiter destroy the group while this
  // thread is still about to lock M / notify — a use-after-free.
  std::lock_guard<std::mutex> Lock(M);
  if (Pending.fetch_sub(1, std::memory_order_acq_rel) == 1)
    Cv.notify_all();
}

void TaskGroup::wait() {
  if (!Pool)
    return;
  while (Pending.load(std::memory_order_acquire) > 0) {
    // Help: drain queued work (ours or anyone's) instead of sleeping, so a
    // saturated pool of mutually waiting parents still makes progress.
    if (Pool->tryRunOne())
      continue;
    // Nothing runnable: our remaining tasks are executing on other
    // threads. Block until the count drains.
    std::unique_lock<std::mutex> Lock(M);
    if (Pending.load(std::memory_order_acquire) == 0)
      return; // Exits under M: the finishing thread has released the group.
    Cv.wait(Lock);
  }
  // Fast-path exit (count observed 0 outside M): the thread that ran our
  // last task may still be inside finishOne's critical section. Passing
  // through M orders its final accesses before our return — the caller may
  // destroy this group immediately after.
  std::lock_guard<std::mutex> Lock(M);
}
