//===- support/Rng.h - Deterministic random number generator ----*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A deterministic splitmix64-based RNG. Used by the synthetic benchmark
/// generator and by property tests; seeded explicitly so every run of the
/// suite sees identical workloads.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SUPPORT_RNG_H
#define MIGRATOR_SUPPORT_RNG_H

#include <cassert>
#include <cstdint>

namespace migrator {

/// Deterministic splitmix64 generator.
class Rng {
public:
  explicit Rng(uint64_t Seed) : State(Seed) {}

  /// Returns the next raw 64-bit value.
  uint64_t next() {
    State += 0x9e3779b97f4a7c15ULL;
    uint64_t Z = State;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

  /// Returns a value uniformly distributed in [0, Bound).
  uint64_t next(uint64_t Bound) {
    assert(Bound > 0 && "bound must be positive");
    return next() % Bound;
  }

  /// Returns an int uniformly distributed in [Lo, Hi] inclusive.
  int nextInt(int Lo, int Hi) {
    assert(Lo <= Hi && "empty range");
    return Lo + static_cast<int>(next(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Returns true with probability Num/Den.
  bool chance(uint64_t Num, uint64_t Den) { return next(Den) < Num; }

private:
  uint64_t State;
};

} // namespace migrator

#endif // MIGRATOR_SUPPORT_RNG_H
