//===- support/Timer.h - Wall-clock timing helpers --------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A tiny wall-clock stopwatch used by the synthesizer to report per-phase
/// timings (the "Synth Time" / "Total Time" columns of Table 1).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SUPPORT_TIMER_H
#define MIGRATOR_SUPPORT_TIMER_H

#include <chrono>

namespace migrator {

/// Wall-clock stopwatch. Starts running on construction.
class Timer {
public:
  Timer() : Start(Clock::now()) {}

  /// Restarts the stopwatch.
  void reset() { Start = Clock::now(); }

  /// Returns elapsed seconds since construction or the last reset().
  double elapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - Start).count();
  }

  /// Returns elapsed milliseconds since construction or the last reset().
  double elapsedMillis() const { return elapsedSeconds() * 1000.0; }

private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point Start;
};

} // namespace migrator

#endif // MIGRATOR_SUPPORT_TIMER_H
