//===- eval/Evaluator.cpp - Database program interpreter -------------------===//

#include "eval/Evaluator.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace migrator;

std::string Invocation::str() const {
  std::ostringstream OS;
  OS << Func << "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Args[I].str();
  }
  OS << ")";
  return OS.str();
}

std::string migrator::sequenceStr(const InvocationSeq &Seq) {
  std::ostringstream OS;
  for (size_t I = 0; I < Seq.size(); ++I) {
    if (I != 0)
      OS << "; ";
    OS << Seq[I].str();
  }
  return OS.str();
}

namespace {

using Env = std::map<std::string, Value>;

/// An intermediate query value: qualified columns plus rows of values.
struct VirtualTable {
  std::vector<QualifiedAttr> Columns;
  std::vector<Row> Rows;

  /// Resolves \p Ref to a column index: qualified references match exactly;
  /// unqualified references match the first column with that attribute name.
  std::optional<size_t> findCol(const AttrRef &Ref) const {
    for (size_t I = 0; I < Columns.size(); ++I) {
      if (Columns[I].Attr != Ref.Attr)
        continue;
      if (!Ref.isQualified() || Columns[I].Table == Ref.Table)
        return I;
    }
    return std::nullopt;
  }
};

/// The provenance-carrying result of evaluating a join chain: for each join
/// row, the index of the contributing source row in each member table.
struct JoinRows {
  std::vector<std::vector<size_t>> Rows; ///< [joinRow][tableIdx] -> row index.
};

/// Evaluates \p Op in \p E; returns nullopt for an unbound parameter.
std::optional<Value> evalOperand(const Operand &Op, const Env &E) {
  if (Op.isConstant())
    return Op.getConstant();
  auto It = E.find(Op.getParamName());
  if (It == E.end())
    return std::nullopt;
  return It->second;
}

/// Joins the chain's member tables: enumerates row combinations consistent
/// with the chain's attribute equivalence classes, depth-first over tables.
JoinRows computeJoinRows(const JoinChain &Chain, const Schema &S,
                         const Database &DB) {
  const std::vector<std::string> &Tables = Chain.getTables();
  std::vector<std::vector<QualifiedAttr>> Classes = Chain.attrClasses(S);

  // Map each (tableIdx, attrIdx) to its class id.
  std::vector<std::vector<unsigned>> ClassOf(Tables.size());
  for (size_t T = 0; T < Tables.size(); ++T) {
    const TableSchema &TS = S.getTable(Tables[T]);
    ClassOf[T].resize(TS.getNumAttrs(), ~0u);
    for (unsigned A = 0; A < TS.getNumAttrs(); ++A) {
      QualifiedAttr QA{Tables[T], TS.getAttrs()[A].Name};
      for (unsigned C = 0; C < Classes.size(); ++C)
        if (std::find(Classes[C].begin(), Classes[C].end(), QA) !=
            Classes[C].end()) {
          ClassOf[T][A] = C;
          break;
        }
      assert(ClassOf[T][A] != ~0u && "attribute missing from class partition");
    }
  }

  JoinRows Result;
  std::vector<size_t> Partial(Tables.size());
  std::vector<std::optional<Value>> ClassVal(Classes.size());

  // Depth-first extension of partial rows, checking class consistency
  // incrementally. Tuples scanned accumulate in a local — this is the
  // hottest loop in the system — and publish once below.
  uint64_t TuplesScanned = 0;
  auto Rec = [&](auto &&Self, size_t T) -> void {
    if (T == Tables.size()) {
      Result.Rows.push_back(Partial);
      return;
    }
    const Table &Tbl = DB.getTable(Tables[T]);
    TuplesScanned += Tbl.size();
    for (size_t R = 0; R < Tbl.size(); ++R) {
      const Row &Rw = Tbl.getRow(R);
      // Check and record class values for this table's attributes.
      std::vector<std::pair<unsigned, std::optional<Value>>> Saved;
      bool Ok = true;
      for (unsigned A = 0; A < Rw.size() && Ok; ++A) {
        unsigned C = ClassOf[T][A];
        if (ClassVal[C].has_value()) {
          if (*ClassVal[C] != Rw[A])
            Ok = false;
        } else {
          Saved.emplace_back(C, ClassVal[C]);
          ClassVal[C] = Rw[A];
        }
      }
      if (Ok) {
        Partial[T] = R;
        Self(Self, T + 1);
      }
      for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
        ClassVal[It->first] = It->second;
    }
  };
  Rec(Rec, 0);
  if (obs::metricsEnabled()) {
    MIGRATOR_COUNTER_ADD("eval.joins", 1);
    MIGRATOR_COUNTER_ADD("eval.tuples_scanned", TuplesScanned);
    MIGRATOR_COUNTER_ADD("eval.join_rows", Result.Rows.size());
    MIGRATOR_HISTOGRAM_RECORD("eval.join_width", Tables.size());
  }
  return Result;
}

/// Materializes join rows into a virtual table with one column per
/// qualified attribute of the chain.
VirtualTable materialize(const JoinChain &Chain, const Schema &S,
                         const Database &DB, const JoinRows &JR) {
  VirtualTable VT;
  VT.Columns = Chain.allAttrs(S);
  const std::vector<std::string> &Tables = Chain.getTables();
  for (const std::vector<size_t> &Prov : JR.Rows) {
    Row Out;
    Out.reserve(VT.Columns.size());
    for (size_t T = 0; T < Tables.size(); ++T) {
      const Row &Src = DB.getTable(Tables[T]).getRow(Prov[T]);
      Out.insert(Out.end(), Src.begin(), Src.end());
    }
    VT.Rows.push_back(std::move(Out));
  }
  return VT;
}

class EvalContext {
public:
  EvalContext(const Schema &S, const Database &DB, const Env &E)
      : S(S), DB(DB), E(E) {}

  /// Evaluates predicate \p P over row \p R of \p VT. Returns nullopt on
  /// ill-formed constructs (unresolvable attribute, unbound parameter).
  std::optional<bool> evalPred(const Pred &P, const VirtualTable &VT,
                               const Row &R) {
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &C = static_cast<const CmpPred &>(P);
      std::optional<size_t> L = VT.findCol(C.getLhs());
      if (!L)
        return std::nullopt;
      Value Rhs;
      if (C.rhsIsAttr()) {
        std::optional<size_t> RC = VT.findCol(C.getRhsAttr());
        if (!RC)
          return std::nullopt;
        Rhs = R[*RC];
      } else {
        std::optional<Value> V = evalOperand(C.getRhsOperand(), E);
        if (!V)
          return std::nullopt;
        Rhs = *V;
      }
      return evalCmpOp(C.getOp(), R[*L], Rhs);
    }
    case Pred::Kind::In: {
      const auto &I = static_cast<const InPred &>(P);
      std::optional<size_t> L = VT.findCol(I.getLhs());
      if (!L)
        return std::nullopt;
      std::optional<VirtualTable> Sub = evalQueryRec(I.getSubQuery());
      if (!Sub || Sub->Columns.size() != 1)
        return std::nullopt;
      for (const Row &SR : Sub->Rows)
        if (SR[0] == R[*L])
          return true;
      return false;
    }
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      std::optional<bool> L = evalPred(B.getLhs(), VT, R);
      std::optional<bool> Rv = evalPred(B.getRhs(), VT, R);
      if (!L || !Rv)
        return std::nullopt;
      return P.getKind() == Pred::Kind::And ? (*L && *Rv) : (*L || *Rv);
    }
    case Pred::Kind::Not: {
      std::optional<bool> Sub =
          evalPred(static_cast<const NotPred &>(P).getSubPred(), VT, R);
      if (!Sub)
        return std::nullopt;
      return !*Sub;
    }
    }
    assert(false && "unknown predicate kind");
    return std::nullopt;
  }

  /// Compositional query evaluation.
  std::optional<VirtualTable> evalQueryRec(const Query &Q) {
    switch (Q.getKind()) {
    case Query::Kind::Chain: {
      const JoinChain &Chain = static_cast<const ChainQuery &>(Q).getJoinChain();
      for (const std::string &T : Chain.getTables())
        if (!DB.findTable(T))
          return std::nullopt;
      JoinRows JR = computeJoinRows(Chain, S, DB);
      return materialize(Chain, S, DB, JR);
    }
    case Query::Kind::Filter: {
      const auto &F = static_cast<const FilterQuery &>(Q);
      std::optional<VirtualTable> Sub = evalQueryRec(F.getSubQuery());
      if (!Sub)
        return std::nullopt;
      VirtualTable Out;
      Out.Columns = Sub->Columns;
      for (const Row &R : Sub->Rows) {
        std::optional<bool> Keep = evalPred(F.getPred(), *Sub, R);
        if (!Keep)
          return std::nullopt;
        if (*Keep)
          Out.Rows.push_back(R);
      }
      return Out;
    }
    case Query::Kind::Project: {
      const auto &P = static_cast<const ProjectQuery &>(Q);
      std::optional<VirtualTable> Sub = evalQueryRec(P.getSubQuery());
      if (!Sub)
        return std::nullopt;
      std::vector<size_t> Cols;
      for (const AttrRef &A : P.getAttrs()) {
        std::optional<size_t> C = Sub->findCol(A);
        if (!C)
          return std::nullopt;
        Cols.push_back(*C);
      }
      VirtualTable Out;
      for (size_t C : Cols)
        Out.Columns.push_back(Sub->Columns[C]);
      for (const Row &R : Sub->Rows) {
        Row Proj;
        Proj.reserve(Cols.size());
        for (size_t C : Cols)
          Proj.push_back(R[C]);
        Out.Rows.push_back(std::move(Proj));
      }
      return Out;
    }
    }
    assert(false && "unknown query kind");
    return std::nullopt;
  }

private:
  const Schema &S;
  const Database &DB;
  const Env &E;
};

/// Binds positional \p Args to \p F's parameters. Returns nullopt on arity
/// or type mismatch.
std::optional<Env> bindParams(const Function &F,
                              const std::vector<Value> &Args) {
  const std::vector<Param> &Ps = F.getParams();
  if (Ps.size() != Args.size())
    return std::nullopt;
  Env E;
  for (size_t I = 0; I < Ps.size(); ++I) {
    if (!Args[I].hasType(Ps[I].Type))
      return std::nullopt;
    E.emplace(Ps[I].Name, Args[I]);
  }
  return E;
}

/// Executes an insert statement: one row per chain table; attributes in the
/// same join-equivalence class share an explicit value or a fresh UID
/// (Sec. 3.1). Returns false on ill-formed constructs or conflicting
/// explicit assignments to one class.
bool execInsert(const InsertStmt &I, const Schema &S, const Env &E,
                Database &DB, UidGen &Uids) {
  const JoinChain &Chain = I.getChain();
  for (const std::string &T : Chain.getTables())
    if (!DB.findTable(T))
      return false;

  std::vector<std::vector<QualifiedAttr>> Classes = Chain.attrClasses(S);
  auto ClassIdxOf = [&Classes](const QualifiedAttr &QA) -> std::optional<unsigned> {
    for (unsigned C = 0; C < Classes.size(); ++C)
      if (std::find(Classes[C].begin(), Classes[C].end(), QA) !=
          Classes[C].end())
        return C;
    return std::nullopt;
  };

  // Assign explicit values to classes.
  std::vector<std::optional<Value>> ClassVal(Classes.size());
  for (const auto &[Ref, Op] : I.getValues()) {
    std::optional<QualifiedAttr> QA = Chain.resolve(Ref, S);
    if (!QA)
      return false;
    std::optional<unsigned> C = ClassIdxOf(*QA);
    if (!C)
      return false;
    std::optional<Value> V = evalOperand(Op, E);
    if (!V)
      return false;
    if (ClassVal[*C].has_value() && *ClassVal[*C] != *V)
      return false; // Conflicting assignments to one join class.
    ClassVal[*C] = *V;
  }

  // Unassigned classes get fresh UIDs.
  for (std::optional<Value> &V : ClassVal)
    if (!V.has_value())
      V = Uids.fresh();

  // Emit one row per member table.
  for (const std::string &T : Chain.getTables()) {
    const TableSchema &TS = S.getTable(T);
    Row R;
    R.reserve(TS.getNumAttrs());
    for (const Attribute &A : TS.getAttrs()) {
      std::optional<unsigned> C = ClassIdxOf({T, A.Name});
      assert(C && "attribute missing from class partition");
      R.push_back(*ClassVal[*C]);
    }
    DB.getTable(T).insertRow(std::move(R));
  }
  return true;
}

/// Returns, for each chain table, the provenance row indices of join rows
/// satisfying \p P (or of all join rows if \p P is null). Returns nullopt on
/// ill-formed constructs.
std::optional<std::vector<std::vector<size_t>>>
matchingProvenance(const JoinChain &Chain, const Pred *P, const Schema &S,
                   const Env &E, const Database &DB) {
  for (const std::string &T : Chain.getTables())
    if (!DB.findTable(T))
      return std::nullopt;
  JoinRows JR = computeJoinRows(Chain, S, DB);
  VirtualTable VT = materialize(Chain, S, DB, JR);
  EvalContext Ctx(S, DB, E);

  std::vector<std::vector<size_t>> Matching;
  for (size_t R = 0; R < VT.Rows.size(); ++R) {
    bool Keep = true;
    if (P) {
      std::optional<bool> B = Ctx.evalPred(*P, VT, VT.Rows[R]);
      if (!B)
        return std::nullopt;
      Keep = *B;
    }
    if (Keep)
      Matching.push_back(JR.Rows[R]);
  }
  return Matching;
}

bool execDelete(const DeleteStmt &D, const Schema &S, const Env &E,
                Database &DB) {
  const JoinChain &Chain = D.getChain();
  std::optional<std::vector<std::vector<size_t>>> Matching =
      matchingProvenance(Chain, D.getPred(), S, E, DB);
  if (!Matching)
    return false;

  const std::vector<std::string> &Tables = Chain.getTables();
  for (const std::string &Target : D.getTargets()) {
    auto It = std::find(Tables.begin(), Tables.end(), Target);
    if (It == Tables.end())
      return false;
    size_t TIdx = static_cast<size_t>(It - Tables.begin());
    std::vector<size_t> Doomed;
    for (const std::vector<size_t> &Prov : *Matching)
      Doomed.push_back(Prov[TIdx]);
    DB.getTable(Target).eraseRows(Doomed);
  }
  return true;
}

bool execUpdate(const UpdateStmt &U, const Schema &S, const Env &E,
                Database &DB) {
  const JoinChain &Chain = U.getChain();
  std::optional<QualifiedAttr> Target = Chain.resolve(U.getTarget(), S);
  if (!Target)
    return false;
  std::optional<Value> V = evalOperand(U.getValue(), E);
  if (!V)
    return false;

  std::optional<std::vector<std::vector<size_t>>> Matching =
      matchingProvenance(Chain, U.getPred(), S, E, DB);
  if (!Matching)
    return false;

  const std::vector<std::string> &Tables = Chain.getTables();
  auto It = std::find(Tables.begin(), Tables.end(), Target->Table);
  assert(It != Tables.end() && "resolved attribute outside chain");
  size_t TIdx = static_cast<size_t>(It - Tables.begin());
  std::optional<unsigned> AttrIdx =
      S.getTable(Target->Table).attrIndex(Target->Attr);
  assert(AttrIdx && "resolved attribute missing from table");

  Table &Tbl = DB.getTable(Target->Table);
  for (const std::vector<size_t> &Prov : *Matching)
    Tbl.setValue(Prov[TIdx], *AttrIdx, *V);
  return true;
}

} // namespace

bool Evaluator::callUpdate(const Function &F, const std::vector<Value> &Args,
                           Database &DB, UidGen &Uids) const {
  assert(F.isUpdate() && "callUpdate requires an update function");
  std::optional<Env> E = bindParams(F, Args);
  if (!E)
    return false;
  for (const StmtPtr &St : F.getBody()) {
    bool Ok = false;
    switch (St->getKind()) {
    case Stmt::Kind::Insert:
      Ok = execInsert(static_cast<const InsertStmt &>(*St), S, *E, DB, Uids);
      break;
    case Stmt::Kind::Delete:
      Ok = execDelete(static_cast<const DeleteStmt &>(*St), S, *E, DB);
      break;
    case Stmt::Kind::Update:
      Ok = execUpdate(static_cast<const UpdateStmt &>(*St), S, *E, DB);
      break;
    }
    if (!Ok)
      return false;
  }
  return true;
}

std::optional<ResultTable>
Evaluator::callQuery(const Function &F, const std::vector<Value> &Args,
                     const Database &DB) const {
  assert(F.isQuery() && "callQuery requires a query function");
  std::optional<Env> E = bindParams(F, Args);
  if (!E)
    return std::nullopt;
  return evalQuery(F.getQuery(), *E, DB);
}

std::optional<ResultTable>
Evaluator::evalQuery(const Query &Q, const std::map<std::string, Value> &Env,
                     const Database &DB) const {
  EvalContext Ctx(S, DB, Env);
  std::optional<VirtualTable> VT = Ctx.evalQueryRec(Q);
  if (!VT)
    return std::nullopt;
  ResultTable RT;
  RT.Columns.reserve(VT->Columns.size());
  for (const QualifiedAttr &C : VT->Columns)
    RT.Columns.push_back(C.str());
  RT.Rows = std::move(VT->Rows);
  return RT;
}

std::optional<ResultTable> migrator::runSequence(const Program &P,
                                                 const Schema &S,
                                                 const InvocationSeq &Seq) {
  if (Seq.empty())
    return std::nullopt;
  Evaluator Eval(S);
  Database DB(S);
  UidGen Uids;
  for (size_t I = 0; I + 1 < Seq.size(); ++I) {
    const Function *F = P.findFunction(Seq[I].Func);
    if (!F || !F->isUpdate())
      return std::nullopt;
    if (!Eval.callUpdate(*F, Seq[I].Args, DB, Uids))
      return std::nullopt;
  }
  const Function *Last = P.findFunction(Seq.back().Func);
  if (!Last || !Last->isQuery())
    return std::nullopt;
  return Eval.callQuery(*Last, Seq.back().Args, DB);
}
