//===- eval/Evaluator.cpp - Database program interpreter -------------------===//
//
// Query evaluation runs in one of two modes (see docs/PERFORMANCE.md, "Join
// engine"):
//
//  * *indexed* (default): join chains are evaluated through compiled plans
//    (eval/Plan.h) and per-column hash indexes (relational/Table.h) — table
//    order is chosen by a most-bound-classes / smallest-table heuristic,
//    each subsequent table is reached by an index probe on an already-bound
//    join class, filter predicates are compiled once per evaluation
//    (resolved column indices, hoisted operands and IN-subqueries), and
//    equality conjuncts with constant/bound operands push down into the
//    join as pre-bound classes;
//  * *naive* (`MIGRATOR_NO_INDEX=1` / `--no-index`): the original
//    nested-loop enumeration with per-row predicate resolution — the
//    differential-testing oracle.
//
// Both modes produce byte-identical results, row order included: the naive
// depth-first enumeration emits provenance tuples in lexicographic order of
// per-table row indices, and the indexed path restores exactly that order
// (bucket vectors are kept sorted; out-of-chain-order exploration is
// followed by a provenance sort).
//
//===----------------------------------------------------------------------===//

#include "eval/Evaluator.h"

#include "eval/Plan.h"
#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>
#include <unordered_set>

using namespace migrator;

std::string Invocation::str() const {
  std::ostringstream OS;
  OS << Func << "(";
  for (size_t I = 0; I < Args.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Args[I].str();
  }
  OS << ")";
  return OS.str();
}

std::string migrator::sequenceStr(const InvocationSeq &Seq) {
  std::ostringstream OS;
  for (size_t I = 0; I < Seq.size(); ++I) {
    if (I != 0)
      OS << "; ";
    OS << Seq[I].str();
  }
  return OS.str();
}

namespace {

using Env = std::map<std::string, Value>;

/// An intermediate query value: qualified columns plus rows of values.
struct VirtualTable {
  std::vector<QualifiedAttr> Columns;
  std::vector<Row> Rows;

  /// Resolves \p Ref to a column index: qualified references match exactly;
  /// unqualified references match the first column with that attribute name.
  std::optional<size_t> findCol(const AttrRef &Ref) const {
    return findColIn(Columns, Ref);
  }

  static std::optional<size_t> findColIn(const std::vector<QualifiedAttr> &Cols,
                                         const AttrRef &Ref) {
    for (size_t I = 0; I < Cols.size(); ++I) {
      if (Cols[I].Attr != Ref.Attr)
        continue;
      if (!Ref.isQualified() || Cols[I].Table == Ref.Table)
        return I;
    }
    return std::nullopt;
  }
};

/// The provenance-carrying result of evaluating a join chain: for each join
/// row, the index of the contributing source row in each member table.
struct JoinRows {
  std::vector<std::vector<size_t>> Rows; ///< [joinRow][tableIdx] -> row index.
};

/// Evaluates \p Op in \p E; returns nullopt for an unbound parameter.
std::optional<Value> evalOperand(const Operand &Op, const Env &E) {
  if (Op.isConstant())
    return Op.getConstant();
  auto It = E.find(Op.getParamName());
  if (It == E.end())
    return std::nullopt;
  return It->second;
}

//===----------------------------------------------------------------------===//
// Naive join enumeration (the --no-index differential-testing oracle)
//===----------------------------------------------------------------------===//

/// Joins the chain's member tables: enumerates row combinations consistent
/// with the chain's attribute equivalence classes, depth-first over tables.
JoinRows computeJoinRowsNaive(const JoinChain &Chain, const Schema &S,
                              const Database &DB) {
  const std::vector<std::string> &Tables = Chain.getTables();
  std::vector<std::vector<QualifiedAttr>> Classes = Chain.attrClasses(S);

  // Map each (tableIdx, attrIdx) to its class id.
  std::vector<std::vector<unsigned>> ClassOf(Tables.size());
  for (size_t T = 0; T < Tables.size(); ++T) {
    const TableSchema &TS = S.getTable(Tables[T]);
    ClassOf[T].resize(TS.getNumAttrs(), ~0u);
    for (unsigned A = 0; A < TS.getNumAttrs(); ++A) {
      QualifiedAttr QA{Tables[T], TS.getAttrs()[A].Name};
      for (unsigned C = 0; C < Classes.size(); ++C)
        if (std::find(Classes[C].begin(), Classes[C].end(), QA) !=
            Classes[C].end()) {
          ClassOf[T][A] = C;
          break;
        }
      assert(ClassOf[T][A] != ~0u && "attribute missing from class partition");
    }
  }

  JoinRows Result;
  std::vector<size_t> Partial(Tables.size());
  std::vector<std::optional<Value>> ClassVal(Classes.size());

  // Depth-first extension of partial rows, checking class consistency
  // incrementally. Tuples scanned accumulate in a local — this is the
  // hottest loop in the system — and publish once below.
  uint64_t TuplesScanned = 0;
  auto Rec = [&](auto &&Self, size_t T) -> void {
    if (T == Tables.size()) {
      Result.Rows.push_back(Partial);
      return;
    }
    const Table &Tbl = DB.getTable(Tables[T]);
    TuplesScanned += Tbl.size();
    for (size_t R = 0; R < Tbl.size(); ++R) {
      const Row &Rw = Tbl.getRow(R);
      // Check and record class values for this table's attributes.
      std::vector<std::pair<unsigned, std::optional<Value>>> Saved;
      bool Ok = true;
      for (unsigned A = 0; A < Rw.size() && Ok; ++A) {
        unsigned C = ClassOf[T][A];
        if (ClassVal[C].has_value()) {
          if (*ClassVal[C] != Rw[A])
            Ok = false;
        } else {
          Saved.emplace_back(C, ClassVal[C]);
          ClassVal[C] = Rw[A];
        }
      }
      if (Ok) {
        Partial[T] = R;
        Self(Self, T + 1);
      }
      for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
        ClassVal[It->first] = It->second;
    }
  };
  Rec(Rec, 0);
  if (obs::metricsEnabled()) {
    MIGRATOR_COUNTER_ADD("eval.joins", 1);
    MIGRATOR_COUNTER_ADD("eval.tuples_scanned", TuplesScanned);
    MIGRATOR_COUNTER_ADD("eval.join_rows", Result.Rows.size());
    MIGRATOR_HISTOGRAM_RECORD("eval.join_width", Tables.size());
  }
  return Result;
}

//===----------------------------------------------------------------------===//
// Indexed join enumeration
//===----------------------------------------------------------------------===//

/// Per-class bound values, indexed by class id.
using ClassVals = std::vector<std::optional<Value>>;

/// Index-probe join over a compiled plan. \p Pre optionally pre-binds join
/// classes (pushed-down equality predicates); rows violating a pre-bound
/// class are never enumerated. The result is emitted in lexicographic
/// provenance order — byte-identical to computeJoinRowsNaive.
JoinRows computeJoinRowsIndexed(const ChainPlan &P, const Database &DB,
                                const ClassVals *Pre) {
  const std::vector<std::string> &Tables = P.Chain.getTables();
  const size_t NT = Tables.size();
  std::vector<const Table *> Tbls(NT);
  for (size_t T = 0; T < NT; ++T)
    Tbls[T] = &DB.getTable(Tables[T]);

  ClassVals ClassVal = Pre ? *Pre : ClassVals(P.numClasses());

  // Join order: greedily prefer the table with the most attributes in
  // already-bound classes (it is reached by an index probe and filters
  // hardest), breaking ties by smallest row count, then chain position.
  std::vector<size_t> Order;
  Order.reserve(NT);
  std::vector<bool> Used(NT, false);
  std::vector<bool> Bound(P.numClasses(), false);
  for (size_t C = 0; C < ClassVal.size(); ++C)
    Bound[C] = ClassVal[C].has_value();
  for (size_t Step = 0; Step < NT; ++Step) {
    size_t Best = NT;
    size_t BestScore = 0, BestSize = 0;
    for (size_t T = 0; T < NT; ++T) {
      if (Used[T])
        continue;
      size_t Score = 0;
      for (unsigned C : P.Part.ClassOf[T])
        Score += Bound[C];
      if (Best == NT || Score > BestScore ||
          (Score == BestScore && Tbls[T]->size() < BestSize)) {
        Best = T;
        BestScore = Score;
        BestSize = Tbls[T]->size();
      }
    }
    Used[Best] = true;
    Order.push_back(Best);
    for (unsigned C : P.Part.ClassOf[Best])
      Bound[C] = true;
  }
  bool ChainOrder = true;
  for (size_t D = 0; D < NT; ++D)
    ChainOrder &= Order[D] == D;

  JoinRows Result;
  std::vector<size_t> Partial(NT);
  uint64_t TuplesScanned = 0, Probes = 0;

  auto Rec = [&](auto &&Self, size_t D) -> void {
    if (D == NT) {
      Result.Rows.push_back(Partial);
      return;
    }
    const size_t T = Order[D];
    const Table &Tbl = *Tbls[T];
    const std::vector<unsigned> &CO = P.Part.ClassOf[T];

    // Probe the hash index on the first attribute whose class is already
    // bound; with nothing bound, fall back to a scan (only possible at
    // depths the join graph leaves unconstrained).
    const std::vector<size_t> *Bucket = nullptr;
    bool Probed = false;
    for (unsigned A = 0; A < CO.size(); ++A)
      if (ClassVal[CO[A]].has_value()) {
        Bucket = Tbl.probeIndex(A, *ClassVal[CO[A]]);
        Probed = true;
        break;
      }
    if (Probed) {
      ++Probes;
      if (!Bucket)
        return;
    }
    const size_t NumCand = Probed ? Bucket->size() : Tbl.size();
    TuplesScanned += NumCand;

    for (size_t I = 0; I < NumCand; ++I) {
      const size_t R = Probed ? (*Bucket)[I] : I;
      const Row &Rw = Tbl.getRow(R);
      // Check and bind class values exactly as the naive enumeration does
      // (the probe attribute re-checks trivially).
      std::vector<std::pair<unsigned, std::optional<Value>>> Saved;
      bool Ok = true;
      for (unsigned A = 0; A < Rw.size() && Ok; ++A) {
        unsigned C = CO[A];
        if (ClassVal[C].has_value()) {
          if (*ClassVal[C] != Rw[A])
            Ok = false;
        } else {
          Saved.emplace_back(C, ClassVal[C]);
          ClassVal[C] = Rw[A];
        }
      }
      if (Ok) {
        Partial[T] = R;
        Self(Self, D + 1);
      }
      for (auto It = Saved.rbegin(); It != Saved.rend(); ++It)
        ClassVal[It->first] = It->second;
    }
  };
  Rec(Rec, 0);

  // Out-of-chain-order exploration permutes emission order; the sort
  // restores the naive path's lexicographic provenance order. Provenance
  // tuples are pairwise distinct, so the order is total and deterministic.
  if (!ChainOrder)
    std::sort(Result.Rows.begin(), Result.Rows.end());

  if (obs::metricsEnabled()) {
    MIGRATOR_COUNTER_ADD("eval.joins", 1);
    MIGRATOR_COUNTER_ADD("eval.tuples_scanned", TuplesScanned);
    MIGRATOR_COUNTER_ADD("eval.join_rows", Result.Rows.size());
    MIGRATOR_COUNTER_ADD("eval.index_probes", Probes);
    MIGRATOR_HISTOGRAM_RECORD("eval.join_width", NT);
  }
  return Result;
}

/// Materializes join rows into a virtual table with one column per
/// qualified attribute of the chain (column list supplied by the caller —
/// either freshly computed or taken from a plan).
VirtualTable materializeRows(std::vector<QualifiedAttr> Columns,
                             const std::vector<std::string> &Tables,
                             const Database &DB, const JoinRows &JR) {
  VirtualTable VT;
  VT.Columns = std::move(Columns);
  for (const std::vector<size_t> &Prov : JR.Rows) {
    Row Out;
    Out.reserve(VT.Columns.size());
    for (size_t T = 0; T < Tables.size(); ++T) {
      const Row &Src = DB.getTable(Tables[T]).getRow(Prov[T]);
      Out.insert(Out.end(), Src.begin(), Src.end());
    }
    VT.Rows.push_back(std::move(Out));
  }
  return VT;
}

//===----------------------------------------------------------------------===//
// Compiled predicates
//===----------------------------------------------------------------------===//

/// A predicate compiled against a fixed column list: attribute references
/// resolved to column indices once, operand values and IN-subquery results
/// hoisted out of the per-row loop. Whether a predicate is well-formed does
/// not depend on row values, so compilation failure (nullopt) means the
/// original per-row evaluation would return nullopt on every row.
struct CompiledPred {
  Pred::Kind K = Pred::Kind::Cmp;
  size_t LhsCol = 0;                ///< Cmp / In.
  CmpOp Op = CmpOp::Eq;             ///< Cmp.
  bool RhsIsCol = false;            ///< Cmp.
  size_t RhsCol = 0;                ///< Cmp, when RhsIsCol.
  Value RhsVal;                     ///< Cmp, when !RhsIsCol.
  std::unordered_set<Value> InSet;  ///< In: hoisted subquery values.
  std::unique_ptr<CompiledPred> A, B; ///< And/Or: both; Not: A.
};

bool evalCompiled(const CompiledPred &C, const Row &R) {
  switch (C.K) {
  case Pred::Kind::Cmp:
    return evalCmpOp(C.Op, R[C.LhsCol], C.RhsIsCol ? R[C.RhsCol] : C.RhsVal);
  case Pred::Kind::In:
    return C.InSet.count(R[C.LhsCol]) != 0;
  case Pred::Kind::And:
    return evalCompiled(*C.A, R) && evalCompiled(*C.B, R);
  case Pred::Kind::Or:
    return evalCompiled(*C.A, R) || evalCompiled(*C.B, R);
  case Pred::Kind::Not:
    return !evalCompiled(*C.A, R);
  }
  assert(false && "unknown predicate kind");
  return false;
}

/// Collects top-level equality conjuncts `col = value` as pre-bound join
/// classes. Returns false when two conjuncts bind one class to different
/// values — the filter is then unsatisfiable over the join.
bool collectEqBindings(const CompiledPred &C, const ChainPlan &P,
                       ClassVals &Vals) {
  if (C.K == Pred::Kind::And)
    return collectEqBindings(*C.A, P, Vals) && collectEqBindings(*C.B, P, Vals);
  if (C.K == Pred::Kind::Cmp && C.Op == CmpOp::Eq && !C.RhsIsCol) {
    unsigned Cls = P.ColClass[C.LhsCol];
    if (Vals[Cls].has_value())
      return *Vals[Cls] == C.RhsVal;
    Vals[Cls] = C.RhsVal;
  }
  return true;
}

class EvalContext {
public:
  EvalContext(const Schema &S, const Database &DB, const Env &E,
              PlanCache &Plans)
      : S(S), DB(DB), E(E), Plans(Plans) {}

  /// Evaluates predicate \p P over row \p R of \p VT. Returns nullopt on
  /// ill-formed constructs (unresolvable attribute, unbound parameter).
  /// Used by the naive (--no-index) mode.
  std::optional<bool> evalPred(const Pred &P, const VirtualTable &VT,
                               const Row &R) {
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &C = static_cast<const CmpPred &>(P);
      std::optional<size_t> L = VT.findCol(C.getLhs());
      if (!L)
        return std::nullopt;
      Value Rhs;
      if (C.rhsIsAttr()) {
        std::optional<size_t> RC = VT.findCol(C.getRhsAttr());
        if (!RC)
          return std::nullopt;
        Rhs = R[*RC];
      } else {
        std::optional<Value> V = evalOperand(C.getRhsOperand(), E);
        if (!V)
          return std::nullopt;
        Rhs = *V;
      }
      return evalCmpOp(C.getOp(), R[*L], Rhs);
    }
    case Pred::Kind::In: {
      const auto &I = static_cast<const InPred &>(P);
      std::optional<size_t> L = VT.findCol(I.getLhs());
      if (!L)
        return std::nullopt;
      std::optional<VirtualTable> Sub = evalQueryRec(I.getSubQuery());
      if (!Sub || Sub->Columns.size() != 1)
        return std::nullopt;
      for (const Row &SR : Sub->Rows)
        if (SR[0] == R[*L])
          return true;
      return false;
    }
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      std::optional<bool> L = evalPred(B.getLhs(), VT, R);
      std::optional<bool> Rv = evalPred(B.getRhs(), VT, R);
      if (!L || !Rv)
        return std::nullopt;
      return P.getKind() == Pred::Kind::And ? (*L && *Rv) : (*L || *Rv);
    }
    case Pred::Kind::Not: {
      std::optional<bool> Sub =
          evalPred(static_cast<const NotPred &>(P).getSubPred(), VT, R);
      if (!Sub)
        return std::nullopt;
      return !*Sub;
    }
    }
    assert(false && "unknown predicate kind");
    return std::nullopt;
  }

  /// Compiles \p P against column list \p Cols. Returns nullopt when the
  /// predicate is ill-formed (which is row-independent).
  std::optional<CompiledPred>
  compilePred(const Pred &P, const std::vector<QualifiedAttr> &Cols) {
    CompiledPred C;
    C.K = P.getKind();
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &Cmp = static_cast<const CmpPred &>(P);
      std::optional<size_t> L = VirtualTable::findColIn(Cols, Cmp.getLhs());
      if (!L)
        return std::nullopt;
      C.LhsCol = *L;
      C.Op = Cmp.getOp();
      if (Cmp.rhsIsAttr()) {
        std::optional<size_t> RC =
            VirtualTable::findColIn(Cols, Cmp.getRhsAttr());
        if (!RC)
          return std::nullopt;
        C.RhsIsCol = true;
        C.RhsCol = *RC;
      } else {
        std::optional<Value> V = evalOperand(Cmp.getRhsOperand(), E);
        if (!V)
          return std::nullopt;
        C.RhsVal = std::move(*V);
      }
      return C;
    }
    case Pred::Kind::In: {
      const auto &I = static_cast<const InPred &>(P);
      std::optional<size_t> L = VirtualTable::findColIn(Cols, I.getLhs());
      if (!L)
        return std::nullopt;
      C.LhsCol = *L;
      // The subquery does not depend on the outer row: evaluate it once.
      std::optional<VirtualTable> Sub = evalQueryRec(I.getSubQuery());
      if (!Sub || Sub->Columns.size() != 1)
        return std::nullopt;
      for (const Row &SR : Sub->Rows)
        C.InSet.insert(SR[0]);
      return C;
    }
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      std::optional<CompiledPred> L = compilePred(B.getLhs(), Cols);
      std::optional<CompiledPred> R = compilePred(B.getRhs(), Cols);
      if (!L || !R)
        return std::nullopt;
      C.A = std::make_unique<CompiledPred>(std::move(*L));
      C.B = std::make_unique<CompiledPred>(std::move(*R));
      return C;
    }
    case Pred::Kind::Not: {
      std::optional<CompiledPred> Sub =
          compilePred(static_cast<const NotPred &>(P).getSubPred(), Cols);
      if (!Sub)
        return std::nullopt;
      C.A = std::make_unique<CompiledPred>(std::move(*Sub));
      return C;
    }
    }
    assert(false && "unknown predicate kind");
    return std::nullopt;
  }

  /// Evaluates a chain leaf. Returns nullopt if a member table is missing.
  std::optional<VirtualTable> evalChain(const JoinChain &Chain) {
    for (const std::string &T : Chain.getTables())
      if (!DB.findTable(T))
        return std::nullopt;
    if (!evalIndexEnabled()) {
      JoinRows JR = computeJoinRowsNaive(Chain, S, DB);
      return materializeRows(Chain.allAttrs(S), Chain.getTables(), DB, JR);
    }
    std::shared_ptr<const ChainPlan> Plan = Plans.chainPlan(Chain);
    JoinRows JR = computeJoinRowsIndexed(*Plan, DB, nullptr);
    return materializeRows(Plan->AllAttrs, Chain.getTables(), DB, JR);
  }

  /// Indexed-mode σ: compile the predicate once; when the subquery is a
  /// bare chain, push equality conjuncts down into the join as pre-bound
  /// classes. Byte-identical to the naive path: the pushdown only prunes
  /// rows the compiled predicate would reject, and predicate
  /// well-formedness is row-independent (an ill-formed predicate yields
  /// nullopt iff the subquery has at least one row, as before).
  std::optional<VirtualTable> evalFilterIndexed(const FilterQuery &F) {
    std::optional<VirtualTable> Sub;
    std::optional<CompiledPred> CP;
    if (const auto *CQ = dyn_cast_chain(F.getSubQuery())) {
      const JoinChain &Chain = CQ->getJoinChain();
      for (const std::string &T : Chain.getTables())
        if (!DB.findTable(T))
          return std::nullopt;
      std::shared_ptr<const ChainPlan> Plan = Plans.chainPlan(Chain);
      CP = compilePred(F.getPred(), Plan->AllAttrs);
      JoinRows JR;
      bool Feasible = true;
      ClassVals Pre(Plan->numClasses());
      if (CP)
        Feasible = collectEqBindings(*CP, *Plan, Pre);
      if (Feasible)
        JR = computeJoinRowsIndexed(*Plan, DB, CP ? &Pre : nullptr);
      Sub = materializeRows(Plan->AllAttrs, Chain.getTables(), DB, JR);
    } else {
      Sub = evalQueryRec(F.getSubQuery());
      if (!Sub)
        return std::nullopt;
      CP = compilePred(F.getPred(), Sub->Columns);
    }
    VirtualTable Out;
    Out.Columns = Sub->Columns;
    if (!CP) {
      if (Sub->Rows.empty())
        return Out;
      return std::nullopt;
    }
    for (Row &R : Sub->Rows)
      if (evalCompiled(*CP, R))
        Out.Rows.push_back(std::move(R));
    return Out;
  }

  /// Compositional query evaluation.
  std::optional<VirtualTable> evalQueryRec(const Query &Q) {
    switch (Q.getKind()) {
    case Query::Kind::Chain:
      return evalChain(static_cast<const ChainQuery &>(Q).getJoinChain());
    case Query::Kind::Filter: {
      const auto &F = static_cast<const FilterQuery &>(Q);
      if (evalIndexEnabled())
        return evalFilterIndexed(F);
      std::optional<VirtualTable> Sub = evalQueryRec(F.getSubQuery());
      if (!Sub)
        return std::nullopt;
      VirtualTable Out;
      Out.Columns = Sub->Columns;
      for (const Row &R : Sub->Rows) {
        std::optional<bool> Keep = evalPred(F.getPred(), *Sub, R);
        if (!Keep)
          return std::nullopt;
        if (*Keep)
          Out.Rows.push_back(R);
      }
      return Out;
    }
    case Query::Kind::Project: {
      const auto &P = static_cast<const ProjectQuery &>(Q);
      std::optional<VirtualTable> Sub = evalQueryRec(P.getSubQuery());
      if (!Sub)
        return std::nullopt;
      std::vector<size_t> Cols;
      for (const AttrRef &A : P.getAttrs()) {
        std::optional<size_t> C = Sub->findCol(A);
        if (!C)
          return std::nullopt;
        Cols.push_back(*C);
      }
      VirtualTable Out;
      for (size_t C : Cols)
        Out.Columns.push_back(Sub->Columns[C]);
      for (const Row &R : Sub->Rows) {
        Row Proj;
        Proj.reserve(Cols.size());
        for (size_t C : Cols)
          Proj.push_back(R[C]);
        Out.Rows.push_back(std::move(Proj));
      }
      return Out;
    }
    }
    assert(false && "unknown query kind");
    return std::nullopt;
  }

private:
  static const ChainQuery *dyn_cast_chain(const Query &Q) {
    return Q.getKind() == Query::Kind::Chain
               ? static_cast<const ChainQuery *>(&Q)
               : nullptr;
  }

  const Schema &S;
  const Database &DB;
  const Env &E;
  PlanCache &Plans;
};

/// Binds positional \p Args to \p F's parameters. Returns nullopt on arity
/// or type mismatch.
std::optional<Env> bindParams(const Function &F,
                              const std::vector<Value> &Args) {
  const std::vector<Param> &Ps = F.getParams();
  if (Ps.size() != Args.size())
    return std::nullopt;
  Env E;
  for (size_t I = 0; I < Ps.size(); ++I) {
    if (!Args[I].hasType(Ps[I].Type))
      return std::nullopt;
    E.emplace(Ps[I].Name, Args[I]);
  }
  return E;
}

/// Executes an insert statement: one row per chain table; attributes in the
/// same join-equivalence class share an explicit value or a fresh UID
/// (Sec. 3.1). Returns false on ill-formed constructs or conflicting
/// explicit assignments to one class.
bool execInsert(const InsertStmt &I, const Schema &S, const Env &E,
                Database &DB, UidGen &Uids, PlanCache &Plans) {
  const JoinChain &Chain = I.getChain();
  for (const std::string &T : Chain.getTables())
    if (!DB.findTable(T))
      return false;

  // The class partition comes from the plan cache in indexed mode and is
  // rebuilt per statement in oracle mode (the original behaviour).
  std::shared_ptr<const ChainPlan> Plan;
  std::optional<JoinChain::AttrClassPartition> Local;
  const JoinChain::AttrClassPartition *Part;
  if (evalIndexEnabled()) {
    Plan = Plans.chainPlan(Chain);
    Part = &Plan->Part;
  } else {
    Local = Chain.attrClassPartition(S);
    Part = &*Local;
  }

  // Assign explicit values to classes.
  std::vector<std::optional<Value>> ClassVal(Part->Classes.size());
  for (const auto &[Ref, Op] : I.getValues()) {
    std::optional<QualifiedAttr> QA = Chain.resolve(Ref, S);
    if (!QA)
      return false;
    std::optional<unsigned> C = Part->classOf(*QA);
    if (!C)
      return false;
    std::optional<Value> V = evalOperand(Op, E);
    if (!V)
      return false;
    if (ClassVal[*C].has_value() && *ClassVal[*C] != *V)
      return false; // Conflicting assignments to one join class.
    ClassVal[*C] = *V;
  }

  // Unassigned classes get fresh UIDs.
  for (std::optional<Value> &V : ClassVal)
    if (!V.has_value())
      V = Uids.fresh();

  // Emit one row per member table.
  const std::vector<std::string> &Tables = Chain.getTables();
  for (size_t T = 0; T < Tables.size(); ++T) {
    const std::vector<unsigned> &CO = Part->ClassOf[T];
    Row R;
    R.reserve(CO.size());
    for (unsigned C : CO)
      R.push_back(*ClassVal[C]);
    DB.getTable(Tables[T]).insertRow(std::move(R));
  }
  return true;
}

/// Returns, for each chain table, the provenance row indices of join rows
/// satisfying \p P (or of all join rows if \p P is null). Returns nullopt on
/// ill-formed constructs.
std::optional<std::vector<std::vector<size_t>>>
matchingProvenance(const JoinChain &Chain, const Pred *P, const Schema &S,
                   const Env &E, const Database &DB, PlanCache &Plans) {
  for (const std::string &T : Chain.getTables())
    if (!DB.findTable(T))
      return std::nullopt;
  EvalContext Ctx(S, DB, E, Plans);

  if (evalIndexEnabled()) {
    std::shared_ptr<const ChainPlan> Plan = Plans.chainPlan(Chain);
    std::optional<CompiledPred> CP;
    JoinRows JR;
    bool Feasible = true;
    if (P) {
      CP = Ctx.compilePred(*P, Plan->AllAttrs);
      if (CP) {
        ClassVals Pre(Plan->numClasses());
        Feasible = collectEqBindings(*CP, *Plan, Pre);
        if (Feasible)
          JR = computeJoinRowsIndexed(*Plan, DB, &Pre);
      } else {
        JR = computeJoinRowsIndexed(*Plan, DB, nullptr);
      }
    } else {
      JR = computeJoinRowsIndexed(*Plan, DB, nullptr);
    }
    if (P && !CP) {
      // Ill-formed predicate: nullopt iff any join row exists (matching the
      // per-row oracle, which fails on the first row it evaluates).
      if (JR.Rows.empty())
        return std::vector<std::vector<size_t>>{};
      return std::nullopt;
    }
    std::vector<std::vector<size_t>> Matching;
    if (!P) {
      Matching = std::move(JR.Rows);
      return Matching;
    }
    VirtualTable VT =
        materializeRows(Plan->AllAttrs, Chain.getTables(), DB, JR);
    for (size_t R = 0; R < VT.Rows.size(); ++R)
      if (evalCompiled(*CP, VT.Rows[R]))
        Matching.push_back(JR.Rows[R]);
    return Matching;
  }

  JoinRows JR = computeJoinRowsNaive(Chain, S, DB);
  VirtualTable VT = materializeRows(Chain.allAttrs(S), Chain.getTables(), DB, JR);

  std::vector<std::vector<size_t>> Matching;
  for (size_t R = 0; R < VT.Rows.size(); ++R) {
    bool Keep = true;
    if (P) {
      std::optional<bool> B = Ctx.evalPred(*P, VT, VT.Rows[R]);
      if (!B)
        return std::nullopt;
      Keep = *B;
    }
    if (Keep)
      Matching.push_back(JR.Rows[R]);
  }
  return Matching;
}

bool execDelete(const DeleteStmt &D, const Schema &S, const Env &E,
                Database &DB, PlanCache &Plans) {
  const JoinChain &Chain = D.getChain();
  std::optional<std::vector<std::vector<size_t>>> Matching =
      matchingProvenance(Chain, D.getPred(), S, E, DB, Plans);
  if (!Matching)
    return false;

  const std::vector<std::string> &Tables = Chain.getTables();
  for (const std::string &Target : D.getTargets()) {
    auto It = std::find(Tables.begin(), Tables.end(), Target);
    if (It == Tables.end())
      return false;
    size_t TIdx = static_cast<size_t>(It - Tables.begin());
    std::vector<size_t> Doomed;
    for (const std::vector<size_t> &Prov : *Matching)
      Doomed.push_back(Prov[TIdx]);
    DB.getTable(Target).eraseRows(Doomed);
  }
  return true;
}

bool execUpdate(const UpdateStmt &U, const Schema &S, const Env &E,
                Database &DB, PlanCache &Plans) {
  const JoinChain &Chain = U.getChain();
  std::optional<QualifiedAttr> Target = Chain.resolve(U.getTarget(), S);
  if (!Target)
    return false;
  std::optional<Value> V = evalOperand(U.getValue(), E);
  if (!V)
    return false;

  std::optional<std::vector<std::vector<size_t>>> Matching =
      matchingProvenance(Chain, U.getPred(), S, E, DB, Plans);
  if (!Matching)
    return false;

  const std::vector<std::string> &Tables = Chain.getTables();
  auto It = std::find(Tables.begin(), Tables.end(), Target->Table);
  assert(It != Tables.end() && "resolved attribute outside chain");
  size_t TIdx = static_cast<size_t>(It - Tables.begin());
  std::optional<unsigned> AttrIdx =
      S.getTable(Target->Table).attrIndex(Target->Attr);
  assert(AttrIdx && "resolved attribute missing from table");

  Table &Tbl = DB.getTable(Target->Table);
  for (const std::vector<size_t> &Prov : *Matching)
    Tbl.setValue(Prov[TIdx], *AttrIdx, *V);
  return true;
}

} // namespace

Evaluator::Evaluator(const Schema &S)
    : S(S), Plans(std::make_unique<PlanCache>(S)) {}

Evaluator::~Evaluator() = default;

bool Evaluator::callUpdate(const Function &F, const std::vector<Value> &Args,
                           Database &DB, UidGen &Uids) const {
  assert(F.isUpdate() && "callUpdate requires an update function");
  std::optional<Env> E = bindParams(F, Args);
  if (!E)
    return false;
  for (const StmtPtr &St : F.getBody()) {
    bool Ok = false;
    switch (St->getKind()) {
    case Stmt::Kind::Insert:
      Ok = execInsert(static_cast<const InsertStmt &>(*St), S, *E, DB, Uids,
                      *Plans);
      break;
    case Stmt::Kind::Delete:
      Ok = execDelete(static_cast<const DeleteStmt &>(*St), S, *E, DB, *Plans);
      break;
    case Stmt::Kind::Update:
      Ok = execUpdate(static_cast<const UpdateStmt &>(*St), S, *E, DB, *Plans);
      break;
    }
    if (!Ok)
      return false;
  }
  return true;
}

std::optional<ResultTable>
Evaluator::callQuery(const Function &F, const std::vector<Value> &Args,
                     const Database &DB) const {
  assert(F.isQuery() && "callQuery requires a query function");
  std::optional<Env> E = bindParams(F, Args);
  if (!E)
    return std::nullopt;
  return evalQuery(F.getQuery(), *E, DB);
}

std::optional<ResultTable>
Evaluator::evalQuery(const Query &Q, const std::map<std::string, Value> &Env,
                     const Database &DB) const {
  EvalContext Ctx(S, DB, Env, *Plans);
  std::optional<VirtualTable> VT = Ctx.evalQueryRec(Q);
  if (!VT)
    return std::nullopt;
  ResultTable RT;
  RT.Columns.reserve(VT->Columns.size());
  for (const QualifiedAttr &C : VT->Columns)
    RT.Columns.push_back(C.str());
  RT.Rows = std::move(VT->Rows);
  return RT;
}

std::optional<ResultTable> migrator::runSequence(const Program &P,
                                                 const Schema &S,
                                                 const InvocationSeq &Seq) {
  if (Seq.empty())
    return std::nullopt;
  Evaluator Eval(S);
  Database DB(S);
  UidGen Uids;
  for (size_t I = 0; I + 1 < Seq.size(); ++I) {
    const Function *F = P.findFunction(Seq[I].Func);
    if (!F || !F->isUpdate())
      return std::nullopt;
    if (!Eval.callUpdate(*F, Seq[I].Args, DB, Uids))
      return std::nullopt;
  }
  const Function *Last = P.findFunction(Seq.back().Func);
  if (!Last || !Last->isQuery())
    return std::nullopt;
  return Eval.callQuery(*Last, Seq.back().Args, DB);
}
