//===- eval/Plan.cpp - Compiled join-chain query plans ----------------------===//

#include "eval/Plan.h"

#include "obs/Metrics.h"

#include <atomic>
#include <cstdlib>
#include <string_view>

using namespace migrator;

obs::LockSite &migrator::detail::planCacheLockSite() {
  static obs::LockSite Site("plan_cache");
  return Site;
}

namespace {

std::atomic<int> IndexEnabledOverride{-1}; ///< -1 = follow the environment.

bool envDisablesIndex() {
  static const bool Disabled = [] {
    const char *E = std::getenv("MIGRATOR_NO_INDEX");
    return E && *E && std::string_view(E) != "0";
  }();
  return Disabled;
}

} // namespace

bool migrator::evalIndexEnabled() {
  int O = IndexEnabledOverride.load(std::memory_order_relaxed);
  if (O >= 0)
    return O != 0;
  return !envDisablesIndex();
}

void migrator::setEvalIndexEnabled(bool On) {
  IndexEnabledOverride.store(On ? 1 : 0, std::memory_order_relaxed);
}

std::shared_ptr<const ChainPlan> PlanCache::chainPlan(const JoinChain &C) {
  {
    // Hits — the overwhelming majority — hold the lock in shared mode, so
    // concurrent workers' lookups never serialize on each other.
    std::shared_lock<obs::ProfiledSharedMutex> Lock(M);
    auto It = Plans.find(&C);
    if (It != Plans.end() && It->second->Chain == C) {
      MIGRATOR_COUNTER_ADD("plan.cache_hits", 1);
      return It->second;
    }
  }

  auto Plan = std::make_shared<ChainPlan>();
  Plan->Chain = C;
  Plan->Part = C.attrClassPartition(S);
  Plan->AllAttrs = C.allAttrs(S);
  Plan->ColOffset.reserve(C.getNumTables());
  Plan->ColClass.reserve(Plan->AllAttrs.size());
  size_t Off = 0;
  for (size_t T = 0; T < C.getNumTables(); ++T) {
    Plan->ColOffset.push_back(Off);
    Off += Plan->Part.ClassOf[T].size();
    for (unsigned Cls : Plan->Part.ClassOf[T])
      Plan->ColClass.push_back(Cls);
  }
  MIGRATOR_COUNTER_ADD("eval.plan_compiles", 1);

  std::unique_lock<obs::ProfiledSharedMutex> Lock(M);
  // First insert wins under races; address reuse overwrites the stale plan.
  Plans[&C] = Plan;
  return Plan;
}
