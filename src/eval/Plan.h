//===- eval/Plan.h - Compiled join-chain query plans --------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiled-plan half of the indexed join engine (docs/PERFORMANCE.md,
/// "Join engine"). Evaluating a join chain used to recompute, on *every*
/// call, the chain's attribute equivalence classes, the per-attribute class
/// map, and the materialized column list; the bounded tester evaluates the
/// same handful of chains thousands of times per candidate. A ChainPlan
/// captures everything that depends only on (chain, schema); the PlanCache
/// memoizes plans per evaluator, keyed by chain identity and validated by
/// structural equality (so a recycled AST address can never serve a stale
/// plan).
///
/// The runtime-variant parts — join order (depends on table sizes) and
/// predicate operand values (depend on the parameter environment) — are
/// deliberately *not* in the plan; Evaluator.cpp derives them per call from
/// the plan's tables.
///
/// Observability: `eval.plan_compiles` counts compilations, `plan.cache_hits`
/// counts lookups served from the cache.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_EVAL_PLAN_H
#define MIGRATOR_EVAL_PLAN_H

#include "ast/JoinChain.h"
#include "obs/LockProfile.h"
#include "relational/Schema.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace migrator {

namespace detail {
/// The shared `plan_cache` lock site (one per-evaluator cache exists per
/// synthesize() run in practice; all report under one name).
obs::LockSite &planCacheLockSite();
} // namespace detail

/// Returns true when the indexed join engine is active (the default).
/// Disabled by `migrate_tool --no-index`, the MIGRATOR_NO_INDEX=1
/// environment variable, or setEvalIndexEnabled(false); when off, the
/// evaluator runs the original nested-loop/per-row-resolution code paths
/// unchanged — the differential-testing oracle.
bool evalIndexEnabled();

/// Overrides the index-engine switch for this process (tests, tools).
void setEvalIndexEnabled(bool On);

/// Everything about evaluating one join chain that depends only on the
/// (chain, schema) pair.
struct ChainPlan {
  /// Structural copy of the source chain, used to validate cache hits.
  JoinChain Chain;

  /// Class partition: classes, [table][attr] -> class, by-name lookup.
  JoinChain::AttrClassPartition Part;

  /// The materialized column list (Chain.allAttrs), one column per
  /// qualified attribute in chain-table order.
  std::vector<QualifiedAttr> AllAttrs;

  /// Offset of each member table's first column within AllAttrs.
  std::vector<size_t> ColOffset;

  /// Class id of each materialized column (aligned with AllAttrs).
  std::vector<unsigned> ColClass;

  size_t numTables() const { return Part.ClassOf.size(); }
  size_t numClasses() const { return Part.Classes.size(); }
};

/// Per-evaluator memo of chain plans. Thread-safe: the source-result cache
/// shares one evaluator across portfolio workers. Read-mostly by design —
/// a synthesis run compiles a handful of plans and then serves millions of
/// lookups — so the map sits behind a shared mutex: hits take the lock in
/// shared (reader) mode and proceed concurrently across workers; only the
/// rare compile upgrades to an exclusive hold. Before PR 8 every hit took
/// an exclusive `plan_cache` mutex, a fixed per-lookup serialization point
/// in jobs>1 contention profiles.
class PlanCache {
public:
  explicit PlanCache(const Schema &S) : S(S) {}

  /// Returns the plan for \p C, compiling it on first use. The plan is
  /// shared-owned, so it stays valid regardless of later cache growth.
  std::shared_ptr<const ChainPlan> chainPlan(const JoinChain &C);

private:
  const Schema &S;
  obs::ProfiledSharedMutex M{detail::planCacheLockSite()};
  /// Keyed by chain address for O(1) lookups; every hit is validated
  /// against the stored structural copy before being served.
  std::unordered_map<const JoinChain *, std::shared_ptr<const ChainPlan>>
      Plans;
};

} // namespace migrator

#endif // MIGRATOR_EVAL_PLAN_H
