//===- eval/Evaluator.h - Database program interpreter ------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The interpreter for the database-program language of Fig. 5, implementing
/// the semantics of Sec. 3.1:
///
///  * queries evaluate Π/σ/join compositionally over bag-semantics tables;
///  * join-chain inserts desugar into one insert per member table, with
///    join-linked attributes sharing explicit values or fresh UIDs;
///  * deletes and updates over join chains use tuple provenance — they act
///    on the source tuples contributing to matching join rows.
///
/// Candidate programs produced by sketch instantiation may be ill-formed at
/// runtime (e.g. an attribute hole pointing outside the chosen chain); the
/// evaluator reports this via call status instead of asserting, and the
/// synthesizer treats such candidates as failing.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_EVAL_EVALUATOR_H
#define MIGRATOR_EVAL_EVALUATOR_H

#include "ast/Program.h"
#include "relational/Database.h"
#include "relational/ResultTable.h"

#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace migrator {

class PlanCache;

/// Generator of globally fresh UID values within one program run.
class UidGen {
public:
  UidGen() = default;

  /// Resumes numbering at \p Start (used by the source-result cache to
  /// continue a memoized prefix state's counter).
  explicit UidGen(uint64_t Start) : Next(Start) {}

  Value fresh() { return Value::makeUid(Next++); }

  /// The id the next fresh() call would return.
  uint64_t peekNext() const { return Next; }

private:
  uint64_t Next = 1;
};

/// One function call of an invocation sequence.
struct Invocation {
  std::string Func;
  std::vector<Value> Args;

  std::string str() const;
};

/// An invocation sequence: zero or more update calls followed by one query
/// call (Sec. 3.2).
using InvocationSeq = std::vector<Invocation>;

/// Renders an invocation sequence, e.g. `addTA(1, "A", b"b0"); getTAInfo(1)`.
std::string sequenceStr(const InvocationSeq &Seq);

/// Interpreter over one schema. Holds a per-instance plan cache (eval/Plan.h)
/// memoizing join-chain class partitions and column maps across calls; the
/// cache is thread-safe, so one Evaluator may be shared across threads (the
/// source-result cache relies on this). Non-copyable.
class Evaluator {
public:
  explicit Evaluator(const Schema &S);
  ~Evaluator();

  Evaluator(const Evaluator &) = delete;
  Evaluator &operator=(const Evaluator &) = delete;

  const Schema &getSchema() const { return S; }

  /// Runs update function \p F with positional \p Args against \p DB.
  /// Returns false if evaluation hit an ill-formed construct (the database
  /// may be partially modified in that case).
  bool callUpdate(const Function &F, const std::vector<Value> &Args,
                  Database &DB, UidGen &Uids) const;

  /// Runs query function \p F with positional \p Args. Returns nullopt on
  /// ill-formed constructs.
  std::optional<ResultTable> callQuery(const Function &F,
                                       const std::vector<Value> &Args,
                                       const Database &DB) const;

  /// Evaluates a bare query (used by tests and the IN-subquery path).
  std::optional<ResultTable>
  evalQuery(const Query &Q, const std::map<std::string, Value> &Env,
            const Database &DB) const;

private:
  const Schema &S;
  /// Compiled-plan memo; mutated by const evaluation entry points (it is a
  /// cache, not observable state) and internally synchronized.
  std::unique_ptr<PlanCache> Plans;
};

/// Executes \p Seq on \p P from an empty instance of \p S and returns the
/// final query's result. Returns nullopt if any call is ill-formed, names an
/// unknown function, mismatches an arity, or if a non-final call is not an
/// update / the final call is not a query.
std::optional<ResultTable> runSequence(const Program &P, const Schema &S,
                                       const InvocationSeq &Seq);

} // namespace migrator

#endif // MIGRATOR_EVAL_EVALUATOR_H
