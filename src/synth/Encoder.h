//===- synth/Encoder.h - SAT encoding of sketch holes -------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The initial SAT encoding of sketch completion (Sec. 4.4): one boolean
/// variable b_i^j per (hole i, alternative j), with an n-ary xor
/// (exactly-one) constraint per hole, plus binary clauses for the sketch's
/// structural incompatibilities. Models correspond one-to-one to sketch
/// instantiations; the solver's blocking clauses (full-model for the
/// enumerative baseline, partial per minimum failing input for Migrator)
/// are added through this interface.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_ENCODER_H
#define MIGRATOR_SYNTH_ENCODER_H

#include "sat/Solver.h"
#include "sketch/Sketch.h"

#include <optional>
#include <vector>

namespace migrator {

/// Owns the SAT instance encoding one sketch's completions.
class SketchEncoder {
public:
  /// \p BiasFirstAlternatives seeds the SAT search toward each hole's first
  /// alternative (smallest chains / table lists). The paper's solver has no
  /// such heuristic; the comparison harnesses disable it for all strategies
  /// so the contrast measures conflict learning, not the heuristic.
  explicit SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives = true);

  /// Asks the solver for a model. Returns the hole assignment (alternative
  /// index per hole) or nullopt when the space is exhausted.
  std::optional<std::vector<unsigned>> nextAssignment();

  /// Blocks every completion agreeing with \p Assign on the holes in
  /// \p HoleIds (the paper's MFI blocking clause ¬(b_1^{k1} ∧ ... ∧ b_n^{kn})).
  /// Blocking all holes degenerates to full-model blocking.
  void block(const std::vector<unsigned> &Assign,
             const std::vector<unsigned> &HoleIds);

  /// Blocks the full assignment \p Assign (the enumerative baseline).
  void blockAll(const std::vector<unsigned> &Assign);

  /// Number of completions ruled out by a blocking clause over \p HoleIds:
  /// the product of the domain sizes of all *other* holes (how the paper
  /// counts "eliminates 18,225 programs"). Returned as double.
  double blockedCount(const std::vector<unsigned> &HoleIds) const;

  const Sketch &getSketch() const { return Sk; }

  /// The underlying CDCL solver, exposed read-only so callers can report
  /// its search statistics (conflicts, decisions, propagations, ...).
  const sat::Solver &getSatSolver() const { return Solver; }

private:
  const Sketch &Sk;
  sat::Solver Solver;
  std::vector<std::vector<sat::Var>> HoleVars; ///< [hole][alt] -> var.
  bool Trivial = false; ///< No holes: the single instantiation.
  bool TrivialUsed = false;
  bool Unsat = false;
};

} // namespace migrator

#endif // MIGRATOR_SYNTH_ENCODER_H
