//===- synth/Encoder.h - SAT encoding of sketch holes -------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The initial SAT encoding of sketch completion (Sec. 4.4): one boolean
/// variable b_i^j per (hole i, alternative j), with an n-ary xor
/// (exactly-one) constraint per hole, plus binary clauses for the sketch's
/// structural incompatibilities. Models correspond one-to-one to sketch
/// instantiations; the solver's blocking clauses (full-model for the
/// enumerative baseline, partial per minimum failing input for Migrator)
/// are added through this interface.
///
/// Two ownership modes:
///
///  * Standalone (the legacy arrangement): the encoder owns a private
///    sat::Solver that dies with it.
///  * Shared: the encoder borrows a long-lived solver and guards its
///    at-least-one clauses with a fresh activation literal, querying via
///    solve({Act}). Learned clauses, VSIDS activities, and saved phases
///    then survive from one sketch to the next; retire() deactivates the
///    encoding (root-asserts ¬Act and falsifies the hole variables) so the
///    solver's reduceDB pass can reclaim it. Only the at-least-one clauses
///    need the guard — at-most-one pairs, incompatibilities, and blocking
///    clauses are all-negative, hence satisfied once their variables are
///    root-false.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_ENCODER_H
#define MIGRATOR_SYNTH_ENCODER_H

#include "sat/Dimacs.h"
#include "sat/Solver.h"
#include "sketch/Sketch.h"

#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace migrator {

/// When non-empty, every constructed sketch encoding is also written to
/// `<dir>/sketch_<n>.cnf` in DIMACS form (the standalone, unguarded
/// encoding) for offline debugging and minimization. Thread-safe.
void setSketchCnfDumpDir(const std::string &Dir);

/// Owns (or borrows) the SAT instance encoding one sketch's completions.
class SketchEncoder {
public:
  /// Standalone mode: a private solver per encoder.
  ///
  /// \p BiasFirstAlternatives picks the canonical model order: on, holes
  /// enumerate alternatives in rank order (smallest chains / table lists
  /// first); off, in reverse. Decisions are in canonical fixed order, so
  /// this is a total order on models, not a heuristic nudge — the paper's
  /// solver has no such preference, and the comparison harnesses disable
  /// it for all strategies so the contrast measures conflict learning.
  explicit SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives = true);

  /// Shared mode: encode into \p SharedSolver (which must outlive the
  /// encoder), guarded by a fresh activation literal. The solver must use
  /// the incremental engine.
  SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives,
                sat::Solver &SharedSolver);

  /// Asks the solver for a model. Returns the hole assignment (alternative
  /// index per hole) or nullopt when the space is exhausted.
  std::optional<std::vector<unsigned>> nextAssignment();

  /// Blocks every completion agreeing with \p Assign on the holes in
  /// \p HoleIds (the paper's MFI blocking clause ¬(b_1^{k1} ∧ ... ∧ b_n^{kn})).
  /// Blocking all holes degenerates to full-model blocking.
  void block(const std::vector<unsigned> &Assign,
             const std::vector<unsigned> &HoleIds);

  /// Blocks the full assignment \p Assign (the enumerative baseline).
  void blockAll(const std::vector<unsigned> &Assign);

  /// Number of completions ruled out by a blocking clause over \p HoleIds:
  /// the product of the domain sizes of all *other* holes (how the paper
  /// counts "eliminates 18,225 programs"). Returned as double.
  double blockedCount(const std::vector<unsigned> &HoleIds) const;

  /// Shared mode: permanently deactivates this encoding in the shared
  /// solver — root-asserts ¬Act and root-falsifies every hole variable, so
  /// all of the encoding's clauses become root-satisfied and reclaimable by
  /// reduceDB(). Idempotent; a no-op in standalone mode and for trivial
  /// sketches.
  void retire();

  /// The standalone (unguarded, self-contained) DIMACS form of this
  /// sketch's encoding: sequentially numbered (hole, alternative) variables
  /// with the exactly-one and incompatibility clauses. Blocking clauses and
  /// learned state are not included — re-solving it from scratch must agree
  /// with the first model draw modulo hole-variable semantics.
  sat::DimacsProblem exportDimacs() const;

  const Sketch &getSketch() const { return Sk; }

  /// The underlying CDCL solver, exposed read-only so callers can report
  /// its search statistics (conflicts, decisions, propagations, ...).
  const sat::Solver &getSatSolver() const { return *S; }

private:
  void encode(bool BiasFirstAlternatives);
  void maybeDumpCnf() const;

  const Sketch &Sk;
  std::unique_ptr<sat::Solver> Owned; ///< Standalone mode only.
  sat::Solver *S;                     ///< Owned.get() or the shared solver.
  bool Shared = false;
  sat::Var Act = -1; ///< Activation literal (shared mode only).
  std::vector<std::vector<sat::Var>> HoleVars; ///< [hole][alt] -> var.
  bool Trivial = false; ///< No holes: the single instantiation.
  bool TrivialUsed = false;
  bool Unsat = false;
  bool Retired = false;
};

} // namespace migrator

#endif // MIGRATOR_SYNTH_ENCODER_H
