//===- synth/Synthesizer.h - Top-level synthesis loop --------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level Synthesize procedure (Algorithm 1): lazily enumerate value
/// correspondences best-first, generate a sketch for each, and attempt
/// sketch completion; the first completion equivalent to the source program
/// is the migrated program.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_SYNTHESIZER_H
#define MIGRATOR_SYNTH_SYNTHESIZER_H

#include "obs/Metrics.h"
#include "sketch/SketchGen.h"
#include "synth/SketchSolver.h"
#include "vc/VcEnumerator.h"

#include <optional>
#include <string>

namespace migrator {

/// Options for the full pipeline.
struct SynthOptions {
  VcOptions Vc;
  SketchGenOptions SketchGen;
  SolverOptions Solver;

  /// Cap on the number of value correspondences attempted.
  uint64_t MaxVcs = 10000;

  /// Overall wall-clock budget in seconds (infinity = none).
  double TimeBudgetSec = std::numeric_limits<double>::infinity();
};

/// Statistics of one synthesis run (the Table 1 columns).
struct SynthStats {
  size_t NumVcs = 0;        ///< "Value Corr": correspondences attempted.
  uint64_t Iters = 0;       ///< "Iters": candidate programs explored.
  double SketchSpace = 0;   ///< "Sketch Space": total completions across all
                            ///< sketches attempted in this run (accumulated;
                            ///< earlier versions reported only the last
                            ///< sketch, under-counting multi-VC runs).
  double SynthTimeSec = 0;  ///< "Synth Time": total minus verification.
  double VerifyTimeSec = 0; ///< Deep-verification time.
  double TotalTimeSec = 0;  ///< "Total Time".
  bool TimedOut = false;
};

/// The outcome of Synthesize.
struct SynthResult {
  std::optional<Program> Prog;
  SynthStats Stats;

  /// Delta of the global metrics registry over this run: every counter,
  /// gauge, and histogram the pipeline touched (empty when metrics were
  /// disabled). See docs/OBSERVABILITY.md for the metric names.
  obs::MetricsSnapshot Metrics;

  bool succeeded() const { return Prog.has_value(); }
};

/// Runs Algorithm 1: migrates \p SourceProg from \p SourceSchema to
/// \p TargetSchema.
SynthResult synthesize(const Schema &SourceSchema, const Program &SourceProg,
                       const Schema &TargetSchema, SynthOptions Opts = {});

} // namespace migrator

#endif // MIGRATOR_SYNTH_SYNTHESIZER_H
