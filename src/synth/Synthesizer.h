//===- synth/Synthesizer.h - Top-level synthesis loop --------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level Synthesize procedure (Algorithm 1): lazily enumerate value
/// correspondences best-first, generate a sketch for each, and attempt
/// sketch completion; the first completion equivalent to the source program
/// is the migrated program.
///
/// The parallel engine (docs/PERFORMANCE.md) layers three mechanisms over
/// Algorithm 1 without changing what is synthesized:
///
///  * *sketch portfolio* — waves of the next PortfolioWidth rank-ordered
///    sketches race on a shared work-stealing pool, each worker with its own
///    solver and SAT encoder; a verified solution cancels the losers;
///  * *batched candidate testing* — each solver draws SolverOptions::Batch
///    models per SAT round and fans their tests onto the same pool;
///  * *source-result cache* — source-side executions are memoized across
///    candidates, sketches, and workers (synth/SourceCache.h).
///
/// With Deterministic set, a wave always answers with its lowest-ranked
/// successful sketch, making the output byte-identical at any thread count.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_SYNTHESIZER_H
#define MIGRATOR_SYNTH_SYNTHESIZER_H

#include "obs/Metrics.h"
#include "sketch/SketchGen.h"
#include "synth/SketchSolver.h"
#include "vc/VcEnumerator.h"

#include <optional>
#include <string>

namespace migrator {

/// Options for the full pipeline.
struct SynthOptions {
  VcOptions Vc;
  SketchGenOptions SketchGen;
  SolverOptions Solver;

  /// Cap on the number of value correspondences attempted.
  uint64_t MaxVcs = 10000;

  /// Overall wall-clock budget in seconds (infinity = none).
  double TimeBudgetSec = std::numeric_limits<double>::infinity();

  /// Worker threads shared by the sketch portfolio and candidate batches.
  /// 1 = fully sequential: no pool is created and no threads are spawned.
  unsigned Jobs = 1;

  /// Sketches raced per portfolio wave; 0 picks Jobs. Width 1 disables the
  /// portfolio but keeps batched testing and the source cache.
  unsigned PortfolioWidth = 0;

  /// Deterministic portfolio mode: a wave always returns the completion of
  /// its lowest-ranked successful sketch (a winning rank only cancels
  /// higher ranks), so results are byte-identical at any Jobs value. Off:
  /// the first verified solution wins and cancels every other rank.
  bool Deterministic = false;

  /// Memoize source-side executions across candidates, sketches, and
  /// portfolio workers (see synth/SourceCache.h).
  bool UseSourceCache = true;

  /// Minimum Jobs value at which the source cache is actually attached.
  /// With copy-on-write table snapshots a sequential run recomputes source
  /// prefixes about as fast as the cache can memoize them, so by default
  /// the cache only rides along when several workers share it. Re-measured
  /// after the PR 8 lock-striping (bench_ablation Sec. 8): striping removes
  /// cross-worker contention, not the per-probe key hashing and state
  /// storage a jobs=1 run pays, and cache-on remains slightly slower
  /// sequentially (coachup 1.2 s vs 1.1 s) — the default stands. Set to 1
  /// (or 0) to force the cache on at any Jobs value — benches and tests
  /// measuring the cache itself do.
  unsigned SourceCacheMinJobs = 2;
};

/// Statistics of one synthesis run (the Table 1 columns).
struct SynthStats {
  size_t NumVcs = 0;        ///< "Value Corr": correspondences attempted.
  uint64_t Iters = 0;       ///< "Iters": candidate programs explored.
  double SketchSpace = 0;   ///< "Sketch Space": total completions across all
                            ///< sketches attempted in this run (accumulated;
                            ///< earlier versions reported only the last
                            ///< sketch, under-counting multi-VC runs).
  double SynthTimeSec = 0;  ///< "Synth Time": total minus verification.
  double VerifyTimeSec = 0; ///< Deep-verification time.
  double TotalTimeSec = 0;  ///< "Total Time".
  bool TimedOut = false;

  /// Full solver statistics, merged across every solve of the run in rank
  /// order via SolveStats::operator+= (Iters and VerifyTimeSec above mirror
  /// the corresponding fields for the Table 1 columns).
  SolveStats Solve;
};

/// The outcome of Synthesize.
struct SynthResult {
  std::optional<Program> Prog;
  SynthStats Stats;

  /// Delta of the global metrics registry over this run: every counter,
  /// gauge, and histogram the pipeline touched (empty when metrics were
  /// disabled). See docs/OBSERVABILITY.md for the metric names.
  obs::MetricsSnapshot Metrics;

  bool succeeded() const { return Prog.has_value(); }
};

/// Runs Algorithm 1: migrates \p SourceProg from \p SourceSchema to
/// \p TargetSchema.
SynthResult synthesize(const Schema &SourceSchema, const Program &SourceProg,
                       const Schema &TargetSchema, SynthOptions Opts = {});

} // namespace migrator

#endif // MIGRATOR_SYNTH_SYNTHESIZER_H
