//===- synth/SketchSolver.cpp - Sketch completion ---------------------------===//

#include "synth/SketchSolver.h"

#include "eval/Evaluator.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "relational/ResultTable.h"

#include <cassert>
#include <set>

using namespace migrator;

namespace {

/// Copies the cumulative CDCL counters of \p Sat into \p Stats and publishes
/// them to the metrics registry. Called once per solve() exit: the encoder
/// (and its solver) is per-sketch, so cumulative values *are* this solve's
/// values.
void recordSatStats(const sat::Solver &Sat, SolveStats &Stats) {
  Stats.SatConflicts = Sat.getNumConflicts();
  Stats.SatDecisions = Sat.getNumDecisions();
  Stats.SatPropagations = Sat.getNumPropagations();
  Stats.SatLearnedClauses = Sat.getNumLearnedClauses();
  Stats.SatRestarts = Sat.getNumRestarts();
  MIGRATOR_COUNTER_ADD("solver.sat_conflicts", Stats.SatConflicts);
  MIGRATOR_COUNTER_ADD("solver.sat_decisions", Stats.SatDecisions);
  MIGRATOR_COUNTER_ADD("solver.sat_propagations", Stats.SatPropagations);
  MIGRATOR_COUNTER_ADD("solver.sat_learned_clauses", Stats.SatLearnedClauses);
  MIGRATOR_COUNTER_ADD("solver.sat_restarts", Stats.SatRestarts);
}

} // namespace

SketchSolver::SketchSolver(const Schema &SourceSchema,
                           const Program &SourceProg,
                           const Schema &TargetSchema, SolverOptions Opts)
    : SourceSchema(SourceSchema), SourceProg(SourceProg),
      TargetSchema(TargetSchema), Opts(Opts),
      Tester(SourceSchema, SourceProg, TargetSchema, Opts.Test),
      Verifier(SourceSchema, SourceProg, TargetSchema, Opts.Verify) {}

std::optional<Program> SketchSolver::solve(const Sketch &Sk,
                                           SolveStats &Stats) {
  MIGRATOR_TRACE_SCOPE_NAMED(Span, "solve.sketch");
  MIGRATOR_LATENCY_SCOPE("solver.solve_us");
  Timer Clock;
  SketchEncoder Enc(Sk, Opts.BiasFirstAlternatives);

  // CEGIS example cache: failing inputs with their source-program results.
  struct Example {
    InvocationSeq Seq;
    ResultTable SrcResult;
  };
  std::vector<Example> Examples;

  // The loop proper, so every exit path below funnels through one place
  // that records the encoder's CDCL statistics and the trace span args.
  auto Run = [&]() -> std::optional<Program> {
    while (true) {
      if (Clock.elapsedSeconds() > Opts.TimeBudgetSec) {
        Stats.TimedOut = true;
        return std::nullopt;
      }
      if (Stats.Iters >= Opts.MaxIters) {
        Stats.TimedOut = true;
        return std::nullopt;
      }

      std::optional<std::vector<unsigned>> Assign;
      {
        MIGRATOR_LATENCY_SCOPE("solver.sat_call_us");
        Assign = Enc.nextAssignment();
      }
      ++Stats.SatCalls;
      MIGRATOR_COUNTER_ADD("solver.sat_calls", 1);
      if (!Assign) {
        Stats.Exhausted = true;
        return std::nullopt;
      }
      ++Stats.Iters;
      MIGRATOR_COUNTER_ADD("solver.candidates", 1);
      Program Cand = Sk.instantiate(*Assign);

      // CEGIS screening: reject candidates that fail a cached example without
      // running the full tester.
      if (Opts.TheMode == SolverOptions::Mode::Cegis) {
        bool Screened = false;
        for (const Example &E : Examples) {
          std::optional<ResultTable> CandR =
              runSequence(Cand, TargetSchema, E.Seq);
          if (!CandR || !resultsEquivalent(E.SrcResult, *CandR)) {
            Enc.blockAll(*Assign);
            Stats.BlockedTotal += 1;
            Screened = true;
            break;
          }
        }
        if (Screened) {
          ++Stats.Rejected;
          MIGRATOR_COUNTER_ADD("solver.cegis_screened", 1);
          continue;
        }
      }

      TestOutcome Outcome;
      {
        MIGRATOR_LATENCY_SCOPE("solver.test_us");
        Outcome = Tester.test(Cand);
      }

      if (Outcome.isEquivalent()) {
        // Bounded testing passed; confirm with the deeper verifier
        // (the paper's "invoke Mediator only when no failing input is found").
        Timer VerifyClock;
        TestOutcome Deep;
        {
          MIGRATOR_TRACE_SCOPE("solve.verify");
          MIGRATOR_LATENCY_SCOPE("solver.verify_us");
          Deep = Verifier.test(Cand);
        }
        Stats.VerifyTimeSec += VerifyClock.elapsedSeconds();
        if (Deep.isEquivalent())
          return Cand;
        MIGRATOR_COUNTER_ADD("solver.deep_rejections", 1);
        Outcome = std::move(Deep);
      }
      ++Stats.Rejected;
      MIGRATOR_COUNTER_ADD("solver.candidates_rejected", 1);

      switch (Outcome.TheKind) {
      case TestOutcome::Kind::IllFormed: {
        // The offending function misbehaves independently of database state:
        // block its holes alone (at least as strong as any mode's clause).
        MIGRATOR_COUNTER_ADD("solver.illformed", 1);
        std::vector<unsigned> HoleIds =
            Sk.holesOfFunction(Outcome.IllFormedFunc);
        if (HoleIds.empty()) {
          Enc.blockAll(*Assign);
        } else {
          Enc.block(*Assign, HoleIds);
          Stats.BlockedTotal += Enc.blockedCount(HoleIds);
        }
        break;
      }
      case TestOutcome::Kind::Failing: {
        if (Opts.TheMode == SolverOptions::Mode::Mfi) {
          // Block the partial assignment of every hole in the functions the
          // MFI mentions (Sec. 4.4).
          MIGRATOR_HISTOGRAM_RECORD("solver.mfi_len", Outcome.Mfi.size());
          std::set<std::string> FuncNames;
          for (const Invocation &I : Outcome.Mfi)
            FuncNames.insert(I.Func);
          std::vector<unsigned> HoleIds;
          for (const std::string &F : FuncNames)
            for (unsigned H : Sk.holesOfFunction(F))
              HoleIds.push_back(H);
          if (HoleIds.empty()) {
            // MFI prune *miss*: the failing functions carry no holes, so the
            // partial clause degenerates to blocking this one model.
            ++Stats.MfiPruneMisses;
            MIGRATOR_COUNTER_ADD("solver.mfi_prune_misses", 1);
            Enc.blockAll(*Assign);
          } else {
            ++Stats.MfiPruneHits;
            MIGRATOR_COUNTER_ADD("solver.mfi_prune_hits", 1);
            Enc.block(*Assign, HoleIds);
            Stats.BlockedTotal += Enc.blockedCount(HoleIds);
          }
          break;
        }
        if (Opts.TheMode == SolverOptions::Mode::Cegis) {
          std::optional<ResultTable> SrcR =
              runSequence(SourceProg, SourceSchema, Outcome.Mfi);
          assert(SrcR && "source program failed on its own MFI");
          Examples.push_back({Outcome.Mfi, std::move(*SrcR)});
        }
        Enc.blockAll(*Assign);
        Stats.BlockedTotal += 1;
        break;
      }
      case TestOutcome::Kind::Equivalent:
        assert(false && "handled above");
        break;
      }
    }
  };

  std::optional<Program> Result = Run();
  recordSatStats(Enc.getSatSolver(), Stats);
  MIGRATOR_HISTOGRAM_RECORD("solver.candidates_per_sketch", Stats.Iters);
  if (Span.active())
    Span.arg("candidates", Stats.Iters)
        .arg("sat_calls", Stats.SatCalls)
        .arg("sat_conflicts", Stats.SatConflicts)
        .arg("mfi_prune_hits", Stats.MfiPruneHits)
        .arg("mfi_prune_misses", Stats.MfiPruneMisses)
        .arg("rejected", Stats.Rejected)
        .arg("solved", Result.has_value())
        .arg("timed_out", Stats.TimedOut)
        .arg("exhausted", Stats.Exhausted);
  return Result;
}
