//===- synth/SketchSolver.cpp - Sketch completion ---------------------------===//

#include "synth/SketchSolver.h"

#include "ast/Analysis.h"
#include "eval/Evaluator.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "relational/ResultTable.h"
#include "support/ThreadPool.h"
#include "synth/SourceCache.h"

#include <algorithm>
#include <cassert>
#include <memory>
#include <set>
#include <vector>

using namespace migrator;

namespace {

/// The CDCL counters of a persistent solver at one point in time. With the
/// incremental engine one sat::Solver outlives many sketch encodings, so
/// per-solve statistics must be differenced against a snapshot taken before
/// the encoding was built; the legacy (per-encoder scratch solver) path uses
/// a default-constructed (all-zero) snapshot, where delta == cumulative.
struct SatSnapshot {
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t Learned = 0;
  uint64_t Restarts = 0;
  uint64_t AssumptionCalls = 0;
  uint64_t ReduceDbs = 0;
  uint64_t Deleted = 0;
  uint64_t LbdSum = 0;
  uint64_t LbdCount = 0;
};

SatSnapshot snapshotOf(const sat::Solver &Sat) {
  SatSnapshot S;
  S.Conflicts = Sat.getNumConflicts();
  S.Decisions = Sat.getNumDecisions();
  S.Propagations = Sat.getNumPropagations();
  S.Learned = Sat.getNumLearnedClauses();
  S.Restarts = Sat.getNumRestarts();
  S.AssumptionCalls = Sat.getNumAssumptionCalls();
  S.ReduceDbs = Sat.getNumReduceDbs();
  S.Deleted = Sat.getNumDeletedClauses();
  S.LbdSum = Sat.getLbdSum();
  S.LbdCount = Sat.getLbdCount();
  return S;
}

/// Records the CDCL work done since \p Before into \p Stats and publishes it
/// to the metrics registry. Called once per solve() exit.
void recordSatStats(const sat::Solver &Sat, const SatSnapshot &Before,
                    SolveStats &Stats) {
  Stats.SatConflicts = Sat.getNumConflicts() - Before.Conflicts;
  Stats.SatDecisions = Sat.getNumDecisions() - Before.Decisions;
  Stats.SatPropagations = Sat.getNumPropagations() - Before.Propagations;
  Stats.SatLearnedClauses = Sat.getNumLearnedClauses() - Before.Learned;
  Stats.SatRestarts = Sat.getNumRestarts() - Before.Restarts;
  Stats.SatAssumptionCalls =
      Sat.getNumAssumptionCalls() - Before.AssumptionCalls;
  Stats.SatReduceDbs = Sat.getNumReduceDbs() - Before.ReduceDbs;
  Stats.SatDeletedClauses = Sat.getNumDeletedClauses() - Before.Deleted;
  MIGRATOR_COUNTER_ADD("solver.sat_conflicts", Stats.SatConflicts);
  MIGRATOR_COUNTER_ADD("solver.sat_decisions", Stats.SatDecisions);
  MIGRATOR_COUNTER_ADD("solver.sat_propagations", Stats.SatPropagations);
  MIGRATOR_COUNTER_ADD("solver.sat_learned_clauses", Stats.SatLearnedClauses);
  MIGRATOR_COUNTER_ADD("solver.sat_restarts", Stats.SatRestarts);
  MIGRATOR_COUNTER_ADD("sat.assumption_calls", Stats.SatAssumptionCalls);
  MIGRATOR_COUNTER_ADD("sat.reduce_dbs", Stats.SatReduceDbs);
  MIGRATOR_COUNTER_ADD("sat.deleted_clauses", Stats.SatDeletedClauses);
  uint64_t LbdN = Sat.getLbdCount() - Before.LbdCount;
  if (LbdN > 0) {
    uint64_t LbdS = Sat.getLbdSum() - Before.LbdSum;
    MIGRATOR_HISTOGRAM_RECORD("sat.avg_lbd", (LbdS + LbdN / 2) / LbdN);
  }
}

} // namespace

SolveStats &SolveStats::operator+=(const SolveStats &O) {
  Iters += O.Iters;
  BlockedTotal += O.BlockedTotal;
  VerifyTimeSec += O.VerifyTimeSec;
  TimedOut = TimedOut || O.TimedOut;
  Exhausted = Exhausted || O.Exhausted;
  Cancelled = Cancelled || O.Cancelled;
  SatCalls += O.SatCalls;
  SatConflicts += O.SatConflicts;
  SatDecisions += O.SatDecisions;
  SatPropagations += O.SatPropagations;
  SatLearnedClauses += O.SatLearnedClauses;
  SatRestarts += O.SatRestarts;
  SatAssumptionCalls += O.SatAssumptionCalls;
  SatReduceDbs += O.SatReduceDbs;
  SatDeletedClauses += O.SatDeletedClauses;
  MfiPruneHits += O.MfiPruneHits;
  MfiPruneMisses += O.MfiPruneMisses;
  Rejected += O.Rejected;
  return *this;
}

SketchSolver::SketchSolver(const Schema &SourceSchema,
                           const Program &SourceProg,
                           const Schema &TargetSchema, SolverOptions Opts,
                           SourceResultCache *SrcCache, ThreadPool *Pool)
    : SourceSchema(SourceSchema), SourceProg(SourceProg),
      TargetSchema(TargetSchema), Opts(Opts), SrcCache(SrcCache), Pool(Pool),
      Tester(SourceSchema, SourceProg, TargetSchema, Opts.Test, SrcCache),
      Verifier(SourceSchema, SourceProg, TargetSchema, Opts.Verify,
               SrcCache) {
  if (sat::satIncrementalEnabled())
    PersistentSat = std::make_unique<sat::Solver>();
}

std::optional<Program> SketchSolver::solve(const Sketch &Sk,
                                           SolveStats &Stats,
                                           const std::atomic<bool> *Cancel) {
  MIGRATOR_TRACE_SCOPE_NAMED(Span, "solve.sketch");
  MIGRATOR_LATENCY_SCOPE("solver.solve_us");
  Timer Clock;
  // Persistent mode: snapshot the shared solver's cumulative counters before
  // the encoding is built, so the stats recorded below are this solve's
  // deltas. Legacy mode: the encoder owns a scratch solver, and the zeroed
  // snapshot makes delta == cumulative.
  SatSnapshot Before;
  if (PersistentSat)
    Before = snapshotOf(*PersistentSat);
  SketchEncoder Enc =
      PersistentSat
          ? SketchEncoder(Sk, Opts.BiasFirstAlternatives, *PersistentSat)
          : SketchEncoder(Sk, Opts.BiasFirstAlternatives);

  // CEGIS example cache: failing inputs with their source-program results.
  struct Example {
    InvocationSeq Seq;
    std::shared_ptr<const ResultTable> SrcResult;
  };
  std::vector<Example> Examples;

  // Failure corpus: killer sequences of recent candidates with their
  // (candidate-independent) source results, replayed against each new
  // candidate before the full bounded enumeration. Entries are shared
  // const so the parallel test phase can read the vector while process
  // phases of later rounds reorder it; all mutation happens in the
  // sequential process phase, in draw order, keeping the search
  // deterministic and thread-count independent.
  struct CorpusEntry {
    InvocationSeq Seq;
    std::string Key; ///< invocationSeqKey(Seq), for dedup.
    std::shared_ptr<const ResultTable> SrcResult;
  };
  std::vector<std::shared_ptr<const CorpusEntry>> Corpus;
  const bool CorpusOn =
      Opts.UseFailureCorpus && Opts.TheMode != SolverOptions::Mode::Cegis;

  // The source result of a failing sequence, memoized when a cache is
  // attached (CEGIS examples and corpus entries both need it).
  auto SourceResultOf =
      [&](const InvocationSeq &Seq) -> std::shared_ptr<const ResultTable> {
    if (SrcCache)
      return SrcCache->run(Seq);
    std::optional<ResultTable> R = runSequence(SourceProg, SourceSchema, Seq);
    if (!R)
      return nullptr;
    return std::make_shared<const ResultTable>(std::move(*R));
  };

  // One drawn model of a batch, with its candidate and test verdict.
  struct Slot {
    std::vector<unsigned> Assign;
    std::optional<Program> Cand;
    bool Screened = false; ///< Rejected by the CEGIS example screen.
    std::shared_ptr<const CorpusEntry> Killer; ///< Corpus entry that hit.
    TestOutcome Outcome;
  };

  // The loop proper, so every exit path below funnels through one place
  // that records the encoder's CDCL statistics and the trace span args.
  auto Run = [&]() -> std::optional<Program> {
    while (true) {
      if (Cancel && Cancel->load(std::memory_order_relaxed)) {
        Stats.Cancelled = true;
        return std::nullopt;
      }
      if (Clock.elapsedSeconds() > Opts.TimeBudgetSec) {
        Stats.TimedOut = true;
        return std::nullopt;
      }
      if (Stats.Iters >= Opts.MaxIters) {
        Stats.TimedOut = true;
        return std::nullopt;
      }

      // Draw phase (sequential): pull up to Batch models, blocking each in
      // full at draw time. The full-model clause reserves the model for
      // this round and is subsumed by any stronger partial clause learned
      // from it below, so the remaining-model set evolves exactly as in the
      // one-at-a-time engine.
      std::vector<Slot> Batch;
      uint64_t Want = std::max<unsigned>(Opts.Batch, 1);
      Want = std::min<uint64_t>(Want, Opts.MaxIters - Stats.Iters);
      Batch.reserve(Want);
      for (uint64_t I = 0; I < Want; ++I) {
        std::optional<std::vector<unsigned>> Assign;
        {
          MIGRATOR_LATENCY_SCOPE("solver.sat_call_us");
          Assign = Enc.nextAssignment();
        }
        ++Stats.SatCalls;
        MIGRATOR_COUNTER_ADD("solver.sat_calls", 1);
        if (!Assign)
          break;
        ++Stats.Iters;
        MIGRATOR_COUNTER_ADD("solver.candidates", 1);
        Enc.blockAll(*Assign);
        Slot S;
        S.Assign = std::move(*Assign);
        S.Cand = Sk.instantiate(S.Assign);
        Batch.push_back(std::move(S));
      }
      if (Batch.empty()) {
        Stats.Exhausted = true;
        return std::nullopt;
      }
      MIGRATOR_HISTOGRAM_RECORD("solver.batch_size", Batch.size());

      // Test phase (parallel): screen and bounded-test every candidate of
      // the round. Examples is read-only until the group completes, and
      // the testers synchronize internally, so tasks share no mutable
      // state. With no pool, TaskGroup::run executes inline.
      {
        MIGRATOR_LATENCY_SCOPE("solver.test_us");
        TaskGroup Group(Pool);
        for (Slot &S : Batch)
          Group.run([this, &S, &Examples, &Corpus, CorpusOn]() {
            if (Opts.TheMode == SolverOptions::Mode::Cegis) {
              for (const Example &E : Examples) {
                std::optional<ResultTable> CandR =
                    runSequence(*S.Cand, TargetSchema, E.Seq);
                if (!CandR || !resultsEquivalent(*E.SrcResult, *CandR)) {
                  S.Screened = true;
                  return;
                }
              }
            }
            if (CorpusOn && !Corpus.empty()) {
              // Statically ill-formed candidates go straight to the tester,
              // whose IllFormed verdict earns the dedicated (stronger)
              // single-function clause; a corpus kill would demote it to a
              // failing-input clause.
              bool WellFormed = true;
              for (const Function &F : S.Cand->getFunctions())
                if (validateFunction(F, TargetSchema)) {
                  WellFormed = false;
                  break;
                }
              if (WellFormed) {
                uint64_t Replays = 0;
                for (const std::shared_ptr<const CorpusEntry> &E : Corpus) {
                  ++Replays;
                  std::optional<ResultTable> CandR =
                      runSequence(*S.Cand, TargetSchema, E->Seq);
                  // A nullopt result is a dynamic error on E->Seq — also a
                  // kill; either way the candidate demonstrably misbehaves
                  // on this input.
                  if (!CandR || !resultsEquivalent(*E->SrcResult, *CandR)) {
                    S.Killer = E;
                    break;
                  }
                }
                MIGRATOR_COUNTER_ADD("tester.corpus_replays", Replays);
                if (S.Killer) {
                  MIGRATOR_COUNTER_ADD("tester.corpus_kills", 1);
                  // Synthesize a Failing outcome so the process phase
                  // learns from corpus kills exactly as from tester kills.
                  S.Outcome.TheKind = TestOutcome::Kind::Failing;
                  S.Outcome.Mfi = S.Killer->Seq;
                  return;
                }
              }
            }
            S.Outcome = Tester.test(*S.Cand);
          });
        Group.wait();
      }

      // Process phase (sequential, in draw order): learn clauses and
      // confirm survivors. Draw-order processing keeps the clause sequence
      // — and hence the whole search — independent of the thread count.
      for (Slot &S : Batch) {
        if (S.Screened) {
          Stats.BlockedTotal += 1;
          ++Stats.Rejected;
          MIGRATOR_COUNTER_ADD("solver.cegis_screened", 1);
          continue;
        }

        TestOutcome Outcome = std::move(S.Outcome);
        if (Outcome.isEquivalent()) {
          if (Cancel && Cancel->load(std::memory_order_relaxed)) {
            Stats.Cancelled = true;
            return std::nullopt;
          }
          // Bounded testing passed; confirm with the deeper verifier (the
          // paper's "invoke Mediator only when no failing input is found").
          Timer VerifyClock;
          TestOutcome Deep;
          {
            MIGRATOR_TRACE_SCOPE("solve.verify");
            MIGRATOR_LATENCY_SCOPE("solver.verify_us");
            Deep = Verifier.test(*S.Cand);
          }
          Stats.VerifyTimeSec += VerifyClock.elapsedSeconds();
          if (Deep.isEquivalent())
            return std::move(*S.Cand);
          MIGRATOR_COUNTER_ADD("solver.deep_rejections", 1);
          Outcome = std::move(Deep);
        }
        ++Stats.Rejected;
        MIGRATOR_COUNTER_ADD("solver.candidates_rejected", 1);

        switch (Outcome.TheKind) {
        case TestOutcome::Kind::IllFormed: {
          // The offending function misbehaves independently of database
          // state: block its holes alone (at least as strong as any mode's
          // clause). The full model is already blocked from the draw phase.
          MIGRATOR_COUNTER_ADD("solver.illformed", 1);
          std::vector<unsigned> HoleIds =
              Sk.holesOfFunction(Outcome.IllFormedFunc);
          if (!HoleIds.empty()) {
            Enc.block(S.Assign, HoleIds);
            Stats.BlockedTotal += Enc.blockedCount(HoleIds);
          }
          break;
        }
        case TestOutcome::Kind::Failing: {
          if (Opts.TheMode == SolverOptions::Mode::Mfi) {
            // Block the partial assignment of every hole in the functions
            // the MFI mentions (Sec. 4.4).
            MIGRATOR_HISTOGRAM_RECORD("solver.mfi_len", Outcome.Mfi.size());
            std::set<std::string> FuncNames;
            for (const Invocation &I : Outcome.Mfi)
              FuncNames.insert(I.Func);
            std::vector<unsigned> HoleIds;
            for (const std::string &F : FuncNames)
              for (unsigned H : Sk.holesOfFunction(F))
                HoleIds.push_back(H);
            if (HoleIds.empty()) {
              // MFI prune *miss*: the failing functions carry no holes, so
              // the partial clause degenerates to the (already-applied)
              // full-model block.
              ++Stats.MfiPruneMisses;
              MIGRATOR_COUNTER_ADD("solver.mfi_prune_misses", 1);
            } else {
              ++Stats.MfiPruneHits;
              MIGRATOR_COUNTER_ADD("solver.mfi_prune_hits", 1);
              Enc.block(S.Assign, HoleIds);
              Stats.BlockedTotal += Enc.blockedCount(HoleIds);
            }
            break;
          }
          if (Opts.TheMode == SolverOptions::Mode::Cegis) {
            // Record the counterexample with its source result; the source
            // cache reuses memoized prefixes when attached.
            std::shared_ptr<const ResultTable> SrcR =
                SourceResultOf(Outcome.Mfi);
            assert(SrcR && "source program failed on its own MFI");
            Examples.push_back({std::move(Outcome.Mfi), std::move(SrcR)});
          }
          Stats.BlockedTotal += 1;
          break;
        }
        case TestOutcome::Kind::Equivalent:
          assert(false && "handled above");
          break;
        }

        // Corpus bookkeeping (sequential, draw order — deterministic at any
        // thread count). Kills promote their entry to the front so the next
        // candidate usually dies on replay #1; fresh killer sequences from
        // the bounded tester or the deep verifier are remembered up front.
        if (CorpusOn && Outcome.TheKind == TestOutcome::Kind::Failing) {
          if (S.Killer) {
            auto It = std::find(Corpus.begin(), Corpus.end(), S.Killer);
            if (It != Corpus.end() && It != Corpus.begin())
              std::rotate(Corpus.begin(), It, It + 1);
          } else {
            std::string Key = invocationSeqKey(Outcome.Mfi);
            bool Known = false;
            for (const std::shared_ptr<const CorpusEntry> &E : Corpus)
              if (E->Key == Key) {
                Known = true;
                break;
              }
            if (!Known) {
              std::shared_ptr<const ResultTable> SrcR =
                  SourceResultOf(Outcome.Mfi);
              assert(SrcR && "source program failed on its own MFI");
              Corpus.insert(Corpus.begin(),
                            std::make_shared<const CorpusEntry>(CorpusEntry{
                                std::move(Outcome.Mfi), std::move(Key),
                                std::move(SrcR)}));
              if (Corpus.size() > Opts.MaxFailureCorpus)
                Corpus.pop_back();
            }
          }
        }
      }
    }
  };

  std::optional<Program> Result = Run();
  // Persistent mode: deactivate this sketch's encoding so the shared
  // solver's next reduceDB pass reclaims its clauses (a no-op otherwise).
  Enc.retire();
  recordSatStats(Enc.getSatSolver(), Before, Stats);
  // Generational reset: variable indices (and the root facts retiring them)
  // can never be reclaimed, so a very long-lived solver would make each
  // encoding boundary's bookkeeping scans proportional to everything that
  // ever lived in it. Once fully retired the old state is search-inert
  // (beginEncoding() starts every encoding from a fresh-equivalent search),
  // so swapping in a new solver is behavior-neutral and keeps those scans
  // amortized O(1) per sketch.
  if (PersistentSat && PersistentSat->getNumVars() > 512)
    PersistentSat = std::make_unique<sat::Solver>();
  MIGRATOR_HISTOGRAM_RECORD("solver.candidates_per_sketch", Stats.Iters);
  if (Span.active())
    Span.arg("candidates", Stats.Iters)
        .arg("sat_calls", Stats.SatCalls)
        .arg("sat_conflicts", Stats.SatConflicts)
        .arg("mfi_prune_hits", Stats.MfiPruneHits)
        .arg("mfi_prune_misses", Stats.MfiPruneMisses)
        .arg("rejected", Stats.Rejected)
        .arg("solved", Result.has_value())
        .arg("timed_out", Stats.TimedOut)
        .arg("cancelled", Stats.Cancelled)
        .arg("exhausted", Stats.Exhausted);
  return Result;
}
