//===- synth/SketchSolver.cpp - Sketch completion ---------------------------===//

#include "synth/SketchSolver.h"

#include "eval/Evaluator.h"
#include "relational/ResultTable.h"

#include <cassert>
#include <set>

using namespace migrator;

SketchSolver::SketchSolver(const Schema &SourceSchema,
                           const Program &SourceProg,
                           const Schema &TargetSchema, SolverOptions Opts)
    : SourceSchema(SourceSchema), SourceProg(SourceProg),
      TargetSchema(TargetSchema), Opts(Opts),
      Tester(SourceSchema, SourceProg, TargetSchema, Opts.Test),
      Verifier(SourceSchema, SourceProg, TargetSchema, Opts.Verify) {}

std::optional<Program> SketchSolver::solve(const Sketch &Sk,
                                           SolveStats &Stats) {
  Timer Clock;
  SketchEncoder Enc(Sk, Opts.BiasFirstAlternatives);

  // CEGIS example cache: failing inputs with their source-program results.
  struct Example {
    InvocationSeq Seq;
    ResultTable SrcResult;
  };
  std::vector<Example> Examples;

  while (true) {
    if (Clock.elapsedSeconds() > Opts.TimeBudgetSec) {
      Stats.TimedOut = true;
      return std::nullopt;
    }
    if (Stats.Iters >= Opts.MaxIters) {
      Stats.TimedOut = true;
      return std::nullopt;
    }

    std::optional<std::vector<unsigned>> Assign = Enc.nextAssignment();
    if (!Assign) {
      Stats.Exhausted = true;
      return std::nullopt;
    }
    ++Stats.Iters;
    Program Cand = Sk.instantiate(*Assign);

    // CEGIS screening: reject candidates that fail a cached example without
    // running the full tester.
    if (Opts.TheMode == SolverOptions::Mode::Cegis) {
      bool Screened = false;
      for (const Example &E : Examples) {
        std::optional<ResultTable> CandR =
            runSequence(Cand, TargetSchema, E.Seq);
        if (!CandR || !resultsEquivalent(E.SrcResult, *CandR)) {
          Enc.blockAll(*Assign);
          Stats.BlockedTotal += 1;
          Screened = true;
          break;
        }
      }
      if (Screened)
        continue;
    }

    TestOutcome Outcome = Tester.test(Cand);

    if (Outcome.isEquivalent()) {
      // Bounded testing passed; confirm with the deeper verifier
      // (the paper's "invoke Mediator only when no failing input is found").
      Timer VerifyClock;
      TestOutcome Deep = Verifier.test(Cand);
      Stats.VerifyTimeSec += VerifyClock.elapsedSeconds();
      if (Deep.isEquivalent())
        return Cand;
      Outcome = std::move(Deep);
    }

    switch (Outcome.TheKind) {
    case TestOutcome::Kind::IllFormed: {
      // The offending function misbehaves independently of database state:
      // block its holes alone (at least as strong as any mode's clause).
      std::vector<unsigned> HoleIds =
          Sk.holesOfFunction(Outcome.IllFormedFunc);
      if (HoleIds.empty()) {
        Enc.blockAll(*Assign);
      } else {
        Enc.block(*Assign, HoleIds);
        Stats.BlockedTotal += Enc.blockedCount(HoleIds);
      }
      break;
    }
    case TestOutcome::Kind::Failing: {
      if (Opts.TheMode == SolverOptions::Mode::Mfi) {
        // Block the partial assignment of every hole in the functions the
        // MFI mentions (Sec. 4.4).
        std::set<std::string> FuncNames;
        for (const Invocation &I : Outcome.Mfi)
          FuncNames.insert(I.Func);
        std::vector<unsigned> HoleIds;
        for (const std::string &F : FuncNames)
          for (unsigned H : Sk.holesOfFunction(F))
            HoleIds.push_back(H);
        if (HoleIds.empty()) {
          Enc.blockAll(*Assign);
        } else {
          Enc.block(*Assign, HoleIds);
          Stats.BlockedTotal += Enc.blockedCount(HoleIds);
        }
        break;
      }
      if (Opts.TheMode == SolverOptions::Mode::Cegis) {
        std::optional<ResultTable> SrcR =
            runSequence(SourceProg, SourceSchema, Outcome.Mfi);
        assert(SrcR && "source program failed on its own MFI");
        Examples.push_back({Outcome.Mfi, std::move(*SrcR)});
      }
      Enc.blockAll(*Assign);
      Stats.BlockedTotal += 1;
      break;
    }
    case TestOutcome::Kind::Equivalent:
      assert(false && "handled above");
      break;
    }
  }
}
