//===- synth/Tester.h - Bounded equivalence testing and MFIs ------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Bounded testing of program equivalence and minimum-failing-input (MFI)
/// search (Sec. 5, "Generating minimum failing inputs"): a fixed seed set of
/// constants per type generates all invocation sequences in increasing
/// length; the first sequence on which the source and candidate programs
/// disagree is, by construction, a minimum failing input.
///
/// Engineering beyond the paper's description, preserving its semantics:
///
///  * *State sharing* — update prefixes are explored breadth-first with
///    database snapshots, so each prefix is executed once and every query is
///    probed at each prefix.
///  * *Relevance slicing* — for each query, only updates that (transitively)
///    write tables the query reads — in either program — can influence its
///    result; sequences containing irrelevant updates always have an
///    equally-failing subsequence, so restricting the search preserves both
///    soundness and MFI minimality.
///  * *State deduplication* — distinct prefixes reaching identical
///    (source DB, candidate DB) pairs (up to UID renaming) are explored
///    once.
///  * *Source-result caching* — the source side of every sequence is
///    candidate independent; when constructed with a SourceResultCache the
///    tester reuses memoized source database states and query results
///    across candidates, sketches, and portfolio workers (see
///    synth/SourceCache.h). Cached runs are byte-identical to direct ones,
///    so outcomes (including MFI minimality) do not change.
///
/// The same tester doubles as the bounded equivalence verifier (run with
/// larger bounds), substituting for the paper's Mediator back-end; see
/// DESIGN.md for the substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_TESTER_H
#define MIGRATOR_SYNTH_TESTER_H

#include "ast/Program.h"
#include "eval/Evaluator.h"
#include "relational/Schema.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace migrator {

/// Options controlling bounded testing.
struct TesterOptions {
  /// Maximum invocation-sequence length, including the final query.
  unsigned MaxSeqLen = 3;

  /// Seed constants per type (Sec. 5 uses {0, 1} for integers).
  std::vector<int64_t> IntSeeds = {0, 1};
  std::vector<std::string> StrSeeds = {"A", "B"};
  std::vector<std::string> BinSeeds = {"b0", "b1"};
  std::vector<bool> BoolSeeds = {false, true};

  /// Safety cap on BFS frontier size per query group and level.
  size_t MaxStatesPerLevel = 20000;

  /// Cap on argument tuples per function. Functions with few parameters use
  /// the full seed product; beyond the cap, tuples are chosen to vary every
  /// parameter at least once (all-first-seed, then one-parameter flips,
  /// then lexicographic fill).
  size_t MaxArgTuplesPerFunc = 16;

  /// Enables relevance slicing (ablation switch).
  bool UseRelevanceSlicing = true;
};

/// The verdict of one bounded test.
struct TestOutcome {
  enum class Kind {
    Equivalent, ///< No failing input within the bounds.
    Failing,    ///< Mfi holds a minimum failing input.
    IllFormed,  ///< The candidate misbehaves regardless of database state;
                ///< IllFormedFunc names the offending function.
  };

  Kind TheKind = Kind::Equivalent;
  InvocationSeq Mfi;
  std::string IllFormedFunc;

  bool isEquivalent() const { return TheKind == Kind::Equivalent; }
};

class SourceResultCache;

/// Bounded equivalence tester for one (source program, target schema) pair;
/// candidates over the target schema are tested against the source.
///
/// test() is safe to call concurrently from multiple threads on one tester
/// instance (the batched solver fans candidate tests onto the pool): all
/// per-test state is local, the sequence counter is atomic, and the shared
/// source cache synchronizes internally.
class EquivalenceTester {
public:
  /// \p SrcCache, when non-null, memoizes source-side states and results
  /// across candidates; it must outlive the tester.
  EquivalenceTester(const Schema &SourceSchema, const Program &SourceProg,
                    const Schema &TargetSchema, TesterOptions Opts = {},
                    SourceResultCache *SrcCache = nullptr);

  /// Tests \p Cand against the source program.
  TestOutcome test(const Program &Cand) const;

  /// Total sequences explored across all test() calls (statistics). Counts
  /// logical sequences; source-side work avoided by the cache is visible in
  /// tester.src_cache_hits instead.
  uint64_t getNumSequencesRun() const {
    return NumSequencesRun.load(std::memory_order_relaxed);
  }

  const TesterOptions &getOptions() const { return Opts; }

private:
  const Schema &SourceSchema;
  const Program &SourceProg;
  const Schema &TargetSchema;
  TesterOptions Opts;
  SourceResultCache *SrcCache;

  /// Shared source-side interpreter: the source program is fixed for the
  /// tester's lifetime, so hoisting the evaluator out of test() lets its
  /// plan cache stay warm across candidates and threads (it is internally
  /// synchronized). The candidate-side evaluator stays per-test — candidate
  /// ASTs are short-lived, so a shared cache would only accumulate dead
  /// entries.
  Evaluator SrcEval;

  /// All argument tuples for each function (seed-set product), precomputed.
  std::vector<std::vector<std::vector<Value>>> ArgTuples; ///< [funcIdx].
  mutable std::atomic<uint64_t> NumSequencesRun{0};
};

} // namespace migrator

#endif // MIGRATOR_SYNTH_TESTER_H
