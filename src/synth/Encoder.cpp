//===- synth/Encoder.cpp - SAT encoding of sketch holes ---------------------===//

#include "synth/Encoder.h"

#include <atomic>
#include <cassert>
#include <fstream>
#include <mutex>

using namespace migrator;

namespace {

std::mutex DumpDirMutex;
std::string DumpDir;                 // Guarded by DumpDirMutex.
std::atomic<uint64_t> DumpCounter{0};

std::string dumpDirSnapshot() {
  std::lock_guard<std::mutex> Lock(DumpDirMutex);
  return DumpDir;
}

} // namespace

void migrator::setSketchCnfDumpDir(const std::string &Dir) {
  std::lock_guard<std::mutex> Lock(DumpDirMutex);
  DumpDir = Dir;
}

SketchEncoder::SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives)
    : Sk(Sk), Owned(std::make_unique<sat::Solver>()), S(Owned.get()) {
  encode(BiasFirstAlternatives);
  maybeDumpCnf();
}

SketchEncoder::SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives,
                             sat::Solver &SharedSolver)
    : Sk(Sk), S(&SharedSolver), Shared(true) {
  encode(BiasFirstAlternatives);
  maybeDumpCnf();
}

void SketchEncoder::encode(bool BiasFirstAlternatives) {
  const std::vector<Hole> &Holes = Sk.getHoles();
  if (Holes.empty()) {
    Trivial = true;
    return;
  }
  // Sketch-completion solvers branch in canonical fixed order (lowest
  // variable first, preferred phase): every model drawn is then the
  // lex-least one remaining, a pure function of the encoding plus the
  // blocking clauses so far. That makes the assignment sequence — and the
  // synthesized program — identical across the incremental engine and the
  // scratch oracle, and across portfolio ranks, no matter how their learned
  // state differs.
  S->setFixedOrderDecisions(true);
  if (Shared) {
    // Encoding boundary: reclaim the predecessor encoding's clauses and
    // reset the branching state so this sketch's search is independent of
    // which sketches the shared solver saw before (jobs-determinism).
    S->beginEncoding();
    Act = S->newVar();
  }
  HoleVars.resize(Holes.size());
  // Variable creation order is the decision order. Chain holes come first —
  // models then settle candidate chains before the holes they constrain —
  // and within a hole the alternatives keep their rank order, so with the
  // first-alternative bias (phase = alternative 0) the lex-least models are
  // the simplest programs: cheapest to test and matching the paper's
  // outputs.
  for (int ChainPass = 1; ChainPass >= 0; --ChainPass) {
    for (size_t H = 0; H < Holes.size(); ++H) {
      bool IsChain = Holes[H].TheKind == Hole::Kind::Chain ||
                     Holes[H].TheKind == Hole::Kind::ChainSet;
      if (IsChain != (ChainPass == 1))
        continue;
      HoleVars[H].resize(Holes[H].size());
      for (size_t A = 0; A < Holes[H].size(); ++A) {
        sat::Var V = S->newVar();
        HoleVars[H][A] = V;
        if (BiasFirstAlternatives)
          S->setPhase(V, A == 0);
      }
    }
  }
  for (size_t H = 0; H < Holes.size(); ++H) {
    if (!Shared) {
      if (!S->addExactlyOne(HoleVars[H])) {
        Unsat = true;
        return;
      }
      continue;
    }
    // Shared mode: only the at-least-one clause needs the activation guard;
    // the pairwise at-most-one clauses are all-negative and become
    // root-satisfied once the encoding is retired.
    std::vector<sat::Lit> Alo;
    Alo.reserve(HoleVars[H].size() + 1);
    Alo.push_back(sat::negLit(Act));
    for (sat::Var V : HoleVars[H])
      Alo.push_back(sat::posLit(V));
    if (!S->addClause(std::move(Alo))) {
      Unsat = true;
      return;
    }
    for (size_t I = 0; I < HoleVars[H].size(); ++I)
      for (size_t J = I + 1; J < HoleVars[H].size(); ++J)
        if (!S->addClause(
                {sat::negLit(HoleVars[H][I]), sat::negLit(HoleVars[H][J])})) {
          Unsat = true;
          return;
        }
  }
  for (const Incompatibility &I : Sk.getIncompatibilities())
    if (!S->addClause({sat::negLit(HoleVars[I.HoleA][I.AltA]),
                       sat::negLit(HoleVars[I.HoleB][I.AltB])})) {
      Unsat = true;
      return;
    }
}

std::optional<std::vector<unsigned>> SketchEncoder::nextAssignment() {
  if (Unsat)
    return std::nullopt;
  if (Trivial) {
    if (TrivialUsed)
      return std::nullopt;
    TrivialUsed = true;
    return std::vector<unsigned>();
  }
  sat::Solver::Result R =
      Shared ? S->solve({sat::posLit(Act)}) : S->solve();
  if (R != sat::Solver::Result::Sat) {
    Unsat = true;
    return std::nullopt;
  }
  std::vector<unsigned> Assign(HoleVars.size(), 0);
  for (size_t H = 0; H < HoleVars.size(); ++H) {
    bool Found = false;
    for (size_t A = 0; A < HoleVars[H].size(); ++A)
      if (S->modelValue(HoleVars[H][A])) {
        assert(!Found && "exactly-one constraint violated");
        Assign[H] = static_cast<unsigned>(A);
        Found = true;
      }
    assert(Found && "exactly-one constraint violated");
    (void)Found;
  }
  return Assign;
}

void SketchEncoder::block(const std::vector<unsigned> &Assign,
                          const std::vector<unsigned> &HoleIds) {
  if (Trivial) {
    TrivialUsed = true;
    return;
  }
  assert(!HoleIds.empty() && "blocking clause over no holes");
  std::vector<sat::Lit> Clause;
  Clause.reserve(HoleIds.size());
  for (unsigned H : HoleIds)
    Clause.push_back(sat::negLit(HoleVars[H][Assign[H]]));
  if (!S->addClause(std::move(Clause)))
    Unsat = true;
}

void SketchEncoder::blockAll(const std::vector<unsigned> &Assign) {
  std::vector<unsigned> All(Assign.size());
  for (unsigned H = 0; H < Assign.size(); ++H)
    All[H] = H;
  block(Assign, All);
}

double SketchEncoder::blockedCount(const std::vector<unsigned> &HoleIds) const {
  std::vector<bool> InClause(Sk.getNumHoles(), false);
  for (unsigned H : HoleIds)
    InClause[H] = true;
  double Count = 1.0;
  for (unsigned H = 0; H < Sk.getNumHoles(); ++H)
    if (!InClause[H])
      Count *= static_cast<double>(Sk.getHole(H).size());
  return Count;
}

void SketchEncoder::retire() {
  if (!Shared || Trivial || Retired)
    return;
  Retired = true;
  // ¬Act first: it satisfies the guarded at-least-one clauses, so the hole
  // variables below can be root-falsified without propagating anything.
  // Hole variables are never root-forced *true* (the all-false assignment
  // satisfies every unguarded clause, so no positive unit is ever implied),
  // but check rootValue defensively rather than latch the shared solver.
  if (!S->addClause({sat::negLit(Act)}))
    return;
  for (const std::vector<sat::Var> &Alts : HoleVars)
    for (sat::Var V : Alts) {
      if (S->rootValue(V) != 0)
        continue;
      if (!S->addClause({sat::negLit(V)}))
        return;
    }
}

sat::DimacsProblem SketchEncoder::exportDimacs() const {
  // Standalone renumbering: variable (hole H, alternative A) gets the next
  // sequential index, independent of any shared-solver numbering.
  sat::DimacsProblem P;
  const std::vector<Hole> &Holes = Sk.getHoles();
  std::vector<std::vector<sat::Var>> Vars(Holes.size());
  for (size_t H = 0; H < Holes.size(); ++H) {
    Vars[H].resize(Holes[H].size());
    for (size_t A = 0; A < Holes[H].size(); ++A)
      Vars[H][A] = P.NumVars++;
  }
  for (size_t H = 0; H < Holes.size(); ++H) {
    std::vector<sat::Lit> Alo;
    Alo.reserve(Vars[H].size());
    for (sat::Var V : Vars[H])
      Alo.push_back(sat::posLit(V));
    P.Clauses.push_back(std::move(Alo));
    for (size_t I = 0; I < Vars[H].size(); ++I)
      for (size_t J = I + 1; J < Vars[H].size(); ++J)
        P.Clauses.push_back(
            {sat::negLit(Vars[H][I]), sat::negLit(Vars[H][J])});
  }
  for (const Incompatibility &I : Sk.getIncompatibilities())
    P.Clauses.push_back({sat::negLit(Vars[I.HoleA][I.AltA]),
                         sat::negLit(Vars[I.HoleB][I.AltB])});
  return P;
}

void SketchEncoder::maybeDumpCnf() const {
  std::string Dir = dumpDirSnapshot();
  if (Dir.empty())
    return;
  uint64_t N = DumpCounter.fetch_add(1, std::memory_order_relaxed);
  std::ofstream Out(Dir + "/sketch_" + std::to_string(N) + ".cnf");
  if (Out)
    Out << sat::toDimacs(exportDimacs());
}
