//===- synth/Encoder.cpp - SAT encoding of sketch holes ---------------------===//

#include "synth/Encoder.h"

#include <cassert>

using namespace migrator;

SketchEncoder::SketchEncoder(const Sketch &Sk, bool BiasFirstAlternatives)
    : Sk(Sk) {
  const std::vector<Hole> &Holes = Sk.getHoles();
  if (Holes.empty()) {
    Trivial = true;
    return;
  }
  HoleVars.resize(Holes.size());
  for (size_t H = 0; H < Holes.size(); ++H) {
    HoleVars[H].resize(Holes[H].size());
    // Bias the search toward each hole's first alternative (the smallest
    // candidate chain / table list), deciding chain holes before the holes
    // they constrain: models then prefer the simplest programs, which are
    // cheaper to test and match the paper's outputs.
    double Base = Holes[H].TheKind == Hole::Kind::Chain ||
                          Holes[H].TheKind == Hole::Kind::ChainSet
                      ? 2e-3
                      : 1e-3;
    for (size_t A = 0; A < Holes[H].size(); ++A) {
      sat::Var V = Solver.newVar();
      HoleVars[H][A] = V;
      if (BiasFirstAlternatives) {
        Solver.setPhase(V, A == 0);
        Solver.setInitialActivity(
            V,
            Base * (1.0 - static_cast<double>(A) /
                              (2.0 * static_cast<double>(Holes[H].size()))));
      }
    }
    if (!Solver.addExactlyOne(HoleVars[H])) {
      Unsat = true;
      return;
    }
  }
  for (const Incompatibility &I : Sk.getIncompatibilities())
    if (!Solver.addClause({sat::negLit(HoleVars[I.HoleA][I.AltA]),
                           sat::negLit(HoleVars[I.HoleB][I.AltB])})) {
      Unsat = true;
      return;
    }
}

std::optional<std::vector<unsigned>> SketchEncoder::nextAssignment() {
  if (Unsat)
    return std::nullopt;
  if (Trivial) {
    if (TrivialUsed)
      return std::nullopt;
    TrivialUsed = true;
    return std::vector<unsigned>();
  }
  if (Solver.solve() != sat::Solver::Result::Sat) {
    Unsat = true;
    return std::nullopt;
  }
  std::vector<unsigned> Assign(HoleVars.size(), 0);
  for (size_t H = 0; H < HoleVars.size(); ++H) {
    bool Found = false;
    for (size_t A = 0; A < HoleVars[H].size(); ++A)
      if (Solver.modelValue(HoleVars[H][A])) {
        assert(!Found && "exactly-one constraint violated");
        Assign[H] = static_cast<unsigned>(A);
        Found = true;
      }
    assert(Found && "exactly-one constraint violated");
    (void)Found;
  }
  return Assign;
}

void SketchEncoder::block(const std::vector<unsigned> &Assign,
                          const std::vector<unsigned> &HoleIds) {
  if (Trivial) {
    TrivialUsed = true;
    return;
  }
  assert(!HoleIds.empty() && "blocking clause over no holes");
  std::vector<sat::Lit> Clause;
  Clause.reserve(HoleIds.size());
  for (unsigned H : HoleIds)
    Clause.push_back(sat::negLit(HoleVars[H][Assign[H]]));
  if (!Solver.addClause(std::move(Clause)))
    Unsat = true;
}

void SketchEncoder::blockAll(const std::vector<unsigned> &Assign) {
  std::vector<unsigned> All(Assign.size());
  for (unsigned H = 0; H < Assign.size(); ++H)
    All[H] = H;
  block(Assign, All);
}

double SketchEncoder::blockedCount(const std::vector<unsigned> &HoleIds) const {
  std::vector<bool> InClause(Sk.getNumHoles(), false);
  for (unsigned H : HoleIds)
    InClause[H] = true;
  double Count = 1.0;
  for (unsigned H = 0; H < Sk.getNumHoles(); ++H)
    if (!InClause[H])
      Count *= static_cast<double>(Sk.getHole(H).size());
  return Count;
}
