//===- synth/Tester.cpp - Bounded equivalence testing and MFIs --------------===//

#include "synth/Tester.h"

#include "ast/Analysis.h"
#include "obs/Metrics.h"
#include "relational/ResultTable.h"
#include "synth/SourceCache.h"

#include <cassert>
#include <map>
#include <memory>
#include <set>
#include <sstream>

using namespace migrator;

namespace {

/// Builds the cartesian product of seed values over \p Params.
std::vector<std::vector<Value>> buildArgTuples(const std::vector<Param> &Params,
                                               const TesterOptions &Opts) {
  std::vector<std::vector<Value>> SeedsPerParam;
  SeedsPerParam.reserve(Params.size());
  for (const Param &P : Params) {
    std::vector<Value> Seeds;
    switch (P.Type) {
    case ValueType::Int:
      for (int64_t V : Opts.IntSeeds)
        Seeds.push_back(Value::makeInt(V));
      break;
    case ValueType::String:
      for (const std::string &V : Opts.StrSeeds)
        Seeds.push_back(Value::makeString(V));
      break;
    case ValueType::Binary:
      for (const std::string &V : Opts.BinSeeds)
        Seeds.push_back(Value::makeBinary(V));
      break;
    case ValueType::Bool:
      for (bool V : Opts.BoolSeeds)
        Seeds.push_back(Value::makeBool(V));
      break;
    }
    assert(!Seeds.empty() && "empty seed set for a parameter type");
    SeedsPerParam.push_back(std::move(Seeds));
  }

  std::vector<std::vector<Value>> Tuples;
  std::vector<Value> Cur;
  Cur.reserve(SeedsPerParam.size());
  auto Rec = [&](auto &&Self, size_t Depth) -> void {
    if (Tuples.size() >= Opts.MaxArgTuplesPerFunc)
      return;
    if (Depth == SeedsPerParam.size()) { // Zero-parameter functions only.
      Tuples.emplace_back(Cur);
      return;
    }
    if (Depth + 1 == SeedsPerParam.size()) {
      // Leaf level: assemble each tuple in place instead of copying Cur
      // through a push/pop round-trip per seed.
      for (const Value &V : SeedsPerParam[Depth]) {
        if (Tuples.size() >= Opts.MaxArgTuplesPerFunc)
          return;
        std::vector<Value> &T = Tuples.emplace_back();
        T.reserve(Cur.size() + 1);
        T.insert(T.end(), Cur.begin(), Cur.end());
        T.push_back(V);
      }
      return;
    }
    for (const Value &V : SeedsPerParam[Depth]) {
      Cur.push_back(V);
      Self(Self, Depth + 1);
      Cur.pop_back();
    }
  };

  // Small parameter lists get the full seed product.
  double Product = 1;
  for (const std::vector<Value> &Seeds : SeedsPerParam)
    Product *= static_cast<double>(Seeds.size());
  if (Product <= static_cast<double>(Opts.MaxArgTuplesPerFunc)) {
    Tuples.reserve(static_cast<size_t>(Product));
    Rec(Rec, 0);
    return Tuples;
  }

  // Otherwise choose tuples that still vary every parameter at least once:
  // the all-first-seed tuple, then one-parameter flips, then a lexicographic
  // fill up to the cap.
  Tuples.reserve(Opts.MaxArgTuplesPerFunc);
  std::vector<Value> Base;
  Base.reserve(SeedsPerParam.size());
  for (const std::vector<Value> &Seeds : SeedsPerParam)
    Base.push_back(Seeds.front());
  Tuples.push_back(Base);
  for (size_t P = 0; P < SeedsPerParam.size() &&
                     Tuples.size() < Opts.MaxArgTuplesPerFunc;
       ++P)
    for (size_t S = 1; S < SeedsPerParam[P].size() &&
                       Tuples.size() < Opts.MaxArgTuplesPerFunc;
         ++S) {
      std::vector<Value> T = Base;
      T[P] = SeedsPerParam[P][S];
      Tuples.push_back(std::move(T));
    }
  // Lexicographic fill, then drop duplicates.
  Rec(Rec, 0); // Appends until the cap; duplicates are possible but rare.
  std::vector<std::vector<Value>> Dedup;
  Dedup.reserve(Tuples.size());
  for (std::vector<Value> &T : Tuples) {
    bool Seen = false;
    for (const std::vector<Value> &D : Dedup)
      if (D == T) {
        Seen = true;
        break;
      }
    if (!Seen)
      Dedup.push_back(std::move(T));
  }
  return Dedup;
}

/// Appends one value to a canonical-state key: a kind tag plus the raw
/// payload, length-prefixed where variable-length so embedded delimiters in
/// string payloads cannot alias two distinct states. UIDs are renamed to
/// first-occurrence order through \p UidMap.
void appendCanonValue(std::string &Out, const Value &V,
                      std::map<uint64_t, uint64_t> &UidMap) {
  switch (V.kind()) {
  case Value::Kind::Uid: {
    auto [It, New] = UidMap.try_emplace(V.getUid(), UidMap.size());
    (void)New;
    Out += 'u';
    Out += std::to_string(It->second);
    break;
  }
  case Value::Kind::Int:
    Out += 'i';
    Out += std::to_string(V.getInt());
    break;
  case Value::Kind::Bool:
    Out += V.getBool() ? "o1" : "o0";
    break;
  case Value::Kind::String: {
    const std::string &S = V.getString();
    Out += 's';
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    break;
  }
  case Value::Kind::Binary: {
    const std::string &S = V.getBinary();
    Out += 'b';
    Out += std::to_string(S.size());
    Out += ':';
    Out += S;
    break;
  }
  }
  Out += ',';
}

/// Serializes a database pair with canonical UID renaming (per side), so
/// prefixes reaching the same states up to surrogate-key numbering dedupe.
/// Built with direct string appends over the raw value payloads: this runs
/// once per explored prefix extension (millions per synthesis on the larger
/// benchmarks), where ostringstream and Value::str() churn was measurable
/// once COW snapshots removed the copying that used to dominate.
std::string canonicalState(const Database &Src, const Database &Cand) {
  std::string Out;
  Out.reserve(256);
  auto Dump = [&Out](const Database &DB) {
    std::map<uint64_t, uint64_t> UidMap;
    for (const Table &T : DB.getTables()) {
      Out += T.getSchema().getName();
      Out += '{';
      for (const Row &R : T.getRows()) {
        for (const Value &V : R)
          appendCanonValue(Out, V, UidMap);
        Out += ';';
      }
      Out += '}';
    }
  };
  Dump(Src);
  Out += "||";
  Dump(Cand);
  return Out;
}

/// One BFS node: paired database states and the update prefix reaching them.
/// The source side is an immutable shared snapshot, so candidate-independent
/// states can be served from the cross-candidate cache.
struct SearchState {
  SourceResultCache::PrefixState Src;
  Database CandDB;
  UidGen CandUids;
  InvocationSeq Prefix;
};

} // namespace

EquivalenceTester::EquivalenceTester(const Schema &SourceSchema,
                                     const Program &SourceProg,
                                     const Schema &TargetSchema,
                                     TesterOptions Opts,
                                     SourceResultCache *SrcCache)
    : SourceSchema(SourceSchema), SourceProg(SourceProg),
      TargetSchema(TargetSchema), Opts(std::move(Opts)), SrcCache(SrcCache),
      SrcEval(SourceSchema) {
  for (const Function &F : SourceProg.getFunctions())
    ArgTuples.push_back(buildArgTuples(F.getParams(), this->Opts));
}

TestOutcome EquivalenceTester::test(const Program &Cand) const {
  // Sequences explored by this call, accumulated locally (test() may run
  // concurrently on several candidates) and published once at every return
  // path.
  uint64_t Seqs = 0;
  struct SeqGuard {
    std::atomic<uint64_t> &Total;
    const uint64_t &Local;
    SeqGuard(std::atomic<uint64_t> &T, const uint64_t &L)
        : Total(T), Local(L) {}
    ~SeqGuard() {
      Total.fetch_add(Local, std::memory_order_relaxed);
      MIGRATOR_COUNTER_ADD("tester.sequences_run", Local);
      MIGRATOR_HISTOGRAM_RECORD("tester.sequences_per_test", Local);
    }
  } Guard(NumSequencesRun, Seqs);
  MIGRATOR_COUNTER_ADD("tester.tests", 1);

  const std::vector<Function> &Funcs = SourceProg.getFunctions();
  assert(Cand.getNumFunctions() == Funcs.size() &&
         "candidate function count mismatch");

  // Static validation: ill-formed functions are blocked without any testing.
  for (const Function &F : Cand.getFunctions())
    if (validateFunction(F, TargetSchema)) {
      TestOutcome O;
      O.TheKind = TestOutcome::Kind::IllFormed;
      O.IllFormedFunc = F.getName();
      return O;
    }

  // Per-function read/write sets over a combined namespace: source tables
  // are tagged "s:", target tables "t:", so relevance closure can mix both
  // programs' footprints.
  size_t N = Funcs.size();
  std::vector<std::set<std::string>> Reads(N), Writes(N);
  std::vector<unsigned> UpdateIdx, QueryIdx;
  for (size_t I = 0; I < N; ++I) {
    ReadWriteSets SrcRW = collectReadWriteSets(Funcs[I]);
    ReadWriteSets CandRW =
        collectReadWriteSets(Cand.getFunction(Funcs[I].getName()));
    for (const std::string &T : SrcRW.Reads)
      Reads[I].insert("s:" + T);
    for (const std::string &T : SrcRW.Writes)
      Writes[I].insert("s:" + T);
    for (const std::string &T : CandRW.Reads)
      Reads[I].insert("t:" + T);
    for (const std::string &T : CandRW.Writes)
      Writes[I].insert("t:" + T);
    (Funcs[I].isUpdate() ? UpdateIdx : QueryIdx)
        .push_back(static_cast<unsigned>(I));
  }

  // Relevance closure per query: the updates that can influence its result.
  auto relevantUpdates = [&](unsigned Q) {
    std::set<std::string> R = Reads[Q];
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (unsigned U : UpdateIdx) {
        bool Touches = false;
        for (const std::string &T : Writes[U])
          if (R.count(T)) {
            Touches = true;
            break;
          }
        if (!Touches)
          continue;
        for (const std::string &T : Reads[U])
          if (R.insert(T).second)
            Changed = true;
      }
    }
    std::vector<unsigned> Rel;
    for (unsigned U : UpdateIdx) {
      bool Touches = false;
      for (const std::string &T : Writes[U])
        if (R.count(T)) {
          Touches = true;
          break;
        }
      if (Touches)
        Rel.push_back(U);
    }
    return Rel;
  };

  // Group queries sharing a relevant update set into one BFS.
  std::map<std::vector<unsigned>, std::vector<unsigned>> Groups;
  for (unsigned Q : QueryIdx) {
    std::vector<unsigned> Rel =
        Opts.UseRelevanceSlicing ? relevantUpdates(Q) : UpdateIdx;
    Groups[std::move(Rel)].push_back(Q);
  }

  // When the groups overlap heavily (their combined frontier is larger than
  // one unsliced search), fall back to a single group: slicing only pays off
  // when the program decomposes into mostly-independent table clusters.
  if (Opts.UseRelevanceSlicing && Groups.size() > 1) {
    auto FrontierCost = [&](const std::vector<unsigned> &Updates) {
      double Invs = 0;
      for (unsigned U : Updates)
        Invs += static_cast<double>(ArgTuples[U].size());
      double Cost = 1;
      for (unsigned L = 1; L < Opts.MaxSeqLen; ++L)
        Cost *= Invs;
      return Cost;
    };
    double Sliced = 0;
    for (const auto &[Rel, Qs] : Groups)
      Sliced += FrontierCost(Rel);
    if (Sliced > FrontierCost(UpdateIdx)) {
      Groups.clear();
      Groups[UpdateIdx] = QueryIdx;
    }
  }

  Evaluator CandEval(TargetSchema);

  struct GroupState {
    const std::vector<unsigned> *RelUpdates = nullptr;
    const std::vector<unsigned> *Queries = nullptr;
    std::vector<SearchState> Frontier;
    std::set<std::string> Seen;
  };
  std::vector<GroupState> GS;
  for (const auto &[Rel, Qs] : Groups) {
    GroupState G;
    G.RelUpdates = &Rel;
    G.Queries = &Qs;
    SearchState Root;
    Root.Src = SrcCache ? SrcCache->initialState()
                        : SourceResultCache::PrefixState{
                              std::make_shared<const Database>(SourceSchema),
                              1, {}};
    Root.CandDB = Database(TargetSchema);
    G.Seen.insert(canonicalState(*Root.Src.DB, Root.CandDB));
    G.Frontier.push_back(std::move(Root));
    GS.push_back(std::move(G));
  }

  TestOutcome Fail;

  // Probes every query of group \p G on state \p St; returns true if a
  // disagreement or ill-formedness was found (recorded in Fail).
  auto CheckQueries = [&](const GroupState &G, const SearchState &St) {
    for (unsigned Q : *G.Queries) {
      const Function &SrcF = Funcs[Q];
      const Function &CandF = Cand.getFunction(SrcF.getName());
      for (const std::vector<Value> &Args : ArgTuples[Q]) {
        ++Seqs;
        // Source side: memoized across candidates when a cache is attached.
        std::shared_ptr<const ResultTable> SrcShared;
        std::optional<ResultTable> SrcLocal;
        const ResultTable *SrcR = nullptr;
        if (SrcCache) {
          SrcShared = SrcCache->query(St.Src, {SrcF.getName(), Args});
          SrcR = SrcShared.get();
        } else {
          SrcLocal = SrcEval.callQuery(SrcF, Args, *St.Src.DB);
          if (SrcLocal)
            SrcR = &*SrcLocal;
        }
        assert(SrcR && "source query failed on a valid program");
        std::optional<ResultTable> CandR =
            CandEval.callQuery(CandF, Args, St.CandDB);
        if (!CandR) {
          Fail.TheKind = TestOutcome::Kind::IllFormed;
          Fail.IllFormedFunc = SrcF.getName();
          return true;
        }
        if (!resultsEquivalent(*SrcR, *CandR)) {
          Fail.TheKind = TestOutcome::Kind::Failing;
          Fail.Mfi = St.Prefix;
          Fail.Mfi.push_back({SrcF.getName(), Args});
          return true;
        }
      }
    }
    return false;
  };

  for (unsigned Len = 1; Len <= Opts.MaxSeqLen; ++Len) {
    // Probe all queries on the current frontiers (prefix length Len - 1).
    for (const GroupState &G : GS)
      for (const SearchState &St : G.Frontier)
        if (CheckQueries(G, St))
          return Fail;

    if (Len == Opts.MaxSeqLen)
      break;

    // Extend each group's frontier by one update call.
    for (GroupState &G : GS) {
      std::vector<SearchState> Next;
      for (const SearchState &St : G.Frontier) {
        for (unsigned U : *G.RelUpdates) {
          const Function &SrcF = Funcs[U];
          const Function &CandF = Cand.getFunction(SrcF.getName());
          for (const std::vector<Value> &Args : ArgTuples[U]) {
            if (Next.size() >= Opts.MaxStatesPerLevel)
              break;
            ++Seqs;
            // Candidate side always executes (it is candidate specific).
            // Under COW table storage this "copy" is a per-table refcount
            // bump that stays shared until the update's first mutation —
            // sibling extensions of St and St itself are never disturbed.
            // With --no-cow it is the original eager deep copy, the
            // differential oracle for the sharing machinery.
            Database CandDB = St.CandDB;
            UidGen CandUids = St.CandUids;
            if (!CandEval.callUpdate(CandF, Args, CandDB, CandUids)) {
              Fail.TheKind = TestOutcome::Kind::IllFormed;
              Fail.IllFormedFunc = SrcF.getName();
              return Fail;
            }
            // Source side: shared snapshot, served from the cache when one
            // is attached (identical bytes to a direct recomputation).
            InvocationSeq NewPrefix = St.Prefix;
            NewPrefix.push_back({SrcF.getName(), Args});
            SourceResultCache::PrefixState NewSrc;
            if (SrcCache) {
              std::optional<SourceResultCache::PrefixState> S =
                  SrcCache->extend(St.Src, NewPrefix.back());
              assert(S && "source update failed on a valid program");
              NewSrc = std::move(*S);
            } else {
              Database SrcDB = *St.Src.DB;
              UidGen SrcUids(St.Src.NextUid);
              bool SrcOk = SrcEval.callUpdate(SrcF, Args, SrcDB, SrcUids);
              assert(SrcOk && "source update failed on a valid program");
              (void)SrcOk;
              NewSrc = {std::make_shared<const Database>(std::move(SrcDB)),
                        SrcUids.peekNext(), {}};
            }
            std::string Key = canonicalState(*NewSrc.DB, CandDB);
            if (!G.Seen.insert(std::move(Key)).second)
              continue;
            SearchState Ext;
            Ext.Src = std::move(NewSrc);
            Ext.CandDB = std::move(CandDB);
            Ext.CandUids = CandUids;
            Ext.Prefix = std::move(NewPrefix);
            Next.push_back(std::move(Ext));
          }
        }
      }
      G.Frontier = std::move(Next);
    }
  }

  TestOutcome Ok;
  Ok.TheKind = TestOutcome::Kind::Equivalent;
  return Ok;
}
