//===- synth/SketchSolver.h - Sketch completion --------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sketch completion (Algorithm 2): symbolic search over the SAT encoding of
/// the hole space, testing each candidate and learning blocking clauses from
/// failures. Three strategies share the loop:
///
///  * Mfi (Migrator) — compute a minimum failing input and block the partial
///    assignment of the holes in the functions it mentions, pruning every
///    completion that fails for the same root cause;
///  * Enumerative — the Table 3 baseline: block only the failing model;
///  * Cegis — the Table 2 baseline standing in for the Sketch tool: keep a
///    set of counterexample inputs, screen each candidate against the set
///    before full testing, and block single models (see DESIGN.md for the
///    substitution rationale).
///
/// A candidate that survives bounded testing is confirmed with the deeper
/// verification tester before being returned; a deep counterexample is fed
/// back into the loop like any other failing input.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_SKETCHSOLVER_H
#define MIGRATOR_SYNTH_SKETCHSOLVER_H

#include "sketch/Sketch.h"
#include "support/Timer.h"
#include "synth/Encoder.h"
#include "synth/Tester.h"

#include <limits>
#include <optional>

namespace migrator {

/// Options controlling sketch completion.
struct SolverOptions {
  enum class Mode { Mfi, Enumerative, Cegis };
  Mode TheMode = Mode::Mfi;

  /// Bounds for the per-candidate tester.
  TesterOptions Test;

  /// Bounds for the final (deeper) verification pass.
  TesterOptions Verify = deeperDefaults();

  uint64_t MaxIters = std::numeric_limits<uint64_t>::max();
  double TimeBudgetSec = std::numeric_limits<double>::infinity();

  /// Seed the SAT search toward each hole's first (smallest) alternative.
  /// On by default (the full system); the Table 2/3 harnesses turn it off
  /// for every strategy to compare learning power on equal footing.
  bool BiasFirstAlternatives = true;

  static TesterOptions deeperDefaults() {
    TesterOptions T;
    T.MaxSeqLen = 4;
    return T;
  }
};

/// Statistics of one solve() run.
struct SolveStats {
  uint64_t Iters = 0;          ///< Candidate programs explored.
  double BlockedTotal = 0;     ///< Completions pruned by blocking clauses.
  double VerifyTimeSec = 0;    ///< Time in the deep verification tester.
  bool TimedOut = false;
  bool Exhausted = false;      ///< Hole space exhausted without a solution.

  // Instrumentation (see docs/OBSERVABILITY.md): where the symbolic search
  // spends its effort and how often the MFI learning actually bites.
  uint64_t SatCalls = 0;       ///< Model requests issued to the SAT encoder.
  uint64_t SatConflicts = 0;   ///< CDCL conflicts inside those requests.
  uint64_t SatDecisions = 0;
  uint64_t SatPropagations = 0;
  uint64_t SatLearnedClauses = 0;
  uint64_t SatRestarts = 0;
  uint64_t MfiPruneHits = 0;   ///< Failing candidates blocked by a *partial*
                               ///< (MFI-derived) clause — each prunes many
                               ///< completions at once.
  uint64_t MfiPruneMisses = 0; ///< Failing candidates where only the single
                               ///< full model could be blocked.
  uint64_t Rejected = 0;       ///< Candidates rejected per testing round
                               ///< (screening, bounded testing, or the deep
                               ///< verifier).
};

/// Completes sketches against one source program.
class SketchSolver {
public:
  SketchSolver(const Schema &SourceSchema, const Program &SourceProg,
               const Schema &TargetSchema, SolverOptions Opts = {});

  /// Runs Algorithm 2 on \p Sk. Returns the equivalent completion or
  /// nullopt (see \p Stats for why).
  std::optional<Program> solve(const Sketch &Sk, SolveStats &Stats);

  const SolverOptions &getOptions() const { return Opts; }

private:
  const Schema &SourceSchema;
  const Program &SourceProg;
  const Schema &TargetSchema;
  SolverOptions Opts;
  EquivalenceTester Tester;
  EquivalenceTester Verifier;
};

} // namespace migrator

#endif // MIGRATOR_SYNTH_SKETCHSOLVER_H
