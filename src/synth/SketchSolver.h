//===- synth/SketchSolver.h - Sketch completion --------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sketch completion (Algorithm 2): symbolic search over the SAT encoding of
/// the hole space, testing each candidate and learning blocking clauses from
/// failures. Three strategies share the loop:
///
///  * Mfi (Migrator) — compute a minimum failing input and block the partial
///    assignment of the holes in the functions it mentions, pruning every
///    completion that fails for the same root cause;
///  * Enumerative — the Table 3 baseline: block only the failing model;
///  * Cegis — the Table 2 baseline standing in for the Sketch tool: keep a
///    set of counterexample inputs, screen each candidate against the set
///    before full testing, and block single models (see DESIGN.md for the
///    substitution rationale).
///
/// A candidate that survives bounded testing is confirmed with the deeper
/// verification tester before being returned; a deep counterexample is fed
/// back into the loop like any other failing input.
///
/// *Batched candidate testing* (docs/PERFORMANCE.md): with Batch > 1 each
/// SAT round draws up to Batch models sequentially — every drawn model is
/// blocked in full at draw time, which reserves it and is logically subsumed
/// by any stronger (partial) clause learned from it later, so the set of
/// remaining models matches the one-at-a-time engine exactly — then fans
/// instantiation, CEGIS screening, and bounded testing onto a thread pool,
/// and finally processes outcomes in draw order. Draw order processing makes
/// the learned clause sequence, and hence the whole search, independent of
/// the thread count.
///
/// *Failure corpus* (docs/PERFORMANCE.md, "State engine"): in Mfi and
/// Enumerative modes the solver keeps the recent killer sequences and
/// replays them against each new candidate before bounded testing — the
/// CEGIS insight applied as a screen in front of the full enumeration.
/// See SolverOptions::UseFailureCorpus.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_SKETCHSOLVER_H
#define MIGRATOR_SYNTH_SKETCHSOLVER_H

#include "sketch/Sketch.h"
#include "support/Timer.h"
#include "synth/Encoder.h"
#include "synth/Tester.h"

#include <atomic>
#include <limits>
#include <memory>
#include <optional>

namespace migrator {

class SourceResultCache;
class ThreadPool;

/// Options controlling sketch completion.
struct SolverOptions {
  enum class Mode { Mfi, Enumerative, Cegis };
  Mode TheMode = Mode::Mfi;

  /// Bounds for the per-candidate tester.
  TesterOptions Test;

  /// Bounds for the final (deeper) verification pass.
  TesterOptions Verify = deeperDefaults();

  uint64_t MaxIters = std::numeric_limits<uint64_t>::max();
  double TimeBudgetSec = std::numeric_limits<double>::infinity();

  /// Enumerate each hole's alternatives in rank order (first = smallest).
  /// Decisions run in canonical fixed order (see sat::Solver), so this
  /// knob picks the preferred phase — and with it the whole model order:
  /// on (default, the full system) the lex-least model takes every hole's
  /// first alternative; off reverses to least-likely-first, the unbiased
  /// worst case the Table 2/3 harnesses use to compare learning power on
  /// equal footing.
  bool BiasFirstAlternatives = true;

  /// Models drawn — and candidates tested — per SAT round. The SAT solver
  /// stays sequential; with a thread pool attached, the per-candidate work
  /// of one round runs concurrently. The search is deterministic in Batch
  /// but independent of the thread count.
  unsigned Batch = 1;

  /// Failure-directed candidate screening: remember the invocation
  /// sequences that killed recent candidates and replay them (move-to-front
  /// order) against each new candidate before the full bounded enumeration,
  /// so most candidates die in a handful of evaluations instead of
  /// thousands. Replaying a failing input is sound for clause learning: a
  /// candidate's behaviour on a sequence depends only on the functions the
  /// sequence invokes, so the MFI-style partial clause derived from a
  /// corpus kill prunes exactly the completions that fail the same way
  /// (the sequence just isn't guaranteed minimal). Ignored in Cegis mode,
  /// whose example set is already this screen. Counters:
  /// `tester.corpus_replays` / `tester.corpus_kills`.
  bool UseFailureCorpus = true;

  /// Bound on remembered killer sequences; move-to-front keeps the hot
  /// ones, stale entries fall off the tail.
  size_t MaxFailureCorpus = 32;

  static TesterOptions deeperDefaults() {
    TesterOptions T;
    T.MaxSeqLen = 4;
    return T;
  }
};

/// Statistics of one solve() run.
struct SolveStats {
  uint64_t Iters = 0;          ///< Candidate programs explored.
  double BlockedTotal = 0;     ///< Completions pruned by blocking clauses.
  double VerifyTimeSec = 0;    ///< Time in the deep verification tester.
  bool TimedOut = false;
  bool Exhausted = false;      ///< Hole space exhausted without a solution.
  bool Cancelled = false;      ///< Stopped by a portfolio cancellation token.

  // Instrumentation (see docs/OBSERVABILITY.md): where the symbolic search
  // spends its effort and how often the MFI learning actually bites.
  uint64_t SatCalls = 0;       ///< Model requests issued to the SAT encoder.
  uint64_t SatConflicts = 0;   ///< CDCL conflicts inside those requests.
  uint64_t SatDecisions = 0;
  uint64_t SatPropagations = 0;
  uint64_t SatLearnedClauses = 0;
  uint64_t SatRestarts = 0;
  uint64_t SatAssumptionCalls = 0; ///< solve(assumptions) queries (the
                                   ///< persistent-solver path).
  uint64_t SatReduceDbs = 0;       ///< Clause-DB reduction passes.
  uint64_t SatDeletedClauses = 0;  ///< Clauses reclaimed by those passes.
  uint64_t MfiPruneHits = 0;   ///< Failing candidates blocked by a *partial*
                               ///< (MFI-derived) clause — each prunes many
                               ///< completions at once.
  uint64_t MfiPruneMisses = 0; ///< Failing candidates where only the single
                               ///< full model could be blocked.
  uint64_t Rejected = 0;       ///< Candidates rejected per testing round
                               ///< (screening, bounded testing, or the deep
                               ///< verifier).

  /// Accumulates another run's statistics into this one: counters and times
  /// sum, termination flags OR (the aggregate "timed out" iff any run did).
  SolveStats &operator+=(const SolveStats &O);
};

/// Completes sketches against one source program.
class SketchSolver {
public:
  /// \p SrcCache, when non-null, is shared by the bounded tester, the deep
  /// verifier, and the CEGIS example screen; \p Pool, when non-null, runs
  /// the per-candidate work of a batch concurrently. Both may be shared
  /// across solvers and must outlive this one.
  SketchSolver(const Schema &SourceSchema, const Program &SourceProg,
               const Schema &TargetSchema, SolverOptions Opts = {},
               SourceResultCache *SrcCache = nullptr,
               ThreadPool *Pool = nullptr);

  /// Runs Algorithm 2 on \p Sk. Returns the equivalent completion or
  /// nullopt (see \p Stats for why). \p Cancel, when non-null, is polled
  /// between rounds: once set, solve() returns nullopt with
  /// Stats.Cancelled (portfolio losers stop early).
  std::optional<Program> solve(const Sketch &Sk, SolveStats &Stats,
                               const std::atomic<bool> *Cancel = nullptr);

  const SolverOptions &getOptions() const { return Opts; }

  /// Updates the remaining time budget for subsequent solve() calls. The
  /// synthesizer reuses one SketchSolver per portfolio rank across waves
  /// (to keep the persistent SAT solver's learned state); the budget is the
  /// only option that changes between waves.
  void setTimeBudgetSec(double Sec) { Opts.TimeBudgetSec = Sec; }

private:
  const Schema &SourceSchema;
  const Program &SourceProg;
  const Schema &TargetSchema;
  SolverOptions Opts;
  SourceResultCache *SrcCache;
  ThreadPool *Pool;
  EquivalenceTester Tester;
  EquivalenceTester Verifier;

  /// The long-lived SAT solver shared by every sketch encoding this solver
  /// completes (created when the incremental engine is enabled; null in
  /// legacy mode, where each encoder owns a scratch solver). Encodings are
  /// guarded by activation literals and retired after each solve(), so
  /// learned clauses, activities, and phases carry across sketches.
  std::unique_ptr<sat::Solver> PersistentSat;
};

} // namespace migrator

#endif // MIGRATOR_SYNTH_SKETCHSOLVER_H
