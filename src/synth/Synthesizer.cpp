//===- synth/Synthesizer.cpp - Top-level synthesis loop ---------------------===//

#include "synth/Synthesizer.h"

#include "ast/Analysis.h"
#include "obs/Trace.h"
#include "support/Timer.h"

using namespace migrator;

SynthResult migrator::synthesize(const Schema &SourceSchema,
                                 const Program &SourceProg,
                                 const Schema &TargetSchema,
                                 SynthOptions Opts) {
  MIGRATOR_TRACE_SCOPE_NAMED(Span, "synthesize");
  Timer Total;
  SynthResult Result;

  // Bracket the run with registry snapshots: the delta at the end is this
  // run's contribution even when other runs share the process.
  obs::MetricsSnapshot Before;
  if (obs::metricsEnabled())
    Before = obs::registry().snapshot();

  std::set<QualifiedAttr> Queried =
      collectQueriedAttrs(SourceProg, SourceSchema);
  VcEnumerator VcEnum(SourceSchema, TargetSchema, Queried, Opts.Vc);

  while (Result.Stats.NumVcs < Opts.MaxVcs) {
    double Remaining = Opts.TimeBudgetSec - Total.elapsedSeconds();
    if (Remaining <= 0) {
      Result.Stats.TimedOut = true;
      break;
    }

    std::optional<ValueCorrespondence> Phi;
    {
      MIGRATOR_TRACE_SCOPE("vc.next");
      MIGRATOR_LATENCY_SCOPE("vc.next_us");
      Phi = VcEnum.next();
    }
    if (!Phi)
      break; // No further correspondence exists: synthesis fails (⊥).
    ++Result.Stats.NumVcs;
    MIGRATOR_COUNTER_ADD("synth.vcs_attempted", 1);

    std::optional<Sketch> Sk;
    {
      MIGRATOR_TRACE_SCOPE_NAMED(SkSpan, "sketch.generate");
      MIGRATOR_LATENCY_SCOPE("sketch.generate_us");
      Sk = generateSketch(SourceProg, SourceSchema, TargetSchema, *Phi,
                          Opts.SketchGen);
      if (SkSpan.active() && Sk)
        SkSpan.arg("holes", static_cast<uint64_t>(Sk->getNumHoles()))
            .arg("space", Sk->spaceSize());
    }
    if (!Sk) {
      MIGRATOR_COUNTER_ADD("synth.vcs_unsupported", 1);
      continue; // Φ cannot support some statement; try the next VC.
    }
    // Accumulate: a run that burns through several VCs explores the union
    // of their sketch spaces, not just the final one.
    Result.Stats.SketchSpace += Sk->spaceSize();
    MIGRATOR_COUNTER_ADD("synth.sketches_generated", 1);
    MIGRATOR_HISTOGRAM_RECORD("sketch.holes", Sk->getNumHoles());

    SolverOptions SolverOpts = Opts.Solver;
    SolverOpts.TimeBudgetSec = std::min(Opts.Solver.TimeBudgetSec, Remaining);
    SketchSolver BudgetedSolver(SourceSchema, SourceProg, TargetSchema,
                                SolverOpts);

    SolveStats SS;
    std::optional<Program> Prog = BudgetedSolver.solve(*Sk, SS);
    Result.Stats.Iters += SS.Iters;
    Result.Stats.VerifyTimeSec += SS.VerifyTimeSec;
    if (Prog) {
      Result.Prog = std::move(Prog);
      break;
    }
    if (SS.TimedOut && Total.elapsedSeconds() >= Opts.TimeBudgetSec) {
      Result.Stats.TimedOut = true;
      break;
    }
  }

  Result.Stats.TotalTimeSec = Total.elapsedSeconds();
  Result.Stats.SynthTimeSec =
      Result.Stats.TotalTimeSec - Result.Stats.VerifyTimeSec;

  if (obs::metricsEnabled())
    Result.Metrics = obs::registry().snapshot() - Before;
  if (Span.active())
    Span.arg("vcs", static_cast<uint64_t>(Result.Stats.NumVcs))
        .arg("iters", Result.Stats.Iters)
        .arg("sketch_space", Result.Stats.SketchSpace)
        .arg("succeeded", Result.succeeded())
        .arg("timed_out", Result.Stats.TimedOut);
  return Result;
}
