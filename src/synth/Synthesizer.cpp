//===- synth/Synthesizer.cpp - Top-level synthesis loop ---------------------===//

#include "synth/Synthesizer.h"

#include "ast/Analysis.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"
#include "synth/SourceCache.h"

#include <atomic>
#include <memory>
#include <vector>

using namespace migrator;

SynthResult migrator::synthesize(const Schema &SourceSchema,
                                 const Program &SourceProg,
                                 const Schema &TargetSchema,
                                 SynthOptions Opts) {
  MIGRATOR_TRACE_SCOPE_NAMED(Span, "synthesize");
  Timer Total;
  SynthResult Result;

  // Bracket the run with registry snapshots: the delta at the end is this
  // run's contribution even when other runs share the process.
  obs::MetricsSnapshot Before;
  if (obs::metricsEnabled())
    Before = obs::registry().snapshot();

  std::set<QualifiedAttr> Queried =
      collectQueriedAttrs(SourceProg, SourceSchema);
  VcEnumerator VcEnum(SourceSchema, TargetSchema, Queried, Opts.Vc);

  const unsigned Jobs = std::max(1u, Opts.Jobs);
  const unsigned Width =
      std::max(1u, Opts.PortfolioWidth ? Opts.PortfolioWidth : Jobs);
  std::unique_ptr<ThreadPool> Pool;
  if (Jobs > 1)
    Pool = std::make_unique<ThreadPool>(Jobs);
  std::unique_ptr<SourceResultCache> Cache;
  // A cached run is byte-identical to an uncached one, so attaching the
  // cache is purely a cost call: it pays when several workers share the
  // memoized source work, while a sequential run recomputes COW-backed
  // prefixes faster than the cache can serve them (EXPERIMENTS.md).
  if (Opts.UseSourceCache && Jobs >= std::max(1u, Opts.SourceCacheMinJobs))
    Cache = std::make_unique<SourceResultCache>(SourceSchema, SourceProg);

  SolveStats Agg; // Merged across every solve via SolveStats::operator+=.

  // Per-rank sketch-solver slots, reused across waves when the incremental
  // SAT engine is on: slot R keeps rank R's persistent solver, so learned
  // clauses, VSIDS activities, and saved phases carry from one wave's
  // sketch to the next. Cross-wave state never races and never changes the
  // answer: any cancellation implies some rank won, which ends synthesis,
  // so every solve a later wave sees ran to completion — the jobs=1 and
  // jobs=N searches remain identical. In legacy mode slots still cost
  // nothing beyond the seed behaviour (a fresh scratch solver per encoder).
  const bool ReuseSlots = sat::satIncrementalEnabled();
  std::vector<std::unique_ptr<SketchSolver>> Slots;
  auto SlotFor = [&](size_t R, const SolverOptions &SO) -> SketchSolver & {
    if (Slots.size() <= R)
      Slots.resize(R + 1);
    if (!Slots[R] || !ReuseSlots)
      Slots[R] = std::make_unique<SketchSolver>(SourceSchema, SourceProg,
                                                TargetSchema, SO, Cache.get(),
                                                Pool.get());
    else
      Slots[R]->setTimeBudgetSec(SO.TimeBudgetSec);
    return *Slots[R];
  };

  while (Result.Stats.NumVcs < Opts.MaxVcs) {
    double Remaining = Opts.TimeBudgetSec - Total.elapsedSeconds();
    if (Remaining <= 0) {
      Result.Stats.TimedOut = true;
      break;
    }

    // Gather one wave: the next Width sketches in rank (best-first VC)
    // order. Enumeration and sketch generation stay on this thread.
    std::vector<Sketch> Wave;
    bool VcsExhausted = false;
    while (Wave.size() < Width && Result.Stats.NumVcs < Opts.MaxVcs) {
      std::optional<ValueCorrespondence> Phi;
      {
        MIGRATOR_TRACE_SCOPE("vc.next");
        MIGRATOR_LATENCY_SCOPE("vc.next_us");
        Phi = VcEnum.next();
      }
      if (!Phi) {
        VcsExhausted = true;
        break;
      }
      ++Result.Stats.NumVcs;
      MIGRATOR_COUNTER_ADD("synth.vcs_attempted", 1);

      std::optional<Sketch> Sk;
      {
        MIGRATOR_TRACE_SCOPE_NAMED(SkSpan, "sketch.generate");
        MIGRATOR_LATENCY_SCOPE("sketch.generate_us");
        Sk = generateSketch(SourceProg, SourceSchema, TargetSchema, *Phi,
                            Opts.SketchGen);
        if (SkSpan.active() && Sk)
          SkSpan.arg("holes", static_cast<uint64_t>(Sk->getNumHoles()))
              .arg("space", Sk->spaceSize());
      }
      if (!Sk) {
        MIGRATOR_COUNTER_ADD("synth.vcs_unsupported", 1);
        continue; // Φ cannot support some statement; try the next VC.
      }
      // Accumulate: a run that burns through several VCs explores the union
      // of their sketch spaces, not just the final one.
      Result.Stats.SketchSpace += Sk->spaceSize();
      MIGRATOR_COUNTER_ADD("synth.sketches_generated", 1);
      MIGRATOR_HISTOGRAM_RECORD("sketch.holes", Sk->getNumHoles());
      Wave.push_back(std::move(*Sk));
    }
    if (Wave.empty()) {
      if (VcsExhausted)
        break; // No further correspondence exists: synthesis fails (⊥).
      continue; // Every gathered VC was unsupported; the MaxVcs guard above
                // bounds how long this can go on.
    }

    SolverOptions SolverOpts = Opts.Solver;
    SolverOpts.TimeBudgetSec = std::min(Opts.Solver.TimeBudgetSec, Remaining);

    const size_t W = Wave.size();
    std::vector<std::optional<Program>> Progs(W);
    std::vector<SolveStats> WaveStats(W);

    if (W == 1 || !Pool) {
      // Sequential portfolio: ranks in order, first success wins — the
      // same answer deterministic parallel mode produces.
      for (size_t R = 0; R < W; ++R) {
        SketchSolver &Solver = SlotFor(R, SolverOpts);
        Progs[R] = Solver.solve(Wave[R], WaveStats[R]);
        if (Progs[R]) {
          Result.Prog = std::move(*Progs[R]);
          break;
        }
      }
    } else {
      // Parallel portfolio: one task per rank, each with a private solver
      // and SAT encoder over the shared pool and cache. A winner cancels
      // higher ranks (deterministic mode) or everyone (first-wins mode).
      auto CancelFlags = std::make_unique<std::atomic<bool>[]>(W);
      for (size_t I = 0; I < W; ++I)
        CancelFlags[I].store(false, std::memory_order_relaxed);
      std::atomic<int> FirstWinner{-1};
      // Materialize this wave's slots sequentially before spawning tasks:
      // each task then touches only its own pre-built slot, and the slot
      // vector itself is never resized concurrently.
      for (size_t R = 0; R < W; ++R)
        SlotFor(R, SolverOpts);
      {
        TaskGroup Group(Pool.get());
        for (size_t R = 0; R < W; ++R)
          Group.run([&, R]() {
            if (CancelFlags[R].load(std::memory_order_relaxed)) {
              WaveStats[R].Cancelled = true;
              return;
            }
            SketchSolver &Solver = *Slots[R];
            Progs[R] = Solver.solve(Wave[R], WaveStats[R], &CancelFlags[R]);
            if (!Progs[R])
              return;
            MIGRATOR_COUNTER_ADD("synth.portfolio_wins", 1);
            if (Opts.Deterministic) {
              // Only higher ranks become moot; lower ranks may still
              // produce the (preferred) answer.
              for (size_t I = R + 1; I < W; ++I)
                CancelFlags[I].store(true, std::memory_order_relaxed);
            } else {
              int Expected = -1;
              if (FirstWinner.compare_exchange_strong(Expected,
                                                      static_cast<int>(R)))
                for (size_t I = 0; I < W; ++I)
                  if (I != R)
                    CancelFlags[I].store(true, std::memory_order_relaxed);
            }
          });
        Group.wait();
      }
      if (Opts.Deterministic) {
        for (size_t R = 0; R < W; ++R)
          if (Progs[R]) {
            Result.Prog = std::move(*Progs[R]);
            break;
          }
      } else {
        int Win = FirstWinner.load(std::memory_order_relaxed);
        if (Win >= 0)
          Result.Prog = std::move(*Progs[static_cast<size_t>(Win)]);
      }
    }

    bool WaveTimedOut = false;
    for (const SolveStats &SS : WaveStats) {
      Agg += SS;
      WaveTimedOut = WaveTimedOut || SS.TimedOut;
    }
    if (Result.Prog)
      break;
    if (WaveTimedOut && Total.elapsedSeconds() >= Opts.TimeBudgetSec) {
      Result.Stats.TimedOut = true;
      break;
    }
  }

  Result.Stats.Solve = Agg;
  Result.Stats.Iters = Agg.Iters;
  Result.Stats.VerifyTimeSec = Agg.VerifyTimeSec;
  Result.Stats.TotalTimeSec = Total.elapsedSeconds();
  Result.Stats.SynthTimeSec =
      Result.Stats.TotalTimeSec - Result.Stats.VerifyTimeSec;

  if (obs::metricsEnabled())
    Result.Metrics = obs::registry().snapshot() - Before;
  if (Span.active())
    Span.arg("vcs", static_cast<uint64_t>(Result.Stats.NumVcs))
        .arg("iters", Result.Stats.Iters)
        .arg("sketch_space", Result.Stats.SketchSpace)
        .arg("jobs", static_cast<uint64_t>(Jobs))
        .arg("succeeded", Result.succeeded())
        .arg("timed_out", Result.Stats.TimedOut);
  return Result;
}
