//===- synth/Synthesizer.cpp - Top-level synthesis loop ---------------------===//

#include "synth/Synthesizer.h"

#include "ast/Analysis.h"
#include "support/Timer.h"

using namespace migrator;

SynthResult migrator::synthesize(const Schema &SourceSchema,
                                 const Program &SourceProg,
                                 const Schema &TargetSchema,
                                 SynthOptions Opts) {
  Timer Total;
  SynthResult Result;

  std::set<QualifiedAttr> Queried =
      collectQueriedAttrs(SourceProg, SourceSchema);
  VcEnumerator VcEnum(SourceSchema, TargetSchema, Queried, Opts.Vc);

  while (Result.Stats.NumVcs < Opts.MaxVcs) {
    double Remaining = Opts.TimeBudgetSec - Total.elapsedSeconds();
    if (Remaining <= 0) {
      Result.Stats.TimedOut = true;
      break;
    }

    std::optional<ValueCorrespondence> Phi = VcEnum.next();
    if (!Phi)
      break; // No further correspondence exists: synthesis fails (⊥).
    ++Result.Stats.NumVcs;

    std::optional<Sketch> Sk = generateSketch(SourceProg, SourceSchema,
                                              TargetSchema, *Phi,
                                              Opts.SketchGen);
    if (!Sk)
      continue; // Φ cannot support some statement; try the next VC.
    Result.Stats.SketchSpace = Sk->spaceSize();

    SolverOptions SolverOpts = Opts.Solver;
    SolverOpts.TimeBudgetSec = std::min(Opts.Solver.TimeBudgetSec, Remaining);
    SketchSolver BudgetedSolver(SourceSchema, SourceProg, TargetSchema,
                                SolverOpts);

    SolveStats SS;
    std::optional<Program> Prog = BudgetedSolver.solve(*Sk, SS);
    Result.Stats.Iters += SS.Iters;
    Result.Stats.VerifyTimeSec += SS.VerifyTimeSec;
    if (Prog) {
      Result.Prog = std::move(Prog);
      break;
    }
    if (SS.TimedOut && Total.elapsedSeconds() >= Opts.TimeBudgetSec) {
      Result.Stats.TimedOut = true;
      break;
    }
  }

  Result.Stats.TotalTimeSec = Total.elapsedSeconds();
  Result.Stats.SynthTimeSec =
      Result.Stats.TotalTimeSec - Result.Stats.VerifyTimeSec;
  return Result;
}
