//===- synth/RandomWorkload.h - Random invocation sequences -------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic random invocation-sequence generation: update prefixes with
/// arguments drawn from a configurable value domain, ended by one query
/// (Sec. 3.2's ω shape). Used by property tests, the examples, and the
/// statistical equivalence check `randomlyEquivalent` — a complement to the
/// systematic bounded tester that samples a wider value domain.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_RANDOMWORKLOAD_H
#define MIGRATOR_SYNTH_RANDOMWORKLOAD_H

#include "ast/Program.h"
#include "eval/Evaluator.h"
#include "support/Rng.h"

namespace migrator {

/// Options for random workload generation.
struct RandomWorkloadOptions {
  unsigned MaxUpdates = 5;  ///< Prefix length is uniform in [0, MaxUpdates].
  int IntDomain = 4;        ///< Ints drawn from [0, IntDomain).
  int StrDomain = 4;        ///< Strings "A".."D" style.
};

/// Generates one random invocation sequence for \p P (updates then a query).
/// Requires \p P to declare at least one query function.
InvocationSeq randomSequence(const Program &P, Rng &R,
                             const RandomWorkloadOptions &Opts = {});

/// Runs \p Trials random sequences against both programs and compares the
/// results. Returns the first diverging sequence, or nullopt if all trials
/// agree (statistical evidence of equivalence, not proof).
std::optional<InvocationSeq>
findRandomCounterexample(const Program &Source, const Schema &SourceSchema,
                         const Program &Cand, const Schema &CandSchema,
                         unsigned Trials, uint64_t Seed,
                         const RandomWorkloadOptions &Opts = {});

} // namespace migrator

#endif // MIGRATOR_SYNTH_RANDOMWORKLOAD_H
