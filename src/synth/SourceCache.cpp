//===- synth/SourceCache.cpp - Cross-candidate source-result cache ----------===//

#include "synth/SourceCache.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace migrator;

obs::LockSite &migrator::detail::srcCacheStripeSite(unsigned I) {
  // One process-lifetime site per stripe index, named so a contention
  // report can tell a single hot stripe (bad hashing) from load spread
  // evenly across the memo (healthy striping).
  static obs::LockSite S0("src_cache.s0"), S1("src_cache.s1"),
      S2("src_cache.s2"), S3("src_cache.s3"), S4("src_cache.s4"),
      S5("src_cache.s5"), S6("src_cache.s6"), S7("src_cache.s7"),
      S8("src_cache.s8"), S9("src_cache.s9"), S10("src_cache.s10"),
      S11("src_cache.s11"), S12("src_cache.s12"), S13("src_cache.s13"),
      S14("src_cache.s14"), S15("src_cache.s15");
  static obs::LockSite *Sites[SourceResultCache::NumStripes] = {
      &S0, &S1, &S2,  &S3,  &S4,  &S5,  &S6,  &S7,
      &S8, &S9, &S10, &S11, &S12, &S13, &S14, &S15};
  static_assert(SourceResultCache::NumStripes == 16,
                "stripe site table above must match NumStripes");
  return *Sites[I % SourceResultCache::NumStripes];
}

namespace {

void appendValue(std::string &Key, const Value &V) {
  std::string Payload;
  char Tag = '?';
  switch (V.kind()) {
  case Value::Kind::Int:
    Tag = 'i';
    Payload = std::to_string(V.getInt());
    break;
  case Value::Kind::String:
    Tag = 's';
    Payload = V.getString();
    break;
  case Value::Kind::Binary:
    Tag = 'b';
    Payload = V.getBinary();
    break;
  case Value::Kind::Bool:
    Tag = 'o';
    Payload = V.getBool() ? "1" : "0";
    break;
  case Value::Kind::Uid:
    Tag = 'u';
    Payload = std::to_string(V.getUid());
    break;
  }
  Key += Tag;
  Key += std::to_string(Payload.size());
  Key += ':';
  Key += Payload;
}

void appendInvocation(std::string &Key, const Invocation &Inv) {
  Key += std::to_string(Inv.Func.size());
  Key += ':';
  Key += Inv.Func;
  Key += '(';
  for (const Value &V : Inv.Args)
    appendValue(Key, V);
  Key += ')';
}

/// `<parent id><sep><serialized invocation>`: O(1) in the prefix length.
/// Ids never repeat, invocation serialization is length-prefixed, and the
/// separator distinguishes state keys from result keys, so no two distinct
/// probes alias.
std::string childKey(uint64_t ParentId, char Sep, const Invocation &Inv) {
  std::string Key;
  Key.reserve(32 + Inv.Func.size());
  Key += std::to_string(ParentId);
  Key += Sep;
  appendInvocation(Key, Inv);
  return Key;
}

} // namespace

std::string migrator::invocationSeqKey(const InvocationSeq &Seq) {
  std::string Key;
  for (const Invocation &Inv : Seq)
    appendInvocation(Key, Inv);
  return Key;
}

unsigned SourceResultCache::stripeOf(uint64_t Id) {
  // splitmix64 finalizer: parent ids are sequential, so without mixing,
  // neighbouring prefixes — exactly the ones a wave of workers extends
  // together — would pile onto neighbouring (often identical) stripes.
  uint64_t H = Id + 0x9e3779b97f4a7c15ull;
  H = (H ^ (H >> 30)) * 0xbf58476d1ce4e5b9ull;
  H = (H ^ (H >> 27)) * 0x94d049bb133111ebull;
  H ^= H >> 31;
  return static_cast<unsigned>(H & (NumStripes - 1));
}

SourceResultCache::SourceResultCache(const Schema &SourceSchema,
                                     const Program &SourceProg,
                                     size_t MaxEntries)
    : SourceSchema(SourceSchema), SourceProg(SourceProg),
      StripeCap(std::max<size_t>(1, MaxEntries / NumStripes)),
      Eval(SourceSchema),
      EmptyDB(std::make_shared<const Database>(SourceSchema)) {
  for (unsigned I = 0; I < NumStripes; ++I)
    Stripes.emplace_back(detail::srcCacheStripeSite(I));
}

void SourceResultCache::countHit() {
  Hits.fetch_add(1, std::memory_order_relaxed);
  MIGRATOR_COUNTER_ADD("tester.src_cache_hits", 1);
}

void SourceResultCache::countMiss() {
  Misses.fetch_add(1, std::memory_order_relaxed);
  MIGRATOR_COUNTER_ADD("tester.src_cache_misses", 1);
}

SourceResultCache::PrefixState SourceResultCache::initialState() const {
  return {EmptyDB, 1, 0};
}

std::optional<SourceResultCache::PrefixState>
SourceResultCache::extend(const PrefixState &Parent, const Invocation &Inv) {
  const bool Cacheable = (Parent.Id & UnstoredBit) == 0;
  std::string Key;
  Stripe *S = nullptr;
  if (Cacheable) {
    Key = childKey(Parent.Id, '#', Inv);
    S = &stripeFor(Parent.Id);
    std::lock_guard<obs::ProfiledMutex> Lock(S->M);
    auto It = S->States.find(Key);
    if (It != S->States.end()) {
      countHit();
      return It->second;
    }
  }
  countMiss();

  const Function *F = SourceProg.findFunction(Inv.Func);
  assert(F && F->isUpdate() && "prefix invocation is not a source update");
  Database DB = *Parent.DB; // COW copy-on-extend; the snapshot stays
                            // immutable, so sharing is never broken by it.
  UidGen Uids(Parent.NextUid);
  if (!Eval.callUpdate(*F, Inv.Args, DB, Uids))
    return std::nullopt;
  PrefixState St{std::make_shared<const Database>(std::move(DB)),
                 Uids.peekNext(), 0};

  if (Cacheable) {
    std::lock_guard<obs::ProfiledMutex> Lock(S->M);
    if (S->States.size() < StripeCap) {
      St.Id = NextId.fetch_add(1, std::memory_order_relaxed);
      // First insert wins: a racing worker may have computed the same state;
      // both copies are identical, so either snapshot (and its id) serves
      // every reader.
      auto [It, Inserted] = S->States.try_emplace(std::move(Key), St);
      if (!Inserted)
        return It->second;
      return St;
    }
  }
  St.Id = UnstoredBit | NextId.fetch_add(1, std::memory_order_relaxed);
  return St;
}

std::shared_ptr<const ResultTable>
SourceResultCache::query(const PrefixState &St, const Invocation &Query) {
  const bool Cacheable = (St.Id & UnstoredBit) == 0;
  std::string Key;
  Stripe *S = nullptr;
  if (Cacheable) {
    Key = childKey(St.Id, '|', Query);
    S = &stripeFor(St.Id);
    std::lock_guard<obs::ProfiledMutex> Lock(S->M);
    auto It = S->Results.find(Key);
    if (It != S->Results.end()) {
      countHit();
      return It->second;
    }
  }
  countMiss();

  const Function *F = SourceProg.findFunction(Query.Func);
  assert(F && F->isQuery() && "final invocation is not a source query");
  std::optional<ResultTable> R = Eval.callQuery(*F, Query.Args, *St.DB);
  if (!R)
    return nullptr;
  auto Shared = std::make_shared<const ResultTable>(std::move(*R));

  if (Cacheable) {
    std::lock_guard<obs::ProfiledMutex> Lock(S->M);
    if (S->Results.size() < StripeCap) {
      auto [It, Inserted] = S->Results.try_emplace(std::move(Key), Shared);
      if (!Inserted)
        return It->second;
    }
  }
  return Shared;
}

std::shared_ptr<const ResultTable>
SourceResultCache::run(const InvocationSeq &Seq) {
  if (Seq.empty())
    return nullptr;
  PrefixState St = initialState();
  for (size_t I = 0; I + 1 < Seq.size(); ++I) {
    std::optional<PrefixState> Next = extend(St, Seq[I]);
    if (!Next)
      return nullptr;
    St = std::move(*Next);
  }
  return query(St, Seq.back());
}
