//===- synth/SourceCache.h - Cross-candidate source-result cache --*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The source side of every bounded-equivalence test is candidate
/// independent: executing invocation sequence σ on the *source* program
/// always starts from the empty instance and always produces the same
/// database state and query result, no matter which candidate is on the
/// other side. The sequential engine nevertheless re-executed it for every
/// candidate of every sketch. This cache hoists those runs:
///
///  * *prefix states* — the source database (and next-UID counter) after an
///    update prefix, shared as immutable `shared_ptr<const Database>`
///    snapshots;
///  * *query results* — the source result of a full sequence (update prefix
///    plus final query call).
///
/// Both maps are shared across candidates, sketches, and portfolio workers
/// within one synthesize() run. Every stored prefix state carries a small
/// numeric id, and cache keys are `<parent id>#<one serialized invocation>`
/// — O(1) in the prefix length — instead of the full serialized prefix the
/// first engine hashed on every probe (the dominant cost of the cache at
/// jobs=1; see EXPERIMENTS.md). Invocation serialization length-prefixes
/// every component and ids are unique per stored state, so no two distinct
/// (state, invocation) pairs can alias; and because a prefix fully
/// determines the source run (updates applied in order from the empty
/// instance, UIDs drawn from a counter starting at 1), a cached state or
/// result is byte-identical to a recomputation — including UID numbering,
/// so the UID-bijection-aware result comparison behaves exactly as without
/// the cache (guarded by `SourceCacheTest` / `ParallelSynthTest`).
///
/// Thread safety — *striped*, not single-lock: the memo is sharded into
/// NumStripes cache-line-aligned stripes, each owning a slice of both maps
/// and its own mutex (lock sites `src_cache.s<I>`). A probe hashes the
/// parent state's numeric id to pick its stripe, so concurrent workers
/// extending unrelated prefixes never touch the same lock — the single
/// `src_cache` mutex was the top wait site in every jobs>1 contention
/// profile before PR 8. Executions still run outside any lock, so workers
/// may rarely duplicate a computation (first insert wins, per stripe) but
/// never block each other on evaluator work. Determinism is unaffected:
/// striping changes which mutex guards an entry, never what is stored.
///
/// Observability: `tester.src_cache_hits` / `tester.src_cache_misses`;
/// per-stripe lock metrics under `lock.src_cache.s<I>.*` (bench_sweep's
/// contention section additionally reports the summed `src_cache`
/// aggregate, keeping the ledger comparable across the resharding).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SYNTH_SOURCECACHE_H
#define MIGRATOR_SYNTH_SOURCECACHE_H

#include "eval/Evaluator.h"
#include "obs/LockProfile.h"
#include "relational/Database.h"
#include "relational/ResultTable.h"

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

namespace migrator {

namespace detail {
/// The `src_cache.s<I>` lock site for stripe \p I (all SourceResultCache
/// instances share the per-stripe sites; one cache exists per synthesize()
/// run in practice).
obs::LockSite &srcCacheStripeSite(unsigned I);
} // namespace detail

/// Memoized execution of one fixed source program over one fixed schema.
class SourceResultCache {
public:
  /// Stripe count. Power of two (the stripe picker masks a mixed id hash);
  /// 16 matches obs::Counter::NumShards — enough slots that a jobs<=16
  /// fleet rarely collides, small enough that a cold cache stays cheap.
  static constexpr unsigned NumStripes = 16;

  /// \p MaxEntries bounds the cache overall; each stripe stores at most
  /// MaxEntries / NumStripes entries per map, and further misses on a full
  /// stripe are computed but not stored (the working set of a synthesis
  /// run is far below the default bound — the cap only guards degenerate
  /// workloads).
  SourceResultCache(const Schema &SourceSchema, const Program &SourceProg,
                    size_t MaxEntries = 1u << 20);

  /// An immutable source-side snapshot: the database after some update
  /// prefix, the UID counter the next fresh key would be drawn from, and
  /// the state's cache id. Carrying the id in the state makes extending it
  /// O(one invocation) instead of re-serializing (and re-hashing) the whole
  /// prefix on every probe.
  struct PrefixState {
    std::shared_ptr<const Database> DB;
    uint64_t NextUid = 1;
    /// 0 is the empty-instance root; states the cache declined to store
    /// (cap reached, or an unstored parent) have UnstoredBit set, which
    /// makes their descendants bypass the cache instead of polluting it
    /// with keys that can never be probed again.
    uint64_t Id = 0;
  };

  /// Marks a PrefixState id whose state is not in the cache.
  static constexpr uint64_t UnstoredBit = uint64_t(1) << 63;

  /// The empty-instance state (the root of every bounded-test search).
  PrefixState initialState() const;

  /// State after appending update invocation \p Inv to \p Parent's prefix.
  /// On a miss, \p Inv is applied to a copy of \p Parent. Returns nullopt
  /// only if the update is ill-formed — impossible for a valid source
  /// program.
  std::optional<PrefixState> extend(const PrefixState &Parent,
                                    const Invocation &Inv);

  /// Source result of query invocation \p Query on top of state \p St.
  /// Returns nullptr only on an ill-formed query.
  std::shared_ptr<const ResultTable> query(const PrefixState &St,
                                           const Invocation &Query);

  /// Memoized equivalent of runSequence(SourceProg, SourceSchema, Seq):
  /// walks the prefix through the state cache (so CEGIS example screens
  /// reuse cached prefixes), then the final query through the result cache.
  std::shared_ptr<const ResultTable> run(const InvocationSeq &Seq);

  uint64_t hits() const { return Hits.load(std::memory_order_relaxed); }
  uint64_t misses() const { return Misses.load(std::memory_order_relaxed); }

  /// The stripe index parent-state id \p Id maps to (test hook: the stress
  /// test asserts that distinct parents spread across stripes).
  static unsigned stripeOf(uint64_t Id);

private:
  void countHit();
  void countMiss();

  /// One lock-striped slice of the memo. Cache-line-aligned so two stripes'
  /// mutexes never share a line (the whole point of striping is that
  /// workers on different stripes proceed without interfering).
  struct alignas(64) Stripe {
    explicit Stripe(obs::LockSite &Site) : M(Site) {}
    mutable obs::ProfiledMutex M;
    std::unordered_map<std::string, PrefixState> States;
    std::unordered_map<std::string, std::shared_ptr<const ResultTable>>
        Results;
  };

  Stripe &stripeFor(uint64_t ParentId) {
    return Stripes[stripeOf(ParentId)];
  }

  const Schema &SourceSchema;
  const Program &SourceProg;
  const size_t StripeCap; ///< Per-stripe, per-map entry bound.
  Evaluator Eval;
  std::shared_ptr<const Database> EmptyDB;

  /// Next id handed to a stored prefix state (0 is the implicit root).
  std::atomic<uint64_t> NextId{1};
  /// deque, not vector: stripes hold mutexes and must never move.
  std::deque<Stripe> Stripes;

  std::atomic<uint64_t> Hits{0};
  std::atomic<uint64_t> Misses{0};
};

/// Serializes \p Seq into an unambiguous cache key: every function name and
/// argument is length-prefixed, so distinct sequences never collide.
/// Exposed for tests.
std::string invocationSeqKey(const InvocationSeq &Seq);

} // namespace migrator

#endif // MIGRATOR_SYNTH_SOURCECACHE_H
