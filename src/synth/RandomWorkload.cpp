//===- synth/RandomWorkload.cpp - Random invocation sequences -----------------===//

#include "synth/RandomWorkload.h"

#include "relational/ResultTable.h"

#include <cassert>

using namespace migrator;

namespace {

Value randomValue(ValueType Ty, Rng &R, const RandomWorkloadOptions &Opts) {
  switch (Ty) {
  case ValueType::Int:
    return Value::makeInt(R.nextInt(0, Opts.IntDomain - 1));
  case ValueType::String:
    return Value::makeString(std::string(
        1, static_cast<char>('A' + R.nextInt(0, Opts.StrDomain - 1))));
  case ValueType::Binary:
    return Value::makeBinary("b" +
                             std::to_string(R.nextInt(0, Opts.StrDomain - 1)));
  case ValueType::Bool:
    return Value::makeBool(R.chance(1, 2));
  }
  assert(false && "unknown value type");
  return Value();
}

Invocation randomCall(const Function &F, Rng &R,
                      const RandomWorkloadOptions &Opts) {
  Invocation I;
  I.Func = F.getName();
  for (const Param &P : F.getParams())
    I.Args.push_back(randomValue(P.Type, R, Opts));
  return I;
}

} // namespace

InvocationSeq migrator::randomSequence(const Program &P, Rng &R,
                                       const RandomWorkloadOptions &Opts) {
  std::vector<std::string> Updates = P.updateFunctionNames();
  std::vector<std::string> Queries = P.queryFunctionNames();
  assert(!Queries.empty() && "program declares no query function");

  InvocationSeq Seq;
  if (!Updates.empty())
    for (int L = R.nextInt(0, static_cast<int>(Opts.MaxUpdates)); L > 0; --L)
      Seq.push_back(
          randomCall(P.getFunction(Updates[R.next(Updates.size())]), R, Opts));
  Seq.push_back(
      randomCall(P.getFunction(Queries[R.next(Queries.size())]), R, Opts));
  return Seq;
}

std::optional<InvocationSeq> migrator::findRandomCounterexample(
    const Program &Source, const Schema &SourceSchema, const Program &Cand,
    const Schema &CandSchema, unsigned Trials, uint64_t Seed,
    const RandomWorkloadOptions &Opts) {
  Rng R(Seed);
  for (unsigned T = 0; T < Trials; ++T) {
    InvocationSeq Seq = randomSequence(Source, R, Opts);
    std::optional<ResultTable> A = runSequence(Source, SourceSchema, Seq);
    std::optional<ResultTable> B = runSequence(Cand, CandSchema, Seq);
    if (!A || !B || !resultsEquivalent(*A, *B))
      return Seq;
  }
  return std::nullopt;
}
