//===- obs/Metrics.cpp - Counters, gauges, latency histograms ---------------===//

#include "obs/Metrics.h"

#include "obs/Json.h"
#include "obs/LockProfile.h"

#include <cstdio>
#include <deque>
#include <mutex>
#include <sstream>

using namespace migrator;
using namespace migrator::obs;

std::atomic<bool> obs::detail::MetricsEnabledFlag{false};

void obs::setMetricsEnabled(bool On) {
  detail::MetricsEnabledFlag.store(On, std::memory_order_relaxed);
}

size_t obs::detail::nextCounterShardSlot() {
  static std::atomic<size_t> Next{0};
  return Next.fetch_add(1, std::memory_order_relaxed) % Counter::NumShards;
}

//===----------------------------------------------------------------------===//
// Histogram
//===----------------------------------------------------------------------===//

double HistogramSnapshot::percentile(double Q) const {
  if (Count == 0)
    return 0;
  if (Q < 0)
    Q = 0;
  if (Q > 1)
    Q = 1;
  // Rank of the requested sample (1-based, ceil).
  uint64_t Rank = static_cast<uint64_t>(Q * static_cast<double>(Count));
  if (Rank == 0)
    Rank = 1;
  uint64_t Seen = 0;
  for (size_t B = 0; B < NumBuckets; ++B) {
    uint64_t InBucket = Buckets[B];
    Seen += InBucket;
    if (Seen >= Rank) {
      if (B == 0)
        return 0; // Bucket 0 holds exactly {0}.
      // Interpolate the rank's position within [2^(B-1), 2^B): samples are
      // assumed evenly spread across the bucket, each owning 1/InBucket of
      // its width, evaluated at the slot center. A single-sample bucket
      // degenerates to the midpoint Lo * 1.5.
      double Lo = static_cast<double>(1ULL << (B - 1));
      uint64_t PosInBucket = Rank - (Seen - InBucket); // in [1, InBucket]
      double Frac = (static_cast<double>(PosInBucket) - 0.5) /
                    static_cast<double>(InBucket);
      return Lo + Frac * Lo;
    }
  }
  return 0;
}

HistogramSnapshot HistogramSnapshot::operator-(const HistogramSnapshot &Base) const {
  HistogramSnapshot D;
  D.Count = Count - Base.Count;
  D.Sum = Sum - Base.Sum;
  for (size_t B = 0; B < NumBuckets; ++B)
    D.Buckets[B] = Buckets[B] - Base.Buckets[B];
  return D;
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot S;
  for (size_t B = 0; B < HistogramSnapshot::NumBuckets; ++B) {
    S.Buckets[B] = Counts[B].load(std::memory_order_relaxed);
    S.Count += S.Buckets[B];
  }
  S.Sum = SumV.load(std::memory_order_relaxed);
  return S;
}

void Histogram::reset() {
  for (auto &C : Counts)
    C.store(0, std::memory_order_relaxed);
  SumV.store(0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

struct MetricsRegistry::Impl {
  std::mutex M;
  // deques: stable element addresses under growth (instrument references
  // handed out to call sites must never dangle).
  std::map<std::string, Counter *> Counters;
  std::map<std::string, Gauge *> Gauges;
  std::map<std::string, Histogram *> Histograms;
  std::deque<Counter> CounterStore;
  std::deque<Gauge> GaugeStore;
  std::deque<Histogram> HistogramStore;
};

MetricsRegistry::Impl &MetricsRegistry::impl() const {
  // Leaked singleton: instruments must outlive every static destructor that
  // might still record.
  static Impl *I = new Impl();
  return *I;
}

MetricsRegistry &obs::registry() {
  static MetricsRegistry R;
  return R;
}

Counter &MetricsRegistry::counter(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Counters.find(Name);
  if (It != I.Counters.end())
    return *It->second;
  I.CounterStore.emplace_back();
  return *(I.Counters[Name] = &I.CounterStore.back());
}

Gauge &MetricsRegistry::gauge(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Gauges.find(Name);
  if (It != I.Gauges.end())
    return *It->second;
  I.GaugeStore.emplace_back();
  return *(I.Gauges[Name] = &I.GaugeStore.back());
}

Histogram &MetricsRegistry::histogram(const std::string &Name) {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  auto It = I.Histograms.find(Name);
  if (It != I.Histograms.end())
    return *It->second;
  I.HistogramStore.emplace_back();
  return *(I.Histograms[Name] = &I.HistogramStore.back());
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  MetricsSnapshot S;
  for (const auto &[Name, C] : I.Counters)
    S.Counters[Name] = C->value();
  for (const auto &[Name, G] : I.Gauges)
    S.Gauges[Name] = G->value();
  for (const auto &[Name, H] : I.Histograms)
    S.Histograms[Name] = H->snapshot();
  // Touched lock sites ride along as lock.<site>.* counters/histograms, so
  // SynthResult::Metrics deltas and --stats-json carry contention data.
  detail::appendLockMetrics(S);
  return S;
}

void MetricsRegistry::reset() {
  Impl &I = impl();
  std::lock_guard<std::mutex> Lock(I.M);
  for (auto &[Name, C] : I.Counters)
    C->reset();
  for (auto &[Name, G] : I.Gauges)
    G->reset();
  for (auto &[Name, H] : I.Histograms)
    H->reset();
  resetLockProfile();
}

//===----------------------------------------------------------------------===//
// MetricsSnapshot rendering
//===----------------------------------------------------------------------===//

MetricsSnapshot MetricsSnapshot::operator-(const MetricsSnapshot &Base) const {
  MetricsSnapshot D;
  for (const auto &[Name, V] : Counters) {
    auto It = Base.Counters.find(Name);
    D.Counters[Name] = It == Base.Counters.end() ? V : V - It->second;
  }
  D.Gauges = Gauges; // Last value wins; deltas are meaningless for gauges.
  for (const auto &[Name, H] : Histograms) {
    auto It = Base.Histograms.find(Name);
    D.Histograms[Name] = It == Base.Histograms.end() ? H : H - It->second;
  }
  return D;
}

std::string MetricsSnapshot::str() const {
  std::ostringstream OS;
  char Buf[160];
  for (const auto &[Name, V] : Counters) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %20llu\n", Name.c_str(),
                  static_cast<unsigned long long>(V));
    OS << Buf;
  }
  for (const auto &[Name, V] : Gauges) {
    std::snprintf(Buf, sizeof(Buf), "%-40s %20.6g\n", Name.c_str(), V);
    OS << Buf;
  }
  for (const auto &[Name, H] : Histograms) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-40s count=%-10llu mean=%-10.1f p50=%-10.0f p90=%-10.0f "
                  "p95=%-10.0f p99=%.0f\n",
                  Name.c_str(), static_cast<unsigned long long>(H.Count),
                  H.mean(), H.percentile(0.50), H.percentile(0.90),
                  H.percentile(0.95), H.percentile(0.99));
    OS << Buf;
  }
  return OS.str();
}

std::string MetricsSnapshot::json() const {
  std::ostringstream OS;
  OS << "{\"counters\":{";
  bool First = true;
  for (const auto &[Name, V] : Counters) {
    if (!First)
      OS << ",";
    First = false;
    OS << jsonString(Name) << ":" << V;
  }
  OS << "},\"gauges\":{";
  First = true;
  for (const auto &[Name, V] : Gauges) {
    if (!First)
      OS << ",";
    First = false;
    OS << jsonString(Name) << ":" << jsonNumber(V);
  }
  OS << "},\"histograms\":{";
  First = true;
  for (const auto &[Name, H] : Histograms) {
    if (!First)
      OS << ",";
    First = false;
    OS << jsonString(Name) << ":{\"count\":" << H.Count << ",\"sum\":" << H.Sum
       << ",\"mean\":" << jsonNumber(H.mean())
       << ",\"p50\":" << jsonNumber(H.percentile(0.50))
       << ",\"p90\":" << jsonNumber(H.percentile(0.90))
       << ",\"p95\":" << jsonNumber(H.percentile(0.95))
       << ",\"p99\":" << jsonNumber(H.percentile(0.99)) << ",\"buckets\":[";
    // Trailing zero buckets are elided to keep dumps small.
    size_t Last = H.Buckets.size();
    while (Last > 0 && H.Buckets[Last - 1] == 0)
      --Last;
    for (size_t B = 0; B < Last; ++B) {
      if (B)
        OS << ",";
      OS << H.Buckets[B];
    }
    OS << "]}";
  }
  OS << "}}";
  return OS.str();
}
