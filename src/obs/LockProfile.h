//===- obs/LockProfile.h - Instrumented lock wrappers -------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lock-contention profiling for the parallel synthesis engine: drop-in
/// mutex wrappers that attribute acquisition counts, wait time, and hold
/// time to *named lock sites*, so a jobs=N slowdown can be pinned on the
/// specific lock that serialized the workers (the source-result cache, the
/// COW index mutexes, the plan cache, the pool queues, ...).
///
/// Model:
///
///  * a `LockSite` is a process-lifetime statistics block for one named
///    site, registered once (usually as a function-local static) in an
///    intrusive global list — creation never takes a map lookup, so a
///    per-payload mutex (Table's index mutex is constructed hundreds of
///    thousands of times per run) costs one pointer store;
///  * `ProfiledMutex` / `ProfiledSharedMutex` wrap `std::mutex` /
///    `std::shared_mutex` and satisfy *Lockable*, so `std::lock_guard` /
///    `std::unique_lock` work unchanged. Many mutexes may share one site:
///    the four pool deques all report as `pool.queue`;
///  * profiling is off by default. The disabled path adds one relaxed
///    atomic load and a predictable branch around the underlying lock call
///    (measured by `BM_ProfiledMutex*` in bench/bench_micro.cpp), and one
///    plain load + branch on unlock. Enabled, a lock/unlock pair costs
///    three `steady_clock` reads plus a handful of relaxed fetch_adds.
///
/// Accounting per site: `Acquisitions` (every successful exclusive or
/// shared acquisition), `Contended` (acquisitions whose initial try_lock
/// failed), total wait/hold nanoseconds, and log2 microsecond histograms
/// of wait and hold times (so `--stats-json` can report wait p50/p95 per
/// site). Hold time is tracked for exclusive holds only — a shared_mutex
/// has no single holder to carry the acquisition timestamp.
///
/// Export: `lockProfileSnapshot()` (ranked by total wait),
/// `lockProfileReport()` (human table), `lockProfileJson()`; additionally
/// `MetricsRegistry::snapshot()` folds every touched site into the normal
/// metrics namespace (`lock.<site>.acquisitions`, `.contended`,
/// `.wait_ns`, `.hold_ns` counters and `lock.<site>.wait_us` / `.hold_us`
/// histograms), so `SynthResult::Metrics` deltas and `--stats-json` carry
/// lock data with no extra plumbing.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_OBS_LOCKPROFILE_H
#define MIGRATOR_OBS_LOCKPROFILE_H

#include "obs/Metrics.h"

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <vector>

namespace migrator {
namespace obs {

//===----------------------------------------------------------------------===//
// Enable switch
//===----------------------------------------------------------------------===//

namespace detail {
extern std::atomic<bool> LockProfilingEnabledFlag;

inline uint64_t lockNowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace detail

/// True when lock profiling is on. One relaxed load: the guard every
/// profiled lock operation evaluates first.
inline bool lockProfilingEnabled() {
  return detail::LockProfilingEnabledFlag.load(std::memory_order_relaxed);
}

/// Turns lock profiling on or off (off is the default).
void setLockProfilingEnabled(bool On);

//===----------------------------------------------------------------------===//
// LockSite
//===----------------------------------------------------------------------===//

/// Statistics block for one named lock site. Construct as a static (the
/// constructor links it into a global intrusive list and never unlinks:
/// sites, like metric instruments, live for the process lifetime).
class LockSite {
public:
  explicit LockSite(const char *Name);

  LockSite(const LockSite &) = delete;
  LockSite &operator=(const LockSite &) = delete;

  const char *name() const { return Name; }

  /// Records one successful acquisition that waited \p WaitNs (0 when the
  /// initial try_lock succeeded). \p WasContended marks a failed try_lock.
  void recordWait(uint64_t WaitNs, bool WasContended) {
    Acquisitions.fetch_add(1, std::memory_order_relaxed);
    if (WasContended)
      Contended.fetch_add(1, std::memory_order_relaxed);
    WaitNsTotal.fetch_add(WaitNs, std::memory_order_relaxed);
    WaitUs.record(WaitNs / 1000);
  }

  /// Records one exclusive hold of \p HoldNs nanoseconds.
  void recordHold(uint64_t HoldNs) {
    HoldNsTotal.fetch_add(HoldNs, std::memory_order_relaxed);
    HoldUs.record(HoldNs / 1000);
  }

  uint64_t acquisitions() const {
    return Acquisitions.load(std::memory_order_relaxed);
  }
  uint64_t contended() const {
    return Contended.load(std::memory_order_relaxed);
  }
  uint64_t waitNs() const {
    return WaitNsTotal.load(std::memory_order_relaxed);
  }
  uint64_t holdNs() const {
    return HoldNsTotal.load(std::memory_order_relaxed);
  }
  const Histogram &waitHistogram() const { return WaitUs; }
  const Histogram &holdHistogram() const { return HoldUs; }

  void reset();

private:
  friend std::vector<const LockSite *> lockSites();

  const char *Name;
  std::atomic<uint64_t> Acquisitions{0};
  std::atomic<uint64_t> Contended{0};
  std::atomic<uint64_t> WaitNsTotal{0};
  std::atomic<uint64_t> HoldNsTotal{0};
  Histogram WaitUs; ///< Wait-time histogram, microsecond samples.
  Histogram HoldUs; ///< Exclusive-hold histogram, microsecond samples.

  LockSite *Next = nullptr; ///< Intrusive registry list (never unlinked).
};

/// Every registered site, in registration order (test/export access).
std::vector<const LockSite *> lockSites();

/// Zeroes every site's statistics (sites stay registered). Also invoked by
/// MetricsRegistry::reset() so tests that reset the registry stay isolated.
void resetLockProfile();

//===----------------------------------------------------------------------===//
// Snapshots and reports
//===----------------------------------------------------------------------===//

/// Value-type copy of one site's statistics.
struct LockSiteSnapshot {
  std::string Name;
  uint64_t Acquisitions = 0;
  uint64_t Contended = 0;
  uint64_t WaitNs = 0;
  uint64_t HoldNs = 0;
  HistogramSnapshot WaitUs;
  HistogramSnapshot HoldUs;
};

/// Copies every site that recorded at least one acquisition, ranked by
/// total wait time (descending) — the order a contention investigation
/// reads them in.
std::vector<LockSiteSnapshot> lockProfileSnapshot();

/// Human-readable contention table: one line per touched site, ranked by
/// total wait, with acquisition/contended counts and wait p50/p95.
std::string lockProfileReport();

/// The same content as one JSON array:
/// [{"site":..,"acquisitions":..,"contended":..,"wait_ns":..,"hold_ns":..,
///   "wait_us_p50":..,"wait_us_p95":..,"hold_us_p50":..,"hold_us_p95":..}].
std::string lockProfileJson();

namespace detail {
/// Folds every touched lock site into \p Counters / \p Histograms under
/// the `lock.<site>.*` names. Called by MetricsRegistry::snapshot().
void appendLockMetrics(MetricsSnapshot &S);
} // namespace detail

//===----------------------------------------------------------------------===//
// Profiled lock wrappers
//===----------------------------------------------------------------------===//

/// Wraps \p MutexT with per-site wait/hold accounting. Satisfies Lockable.
template <class MutexT> class ProfiledLock {
public:
  explicit ProfiledLock(LockSite &Site) : Site(&Site) {}

  ProfiledLock(const ProfiledLock &) = delete;
  ProfiledLock &operator=(const ProfiledLock &) = delete;

  void lock() {
    if (!lockProfilingEnabled()) {
      M.lock();
      return;
    }
    if (M.try_lock()) {
      Site->recordWait(0, /*WasContended=*/false);
      AcqNs = detail::lockNowNs();
      return;
    }
    uint64_t T0 = detail::lockNowNs();
    M.lock();
    uint64_t T1 = detail::lockNowNs();
    Site->recordWait(T1 - T0, /*WasContended=*/true);
    AcqNs = T1;
  }

  bool try_lock() {
    if (!lockProfilingEnabled())
      return M.try_lock();
    if (!M.try_lock())
      return false;
    Site->recordWait(0, /*WasContended=*/false);
    AcqNs = detail::lockNowNs();
    return true;
  }

  void unlock() {
    // AcqNs is only ever written by the current holder (and read here by
    // the same holder), so this is a plain load; 0 means the acquisition
    // was not profiled (profiling was off at lock time).
    if (AcqNs) {
      Site->recordHold(detail::lockNowNs() - AcqNs);
      AcqNs = 0;
    }
    M.unlock();
  }

  /// The profiled site (test access).
  const LockSite &site() const { return *Site; }

protected:
  MutexT M;
  LockSite *Site;

private:
  /// Exclusive-acquisition timestamp; written and cleared under the lock,
  /// so ordinary (non-atomic) access is race-free.
  uint64_t AcqNs = 0;
};

/// Instrumented `std::mutex`.
using ProfiledMutex = ProfiledLock<std::mutex>;

/// Instrumented `std::shared_mutex`: exclusive operations account wait and
/// hold; shared operations account wait only (a shared hold has no single
/// owner to carry the timestamp, and timing it would need per-thread state
/// that costs more than it informs).
class ProfiledSharedMutex : public ProfiledLock<std::shared_mutex> {
public:
  using ProfiledLock<std::shared_mutex>::ProfiledLock;

  void lock_shared() {
    if (!lockProfilingEnabled()) {
      M.lock_shared();
      return;
    }
    if (M.try_lock_shared()) {
      Site->recordWait(0, /*WasContended=*/false);
      return;
    }
    uint64_t T0 = detail::lockNowNs();
    M.lock_shared();
    Site->recordWait(detail::lockNowNs() - T0, /*WasContended=*/true);
  }

  bool try_lock_shared() {
    if (!lockProfilingEnabled())
      return M.try_lock_shared();
    if (!M.try_lock_shared())
      return false;
    Site->recordWait(0, /*WasContended=*/false);
    return true;
  }

  void unlock_shared() { M.unlock_shared(); }
};

} // namespace obs
} // namespace migrator

#endif // MIGRATOR_OBS_LOCKPROFILE_H
