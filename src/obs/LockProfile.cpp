//===- obs/LockProfile.cpp - Instrumented lock wrappers ---------------------===//

#include "obs/LockProfile.h"

#include "obs/Json.h"

#include <algorithm>
#include <cstdio>
#include <mutex>
#include <sstream>

using namespace migrator;
using namespace migrator::obs;

std::atomic<bool> obs::detail::LockProfilingEnabledFlag{false};

void obs::setLockProfilingEnabled(bool On) {
  detail::LockProfilingEnabledFlag.store(On, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Site registry
//===----------------------------------------------------------------------===//

namespace {

/// Head of the intrusive site list plus the mutex guarding registration.
/// Sites are pushed at static-init time from arbitrary translation units
/// and never removed; traversal reads Head with acquire so a concurrently
/// registered site is either fully visible or not seen at all.
struct SiteRegistry {
  std::mutex M;
  std::atomic<LockSite *> Head{nullptr};
};

SiteRegistry &siteRegistry() {
  // Leaked: sites may be consulted during static destruction.
  static SiteRegistry *R = new SiteRegistry();
  return *R;
}

} // namespace

LockSite::LockSite(const char *Name) : Name(Name) {
  SiteRegistry &R = siteRegistry();
  std::lock_guard<std::mutex> Lock(R.M);
  Next = R.Head.load(std::memory_order_relaxed);
  R.Head.store(this, std::memory_order_release);
}

void LockSite::reset() {
  Acquisitions.store(0, std::memory_order_relaxed);
  Contended.store(0, std::memory_order_relaxed);
  WaitNsTotal.store(0, std::memory_order_relaxed);
  HoldNsTotal.store(0, std::memory_order_relaxed);
  WaitUs.reset();
  HoldUs.reset();
}

std::vector<const LockSite *> obs::lockSites() {
  std::vector<const LockSite *> Sites;
  for (const LockSite *S =
           siteRegistry().Head.load(std::memory_order_acquire);
       S; S = S->Next)
    Sites.push_back(S);
  // Head is a LIFO stack; present sites in registration order.
  std::reverse(Sites.begin(), Sites.end());
  return Sites;
}

void obs::resetLockProfile() {
  for (const LockSite *S : lockSites())
    const_cast<LockSite *>(S)->reset();
}

//===----------------------------------------------------------------------===//
// Snapshots and reports
//===----------------------------------------------------------------------===//

std::vector<LockSiteSnapshot> obs::lockProfileSnapshot() {
  std::vector<LockSiteSnapshot> Out;
  for (const LockSite *S : lockSites()) {
    if (S->acquisitions() == 0)
      continue;
    LockSiteSnapshot Snap;
    Snap.Name = S->name();
    Snap.Acquisitions = S->acquisitions();
    Snap.Contended = S->contended();
    Snap.WaitNs = S->waitNs();
    Snap.HoldNs = S->holdNs();
    Snap.WaitUs = S->waitHistogram().snapshot();
    Snap.HoldUs = S->holdHistogram().snapshot();
    Out.push_back(std::move(Snap));
  }
  std::stable_sort(Out.begin(), Out.end(),
                   [](const LockSiteSnapshot &A, const LockSiteSnapshot &B) {
                     return A.WaitNs > B.WaitNs;
                   });
  return Out;
}

std::string obs::lockProfileReport() {
  std::vector<LockSiteSnapshot> Sites = lockProfileSnapshot();
  std::ostringstream OS;
  OS << "lock site                 acquisitions   contended     wait_ms     "
        "hold_ms  wait_p50_us  wait_p95_us\n";
  char Buf[192];
  for (const LockSiteSnapshot &S : Sites) {
    std::snprintf(Buf, sizeof(Buf),
                  "%-24s %13llu %11llu %11.3f %11.3f %12.0f %12.0f\n",
                  S.Name.c_str(),
                  static_cast<unsigned long long>(S.Acquisitions),
                  static_cast<unsigned long long>(S.Contended),
                  static_cast<double>(S.WaitNs) / 1e6,
                  static_cast<double>(S.HoldNs) / 1e6,
                  S.WaitUs.percentile(0.50), S.WaitUs.percentile(0.95));
    OS << Buf;
  }
  if (Sites.empty())
    OS << "(no lock acquisitions recorded — was profiling enabled?)\n";
  return OS.str();
}

std::string obs::lockProfileJson() {
  std::vector<LockSiteSnapshot> Sites = lockProfileSnapshot();
  std::ostringstream OS;
  OS << "[";
  for (size_t I = 0; I < Sites.size(); ++I) {
    const LockSiteSnapshot &S = Sites[I];
    if (I)
      OS << ",";
    OS << "{\"site\":" << jsonString(S.Name)
       << ",\"acquisitions\":" << S.Acquisitions
       << ",\"contended\":" << S.Contended << ",\"wait_ns\":" << S.WaitNs
       << ",\"hold_ns\":" << S.HoldNs
       << ",\"wait_us_p50\":" << jsonNumber(S.WaitUs.percentile(0.50))
       << ",\"wait_us_p95\":" << jsonNumber(S.WaitUs.percentile(0.95))
       << ",\"hold_us_p50\":" << jsonNumber(S.HoldUs.percentile(0.50))
       << ",\"hold_us_p95\":" << jsonNumber(S.HoldUs.percentile(0.95))
       << "}";
  }
  OS << "]";
  return OS.str();
}

void obs::detail::appendLockMetrics(MetricsSnapshot &S) {
  for (const LockSite *Site : lockSites()) {
    if (Site->acquisitions() == 0)
      continue;
    std::string Prefix = std::string("lock.") + Site->name();
    S.Counters[Prefix + ".acquisitions"] = Site->acquisitions();
    S.Counters[Prefix + ".contended"] = Site->contended();
    S.Counters[Prefix + ".wait_ns"] = Site->waitNs();
    S.Counters[Prefix + ".hold_ns"] = Site->holdNs();
    S.Histograms[Prefix + ".wait_us"] = Site->waitHistogram().snapshot();
    S.Histograms[Prefix + ".hold_us"] = Site->holdHistogram().snapshot();
  }
}
