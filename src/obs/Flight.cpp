//===- obs/Flight.cpp - Per-thread flight-recorder ring buffer --------------===//

#include "obs/Flight.h"

#include "obs/Json.h"

#include <algorithm>
#include <array>
#include <atomic>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <mutex>
#include <sstream>

#include <unistd.h>

using namespace migrator;
using namespace migrator::obs;

namespace {

/// One thread's ring. Heap-allocated on the owning thread's first record
/// and deliberately leaked: an exited worker's final moments are exactly
/// what a postmortem wants to see, so rings outlive their threads.
///
/// The mutex is taken for every append and for clean-path reads. Appends
/// are uncontended in steady state (one writer — the owner), so the cost
/// is an uncontended lock/unlock pair; dumps are rare. The crash path
/// reads everything without the mutex, accepting torn entries.
struct FlightRing {
  std::mutex M;
  uint32_t Tid = 0;
  uint64_t Seq = 0; ///< Total events ever recorded (ring head = Seq % Cap).
  std::array<FlightEvent, FlightRingCapacity> Slots{};

  FlightRing *Next = nullptr; ///< Intrusive registry list (never unlinked).
};

struct RingRegistry {
  std::mutex M;
  std::atomic<FlightRing *> Head{nullptr};
};

RingRegistry &ringRegistry() {
  // Leaked: rings may be dumped during static destruction (crash path).
  static RingRegistry *R = new RingRegistry();
  return *R;
}

FlightRing &myRing() {
  thread_local FlightRing *Ring = [] {
    FlightRing *R = new FlightRing();
    R->Tid = obs::detail::traceCurrentTid();
    RingRegistry &Reg = ringRegistry();
    std::lock_guard<std::mutex> Lock(Reg.M);
    R->Next = Reg.Head.load(std::memory_order_relaxed);
    Reg.Head.store(R, std::memory_order_release);
    return R;
  }();
  return *Ring;
}

/// Every registered ring, oldest registration first.
std::vector<FlightRing *> allRings() {
  std::vector<FlightRing *> Rings;
  for (FlightRing *R = ringRegistry().Head.load(std::memory_order_acquire);
       R; R = R->Next)
    Rings.push_back(R);
  std::reverse(Rings.begin(), Rings.end());
  return Rings;
}

} // namespace

void obs::setFlightRecorderEnabled(bool On) {
  obs::detail::FlightEnabledFlag.store(On, std::memory_order_relaxed);
}

void obs::detail::flightRecord(const char *Name, char Phase, uint64_t TsUs,
                               uint64_t DurUs) {
  FlightRing &R = myRing();
  std::lock_guard<std::mutex> Lock(R.M);
  FlightEvent &E = R.Slots[R.Seq % FlightRingCapacity];
  E.Name = Name;
  E.Phase = Phase;
  E.TsUs = TsUs;
  E.DurUs = DurUs;
  ++R.Seq;
}

std::vector<FlightLane> obs::flightLanes() {
  std::vector<FlightLane> Lanes;
  for (FlightRing *R : allRings()) {
    std::lock_guard<std::mutex> Lock(R->M);
    if (R->Seq == 0)
      continue;
    FlightLane L;
    L.Tid = R->Tid;
    uint64_t Kept = std::min<uint64_t>(R->Seq, FlightRingCapacity);
    L.Dropped = R->Seq - Kept;
    L.Events.reserve(Kept);
    for (uint64_t I = R->Seq - Kept; I < R->Seq; ++I)
      L.Events.push_back(R->Slots[I % FlightRingCapacity]);
    Lanes.push_back(std::move(L));
  }
  std::sort(Lanes.begin(), Lanes.end(),
            [](const FlightLane &A, const FlightLane &B) {
              return A.Tid < B.Tid;
            });
  return Lanes;
}

void obs::flightClear() {
  for (FlightRing *R : allRings()) {
    std::lock_guard<std::mutex> Lock(R->M);
    R->Seq = 0;
    R->Slots.fill(FlightEvent{});
  }
}

std::string obs::flightJson() {
  std::vector<FlightLane> Lanes = flightLanes();
  std::ostringstream OS;
  OS << "{\"flightLanes\":[";
  for (size_t L = 0; L < Lanes.size(); ++L) {
    const FlightLane &Lane = Lanes[L];
    if (L)
      OS << ",";
    OS << "{\"tid\":" << Lane.Tid << ",\"dropped\":" << Lane.Dropped
       << ",\"events\":[";
    for (size_t I = 0; I < Lane.Events.size(); ++I) {
      const FlightEvent &E = Lane.Events[I];
      if (I)
        OS << ",";
      OS << "{\"name\":" << jsonString(E.Name ? E.Name : "")
         << ",\"ph\":\"" << E.Phase << "\",\"ts\":" << E.TsUs;
      if (E.Phase == 'X')
        OS << ",\"dur\":" << E.DurUs;
      OS << "}";
    }
    OS << "]}";
  }
  OS << "]}";
  return OS.str();
}

bool obs::writeFlightJson(const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << flightJson();
  Out.flush();
  return static_cast<bool>(Out);
}

//===----------------------------------------------------------------------===//
// Crash path
//===----------------------------------------------------------------------===//

namespace {

/// write(2) wrapper that tolerates short writes and EINTR; best-effort.
void fdWrite(int Fd, const char *Buf, size_t Len) {
  while (Len) {
    ssize_t N = ::write(Fd, Buf, Len);
    if (N <= 0)
      return;
    Buf += N;
    Len -= static_cast<size_t>(N);
  }
}

void fdWriteStr(int Fd, const char *S) { fdWrite(Fd, S, std::strlen(S)); }

/// Escapes \p Name into \p Buf minimally for JSON (literals are plain
/// identifiers in practice; anything exotic is replaced with '?'). Not
/// allocation-free-fancy: just enough to keep output parseable.
void fdWriteJsonName(int Fd, const char *Name) {
  char Buf[128];
  size_t O = 0;
  Buf[O++] = '"';
  for (const char *P = Name; *P && O < sizeof(Buf) - 2; ++P) {
    unsigned char C = static_cast<unsigned char>(*P);
    Buf[O++] = (C == '"' || C == '\\' || C < 0x20) ? '?' : static_cast<char>(C);
  }
  Buf[O++] = '"';
  fdWrite(Fd, Buf, O);
}

} // namespace

void obs::flightDumpToFd(int Fd) {
  // Async-signal best-effort: no locks (a handler interrupting a holder
  // would self-deadlock), no allocation. Reads race with appenders; a torn
  // entry prints garbage values for one event, the rest stay intact.
  fdWriteStr(Fd, "{\"flightLanes\":[");
  bool FirstLane = true;
  for (FlightRing *R = ringRegistry().Head.load(std::memory_order_acquire);
       R; R = R->Next) {
    uint64_t Seq = R->Seq;
    if (Seq == 0)
      continue;
    char Buf[160];
    uint64_t Kept = Seq < FlightRingCapacity ? Seq : FlightRingCapacity;
    std::snprintf(Buf, sizeof(Buf),
                  "%s{\"tid\":%u,\"dropped\":%llu,\"events\":[",
                  FirstLane ? "" : ",", R->Tid,
                  static_cast<unsigned long long>(Seq - Kept));
    FirstLane = false;
    fdWriteStr(Fd, Buf);
    for (uint64_t I = Seq - Kept; I < Seq; ++I) {
      const FlightEvent &E = R->Slots[I % FlightRingCapacity];
      if (I != Seq - Kept)
        fdWriteStr(Fd, ",");
      fdWriteStr(Fd, "{\"name\":");
      fdWriteJsonName(Fd, E.Name ? E.Name : "");
      char Phase = (E.Phase == 'X' || E.Phase == 'i') ? E.Phase : '?';
      if (Phase == 'X')
        std::snprintf(Buf, sizeof(Buf), ",\"ph\":\"X\",\"ts\":%llu,\"dur\":%llu}",
                      static_cast<unsigned long long>(E.TsUs),
                      static_cast<unsigned long long>(E.DurUs));
      else
        std::snprintf(Buf, sizeof(Buf), ",\"ph\":\"%c\",\"ts\":%llu}", Phase,
                      static_cast<unsigned long long>(E.TsUs));
      fdWriteStr(Fd, Buf);
    }
    fdWriteStr(Fd, "]}");
  }
  fdWriteStr(Fd, "]}\n");
}
