//===- obs/Flight.h - Per-thread flight-recorder ring buffer ------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The flight recorder: a bounded per-thread ring buffer of the most recent
/// trace events, so a crashed or wedged parallel run can be diagnosed
/// postmortem — "what was each worker doing just before it died?" — without
/// paying for (or sifting through) a full trace of the whole run.
///
/// Feeding it costs nothing new at instrumentation sites: every
/// `MIGRATOR_TRACE_SCOPE` / `MIGRATOR_TRACE_INSTANT` site already records
/// into the calling thread's ring whenever `setFlightRecorderEnabled(true)`
/// is in effect (independent of full tracing; see obs/Trace.h). Each ring
/// holds the last `FlightRingCapacity` events; older ones are overwritten,
/// and the per-ring `Dropped` count says how many.
///
/// Two dump paths with different guarantees:
///
///  * `flightJson()` / `writeFlightJson()` — the clean path: takes each
///    ring's mutex, so it is race-free (TSan-clean) and exact. Used by
///    `migrate_tool --flight-dump=<file>` at end of run.
///  * `flightDumpToFd()` — the crash path: lock-free, allocation-free,
///    reads rings racily and writes with snprintf + write(2). Meant for
///    fatal-signal handlers where taking a mutex could self-deadlock; the
///    output is best-effort (a concurrently appending thread may tear one
///    entry) but every other lane's recent history survives.
///
/// Event names are `const char *` literals (the same pointers the trace
/// macros pass), so rings are fixed-size POD and the crash path can print
/// them without allocation.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_OBS_FLIGHT_H
#define MIGRATOR_OBS_FLIGHT_H

#include "obs/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace migrator {
namespace obs {

/// Events retained per thread. Sized to hold a few scheduling quanta of
/// pool activity (task + idle spans) while keeping a ring in one page.
constexpr size_t FlightRingCapacity = 256;

/// Turns flight recording on or off (off is the default). Independent of
/// startTracing()/stopTracing().
void setFlightRecorderEnabled(bool On);

/// One ring entry. `Name` aliases the site's string literal.
struct FlightEvent {
  const char *Name = nullptr;
  char Phase = 'X';   ///< 'X' complete span, 'i' instant.
  uint64_t TsUs = 0;  ///< Start, microseconds since the trace epoch.
  uint64_t DurUs = 0; ///< Span duration (0 for instants).
};

/// One thread's recent history, oldest first (clean-path copy).
struct FlightLane {
  uint32_t Tid = 0;
  uint64_t Dropped = 0; ///< Events overwritten since the last clear.
  std::vector<FlightEvent> Events;
};

/// Copies every thread's ring (including exited threads'), ordered by lane
/// id. Exact: taken under the per-ring mutexes.
std::vector<FlightLane> flightLanes();

/// Clears every ring (rings stay registered).
void flightClear();

/// Renders the rings as one JSON document:
/// {"flightLanes":[{"tid":..,"dropped":..,
///   "events":[{"name":..,"ph":"X","ts":..,"dur":..},..]},..]}.
std::string flightJson();

/// Writes flightJson() to \p Path. Returns false on I/O failure.
bool writeFlightJson(const std::string &Path);

/// Crash-path dump to a file descriptor (same JSON shape, best-effort
/// content): async-signal-safe — no locks, no allocation, snprintf into a
/// stack buffer, write(2) out.
void flightDumpToFd(int Fd);

namespace detail {
/// Appends one event to the calling thread's ring. Called from the trace
/// layer; callers have already checked flightRecorderEnabled().
void flightRecord(const char *Name, char Phase, uint64_t TsUs,
                  uint64_t DurUs);
} // namespace detail

} // namespace obs
} // namespace migrator

#endif // MIGRATOR_OBS_FLIGHT_H
