//===- obs/Trace.h - Structured tracing (Chrome trace_event) ------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tracing half of `migrator_obs`: scoped spans and instant events with
/// key/value annotations, recorded into *per-thread* streams and exported in
/// the Chrome `trace_event` JSON format, so a synthesis run can be opened
/// directly in chrome://tracing or https://ui.perfetto.dev.
///
/// Usage at an instrumentation site:
///
/// \code
///   void solveOne(...) {
///     MIGRATOR_TRACE_SCOPE("sketch.complete");           // anonymous span
///     ...
///     MIGRATOR_TRACE_SCOPE_NAMED(Span, "sketch.test");   // annotatable span
///     Span.arg("candidate", Iters).arg("mode", "mfi");
///     ...
///     MIGRATOR_TRACE_INSTANT("sketch.mfi_found");        // point event
///   }
/// \endcode
///
/// Spans nest naturally: the viewer stacks same-thread spans by containment
/// of their [ts, ts+dur) intervals. Each thread appends to its own stream
/// (own mutex, so appends never contend across workers); streams are merged
/// only at export. A thread can label its lane with `setTraceThreadName()`
/// — the pool names its workers `pool-worker-<I>` — which exports as a
/// `thread_name` metadata event so the viewer shows one labelled lane per
/// worker with its run/steal/idle timeline.
///
/// When tracing is disabled (the default) every site costs one relaxed
/// atomic load and a branch; no allocation, no clock read, no locking.
///
/// Every span/instant site also feeds the flight recorder (obs/Flight.h)
/// when *that* is enabled: a bounded per-thread ring of recent events that
/// survives until a crash dump. The two switches are independent — flight
/// recording is cheap enough to leave on for whole runs that would produce
/// unmanageably large full traces.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_OBS_TRACE_H
#define MIGRATOR_OBS_TRACE_H

#include <atomic>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace migrator {
namespace obs {

namespace detail {
extern std::atomic<bool> TracingEnabledFlag;
extern std::atomic<bool> FlightEnabledFlag;

/// This thread's stable per-process trace lane id (assigned on first use).
uint32_t traceCurrentTid();

/// Microseconds since the trace epoch (reset by startTracing()).
uint64_t traceNowUs();
} // namespace detail

/// True when trace collection is on. One relaxed load.
inline bool tracingEnabled() {
  return detail::TracingEnabledFlag.load(std::memory_order_relaxed);
}

/// True when flight recording is on (see obs/Flight.h). One relaxed load.
inline bool flightRecorderEnabled() {
  return detail::FlightEnabledFlag.load(std::memory_order_relaxed);
}

/// Clears the event streams and starts collecting.
void startTracing();

/// Stops collecting; the streams are kept for export.
void stopTracing();

/// Labels the calling thread's trace lane (exported as a Chrome
/// `thread_name` metadata event, shown as the lane title in the viewer).
/// Safe to call whether or not tracing is currently enabled.
void setTraceThreadName(const std::string &Name);

/// One recorded event (a complete span, ph == 'X', or an instant, 'i').
struct TraceEvent {
  std::string Name;
  char Phase = 'X';      ///< 'X' complete span, 'i' instant.
  uint64_t TsUs = 0;     ///< Start, microseconds since trace start.
  uint64_t DurUs = 0;    ///< Span duration (0 for instants).
  uint32_t Tid = 0;      ///< Per-process thread number.
  std::string ArgsJson;  ///< Pre-rendered `"k":v,...` pairs (may be empty).
};

/// Copies the recorded events, streams concatenated in lane order — events
/// from one thread keep their recording order (test/debug access).
std::vector<TraceEvent> traceEvents();

/// The registered lane names, as (tid, name) pairs (test/debug access).
std::vector<std::pair<uint32_t, std::string>> traceThreadNames();

/// Renders the streams as a Chrome trace_event JSON document
/// ({"traceEvents":[...],"displayTimeUnit":"ms",...}); named lanes lead
/// with `thread_name` metadata events.
std::string traceJson();

/// Writes traceJson() to \p Path. Returns false (and leaves a best-effort
/// partial file) on I/O failure.
bool writeTraceJson(const std::string &Path);

/// Records an instant event (no-op when both trace and flight are off).
void traceInstant(const char *Name);

/// RAII span. Construct via the macros below; when tracing is disabled the
/// constructor reduces to the enabled checks.
class TraceScope {
public:
  explicit TraceScope(const char *Name);
  ~TraceScope();
  TraceScope(const TraceScope &) = delete;
  TraceScope &operator=(const TraceScope &) = delete;

  /// Attaches a key/value annotation, rendered into the span's `args`
  /// object. No-ops when the span is inactive. Returns *this for chaining.
  /// Annotations go to the full trace only — flight-ring entries stay
  /// fixed-size — so `active()`/arg() answer for tracing, not flight.
  TraceScope &arg(const char *Key, const std::string &V);
  TraceScope &arg(const char *Key, const char *V);
  TraceScope &arg(const char *Key, uint64_t V);
  TraceScope &arg(const char *Key, int64_t V);
  TraceScope &arg(const char *Key, int V) {
    return arg(Key, static_cast<int64_t>(V));
  }
  TraceScope &arg(const char *Key, unsigned V) {
    return arg(Key, static_cast<uint64_t>(V));
  }
  // No size_t overload: on LP64 it is the same type as uint64_t.
  TraceScope &arg(const char *Key, double V);
  TraceScope &arg(const char *Key, bool V);

  bool active() const { return TraceOn; }

private:
  bool TraceOn;
  bool FlightOn;
  const char *Name = nullptr;
  uint64_t StartUs = 0;
  std::string ArgsJson;

  void appendArg(const char *Key, const std::string &RenderedValue);
};

} // namespace obs
} // namespace migrator

#ifndef MIGRATOR_OBS_CONCAT
#define MIGRATOR_OBS_CONCAT_IMPL(A, B) A##B
#define MIGRATOR_OBS_CONCAT(A, B) MIGRATOR_OBS_CONCAT_IMPL(A, B)
#endif

/// Opens an anonymous span covering the enclosing scope.
#define MIGRATOR_TRACE_SCOPE(NAME)                                             \
  ::migrator::obs::TraceScope MIGRATOR_OBS_CONCAT(MigratorTraceScope,          \
                                                  __LINE__)(NAME)

/// Opens a span bound to local variable \p VAR so the site can attach
/// key/value annotations: `MIGRATOR_TRACE_SCOPE_NAMED(S, "x"); S.arg(...)`.
#define MIGRATOR_TRACE_SCOPE_NAMED(VAR, NAME)                                  \
  ::migrator::obs::TraceScope VAR(NAME)

/// Records a point-in-time event.
#define MIGRATOR_TRACE_INSTANT(NAME)                                           \
  do {                                                                         \
    if (::migrator::obs::tracingEnabled() ||                                   \
        ::migrator::obs::flightRecorderEnabled())                              \
      ::migrator::obs::traceInstant(NAME);                                     \
  } while (0)

#endif // MIGRATOR_OBS_TRACE_H
