//===- obs/Metrics.h - Counters, gauges, latency histograms -------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The metrics half of `migrator_obs`: a process-wide, thread-safe registry
/// of named counters, gauges, and log-scale histograms, used to expose what
/// the synthesis pipeline spends its time and iterations on (SAT calls,
/// MFI prune hits, tuples scanned, ...).
///
/// Design constraints, in priority order:
///
///  1. *Near-zero cost when disabled.* Collection is off by default; every
///     `MIGRATOR_COUNTER_ADD` / `MIGRATOR_LATENCY_SCOPE` site guards on one
///     relaxed atomic load and a predictable branch. Hot loops (the join
///     evaluator) accumulate into stack locals and publish once per call.
///  2. *Lock-free on the hot path when enabled.* Instruments are atomics;
///     the registry mutex is taken only on first use of a name (resolved
///     once per site via a function-local static) and on snapshot/reset.
///  3. *Instrument handles are stable.* The registry never deallocates an
///     instrument, so cached references stay valid for the process lifetime.
///
/// Snapshots are plain value types supporting subtraction, so a caller can
/// bracket a region (one synthesize() run) and report only its delta even
/// though the registry is global.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_OBS_METRICS_H
#define MIGRATOR_OBS_METRICS_H

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace migrator {
namespace obs {

//===----------------------------------------------------------------------===//
// Global enable switch
//===----------------------------------------------------------------------===//

namespace detail {
extern std::atomic<bool> MetricsEnabledFlag;

/// Assigns the calling thread its counter shard slot (round-robin).
size_t nextCounterShardSlot();

/// The calling thread's counter shard, resolved once per thread. Worker
/// threads land on distinct slots (round-robin assignment), so concurrent
/// counter traffic from different workers touches different cache lines.
inline size_t counterShardIndex() {
  thread_local size_t Slot = nextCounterShardSlot();
  return Slot;
}
} // namespace detail

/// True when metric collection is on. One relaxed load: the guard every
/// instrumentation macro evaluates first.
inline bool metricsEnabled() {
  return detail::MetricsEnabledFlag.load(std::memory_order_relaxed);
}

/// Turns metric collection on or off (off is the default).
void setMetricsEnabled(bool On);

//===----------------------------------------------------------------------===//
// Instruments
//===----------------------------------------------------------------------===//

/// Monotone event counter, internally *sharded per worker thread*: add()
/// lands on the calling thread's slot (cache-line padded, round-robin
/// assigned), so concurrent workers never bounce one counter cell between
/// cores; value()/snapshot merges the shards on flush. Each shard is
/// monotone, so merged reads are monotone across snapshots too — delta
/// subtraction stays exact under concurrent flushes.
class Counter {
public:
  /// Shard count: enough slots that a reasonable worker fleet (jobs <= 16)
  /// maps 1:1, while keeping a counter's footprint at one page.
  static constexpr size_t NumShards = 16;

  void add(uint64_t N = 1) {
    Shards[detail::counterShardIndex() % NumShards].V.fetch_add(
        N, std::memory_order_relaxed);
  }
  uint64_t value() const {
    uint64_t Sum = 0;
    for (const Shard &S : Shards)
      Sum += S.V.load(std::memory_order_relaxed);
    return Sum;
  }
  void reset() {
    for (Shard &S : Shards)
      S.V.store(0, std::memory_order_relaxed);
  }

private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> V{0};
  };
  std::array<Shard, NumShards> Shards{};
};

/// Last-value gauge (e.g. the current sketch's search-space size).
class Gauge {
public:
  void set(double X) { V.store(X, std::memory_order_relaxed); }
  double value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0.0, std::memory_order_relaxed); }

private:
  std::atomic<double> V{0.0};
};

/// Snapshot of a histogram: log2 bucket counts plus count/sum, enough to
/// reconstruct approximate percentiles. Subtractable (bucket-wise), because
/// all fields are monotone while collection runs.
struct HistogramSnapshot {
  /// Bucket 0 holds {0}; bucket B in [1, 64] holds [2^(B-1), 2^B) — 65
  /// buckets, so bucketOf(UINT64_MAX) == 64 stays in range.
  static constexpr size_t NumBuckets = 65;

  uint64_t Count = 0;
  uint64_t Sum = 0;
  std::array<uint64_t, NumBuckets> Buckets{}; ///< Bucket B holds values in [2^(B-1), 2^B).

  double mean() const { return Count ? static_cast<double>(Sum) / Count : 0; }

  /// Approximate value at quantile \p Q in [0, 1]: linear interpolation of
  /// the ranked sample's position within its log2 bucket (reducing to the
  /// bucket midpoint for a single-sample bucket). Always inside the
  /// bucket's [2^(B-1), 2^B) range, so the estimate is within a factor of
  /// two of the true quantile.
  double percentile(double Q) const;

  HistogramSnapshot operator-(const HistogramSnapshot &Base) const;
};

/// Log-scale histogram of non-negative integer samples (latencies in
/// microseconds, widths, sizes). Value V lands in bucket bit_width(V):
/// bucket 0 holds {0}, bucket B >= 1 holds [2^(B-1), 2^B). 65 buckets cover
/// the full uint64 range; recording is two relaxed fetch_adds.
class Histogram {
public:
  void record(uint64_t V) {
    Counts[bucketOf(V)].fetch_add(1, std::memory_order_relaxed);
    SumV.fetch_add(V, std::memory_order_relaxed);
  }

  HistogramSnapshot snapshot() const;
  void reset();

  static size_t bucketOf(uint64_t V) {
    size_t B = 0;
    while (V) {
      ++B;
      V >>= 1;
    }
    return B;
  }

private:
  std::array<std::atomic<uint64_t>, HistogramSnapshot::NumBuckets> Counts{};
  std::atomic<uint64_t> SumV{0};
};

//===----------------------------------------------------------------------===//
// Snapshots
//===----------------------------------------------------------------------===//

/// A point-in-time copy of the registry, or the delta between two such
/// copies. Plain data: copyable, comparable against baselines, and
/// serializable as text or JSON.
struct MetricsSnapshot {
  std::map<std::string, uint64_t> Counters;
  std::map<std::string, double> Gauges;
  std::map<std::string, HistogramSnapshot> Histograms;

  bool empty() const {
    return Counters.empty() && Gauges.empty() && Histograms.empty();
  }

  /// Counter/histogram-wise `this - Base`; gauges keep this snapshot's
  /// (latest) value. Instruments absent from \p Base pass through whole.
  MetricsSnapshot operator-(const MetricsSnapshot &Base) const;

  /// Human-readable dump: one line per instrument, histograms with
  /// count/mean/p50/p90/p95/p99.
  std::string str() const;

  /// The same content as one JSON object:
  /// {"counters":{...},"gauges":{...},"histograms":{"n":{"count":..,
  /// "sum":..,"mean":..,"p50":..,"p90":..,"p95":..,"p99":..,
  /// "buckets":[..]}}}.
  std::string json() const;
};

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

/// Thread-safe name -> instrument registry. Instruments are created on
/// first lookup and never destroyed, so returned references are stable.
class MetricsRegistry {
public:
  Counter &counter(const std::string &Name);
  Gauge &gauge(const std::string &Name);
  Histogram &histogram(const std::string &Name);

  /// Copies every instrument's current value.
  MetricsSnapshot snapshot() const;

  /// Zeroes every instrument (names stay registered). Intended for tests
  /// and tools that want absolute numbers instead of deltas.
  void reset();

private:
  friend MetricsRegistry &registry();
  MetricsRegistry() = default;

  struct Impl;
  Impl &impl() const;
};

/// The process-wide registry.
MetricsRegistry &registry();

//===----------------------------------------------------------------------===//
// Scoped latency helper
//===----------------------------------------------------------------------===//

/// Records elapsed microseconds into a histogram at scope exit. Construct
/// through MIGRATOR_LATENCY_SCOPE so the disabled path is one load+branch.
class LatencyScope {
public:
  explicit LatencyScope(Histogram *H)
      : H(H), Start(H ? std::chrono::steady_clock::now()
                      : std::chrono::steady_clock::time_point()) {}
  ~LatencyScope() {
    if (H)
      H->record(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - Start)
              .count()));
  }
  LatencyScope(const LatencyScope &) = delete;
  LatencyScope &operator=(const LatencyScope &) = delete;

private:
  Histogram *H;
  std::chrono::steady_clock::time_point Start;
};

} // namespace obs
} // namespace migrator

//===----------------------------------------------------------------------===//
// Instrumentation macros
//===----------------------------------------------------------------------===//
//
// Each site caches its instrument in a function-local static (resolved on
// first enabled execution), so the steady-state enabled cost is one load,
// one branch, and one relaxed fetch_add; the disabled cost is the load and
// branch only.

#ifndef MIGRATOR_OBS_CONCAT
#define MIGRATOR_OBS_CONCAT_IMPL(A, B) A##B
#define MIGRATOR_OBS_CONCAT(A, B) MIGRATOR_OBS_CONCAT_IMPL(A, B)
#endif

/// Adds \p N to the counter named \p NAME (a string literal).
#define MIGRATOR_COUNTER_ADD(NAME, N)                                          \
  do {                                                                         \
    if (::migrator::obs::metricsEnabled()) {                                   \
      static ::migrator::obs::Counter &MigratorObsCtr =                        \
          ::migrator::obs::registry().counter(NAME);                           \
      MigratorObsCtr.add(N);                                                   \
    }                                                                          \
  } while (0)

/// Sets the gauge named \p NAME to \p V.
#define MIGRATOR_GAUGE_SET(NAME, V)                                            \
  do {                                                                         \
    if (::migrator::obs::metricsEnabled()) {                                   \
      static ::migrator::obs::Gauge &MigratorObsGauge =                        \
          ::migrator::obs::registry().gauge(NAME);                             \
      MigratorObsGauge.set(static_cast<double>(V));                            \
    }                                                                          \
  } while (0)

/// Records sample \p V into the histogram named \p NAME.
#define MIGRATOR_HISTOGRAM_RECORD(NAME, V)                                     \
  do {                                                                         \
    if (::migrator::obs::metricsEnabled()) {                                   \
      static ::migrator::obs::Histogram &MigratorObsHist =                     \
          ::migrator::obs::registry().histogram(NAME);                         \
      MigratorObsHist.record(static_cast<uint64_t>(V));                        \
    }                                                                          \
  } while (0)

/// Times the enclosing scope into the latency histogram named \p NAME
/// (microsecond samples).
#define MIGRATOR_LATENCY_SCOPE(NAME)                                           \
  ::migrator::obs::Histogram *MIGRATOR_OBS_CONCAT(MigratorObsLatH,             \
                                                  __LINE__) = nullptr;         \
  if (::migrator::obs::metricsEnabled()) {                                     \
    static ::migrator::obs::Histogram &MigratorObsLatHS =                      \
        ::migrator::obs::registry().histogram(NAME);                           \
    MIGRATOR_OBS_CONCAT(MigratorObsLatH, __LINE__) = &MigratorObsLatHS;        \
  }                                                                            \
  ::migrator::obs::LatencyScope MIGRATOR_OBS_CONCAT(MigratorObsLatScope,       \
                                                    __LINE__)(                 \
      MIGRATOR_OBS_CONCAT(MigratorObsLatH, __LINE__))

#endif // MIGRATOR_OBS_METRICS_H
