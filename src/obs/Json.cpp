//===- obs/Json.cpp - Minimal JSON emission and validation ------------------===//

#include "obs/Json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

using namespace migrator;
using namespace migrator::obs;

std::string obs::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size());
  for (unsigned char C : S) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\b':
      Out += "\\b";
      break;
    case '\f':
      Out += "\\f";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (C < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += static_cast<char>(C);
      }
    }
  }
  return Out;
}

std::string obs::jsonString(const std::string &S) {
  return "\"" + jsonEscape(S) + "\"";
}

std::string obs::jsonNumber(double V) {
  if (!std::isfinite(V))
    return "0";
  // Integral values print without an exponent or trailing zeros; everything
  // else gets enough digits to round-trip.
  if (V == static_cast<double>(static_cast<long long>(V)) &&
      std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%lld", static_cast<long long>(V));
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  return Buf;
}

//===----------------------------------------------------------------------===//
// Validator: recursive descent with a depth cap.
//===----------------------------------------------------------------------===//

namespace {

class JsonValidator {
public:
  explicit JsonValidator(const std::string &Text) : Text(Text) {}

  bool run(std::string *Error) {
    skipWs();
    bool Ok = value(0);
    if (Ok) {
      skipWs();
      if (Pos != Text.size())
        Ok = fail("trailing content after the top-level value");
    }
    if (!Ok && Error)
      *Error = Message + " at byte " + std::to_string(ErrPos);
    return Ok;
  }

private:
  const std::string &Text;
  size_t Pos = 0;
  size_t ErrPos = 0;
  std::string Message;
  static constexpr int MaxDepth = 256;

  bool fail(const char *Msg) {
    // Keep the first (deepest-relevant) failure.
    if (Message.empty()) {
      Message = Msg;
      ErrPos = Pos;
    }
    return false;
  }

  bool atEnd() const { return Pos >= Text.size(); }
  char peek() const { return Text[Pos]; }

  void skipWs() {
    while (!atEnd() && (Text[Pos] == ' ' || Text[Pos] == '\t' ||
                        Text[Pos] == '\n' || Text[Pos] == '\r'))
      ++Pos;
  }

  bool literal(const char *Lit) {
    size_t Start = Pos;
    for (const char *P = Lit; *P; ++P, ++Pos)
      if (atEnd() || Text[Pos] != *P) {
        Pos = Start;
        return fail("invalid literal");
      }
    return true;
  }

  bool string() {
    if (atEnd() || peek() != '"')
      return fail("expected string");
    ++Pos;
    while (true) {
      if (atEnd())
        return fail("unterminated string");
      unsigned char C = static_cast<unsigned char>(Text[Pos]);
      if (C == '"') {
        ++Pos;
        return true;
      }
      if (C < 0x20)
        return fail("raw control character in string");
      if (C == '\\') {
        ++Pos;
        if (atEnd())
          return fail("unterminated escape");
        char E = Text[Pos];
        if (E == 'u') {
          for (int I = 0; I < 4; ++I) {
            ++Pos;
            if (atEnd() || !std::isxdigit(static_cast<unsigned char>(Text[Pos])))
              return fail("invalid \\u escape");
          }
        } else if (!std::strchr("\"\\/bfnrt", E)) {
          return fail("invalid escape character");
        }
      }
      ++Pos;
    }
  }

  bool number() {
    size_t Start = Pos;
    if (!atEnd() && peek() == '-')
      ++Pos;
    if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected digit");
    if (peek() == '0') {
      ++Pos;
    } else {
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && peek() == '.') {
      ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("expected digit after decimal point");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++Pos;
      if (!atEnd() && (peek() == '+' || peek() == '-'))
        ++Pos;
      if (atEnd() || !std::isdigit(static_cast<unsigned char>(peek())))
        return fail("expected exponent digit");
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        ++Pos;
    }
    return Pos > Start;
  }

  bool value(int Depth) {
    if (Depth > MaxDepth)
      return fail("nesting too deep");
    if (atEnd())
      return fail("expected value");
    switch (peek()) {
    case '{':
      return object(Depth);
    case '[':
      return array(Depth);
    case '"':
      return string();
    case 't':
      return literal("true");
    case 'f':
      return literal("false");
    case 'n':
      return literal("null");
    default:
      return number();
    }
  }

  bool object(int Depth) {
    ++Pos; // '{'
    skipWs();
    if (!atEnd() && peek() == '}') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!string())
        return false;
      skipWs();
      if (atEnd() || peek() != ':')
        return fail("expected ':' in object");
      ++Pos;
      skipWs();
      if (!value(Depth + 1))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated object");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == '}') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  bool array(int Depth) {
    ++Pos; // '['
    skipWs();
    if (!atEnd() && peek() == ']') {
      ++Pos;
      return true;
    }
    while (true) {
      skipWs();
      if (!value(Depth + 1))
        return false;
      skipWs();
      if (atEnd())
        return fail("unterminated array");
      if (peek() == ',') {
        ++Pos;
        continue;
      }
      if (peek() == ']') {
        ++Pos;
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }
};

} // namespace

bool obs::validateJson(const std::string &Text, std::string *Error) {
  return JsonValidator(Text).run(Error);
}
