//===- obs/Trace.cpp - Structured tracing (Chrome trace_event) --------------===//

#include "obs/Trace.h"

#include "obs/Flight.h"
#include "obs/Json.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace migrator;
using namespace migrator::obs;

std::atomic<bool> obs::detail::TracingEnabledFlag{false};
std::atomic<bool> obs::detail::FlightEnabledFlag{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

/// One thread's event stream. Appends take only this stream's mutex, so
/// workers never contend with each other on the hot path; the sink mutex
/// is taken once per thread (registration) and at clear/export.
struct ThreadStream {
  std::mutex M;
  uint32_t Tid = 0;
  std::string ThreadName; ///< Lane label (empty until setTraceThreadName).
  std::vector<TraceEvent> Events;
};

struct TraceSink {
  std::mutex M;
  std::vector<ThreadStream *> Streams; ///< Leaked; ordered by registration.
  SteadyClock::time_point Epoch = SteadyClock::now();
};

TraceSink &sink() {
  // Leaked: spans may still be closing during static destruction.
  static TraceSink *S = new TraceSink();
  return *S;
}

ThreadStream &myStream() {
  // Leaked per thread: an exited worker's events must survive until export.
  thread_local ThreadStream *Stream = [] {
    ThreadStream *S = new ThreadStream();
    S->Tid = obs::detail::traceCurrentTid();
    TraceSink &Sink = sink();
    std::lock_guard<std::mutex> Lock(Sink.M);
    Sink.Streams.push_back(S);
    return S;
  }();
  return *Stream;
}

} // namespace

uint32_t obs::detail::traceCurrentTid() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

uint64_t obs::detail::traceNowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - sink().Epoch)
          .count());
}

void obs::startTracing() {
  TraceSink &S = sink();
  std::lock_guard<std::mutex> Lock(S.M);
  for (ThreadStream *Stream : S.Streams) {
    std::lock_guard<std::mutex> StreamLock(Stream->M);
    Stream->Events.clear();
  }
  S.Epoch = SteadyClock::now();
  detail::TracingEnabledFlag.store(true, std::memory_order_relaxed);
}

void obs::stopTracing() {
  detail::TracingEnabledFlag.store(false, std::memory_order_relaxed);
}

void obs::setTraceThreadName(const std::string &Name) {
  ThreadStream &S = myStream();
  std::lock_guard<std::mutex> Lock(S.M);
  S.ThreadName = Name;
}

std::vector<TraceEvent> obs::traceEvents() {
  std::vector<ThreadStream *> Streams;
  {
    TraceSink &S = sink();
    std::lock_guard<std::mutex> Lock(S.M);
    Streams = S.Streams;
  }
  std::vector<TraceEvent> Events;
  for (ThreadStream *Stream : Streams) {
    std::lock_guard<std::mutex> Lock(Stream->M);
    Events.insert(Events.end(), Stream->Events.begin(), Stream->Events.end());
  }
  return Events;
}

std::vector<std::pair<uint32_t, std::string>> obs::traceThreadNames() {
  std::vector<ThreadStream *> Streams;
  {
    TraceSink &S = sink();
    std::lock_guard<std::mutex> Lock(S.M);
    Streams = S.Streams;
  }
  std::vector<std::pair<uint32_t, std::string>> Names;
  for (ThreadStream *Stream : Streams) {
    std::lock_guard<std::mutex> Lock(Stream->M);
    if (!Stream->ThreadName.empty())
      Names.emplace_back(Stream->Tid, Stream->ThreadName);
  }
  return Names;
}

void obs::traceInstant(const char *Name) {
  bool TraceOn = tracingEnabled();
  bool FlightOn = flightRecorderEnabled();
  if (!TraceOn && !FlightOn)
    return;
  uint64_t TsUs = detail::traceNowUs();
  if (FlightOn)
    detail::flightRecord(Name, 'i', TsUs, 0);
  if (!TraceOn)
    return;
  TraceEvent E;
  E.Name = Name;
  E.Phase = 'i';
  E.TsUs = TsUs;
  E.Tid = detail::traceCurrentTid();
  ThreadStream &S = myStream();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Events.push_back(std::move(E));
}

//===----------------------------------------------------------------------===//
// TraceScope
//===----------------------------------------------------------------------===//

TraceScope::TraceScope(const char *Name)
    : TraceOn(tracingEnabled()), FlightOn(flightRecorderEnabled()),
      Name(Name) {
  if (TraceOn || FlightOn)
    StartUs = detail::traceNowUs();
}

TraceScope::~TraceScope() {
  if (!TraceOn && !FlightOn)
    return;
  uint64_t DurUs = detail::traceNowUs() - StartUs;
  if (FlightOn)
    detail::flightRecord(Name, 'X', StartUs, DurUs);
  if (!TraceOn)
    return;
  TraceEvent E;
  E.Name = Name;
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = DurUs;
  E.Tid = detail::traceCurrentTid();
  E.ArgsJson = std::move(ArgsJson);
  ThreadStream &S = myStream();
  std::lock_guard<std::mutex> Lock(S.M);
  S.Events.push_back(std::move(E));
}

void TraceScope::appendArg(const char *Key, const std::string &Rendered) {
  if (!ArgsJson.empty())
    ArgsJson += ",";
  ArgsJson += jsonString(Key);
  ArgsJson += ":";
  ArgsJson += Rendered;
}

TraceScope &TraceScope::arg(const char *Key, const std::string &V) {
  if (TraceOn)
    appendArg(Key, jsonString(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, const char *V) {
  if (TraceOn)
    appendArg(Key, jsonString(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, uint64_t V) {
  if (TraceOn)
    appendArg(Key, std::to_string(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, int64_t V) {
  if (TraceOn)
    appendArg(Key, std::to_string(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, double V) {
  if (TraceOn)
    appendArg(Key, jsonNumber(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, bool V) {
  if (TraceOn)
    appendArg(Key, V ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string obs::traceJson() {
  std::vector<std::pair<uint32_t, std::string>> Names = traceThreadNames();
  std::vector<TraceEvent> Events = traceEvents();
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  bool First = true;
  // Lane labels first: one thread_name metadata event per named stream.
  for (const auto &[Tid, Name] : Names) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" << Tid
       << ",\"args\":{\"name\":" << jsonString(Name) << "}}";
  }
  for (const TraceEvent &E : Events) {
    if (!First)
      OS << ",";
    First = false;
    OS << "{\"name\":" << jsonString(E.Name) << ",\"cat\":\"migrator\""
       << ",\"ph\":\"" << E.Phase << "\",\"ts\":" << E.TsUs;
    if (E.Phase == 'X')
      OS << ",\"dur\":" << E.DurUs;
    if (E.Phase == 'i')
      OS << ",\"s\":\"t\""; // Instant scope: thread.
    OS << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.ArgsJson.empty())
      OS << ",\"args\":{" << E.ArgsJson << "}";
    OS << "}";
  }
  OS << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"migrator\"}}";
  return OS.str();
}

bool obs::writeTraceJson(const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << traceJson();
  Out.flush();
  return static_cast<bool>(Out);
}
