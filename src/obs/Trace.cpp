//===- obs/Trace.cpp - Structured tracing (Chrome trace_event) --------------===//

#include "obs/Trace.h"

#include "obs/Json.h"

#include <chrono>
#include <fstream>
#include <mutex>
#include <sstream>

using namespace migrator;
using namespace migrator::obs;

std::atomic<bool> obs::detail::TracingEnabledFlag{false};

namespace {

using SteadyClock = std::chrono::steady_clock;

struct TraceBuffer {
  std::mutex M;
  std::vector<TraceEvent> Events;
  SteadyClock::time_point Epoch = SteadyClock::now();
};

TraceBuffer &buffer() {
  // Leaked: spans may still be closing during static destruction.
  static TraceBuffer *B = new TraceBuffer();
  return *B;
}

uint64_t nowUs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          SteadyClock::now() - buffer().Epoch)
          .count());
}

uint32_t currentTid() {
  static std::atomic<uint32_t> NextTid{1};
  thread_local uint32_t Tid = NextTid.fetch_add(1, std::memory_order_relaxed);
  return Tid;
}

} // namespace

void obs::startTracing() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Events.clear();
  B.Epoch = SteadyClock::now();
  detail::TracingEnabledFlag.store(true, std::memory_order_relaxed);
}

void obs::stopTracing() {
  detail::TracingEnabledFlag.store(false, std::memory_order_relaxed);
}

std::vector<TraceEvent> obs::traceEvents() {
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.M);
  return B.Events;
}

void obs::traceInstant(const char *Name) {
  if (!tracingEnabled())
    return;
  TraceEvent E;
  E.Name = Name;
  E.Phase = 'i';
  E.TsUs = nowUs();
  E.Tid = currentTid();
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Events.push_back(std::move(E));
}

//===----------------------------------------------------------------------===//
// TraceScope
//===----------------------------------------------------------------------===//

TraceScope::TraceScope(const char *Name)
    : Active(tracingEnabled()), Name(Name) {
  if (Active)
    StartUs = nowUs();
}

TraceScope::~TraceScope() {
  if (!Active)
    return;
  TraceEvent E;
  E.Name = Name;
  E.Phase = 'X';
  E.TsUs = StartUs;
  E.DurUs = nowUs() - StartUs;
  E.Tid = currentTid();
  E.ArgsJson = std::move(ArgsJson);
  TraceBuffer &B = buffer();
  std::lock_guard<std::mutex> Lock(B.M);
  B.Events.push_back(std::move(E));
}

void TraceScope::appendArg(const char *Key, const std::string &Rendered) {
  if (!ArgsJson.empty())
    ArgsJson += ",";
  ArgsJson += jsonString(Key);
  ArgsJson += ":";
  ArgsJson += Rendered;
}

TraceScope &TraceScope::arg(const char *Key, const std::string &V) {
  if (Active)
    appendArg(Key, jsonString(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, const char *V) {
  if (Active)
    appendArg(Key, jsonString(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, uint64_t V) {
  if (Active)
    appendArg(Key, std::to_string(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, int64_t V) {
  if (Active)
    appendArg(Key, std::to_string(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, double V) {
  if (Active)
    appendArg(Key, jsonNumber(V));
  return *this;
}

TraceScope &TraceScope::arg(const char *Key, bool V) {
  if (Active)
    appendArg(Key, V ? "true" : "false");
  return *this;
}

//===----------------------------------------------------------------------===//
// Export
//===----------------------------------------------------------------------===//

std::string obs::traceJson() {
  std::vector<TraceEvent> Events = traceEvents();
  std::ostringstream OS;
  OS << "{\"traceEvents\":[";
  for (size_t I = 0; I < Events.size(); ++I) {
    const TraceEvent &E = Events[I];
    if (I)
      OS << ",";
    OS << "{\"name\":" << jsonString(E.Name) << ",\"cat\":\"migrator\""
       << ",\"ph\":\"" << E.Phase << "\",\"ts\":" << E.TsUs;
    if (E.Phase == 'X')
      OS << ",\"dur\":" << E.DurUs;
    if (E.Phase == 'i')
      OS << ",\"s\":\"t\""; // Instant scope: thread.
    OS << ",\"pid\":1,\"tid\":" << E.Tid;
    if (!E.ArgsJson.empty())
      OS << ",\"args\":{" << E.ArgsJson << "}";
    OS << "}";
  }
  OS << "],\"displayTimeUnit\":\"ms\",\"otherData\":{\"tool\":\"migrator\"}}";
  return OS.str();
}

bool obs::writeTraceJson(const std::string &Path) {
  std::ofstream Out(Path, std::ios::binary);
  if (!Out)
    return false;
  Out << traceJson();
  Out.flush();
  return static_cast<bool>(Out);
}
