//===- obs/Json.h - Minimal JSON emission and validation ----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The tiny slice of JSON the observability layer needs: string escaping for
/// the exporters, and a syntactic validator used by the test suite and the
/// `trace_check` smoke tool to confirm that emitted traces and stats dumps
/// are well-formed documents. Not a general-purpose JSON library — there is
/// deliberately no DOM; consumers of the traces are chrome://tracing,
/// Perfetto, and jq.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_OBS_JSON_H
#define MIGRATOR_OBS_JSON_H

#include <string>

namespace migrator {
namespace obs {

/// Escapes \p S for inclusion inside a JSON string literal (quotes not
/// included): `"` `\` control characters and non-ASCII-safe bytes become
/// backslash escapes.
std::string jsonEscape(const std::string &S);

/// Quotes and escapes: `"` + jsonEscape(S) + `"`.
std::string jsonString(const std::string &S);

/// Renders a double as a JSON number (never NaN/Inf — those become 0).
std::string jsonNumber(double V);

/// Returns true iff \p Text is one syntactically well-formed JSON value
/// (object, array, string, number, bool, or null) with nothing but
/// whitespace after it. On failure, \p Error (when non-null) receives a
/// message with the byte offset of the first problem.
bool validateJson(const std::string &Text, std::string *Error = nullptr);

} // namespace obs
} // namespace migrator

#endif // MIGRATOR_OBS_JSON_H
