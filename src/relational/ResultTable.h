//===- relational/ResultTable.h - Query results ------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Query results and their comparison. Two database programs are equivalent
/// iff every invocation sequence yields the same query result (Sec. 3.2).
/// Results compare as multisets of rows; UIDs — the fresh keys introduced by
/// join-chain inserts — compare up to a consistent bijection, so two
/// programs that generate their surrogate keys in different orders still
/// count as producing equal results, while a UID never matches a concrete
/// value from the source program.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_RESULTTABLE_H
#define MIGRATOR_RELATIONAL_RESULTTABLE_H

#include "relational/Table.h"

#include <string>
#include <vector>

namespace migrator {

/// The value of a query: named columns plus a bag of rows.
struct ResultTable {
  std::vector<std::string> Columns;
  std::vector<Row> Rows;

  size_t getNumRows() const { return Rows.size(); }
  size_t getNumCols() const { return Columns.size(); }

  /// Renders the result for debugging / example output.
  std::string str() const;
};

/// Returns true if \p A and \p B are equal as multisets of rows, treating
/// UIDs up to bijection. Column names are ignored (the paper's equivalence
/// compares values, not target-schema column labels); arity must match.
bool resultsEquivalent(const ResultTable &A, const ResultTable &B);

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_RESULTTABLE_H
