//===- relational/ResultTable.cpp - Query results -------------------------===//

#include "relational/ResultTable.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace migrator;

std::string ResultTable::str() const {
  std::ostringstream OS;
  OS << "(";
  for (size_t I = 0; I < Columns.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Columns[I];
  }
  OS << ")\n";
  for (const Row &R : Rows) {
    OS << "  (";
    for (size_t I = 0; I < R.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << R[I].str();
    }
    OS << ")\n";
  }
  return OS.str();
}

namespace {

/// Orders values with all UIDs collapsed into one equivalence class, so both
/// results can be sorted into a UID-agnostic canonical row order before the
/// bijection scan.
int compareUidAgnostic(const Value &A, const Value &B) {
  bool AUid = A.isUid(), BUid = B.isUid();
  if (AUid && BUid)
    return 0;
  if (AUid != BUid)
    return AUid ? 1 : -1;
  if (A == B)
    return 0;
  return A < B ? -1 : 1;
}

int compareRowUidAgnostic(const Row &A, const Row &B) {
  for (size_t I = 0; I < A.size(); ++I) {
    int C = compareUidAgnostic(A[I], B[I]);
    if (C != 0)
      return C;
  }
  return 0;
}

} // namespace

bool migrator::resultsEquivalent(const ResultTable &A, const ResultTable &B) {
  if (A.getNumCols() != B.getNumCols())
    return false;
  if (A.getNumRows() != B.getNumRows())
    return false;

  std::vector<Row> RA = A.Rows, RB = B.Rows;
  auto Less = [](const Row &X, const Row &Y) {
    return compareRowUidAgnostic(X, Y) < 0;
  };
  std::stable_sort(RA.begin(), RA.end(), Less);
  std::stable_sort(RB.begin(), RB.end(), Less);

  // Scan pairwise, building a bijection between the two UID spaces.
  std::map<uint64_t, uint64_t> Fwd, Bwd;
  for (size_t R = 0; R < RA.size(); ++R) {
    const Row &X = RA[R], &Y = RB[R];
    for (size_t C = 0; C < X.size(); ++C) {
      const Value &V = X[C], &W = Y[C];
      if (V.isUid() != W.isUid())
        return false;
      if (!V.isUid()) {
        if (V != W)
          return false;
        continue;
      }
      auto [FIt, FNew] = Fwd.try_emplace(V.getUid(), W.getUid());
      if (!FNew && FIt->second != W.getUid())
        return false;
      auto [BIt, BNew] = Bwd.try_emplace(W.getUid(), V.getUid());
      if (!BNew && BIt->second != V.getUid())
        return false;
    }
  }
  return true;
}
