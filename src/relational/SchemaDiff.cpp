//===- relational/SchemaDiff.cpp - Schema change classification ---------------===//

#include "relational/SchemaDiff.h"

#include "support/StringExtras.h"

#include <algorithm>
#include <map>
#include <sstream>

using namespace migrator;

std::string SchemaChange::str() const {
  const char *Label = "";
  switch (TheKind) {
  case Kind::TableAdded:
    Label = "table added";
    break;
  case Kind::TableRemoved:
    Label = "table removed";
    break;
  case Kind::TableRenamed:
    Label = "table renamed";
    break;
  case Kind::AttrAdded:
    Label = "attribute added";
    break;
  case Kind::AttrRemoved:
    Label = "attribute removed";
    break;
  case Kind::AttrRenamed:
    Label = "attribute renamed";
    break;
  case Kind::AttrMoved:
    Label = "attribute moved";
    break;
  case Kind::AttrTypeChanged:
    Label = "attribute type changed";
    break;
  }
  return std::string(Label) + ": " + Detail;
}

namespace {

/// Sorted (name, type) multiset of a table's attributes, used to detect
/// renamed-but-otherwise-identical tables.
std::vector<std::pair<std::string, ValueType>>
attrMultiset(const TableSchema &T) {
  std::vector<std::pair<std::string, ValueType>> A;
  for (const Attribute &At : T.getAttrs())
    A.emplace_back(At.Name, At.Type);
  std::sort(A.begin(), A.end());
  return A;
}

} // namespace

std::vector<SchemaChange> migrator::diffSchemas(const Schema &Source,
                                                const Schema &Target,
                                                unsigned SimilarityAlpha) {
  std::vector<SchemaChange> Changes;

  // --- Pass 1: match tables ---
  // SrcOf maps each target table to its source counterpart (same name, or a
  // rename detected by identical attribute multisets).
  std::map<std::string, std::string> SrcOf;
  std::vector<const TableSchema *> UnmatchedSrc, UnmatchedTgt;
  for (const TableSchema &T : Target.getTables()) {
    if (Source.findTable(T.getName()))
      SrcOf[T.getName()] = T.getName();
    else
      UnmatchedTgt.push_back(&T);
  }
  for (const TableSchema &T : Source.getTables())
    if (!Target.findTable(T.getName()))
      UnmatchedSrc.push_back(&T);

  for (const TableSchema *Tgt : UnmatchedTgt) {
    const TableSchema *Best = nullptr;
    for (const TableSchema *Src : UnmatchedSrc) {
      if (SrcOf.count(Src->getName()) == 0 &&
          attrMultiset(*Src) == attrMultiset(*Tgt)) {
        Best = Src;
        break;
      }
    }
    if (Best) {
      SrcOf[Tgt->getName()] = Best->getName();
      UnmatchedSrc.erase(
          std::find(UnmatchedSrc.begin(), UnmatchedSrc.end(), Best));
      Changes.push_back({SchemaChange::Kind::TableRenamed,
                         Best->getName() + " -> " + Tgt->getName()});
    }
  }

  // --- Pass 2: attribute-level diffs over matched tables ---
  // Collect per-side leftovers, then pair them into moves and renames.
  std::vector<QualifiedAttr> SrcLeft, TgtLeft;
  for (const auto &[TgtName, SrcName] : SrcOf) {
    const TableSchema &TS = Source.getTable(SrcName);
    const TableSchema &TT = Target.getTable(TgtName);
    for (const Attribute &A : TS.getAttrs()) {
      std::optional<unsigned> Idx = TT.attrIndex(A.Name);
      if (!Idx) {
        SrcLeft.push_back({SrcName, A.Name});
        continue;
      }
      if (TT.getAttrs()[*Idx].Type != A.Type)
        Changes.push_back({SchemaChange::Kind::AttrTypeChanged,
                           SrcName + "." + A.Name + ": " +
                               typeName(A.Type) + " -> " +
                               typeName(TT.getAttrs()[*Idx].Type)});
    }
    for (const Attribute &A : TT.getAttrs())
      if (!TS.hasAttr(A.Name))
        TgtLeft.push_back({TgtName, A.Name});
  }
  for (const TableSchema *T : UnmatchedSrc) {
    Changes.push_back({SchemaChange::Kind::TableRemoved, T->getName()});
    for (const Attribute &A : T->getAttrs())
      SrcLeft.push_back({T->getName(), A.Name});
  }
  std::vector<const TableSchema *> AddedTables;
  for (const TableSchema &T : Target.getTables())
    if (!SrcOf.count(T.getName())) {
      Changes.push_back({SchemaChange::Kind::TableAdded, T.getName()});
      for (const Attribute &A : T.getAttrs())
        TgtLeft.push_back({T.getName(), A.Name});
    }

  // Moves: same attribute name and type, different table.
  for (auto It = SrcLeft.begin(); It != SrcLeft.end();) {
    ValueType SrcTy = Source.attrType(*It);
    auto Counterpart =
        std::find_if(TgtLeft.begin(), TgtLeft.end(),
                     [&](const QualifiedAttr &T) {
                       return T.Attr == It->Attr &&
                              Target.attrType(T) == SrcTy;
                     });
    if (Counterpart != TgtLeft.end()) {
      Changes.push_back({SchemaChange::Kind::AttrMoved,
                         It->str() + " -> " + Counterpart->str()});
      TgtLeft.erase(Counterpart);
      It = SrcLeft.erase(It);
    } else {
      ++It;
    }
  }

  // Renames: similar name, same type (greedy best-first by distance).
  for (auto It = SrcLeft.begin(); It != SrcLeft.end();) {
    ValueType SrcTy = Source.attrType(*It);
    unsigned BestDist = SimilarityAlpha;
    std::vector<QualifiedAttr>::iterator Best = TgtLeft.end();
    for (auto TIt = TgtLeft.begin(); TIt != TgtLeft.end(); ++TIt) {
      if (Target.attrType(*TIt) != SrcTy)
        continue;
      unsigned Dist = levenshtein(It->Attr, TIt->Attr);
      if (Dist < BestDist) {
        BestDist = Dist;
        Best = TIt;
      }
    }
    if (Best != TgtLeft.end()) {
      Changes.push_back({SchemaChange::Kind::AttrRenamed,
                         It->str() + " -> " + Best->str()});
      TgtLeft.erase(Best);
      It = SrcLeft.erase(It);
    } else {
      ++It;
    }
  }

  for (const QualifiedAttr &A : SrcLeft)
    Changes.push_back({SchemaChange::Kind::AttrRemoved, A.str()});
  for (const QualifiedAttr &A : TgtLeft)
    Changes.push_back({SchemaChange::Kind::AttrAdded, A.str()});
  return Changes;
}

std::string migrator::diffReport(const std::vector<SchemaChange> &Changes) {
  std::ostringstream OS;
  for (const SchemaChange &C : Changes)
    OS << C.str() << "\n";
  return OS.str();
}
