//===- relational/Database.cpp - Database instances -----------------------===//

#include "relational/Database.h"

#include <cassert>
#include <sstream>

using namespace migrator;

Database::Database(const Schema &S) {
  Tables.reserve(S.getNumTables());
  for (const TableSchema &T : S.getTables())
    Tables.emplace_back(T);
}

Table *Database::findTable(const std::string &Name) {
  for (Table &T : Tables)
    if (T.getSchema().getName() == Name)
      return &T;
  return nullptr;
}

const Table *Database::findTable(const std::string &Name) const {
  return const_cast<Database *>(this)->findTable(Name);
}

Table &Database::getTable(const std::string &Name) {
  Table *T = findTable(Name);
  assert(T && "table not present in database instance");
  return *T;
}

const Table &Database::getTable(const std::string &Name) const {
  return const_cast<Database *>(this)->getTable(Name);
}

void Database::clear() {
  for (Table &T : Tables)
    T.clear();
}

size_t Database::totalRows() const {
  size_t N = 0;
  for (const Table &T : Tables)
    N += T.size();
  return N;
}

std::string Database::str() const {
  std::ostringstream OS;
  for (const Table &T : Tables)
    OS << T.str();
  return OS.str();
}
