//===- relational/Database.h - Database instances ---------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A database instance maps each table of a schema to its current rows
/// (Definition A.4). Instances start empty — equivalence of database
/// programs is defined over runs from the empty instance (Sec. 3.2) — and
/// are cheap to copy, which the bounded tester exploits for snapshotting.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_DATABASE_H
#define MIGRATOR_RELATIONAL_DATABASE_H

#include "relational/Schema.h"
#include "relational/Table.h"

#include <string>
#include <vector>

namespace migrator {

/// A mutable database instance over a fixed schema.
class Database {
public:
  Database() = default;

  /// Creates an empty instance of \p S.
  explicit Database(const Schema &S);

  /// Returns the table named \p Name (which must exist).
  Table &getTable(const std::string &Name);
  const Table &getTable(const std::string &Name) const;

  /// Returns the table named \p Name, or nullptr if absent.
  Table *findTable(const std::string &Name);
  const Table *findTable(const std::string &Name) const;

  const std::vector<Table> &getTables() const { return Tables; }

  /// Empties every table.
  void clear();

  /// Total number of stored rows across all tables.
  size_t totalRows() const;

  bool operator==(const Database &O) const { return Tables == O.Tables; }

  /// Renders all table contents for debugging.
  std::string str() const;

private:
  std::vector<Table> Tables;
};

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_DATABASE_H
