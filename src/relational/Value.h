//===- relational/Value.h - Dynamically typed database values ---*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamically typed value domain of the database-program language of
/// Fig. 5. Values carry one of the paper's attribute types (int, String,
/// Binary, bool) or a UID — a fresh unique identifier generated when a
/// join-chain insert is desugared (Sec. 3.1's `u0, u1` / the overview's
/// `UID0, v4` values).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_VALUE_H
#define MIGRATOR_RELATIONAL_VALUE_H

#include <cassert>
#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace migrator {

/// Static attribute types of the schema language.
enum class ValueType { Int, String, Binary, Bool };

/// Returns the surface-syntax spelling of \p Ty ("int", "string", ...).
const char *typeName(ValueType Ty);

/// A runtime database value.
///
/// UIDs form their own kind: two UIDs compare equal iff they carry the same
/// payload, and a UID never equals a value of any other kind. Cross-program
/// result comparison treats UIDs up to bijection (see ResultTable).
class Value {
public:
  enum class Kind { Int, String, Binary, Bool, Uid };

  Value() : Rep(int64_t(0)) {}

  static Value makeInt(int64_t V) { return Value(Rep_t(std::in_place_index<0>, V)); }
  static Value makeString(std::string V) {
    return Value(Rep_t(std::in_place_index<1>, std::move(V)));
  }
  static Value makeBinary(std::string V) {
    return Value(Rep_t(std::in_place_index<2>, Blob{std::move(V)}));
  }
  static Value makeBool(bool V) { return Value(Rep_t(std::in_place_index<3>, V)); }
  static Value makeUid(uint64_t Id) {
    return Value(Rep_t(std::in_place_index<4>, Uid{Id}));
  }

  /// Builds the default seed value of static type \p Ty (used by the bounded
  /// tester's seed sets).
  static Value defaultOf(ValueType Ty);

  Kind kind() const { return static_cast<Kind>(Rep.index()); }

  bool isInt() const { return kind() == Kind::Int; }
  bool isString() const { return kind() == Kind::String; }
  bool isBinary() const { return kind() == Kind::Binary; }
  bool isBool() const { return kind() == Kind::Bool; }
  bool isUid() const { return kind() == Kind::Uid; }

  int64_t getInt() const {
    assert(isInt() && "not an int value");
    return std::get<0>(Rep);
  }
  const std::string &getString() const {
    assert(isString() && "not a string value");
    return std::get<1>(Rep);
  }
  const std::string &getBinary() const {
    assert(isBinary() && "not a binary value");
    return std::get<2>(Rep).Bytes;
  }
  bool getBool() const {
    assert(isBool() && "not a bool value");
    return std::get<3>(Rep);
  }
  uint64_t getUid() const {
    assert(isUid() && "not a UID value");
    return std::get<4>(Rep).Id;
  }

  /// Returns true if this value inhabits static type \p Ty. UIDs inhabit
  /// every type: the interpreter may store a fresh UID into any column whose
  /// value is unconstrained by the insert (Sec. 3.1).
  bool hasType(ValueType Ty) const;

  bool operator==(const Value &Other) const { return Rep == Other.Rep; }
  bool operator!=(const Value &Other) const { return !(*this == Other); }

  /// Hash consistent with operator==: equal values hash equal, and the kind
  /// tag is mixed in so same-payload values of different kinds (e.g. int 0,
  /// bool false, uid#0) do not collide systematically. This is what backs
  /// `std::hash<Value>` and the hash indexes of relational/Table.
  size_t hash() const;

  /// Total order used for canonicalizing result tables. Orders first by
  /// kind, then by payload.
  bool operator<(const Value &Other) const;

  /// Renders the value in surface syntax (`42`, `"abc"`, `b"..."`, `true`,
  /// `uid#7`).
  std::string str() const;

private:
  struct Blob {
    std::string Bytes;
    bool operator==(const Blob &O) const { return Bytes == O.Bytes; }
    bool operator<(const Blob &O) const { return Bytes < O.Bytes; }
  };
  struct Uid {
    uint64_t Id;
    bool operator==(const Uid &O) const { return Id == O.Id; }
    bool operator<(const Uid &O) const { return Id < O.Id; }
  };
  using Rep_t = std::variant<int64_t, std::string, Blob, bool, Uid>;

  explicit Value(Rep_t R) : Rep(std::move(R)) {}

  Rep_t Rep;
};

} // namespace migrator

namespace std {
template <> struct hash<migrator::Value> {
  size_t operator()(const migrator::Value &V) const noexcept {
    return V.hash();
  }
};
} // namespace std

#endif // MIGRATOR_RELATIONAL_VALUE_H
