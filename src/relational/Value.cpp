//===- relational/Value.cpp - Dynamically typed database values ----------===//

#include "relational/Value.h"

#include <sstream>

using namespace migrator;

const char *migrator::typeName(ValueType Ty) {
  switch (Ty) {
  case ValueType::Int:
    return "int";
  case ValueType::String:
    return "string";
  case ValueType::Binary:
    return "binary";
  case ValueType::Bool:
    return "bool";
  }
  assert(false && "unknown value type");
  return "<invalid>";
}

Value Value::defaultOf(ValueType Ty) {
  switch (Ty) {
  case ValueType::Int:
    return makeInt(0);
  case ValueType::String:
    return makeString("A");
  case ValueType::Binary:
    return makeBinary("b0");
  case ValueType::Bool:
    return makeBool(false);
  }
  assert(false && "unknown value type");
  return Value();
}

bool Value::hasType(ValueType Ty) const {
  switch (kind()) {
  case Kind::Int:
    return Ty == ValueType::Int;
  case Kind::String:
    return Ty == ValueType::String;
  case Kind::Binary:
    return Ty == ValueType::Binary;
  case Kind::Bool:
    return Ty == ValueType::Bool;
  case Kind::Uid:
    return true;
  }
  assert(false && "unknown value kind");
  return false;
}

namespace {

/// splitmix64 finalizer: a cheap full-avalanche mix for integral payloads.
uint64_t mix64(uint64_t Z) {
  Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
  return Z ^ (Z >> 31);
}

} // namespace

size_t Value::hash() const {
  // Seed with the kind tag so equal payloads of different kinds (int 0 /
  // bool false / uid#0, string vs. binary with the same bytes) land apart.
  uint64_t H = 0x9e3779b97f4a7c15ULL * (static_cast<uint64_t>(kind()) + 1);
  switch (kind()) {
  case Kind::Int:
    H = mix64(H ^ static_cast<uint64_t>(getInt()));
    break;
  case Kind::String:
    H = mix64(H ^ std::hash<std::string>{}(getString()));
    break;
  case Kind::Binary:
    H = mix64(H ^ std::hash<std::string>{}(getBinary()));
    break;
  case Kind::Bool:
    H = mix64(H ^ static_cast<uint64_t>(getBool()));
    break;
  case Kind::Uid:
    H = mix64(H ^ getUid());
    break;
  }
  return static_cast<size_t>(H);
}

bool Value::operator<(const Value &Other) const {
  if (Rep.index() != Other.Rep.index())
    return Rep.index() < Other.Rep.index();
  return Rep < Other.Rep;
}

std::string Value::str() const {
  std::ostringstream OS;
  switch (kind()) {
  case Kind::Int:
    OS << getInt();
    break;
  case Kind::String:
    OS << '"' << getString() << '"';
    break;
  case Kind::Binary:
    OS << "b\"" << getBinary() << '"';
    break;
  case Kind::Bool:
    OS << (getBool() ? "true" : "false");
    break;
  case Kind::Uid:
    OS << "uid#" << getUid();
    break;
  }
  return OS.str();
}
