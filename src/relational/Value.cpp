//===- relational/Value.cpp - Dynamically typed database values ----------===//

#include "relational/Value.h"

#include <sstream>

using namespace migrator;

const char *migrator::typeName(ValueType Ty) {
  switch (Ty) {
  case ValueType::Int:
    return "int";
  case ValueType::String:
    return "string";
  case ValueType::Binary:
    return "binary";
  case ValueType::Bool:
    return "bool";
  }
  assert(false && "unknown value type");
  return "<invalid>";
}

Value Value::defaultOf(ValueType Ty) {
  switch (Ty) {
  case ValueType::Int:
    return makeInt(0);
  case ValueType::String:
    return makeString("A");
  case ValueType::Binary:
    return makeBinary("b0");
  case ValueType::Bool:
    return makeBool(false);
  }
  assert(false && "unknown value type");
  return Value();
}

bool Value::hasType(ValueType Ty) const {
  switch (kind()) {
  case Kind::Int:
    return Ty == ValueType::Int;
  case Kind::String:
    return Ty == ValueType::String;
  case Kind::Binary:
    return Ty == ValueType::Binary;
  case Kind::Bool:
    return Ty == ValueType::Bool;
  case Kind::Uid:
    return true;
  }
  assert(false && "unknown value kind");
  return false;
}

bool Value::operator<(const Value &Other) const {
  if (Rep.index() != Other.Rep.index())
    return Rep.index() < Other.Rep.index();
  return Rep < Other.Rep;
}

std::string Value::str() const {
  std::ostringstream OS;
  switch (kind()) {
  case Kind::Int:
    OS << getInt();
    break;
  case Kind::String:
    OS << '"' << getString() << '"';
    break;
  case Kind::Binary:
    OS << "b\"" << getBinary() << '"';
    break;
  case Kind::Bool:
    OS << (getBool() ? "true" : "false");
    break;
  case Kind::Uid:
    OS << "uid#" << getUid();
    break;
  }
  return OS.str();
}
