//===- relational/Table.cpp - Bag-semantics tables ------------------------===//

#include "relational/Table.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace migrator;

Table::Table() : Idx(std::make_unique<IndexState>()) {}

Table::Table(TableSchema Schema)
    : Schema(std::move(Schema)), Idx(std::make_unique<IndexState>()) {}

Table::Table(const Table &O) : Schema(O.Schema), Rows(O.Rows) {
  // Carry built indexes across the copy (the tester snapshots databases at
  // every search node; rebuilding from scratch would defeat warmth). The
  // source may be a shared const snapshot with a lazy build in flight, so
  // read its index state under its mutex.
  Idx = std::make_unique<IndexState>();
  std::lock_guard<std::mutex> Lock(O.Idx->M);
  Idx->Cols.resize(O.Idx->Cols.size());
  for (size_t C = 0; C < O.Idx->Cols.size(); ++C)
    if (O.Idx->Cols[C])
      Idx->Cols[C] = std::make_unique<ColumnIndex>(*O.Idx->Cols[C]);
}

Table &Table::operator=(const Table &O) {
  if (this != &O) {
    Table Tmp(O);
    *this = std::move(Tmp);
  }
  return *this;
}

Table::Table(Table &&O) noexcept
    : Schema(std::move(O.Schema)), Rows(std::move(O.Rows)),
      Idx(std::move(O.Idx)) {}

Table &Table::operator=(Table &&O) noexcept {
  if (this != &O) {
    Schema = std::move(O.Schema);
    Rows = std::move(O.Rows);
    Idx = std::move(O.Idx);
  }
  return *this;
}

void Table::insertRow(Row R) {
  assert(R.size() == Schema.getNumAttrs() &&
         "row arity does not match table schema");
  Rows.push_back(std::move(R));
  indexInsertedRow();
}

void Table::indexInsertedRow() {
  assert(Idx && "operation on a moved-from table");
  if (Idx->Cols.empty())
    return;
  const Row &R = Rows.back();
  size_t NewIdx = Rows.size() - 1;
  uint64_t Ops = 0;
  for (size_t C = 0; C < Idx->Cols.size(); ++C)
    if (ColumnIndex *CI = Idx->Cols[C].get()) {
      // NewIdx is the largest row index, so appending keeps buckets sorted.
      CI->Buckets[R[C]].push_back(NewIdx);
      ++Ops;
    }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

const Row &Table::getRow(size_t Index) const {
  assert(Index < Rows.size() && "row index out of range");
  return Rows[Index];
}

void Table::eraseRows(const std::vector<size_t> &Indices) {
  if (Indices.empty())
    return;
  std::vector<size_t> Sorted(Indices);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  assert(Sorted.back() < Rows.size() && "row index out of range");

  // Old index -> new index, or SIZE_MAX for erased rows. The remap is
  // monotone, so applying it to a sorted bucket keeps the bucket sorted.
  std::vector<size_t> Remap(Rows.size());
  std::vector<Row> Kept;
  Kept.reserve(Rows.size() - Sorted.size());
  size_t Next = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (Next < Sorted.size() && Sorted[Next] == I) {
      ++Next;
      Remap[I] = SIZE_MAX;
      continue;
    }
    Remap[I] = Kept.size();
    Kept.push_back(std::move(Rows[I]));
  }
  Rows = std::move(Kept);

  assert(Idx && "operation on a moved-from table");
  uint64_t Ops = 0;
  for (std::unique_ptr<ColumnIndex> &CI : Idx->Cols) {
    if (!CI)
      continue;
    ++Ops;
    for (auto It = CI->Buckets.begin(); It != CI->Buckets.end();) {
      std::vector<size_t> &B = It->second;
      size_t Out = 0;
      for (size_t R : B)
        if (Remap[R] != SIZE_MAX)
          B[Out++] = Remap[R];
      B.resize(Out);
      It = B.empty() ? CI->Buckets.erase(It) : std::next(It);
    }
  }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

void Table::setValue(size_t RowIdx, unsigned AttrIdx, Value V) {
  assert(RowIdx < Rows.size() && "row index out of range");
  assert(AttrIdx < Schema.getNumAttrs() && "attribute index out of range");
  assert(Idx && "operation on a moved-from table");
  if (AttrIdx < Idx->Cols.size() && Idx->Cols[AttrIdx]) {
    ColumnIndex &CI = *Idx->Cols[AttrIdx];
    const Value &Old = Rows[RowIdx][AttrIdx];
    if (Old != V) {
      auto OldIt = CI.Buckets.find(Old);
      assert(OldIt != CI.Buckets.end() && "indexed value missing a bucket");
      std::vector<size_t> &OldB = OldIt->second;
      OldB.erase(std::lower_bound(OldB.begin(), OldB.end(), RowIdx));
      if (OldB.empty())
        CI.Buckets.erase(OldIt);
      std::vector<size_t> &NewB = CI.Buckets[V];
      NewB.insert(std::lower_bound(NewB.begin(), NewB.end(), RowIdx), RowIdx);
      MIGRATOR_COUNTER_ADD("eval.index_maint_ops", 1);
    }
  }
  Rows[RowIdx][AttrIdx] = std::move(V);
}

void Table::clear() {
  Rows.clear();
  assert(Idx && "operation on a moved-from table");
  Idx->Cols.clear();
}

const std::vector<size_t> *Table::probeIndex(unsigned Col,
                                             const Value &V) const {
  assert(Col < Schema.getNumAttrs() && "column index out of range");
  assert(Idx && "operation on a moved-from table");
  // Serialize against concurrent lazy builds on shared const snapshots. The
  // returned bucket stays valid after unlock: buckets of other values or
  // columns never alias it, and mutation requires exclusive ownership.
  std::lock_guard<std::mutex> Lock(Idx->M);
  if (Idx->Cols.size() <= Col)
    Idx->Cols.resize(Schema.getNumAttrs());
  std::unique_ptr<ColumnIndex> &CI = Idx->Cols[Col];
  if (!CI) {
    CI = std::make_unique<ColumnIndex>();
    CI->Buckets.reserve(Rows.size());
    for (size_t R = 0; R < Rows.size(); ++R)
      CI->Buckets[Rows[R][Col]].push_back(R);
    MIGRATOR_COUNTER_ADD("eval.index_builds", 1);
  }
  auto It = CI->Buckets.find(V);
  return It == CI->Buckets.end() ? nullptr : &It->second;
}

bool Table::hasIndex(unsigned Col) const {
  assert(Idx && "operation on a moved-from table");
  std::lock_guard<std::mutex> Lock(Idx->M);
  return Col < Idx->Cols.size() && Idx->Cols[Col] != nullptr;
}

std::string Table::str() const {
  std::ostringstream OS;
  OS << Schema.getName() << " [";
  for (size_t I = 0; I < Schema.getNumAttrs(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Schema.getAttrs()[I].Name;
  }
  OS << "]\n";
  for (const Row &R : Rows) {
    OS << "  (";
    for (size_t I = 0; I < R.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << R[I].str();
    }
    OS << ")\n";
  }
  return OS.str();
}
