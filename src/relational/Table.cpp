//===- relational/Table.cpp - Bag-semantics tables ------------------------===//

#include "relational/Table.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace migrator;

void Table::insertRow(Row R) {
  assert(R.size() == Schema.getNumAttrs() &&
         "row arity does not match table schema");
  Rows.push_back(std::move(R));
}

const Row &Table::getRow(size_t Index) const {
  assert(Index < Rows.size() && "row index out of range");
  return Rows[Index];
}

void Table::eraseRows(const std::vector<size_t> &Indices) {
  if (Indices.empty())
    return;
  std::vector<size_t> Sorted(Indices);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  assert(Sorted.back() < Rows.size() && "row index out of range");

  std::vector<Row> Kept;
  Kept.reserve(Rows.size() - Sorted.size());
  size_t Next = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (Next < Sorted.size() && Sorted[Next] == I) {
      ++Next;
      continue;
    }
    Kept.push_back(std::move(Rows[I]));
  }
  Rows = std::move(Kept);
}

void Table::setValue(size_t RowIdx, unsigned AttrIdx, Value V) {
  assert(RowIdx < Rows.size() && "row index out of range");
  assert(AttrIdx < Schema.getNumAttrs() && "attribute index out of range");
  Rows[RowIdx][AttrIdx] = std::move(V);
}

std::string Table::str() const {
  std::ostringstream OS;
  OS << Schema.getName() << " [";
  for (size_t I = 0; I < Schema.getNumAttrs(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Schema.getAttrs()[I].Name;
  }
  OS << "]\n";
  for (const Row &R : Rows) {
    OS << "  (";
    for (size_t I = 0; I < R.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << R[I].str();
    }
    OS << ")\n";
  }
  return OS.str();
}
