//===- relational/Table.cpp - Bag-semantics tables ------------------------===//

#include "relational/Table.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string_view>

using namespace migrator;

//===----------------------------------------------------------------------===//
// COW-storage switch (mirrors evalIndexEnabled in eval/Plan.cpp)
//===----------------------------------------------------------------------===//

namespace {

/// -1 = consult the environment, 0 = forced off, 1 = forced on.
std::atomic<int> CowEnabledOverride{-1};

bool envDisablesCow() {
  static const bool Disabled = [] {
    const char *E = std::getenv("MIGRATOR_NO_COW");
    return E && *E && std::string_view(E) != "0";
  }();
  return Disabled;
}

} // namespace

bool migrator::tableCowEnabled() {
  int O = CowEnabledOverride.load(std::memory_order_relaxed);
  if (O >= 0)
    return O != 0;
  return !envDisablesCow();
}

void migrator::setTableCowEnabled(bool On) {
  CowEnabledOverride.store(On ? 1 : 0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

Table::Table()
    : Schema(std::make_shared<const TableSchema>()),
      P(std::make_shared<Payload>()) {}

Table::Table(TableSchema S)
    : Schema(std::make_shared<const TableSchema>(std::move(S))),
      P(std::make_shared<Payload>()) {}

Table::ColumnSlot *Table::ensureSlots(const Payload &Pl, size_t NumCols) {
  // shared_ptr does not propagate const, but this helper is also reached
  // through the const probe path — the slot array is index-cache state, not
  // observable table content.
  IndexState &Idx = const_cast<IndexState &>(Pl.Idx);
  ColumnSlot *S = Idx.Slots.load(std::memory_order_acquire);
  if (S)
    return S;
  std::call_once(Idx.SlotsOnce, [&] {
    Idx.OwnedSlots = std::make_unique<ColumnSlot[]>(NumCols);
    Idx.NumSlots = NumCols; // Plain write: release-published via Slots.
    Idx.Slots.store(Idx.OwnedSlots.get(), std::memory_order_release);
  });
  return Idx.Slots.load(std::memory_order_acquire);
}

std::shared_ptr<Table::Payload> Table::clonePayload(const Payload &O) {
  auto N = std::make_shared<Payload>();
  // Rows are only written under exclusive ownership, so a shared source's
  // rows are stable; no lock needed for them.
  N->Rows = O.Rows;
  // Built indexes carry over warm (rebuilding at every tester snapshot
  // would defeat warmth). Lock-free: each column's published pointer is
  // read with acquire semantics; a lazy build still in flight on a shared
  // snapshot has not published yet, so its column is simply left cold in
  // the clone (an index is a cache — first probe there rebuilds it). This
  // is what keeps COW detach contention-free: a worker cloning a hot
  // shared snapshot never waits on another worker's index build.
  const ColumnSlot *Src = O.Idx.Slots.load(std::memory_order_acquire);
  if (Src) {
    const size_t NumCols = O.Idx.NumSlots;
    // The clone is private here, so its slot array can be installed
    // directly; ensureSlots' null-check makes the bypassed once_flag safe.
    N->Idx.OwnedSlots = std::make_unique<ColumnSlot[]>(NumCols);
    N->Idx.NumSlots = NumCols;
    unsigned Built = 0;
    for (size_t C = 0; C < NumCols; ++C)
      if (const ColumnIndex *CI = Src[C].Ptr.load(std::memory_order_acquire)) {
        ColumnSlot &Dst = N->Idx.OwnedSlots[C];
        Dst.Owned = std::make_unique<ColumnIndex>(*CI);
        Dst.Ptr.store(Dst.Owned.get(), std::memory_order_relaxed);
        ++Built;
      }
    N->Idx.NumBuilt.store(Built, std::memory_order_relaxed);
    N->Idx.Slots.store(N->Idx.OwnedSlots.get(), std::memory_order_release);
  }
  return N;
}

Table::Table(const Table &O) : Schema(O.Schema) {
  assert(O.P && "copy of a moved-from table");
  if (tableCowEnabled()) {
    P = O.P;
    MIGRATOR_COUNTER_ADD("table.cow_shares", 1);
  } else {
    P = clonePayload(*O.P);
  }
}

Table &Table::operator=(const Table &O) {
  if (this != &O) {
    Table Tmp(O);
    *this = std::move(Tmp);
  }
  return *this;
}

Table::Table(Table &&O) noexcept
    : Schema(std::move(O.Schema)), P(std::move(O.P)) {}

Table &Table::operator=(Table &&O) noexcept {
  if (this != &O) {
    Schema = std::move(O.Schema);
    P = std::move(O.P);
  }
  return *this;
}

void Table::detach() {
  assert(P && "operation on a moved-from table");
  // use_count() is race-free here: a payload only gains owners through a
  // Table that references it, and mutation requires exclusive ownership of
  // this Table — so a count of 1 cannot concurrently grow.
  if (P.use_count() > 1) {
    P = clonePayload(*P);
    MIGRATOR_COUNTER_ADD("table.cow_clones", 1);
  }
}

void Table::insertRow(Row R) {
  assert(R.size() == Schema->getNumAttrs() &&
         "row arity does not match table schema");
  detach();
  P->Rows.push_back(std::move(R));
  indexInsertedRow();
}

void Table::indexInsertedRow() {
  IndexState &Idx = P->Idx;
  if (Idx.NumBuilt.load(std::memory_order_relaxed) == 0)
    return;
  ColumnSlot *Slots = Idx.Slots.load(std::memory_order_acquire);
  assert(Slots && "built indexes but no slot array");
  const Row &R = P->Rows.back();
  size_t NewIdx = P->Rows.size() - 1;
  uint64_t Ops = 0;
  for (size_t C = 0; C < Idx.NumSlots; ++C)
    if (ColumnIndex *CI = Slots[C].Ptr.load(std::memory_order_relaxed)) {
      // NewIdx is the largest row index, so appending keeps buckets sorted.
      CI->Buckets[R[C]].push_back(NewIdx);
      ++Ops;
    }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

const Row &Table::getRow(size_t Index) const {
  assert(Index < P->Rows.size() && "row index out of range");
  return P->Rows[Index];
}

void Table::eraseRows(const std::vector<size_t> &Indices) {
  if (Indices.empty())
    return;
  detach();
  std::vector<Row> &Rows = P->Rows;
  std::vector<size_t> Sorted(Indices);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  assert(Sorted.back() < Rows.size() && "row index out of range");

  // Old index -> new index, or SIZE_MAX for erased rows. The remap is
  // monotone, so applying it to a sorted bucket keeps the bucket sorted.
  std::vector<size_t> Remap(Rows.size());
  std::vector<Row> Kept;
  Kept.reserve(Rows.size() - Sorted.size());
  size_t Next = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (Next < Sorted.size() && Sorted[Next] == I) {
      ++Next;
      Remap[I] = SIZE_MAX;
      continue;
    }
    Remap[I] = Kept.size();
    Kept.push_back(std::move(Rows[I]));
  }
  Rows = std::move(Kept);

  IndexState &Idx = P->Idx;
  if (Idx.NumBuilt.load(std::memory_order_relaxed) == 0)
    return;
  ColumnSlot *Slots = Idx.Slots.load(std::memory_order_acquire);
  assert(Slots && "built indexes but no slot array");
  uint64_t Ops = 0;
  for (size_t C = 0; C < Idx.NumSlots; ++C) {
    ColumnIndex *CI = Slots[C].Ptr.load(std::memory_order_relaxed);
    if (!CI)
      continue;
    ++Ops;
    for (auto It = CI->Buckets.begin(); It != CI->Buckets.end();) {
      std::vector<size_t> &B = It->second;
      size_t Out = 0;
      for (size_t R : B)
        if (Remap[R] != SIZE_MAX)
          B[Out++] = Remap[R];
      B.resize(Out);
      It = B.empty() ? CI->Buckets.erase(It) : std::next(It);
    }
  }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

void Table::setValue(size_t RowIdx, unsigned AttrIdx, Value V) {
  assert(RowIdx < P->Rows.size() && "row index out of range");
  assert(AttrIdx < Schema->getNumAttrs() && "attribute index out of range");
  detach();
  IndexState &Idx = P->Idx;
  if (Idx.NumBuilt.load(std::memory_order_relaxed) != 0) {
    ColumnSlot *Slots = Idx.Slots.load(std::memory_order_acquire);
    assert(Slots && "built indexes but no slot array");
    ColumnIndex *CI = AttrIdx < Idx.NumSlots
                          ? Slots[AttrIdx].Ptr.load(std::memory_order_relaxed)
                          : nullptr;
    if (CI) {
      const Value &Old = P->Rows[RowIdx][AttrIdx];
      if (Old != V) {
        auto OldIt = CI->Buckets.find(Old);
        assert(OldIt != CI->Buckets.end() && "indexed value missing a bucket");
        std::vector<size_t> &OldB = OldIt->second;
        OldB.erase(std::lower_bound(OldB.begin(), OldB.end(), RowIdx));
        if (OldB.empty())
          CI->Buckets.erase(OldIt);
        std::vector<size_t> &NewB = CI->Buckets[V];
        NewB.insert(std::lower_bound(NewB.begin(), NewB.end(), RowIdx),
                    RowIdx);
        MIGRATOR_COUNTER_ADD("eval.index_maint_ops", 1);
      }
    }
  }
  P->Rows[RowIdx][AttrIdx] = std::move(V);
}

void Table::clear() {
  assert(P && "operation on a moved-from table");
  // A fresh payload beats detach()+clear: no point cloning rows and indexes
  // that are about to be dropped. (With build-once index slots this is also
  // the exclusive-ownership path — a used once_flag cannot be re-armed.)
  P = std::make_shared<Payload>();
}

const std::vector<size_t> *Table::probeIndex(unsigned Col,
                                             const Value &V) const {
  assert(Col < Schema->getNumAttrs() && "column index out of range");
  assert(P && "operation on a moved-from table");
  ColumnSlot *Slots = ensureSlots(*P, Schema->getNumAttrs());
  ColumnSlot &Slot = Slots[Col];
  // Fast path: a built column is one acquire load — no lock, however many
  // workers probe the same shared snapshot. Cold columns build exactly once
  // under the slot's once_flag; concurrent first probers wait for the build
  // (they need its data), everyone after reads the published pointer.
  const ColumnIndex *CI = Slot.Ptr.load(std::memory_order_acquire);
  if (!CI) {
    std::call_once(Slot.Once, [&] {
      auto N = std::make_unique<ColumnIndex>();
      N->Buckets.reserve(P->Rows.size());
      for (size_t R = 0; R < P->Rows.size(); ++R)
        N->Buckets[P->Rows[R][Col]].push_back(R);
      MIGRATOR_COUNTER_ADD("eval.index_builds", 1);
      IndexState &Idx = P->Idx;
      Slot.Owned = std::move(N);
      Idx.NumBuilt.fetch_add(1, std::memory_order_relaxed);
      Slot.Ptr.store(Slot.Owned.get(), std::memory_order_release);
    });
    CI = Slot.Ptr.load(std::memory_order_acquire);
  }
  auto It = CI->Buckets.find(V);
  return It == CI->Buckets.end() ? nullptr : &It->second;
}

bool Table::hasIndex(unsigned Col) const {
  assert(P && "operation on a moved-from table");
  const ColumnSlot *Slots = P->Idx.Slots.load(std::memory_order_acquire);
  return Slots && Col < P->Idx.NumSlots &&
         Slots[Col].Ptr.load(std::memory_order_acquire) != nullptr;
}

std::string Table::str() const {
  std::ostringstream OS;
  OS << Schema->getName() << " [";
  for (size_t I = 0; I < Schema->getNumAttrs(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Schema->getAttrs()[I].Name;
  }
  OS << "]\n";
  for (const Row &R : P->Rows) {
    OS << "  (";
    for (size_t I = 0; I < R.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << R[I].str();
    }
    OS << ")\n";
  }
  return OS.str();
}
