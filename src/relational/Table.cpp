//===- relational/Table.cpp - Bag-semantics tables ------------------------===//

#include "relational/Table.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <cstdlib>
#include <sstream>
#include <string_view>

using namespace migrator;

obs::LockSite &migrator::detail::tableIndexLockSite() {
  static obs::LockSite Site("table.index");
  return Site;
}

//===----------------------------------------------------------------------===//
// COW-storage switch (mirrors evalIndexEnabled in eval/Plan.cpp)
//===----------------------------------------------------------------------===//

namespace {

/// -1 = consult the environment, 0 = forced off, 1 = forced on.
std::atomic<int> CowEnabledOverride{-1};

bool envDisablesCow() {
  static const bool Disabled = [] {
    const char *E = std::getenv("MIGRATOR_NO_COW");
    return E && *E && std::string_view(E) != "0";
  }();
  return Disabled;
}

} // namespace

bool migrator::tableCowEnabled() {
  int O = CowEnabledOverride.load(std::memory_order_relaxed);
  if (O >= 0)
    return O != 0;
  return !envDisablesCow();
}

void migrator::setTableCowEnabled(bool On) {
  CowEnabledOverride.store(On ? 1 : 0, std::memory_order_relaxed);
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

Table::Table()
    : Schema(std::make_shared<const TableSchema>()),
      P(std::make_shared<Payload>()) {}

Table::Table(TableSchema S)
    : Schema(std::make_shared<const TableSchema>(std::move(S))),
      P(std::make_shared<Payload>()) {}

std::shared_ptr<Table::Payload> Table::clonePayload(const Payload &O) {
  auto N = std::make_shared<Payload>();
  // Rows are only written under exclusive ownership, so a shared source's
  // rows are stable; no lock needed for them.
  N->Rows = O.Rows;
  // Built indexes carry over warm (rebuilding at every tester snapshot would
  // defeat warmth). The source may be a shared const snapshot with a lazy
  // build in flight, so read its index state under its mutex.
  std::lock_guard<obs::ProfiledMutex> Lock(O.Idx.M);
  N->Idx.Cols.resize(O.Idx.Cols.size());
  for (size_t C = 0; C < O.Idx.Cols.size(); ++C)
    if (O.Idx.Cols[C])
      N->Idx.Cols[C] = std::make_unique<ColumnIndex>(*O.Idx.Cols[C]);
  return N;
}

Table::Table(const Table &O) : Schema(O.Schema) {
  assert(O.P && "copy of a moved-from table");
  if (tableCowEnabled()) {
    P = O.P;
    MIGRATOR_COUNTER_ADD("table.cow_shares", 1);
  } else {
    P = clonePayload(*O.P);
  }
}

Table &Table::operator=(const Table &O) {
  if (this != &O) {
    Table Tmp(O);
    *this = std::move(Tmp);
  }
  return *this;
}

Table::Table(Table &&O) noexcept
    : Schema(std::move(O.Schema)), P(std::move(O.P)) {}

Table &Table::operator=(Table &&O) noexcept {
  if (this != &O) {
    Schema = std::move(O.Schema);
    P = std::move(O.P);
  }
  return *this;
}

void Table::detach() {
  assert(P && "operation on a moved-from table");
  // use_count() is race-free here: a payload only gains owners through a
  // Table that references it, and mutation requires exclusive ownership of
  // this Table — so a count of 1 cannot concurrently grow.
  if (P.use_count() > 1) {
    P = clonePayload(*P);
    MIGRATOR_COUNTER_ADD("table.cow_clones", 1);
  }
}

void Table::insertRow(Row R) {
  assert(R.size() == Schema->getNumAttrs() &&
         "row arity does not match table schema");
  detach();
  P->Rows.push_back(std::move(R));
  indexInsertedRow();
}

void Table::indexInsertedRow() {
  if (P->Idx.Cols.empty())
    return;
  const Row &R = P->Rows.back();
  size_t NewIdx = P->Rows.size() - 1;
  uint64_t Ops = 0;
  for (size_t C = 0; C < P->Idx.Cols.size(); ++C)
    if (ColumnIndex *CI = P->Idx.Cols[C].get()) {
      // NewIdx is the largest row index, so appending keeps buckets sorted.
      CI->Buckets[R[C]].push_back(NewIdx);
      ++Ops;
    }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

const Row &Table::getRow(size_t Index) const {
  assert(Index < P->Rows.size() && "row index out of range");
  return P->Rows[Index];
}

void Table::eraseRows(const std::vector<size_t> &Indices) {
  if (Indices.empty())
    return;
  detach();
  std::vector<Row> &Rows = P->Rows;
  std::vector<size_t> Sorted(Indices);
  std::sort(Sorted.begin(), Sorted.end());
  Sorted.erase(std::unique(Sorted.begin(), Sorted.end()), Sorted.end());
  assert(Sorted.back() < Rows.size() && "row index out of range");

  // Old index -> new index, or SIZE_MAX for erased rows. The remap is
  // monotone, so applying it to a sorted bucket keeps the bucket sorted.
  std::vector<size_t> Remap(Rows.size());
  std::vector<Row> Kept;
  Kept.reserve(Rows.size() - Sorted.size());
  size_t Next = 0;
  for (size_t I = 0; I < Rows.size(); ++I) {
    if (Next < Sorted.size() && Sorted[Next] == I) {
      ++Next;
      Remap[I] = SIZE_MAX;
      continue;
    }
    Remap[I] = Kept.size();
    Kept.push_back(std::move(Rows[I]));
  }
  Rows = std::move(Kept);

  uint64_t Ops = 0;
  for (std::unique_ptr<ColumnIndex> &CI : P->Idx.Cols) {
    if (!CI)
      continue;
    ++Ops;
    for (auto It = CI->Buckets.begin(); It != CI->Buckets.end();) {
      std::vector<size_t> &B = It->second;
      size_t Out = 0;
      for (size_t R : B)
        if (Remap[R] != SIZE_MAX)
          B[Out++] = Remap[R];
      B.resize(Out);
      It = B.empty() ? CI->Buckets.erase(It) : std::next(It);
    }
  }
  MIGRATOR_COUNTER_ADD("eval.index_maint_ops", Ops);
}

void Table::setValue(size_t RowIdx, unsigned AttrIdx, Value V) {
  assert(RowIdx < P->Rows.size() && "row index out of range");
  assert(AttrIdx < Schema->getNumAttrs() && "attribute index out of range");
  detach();
  if (AttrIdx < P->Idx.Cols.size() && P->Idx.Cols[AttrIdx]) {
    ColumnIndex &CI = *P->Idx.Cols[AttrIdx];
    const Value &Old = P->Rows[RowIdx][AttrIdx];
    if (Old != V) {
      auto OldIt = CI.Buckets.find(Old);
      assert(OldIt != CI.Buckets.end() && "indexed value missing a bucket");
      std::vector<size_t> &OldB = OldIt->second;
      OldB.erase(std::lower_bound(OldB.begin(), OldB.end(), RowIdx));
      if (OldB.empty())
        CI.Buckets.erase(OldIt);
      std::vector<size_t> &NewB = CI.Buckets[V];
      NewB.insert(std::lower_bound(NewB.begin(), NewB.end(), RowIdx), RowIdx);
      MIGRATOR_COUNTER_ADD("eval.index_maint_ops", 1);
    }
  }
  P->Rows[RowIdx][AttrIdx] = std::move(V);
}

void Table::clear() {
  assert(P && "operation on a moved-from table");
  // A fresh payload beats detach()+clear: no point cloning rows and indexes
  // that are about to be dropped.
  if (P.use_count() > 1) {
    P = std::make_shared<Payload>();
    return;
  }
  P->Rows.clear();
  P->Idx.Cols.clear();
}

const std::vector<size_t> *Table::probeIndex(unsigned Col,
                                             const Value &V) const {
  assert(Col < Schema->getNumAttrs() && "column index out of range");
  assert(P && "operation on a moved-from table");
  // Serialize against concurrent lazy builds on shared const snapshots. The
  // returned bucket stays valid after unlock: buckets of other values or
  // columns never alias it, and mutation requires exclusive ownership (and,
  // under COW, detaches from the shared payload first).
  IndexState &Idx = P->Idx;
  std::lock_guard<obs::ProfiledMutex> Lock(Idx.M);
  if (Idx.Cols.size() <= Col)
    Idx.Cols.resize(Schema->getNumAttrs());
  std::unique_ptr<ColumnIndex> &CI = Idx.Cols[Col];
  if (!CI) {
    CI = std::make_unique<ColumnIndex>();
    CI->Buckets.reserve(P->Rows.size());
    for (size_t R = 0; R < P->Rows.size(); ++R)
      CI->Buckets[P->Rows[R][Col]].push_back(R);
    MIGRATOR_COUNTER_ADD("eval.index_builds", 1);
  }
  auto It = CI->Buckets.find(V);
  return It == CI->Buckets.end() ? nullptr : &It->second;
}

bool Table::hasIndex(unsigned Col) const {
  assert(P && "operation on a moved-from table");
  std::lock_guard<obs::ProfiledMutex> Lock(P->Idx.M);
  return Col < P->Idx.Cols.size() && P->Idx.Cols[Col] != nullptr;
}

std::string Table::str() const {
  std::ostringstream OS;
  OS << Schema->getName() << " [";
  for (size_t I = 0; I < Schema->getNumAttrs(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Schema->getAttrs()[I].Name;
  }
  OS << "]\n";
  for (const Row &R : P->Rows) {
    OS << "  (";
    for (size_t I = 0; I < R.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << R[I].str();
    }
    OS << ")\n";
  }
  return OS.str();
}
