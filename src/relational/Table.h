//===- relational/Table.h - Bag-semantics tables -----------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory tables with bag (multiset) semantics: a table is an ordered
/// list of rows, each row a vector of values aligned with the table schema's
/// attribute order. Deletions remove specific row occurrences (the paper's
/// delete-over-join semantics needs tuple provenance, which row indices
/// provide).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_TABLE_H
#define MIGRATOR_RELATIONAL_TABLE_H

#include "relational/Schema.h"
#include "relational/Value.h"

#include <vector>

namespace migrator {

/// One stored tuple.
using Row = std::vector<Value>;

/// A table instance: the rows currently stored under one table schema.
class Table {
public:
  Table() = default;
  explicit Table(TableSchema Schema) : Schema(std::move(Schema)) {}

  const TableSchema &getSchema() const { return Schema; }
  const std::vector<Row> &getRows() const { return Rows; }
  size_t size() const { return Rows.size(); }
  bool empty() const { return Rows.empty(); }

  /// Appends \p R, which must have one value per schema attribute.
  void insertRow(Row R);

  /// Returns row \p Index (bounds-checked by assertion).
  const Row &getRow(size_t Index) const;

  /// Removes the row occurrences named by \p Indices. Duplicate indices are
  /// tolerated; indices refer to pre-deletion positions.
  void eraseRows(const std::vector<size_t> &Indices);

  /// Sets attribute \p AttrIdx of row \p RowIdx to \p V.
  void setValue(size_t RowIdx, unsigned AttrIdx, Value V);

  /// Removes all rows.
  void clear() { Rows.clear(); }

  bool operator==(const Table &O) const {
    return Schema.getName() == O.Schema.getName() && Rows == O.Rows;
  }

  /// Renders the table contents for debugging.
  std::string str() const;

private:
  TableSchema Schema;
  std::vector<Row> Rows;
};

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_TABLE_H
