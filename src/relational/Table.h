//===- relational/Table.h - Bag-semantics tables -----------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory tables with bag (multiset) semantics: a table is an ordered
/// list of rows, each row a vector of values aligned with the table schema's
/// attribute order. Deletions remove specific row occurrences (the paper's
/// delete-over-join semantics needs tuple provenance, which row indices
/// provide).
///
/// Tables additionally carry lazily-built per-column hash indexes
/// (Value -> sorted row indices), the storage half of the indexed join
/// engine (see docs/PERFORMANCE.md, "Join engine"). An index is built the
/// first time a column is probed and is then maintained *incrementally* by
/// insertRow/eraseRows/setValue rather than invalidated wholesale, so the
/// bounded tester's long insert/delete/update prefixes keep indexes warm.
///
/// *Copy-on-write storage* (docs/PERFORMANCE.md, "State engine"): rows and
/// indexes live in a shared payload, so copying a table — the bounded
/// tester snapshots whole databases at every search node — is two refcount
/// bumps, and built indexes stay warm across snapshots for free. The first
/// mutation of a table whose payload is shared clones the payload
/// (`table.cow_clones`); exclusive tables mutate in place exactly as
/// before. `setTableCowEnabled(false)` (or MIGRATOR_NO_COW=1) restores
/// eager deep copies — the differential-testing oracle for the sharing
/// machinery, mirroring the join engine's MIGRATOR_NO_INDEX switch.
///
/// Thread safety: mutating methods require exclusive ownership of the
/// *table object* (as before) — COW cloning keeps concurrently-held sibling
/// snapshots untouched. probeIndex() is safe to call concurrently on a
/// shared *const* table: the lazy build is serialized on a per-payload
/// mutex, and once built the buckets of a const table never move. This
/// matters because the source-result cache shares immutable database
/// snapshots across portfolio workers.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_TABLE_H
#define MIGRATOR_RELATIONAL_TABLE_H

#include "obs/LockProfile.h"
#include "relational/Schema.h"
#include "relational/Value.h"

#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace migrator {

namespace detail {
/// The shared `table.index` lock site. One site for every payload's index
/// mutex: payloads are constructed hundreds of thousands of times per run,
/// so per-payload site registration (a map lookup or list push) would
/// serialize exactly the path COW exists to keep cheap — a function-local
/// static reference costs one pointer store per payload instead.
obs::LockSite &tableIndexLockSite();
} // namespace detail

/// Returns true when copy-on-write table storage is active (the default).
/// Disabled by `migrate_tool --no-cow`, the MIGRATOR_NO_COW=1 environment
/// variable, or setTableCowEnabled(false); when off, every table copy
/// eagerly deep-copies rows and indexes — the differential-testing oracle
/// for the sharing machinery.
bool tableCowEnabled();

/// Overrides the COW-storage switch for this process (tests, tools).
void setTableCowEnabled(bool On);

/// One stored tuple.
using Row = std::vector<Value>;

/// A table instance: the rows currently stored under one table schema.
class Table {
public:
  Table();
  explicit Table(TableSchema Schema);

  Table(const Table &O);
  Table &operator=(const Table &O);
  Table(Table &&O) noexcept;
  Table &operator=(Table &&O) noexcept;

  const TableSchema &getSchema() const { return *Schema; }
  const std::vector<Row> &getRows() const { return P->Rows; }
  size_t size() const { return P->Rows.size(); }
  bool empty() const { return P->Rows.empty(); }

  /// Appends \p R, which must have one value per schema attribute.
  void insertRow(Row R);

  /// Returns row \p Index (bounds-checked by assertion).
  const Row &getRow(size_t Index) const;

  /// Removes the row occurrences named by \p Indices. Duplicate indices are
  /// tolerated; indices refer to pre-deletion positions.
  void eraseRows(const std::vector<size_t> &Indices);

  /// Sets attribute \p AttrIdx of row \p RowIdx to \p V.
  void setValue(size_t RowIdx, unsigned AttrIdx, Value V);

  /// Removes all rows.
  void clear();

  /// Looks up the rows whose column \p Col holds \p V through the column's
  /// hash index, building the index on first use. Returns the ascending row
  /// indices, or null when no row matches. The returned vector stays valid
  /// until this table is next mutated or every table sharing its payload is
  /// destroyed.
  const std::vector<size_t> *probeIndex(unsigned Col, const Value &V) const;

  /// True if column \p Col currently has a built hash index (test hook).
  /// Under COW, an index built through any snapshot sharing this payload
  /// counts — index state is a cache, not observable table content.
  bool hasIndex(unsigned Col) const;

  /// True if \p O shares this table's row/index payload (test hook).
  bool sharesStorageWith(const Table &O) const { return P && P == O.P; }

  bool operator==(const Table &O) const {
    return Schema->getName() == O.Schema->getName() &&
           (P == O.P || P->Rows == O.P->Rows);
  }

  /// Renders the table contents for debugging.
  std::string str() const;

private:
  /// Hash index over one column: value -> ascending row indices. Bucket
  /// vectors are kept sorted so index-probe joins enumerate candidate rows
  /// in exactly the order a full scan would.
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<size_t>> Buckets;
  };

  /// The lazily-built indexes plus the mutex serializing concurrent lazy
  /// builds on shared const snapshots.
  struct IndexState {
    mutable obs::ProfiledMutex M{detail::tableIndexLockSite()};
    std::vector<std::unique_ptr<ColumnIndex>> Cols; ///< One slot per attr.
  };

  /// The copy-on-write payload: everything a snapshot shares. Mutators
  /// detach() first, so a payload reachable from more than one table is
  /// only ever written by the (mutex-serialized) lazy index build.
  struct Payload {
    std::vector<Row> Rows;
    IndexState Idx;
  };

  /// Deep-copies \p O (rows and built indexes), serializing against a lazy
  /// index build in flight on a shared snapshot.
  static std::shared_ptr<Payload> clonePayload(const Payload &O);

  /// Ensures exclusive payload ownership before a mutation, cloning the
  /// payload when it is shared.
  void detach();

  /// Rebuilds nothing — registers \p R (already appended at index
  /// Rows.size()-1) in every built column index.
  void indexInsertedRow();

  /// Shared with every copy: the schema of one table never changes.
  std::shared_ptr<const TableSchema> Schema;
  std::shared_ptr<Payload> P; ///< Null only after move-from.
};

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_TABLE_H
