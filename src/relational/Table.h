//===- relational/Table.h - Bag-semantics tables -----------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// In-memory tables with bag (multiset) semantics: a table is an ordered
/// list of rows, each row a vector of values aligned with the table schema's
/// attribute order. Deletions remove specific row occurrences (the paper's
/// delete-over-join semantics needs tuple provenance, which row indices
/// provide).
///
/// Tables additionally carry lazily-built per-column hash indexes
/// (Value -> sorted row indices), the storage half of the indexed join
/// engine (see docs/PERFORMANCE.md, "Join engine"). An index is built the
/// first time a column is probed and is then maintained *incrementally* by
/// insertRow/eraseRows/setValue rather than invalidated wholesale, so the
/// bounded tester's long insert/delete/update prefixes keep indexes warm.
///
/// *Copy-on-write storage* (docs/PERFORMANCE.md, "State engine"): rows and
/// indexes live in a shared payload, so copying a table — the bounded
/// tester snapshots whole databases at every search node — is two refcount
/// bumps, and built indexes stay warm across snapshots for free. The first
/// mutation of a table whose payload is shared clones the payload
/// (`table.cow_clones`); exclusive tables mutate in place exactly as
/// before. `setTableCowEnabled(false)` (or MIGRATOR_NO_COW=1) restores
/// eager deep copies — the differential-testing oracle for the sharing
/// machinery, mirroring the join engine's MIGRATOR_NO_INDEX switch.
///
/// Thread safety: mutating methods require exclusive ownership of the
/// *table object* (as before) — COW cloning keeps concurrently-held sibling
/// snapshots untouched. probeIndex() is safe to call concurrently on a
/// shared *const* table, and — new in PR 8 — is *lock-free after the
/// build*: each column's index is built exactly once under a per-column
/// `std::once_flag` and then published through an acquire/release atomic
/// pointer, so steady-state probes (the overwhelming majority — the
/// source-result cache shares hot immutable snapshots across every
/// portfolio worker) take no lock at all. Before PR 8 every probe
/// serialized on a per-payload mutex (`table.index`, a fixture of jobs>1
/// contention profiles); that mutex no longer exists. COW detach is
/// equally contention-free: cloning a payload reads each column's
/// published pointer instead of locking — an index whose build is still in
/// flight is simply not copied (it is a cache; the clone rebuilds on first
/// probe), so a hot shared snapshot never funnels workers through a lock.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_TABLE_H
#define MIGRATOR_RELATIONAL_TABLE_H

#include "relational/Schema.h"
#include "relational/Value.h"

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace migrator {

/// Returns true when copy-on-write table storage is active (the default).
/// Disabled by `migrate_tool --no-cow`, the MIGRATOR_NO_COW=1 environment
/// variable, or setTableCowEnabled(false); when off, every table copy
/// eagerly deep-copies rows and indexes — the differential-testing oracle
/// for the sharing machinery.
bool tableCowEnabled();

/// Overrides the COW-storage switch for this process (tests, tools).
void setTableCowEnabled(bool On);

/// One stored tuple.
using Row = std::vector<Value>;

/// A table instance: the rows currently stored under one table schema.
class Table {
public:
  Table();
  explicit Table(TableSchema Schema);

  Table(const Table &O);
  Table &operator=(const Table &O);
  Table(Table &&O) noexcept;
  Table &operator=(Table &&O) noexcept;

  const TableSchema &getSchema() const { return *Schema; }
  const std::vector<Row> &getRows() const { return P->Rows; }
  size_t size() const { return P->Rows.size(); }
  bool empty() const { return P->Rows.empty(); }

  /// Appends \p R, which must have one value per schema attribute.
  void insertRow(Row R);

  /// Returns row \p Index (bounds-checked by assertion).
  const Row &getRow(size_t Index) const;

  /// Removes the row occurrences named by \p Indices. Duplicate indices are
  /// tolerated; indices refer to pre-deletion positions.
  void eraseRows(const std::vector<size_t> &Indices);

  /// Sets attribute \p AttrIdx of row \p RowIdx to \p V.
  void setValue(size_t RowIdx, unsigned AttrIdx, Value V);

  /// Removes all rows.
  void clear();

  /// Looks up the rows whose column \p Col holds \p V through the column's
  /// hash index, building the index on first use. Returns the ascending row
  /// indices, or null when no row matches. The returned vector stays valid
  /// until this table is next mutated or every table sharing its payload is
  /// destroyed.
  const std::vector<size_t> *probeIndex(unsigned Col, const Value &V) const;

  /// True if column \p Col currently has a built hash index (test hook).
  /// Under COW, an index built through any snapshot sharing this payload
  /// counts — index state is a cache, not observable table content.
  bool hasIndex(unsigned Col) const;

  /// True if \p O shares this table's row/index payload (test hook).
  bool sharesStorageWith(const Table &O) const { return P && P == O.P; }

  bool operator==(const Table &O) const {
    return Schema->getName() == O.Schema->getName() &&
           (P == O.P || P->Rows == O.P->Rows);
  }

  /// Renders the table contents for debugging.
  std::string str() const;

private:
  /// Hash index over one column: value -> ascending row indices. Bucket
  /// vectors are kept sorted so index-probe joins enumerate candidate rows
  /// in exactly the order a full scan would.
  struct ColumnIndex {
    std::unordered_map<Value, std::vector<size_t>> Buckets;
  };

  /// One column's build-once slot: the index is constructed into Owned
  /// under Once and then release-published through Ptr, so concurrent
  /// probes of a built column are plain acquire loads with no lock.
  struct ColumnSlot {
    std::once_flag Once;
    std::atomic<ColumnIndex *> Ptr{nullptr};
    std::unique_ptr<ColumnIndex> Owned;
  };

  /// The lazily-built indexes. The slot array itself is allocated on the
  /// first probe of any column (build-once, like the columns) so payload
  /// construction — the COW hot path, hundreds of thousands per run —
  /// costs no per-index allocation.
  struct IndexState {
    std::once_flag SlotsOnce;
    std::atomic<ColumnSlot *> Slots{nullptr};
    std::unique_ptr<ColumnSlot[]> OwnedSlots;
    size_t NumSlots = 0; ///< Written before Slots is published; read after.
    /// Built-column count: lets mutators skip index maintenance with one
    /// relaxed load when nothing was ever built (the common case).
    std::atomic<unsigned> NumBuilt{0};
  };

  /// The copy-on-write payload: everything a snapshot shares. Mutators
  /// detach() first, so a payload reachable from more than one table is
  /// only ever written by the once-serialized lazy index builds.
  struct Payload {
    std::vector<Row> Rows;
    IndexState Idx;
  };

  /// Deep-copies \p O (rows and *published* indexes). Lock-free: an index
  /// build in flight on a shared snapshot is not waited for — its column
  /// stays cold in the clone and rebuilds on first probe there.
  static std::shared_ptr<Payload> clonePayload(const Payload &O);

  /// Ensures exclusive payload ownership before a mutation, cloning the
  /// payload when it is shared.
  void detach();

  /// Returns the payload's slot array, allocating (once) for \p NumCols
  /// columns if this is the first index activity on the payload.
  static ColumnSlot *ensureSlots(const Payload &P, size_t NumCols);

  /// Rebuilds nothing — registers \p R (already appended at index
  /// Rows.size()-1) in every built column index.
  void indexInsertedRow();

  /// Shared with every copy: the schema of one table never changes.
  std::shared_ptr<const TableSchema> Schema;
  std::shared_ptr<Payload> P; ///< Null only after move-from.
};

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_TABLE_H
