//===- relational/Schema.h - Relational schemas ------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Relational schemas: named tables with typed attributes. Schemas are the
/// primary inputs of the synthesis problem — the source schema S the program
/// is written against and the target schema S' it must be migrated to.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_SCHEMA_H
#define MIGRATOR_RELATIONAL_SCHEMA_H

#include "relational/Value.h"

#include <optional>
#include <string>
#include <tuple>
#include <vector>

namespace migrator {

/// A typed attribute (column) of a table.
struct Attribute {
  std::string Name;
  ValueType Type;

  bool operator==(const Attribute &O) const {
    return Name == O.Name && Type == O.Type;
  }
};

/// A fully qualified attribute reference `Table.Attr`.
///
/// The value-correspondence layer and the sketch language always refer to
/// attributes by qualified name, since the same attribute name may occur in
/// several tables (e.g. `PicId` in the overview example).
struct QualifiedAttr {
  std::string Table;
  std::string Attr;

  bool operator==(const QualifiedAttr &O) const {
    return Table == O.Table && Attr == O.Attr;
  }
  bool operator!=(const QualifiedAttr &O) const { return !(*this == O); }
  bool operator<(const QualifiedAttr &O) const {
    return std::tie(Table, Attr) < std::tie(O.Table, O.Attr);
  }

  /// Renders as `Table.Attr`.
  std::string str() const { return Table + "." + Attr; }
};

/// The schema of a single table.
class TableSchema {
public:
  TableSchema() = default;
  TableSchema(std::string Name, std::vector<Attribute> Attrs)
      : Name(std::move(Name)), Attrs(std::move(Attrs)) {}

  const std::string &getName() const { return Name; }
  const std::vector<Attribute> &getAttrs() const { return Attrs; }
  size_t getNumAttrs() const { return Attrs.size(); }

  /// Returns the index of attribute \p AttrName, or nullopt if absent.
  std::optional<unsigned> attrIndex(const std::string &AttrName) const;

  /// Returns true if the table declares attribute \p AttrName.
  bool hasAttr(const std::string &AttrName) const {
    return attrIndex(AttrName).has_value();
  }

  /// Returns the static type of attribute \p AttrName (which must exist).
  ValueType attrType(const std::string &AttrName) const;

private:
  std::string Name;
  std::vector<Attribute> Attrs;
};

/// A database schema: an ordered collection of table schemas.
class Schema {
public:
  Schema() = default;
  explicit Schema(std::string Name) : Name(std::move(Name)) {}

  const std::string &getName() const { return Name; }
  void setName(std::string N) { Name = std::move(N); }

  /// Appends a table; table names must be unique.
  void addTable(TableSchema Table);

  const std::vector<TableSchema> &getTables() const { return Tables; }
  size_t getNumTables() const { return Tables.size(); }

  /// Returns the table schema named \p TableName, or nullptr if absent.
  const TableSchema *findTable(const std::string &TableName) const;

  /// Returns the table schema named \p TableName (which must exist).
  const TableSchema &getTable(const std::string &TableName) const;

  /// Returns true if \p A names an existing table/attribute pair.
  bool hasAttr(const QualifiedAttr &A) const;

  /// Returns the static type of \p A (which must exist).
  ValueType attrType(const QualifiedAttr &A) const;

  /// Returns every qualified attribute of the schema, in declaration order.
  std::vector<QualifiedAttr> allAttrs() const;

  /// Total number of attributes across all tables (the "Attrs" column of
  /// Table 1).
  size_t getNumAttrs() const;

  /// Returns the names of all tables declaring an attribute named
  /// \p AttrName with type \p Ty.
  std::vector<std::string> tablesWithAttr(const std::string &AttrName,
                                          ValueType Ty) const;

  /// Renders the schema in surface syntax.
  std::string str() const;

private:
  std::string Name;
  std::vector<TableSchema> Tables;
};

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_SCHEMA_H
