//===- relational/SchemaDiff.h - Schema change classification -----*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural comparison of two schemas: which tables and attributes were
/// added, removed, or (heuristically, by name similarity) renamed — the
/// kinds of changes Table 1's Description column names. Purely structural
/// and advisory: the synthesis pipeline never depends on it, but
/// migrate_tool uses it to describe the refactoring it is about to bridge.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_RELATIONAL_SCHEMADIFF_H
#define MIGRATOR_RELATIONAL_SCHEMADIFF_H

#include "relational/Schema.h"

#include <string>
#include <vector>

namespace migrator {

/// One detected schema change.
struct SchemaChange {
  enum class Kind {
    TableAdded,
    TableRemoved,
    TableRenamed,   ///< Same attribute multiset, different name.
    AttrAdded,
    AttrRemoved,
    AttrRenamed,    ///< Same table and type, similar name.
    AttrMoved,      ///< Same name and type in a different table.
    AttrTypeChanged,
  };

  Kind TheKind;
  std::string Detail; ///< Human-readable, e.g. "Instructor.IPic -> Picture.Pic".

  std::string str() const;
};

/// Computes the change list between \p Source and \p Target.
/// \p SimilarityAlpha is the Levenshtein cutoff used for rename detection.
std::vector<SchemaChange> diffSchemas(const Schema &Source,
                                      const Schema &Target,
                                      unsigned SimilarityAlpha = 10);

/// Renders one change per line.
std::string diffReport(const std::vector<SchemaChange> &Changes);

} // namespace migrator

#endif // MIGRATOR_RELATIONAL_SCHEMADIFF_H
