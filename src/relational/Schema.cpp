//===- relational/Schema.cpp - Relational schemas -------------------------===//

#include "relational/Schema.h"

#include <cassert>
#include <sstream>

using namespace migrator;

std::optional<unsigned> TableSchema::attrIndex(const std::string &AttrName) const {
  for (unsigned I = 0, E = static_cast<unsigned>(Attrs.size()); I != E; ++I)
    if (Attrs[I].Name == AttrName)
      return I;
  return std::nullopt;
}

ValueType TableSchema::attrType(const std::string &AttrName) const {
  std::optional<unsigned> Idx = attrIndex(AttrName);
  assert(Idx && "attribute not declared in table");
  return Attrs[*Idx].Type;
}

void Schema::addTable(TableSchema Table) {
  assert(!findTable(Table.getName()) && "duplicate table name in schema");
  Tables.push_back(std::move(Table));
}

const TableSchema *Schema::findTable(const std::string &TableName) const {
  for (const TableSchema &T : Tables)
    if (T.getName() == TableName)
      return &T;
  return nullptr;
}

const TableSchema &Schema::getTable(const std::string &TableName) const {
  const TableSchema *T = findTable(TableName);
  assert(T && "table not declared in schema");
  return *T;
}

bool Schema::hasAttr(const QualifiedAttr &A) const {
  const TableSchema *T = findTable(A.Table);
  return T && T->hasAttr(A.Attr);
}

ValueType Schema::attrType(const QualifiedAttr &A) const {
  return getTable(A.Table).attrType(A.Attr);
}

std::vector<QualifiedAttr> Schema::allAttrs() const {
  std::vector<QualifiedAttr> Result;
  for (const TableSchema &T : Tables)
    for (const Attribute &A : T.getAttrs())
      Result.push_back({T.getName(), A.Name});
  return Result;
}

size_t Schema::getNumAttrs() const {
  size_t N = 0;
  for (const TableSchema &T : Tables)
    N += T.getNumAttrs();
  return N;
}

std::vector<std::string> Schema::tablesWithAttr(const std::string &AttrName,
                                                ValueType Ty) const {
  std::vector<std::string> Result;
  for (const TableSchema &T : Tables) {
    std::optional<unsigned> Idx = T.attrIndex(AttrName);
    if (Idx && T.getAttrs()[*Idx].Type == Ty)
      Result.push_back(T.getName());
  }
  return Result;
}

std::string Schema::str() const {
  std::ostringstream OS;
  OS << "schema " << (Name.empty() ? "S" : Name) << " {\n";
  for (const TableSchema &T : Tables) {
    OS << "  table " << T.getName() << "(";
    const std::vector<Attribute> &As = T.getAttrs();
    for (size_t I = 0; I < As.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << As[I].Name << ": " << typeName(As[I].Type);
    }
    OS << ")\n";
  }
  OS << "}\n";
  return OS.str();
}
