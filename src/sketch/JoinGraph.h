//===- sketch/JoinGraph.h - Join graph and Steiner covers ---------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The join graph over a schema (Sec. 5, "Sketch generation"): nodes are
/// tables, and an edge connects two tables that can be natural-joined, i.e.
/// share an attribute with the same name and type. Candidate target join
/// chains for a source chain are the *Steiner covers* of the tables holding
/// the mapped attributes: connected vertex sets containing all terminals in
/// which every non-terminal table lies on a join path between terminals
/// (the vertex sets of Steiner trees).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SKETCH_JOINGRAPH_H
#define MIGRATOR_SKETCH_JOINGRAPH_H

#include "ast/JoinChain.h"
#include "relational/Schema.h"

#include <string>
#include <vector>

namespace migrator {

/// The natural-join graph of a schema.
class JoinGraph {
public:
  explicit JoinGraph(const Schema &S);

  const Schema &getSchema() const { return S; }

  /// Returns true if tables \p A and \p B share an attribute (name + type).
  bool joinable(const std::string &A, const std::string &B) const;

  /// Groups \p Terminals into connected components of the *whole* join
  /// graph (intermediate tables count as connections). Unknown tables are
  /// dropped. Used to decompose inserts over disconnected targets into the
  /// paper's Ω1 ; ... ; Ωn composition.
  std::vector<std::vector<std::string>>
  componentsOf(const std::vector<std::string> &Terminals) const;

  /// Enumerates Steiner covers of \p Terminals: connected vertex sets
  /// X ⊇ Terminals with at most \p Slack extra tables such that iteratively
  /// pruning non-terminal tables of induced degree <= 1 leaves X intact.
  /// Results are ordered by size, then by schema declaration order, and each
  /// cover lists its tables in schema declaration order. Terminals that
  /// name unknown tables yield an empty result.
  std::vector<std::vector<std::string>>
  steinerCovers(const std::vector<std::string> &Terminals,
                unsigned Slack) const;

private:
  const Schema &S;
  std::vector<std::string> Tables;
  std::vector<std::vector<bool>> Adj;

  int indexOf(const std::string &Table) const;
  bool isValidCover(const std::vector<int> &Cover,
                    const std::vector<bool> &IsTerminal) const;
};

} // namespace migrator

#endif // MIGRATOR_SKETCH_JOINGRAPH_H
