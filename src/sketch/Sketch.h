//===- sketch/Sketch.h - Program sketches with holes --------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Program sketches — the language of Fig. 6. A sketch mirrors the source
/// program's structure, but attribute occurrences, join chains, and delete
/// target lists are *holes*: unknowns ranging over finite domains.
///
/// Following the paper's own instantiation (the Fig. 3 sketch whose search
/// space is 3·15·3·3·3·15·3·3 = 164,025), holes are flat and independent:
///
///  * every statement carries one *chain hole* whose domain is the set of
///    candidate target join chains (Steiner-tree covers);
///  * every attribute occurrence carries an *attribute hole* whose domain
///    is Φ(a);
///  * every delete statement carries a *table-list hole* whose domain is
///    the non-empty subsets of the union of candidate-chain tables.
///
/// The `?` choice construct of Fig. 6 is represented by these selector
/// holes. Cross-hole well-formedness (a chosen attribute must live in the
/// chosen chain; a delete target list must be a subset of the chosen chain)
/// is recorded as *incompatibility pairs*, which the SAT encoder turns into
/// binary clauses.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SKETCH_SKETCH_H
#define MIGRATOR_SKETCH_SKETCH_H

#include "ast/Program.h"

#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

namespace migrator {

/// One unknown of a sketch with its finite domain. Exactly one of the
/// domain vectors is populated, matching the hole's kind.
struct Hole {
  enum class Kind { Attr, Chain, ChainSet, TableList };

  Kind TheKind;
  std::string Func; ///< Name of the owning function (used for MFI blocking).

  std::vector<QualifiedAttr> Attrs;
  std::vector<JoinChain> Chains;
  /// ChainSet holes (insert statements): each alternative is a *sequence*
  /// of chains, realizing the paper's update composition Ω1 ; ... ; Ωn
  /// (Fig. 9/10). Connected refactorings use singleton sets; splits into
  /// unlinked tables need genuine multi-chain alternatives.
  std::vector<std::vector<JoinChain>> ChainSets;
  std::vector<std::vector<std::string>> TableLists;

  size_t size() const {
    switch (TheKind) {
    case Kind::Attr:
      return Attrs.size();
    case Kind::Chain:
      return Chains.size();
    case Kind::ChainSet:
      return ChainSets.size();
    case Kind::TableList:
      return TableLists.size();
    }
    return 0;
  }

  /// Renders the domain as `??{alt1, alt2, ...}`.
  std::string domainStr() const;
};

/// A hole standing for one attribute occurrence.
struct SketchAttr {
  unsigned HoleId = 0;
};

class SketchPred;
using SketchPredPtr = std::unique_ptr<SketchPred>;
struct SketchQuery;

/// Predicate sketches mirror the Pred hierarchy with holes at attribute
/// positions.
class SketchPred {
public:
  enum class Kind { Cmp, In, And, Or, Not };

  virtual ~SketchPred();
  Kind getKind() const { return TheKind; }

protected:
  explicit SketchPred(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

class SketchCmp : public SketchPred {
public:
  using Rhs_t = std::variant<SketchAttr, Operand>;

  SketchCmp(SketchAttr Lhs, CmpOp Op, Rhs_t Rhs)
      : SketchPred(Kind::Cmp), Lhs(Lhs), Op(Op), Rhs(std::move(Rhs)) {}

  SketchAttr Lhs;
  CmpOp Op;
  Rhs_t Rhs;

  static bool classof(const SketchPred *P) { return P->getKind() == Kind::Cmp; }
};

class SketchIn : public SketchPred {
public:
  SketchIn(SketchAttr Lhs, std::unique_ptr<SketchQuery> Sub);
  ~SketchIn() override;

  SketchAttr Lhs;
  std::unique_ptr<SketchQuery> Sub;

  static bool classof(const SketchPred *P) { return P->getKind() == Kind::In; }
};

class SketchBinary : public SketchPred {
public:
  SketchBinary(Kind K, SketchPredPtr L, SketchPredPtr R)
      : SketchPred(K), L(std::move(L)), R(std::move(R)) {}

  SketchPredPtr L, R;

  static bool classof(const SketchPred *P) {
    return P->getKind() == Kind::And || P->getKind() == Kind::Or;
  }
};

class SketchNot : public SketchPred {
public:
  explicit SketchNot(SketchPredPtr Sub)
      : SketchPred(Kind::Not), Sub(std::move(Sub)) {}

  SketchPredPtr Sub;

  static bool classof(const SketchPred *P) { return P->getKind() == Kind::Not; }
};

/// Sketch of a (normalized) query: projection holes over a chain hole with
/// an optional predicate sketch.
struct SketchQuery {
  std::vector<SketchAttr> Proj;
  unsigned ChainHole = 0;
  SketchPredPtr Where; ///< Null when unfiltered.
};

/// Sketch of an insert statement. The chain-set hole selects the sequence
/// of chains to insert into; each chain receives the value assignments whose
/// chosen target attribute it hosts.
struct SketchInsert {
  unsigned ChainSetHole = 0;
  std::vector<std::pair<SketchAttr, Operand>> Values;
};

/// Sketch of a delete statement.
struct SketchDelete {
  unsigned TableListHole = 0;
  unsigned ChainHole = 0;
  SketchPredPtr Where;
};

/// Sketch of an update statement.
struct SketchUpdate {
  unsigned ChainHole = 0;
  SketchPredPtr Where;
  SketchAttr Target;
  Operand Val;
};

using SketchStmt = std::variant<SketchInsert, SketchDelete, SketchUpdate>;

/// Sketch of one function.
struct SketchFunction {
  Function::Kind TheKind = Function::Kind::Update;
  std::string Name;
  std::vector<Param> Params;
  std::vector<SketchStmt> Body;      ///< Update functions.
  std::optional<SketchQuery> Query;  ///< Query functions.
};

/// An (alternative of hole A, alternative of hole B) pair that cannot occur
/// together in a well-formed instantiation.
struct Incompatibility {
  unsigned HoleA;
  unsigned AltA;
  unsigned HoleB;
  unsigned AltB;
};

/// A complete program sketch over the target schema.
class Sketch {
public:
  /// Appends \p H and returns its id.
  unsigned addHole(Hole H);

  const std::vector<Hole> &getHoles() const { return Holes; }
  const Hole &getHole(unsigned Id) const { return Holes[Id]; }
  size_t getNumHoles() const { return Holes.size(); }

  void addFunction(SketchFunction F) { Funcs.push_back(std::move(F)); }
  const std::vector<SketchFunction> &getFunctions() const { return Funcs; }

  void addIncompatibility(Incompatibility I) { Incompats.push_back(I); }
  const std::vector<Incompatibility> &getIncompatibilities() const {
    return Incompats;
  }

  /// Number of syntactic instantiations: the product of hole domain sizes
  /// (the paper's 164,025 for the overview example). Returned as double —
  /// real-world sketches reach ~1e39.
  double spaceSize() const;

  /// Ids of the holes owned by function \p Func.
  std::vector<unsigned> holesOfFunction(const std::string &Func) const;

  /// Builds the concrete program selecting alternative \p Assign[h] for
  /// each hole h. \p Assign must have one in-range entry per hole.
  Program instantiate(const std::vector<unsigned> &Assign) const;

  /// Renders the sketch with `??N{...}` hole notation.
  std::string str() const;

private:
  std::vector<Hole> Holes;
  std::vector<SketchFunction> Funcs;
  std::vector<Incompatibility> Incompats;
};

} // namespace migrator

#endif // MIGRATOR_SKETCH_SKETCH_H
