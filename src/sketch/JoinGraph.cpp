//===- sketch/JoinGraph.cpp - Join graph and Steiner covers -----------------===//

#include "sketch/JoinGraph.h"

#include "obs/Metrics.h"

#include <algorithm>
#include <cassert>

using namespace migrator;

JoinGraph::JoinGraph(const Schema &S) : S(S) {
  for (const TableSchema &T : S.getTables())
    Tables.push_back(T.getName());
  size_t N = Tables.size();
  Adj.assign(N, std::vector<bool>(N, false));
  for (size_t I = 0; I < N; ++I) {
    const TableSchema &TI = S.getTable(Tables[I]);
    for (size_t J = I + 1; J < N; ++J) {
      const TableSchema &TJ = S.getTable(Tables[J]);
      for (const Attribute &A : TI.getAttrs()) {
        std::optional<unsigned> Idx = TJ.attrIndex(A.Name);
        if (Idx && TJ.getAttrs()[*Idx].Type == A.Type) {
          Adj[I][J] = Adj[J][I] = true;
          break;
        }
      }
    }
  }
}

int JoinGraph::indexOf(const std::string &Table) const {
  for (size_t I = 0; I < Tables.size(); ++I)
    if (Tables[I] == Table)
      return static_cast<int>(I);
  return -1;
}

bool JoinGraph::joinable(const std::string &A, const std::string &B) const {
  int IA = indexOf(A), IB = indexOf(B);
  assert(IA >= 0 && IB >= 0 && "unknown table");
  return Adj[IA][IB];
}

bool JoinGraph::isValidCover(const std::vector<int> &Cover,
                             const std::vector<bool> &IsTerminal) const {
  // Iteratively prune non-terminal vertices whose induced degree is <= 1; a
  // Steiner-tree vertex set never loses a vertex this way.
  std::vector<int> Live = Cover;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (size_t I = 0; I < Live.size(); ++I) {
      if (IsTerminal[Live[I]])
        continue;
      int Degree = 0;
      for (size_t J = 0; J < Live.size(); ++J)
        if (J != I && Adj[Live[I]][Live[J]])
          ++Degree;
      if (Degree <= 1) {
        if (Live.size() == Cover.size())
          return false; // A vertex of the candidate itself was pruned.
        Live.erase(Live.begin() + I);
        Changed = true;
        break;
      }
    }
    if (Live.size() < Cover.size())
      return false;
  }

  // Connectivity over the induced subgraph.
  if (Live.empty())
    return false;
  std::vector<bool> Seen(Live.size(), false);
  std::vector<size_t> Stack = {0};
  Seen[0] = true;
  size_t Reached = 1;
  while (!Stack.empty()) {
    size_t Cur = Stack.back();
    Stack.pop_back();
    for (size_t J = 0; J < Live.size(); ++J)
      if (!Seen[J] && Adj[Live[Cur]][Live[J]]) {
        Seen[J] = true;
        ++Reached;
        Stack.push_back(J);
      }
  }
  return Reached == Live.size();
}

std::vector<std::vector<std::string>>
JoinGraph::componentsOf(const std::vector<std::string> &Terminals) const {
  // Component id per table via BFS over the whole graph.
  std::vector<int> Comp(Tables.size(), -1);
  int NumComp = 0;
  for (size_t Start = 0; Start < Tables.size(); ++Start) {
    if (Comp[Start] >= 0)
      continue;
    int Id = NumComp++;
    std::vector<size_t> Work = {Start};
    Comp[Start] = Id;
    while (!Work.empty()) {
      size_t Cur = Work.back();
      Work.pop_back();
      for (size_t N = 0; N < Tables.size(); ++N)
        if (Comp[N] < 0 && Adj[Cur][N]) {
          Comp[N] = Id;
          Work.push_back(N);
        }
    }
  }
  std::vector<std::vector<std::string>> Groups(NumComp);
  std::vector<bool> Seen(Tables.size(), false);
  for (const std::string &T : Terminals) {
    int Idx = indexOf(T);
    if (Idx < 0 || Seen[Idx])
      continue;
    Seen[Idx] = true;
    Groups[Comp[Idx]].push_back(T);
  }
  std::vector<std::vector<std::string>> Result;
  for (std::vector<std::string> &G : Groups)
    if (!G.empty())
      Result.push_back(std::move(G));
  return Result;
}

std::vector<std::vector<std::string>>
JoinGraph::steinerCovers(const std::vector<std::string> &Terminals,
                         unsigned Slack) const {
  std::vector<std::vector<std::string>> Result;
  if (Terminals.empty())
    return Result;

  std::vector<bool> IsTerminal(Tables.size(), false);
  std::vector<int> Base;
  for (const std::string &T : Terminals) {
    int Idx = indexOf(T);
    if (Idx < 0)
      return Result;
    if (!IsTerminal[Idx]) {
      IsTerminal[Idx] = true;
      Base.push_back(Idx);
    }
  }
  std::sort(Base.begin(), Base.end());

  std::vector<int> Others;
  for (size_t I = 0; I < Tables.size(); ++I)
    if (!IsTerminal[I])
      Others.push_back(static_cast<int>(I));

  // Enumerate extra-table subsets by increasing size, then lexicographically,
  // so the resulting cover order is deterministic and smallest-first.
  // Expansion counts accumulate in locals and publish once per call — this
  // recursion is hot for wide schemas.
  uint64_t Expanded = 0, Rejected = 0;
  std::vector<int> Extra;
  auto Emit = [&]() {
    ++Expanded;
    std::vector<int> Cover = Base;
    Cover.insert(Cover.end(), Extra.begin(), Extra.end());
    std::sort(Cover.begin(), Cover.end());
    if (!isValidCover(Cover, IsTerminal)) {
      ++Rejected;
      return;
    }
    std::vector<std::string> Names;
    Names.reserve(Cover.size());
    for (int I : Cover)
      Names.push_back(Tables[I]);
    Result.push_back(std::move(Names));
  };

  for (unsigned Size = 0; Size <= Slack && Size <= Others.size(); ++Size) {
    // Choose `Size` extra tables out of Others.
    std::vector<size_t> Pick(Size);
    auto Rec = [&](auto &&Self, size_t Depth, size_t From) -> void {
      if (Depth == Size) {
        Extra.clear();
        for (size_t K : Pick)
          Extra.push_back(Others[K]);
        Emit();
        return;
      }
      for (size_t K = From; K < Others.size(); ++K) {
        Pick[Depth] = K;
        Self(Self, Depth + 1, K + 1);
      }
    };
    Rec(Rec, 0, 0);
  }
  MIGRATOR_COUNTER_ADD("sketch.steiner_expanded", Expanded);
  MIGRATOR_COUNTER_ADD("sketch.steiner_rejected", Rejected);
  MIGRATOR_COUNTER_ADD("sketch.steiner_covers", Result.size());
  return Result;
}
