//===- sketch/SketchGen.cpp - Sketch generation from a VC -------------------===//

#include "sketch/SketchGen.h"

#include "sketch/JoinGraph.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>

using namespace migrator;

namespace {

/// Builder holding the cross-statement state of one generation run.
class SketchBuilder {
public:
  SketchBuilder(const Schema &Source, const Schema &Target,
                const ValueCorrespondence &Phi, const SketchGenOptions &Opts)
      : Source(Source), Target(Target), Phi(Phi), Opts(Opts), Graph(Target) {}

  /// Entry point; nullopt when Φ cannot support the program.
  std::optional<Sketch> run(const Program &P) {
    for (const Function &F : P.getFunctions()) {
      CurFunc = F.getName();
      SketchFunction SF;
      SF.TheKind = F.getKind();
      SF.Name = F.getName();
      SF.Params = F.getParams();
      if (F.isQuery()) {
        std::optional<SketchQuery> Q = genQuery(F.getQuery());
        if (!Q)
          return std::nullopt;
        SF.Query = std::move(Q);
      } else {
        for (const StmtPtr &St : F.getBody()) {
          std::optional<SketchStmt> SS = genStmt(*St);
          if (!SS)
            return std::nullopt;
          SF.Body.push_back(std::move(*SS));
        }
      }
      Result.addFunction(std::move(SF));
    }
    return std::move(Result);
  }

private:
  const Schema &Source;
  const Schema &Target;
  const ValueCorrespondence &Phi;
  const SketchGenOptions &Opts;
  JoinGraph Graph;
  Sketch Result;
  std::string CurFunc;

  //===--------------------------------------------------------------------===//
  // Attribute collection
  //===--------------------------------------------------------------------===//

  /// Resolves \p Ref in \p Chain and appends it to \p Out. Returns false on
  /// unresolvable references (malformed source programs).
  bool collectAttr(const AttrRef &Ref, const JoinChain &Chain,
                   std::set<QualifiedAttr> &Out) const {
    std::optional<QualifiedAttr> QA = Chain.resolve(Ref, Source);
    if (!QA)
      return false;
    Out.insert(*QA);
    return true;
  }

  /// Collects the attributes of predicate \p P (ignoring IN sub-queries,
  /// which carry their own chains).
  bool collectPredAttrs(const Pred &P, const JoinChain &Chain,
                        std::set<QualifiedAttr> &Out) const {
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &C = static_cast<const CmpPred &>(P);
      if (!collectAttr(C.getLhs(), Chain, Out))
        return false;
      if (C.rhsIsAttr())
        return collectAttr(C.getRhsAttr(), Chain, Out);
      return true;
    }
    case Pred::Kind::In:
      return collectAttr(static_cast<const InPred &>(P).getLhs(), Chain, Out);
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      return collectPredAttrs(B.getLhs(), Chain, Out) &&
             collectPredAttrs(B.getRhs(), Chain, Out);
    }
    case Pred::Kind::Not:
      return collectPredAttrs(static_cast<const NotPred &>(P).getSubPred(),
                              Chain, Out);
    }
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Chain candidates (join correspondence via Steiner covers)
  //===--------------------------------------------------------------------===//

  /// Computes the candidate target chains for a statement. Implements the
  /// Φ ⊢_A J ∼ J' relation constructively: enumerate the table combinations
  /// hosting one image per required attribute, then take Steiner covers of
  /// each combination. Attributes in \p Strict fail the whole VC when
  /// unmapped (the Fig. 8 side conditions); attributes in \p Lenient are
  /// skipped when unmapped — this covers refactorings that drop pure join
  /// keys (merge-tables / replace-keys), where the paper's strict rule would
  /// reject a VC although an equivalent program exists. Bounded testing
  /// remains the arbiter of candidate correctness either way.
  /// Computes the candidate terminal-table sets for a statement (one per
  /// image-table combination). Returns nullopt when a strict attribute is
  /// unmapped under Φ.
  std::optional<std::set<std::vector<std::string>>>
  terminalSets(const std::set<QualifiedAttr> &Strict,
               const std::set<QualifiedAttr> &Lenient) const {
    std::vector<std::vector<std::string>> HostChoices;
    auto AddHosts = [this, &HostChoices](const QualifiedAttr &A,
                                         bool FailWhenUnmapped) {
      const std::vector<QualifiedAttr> &Image = Phi.image(A);
      if (Image.empty())
        return !FailWhenUnmapped;
      std::vector<std::string> Hosts;
      for (const QualifiedAttr &T : Image)
        if (std::find(Hosts.begin(), Hosts.end(), T.Table) == Hosts.end())
          Hosts.push_back(T.Table);
      HostChoices.push_back(std::move(Hosts));
      return true;
    };
    for (const QualifiedAttr &A : Strict)
      if (!AddHosts(A, /*FailWhenUnmapped=*/true))
        return std::nullopt; // Fig. 8 side condition fails under Φ.
    for (const QualifiedAttr &A : Lenient)
      if (!Strict.count(A))
        AddHosts(A, /*FailWhenUnmapped=*/false);

    // Enumerate terminal-set combinations (product of host choices), capped.
    std::set<std::vector<std::string>> TerminalSets;
    std::vector<std::string> Combo;
    size_t Combos = 0;
    auto Rec = [&](auto &&Self, size_t Depth) -> void {
      if (Combos >= Opts.MaxTerminalCombos)
        return;
      if (Depth == HostChoices.size()) {
        ++Combos;
        std::vector<std::string> Terminals = Combo;
        std::sort(Terminals.begin(), Terminals.end());
        Terminals.erase(std::unique(Terminals.begin(), Terminals.end()),
                        Terminals.end());
        TerminalSets.insert(std::move(Terminals));
        return;
      }
      for (const std::string &Host : HostChoices[Depth]) {
        Combo.push_back(Host);
        Self(Self, Depth + 1);
        Combo.pop_back();
      }
    };
    Rec(Rec, 0);
    if (HostChoices.empty()) {
      // A statement with no required attributes (e.g. an insert whose values
      // were all dropped): any single target table is a candidate.
      for (const TableSchema &T : Target.getTables())
        TerminalSets.insert({T.getName()});
    }
    return TerminalSets;
  }

  /// Computes the candidate target chains for a statement. Implements the
  /// Φ ⊢_A J ∼ J' relation constructively: enumerate the table combinations
  /// hosting one image per required attribute, then take Steiner covers of
  /// each combination. Attributes in \p Strict fail the whole VC when
  /// unmapped (the Fig. 8 side conditions); attributes in \p Lenient are
  /// skipped when unmapped — this covers refactorings that drop pure join
  /// keys (merge-tables / replace-keys), where the paper's strict rule would
  /// reject a VC although an equivalent program exists. Bounded testing
  /// remains the arbiter of candidate correctness either way.
  std::optional<std::vector<JoinChain>>
  chainCandidates(const std::set<QualifiedAttr> &Strict,
                  const std::set<QualifiedAttr> &Lenient = {}) const {
    std::optional<std::set<std::vector<std::string>>> Sets =
        terminalSets(Strict, Lenient);
    if (!Sets)
      return std::nullopt;

    // Union of the Steiner covers over all terminal sets.
    std::set<std::vector<std::string>> Covers;
    for (const std::vector<std::string> &Terminals : *Sets)
      for (std::vector<std::string> &Cover :
           Graph.steinerCovers(Terminals, Opts.SteinerSlack))
        Covers.insert(std::move(Cover));
    if (Covers.empty())
      return std::nullopt;

    // Deterministic order: size first, then schema declaration order (the
    // cover lists are already in declaration order).
    std::vector<std::vector<std::string>> Sorted(Covers.begin(), Covers.end());
    std::stable_sort(Sorted.begin(), Sorted.end(),
                     [](const auto &A, const auto &B) {
                       return A.size() < B.size();
                     });
    std::vector<JoinChain> Chains;
    Chains.reserve(Sorted.size());
    for (std::vector<std::string> &Cover : Sorted)
      Chains.push_back(JoinChain::natural(std::move(Cover)));
    return Chains;
  }

  /// Chain-*set* candidates for insert statements (Fig. 9/10 composition):
  /// a connected terminal set yields singleton sets (one per Steiner cover);
  /// a disconnected terminal set decomposes into the components of the
  /// target join graph, and the alternatives are products of per-component
  /// covers — one insert per component chain.
  std::optional<std::vector<std::vector<JoinChain>>>
  chainSetCandidates(const std::set<QualifiedAttr> &Strict,
                     const std::set<QualifiedAttr> &Lenient) const {
    std::optional<std::set<std::vector<std::string>>> Sets =
        terminalSets(Strict, Lenient);
    if (!Sets)
      return std::nullopt;

    std::map<std::string, std::vector<JoinChain>> Alternatives; // key -> set.
    auto KeyOf = [](const std::vector<JoinChain> &Set) {
      std::string K;
      for (const JoinChain &C : Set)
        K += C.str() + ";";
      return K;
    };

    for (const std::vector<std::string> &Terminals : *Sets) {
      std::vector<std::vector<std::string>> Covers =
          Graph.steinerCovers(Terminals, Opts.SteinerSlack);
      if (!Covers.empty()) {
        for (std::vector<std::string> &Cover : Covers) {
          std::vector<JoinChain> Set = {JoinChain::natural(std::move(Cover))};
          Alternatives.emplace(KeyOf(Set), std::move(Set));
        }
        continue;
      }
      // Disconnected: decompose into components and cover each.
      std::vector<std::vector<std::string>> Components =
          Graph.componentsOf(Terminals);
      if (Components.size() < 2 ||
          Components.size() > Opts.MaxInsertComponents)
        continue;
      std::vector<std::vector<std::vector<std::string>>> PerComp;
      bool AllCovered = true;
      for (const std::vector<std::string> &Comp : Components) {
        PerComp.push_back(Graph.steinerCovers(Comp, Opts.SteinerSlack));
        if (PerComp.back().empty())
          AllCovered = false;
      }
      if (!AllCovered)
        continue;
      // Product of per-component cover choices, capped.
      std::vector<JoinChain> Cur;
      size_t Produced = 0;
      auto Rec = [&](auto &&Self, size_t Depth) -> void {
        if (Produced >= Opts.MaxTerminalCombos)
          return;
        if (Depth == PerComp.size()) {
          ++Produced;
          std::vector<JoinChain> Set = Cur;
          Alternatives.emplace(KeyOf(Set), std::move(Set));
          return;
        }
        for (const std::vector<std::string> &Cover : PerComp[Depth]) {
          Cur.push_back(JoinChain::natural(Cover));
          Self(Self, Depth + 1);
          Cur.pop_back();
        }
      };
      Rec(Rec, 0);
    }
    if (Alternatives.empty())
      return std::nullopt;

    std::vector<std::vector<JoinChain>> Result;
    for (auto &[Key, Set] : Alternatives)
      Result.push_back(std::move(Set));
    std::stable_sort(Result.begin(), Result.end(),
                     [](const auto &A, const auto &B) {
                       size_t TA = 0, TB = 0;
                       for (const JoinChain &C : A)
                         TA += C.getNumTables();
                       for (const JoinChain &C : B)
                         TB += C.getNumTables();
                       return TA < TB;
                     });
    return Result;
  }

  /// Creates the chain hole for \p Chains.
  unsigned addChainHole(std::vector<JoinChain> Chains) {
    Hole H;
    H.TheKind = Hole::Kind::Chain;
    H.Func = CurFunc;
    H.Chains = std::move(Chains);
    return Result.addHole(std::move(H));
  }

  /// Creates the chain-set hole for \p Sets (insert statements).
  unsigned addChainSetHole(std::vector<std::vector<JoinChain>> Sets) {
    Hole H;
    H.TheKind = Hole::Kind::ChainSet;
    H.Func = CurFunc;
    H.ChainSets = std::move(Sets);
    return Result.addHole(std::move(H));
  }

  /// Returns true if alternative \p Alt of chain/chain-set hole \p H hosts
  /// table \p Table.
  bool holeAltHostsTable(const Hole &H, unsigned Alt,
                         const std::string &Table) const {
    if (H.TheKind == Hole::Kind::Chain)
      return H.Chains[Alt].containsTable(Table);
    assert(H.TheKind == Hole::Kind::ChainSet && "chain-like hole expected");
    for (const JoinChain &C : H.ChainSets[Alt])
      if (C.containsTable(Table))
        return true;
    return false;
  }

  /// Creates an attribute hole with domain Φ(\p SrcAttr) and records its
  /// compatibility constraints against chain or chain-set hole \p ChainHole.
  std::optional<SketchAttr> addAttrHole(const QualifiedAttr &SrcAttr,
                                        unsigned ChainHole) {
    const std::vector<QualifiedAttr> &Image = Phi.image(SrcAttr);
    if (Image.empty())
      return std::nullopt;
    Hole H;
    H.TheKind = Hole::Kind::Attr;
    H.Func = CurFunc;
    H.Attrs = Image; // Already sorted by ValueCorrespondence.
    unsigned Id = Result.addHole(std::move(H));

    const Hole &ChainH = Result.getHole(ChainHole);
    for (unsigned CA = 0; CA < ChainH.size(); ++CA)
      for (unsigned AA = 0; AA < Image.size(); ++AA)
        if (!holeAltHostsTable(ChainH, CA, Image[AA].Table))
          Result.addIncompatibility({ChainHole, CA, Id, AA});
    return SketchAttr{Id};
  }

  /// Creates the table-list hole for a delete statement: non-empty subsets
  /// of the union of candidate-chain tables.
  unsigned addTableListHole(unsigned ChainHole) {
    const Hole &ChainH = Result.getHole(ChainHole);

    // Union of tables, in target-schema declaration order.
    std::vector<std::string> Union;
    for (const TableSchema &T : Target.getTables()) {
      for (const JoinChain &C : ChainH.Chains)
        if (C.containsTable(T.getName())) {
          Union.push_back(T.getName());
          break;
        }
    }
    size_t MaxSize = Union.size() <= Opts.MaxTableListUnion
                         ? Union.size()
                         : Opts.MaxTableListSize;

    // Non-empty subsets ordered by size, then lexicographically by index.
    std::vector<std::vector<std::string>> Lists;
    std::vector<std::string> Cur;
    auto Rec = [&](auto &&Self, size_t From, size_t Want) -> void {
      if (Cur.size() == Want) {
        Lists.push_back(Cur);
        return;
      }
      for (size_t K = From; K < Union.size(); ++K) {
        Cur.push_back(Union[K]);
        Self(Self, K + 1, Want);
        Cur.pop_back();
      }
    };
    for (size_t Want = 1; Want <= MaxSize; ++Want)
      Rec(Rec, 0, Want);

    Hole H;
    H.TheKind = Hole::Kind::TableList;
    H.Func = CurFunc;
    H.TableLists = std::move(Lists);
    unsigned Id = Result.addHole(std::move(H));

    // Compatibility: the chosen list must be a subset of the chosen chain.
    const Hole &ListH = Result.getHole(Id);
    const Hole &ChainH2 = Result.getHole(ChainHole);
    for (unsigned CA = 0; CA < ChainH2.Chains.size(); ++CA)
      for (unsigned LA = 0; LA < ListH.TableLists.size(); ++LA) {
        bool Subset = true;
        for (const std::string &T : ListH.TableLists[LA])
          if (!ChainH2.Chains[CA].containsTable(T)) {
            Subset = false;
            break;
          }
        if (!Subset)
          Result.addIncompatibility({ChainHole, CA, Id, LA});
      }
    return Id;
  }

  //===--------------------------------------------------------------------===//
  // Statement / query rewriting (Fig. 8, flattened)
  //===--------------------------------------------------------------------===//

  /// Rewrites predicate \p P into a sketch predicate over \p ChainHole.
  std::optional<SketchPredPtr> genPred(const Pred &P, const JoinChain &SrcChain,
                                       unsigned ChainHole) {
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &C = static_cast<const CmpPred &>(P);
      std::optional<QualifiedAttr> L = SrcChain.resolve(C.getLhs(), Source);
      if (!L)
        return std::nullopt;
      std::optional<SketchAttr> LH = addAttrHole(*L, ChainHole);
      if (!LH)
        return std::nullopt;
      if (C.rhsIsAttr()) {
        std::optional<QualifiedAttr> R =
            SrcChain.resolve(C.getRhsAttr(), Source);
        if (!R)
          return std::nullopt;
        std::optional<SketchAttr> RH = addAttrHole(*R, ChainHole);
        if (!RH)
          return std::nullopt;
        return std::make_unique<SketchCmp>(*LH, C.getOp(),
                                           SketchCmp::Rhs_t(*RH));
      }
      return std::make_unique<SketchCmp>(
          *LH, C.getOp(), SketchCmp::Rhs_t(C.getRhsOperand()));
    }
    case Pred::Kind::In: {
      const auto &I = static_cast<const InPred &>(P);
      std::optional<QualifiedAttr> L = SrcChain.resolve(I.getLhs(), Source);
      if (!L)
        return std::nullopt;
      std::optional<SketchAttr> LH = addAttrHole(*L, ChainHole);
      if (!LH)
        return std::nullopt;
      std::optional<SketchQuery> Sub = genQuery(I.getSubQuery());
      if (!Sub)
        return std::nullopt;
      return std::make_unique<SketchIn>(
          *LH, std::make_unique<SketchQuery>(std::move(*Sub)));
    }
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      std::optional<SketchPredPtr> L = genPred(B.getLhs(), SrcChain, ChainHole);
      if (!L)
        return std::nullopt;
      std::optional<SketchPredPtr> R = genPred(B.getRhs(), SrcChain, ChainHole);
      if (!R)
        return std::nullopt;
      SketchPred::Kind K = P.getKind() == Pred::Kind::And
                               ? SketchPred::Kind::And
                               : SketchPred::Kind::Or;
      return std::make_unique<SketchBinary>(K, std::move(*L), std::move(*R));
    }
    case Pred::Kind::Not: {
      std::optional<SketchPredPtr> Sub = genPred(
          static_cast<const NotPred &>(P).getSubPred(), SrcChain, ChainHole);
      if (!Sub)
        return std::nullopt;
      return std::make_unique<SketchNot>(std::move(*Sub));
    }
    }
    return std::nullopt;
  }

  /// Normalized view of a source query: projection list (explicit or
  /// implicit all-chain-attributes), conjunction of filters, and the chain.
  struct NormalQuery {
    std::vector<AttrRef> Proj;
    std::vector<const Pred *> Filters;
    const JoinChain *Chain = nullptr;
  };

  static NormalQuery normalize(const Query &Q) {
    NormalQuery N;
    const Query *Cur = &Q;
    bool SawProj = false;
    while (true) {
      switch (Cur->getKind()) {
      case Query::Kind::Project: {
        const auto &P = static_cast<const ProjectQuery &>(*Cur);
        if (!SawProj) {
          N.Proj = P.getAttrs();
          SawProj = true;
        }
        Cur = &P.getSubQuery();
        break;
      }
      case Query::Kind::Filter: {
        const auto &F = static_cast<const FilterQuery &>(*Cur);
        N.Filters.push_back(&F.getPred());
        Cur = &F.getSubQuery();
        break;
      }
      case Query::Kind::Chain:
        N.Chain = &static_cast<const ChainQuery &>(*Cur).getJoinChain();
        return N;
      }
    }
  }

  std::optional<SketchQuery> genQuery(const Query &Q) {
    NormalQuery N = normalize(Q);
    const JoinChain &SrcChain = *N.Chain;

    // Implicit projection of every chain attribute when no Π is present.
    if (N.Proj.empty())
      for (const QualifiedAttr &A : SrcChain.allAttrs(Source))
        N.Proj.push_back(AttrRef::qualified(A));

    // Required attributes: projection ∪ filter predicates (Proj rule).
    std::set<QualifiedAttr> Required;
    for (const AttrRef &A : N.Proj)
      if (!collectAttr(A, SrcChain, Required))
        return std::nullopt;
    for (const Pred *P : N.Filters)
      if (!collectPredAttrs(*P, SrcChain, Required))
        return std::nullopt;

    std::optional<std::vector<JoinChain>> Chains = chainCandidates(Required);
    if (!Chains)
      return std::nullopt;

    SketchQuery SQ;
    SQ.ChainHole = addChainHole(std::move(*Chains));
    for (const AttrRef &A : N.Proj) {
      std::optional<QualifiedAttr> QA = SrcChain.resolve(A, Source);
      assert(QA && "projection attribute resolved above");
      std::optional<SketchAttr> H = addAttrHole(*QA, SQ.ChainHole);
      if (!H)
        return std::nullopt;
      SQ.Proj.push_back(*H);
    }
    for (const Pred *P : N.Filters) {
      std::optional<SketchPredPtr> SP = genPred(*P, SrcChain, SQ.ChainHole);
      if (!SP)
        return std::nullopt;
      SQ.Where = SQ.Where ? std::make_unique<SketchBinary>(
                                SketchPred::Kind::And, std::move(SQ.Where),
                                std::move(*SP))
                          : std::move(*SP);
    }
    return SQ;
  }

  std::optional<SketchStmt> genStmt(const Stmt &St) {
    switch (St.getKind()) {
    case Stmt::Kind::Insert: {
      const auto &I = static_cast<const InsertStmt &>(St);
      // Insert rule (A = Attrs(J)), applied leniently: every chain attribute
      // contributes its image tables, but attributes Φ drops — surrogate
      // keys removed by the refactoring — are skipped, and their value
      // assignments are dropped from the rewritten insert (the value is
      // unobservable under any program equivalent w.r.t. Φ).
      std::set<QualifiedAttr> Lenient;
      for (const QualifiedAttr &A : I.getChain().allAttrs(Source))
        Lenient.insert(A);
      std::optional<std::vector<std::vector<JoinChain>>> Sets =
          chainSetCandidates({}, Lenient);
      if (!Sets)
        return std::nullopt;
      SketchInsert SI;
      SI.ChainSetHole = addChainSetHole(std::move(*Sets));
      for (const auto &[Ref, Op] : I.getValues()) {
        std::optional<QualifiedAttr> QA = I.getChain().resolve(Ref, Source);
        if (!QA)
          return std::nullopt;
        if (Phi.image(*QA).empty())
          continue; // Dropped attribute: no target column stores it.
        std::optional<SketchAttr> H = addAttrHole(*QA, SI.ChainSetHole);
        if (!H)
          return std::nullopt;
        SI.Values.emplace_back(*H, Op);
      }
      return SketchStmt(std::move(SI));
    }
    case Stmt::Kind::Delete: {
      const auto &D = static_cast<const DeleteStmt &>(St);
      // Delete rule: A = Attrs(L) ∪ Attrs(ϕ). Predicate attributes are
      // strict; the deleted tables' attributes are lenient (dropped join
      // keys must not reject the VC).
      std::set<QualifiedAttr> Strict, Lenient;
      for (const std::string &T : D.getTargets())
        for (const Attribute &A : Source.getTable(T).getAttrs())
          Lenient.insert({T, A.Name});
      if (D.getPred() && !collectPredAttrs(*D.getPred(), D.getChain(), Strict))
        return std::nullopt;
      std::optional<std::vector<JoinChain>> Chains =
          chainCandidates(Strict, Lenient);
      if (!Chains)
        return std::nullopt;
      SketchDelete SD;
      SD.ChainHole = addChainHole(std::move(*Chains));
      SD.TableListHole = addTableListHole(SD.ChainHole);
      if (D.getPred()) {
        std::optional<SketchPredPtr> SP =
            genPred(*D.getPred(), D.getChain(), SD.ChainHole);
        if (!SP)
          return std::nullopt;
        SD.Where = std::move(*SP);
      }
      return SketchStmt(std::move(SD));
    }
    case Stmt::Kind::Update: {
      const auto &U = static_cast<const UpdateStmt &>(St);
      // Update rule: A = Attrs(ϕ) ∪ {a}.
      std::set<QualifiedAttr> Required;
      std::optional<QualifiedAttr> Target =
          U.getChain().resolve(U.getTarget(), Source);
      if (!Target)
        return std::nullopt;
      Required.insert(*Target);
      if (U.getPred() &&
          !collectPredAttrs(*U.getPred(), U.getChain(), Required))
        return std::nullopt;
      std::optional<std::vector<JoinChain>> Chains = chainCandidates(Required);
      if (!Chains)
        return std::nullopt;
      SketchUpdate SU;
      SU.ChainHole = addChainHole(std::move(*Chains));
      std::optional<SketchAttr> TH = addAttrHole(*Target, SU.ChainHole);
      if (!TH)
        return std::nullopt;
      SU.Target = *TH;
      SU.Val = U.getValue();
      if (U.getPred()) {
        std::optional<SketchPredPtr> SP =
            genPred(*U.getPred(), U.getChain(), SU.ChainHole);
        if (!SP)
          return std::nullopt;
        SU.Where = std::move(*SP);
      }
      return SketchStmt(std::move(SU));
    }
    }
    return std::nullopt;
  }
};

} // namespace

std::optional<Sketch> migrator::generateSketch(const Program &P,
                                               const Schema &Source,
                                               const Schema &Target,
                                               const ValueCorrespondence &Phi,
                                               const SketchGenOptions &Opts) {
  SketchBuilder Builder(Source, Target, Phi, Opts);
  return Builder.run(P);
}
