//===- sketch/Sketch.cpp - Program sketches with holes ----------------------===//

#include "sketch/Sketch.h"

#include "support/StringExtras.h"

#include <cassert>
#include <sstream>

using namespace migrator;

SketchPred::~SketchPred() = default;

SketchIn::SketchIn(SketchAttr Lhs, std::unique_ptr<SketchQuery> Sub)
    : SketchPred(Kind::In), Lhs(Lhs), Sub(std::move(Sub)) {
  assert(this->Sub && "IN sketch requires a sub-query");
}

SketchIn::~SketchIn() = default;

std::string Hole::domainStr() const {
  std::ostringstream OS;
  OS << "??{";
  bool First = true;
  auto Sep = [&]() {
    if (!First)
      OS << ", ";
    First = false;
  };
  switch (TheKind) {
  case Kind::Attr:
    for (const QualifiedAttr &A : Attrs) {
      Sep();
      OS << A.str();
    }
    break;
  case Kind::Chain:
    for (const JoinChain &C : Chains) {
      Sep();
      OS << C.str();
    }
    break;
  case Kind::ChainSet:
    for (const std::vector<JoinChain> &Set : ChainSets) {
      Sep();
      for (size_t I = 0; I < Set.size(); ++I) {
        if (I != 0)
          OS << " ; ";
        OS << Set[I].str();
      }
    }
    break;
  case Kind::TableList:
    for (const std::vector<std::string> &L : TableLists) {
      Sep();
      OS << "[" << join(L, ", ") << "]";
    }
    break;
  }
  OS << "}";
  return OS.str();
}

unsigned Sketch::addHole(Hole H) {
  assert(H.size() > 0 && "hole with an empty domain");
  Holes.push_back(std::move(H));
  return static_cast<unsigned>(Holes.size() - 1);
}

double Sketch::spaceSize() const {
  double Size = 1.0;
  for (const Hole &H : Holes)
    Size *= static_cast<double>(H.size());
  return Size;
}

std::vector<unsigned> Sketch::holesOfFunction(const std::string &Func) const {
  std::vector<unsigned> Ids;
  for (unsigned I = 0; I < Holes.size(); ++I)
    if (Holes[I].Func == Func)
      Ids.push_back(I);
  return Ids;
}

namespace {

/// Rebuilds concrete AST pieces from a sketch under one hole assignment.
class Instantiator {
public:
  Instantiator(const Sketch &Sk, const std::vector<unsigned> &Assign)
      : Sk(Sk), Assign(Assign) {}

  AttrRef attr(SketchAttr A) const {
    const Hole &H = Sk.getHole(A.HoleId);
    assert(H.TheKind == Hole::Kind::Attr && "attribute hole expected");
    return AttrRef::qualified(H.Attrs[alt(A.HoleId)]);
  }

  const JoinChain &chain(unsigned HoleId) const {
    const Hole &H = Sk.getHole(HoleId);
    assert(H.TheKind == Hole::Kind::Chain && "chain hole expected");
    return H.Chains[alt(HoleId)];
  }

  const std::vector<JoinChain> &chainSet(unsigned HoleId) const {
    const Hole &H = Sk.getHole(HoleId);
    assert(H.TheKind == Hole::Kind::ChainSet && "chain-set hole expected");
    return H.ChainSets[alt(HoleId)];
  }

  const std::vector<std::string> &tableList(unsigned HoleId) const {
    const Hole &H = Sk.getHole(HoleId);
    assert(H.TheKind == Hole::Kind::TableList && "table-list hole expected");
    return H.TableLists[alt(HoleId)];
  }

  PredPtr pred(const SketchPred &P) const {
    switch (P.getKind()) {
    case SketchPred::Kind::Cmp: {
      const auto &C = static_cast<const SketchCmp &>(P);
      if (C.Rhs.index() == 0)
        return makeAttrCmp(attr(C.Lhs), C.Op, attr(std::get<0>(C.Rhs)));
      return makeCmp(attr(C.Lhs), C.Op, std::get<1>(C.Rhs));
    }
    case SketchPred::Kind::In: {
      const auto &I = static_cast<const SketchIn &>(P);
      return std::make_unique<InPred>(attr(I.Lhs), query(*I.Sub));
    }
    case SketchPred::Kind::And:
    case SketchPred::Kind::Or: {
      const auto &B = static_cast<const SketchBinary &>(P);
      Pred::Kind K = P.getKind() == SketchPred::Kind::And ? Pred::Kind::And
                                                          : Pred::Kind::Or;
      return std::make_unique<BinaryPred>(K, pred(*B.L), pred(*B.R));
    }
    case SketchPred::Kind::Not:
      return makeNot(pred(*static_cast<const SketchNot &>(P).Sub));
    }
    assert(false && "unknown sketch predicate kind");
    return nullptr;
  }

  QueryPtr query(const SketchQuery &Q) const {
    std::vector<AttrRef> Proj;
    Proj.reserve(Q.Proj.size());
    for (SketchAttr A : Q.Proj)
      Proj.push_back(attr(A));
    PredPtr P = Q.Where ? pred(*Q.Where) : nullptr;
    return makeSelect(std::move(Proj), chain(Q.ChainHole), std::move(P));
  }

  /// Appends the concrete statements for \p St to \p Out. Insert sketches
  /// may expand to several statements (the paper's Ω1 ; ... ; Ωn insert
  /// composition).
  void stmts(const SketchStmt &St, std::vector<StmtPtr> &Out) const {
    if (const auto *I = std::get_if<SketchInsert>(&St)) {
      for (const JoinChain &Chain : chainSet(I->ChainSetHole)) {
        std::vector<InsertStmt::Assignment> Values;
        for (const auto &[A, Op] : I->Values) {
          AttrRef Ref = attr(A);
          if (Chain.containsTable(Ref.Table))
            Values.emplace_back(std::move(Ref), Op);
        }
        Out.push_back(
            std::make_unique<InsertStmt>(Chain, std::move(Values)));
      }
      return;
    }
    if (const auto *D = std::get_if<SketchDelete>(&St)) {
      PredPtr P = D->Where ? pred(*D->Where) : nullptr;
      Out.push_back(std::make_unique<DeleteStmt>(tableList(D->TableListHole),
                                                 chain(D->ChainHole),
                                                 std::move(P)));
      return;
    }
    const auto &U = std::get<SketchUpdate>(St);
    PredPtr P = U.Where ? pred(*U.Where) : nullptr;
    Out.push_back(std::make_unique<UpdateStmt>(chain(U.ChainHole),
                                               std::move(P), attr(U.Target),
                                               U.Val));
  }

private:
  const Sketch &Sk;
  const std::vector<unsigned> &Assign;

  unsigned alt(unsigned HoleId) const {
    assert(HoleId < Assign.size() && "assignment missing a hole");
    assert(Assign[HoleId] < Sk.getHole(HoleId).size() &&
           "alternative index out of range");
    return Assign[HoleId];
  }
};

} // namespace

Program Sketch::instantiate(const std::vector<unsigned> &Assign) const {
  assert(Assign.size() == Holes.size() &&
         "assignment arity does not match hole count");
  Instantiator Inst(*this, Assign);
  Program P;
  for (const SketchFunction &F : Funcs) {
    if (F.TheKind == Function::Kind::Query) {
      P.addFunction(
          Function::makeQuery(F.Name, F.Params, Inst.query(*F.Query)));
      continue;
    }
    std::vector<StmtPtr> Body;
    Body.reserve(F.Body.size());
    for (const SketchStmt &St : F.Body)
      Inst.stmts(St, Body);
    P.addFunction(Function::makeUpdate(F.Name, F.Params, std::move(Body)));
  }
  return P;
}

namespace {

void printPred(const SketchPred &P, std::ostringstream &OS);

void printAttr(SketchAttr A, std::ostringstream &OS) { OS << "??" << A.HoleId; }

void printQuery(const SketchQuery &Q, std::ostringstream &OS) {
  OS << "select ";
  for (size_t I = 0; I < Q.Proj.size(); ++I) {
    if (I != 0)
      OS << ", ";
    printAttr(Q.Proj[I], OS);
  }
  OS << " from ??" << Q.ChainHole;
  if (Q.Where) {
    OS << " where ";
    printPred(*Q.Where, OS);
  }
}

void printPred(const SketchPred &P, std::ostringstream &OS) {
  switch (P.getKind()) {
  case SketchPred::Kind::Cmp: {
    const auto &C = static_cast<const SketchCmp &>(P);
    printAttr(C.Lhs, OS);
    OS << " " << cmpOpName(C.Op) << " ";
    if (C.Rhs.index() == 0)
      printAttr(std::get<0>(C.Rhs), OS);
    else
      OS << std::get<1>(C.Rhs).str();
    return;
  }
  case SketchPred::Kind::In: {
    const auto &I = static_cast<const SketchIn &>(P);
    printAttr(I.Lhs, OS);
    OS << " in (";
    printQuery(*I.Sub, OS);
    OS << ")";
    return;
  }
  case SketchPred::Kind::And:
  case SketchPred::Kind::Or: {
    const auto &B = static_cast<const SketchBinary &>(P);
    OS << "(";
    printPred(*B.L, OS);
    OS << (P.getKind() == SketchPred::Kind::And ? " and " : " or ");
    printPred(*B.R, OS);
    OS << ")";
    return;
  }
  case SketchPred::Kind::Not: {
    OS << "not (";
    printPred(*static_cast<const SketchNot &>(P).Sub, OS);
    OS << ")";
    return;
  }
  }
}

} // namespace

std::string Sketch::str() const {
  std::ostringstream OS;
  for (const SketchFunction &F : Funcs) {
    OS << (F.TheKind == Function::Kind::Update ? "update " : "query ")
       << F.Name << "(";
    for (size_t I = 0; I < F.Params.size(); ++I) {
      if (I != 0)
        OS << ", ";
      OS << F.Params[I].Name << ": " << typeName(F.Params[I].Type);
    }
    OS << ") {\n";
    if (F.TheKind == Function::Kind::Query) {
      OS << "  ";
      printQuery(*F.Query, OS);
      OS << ";\n";
    } else {
      for (const SketchStmt &St : F.Body) {
        OS << "  ";
        if (const auto *I = std::get_if<SketchInsert>(&St)) {
          OS << "insert into ??" << I->ChainSetHole << " values (";
          for (size_t K = 0; K < I->Values.size(); ++K) {
            if (K != 0)
              OS << ", ";
            printAttr(I->Values[K].first, OS);
            OS << ": " << I->Values[K].second.str();
          }
          OS << ");";
        } else if (const auto *D = std::get_if<SketchDelete>(&St)) {
          OS << "delete ??" << D->TableListHole << " from ??" << D->ChainHole;
          if (D->Where) {
            OS << " where ";
            printPred(*D->Where, OS);
          }
          OS << ";";
        } else {
          const auto &U = std::get<SketchUpdate>(St);
          OS << "update ??" << U.ChainHole << " set ";
          printAttr(U.Target, OS);
          OS << " = " << U.Val.str();
          if (U.Where) {
            OS << " where ";
            printPred(*U.Where, OS);
          }
          OS << ";";
        }
        OS << "\n";
      }
    }
    OS << "}\n";
  }
  OS << "\nholes:\n";
  for (unsigned I = 0; I < Holes.size(); ++I)
    OS << "  ??" << I << " (" << Holes[I].Func << ") "
       << Holes[I].domainStr() << "\n";
  return OS.str();
}
