//===- sketch/SketchGen.h - Sketch generation from a VC -----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Sketch generation (Sec. 4.3): given the source program and a candidate
/// value correspondence Φ, produce a sketch over the target schema
/// representing every program that may be equivalent to the source under Φ.
///
/// For each statement, the attributes it requires (per the side conditions
/// of Fig. 8: all chain attributes for inserts, Attrs(L) ∪ Attrs(ϕ) for
/// deletes, Attrs(ϕ) ∪ {a} for updates, projection ∪ predicate attributes
/// for queries) are mapped through Φ; the tables hosting the images become
/// Steiner terminals; and the candidate target chains are the Steiner
/// covers of those terminals in the target join graph (Sec. 5's
/// Steiner-tree construction). Attribute occurrences become holes with
/// domain Φ(a), and delete target lists become power-set holes.
///
/// Returns nullopt when Φ cannot support some statement (an attribute with
/// an empty image, or no connected cover) — the signal for the top-level
/// loop to move to the next VC.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SKETCH_SKETCHGEN_H
#define MIGRATOR_SKETCH_SKETCHGEN_H

#include "ast/Program.h"
#include "sketch/Sketch.h"
#include "vc/ValueCorrespondence.h"

#include <optional>

namespace migrator {

/// Options controlling sketch generation.
struct SketchGenOptions {
  /// Maximum number of non-terminal tables a candidate chain may include
  /// beyond the Steiner terminals (2 reproduces the overview example's
  /// chain sets).
  unsigned SteinerSlack = 2;

  /// Cap on the number of image-table combinations explored when a required
  /// attribute maps to several target tables.
  size_t MaxTerminalCombos = 64;

  /// Maximum number of disconnected components an insert's target tables may
  /// span (the Fig. 9/10 multi-chain insert composition Ω1 ; ... ; Ωn).
  size_t MaxInsertComponents = 3;

  /// Delete table-list holes enumerate non-empty subsets of the union of
  /// candidate-chain tables; when that union exceeds this bound, subsets
  /// are limited to MaxTableListSize tables to keep the domain finite.
  size_t MaxTableListUnion = 16;
  size_t MaxTableListSize = 4;
};

/// Generates the sketch of \p P over \p Target under \p Phi, or nullopt if
/// \p Phi cannot support some statement.
std::optional<Sketch> generateSketch(const Program &P, const Schema &Source,
                                     const Schema &Target,
                                     const ValueCorrespondence &Phi,
                                     const SketchGenOptions &Opts = {});

} // namespace migrator

#endif // MIGRATOR_SKETCH_SKETCHGEN_H
