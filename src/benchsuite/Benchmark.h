//===- benchsuite/Benchmark.h - The 20-benchmark corpus -----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The benchmark corpus of Table 1: ten textbook schema-refactoring
/// scenarios (hand-written to match the paper's per-benchmark descriptions
/// and schema/function statistics) and ten real-world-scale benchmarks
/// (generated synthetically at the sizes the paper reports for its GitHub
/// Rails applications; see Generator.h and DESIGN.md for the substitution
/// rationale).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_BENCHSUITE_BENCHMARK_H
#define MIGRATOR_BENCHSUITE_BENCHMARK_H

#include "ast/Program.h"
#include "relational/Schema.h"

#include <string>
#include <vector>

namespace migrator {

/// One schema-refactoring benchmark.
struct Benchmark {
  std::string Name;        ///< E.g. "Oracle-1", "visible-closet".
  std::string Description; ///< Table 1's Description column.
  std::string Category;    ///< "textbook" or "real-world".
  Schema Source;
  Schema Target;
  Program Prog;

  size_t numFuncs() const { return Prog.getNumFunctions(); }
};

/// Names of the ten textbook benchmarks, in Table 1 order.
std::vector<std::string> textbookBenchmarkNames();

/// Names of the ten real-world-scale benchmarks, in Table 1 order.
std::vector<std::string> realWorldBenchmarkNames();

/// All twenty, textbook first.
std::vector<std::string> allBenchmarkNames();

/// Loads benchmark \p Name (which must be one of the registered names).
/// Textbook benchmarks are parsed from embedded surface syntax; real-world
/// benchmarks are produced by the deterministic generator.
Benchmark loadBenchmark(const std::string &Name);

} // namespace migrator

#endif // MIGRATOR_BENCHSUITE_BENCHMARK_H
