//===- benchsuite/Textbook.cpp - Textbook benchmark sources -----------------===//
//
// The ten textbook benchmarks of Table 1, hand-written to match the paper's
// per-benchmark refactoring kind and schema/function statistics:
//
//   Oracle-1  merge tables            4 funcs  2T/8A  -> 1T/6A
//   Oracle-2  split tables           19 funcs  3T/17A -> 7T/25A
//   Ambler-1  split tables           10 funcs  1T/6A  -> 2T/7A
//   Ambler-2  merge tables           10 funcs  2T/7A  -> 1T/6A
//   Ambler-3  move attrs              7 funcs  2T/5A  -> 2T/5A
//   Ambler-4  rename attrs            5 funcs  1T/2A  -> 1T/2A
//   Ambler-5  add associative table   8 funcs  2T/5A  -> 3T/6A
//   Ambler-6  replace keys           10 funcs  2T/9A  -> 2T/8A
//   Ambler-7  add attrs               8 funcs  2T/7A  -> 2T/8A
//   Ambler-8  denormalization        14 funcs  3T/10A -> 3T/13A
//
//===----------------------------------------------------------------------===//

#include "benchsuite/TextbookDefs.h"

#include <array>
#include <cassert>

using namespace migrator;
using namespace migrator::benchsuite;

namespace {

// Merge a 1-to-1 detail table into its owner. The remarkContent column is
// dropped by the refactoring (it is write-only in the program).
const char *Oracle1 = R"(
schema Src {
  table Person(pid: int, firstName: string, lastName: string, phone: string)
  table PersonDetail(pid: int, street: string, city: string, remarkContent: string)
}
schema Tgt {
  table Person(pid: int, firstName: string, lastName: string, phone: string,
               street: string, city: string)
}
program App on Src {
  update addPerson(p: int, fn: string, ln: string, ph: string, st: string,
                   ct: string, rm: string) {
    insert into Person join PersonDetail values (pid: p, firstName: fn,
      lastName: ln, phone: ph, street: st, city: ct, remarkContent: rm);
  }
  update removePerson(p: int) {
    delete [Person, PersonDetail] from Person join PersonDetail where pid = p;
  }
  query getPerson(p: int) {
    select firstName, lastName, phone from Person where pid = p;
  }
  query getAddress(p: int) {
    select street, city from PersonDetail where pid = p;
  }
}
)";

// Split products and customers into detail/supplier/address/contact tables.
const char *Oracle2 = R"(
schema Src {
  table Product(prodId: int, prodName: string, price: int, descText: string,
                imgBytes: binary, supplierName: string, supplierPhone: string)
  table Customer(custId: int, custName: string, email: string, street: string,
                 city: string, zipCode: string)
  table Orders(orderId: int, prodId: int, custId: int, quantity: int)
}
schema Tgt {
  table Product(prodId: int, prodName: string, price: int, detailRef: int,
                supplierRef: int)
  table ProductDetail(detailRef: int, descText: string, imgBytes: binary)
  table Supplier(supplierRef: int, supplierName: string, supplierPhone: string)
  table Customer(custId: int, custName: string, addrRef: int, contactRef: int)
  table Address(addrRef: int, street: string, city: string, zipCode: string)
  table Contact(contactRef: int, email: string)
  table Orders(orderId: int, prodId: int, custId: int, quantity: int)
}
program App on Src {
  update addProduct(p: int, n: string, pr: int, d: string, img: binary,
                    sn: string, sp: string) {
    insert into Product values (prodId: p, prodName: n, price: pr,
      descText: d, imgBytes: img, supplierName: sn, supplierPhone: sp);
  }
  update deleteProduct(p: int) {
    delete from Product where prodId = p;
  }
  query getProduct(p: int) {
    select prodName, price from Product where prodId = p;
  }
  query getProductDetail(p: int) {
    select descText, imgBytes from Product where prodId = p;
  }
  query getSupplierOf(p: int) {
    select supplierName, supplierPhone from Product where prodId = p;
  }
  update setPrice(p: int, v: int) {
    update Product set price = v where prodId = p;
  }
  query findByName(n: string) {
    select prodId, price from Product where prodName = n;
  }
  update addCustomer(c: int, n: string, e: string, st: string, ci: string,
                     z: string) {
    insert into Customer values (custId: c, custName: n, email: e, street: st,
      city: ci, zipCode: z);
  }
  update deleteCustomer(c: int) {
    delete from Customer where custId = c;
  }
  query getCustomer(c: int) {
    select custName from Customer where custId = c;
  }
  query getCustomerAddress(c: int) {
    select street, city, zipCode from Customer where custId = c;
  }
  query getCustomerEmail(c: int) {
    select email from Customer where custId = c;
  }
  update setEmail(c: int, e: string) {
    update Customer set email = e where custId = c;
  }
  query findByCity(ci: string) {
    select custName from Customer where city = ci;
  }
  update addOrder(o: int, p: int, c: int, q: int) {
    insert into Orders values (orderId: o, prodId: p, custId: c, quantity: q);
  }
  update deleteOrder(o: int) {
    delete from Orders where orderId = o;
  }
  query getOrder(o: int) {
    select prodId, custId, quantity from Orders where orderId = o;
  }
  query ordersOfCustomer(c: int) {
    select orderId, quantity from Orders where custId = c;
  }
  query orderedProducts(c: int) {
    select prodName from Product join Orders where custId = c;
  }
}
)";

// Split the customer's address columns into a dedicated table. The split
// tables link through a fresh surrogate key (addrRef): linking on custId
// would not preserve equivalence under bag semantics, since duplicate
// custId inserts would multiply join rows in the target only. This costs
// one attribute over the paper's reported target size (8 vs 7).
const char *Ambler1 = R"(
schema Src {
  table Customer(custId: int, custName: string, phone: string, street: string,
                 city: string, zipCode: string)
}
schema Tgt {
  table Customer(custId: int, custName: string, phone: string, addrRef: int)
  table Address(addrRef: int, street: string, city: string, zipCode: string)
}
program App on Src {
  update addCustomer(c: int, n: string, ph: string, st: string, ci: string,
                     z: string) {
    insert into Customer values (custId: c, custName: n, phone: ph,
      street: st, city: ci, zipCode: z);
  }
  update deleteCustomer(c: int) {
    delete from Customer where custId = c;
  }
  query getCustomer(c: int) {
    select custName, phone from Customer where custId = c;
  }
  query getAddress(c: int) {
    select street, city, zipCode from Customer where custId = c;
  }
  query findByCity(ci: string) {
    select custName from Customer where city = ci;
  }
  query findByZip(z: string) {
    select custName from Customer where zipCode = z;
  }
  update setPhone(c: int, ph: string) {
    update Customer set phone = ph where custId = c;
  }
  update setStreet(c: int, st: string) {
    update Customer set street = st where custId = c;
  }
  query getPhoneByName(n: string) {
    select phone from Customer where custName = n;
  }
  update deleteByCity(ci: string) {
    delete from Customer where city = ci;
  }
}
)";

// Merge the 1-to-1 account-info table into the account table. The source
// queries read each table directly (a source-side join over the shared
// acctId would multiply rows under duplicate inserts in a way the merged
// table cannot reproduce).
const char *Ambler2 = R"(
schema Src {
  table Account(acctId: int, ownerName: string, balanceAmt: int)
  table AccountInfo(acctId: int, branchName: string, ibanText: string,
                    openedYear: int)
}
schema Tgt {
  table Account(acctId: int, ownerName: string, balanceAmt: int,
                branchName: string, ibanText: string, openedYear: int)
}
program App on Src {
  update openAccount(a: int, o: string, b: int, br: string, ib: string,
                     y: int) {
    insert into Account join AccountInfo values (acctId: a, ownerName: o,
      balanceAmt: b, branchName: br, ibanText: ib, openedYear: y);
  }
  update closeAccount(a: int) {
    delete [Account, AccountInfo] from Account join AccountInfo
      where acctId = a;
  }
  query getOwner(a: int) {
    select ownerName from Account where acctId = a;
  }
  query getBalance(a: int) {
    select balanceAmt from Account where acctId = a;
  }
  update setBalance(a: int, b: int) {
    update Account set balanceAmt = b where acctId = a;
  }
  query getBranch(a: int) {
    select branchName from AccountInfo where acctId = a;
  }
  query getIban(a: int) {
    select ibanText from AccountInfo where acctId = a;
  }
  update setBranch(a: int, br: string) {
    update AccountInfo set branchName = br where acctId = a;
  }
  query findByOwner(o: string) {
    select acctId from Account where ownerName = o;
  }
  query findByIban(ib: string) {
    select acctId from AccountInfo where ibanText = ib;
  }
}
)";

// Move the room number from the employee table to the office table.
const char *Ambler3 = R"(
schema Src {
  table Employee(empId: int, empName: string, roomNo: int)
  table Office(empId: int, floorNo: int)
}
schema Tgt {
  table Employee(empId: int, empName: string)
  table Office(empId: int, floorNo: int, roomNo: int)
}
program App on Src {
  update addStaff(e: int, n: string, r: int, f: int) {
    insert into Employee join Office values (empId: e, empName: n, roomNo: r,
      floorNo: f);
  }
  update deleteStaff(e: int) {
    delete [Employee, Office] from Employee join Office where empId = e;
  }
  query getName(e: int) {
    select empName from Employee where empId = e;
  }
  query getRoom(e: int) {
    select roomNo from Employee where empId = e;
  }
  query getFloor(e: int) {
    select floorNo from Office where empId = e;
  }
  update setRoom(e: int, r: int) {
    update Employee set roomNo = r where empId = e;
  }
  update setFloor(e: int, f: int) {
    update Office set floorNo = f where empId = e;
  }
}
)";

// Rename the title column.
const char *Ambler4 = R"(
schema Src {
  table Task(taskId: int, taskTitle: string)
}
schema Tgt {
  table Task(taskId: int, taskTitleText: string)
}
program App on Src {
  update addTask(t: int, ti: string) {
    insert into Task values (taskId: t, taskTitle: ti);
  }
  update deleteTask(t: int) {
    delete from Task where taskId = t;
  }
  query getTitle(t: int) {
    select taskTitle from Task where taskId = t;
  }
  update setTitle(t: int, ti: string) {
    update Task set taskTitle = ti where taskId = t;
  }
  query findByTitle(ti: string) {
    select taskId from Task where taskTitle = ti;
  }
}
)";

// Introduce an associative table for the book-author relationship. The
// association links books through a fresh surrogate (bookLink) rather than
// the caller-supplied bookId, preserving equivalence under duplicate-key
// inserts; this costs one attribute over the paper's reported target size
// (7 vs 6).
const char *Ambler5 = R"(
schema Src {
  table Author(authorId: int, authorName: string)
  table Book(bookId: int, title: string, authorId: int)
}
schema Tgt {
  table Author(authorId: int, authorName: string)
  table Book(bookLink: int, bookId: int, title: string)
  table Writes(bookLink: int, authorId: int)
}
program App on Src {
  update addAuthor(a: int, n: string) {
    insert into Author values (authorId: a, authorName: n);
  }
  update deleteAuthor(a: int) {
    delete from Author where authorId = a;
  }
  query getAuthorName(a: int) {
    select authorName from Author where authorId = a;
  }
  update addBook(b: int, t: string, a: int) {
    insert into Book values (bookId: b, title: t, authorId: a);
  }
  update deleteBook(b: int) {
    delete from Book where bookId = b;
  }
  query getTitle(b: int) {
    select title from Book where bookId = b;
  }
  query booksOfAuthor(a: int) {
    select title from Book where authorId = a;
  }
  query authorOfBook(b: int) {
    select authorName from Author join Book where bookId = b;
  }
}
)";

// Replace the surrogate user key with the natural username key. The
// userKey column is a pure surrogate: it is never mentioned by the program
// (the chain insert generates it), so the target drops it entirely.
const char *Ambler6 = R"(
schema Src {
  table UserAcct(userKey: int, username: string, realName: string,
                 quotaMb: int)
  table UserPrefs(userKey: int, themeName: string, langCode: string,
                  fontSize: int, newsletter: bool)
}
schema Tgt {
  table UserAcct(username: string, realName: string, quotaMb: int)
  table UserPrefs(username: string, themeName: string, langCode: string,
                  fontSize: int, newsletter: bool)
}
program App on Src {
  update registerUser(u: string, rn: string, q: int, th: string, lc: string,
                      fs: int, nl: bool) {
    insert into UserAcct join UserPrefs values (username: u, realName: rn,
      quotaMb: q, themeName: th, langCode: lc, fontSize: fs, newsletter: nl);
  }
  update deleteUser(u: string) {
    delete [UserAcct, UserPrefs] from UserAcct join UserPrefs
      where username = u;
  }
  query getRealName(u: string) {
    select realName from UserAcct where username = u;
  }
  query getQuota(u: string) {
    select quotaMb from UserAcct where username = u;
  }
  update setQuota(u: string, q: int) {
    update UserAcct set quotaMb = q where username = u;
  }
  query getTheme(u: string) {
    select themeName from UserAcct join UserPrefs where username = u;
  }
  update setTheme(u: string, th: string) {
    update UserAcct join UserPrefs set themeName = th where username = u;
  }
  query getLang(u: string) {
    select langCode from UserAcct join UserPrefs where username = u;
  }
  query getFontSize(u: string) {
    select fontSize from UserAcct join UserPrefs where username = u;
  }
  query getNewsletter(u: string) {
    select newsletter from UserAcct join UserPrefs where username = u;
  }
}
)";

// Add a verified-purchase flag to reviews (filled with fresh values by the
// migrated inserts; never read).
const char *Ambler7 = R"(
schema Src {
  table Movie(movieId: int, movieTitle: string, releaseYear: int)
  table Review(reviewId: int, movieId: int, stars: int, reviewBody: string)
}
schema Tgt {
  table Movie(movieId: int, movieTitle: string, releaseYear: int)
  table Review(reviewId: int, movieId: int, stars: int, reviewBody: string,
               verifiedPurchase: bool)
}
program App on Src {
  update addMovie(m: int, t: string, y: int) {
    insert into Movie values (movieId: m, movieTitle: t, releaseYear: y);
  }
  update deleteMovie(m: int) {
    delete from Movie where movieId = m;
  }
  query getMovie(m: int) {
    select movieTitle, releaseYear from Movie where movieId = m;
  }
  update addReview(r: int, m: int, s: int, b: string) {
    insert into Review values (reviewId: r, movieId: m, stars: s,
      reviewBody: b);
  }
  update deleteReview(r: int) {
    delete from Review where reviewId = r;
  }
  query getReview(r: int) {
    select stars, reviewBody from Review where reviewId = r;
  }
  query reviewsForMovie(m: int) {
    select stars from Review where movieId = m;
  }
  update setStars(r: int, s: int) {
    update Review set stars = s where reviewId = r;
  }
}
)";

// Denormalize purchases with cached name/price copies. The copies are
// write-never/read-never from the program's viewpoint, so the migrated
// program fills them with fresh values and keeps reading the owning tables.
const char *Ambler8 = R"(
schema Src {
  table Customer(custId: int, custName: string)
  table Product(prodId: int, prodName: string, priceAmt: int)
  table Purchase(purchId: int, custId: int, prodId: int, amount: int,
                 dayNo: int)
}
schema Tgt {
  table Customer(custId: int, custName: string)
  table Product(prodId: int, prodName: string, priceAmt: int)
  table Purchase(purchId: int, custId: int, prodId: int, amount: int,
                 dayNo: int, buyerNameCopy: string, itemNameCopy: string,
                 priceCopy: int)
}
program App on Src {
  update addCustomer(c: int, n: string) {
    insert into Customer values (custId: c, custName: n);
  }
  update deleteCustomer(c: int) {
    delete from Customer where custId = c;
  }
  query getCustomerName(c: int) {
    select custName from Customer where custId = c;
  }
  update addProduct(p: int, n: string, pr: int) {
    insert into Product values (prodId: p, prodName: n, priceAmt: pr);
  }
  update deleteProduct(p: int) {
    delete from Product where prodId = p;
  }
  query getProductName(p: int) {
    select prodName from Product where prodId = p;
  }
  query getPrice(p: int) {
    select priceAmt from Product where prodId = p;
  }
  update setPrice(p: int, pr: int) {
    update Product set priceAmt = pr where prodId = p;
  }
  update addPurchase(u: int, c: int, p: int, a: int, d: int) {
    insert into Purchase values (purchId: u, custId: c, prodId: p, amount: a,
      dayNo: d);
  }
  update deletePurchase(u: int) {
    delete from Purchase where purchId = u;
  }
  query getPurchase(u: int) {
    select amount, dayNo from Purchase where purchId = u;
  }
  query purchasesOfCustomer(c: int) {
    select amount from Purchase where custId = c;
  }
  query spendOnProduct(p: int) {
    select amount from Purchase where prodId = p;
  }
  update setAmount(u: int, a: int) {
    update Purchase set amount = a where purchId = u;
  }
}
)";

const std::array<TextbookDef, 10> Defs = {{
    {"Oracle-1", "Merge tables", Oracle1},
    {"Oracle-2", "Split tables", Oracle2},
    {"Ambler-1", "Split tables", Ambler1},
    {"Ambler-2", "Merge tables", Ambler2},
    {"Ambler-3", "Move attrs", Ambler3},
    {"Ambler-4", "Rename attrs", Ambler4},
    {"Ambler-5", "Add associative tables", Ambler5},
    {"Ambler-6", "Replace keys", Ambler6},
    {"Ambler-7", "Add attrs", Ambler7},
    {"Ambler-8", "Denormalization", Ambler8},
}};

} // namespace

const TextbookDef *
migrator::benchsuite::findTextbookDef(const std::string &Name) {
  for (const TextbookDef &D : Defs)
    if (Name == D.Name)
      return &D;
  return nullptr;
}

size_t migrator::benchsuite::numTextbookDefs() { return Defs.size(); }

const TextbookDef &migrator::benchsuite::textbookDefAt(size_t Index) {
  assert(Index < Defs.size() && "textbook benchmark index out of range");
  return Defs[Index];
}
