//===- benchsuite/TextbookDefs.h - Textbook benchmark sources -----*- C++ -*-===//
//
// Internal header of migrator_benchsuite: the embedded surface-syntax
// sources of the ten textbook benchmarks.
//
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_BENCHSUITE_TEXTBOOKDEFS_H
#define MIGRATOR_BENCHSUITE_TEXTBOOKDEFS_H

#include <string>

namespace migrator {
namespace benchsuite {

/// One embedded textbook benchmark: its Table 1 row identity plus the
/// surface syntax of both schemas and the source program.
struct TextbookDef {
  const char *Name;
  const char *Description;
  const char *Text; ///< Contains schemas `Src`, `Tgt`, and program `App`.
};

/// Returns the definition for \p Name, or nullptr.
const TextbookDef *findTextbookDef(const std::string &Name);

/// Number of textbook definitions (10).
size_t numTextbookDefs();

/// Definition by index, in Table 1 order.
const TextbookDef &textbookDefAt(size_t Index);

} // namespace benchsuite
} // namespace migrator

#endif // MIGRATOR_BENCHSUITE_TEXTBOOKDEFS_H
