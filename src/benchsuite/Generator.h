//===- benchsuite/Generator.h - Synthetic benchmark generator -----*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic generator of real-world-scale benchmarks. The paper's ten
/// real-world benchmarks are transaction programs extracted from Rails
/// applications on GitHub; those sources are not redistributable, so this
/// generator builds synthetic workloads with the same *shape*: per-table
/// CRUD transactions plus join queries over foreign-key-linked tables, at
/// the exact function/table/attribute counts Table 1 reports, refactored by
/// the same kinds of schema changes the paper's Description column names
/// (split / merge / move / rename / add attributes).
///
/// Generation is fully deterministic: the same spec yields the same
/// benchmark in every build and run.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_BENCHSUITE_GENERATOR_H
#define MIGRATOR_BENCHSUITE_GENERATOR_H

#include "benchsuite/Benchmark.h"

#include <cstdint>
#include <string>

namespace migrator {

/// Parameters of one generated benchmark.
struct GenSpec {
  std::string Name;
  std::string Description;

  // --- Source shape (matched exactly) ---
  unsigned NumTables = 4;
  unsigned NumAttrs = 20;  ///< Total attributes, including keys.
  unsigned NumFuncs = 20;
  unsigned SatellitePairs = 0; ///< Leading tables organized as 1-1 pairs.
  bool WithForeignKeys = true; ///< Link consecutive standalone tables.

  // --- Target refactoring ops ---
  unsigned Splits = 0;         ///< Tables split into main + "<T>Ext".
  unsigned SplitAttrs = 3;     ///< Data attributes moved per split.
  /// Shared splits: two tables move one (binary) column each into a single
  /// shared lookup table, linked by a fresh surrogate key — the overview
  /// example's Picture pattern. This creates alternative join paths in the
  /// target join graph and hence non-trivial sketch spaces.
  unsigned SharedSplits = 0;
  unsigned Merges = 0;         ///< Satellite pairs merged into one table.
  unsigned MergeDropAttrs = 0; ///< Write-only attrs dropped per merge.
  unsigned MovedAttrs = 0;     ///< Satellite pairs with one moved attr.
  unsigned RenamedAttrs = 0;   ///< Data attrs renamed ("<a>Fld").
  unsigned RenamedTables = 0;  ///< Tables renamed ("<T>Tbl").
  unsigned AddedAttrs = 0;     ///< Fresh target-only attrs.
};

/// Generates the benchmark described by \p Spec. The source schema has
/// exactly Spec.NumTables tables, Spec.NumAttrs attributes, and the program
/// exactly Spec.NumFuncs functions; the target schema is the source with
/// the requested refactorings applied.
Benchmark generateBenchmark(const GenSpec &Spec);

} // namespace migrator

#endif // MIGRATOR_BENCHSUITE_GENERATOR_H
