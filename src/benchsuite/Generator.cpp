//===- benchsuite/Generator.cpp - Synthetic benchmark generator -------------===//

#include "benchsuite/Generator.h"

#include "ast/Analysis.h"

#include <algorithm>
#include <cassert>
#include <cctype>

using namespace migrator;

namespace {

/// Fixed table-name pool (26 entries, enough for the largest benchmark).
const char *NamePool[] = {
    "users",    "posts",    "comments", "photos",  "albums",   "tags",
    "orders",   "items",    "carts",    "reviews", "events",   "venues",
    "tickets",  "profiles", "groups",   "messages", "friends", "likes",
    "pages",    "sessions", "plans",    "invoices", "coupons", "shops",
    "brands",   "stocks"};

ValueType dataType(unsigned J) {
  switch (J % 4) {
  case 0:
    return ValueType::String;
  case 1:
    return ValueType::Int;
  case 2:
    return ValueType::String;
  default:
    return ValueType::Binary;
  }
}

/// One source table under construction.
struct TableInfo {
  std::string Name;
  std::string Pk;                 ///< Key attribute (shared for satellites).
  std::vector<Attribute> Data;    ///< Data attributes.
  std::string Fk;                 ///< Foreign-key attribute name ("" = none).
  std::string FkTable;            ///< The table Fk points at.
  bool IsSatellite = false;
  int PairIndex = -1;             ///< For pair members: the pair number.
};

/// Builder for the generated program.
class ProgramBuilder {
public:
  explicit ProgramBuilder(std::vector<TableInfo> Tables)
      : Tables(std::move(Tables)) {}

  const std::vector<TableInfo> &tables() const { return Tables; }

  /// Emits function number \p PatternIdx for unit \p Unit (a pair index or a
  /// standalone table index). Returns false when the unit has no further
  /// patterns.
  bool emit(Program &P, const std::vector<size_t> &Unit, size_t PatternIdx);

private:
  std::vector<TableInfo> Tables;

  static Operand param(const std::string &Name) { return Operand::param(Name); }

  std::string funcName(const std::string &Kind, const std::string &Table,
                       unsigned K = ~0u) {
    std::string N = Kind + "_" + Table;
    if (K != ~0u)
      N += "_" + std::to_string(K);
    return N;
  }

  // --- standalone patterns ---
  bool emitStandalone(Program &P, const TableInfo &T, size_t Idx);
  // --- pair patterns ---
  bool emitPair(Program &P, const TableInfo &M, const TableInfo &S,
                size_t Idx);
};

bool ProgramBuilder::emit(Program &P, const std::vector<size_t> &Unit,
                          size_t PatternIdx) {
  if (Unit.size() == 2)
    return emitPair(P, Tables[Unit[0]], Tables[Unit[1]], PatternIdx);
  return emitStandalone(P, Tables[Unit[0]], PatternIdx);
}

bool ProgramBuilder::emitStandalone(Program &P, const TableInfo &T,
                                    size_t Idx) {
  const std::string &Tn = T.Name;
  JoinChain Chain = JoinChain::table(Tn);
  size_t D = T.Data.size();

  auto PkRef = [&T]() { return AttrRef::unqualified(T.Pk); };
  auto DataRef = [&T](unsigned K) {
    return AttrRef::unqualified(T.Data[K].Name);
  };

  switch (Idx) {
  case 0: { // add: insert the full row.
    std::vector<Param> Params = {{"k", ValueType::Int}};
    std::vector<InsertStmt::Assignment> Values = {{PkRef(), param("k")}};
    if (!T.Fk.empty()) {
      Params.push_back({"fk", ValueType::Int});
      Values.emplace_back(AttrRef::unqualified(T.Fk), param("fk"));
    }
    for (unsigned K = 0; K < D; ++K) {
      std::string Pn = "v" + std::to_string(K);
      Params.push_back({Pn, T.Data[K].Type});
      Values.emplace_back(DataRef(K), param(Pn));
    }
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<InsertStmt>(Chain, std::move(Values)));
    P.addFunction(Function::makeUpdate(funcName("add", Tn), std::move(Params),
                                       std::move(Body)));
    return true;
  }
  case 1: { // get: first two data attributes by key.
    std::vector<AttrRef> Proj = {DataRef(0)};
    if (D >= 2)
      Proj.push_back(DataRef(1));
    P.addFunction(Function::makeQuery(
        funcName("get", Tn), {{"k", ValueType::Int}},
        makeSelect(std::move(Proj), Chain,
                   makeCmp(PkRef(), CmpOp::Eq, param("k")))));
    return true;
  }
  case 2: { // del by key.
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<DeleteStmt>(
        std::vector<std::string>{Tn}, Chain,
        makeCmp(PkRef(), CmpOp::Eq, param("k"))));
    P.addFunction(Function::makeUpdate(
        funcName("del", Tn), {{"k", ValueType::Int}}, std::move(Body)));
    return true;
  }
  case 3: { // set first data attribute by key.
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<UpdateStmt>(
        Chain, makeCmp(PkRef(), CmpOp::Eq, param("k")), DataRef(0),
        param("v")));
    P.addFunction(Function::makeUpdate(
        funcName("set", Tn, 0),
        {{"k", ValueType::Int}, {"v", T.Data[0].Type}}, std::move(Body)));
    return true;
  }
  case 4: { // find by second data attribute.
    if (D < 2)
      return true; // Pattern inapplicable; slot intentionally skipped.
    P.addFunction(Function::makeQuery(
        funcName("find", Tn, 1), {{"v", T.Data[1].Type}},
        makeSelect({PkRef(), DataRef(0)}, Chain,
                   makeCmp(DataRef(1), CmpOp::Eq, param("v")))));
    return true;
  }
  case 5: { // join query through the foreign key.
    if (T.Fk.empty())
      return true;
    const TableInfo *Other = nullptr;
    for (const TableInfo &O : Tables)
      if (O.Name == T.FkTable)
        Other = &O;
    assert(Other && "foreign key target missing");
    JoinChain J = JoinChain::natural({Other->Name, Tn});
    P.addFunction(Function::makeQuery(
        funcName("joined", Tn), {{"k", ValueType::Int}},
        makeSelect({DataRef(0), AttrRef::unqualified(Other->Data[0].Name)}, J,
                   makeCmp(AttrRef::unqualified(Other->Pk), CmpOp::Eq,
                           param("k")))));
    return true;
  }
  case 6: { // delete by first data attribute.
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<DeleteStmt>(
        std::vector<std::string>{Tn}, Chain,
        makeCmp(DataRef(0), CmpOp::Eq, param("v"))));
    P.addFunction(Function::makeUpdate(
        funcName("delBy", Tn, 0), {{"v", T.Data[0].Type}}, std::move(Body)));
    return true;
  }
  case 7: { // unconditional scan of the first data attribute.
    P.addFunction(Function::makeQuery(
        funcName("scan", Tn), {{"k", ValueType::Int}},
        makeSelect({DataRef(0)}, Chain,
                   makeCmp(PkRef(), CmpOp::Ne, param("k")))));
    return true;
  }
  default:
    break;
  }

  // Extended patterns over the remaining data attributes: get/set/find per
  // attribute index starting at 2.
  size_t Ext = Idx - 8;
  unsigned K = static_cast<unsigned>(2 + Ext / 3);
  if (K >= D)
    return false; // Unit exhausted.
  switch (Ext % 3) {
  case 0:
    P.addFunction(Function::makeQuery(
        funcName("get", Tn, K), {{"k", ValueType::Int}},
        makeSelect({DataRef(K)}, Chain,
                   makeCmp(PkRef(), CmpOp::Eq, param("k")))));
    return true;
  case 1: {
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<UpdateStmt>(
        Chain, makeCmp(PkRef(), CmpOp::Eq, param("k")), DataRef(K),
        param("v")));
    P.addFunction(Function::makeUpdate(
        funcName("set", Tn, K),
        {{"k", ValueType::Int}, {"v", T.Data[K].Type}}, std::move(Body)));
    return true;
  }
  default:
    P.addFunction(Function::makeQuery(
        funcName("find", Tn, K), {{"v", T.Data[K].Type}},
        makeSelect({DataRef(0)}, Chain,
                   makeCmp(DataRef(K), CmpOp::Eq, param("v")))));
    return true;
  }
}

bool ProgramBuilder::emitPair(Program &P, const TableInfo &M,
                              const TableInfo &S, size_t Idx) {
  JoinChain Pair = JoinChain::natural({M.Name, S.Name});
  JoinChain MC = JoinChain::table(M.Name);
  JoinChain SC = JoinChain::table(S.Name);
  auto PkRef = [&M]() { return AttrRef::unqualified(M.Pk); };
  auto MRef = [&M](unsigned K) { return AttrRef::unqualified(M.Data[K].Name); };
  auto SRef = [&S](unsigned K) { return AttrRef::unqualified(S.Data[K].Name); };

  switch (Idx) {
  case 0: { // addPair: chain insert into both tables.
    std::vector<Param> Params = {{"k", ValueType::Int}};
    std::vector<InsertStmt::Assignment> Values = {{PkRef(), param("k")}};
    for (unsigned K = 0; K < M.Data.size(); ++K) {
      std::string Pn = "m" + std::to_string(K);
      Params.push_back({Pn, M.Data[K].Type});
      Values.emplace_back(MRef(K), param(Pn));
    }
    for (unsigned K = 0; K < S.Data.size(); ++K) {
      std::string Pn = "s" + std::to_string(K);
      Params.push_back({Pn, S.Data[K].Type});
      Values.emplace_back(SRef(K), param(Pn));
    }
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<InsertStmt>(Pair, std::move(Values)));
    P.addFunction(Function::makeUpdate(funcName("add", M.Name),
                                       std::move(Params), std::move(Body)));
    return true;
  }
  case 1: // getM
    P.addFunction(Function::makeQuery(
        funcName("get", M.Name), {{"k", ValueType::Int}},
        makeSelect({MRef(0), MRef(1)}, MC,
                   makeCmp(PkRef(), CmpOp::Eq, param("k")))));
    return true;
  case 2: // getS
    P.addFunction(Function::makeQuery(
        funcName("get", S.Name), {{"k", ValueType::Int}},
        makeSelect({SRef(0), SRef(1)}, SC,
                   makeCmp(PkRef(), CmpOp::Eq, param("k")))));
    return true;
  case 3: { // delPair
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<DeleteStmt>(
        std::vector<std::string>{M.Name, S.Name}, Pair,
        makeCmp(PkRef(), CmpOp::Eq, param("k"))));
    P.addFunction(Function::makeUpdate(
        funcName("del", M.Name), {{"k", ValueType::Int}}, std::move(Body)));
    return true;
  }
  case 4: { // getMLast: reads the attribute a "move" refactoring relocates.
    if (M.Data.size() < 3)
      return true;
    unsigned K = static_cast<unsigned>(M.Data.size() - 1);
    P.addFunction(Function::makeQuery(
        funcName("get", M.Name, K), {{"k", ValueType::Int}},
        makeSelect({MRef(K)}, MC, makeCmp(PkRef(), CmpOp::Eq, param("k")))));
    return true;
  }
  case 5: { // setS0
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<UpdateStmt>(
        SC, makeCmp(PkRef(), CmpOp::Eq, param("k")), SRef(0), param("v")));
    P.addFunction(Function::makeUpdate(
        funcName("set", S.Name, 0),
        {{"k", ValueType::Int}, {"v", S.Data[0].Type}}, std::move(Body)));
    return true;
  }
  case 6: // findM
    P.addFunction(Function::makeQuery(
        funcName("find", M.Name, 0), {{"v", M.Data[0].Type}},
        makeSelect({PkRef()}, MC, makeCmp(MRef(0), CmpOp::Eq, param("v")))));
    return true;
  case 7: { // setM0
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<UpdateStmt>(
        MC, makeCmp(PkRef(), CmpOp::Eq, param("k")), MRef(0), param("v")));
    P.addFunction(Function::makeUpdate(
        funcName("set", M.Name, 0),
        {{"k", ValueType::Int}, {"v", M.Data[0].Type}}, std::move(Body)));
    return true;
  }
  case 8: // findS0: lookup by the first satellite attribute. (A join query
          // over the pair would key on the caller-supplied id and so would
          // not survive a merge refactoring under bag semantics.)
    P.addFunction(Function::makeQuery(
        funcName("find", S.Name, 0), {{"v", S.Data[0].Type}},
        makeSelect({PkRef(), SRef(1)}, SC,
                   makeCmp(SRef(0), CmpOp::Eq, param("v")))));
    return true;
  default:
    break;
  }

  // Extended pair patterns: get/set further satellite attributes. Capped at
  // the first three satellite attributes so that merge refactorings may drop
  // trailing (write-only) attributes without losing equivalence.
  size_t Ext = Idx - 9;
  unsigned K = static_cast<unsigned>(1 + Ext / 2);
  if (K >= S.Data.size() || K >= 3)
    return false;
  if (Ext % 2 == 0) {
    P.addFunction(Function::makeQuery(
        funcName("get", S.Name, K), {{"k", ValueType::Int}},
        makeSelect({SRef(K)}, SC, makeCmp(PkRef(), CmpOp::Eq, param("k")))));
  } else {
    std::vector<StmtPtr> Body;
    Body.push_back(std::make_unique<UpdateStmt>(
        SC, makeCmp(PkRef(), CmpOp::Eq, param("k")), SRef(K), param("v")));
    P.addFunction(Function::makeUpdate(
        funcName("set", S.Name, K),
        {{"k", ValueType::Int}, {"v", S.Data[K].Type}}, std::move(Body)));
  }
  return true;
}

} // namespace

Benchmark migrator::generateBenchmark(const GenSpec &Spec) {
  assert(Spec.NumTables >= 2 * Spec.SatellitePairs + 1 &&
         "not enough tables for the requested satellite pairs");
  assert(Spec.NumTables <= std::size(NamePool) + Spec.SatellitePairs &&
         "table-name pool exhausted");

  // --- Lay out the source tables ---
  std::vector<TableInfo> Tables;
  unsigned PoolIdx = 0;
  for (unsigned P = 0; P < Spec.SatellitePairs; ++P) {
    std::string Main = NamePool[PoolIdx++];
    TableInfo M;
    M.Name = Main;
    M.Pk = Main + "Id";
    M.PairIndex = static_cast<int>(P);
    Tables.push_back(M);
    TableInfo S;
    S.Name = Main + "Info";
    S.Pk = M.Pk; // Shared key: the 1-1 link.
    S.IsSatellite = true;
    S.PairIndex = static_cast<int>(P);
    Tables.push_back(S);
  }
  std::vector<size_t> StandaloneIdx;
  while (Tables.size() < Spec.NumTables) {
    TableInfo T;
    T.Name = NamePool[PoolIdx++];
    T.Pk = T.Name + "Id";
    StandaloneIdx.push_back(Tables.size());
    Tables.push_back(T);
  }

  // Foreign keys between consecutive standalone tables (odd positions point
  // at their predecessor).
  unsigned NumFks = 0;
  if (Spec.WithForeignKeys)
    for (size_t I = 1; I < StandaloneIdx.size(); I += 2) {
      TableInfo &T = Tables[StandaloneIdx[I]];
      const TableInfo &Prev = Tables[StandaloneIdx[I - 1]];
      T.Fk = Prev.Pk;
      T.FkTable = Prev.Name;
      ++NumFks;
    }

  // Distribute data attributes: two per table minimum, remainder round-robin.
  assert(Spec.NumAttrs >= Spec.NumTables + NumFks + 2 * Spec.NumTables &&
         "attribute budget too small for the table count");
  unsigned DataTotal = Spec.NumAttrs - Spec.NumTables - NumFks;
  std::vector<unsigned> DataCount(Tables.size(), 2);
  unsigned Remaining = DataTotal - 2 * Spec.NumTables;
  for (size_t I = 0; Remaining > 0; I = (I + 1) % Tables.size(), --Remaining)
    ++DataCount[I];
  for (size_t I = 0; I < Tables.size(); ++I)
    for (unsigned J = 0; J < DataCount[I]; ++J)
      Tables[I].Data.push_back(
          {Tables[I].Name + "C" + std::to_string(J), dataType(J)});

  // Shared splits: pick pairs of standalone tables (largest first) and turn
  // their index-2 data attribute into a media column ("media<s>A"/"…B");
  // the target moves both into one shared lookup table. Index 2 is read by
  // the extended get/set/find patterns, so the migrated program must reach
  // it through the shared table's join.
  std::vector<std::pair<size_t, size_t>> SharedPairs;
  {
    std::vector<size_t> ByData = StandaloneIdx;
    std::stable_sort(ByData.begin(), ByData.end(),
                     [&Tables](size_t A, size_t B) {
                       return Tables[A].Data.size() > Tables[B].Data.size();
                     });
    // Pair tables must not be foreign-key partners: the shared link column
    // would otherwise leak into the natural join of their fk join queries,
    // which no migrated program could reproduce.
    auto FkAdjacent = [&Tables](size_t A, size_t B) {
      return Tables[A].FkTable == Tables[B].Name ||
             Tables[B].FkTable == Tables[A].Name;
    };
    std::vector<bool> Used(Tables.size(), false);
    for (unsigned Sh = 0; Sh < Spec.SharedSplits; ++Sh) {
      bool Found = false;
      for (size_t I = 0; I < ByData.size() && !Found; ++I) {
        size_t A = ByData[I];
        if (Used[A] || Tables[A].Data.size() < 4)
          continue;
        for (size_t J = I + 1; J < ByData.size() && !Found; ++J) {
          size_t B = ByData[J];
          if (Used[B] || Tables[B].Data.size() < 4 || FkAdjacent(A, B))
            continue;
          Used[A] = Used[B] = true;
          std::string Tag = "media" + std::to_string(Sh);
          Tables[A].Data[2] = {Tag + "A", ValueType::Binary};
          Tables[B].Data[2] = {Tag + "B", ValueType::Binary};
          SharedPairs.emplace_back(A, B);
          Found = true;
        }
      }
      if (!Found)
        break;
    }
  }

  // --- Build the source schema ---
  // Benchmark names may contain characters that are not legal identifiers
  // ("2030Club", "visible-closet"); schema names must reparse.
  std::string Ident = Spec.Name;
  for (char &C : Ident)
    if (C == '-')
      C = '_';
  if (!Ident.empty() && std::isdigit(static_cast<unsigned char>(Ident[0])))
    Ident.insert(Ident.begin(), 'B');
  Schema Source(Ident + "Src");
  for (const TableInfo &T : Tables) {
    std::vector<Attribute> Attrs;
    Attrs.push_back({T.Pk, ValueType::Int});
    if (!T.Fk.empty())
      Attrs.push_back({T.Fk, ValueType::Int});
    Attrs.insert(Attrs.end(), T.Data.begin(), T.Data.end());
    Source.addTable(TableSchema(T.Name, std::move(Attrs)));
  }
  assert(Source.getNumAttrs() == Spec.NumAttrs &&
         "attribute distribution does not match the spec");

  // --- Build the program: round-robin over units and pattern indices ---
  ProgramBuilder Builder(Tables);
  std::vector<std::vector<size_t>> Units;
  for (unsigned P = 0; P < Spec.SatellitePairs; ++P)
    Units.push_back({2 * static_cast<size_t>(P), 2 * static_cast<size_t>(P) + 1});
  for (size_t I : StandaloneIdx)
    Units.push_back({I});

  Program Prog;
  std::vector<bool> Exhausted(Units.size(), false);
  size_t PatternIdx = 0;
  while (Prog.getNumFunctions() < Spec.NumFuncs) {
    bool Progress = false;
    for (size_t U = 0;
         U < Units.size() && Prog.getNumFunctions() < Spec.NumFuncs; ++U) {
      if (Exhausted[U])
        continue;
      size_t Before = Prog.getNumFunctions();
      if (!Builder.emit(Prog, Units[U], PatternIdx)) {
        Exhausted[U] = true;
        continue;
      }
      Progress |= Prog.getNumFunctions() > Before;
      Progress = true;
    }
    ++PatternIdx;
    if (!Progress) {
      bool AllExhausted = true;
      for (bool E : Exhausted)
        AllExhausted &= E;
      assert(!AllExhausted && "function budget exceeds available patterns");
      (void)AllExhausted;
    }
  }
  assert(Prog.getNumFunctions() == Spec.NumFuncs && "function count mismatch");
  assert(!validateProgram(Prog, Source) && "generated program is ill-formed");

  // --- Apply the target refactorings ---
  // Work on a mutable copy of the table layout.
  struct TgtTable {
    std::string Name;
    std::vector<Attribute> Attrs;
  };
  std::vector<TgtTable> Tgt;
  for (const TableSchema &T : Source.getTables())
    Tgt.push_back({T.getName(), T.getAttrs()});

  auto FindTgt = [&Tgt](const std::string &Name) -> TgtTable & {
    for (TgtTable &T : Tgt)
      if (T.Name == Name)
        return T;
    assert(false && "target table missing");
    return Tgt.front();
  };

  // Merges: fold each merged pair's satellite into its main table, dropping
  // the duplicate key and the last MergeDropAttrs write-only attributes.
  for (unsigned P = 0; P < Spec.Merges && P < Spec.SatellitePairs; ++P) {
    const TableInfo &M = Tables[2 * P];
    const TableInfo &S = Tables[2 * P + 1];
    TgtTable &Main = FindTgt(M.Name);
    unsigned Drop = std::min<unsigned>(
        Spec.MergeDropAttrs,
        S.Data.size() > 3 ? static_cast<unsigned>(S.Data.size()) - 3 : 0);
    for (size_t K = 0; K + Drop < S.Data.size(); ++K)
      Main.Attrs.push_back(S.Data[K]);
    Tgt.erase(std::remove_if(Tgt.begin(), Tgt.end(),
                             [&S](const TgtTable &T) {
                               return T.Name == S.Name;
                             }),
              Tgt.end());
  }

  // Moves: relocate each designated pair's last main data attribute into the
  // satellite.
  for (unsigned P = Spec.Merges;
       P < Spec.Merges + Spec.MovedAttrs && P < Spec.SatellitePairs; ++P) {
    const TableInfo &M = Tables[2 * P];
    const TableInfo &S = Tables[2 * P + 1];
    if (M.Data.size() < 3)
      continue;
    TgtTable &Main = FindTgt(M.Name);
    TgtTable &Sat = FindTgt(S.Name);
    Attribute Moved = M.Data.back();
    Main.Attrs.erase(std::remove_if(Main.Attrs.begin(), Main.Attrs.end(),
                                    [&Moved](const Attribute &A) {
                                      return A.Name == Moved.Name;
                                    }),
                     Main.Attrs.end());
    Sat.Attrs.push_back(Moved);
  }

  // Shared splits: remove the media columns from both tables, link both to
  // a fresh shared lookup table through a fresh surrogate key.
  for (unsigned Sh = 0; Sh < SharedPairs.size(); ++Sh) {
    auto [A, B] = SharedPairs[Sh];
    std::string Tag = "media" + std::to_string(Sh);
    TgtTable &TA2 = FindTgt(Tables[A].Name);
    TgtTable &TB2 = FindTgt(Tables[B].Name);
    auto DropMedia = [](TgtTable &T, const std::string &Name) {
      T.Attrs.erase(std::remove_if(T.Attrs.begin(), T.Attrs.end(),
                                   [&Name](const Attribute &At) {
                                     return At.Name == Name;
                                   }),
                    T.Attrs.end());
    };
    DropMedia(TA2, Tag + "A");
    DropMedia(TB2, Tag + "B");
    TA2.Attrs.push_back({Tag + "Id", ValueType::Int});
    TB2.Attrs.push_back({Tag + "Id", ValueType::Int});
    TgtTable Store;
    Store.Name = Tag + "Store";
    Store.Attrs.push_back({Tag + "Id", ValueType::Int});
    Store.Attrs.push_back({Tag, ValueType::Binary});
    Tgt.push_back(std::move(Store));
  }

  // Splits: the standalone tables with the most data attributes each lose
  // data attributes [1, 1 + SplitAttrs) to a fresh "<T>Ext" table, linked by
  // a fresh surrogate key present in both.
  std::vector<size_t> SplitOrder;
  for (size_t I : StandaloneIdx) {
    bool InShared = false;
    for (auto [A, B] : SharedPairs)
      InShared |= I == A || I == B;
    if (!InShared)
      SplitOrder.push_back(I);
  }
  std::stable_sort(SplitOrder.begin(), SplitOrder.end(),
                   [&Tables](size_t A, size_t B) {
                     return Tables[A].Data.size() > Tables[B].Data.size();
                   });
  for (unsigned SplitNo = 0;
       SplitNo < Spec.Splits && SplitNo < SplitOrder.size(); ++SplitNo) {
    const TableInfo &T = Tables[SplitOrder[SplitNo]];
    if (T.Data.size() < Spec.SplitAttrs + 2)
      continue;
    TgtTable &Main = FindTgt(T.Name);
    std::string LinkName = T.Name + "ExtId";
    TgtTable Ext;
    Ext.Name = T.Name + "Ext";
    Ext.Attrs.push_back({LinkName, ValueType::Int});
    // Move data attrs [1, 1 + SplitAttrs).
    std::vector<std::string> MovedNames;
    for (unsigned K = 1; K <= Spec.SplitAttrs && K < T.Data.size(); ++K)
      MovedNames.push_back(T.Data[K].Name);
    for (const std::string &Name : MovedNames) {
      auto It = std::find_if(Main.Attrs.begin(), Main.Attrs.end(),
                             [&Name](const Attribute &A) {
                               return A.Name == Name;
                             });
      assert(It != Main.Attrs.end());
      Ext.Attrs.push_back(*It);
      Main.Attrs.erase(It);
    }
    Main.Attrs.push_back({LinkName, ValueType::Int});
    Tgt.push_back(std::move(Ext));
  }

  // Attribute renames: the first data attribute of the first RenamedAttrs
  // non-split standalone tables gains a "Fld" suffix.
  unsigned Renamed = 0;
  for (size_t I : StandaloneIdx) {
    if (Renamed >= Spec.RenamedAttrs)
      break;
    const TableInfo &T = Tables[I];
    bool WasSplit = false;
    for (const TgtTable &TT : Tgt)
      WasSplit |= TT.Name == T.Name + "Ext";
    if (WasSplit)
      continue;
    TgtTable &Main = FindTgt(T.Name);
    for (Attribute &A : Main.Attrs)
      if (A.Name == T.Data[0].Name) {
        A.Name += "Fld";
        ++Renamed;
        break;
      }
  }

  // Table renames: the first RenamedTables standalone non-split tables gain
  // a "Tbl" suffix.
  unsigned RenamedT = 0;
  for (size_t I : StandaloneIdx) {
    if (RenamedT >= Spec.RenamedTables)
      break;
    const TableInfo &T = Tables[I];
    bool WasSplit = false;
    for (const TgtTable &TT : Tgt)
      WasSplit |= TT.Name == T.Name + "Ext";
    if (WasSplit)
      continue;
    FindTgt(T.Name).Name = T.Name + "Tbl";
    ++RenamedT;
  }

  // Added attributes: fresh string columns appended round-robin to the
  // standalone tables (by current target name).
  for (unsigned A = 0; A < Spec.AddedAttrs; ++A) {
    TgtTable &T = Tgt[(Tgt.size() - 1 - A % Tgt.size())];
    T.Attrs.push_back({"extraA" + std::to_string(A), ValueType::String});
  }

  Schema Target(Ident + "Tgt");
  for (TgtTable &T : Tgt)
    Target.addTable(TableSchema(T.Name, std::move(T.Attrs)));

  Benchmark B;
  B.Name = Spec.Name;
  B.Description = Spec.Description;
  B.Category = "real-world";
  B.Source = std::move(Source);
  B.Target = std::move(Target);
  B.Prog = std::move(Prog);
  return B;
}
