//===- benchsuite/Benchmarks.cpp - Benchmark registry ------------------------===//

#include "benchsuite/Benchmark.h"

#include "benchsuite/Generator.h"
#include "benchsuite/TextbookDefs.h"
#include "parse/Parser.h"

#include <cassert>

using namespace migrator;
using namespace migrator::benchsuite;

namespace {

/// Specs of the ten real-world-scale benchmarks. Source-side statistics
/// (tables / attributes / functions) match Table 1 exactly; the refactoring
/// ops realize the paper's Description column.
const GenSpec RealWorldSpecs[] = {
    {"cdx", "Rename attrs, split tables", 16, 125, 138, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/3, /*SharedSplits=*/1, 0, 0, 0,
     /*RenamedAttrs=*/6, 0, 0},
    {"coachup", "Split tables", 4, 51, 45, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/4, /*SharedSplits=*/1, 0, 0, 0, 0, 0, 0},
    {"2030Club", "Split tables", 15, 155, 125, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/3, /*SharedSplits=*/1, 0, 0, 0, 0, 0, 0},
    {"rails-ecomm", "Split tables, add new attrs", 8, 69, 65, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/3, /*SharedSplits=*/1, 0, 0, 0, 0, 0,
     /*AddedAttrs=*/4},
    {"royk", "Add and move attrs", 19, 152, 151, /*SatellitePairs=*/2, true,
     0, 3, 0, 0, 0, /*MovedAttrs=*/2, 0, 0, /*AddedAttrs=*/3},
    {"MathHotSpot", "Rename tables, move attrs", 7, 38, 54,
     /*SatellitePairs=*/1, true, 0, 3, 0, 0, 0, /*MovedAttrs=*/1, 0,
     /*RenamedTables=*/2, 0},
    {"gallery", "Split tables", 7, 52, 58, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/4, /*SharedSplits=*/1, 0, 0, 0, 0, 0, 0},
    {"DeeJBase", "Rename attrs, split tables", 10, 92, 70, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/3, /*SharedSplits=*/1, 0, 0, 0,
     /*RenamedAttrs=*/5, 0, 0},
    {"visible-closet", "Split tables", 26, 248, 263, 0, true,
     /*Splits=*/0, /*SplitAttrs=*/3, /*SharedSplits=*/1, 0, 0, 0, 0, 0, 0},
    {"probable-engine", "Merge tables", 12, 83, 85, /*SatellitePairs=*/1,
     true, 0, 3, /*SharedSplits=*/0, /*Merges=*/1, /*MergeDropAttrs=*/4, 0,
     0, 0, 0},
};

Benchmark loadTextbook(const TextbookDef &Def) {
  std::variant<ParseOutput, ParseError> R = parseUnit(Def.Text);
  assert(std::holds_alternative<ParseOutput>(R) &&
         "embedded textbook benchmark fails to parse");
  ParseOutput &Out = std::get<ParseOutput>(R);
  const Schema *Src = Out.findSchema("Src");
  const Schema *Tgt = Out.findSchema("Tgt");
  NamedProgram *App = nullptr;
  for (NamedProgram &NP : Out.Programs)
    if (NP.Name == "App")
      App = &NP;
  assert(Src && Tgt && App && "embedded textbook benchmark is incomplete");

  Benchmark B;
  B.Name = Def.Name;
  B.Description = Def.Description;
  B.Category = "textbook";
  std::string Ident = Def.Name;
  for (char &C : Ident)
    if (C == '-')
      C = '_';
  B.Source = *Src;
  B.Source.setName(Ident + "Src");
  B.Target = *Tgt;
  B.Target.setName(Ident + "Tgt");
  B.Prog = std::move(App->Prog);
  return B;
}

} // namespace

std::vector<std::string> migrator::textbookBenchmarkNames() {
  std::vector<std::string> Names;
  for (size_t I = 0; I < numTextbookDefs(); ++I)
    Names.push_back(textbookDefAt(I).Name);
  return Names;
}

std::vector<std::string> migrator::realWorldBenchmarkNames() {
  std::vector<std::string> Names;
  for (const GenSpec &S : RealWorldSpecs)
    Names.push_back(S.Name);
  return Names;
}

std::vector<std::string> migrator::allBenchmarkNames() {
  std::vector<std::string> Names = textbookBenchmarkNames();
  for (std::string &N : realWorldBenchmarkNames())
    Names.push_back(std::move(N));
  return Names;
}

Benchmark migrator::loadBenchmark(const std::string &Name) {
  if (const TextbookDef *Def = findTextbookDef(Name))
    return loadTextbook(*Def);
  for (const GenSpec &S : RealWorldSpecs)
    if (S.Name == Name)
      return generateBenchmark(S);
  assert(false && "unknown benchmark name");
  return Benchmark();
}
