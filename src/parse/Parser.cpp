//===- parse/Parser.cpp - Parser for schemas and programs -------------------===//

#include "parse/Parser.h"

#include <cassert>
#include <sstream>

using namespace migrator;

const Schema *ParseOutput::findSchema(const std::string &Name) const {
  for (const Schema &S : Schemas)
    if (S.getName() == Name)
      return &S;
  return nullptr;
}

const NamedProgram *ParseOutput::findProgram(const std::string &Name) const {
  for (const NamedProgram &P : Programs)
    if (P.Name == Name)
      return &P;
  return nullptr;
}

std::vector<const NamedWorkload *>
ParseOutput::workloadsFor(const std::string &ProgramName) const {
  std::vector<const NamedWorkload *> Result;
  for (const NamedWorkload &W : Workloads)
    if (W.ProgramName == ProgramName)
      Result.push_back(&W);
  return Result;
}

std::string ParseError::str() const {
  std::ostringstream OS;
  OS << Line << ":" << Col << ": " << Msg;
  return OS.str();
}

namespace {

class ParserImpl {
public:
  explicit ParserImpl(std::string_view Src) : Tokens(lex(Src)) {}

  std::variant<ParseOutput, ParseError> run() {
    ParseOutput Out;
    while (!check(TokenKind::Eof)) {
      if (Failed)
        break;
      if (check(TokenKind::Error)) {
        fail(cur().Text);
        break;
      }
      if (match(TokenKind::KwSchema)) {
        parseSchema(Out);
      } else if (match(TokenKind::KwProgram)) {
        parseProgram(Out);
      } else if (match(TokenKind::KwWorkload)) {
        parseWorkload(Out);
      } else {
        fail(std::string("expected 'schema', 'program', or 'workload', "
                         "found ") +
             tokenKindName(cur().Kind));
      }
    }
    if (Failed)
      return Diag;
    return std::variant<ParseOutput, ParseError>(std::move(Out));
  }

private:
  std::vector<Token> Tokens;
  size_t Pos = 0;
  bool Failed = false;
  ParseError Diag;

  // Parameters of the function currently being parsed; used to classify
  // unqualified identifiers as parameter references vs attribute names.
  const std::vector<Param> *CurParams = nullptr;

  const Token &cur() const { return Tokens[Pos]; }
  const Token &prev() const { return Tokens[Pos - 1]; }

  bool check(TokenKind K) const { return cur().Kind == K; }

  bool match(TokenKind K) {
    if (!check(K))
      return false;
    ++Pos;
    return true;
  }

  void fail(std::string Msg) {
    if (Failed)
      return;
    Failed = true;
    // A lexing error carries its own message; prefer it over the parser's
    // "found invalid token" phrasing.
    if (cur().Kind == TokenKind::Error)
      Msg = cur().Text;
    Diag = {cur().Line, cur().Col, std::move(Msg)};
  }

  bool expect(TokenKind K, const char *Context) {
    if (match(K))
      return true;
    std::ostringstream OS;
    OS << "expected " << tokenKindName(K) << " " << Context << ", found "
       << tokenKindName(cur().Kind);
    fail(OS.str());
    return false;
  }

  std::string expectIdent(const char *Context) {
    if (check(TokenKind::Identifier)) {
      std::string Name = cur().Text;
      ++Pos;
      return Name;
    }
    std::ostringstream OS;
    OS << "expected identifier " << Context << ", found "
       << tokenKindName(cur().Kind);
    fail(OS.str());
    return "";
  }

  bool isParamName(const std::string &Name) const {
    if (!CurParams)
      return false;
    for (const Param &P : *CurParams)
      if (P.Name == Name)
        return true;
    return false;
  }

  //===--------------------------------------------------------------------===//
  // Declarations
  //===--------------------------------------------------------------------===//

  std::optional<ValueType> parseType() {
    std::string Name = expectIdent("as a type");
    if (Failed)
      return std::nullopt;
    if (Name == "int")
      return ValueType::Int;
    if (Name == "string")
      return ValueType::String;
    if (Name == "binary")
      return ValueType::Binary;
    if (Name == "bool")
      return ValueType::Bool;
    fail("unknown type '" + Name + "' (expected int, string, binary, or bool)");
    return std::nullopt;
  }

  void parseSchema(ParseOutput &Out) {
    std::string Name = expectIdent("after 'schema'");
    if (!expect(TokenKind::LBrace, "to open the schema body"))
      return;
    Schema S(Name);
    while (!Failed && match(TokenKind::KwTable)) {
      std::string TableName = expectIdent("after 'table'");
      if (!expect(TokenKind::LParen, "to open the attribute list"))
        return;
      std::vector<Attribute> Attrs;
      do {
        std::string AttrName = expectIdent("as an attribute name");
        if (!expect(TokenKind::Colon, "after the attribute name"))
          return;
        std::optional<ValueType> Ty = parseType();
        if (Failed)
          return;
        Attrs.push_back({std::move(AttrName), *Ty});
      } while (match(TokenKind::Comma));
      if (!expect(TokenKind::RParen, "to close the attribute list"))
        return;
      if (S.findTable(TableName)) {
        fail("duplicate table '" + TableName + "' in schema '" + Name + "'");
        return;
      }
      S.addTable(TableSchema(std::move(TableName), std::move(Attrs)));
    }
    if (!expect(TokenKind::RBrace, "to close the schema body"))
      return;
    if (Out.findSchema(Name)) {
      fail("duplicate schema '" + Name + "'");
      return;
    }
    Out.Schemas.push_back(std::move(S));
  }

  void parseProgram(ParseOutput &Out) {
    NamedProgram NP;
    NP.Name = expectIdent("after 'program'");
    if (match(TokenKind::KwOn))
      NP.SchemaName = expectIdent("after 'on'");
    if (!expect(TokenKind::LBrace, "to open the program body"))
      return;
    while (!Failed && (check(TokenKind::KwUpdate) || check(TokenKind::KwQuery))) {
      bool IsQuery = check(TokenKind::KwQuery);
      ++Pos;
      std::optional<Function> F = parseFunction(IsQuery);
      if (Failed)
        return;
      if (NP.Prog.findFunction(F->getName())) {
        fail("duplicate function '" + F->getName() + "'");
        return;
      }
      NP.Prog.addFunction(std::move(*F));
    }
    if (!expect(TokenKind::RBrace, "to close the program body"))
      return;
    if (Out.findProgram(NP.Name)) {
      fail("duplicate program '" + NP.Name + "'");
      return;
    }
    Out.Programs.push_back(std::move(NP));
  }

  void parseWorkload(ParseOutput &Out) {
    NamedWorkload W;
    W.Name = expectIdent("after 'workload'");
    if (!expect(TokenKind::KwOn, "to bind the workload to a program"))
      return;
    W.ProgramName = expectIdent("after 'on'");
    if (!expect(TokenKind::LBrace, "to open the workload body"))
      return;
    while (!Failed && !check(TokenKind::RBrace)) {
      Invocation Inv;
      Inv.Func = expectIdent("as a function name");
      if (!expect(TokenKind::LParen, "to open the argument list"))
        return;
      if (!check(TokenKind::RParen)) {
        do {
          std::optional<Operand> Op = parseOperand();
          if (Failed)
            return;
          if (Op->isParam()) {
            fail("workload arguments must be literals");
            return;
          }
          Inv.Args.push_back(Op->getConstant());
        } while (match(TokenKind::Comma));
      }
      if (!expect(TokenKind::RParen, "to close the argument list") ||
          !expect(TokenKind::Semi, "after the call"))
        return;
      W.Seq.push_back(std::move(Inv));
    }
    if (!expect(TokenKind::RBrace, "to close the workload body"))
      return;
    if (W.Seq.empty()) {
      fail("workload '" + W.Name + "' is empty");
      return;
    }
    Out.Workloads.push_back(std::move(W));
  }

  std::optional<Function> parseFunction(bool IsQuery) {
    std::string Name = expectIdent("as the function name");
    if (!expect(TokenKind::LParen, "to open the parameter list"))
      return std::nullopt;
    std::vector<Param> Params;
    if (!check(TokenKind::RParen)) {
      do {
        std::string PName = expectIdent("as a parameter name");
        if (!expect(TokenKind::Colon, "after the parameter name"))
          return std::nullopt;
        std::optional<ValueType> Ty = parseType();
        if (Failed)
          return std::nullopt;
        Params.push_back({std::move(PName), *Ty});
      } while (match(TokenKind::Comma));
    }
    if (!expect(TokenKind::RParen, "to close the parameter list"))
      return std::nullopt;
    if (!expect(TokenKind::LBrace, "to open the function body"))
      return std::nullopt;

    CurParams = &Params;
    std::optional<Function> F;
    if (IsQuery) {
      QueryPtr Q = parseQueryBody();
      if (!Failed && expect(TokenKind::Semi, "after the query") &&
          expect(TokenKind::RBrace, "to close the function body"))
        F = Function::makeQuery(std::move(Name), Params, std::move(Q));
    } else {
      std::vector<StmtPtr> Body;
      while (!Failed && !check(TokenKind::RBrace)) {
        StmtPtr St = parseStmt();
        if (Failed)
          break;
        Body.push_back(std::move(St));
      }
      if (!Failed && Body.empty())
        fail("update function '" + Name + "' has an empty body");
      if (!Failed && expect(TokenKind::RBrace, "to close the function body"))
        F = Function::makeUpdate(std::move(Name), Params, std::move(Body));
    }
    CurParams = nullptr;
    if (Failed)
      return std::nullopt;
    return F;
  }

  //===--------------------------------------------------------------------===//
  // Statements
  //===--------------------------------------------------------------------===//

  StmtPtr parseStmt() {
    if (match(TokenKind::KwInsert))
      return parseInsert();
    if (match(TokenKind::KwDelete))
      return parseDelete();
    if (match(TokenKind::KwUpdate))
      return parseUpdateStmt();
    fail(std::string("expected a statement (insert/delete/update), found ") +
         tokenKindName(cur().Kind));
    return nullptr;
  }

  StmtPtr parseInsert() {
    if (!expect(TokenKind::KwInto, "after 'insert'"))
      return nullptr;
    JoinChain Chain = parseJoinChain();
    if (Failed)
      return nullptr;
    if (!expect(TokenKind::KwValues, "after the insert target") ||
        !expect(TokenKind::LParen, "to open the value list"))
      return nullptr;
    std::vector<InsertStmt::Assignment> Values;
    do {
      AttrRef A = parseAttrRef();
      if (!expect(TokenKind::Colon, "after the attribute name"))
        return nullptr;
      std::optional<Operand> Op = parseOperand();
      if (Failed)
        return nullptr;
      Values.emplace_back(std::move(A), std::move(*Op));
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::RParen, "to close the value list") ||
        !expect(TokenKind::Semi, "after the insert statement"))
      return nullptr;
    return std::make_unique<InsertStmt>(std::move(Chain), std::move(Values));
  }

  StmtPtr parseDelete() {
    std::vector<std::string> Targets;
    bool Bracketed = match(TokenKind::LBracket);
    if (Bracketed) {
      do {
        Targets.push_back(expectIdent("as a delete target table"));
        if (Failed)
          return nullptr;
      } while (match(TokenKind::Comma));
      if (!expect(TokenKind::RBracket, "to close the delete target list"))
        return nullptr;
    }
    if (!expect(TokenKind::KwFrom, "in the delete statement"))
      return nullptr;
    JoinChain Chain = parseJoinChain();
    if (Failed)
      return nullptr;
    if (!Bracketed) {
      // `delete from T where ...` sugar: only valid for single tables.
      if (!Chain.isSingleTable()) {
        fail("delete over a join chain requires an explicit [T, ...] target "
             "list");
        return nullptr;
      }
      Targets.push_back(Chain.getTables().front());
    }
    PredPtr P;
    if (match(TokenKind::KwWhere)) {
      P = parsePred();
      if (Failed)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after the delete statement"))
      return nullptr;
    return std::make_unique<DeleteStmt>(std::move(Targets), std::move(Chain),
                                        std::move(P));
  }

  StmtPtr parseUpdateStmt() {
    JoinChain Chain = parseJoinChain();
    if (Failed)
      return nullptr;
    if (!expect(TokenKind::KwSet, "in the update statement"))
      return nullptr;
    AttrRef Target = parseAttrRef();
    if (!expect(TokenKind::Eq, "after the update target"))
      return nullptr;
    std::optional<Operand> Val = parseOperand();
    if (Failed)
      return nullptr;
    PredPtr P;
    if (match(TokenKind::KwWhere)) {
      P = parsePred();
      if (Failed)
        return nullptr;
    }
    if (!expect(TokenKind::Semi, "after the update statement"))
      return nullptr;
    return std::make_unique<UpdateStmt>(std::move(Chain), std::move(P),
                                        std::move(Target), std::move(*Val));
  }

  //===--------------------------------------------------------------------===//
  // Queries, chains, predicates
  //===--------------------------------------------------------------------===//

  QueryPtr parseQueryBody() {
    if (!expect(TokenKind::KwSelect, "to begin the query"))
      return nullptr;
    std::vector<AttrRef> Attrs;
    do {
      Attrs.push_back(parseAttrRef());
      if (Failed)
        return nullptr;
    } while (match(TokenKind::Comma));
    if (!expect(TokenKind::KwFrom, "after the projection list"))
      return nullptr;
    JoinChain Chain = parseJoinChain();
    if (Failed)
      return nullptr;
    PredPtr P;
    if (match(TokenKind::KwWhere)) {
      P = parsePred();
      if (Failed)
        return nullptr;
    }
    return makeSelect(std::move(Attrs), std::move(Chain), std::move(P));
  }

  JoinChain parseJoinChain() {
    std::vector<std::string> Tables;
    Tables.push_back(expectIdent("as a table name"));
    if (Failed)
      return JoinChain();
    while (match(TokenKind::KwJoin)) {
      Tables.push_back(expectIdent("after 'join'"));
      if (Failed)
        return JoinChain();
    }
    // An `on` clause only introduces join equalities when it is followed by
    // an attribute equality; at statement level the `on` keyword does not
    // occur in any other position, so this is unambiguous.
    if (Tables.size() > 1 && match(TokenKind::KwOn)) {
      std::vector<std::pair<AttrRef, AttrRef>> Eqs;
      do {
        AttrRef L = parseAttrRef();
        if (!expect(TokenKind::Eq, "in the join condition"))
          return JoinChain();
        AttrRef R = parseAttrRef();
        if (Failed)
          return JoinChain();
        Eqs.emplace_back(std::move(L), std::move(R));
      } while (match(TokenKind::KwAnd));
      return JoinChain::explicitJoin(std::move(Tables), std::move(Eqs));
    }
    return JoinChain::natural(std::move(Tables));
  }

  AttrRef parseAttrRef() {
    std::string First = expectIdent("as an attribute reference");
    if (Failed)
      return AttrRef();
    if (match(TokenKind::Dot)) {
      std::string Second = expectIdent("after '.'");
      if (Failed)
        return AttrRef();
      return AttrRef(std::move(First), std::move(Second));
    }
    return AttrRef::unqualified(std::move(First));
  }

  std::optional<Operand> parseOperand() {
    if (check(TokenKind::IntLiteral)) {
      int64_t V = cur().IntVal;
      ++Pos;
      return Operand::constant(Value::makeInt(V));
    }
    if (check(TokenKind::StringLiteral)) {
      std::string V = cur().Text;
      ++Pos;
      return Operand::constant(Value::makeString(std::move(V)));
    }
    if (check(TokenKind::BinaryLiteral)) {
      std::string V = cur().Text;
      ++Pos;
      return Operand::constant(Value::makeBinary(std::move(V)));
    }
    if (match(TokenKind::KwTrue))
      return Operand::constant(Value::makeBool(true));
    if (match(TokenKind::KwFalse))
      return Operand::constant(Value::makeBool(false));
    if (check(TokenKind::Identifier)) {
      std::string Name = cur().Text;
      if (!isParamName(Name)) {
        fail("'" + Name + "' is not a parameter of the enclosing function");
        return std::nullopt;
      }
      ++Pos;
      return Operand::param(std::move(Name));
    }
    fail(std::string("expected a literal or parameter, found ") +
         tokenKindName(cur().Kind));
    return std::nullopt;
  }

  std::optional<CmpOp> parseCmpOp() {
    if (match(TokenKind::Eq))
      return CmpOp::Eq;
    if (match(TokenKind::Ne))
      return CmpOp::Ne;
    if (match(TokenKind::Lt))
      return CmpOp::Lt;
    if (match(TokenKind::Le))
      return CmpOp::Le;
    if (match(TokenKind::Gt))
      return CmpOp::Gt;
    if (match(TokenKind::Ge))
      return CmpOp::Ge;
    fail(std::string("expected a comparison operator, found ") +
         tokenKindName(cur().Kind));
    return std::nullopt;
  }

  PredPtr parsePred() { return parseOr(); }

  PredPtr parseOr() {
    PredPtr L = parseAnd();
    while (!Failed && match(TokenKind::KwOr)) {
      PredPtr R = parseAnd();
      if (Failed)
        return nullptr;
      L = makeOr(std::move(L), std::move(R));
    }
    return L;
  }

  PredPtr parseAnd() {
    PredPtr L = parseNot();
    while (!Failed && match(TokenKind::KwAnd)) {
      PredPtr R = parseNot();
      if (Failed)
        return nullptr;
      L = makeAnd(std::move(L), std::move(R));
    }
    return L;
  }

  PredPtr parseNot() {
    if (match(TokenKind::KwNot)) {
      PredPtr Sub = parseNot();
      if (Failed)
        return nullptr;
      return makeNot(std::move(Sub));
    }
    return parseAtom();
  }

  PredPtr parseAtom() {
    if (match(TokenKind::LParen)) {
      PredPtr P = parsePred();
      if (Failed)
        return nullptr;
      if (!expect(TokenKind::RParen, "to close the predicate"))
        return nullptr;
      return P;
    }
    AttrRef Lhs = parseAttrRef();
    if (Failed)
      return nullptr;
    if (match(TokenKind::KwIn)) {
      if (!expect(TokenKind::LParen, "after 'in'"))
        return nullptr;
      QueryPtr Sub = parseQueryBody();
      if (Failed)
        return nullptr;
      if (!expect(TokenKind::RParen, "to close the sub-query"))
        return nullptr;
      return std::make_unique<InPred>(std::move(Lhs), std::move(Sub));
    }
    std::optional<CmpOp> Op = parseCmpOp();
    if (Failed)
      return nullptr;
    // The right-hand side is an attribute if it is qualified or is not a
    // parameter of the enclosing function; otherwise it is an operand.
    if (check(TokenKind::Identifier)) {
      std::string Name = cur().Text;
      bool Qualified = Tokens[Pos + 1].is(TokenKind::Dot);
      if (Qualified || !isParamName(Name)) {
        AttrRef Rhs = parseAttrRef();
        if (Failed)
          return nullptr;
        return makeAttrCmp(std::move(Lhs), *Op, std::move(Rhs));
      }
    }
    std::optional<Operand> Rhs = parseOperand();
    if (Failed)
      return nullptr;
    return makeCmp(std::move(Lhs), *Op, std::move(*Rhs));
  }
};

} // namespace

std::variant<ParseOutput, ParseError> migrator::parseUnit(std::string_view Src) {
  return ParserImpl(Src).run();
}
