//===- parse/Parser.h - Parser for schemas and programs -----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing Schema and Program values from the
/// textual surface syntax (see Lexer.h for an example). A compilation unit
/// contains any number of `schema` and `program` declarations; a program
/// may name the schema it runs over with `program P on SchemaName { ... }`.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_PARSE_PARSER_H
#define MIGRATOR_PARSE_PARSER_H

#include "ast/Program.h"
#include "eval/Evaluator.h"
#include "parse/Lexer.h"
#include "relational/Schema.h"

#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace migrator {

/// A parsed program together with its declared name and (optional) schema
/// binding.
struct NamedProgram {
  std::string Name;
  std::string SchemaName; ///< Empty if the program had no `on` clause.
  Program Prog;
};

/// A named invocation sequence: `workload W on P { f(1, "x"); q(0); }`.
/// Arguments must be literals; the final call is expected to be a query.
struct NamedWorkload {
  std::string Name;
  std::string ProgramName;
  InvocationSeq Seq;
};

/// The declarations of one compilation unit.
struct ParseOutput {
  std::vector<Schema> Schemas;
  std::vector<NamedProgram> Programs;
  std::vector<NamedWorkload> Workloads;

  /// Returns the parsed schema named \p Name, or nullptr.
  const Schema *findSchema(const std::string &Name) const;
  /// Returns the parsed program named \p Name, or nullptr.
  const NamedProgram *findProgram(const std::string &Name) const;
  /// Returns the workloads declared for program \p ProgramName.
  std::vector<const NamedWorkload *>
  workloadsFor(const std::string &ProgramName) const;
};

/// A parse diagnostic with a 1-based source location.
struct ParseError {
  unsigned Line = 0;
  unsigned Col = 0;
  std::string Msg;

  /// Renders as `line:col: message`.
  std::string str() const;
};

/// Parses \p Src. Returns the declarations or the first error encountered.
std::variant<ParseOutput, ParseError> parseUnit(std::string_view Src);

} // namespace migrator

#endif // MIGRATOR_PARSE_PARSER_H
