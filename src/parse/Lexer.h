//===- parse/Lexer.h - Tokenizer for the surface syntax -----------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tokenizer for the textual form of schemas and database programs. The
/// surface syntax mirrors Fig. 5 with SQL-flavoured keywords:
///
/// \code
///   schema CourseDB {
///     table Instructor(InstId: int, IName: string, IPic: binary)
///   }
///   program P {
///     query getInstructorInfo(id: int) {
///       select IName, IPic from Instructor where InstId = id;
///     }
///   }
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_PARSE_LEXER_H
#define MIGRATOR_PARSE_LEXER_H

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace migrator {

/// Token kinds produced by the lexer.
enum class TokenKind {
  Eof,
  Identifier,
  IntLiteral,
  StringLiteral,
  BinaryLiteral,
  // Punctuation.
  LParen,
  RParen,
  LBrace,
  RBrace,
  LBracket,
  RBracket,
  Comma,
  Colon,
  Semi,
  Dot,
  // Comparison operators.
  Eq,
  Ne,
  Lt,
  Le,
  Gt,
  Ge,
  // Keywords.
  KwSchema,
  KwTable,
  KwProgram,
  KwWorkload,
  KwUpdate,
  KwQuery,
  KwInsert,
  KwInto,
  KwValues,
  KwDelete,
  KwFrom,
  KwWhere,
  KwSelect,
  KwSet,
  KwJoin,
  KwOn,
  KwAnd,
  KwOr,
  KwNot,
  KwIn,
  KwTrue,
  KwFalse,
  // Lexing error (bad character / unterminated literal).
  Error,
};

/// Returns a human-readable name for \p K (used in diagnostics).
const char *tokenKindName(TokenKind K);

/// One lexed token with its source location (1-based line/column).
struct Token {
  TokenKind Kind = TokenKind::Eof;
  std::string Text;    ///< Identifier spelling / literal payload.
  int64_t IntVal = 0;  ///< For IntLiteral.
  unsigned Line = 0;
  unsigned Col = 0;

  bool is(TokenKind K) const { return Kind == K; }
};

/// Tokenizes \p Src. `//` line comments are skipped. A malformed input
/// yields a trailing Error token (whose Text describes the problem)
/// followed by Eof.
std::vector<Token> lex(std::string_view Src);

} // namespace migrator

#endif // MIGRATOR_PARSE_LEXER_H
