//===- parse/Lexer.cpp - Tokenizer for the surface syntax -------------------===//

#include "parse/Lexer.h"

#include <cctype>
#include <map>

using namespace migrator;

const char *migrator::tokenKindName(TokenKind K) {
  switch (K) {
  case TokenKind::Eof:
    return "end of input";
  case TokenKind::Identifier:
    return "identifier";
  case TokenKind::IntLiteral:
    return "integer literal";
  case TokenKind::StringLiteral:
    return "string literal";
  case TokenKind::BinaryLiteral:
    return "binary literal";
  case TokenKind::LParen:
    return "'('";
  case TokenKind::RParen:
    return "')'";
  case TokenKind::LBrace:
    return "'{'";
  case TokenKind::RBrace:
    return "'}'";
  case TokenKind::LBracket:
    return "'['";
  case TokenKind::RBracket:
    return "']'";
  case TokenKind::Comma:
    return "','";
  case TokenKind::Colon:
    return "':'";
  case TokenKind::Semi:
    return "';'";
  case TokenKind::Dot:
    return "'.'";
  case TokenKind::Eq:
    return "'='";
  case TokenKind::Ne:
    return "'!='";
  case TokenKind::Lt:
    return "'<'";
  case TokenKind::Le:
    return "'<='";
  case TokenKind::Gt:
    return "'>'";
  case TokenKind::Ge:
    return "'>='";
  case TokenKind::KwSchema:
    return "'schema'";
  case TokenKind::KwTable:
    return "'table'";
  case TokenKind::KwProgram:
    return "'program'";
  case TokenKind::KwWorkload:
    return "'workload'";
  case TokenKind::KwUpdate:
    return "'update'";
  case TokenKind::KwQuery:
    return "'query'";
  case TokenKind::KwInsert:
    return "'insert'";
  case TokenKind::KwInto:
    return "'into'";
  case TokenKind::KwValues:
    return "'values'";
  case TokenKind::KwDelete:
    return "'delete'";
  case TokenKind::KwFrom:
    return "'from'";
  case TokenKind::KwWhere:
    return "'where'";
  case TokenKind::KwSelect:
    return "'select'";
  case TokenKind::KwSet:
    return "'set'";
  case TokenKind::KwJoin:
    return "'join'";
  case TokenKind::KwOn:
    return "'on'";
  case TokenKind::KwAnd:
    return "'and'";
  case TokenKind::KwOr:
    return "'or'";
  case TokenKind::KwNot:
    return "'not'";
  case TokenKind::KwIn:
    return "'in'";
  case TokenKind::KwTrue:
    return "'true'";
  case TokenKind::KwFalse:
    return "'false'";
  case TokenKind::Error:
    return "invalid token";
  }
  return "<unknown>";
}

namespace {

const std::map<std::string, TokenKind> &keywordTable() {
  static const std::map<std::string, TokenKind> Table = {
      {"schema", TokenKind::KwSchema},   {"table", TokenKind::KwTable},
      {"program", TokenKind::KwProgram}, {"workload", TokenKind::KwWorkload},
      {"update", TokenKind::KwUpdate},
      {"query", TokenKind::KwQuery},     {"insert", TokenKind::KwInsert},
      {"into", TokenKind::KwInto},       {"values", TokenKind::KwValues},
      {"delete", TokenKind::KwDelete},   {"from", TokenKind::KwFrom},
      {"where", TokenKind::KwWhere},     {"select", TokenKind::KwSelect},
      {"set", TokenKind::KwSet},         {"join", TokenKind::KwJoin},
      {"on", TokenKind::KwOn},           {"and", TokenKind::KwAnd},
      {"or", TokenKind::KwOr},           {"not", TokenKind::KwNot},
      {"in", TokenKind::KwIn},           {"true", TokenKind::KwTrue},
      {"false", TokenKind::KwFalse},
  };
  return Table;
}

class LexerImpl {
public:
  explicit LexerImpl(std::string_view Src) : Src(Src) {}

  std::vector<Token> run() {
    std::vector<Token> Tokens;
    while (true) {
      Token T = next();
      bool Done = T.is(TokenKind::Eof) || T.is(TokenKind::Error);
      Tokens.push_back(std::move(T));
      if (Done)
        break;
    }
    if (Tokens.back().is(TokenKind::Error)) {
      Token Eof;
      Eof.Kind = TokenKind::Eof;
      Eof.Line = Line;
      Eof.Col = Col;
      Tokens.push_back(std::move(Eof));
    }
    return Tokens;
  }

private:
  std::string_view Src;
  size_t Pos = 0;
  unsigned Line = 1, Col = 1;

  bool atEnd() const { return Pos >= Src.size(); }
  char peek() const { return Src[Pos]; }
  char peekAhead() const { return Pos + 1 < Src.size() ? Src[Pos + 1] : '\0'; }

  char advance() {
    char C = Src[Pos++];
    if (C == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    return C;
  }

  void skipTrivia() {
    while (!atEnd()) {
      char C = peek();
      if (std::isspace(static_cast<unsigned char>(C))) {
        advance();
        continue;
      }
      if (C == '/' && peekAhead() == '/') {
        while (!atEnd() && peek() != '\n')
          advance();
        continue;
      }
      return;
    }
  }

  Token make(TokenKind K, std::string Text = "") {
    Token T;
    T.Kind = K;
    T.Text = std::move(Text);
    T.Line = StartLine;
    T.Col = StartCol;
    return T;
  }

  Token error(std::string Msg) { return make(TokenKind::Error, std::move(Msg)); }

  unsigned StartLine = 1, StartCol = 1;

  Token lexString(TokenKind Kind) {
    // Opening quote already consumed.
    std::string Text;
    while (true) {
      if (atEnd() || peek() == '\n')
        return error("unterminated string literal");
      char C = advance();
      if (C == '"')
        return make(Kind, std::move(Text));
      if (C == '\\') {
        if (atEnd())
          return error("unterminated escape sequence");
        char E = advance();
        switch (E) {
        case 'n':
          Text.push_back('\n');
          break;
        case 't':
          Text.push_back('\t');
          break;
        case '\\':
        case '"':
          Text.push_back(E);
          break;
        default:
          return error(std::string("unknown escape sequence '\\") + E + "'");
        }
        continue;
      }
      Text.push_back(C);
    }
  }

  Token next() {
    skipTrivia();
    StartLine = Line;
    StartCol = Col;
    if (atEnd())
      return make(TokenKind::Eof);

    char C = advance();
    switch (C) {
    case '(':
      return make(TokenKind::LParen);
    case ')':
      return make(TokenKind::RParen);
    case '{':
      return make(TokenKind::LBrace);
    case '}':
      return make(TokenKind::RBrace);
    case '[':
      return make(TokenKind::LBracket);
    case ']':
      return make(TokenKind::RBracket);
    case ',':
      return make(TokenKind::Comma);
    case ':':
      return make(TokenKind::Colon);
    case ';':
      return make(TokenKind::Semi);
    case '.':
      return make(TokenKind::Dot);
    case '=':
      return make(TokenKind::Eq);
    case '!':
      if (!atEnd() && peek() == '=') {
        advance();
        return make(TokenKind::Ne);
      }
      return error("expected '=' after '!'");
    case '<':
      if (!atEnd() && peek() == '=') {
        advance();
        return make(TokenKind::Le);
      }
      return make(TokenKind::Lt);
    case '>':
      if (!atEnd() && peek() == '=') {
        advance();
        return make(TokenKind::Ge);
      }
      return make(TokenKind::Gt);
    case '"':
      return lexString(TokenKind::StringLiteral);
    default:
      break;
    }

    if (C == 'b' && !atEnd() && peek() == '"') {
      advance(); // Consume the quote.
      return lexString(TokenKind::BinaryLiteral);
    }

    if (std::isdigit(static_cast<unsigned char>(C)) ||
        (C == '-' && !atEnd() &&
         std::isdigit(static_cast<unsigned char>(peek())))) {
      std::string Digits(1, C);
      while (!atEnd() && std::isdigit(static_cast<unsigned char>(peek())))
        Digits.push_back(advance());
      Token T = make(TokenKind::IntLiteral, Digits);
      T.IntVal = std::stoll(Digits);
      return T;
    }

    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      std::string Ident(1, C);
      while (!atEnd() && (std::isalnum(static_cast<unsigned char>(peek())) ||
                          peek() == '_'))
        Ident.push_back(advance());
      auto It = keywordTable().find(Ident);
      if (It != keywordTable().end())
        return make(It->second, std::move(Ident));
      return make(TokenKind::Identifier, std::move(Ident));
    }

    return error(std::string("unexpected character '") + C + "'");
  }
};

} // namespace

std::vector<Token> migrator::lex(std::string_view Src) {
  return LexerImpl(Src).run();
}
