//===- ast/SqlPrinter.cpp - SQL rendering of database programs --------------===//

#include "ast/SqlPrinter.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace migrator;

namespace {

const char *sqlType(ValueType Ty) {
  switch (Ty) {
  case ValueType::Int:
    return "INT";
  case ValueType::String:
    return "VARCHAR(255)";
  case ValueType::Binary:
    return "BLOB";
  case ValueType::Bool:
    return "BOOLEAN";
  }
  return "INT";
}

std::string sqlValue(const Value &V) {
  switch (V.kind()) {
  case Value::Kind::Int:
    return std::to_string(V.getInt());
  case Value::Kind::String:
    return "'" + V.getString() + "'";
  case Value::Kind::Binary:
    return "x'" + V.getBinary() + "'"; // Callers ensure hex-able payloads.
  case Value::Kind::Bool:
    return V.getBool() ? "TRUE" : "FALSE";
  case Value::Kind::Uid:
    return "@uid" + std::to_string(V.getUid());
  }
  return "NULL";
}

std::string sqlOperand(const Operand &Op) {
  if (Op.isParam())
    return ":" + Op.getParamName();
  return sqlValue(Op.getConstant());
}

std::string sqlAttr(const AttrRef &A) {
  return A.isQualified() ? A.Table + "." + A.Attr : A.Attr;
}

/// Renders a join chain as a FROM clause body: explicit joins use ON
/// conditions; natural chains use NATURAL JOIN.
std::string sqlChain(const JoinChain &Chain) {
  std::ostringstream OS;
  const std::vector<std::string> &Tables = Chain.getTables();
  for (size_t I = 0; I < Tables.size(); ++I) {
    if (I != 0)
      OS << (Chain.isNatural() ? " NATURAL JOIN " : " JOIN ");
    OS << Tables[I];
  }
  if (!Chain.isNatural() && !Chain.getEqs().empty()) {
    OS << " ON ";
    const auto &Eqs = Chain.getEqs();
    for (size_t I = 0; I < Eqs.size(); ++I) {
      if (I != 0)
        OS << " AND ";
      OS << sqlAttr(Eqs[I].first) << " = " << sqlAttr(Eqs[I].second);
    }
  }
  return OS.str();
}

std::string sqlPred(const Pred &P) {
  switch (P.getKind()) {
  case Pred::Kind::Cmp: {
    const auto &C = static_cast<const CmpPred &>(P);
    std::string Op = C.getOp() == CmpOp::Ne ? "<>" : cmpOpName(C.getOp());
    std::string Rhs = C.rhsIsAttr() ? sqlAttr(C.getRhsAttr())
                                    : sqlOperand(C.getRhsOperand());
    return sqlAttr(C.getLhs()) + " " + Op + " " + Rhs;
  }
  case Pred::Kind::In: {
    const auto &I = static_cast<const InPred &>(P);
    // Sub-queries in our language are select/from/where shaped.
    const Query *Q = &I.getSubQuery();
    std::ostringstream OS;
    OS << sqlAttr(I.getLhs()) << " IN (";
    // Render the sub-query inline.
    std::vector<AttrRef> Proj;
    const Pred *Filter = nullptr;
    const Query *Cur = Q;
    bool Walking = true;
    while (Walking) {
      switch (Cur->getKind()) {
      case Query::Kind::Project: {
        const auto &Pr = static_cast<const ProjectQuery &>(*Cur);
        if (Proj.empty())
          Proj = Pr.getAttrs();
        Cur = &Pr.getSubQuery();
        break;
      }
      case Query::Kind::Filter: {
        const auto &F = static_cast<const FilterQuery &>(*Cur);
        Filter = &F.getPred();
        Cur = &F.getSubQuery();
        break;
      }
      case Query::Kind::Chain:
        Walking = false;
        break;
      }
    }
    OS << "SELECT ";
    for (size_t K = 0; K < Proj.size(); ++K)
      OS << (K ? ", " : "") << sqlAttr(Proj[K]);
    OS << " FROM " << sqlChain(Q->getChain());
    if (Filter)
      OS << " WHERE " << sqlPred(*Filter);
    OS << ")";
    return OS.str();
  }
  case Pred::Kind::And:
  case Pred::Kind::Or: {
    const auto &B = static_cast<const BinaryPred &>(P);
    const char *Op = P.getKind() == Pred::Kind::And ? " AND " : " OR ";
    return "(" + sqlPred(B.getLhs()) + Op + sqlPred(B.getRhs()) + ")";
  }
  case Pred::Kind::Not:
    return "NOT (" + sqlPred(static_cast<const NotPred &>(P).getSubPred()) +
           ")";
  }
  return "";
}

/// Emits one insert statement; chains expand into the paper's desugaring —
/// one INSERT per member table, with join-linked attributes sharing fresh
/// session variables.
void emitInsert(const InsertStmt &I, const Schema &S, unsigned &FreshCounter,
                std::ostringstream &OS) {
  const JoinChain &Chain = I.getChain();
  std::vector<std::vector<QualifiedAttr>> Classes = Chain.attrClasses(S);

  // Value per class: an explicit operand or a fresh session variable.
  std::vector<std::string> ClassVal(Classes.size());
  auto ClassOf = [&Classes](const QualifiedAttr &QA) -> size_t {
    for (size_t C = 0; C < Classes.size(); ++C)
      if (std::find(Classes[C].begin(), Classes[C].end(), QA) !=
          Classes[C].end())
        return C;
    assert(false && "attribute missing from class partition");
    return 0;
  };
  for (const auto &[Ref, Op] : I.getValues()) {
    std::optional<QualifiedAttr> QA = Chain.resolve(Ref, S);
    assert(QA && "insert attribute does not resolve");
    ClassVal[ClassOf(*QA)] = sqlOperand(Op);
  }
  bool NeedsFresh = false;
  for (size_t C = 0; C < Classes.size(); ++C)
    if (ClassVal[C].empty()) {
      NeedsFresh = true;
      ClassVal[C] = "@fresh" + std::to_string(FreshCounter++);
    }
  if (NeedsFresh)
    OS << "  -- @freshN: fresh surrogate keys (the paper's UIDs); bind them\n"
          "  -- to newly generated unique values before running.\n";

  for (const std::string &T : Chain.getTables()) {
    const TableSchema &TS = S.getTable(T);
    OS << "  INSERT INTO " << T << " (";
    for (size_t A = 0; A < TS.getNumAttrs(); ++A)
      OS << (A ? ", " : "") << TS.getAttrs()[A].Name;
    OS << ")\n    VALUES (";
    for (size_t A = 0; A < TS.getNumAttrs(); ++A) {
      QualifiedAttr QA{T, TS.getAttrs()[A].Name};
      OS << (A ? ", " : "") << ClassVal[ClassOf(QA)];
    }
    OS << ");\n";
  }
}

void emitDelete(const DeleteStmt &D, std::ostringstream &OS) {
  OS << "  DELETE ";
  const std::vector<std::string> &Targets = D.getTargets();
  for (size_t I = 0; I < Targets.size(); ++I)
    OS << (I ? ", " : "") << Targets[I];
  OS << " FROM " << sqlChain(D.getChain());
  if (D.getPred())
    OS << "\n    WHERE " << sqlPred(*D.getPred());
  OS << ";\n";
}

void emitUpdate(const UpdateStmt &U, std::ostringstream &OS) {
  OS << "  UPDATE " << sqlChain(U.getChain()) << "\n    SET "
     << sqlAttr(U.getTarget()) << " = " << sqlOperand(U.getValue());
  if (U.getPred())
    OS << "\n    WHERE " << sqlPred(*U.getPred());
  OS << ";\n";
}

void emitQuery(const Query &Q, std::ostringstream &OS) {
  std::vector<AttrRef> Proj;
  std::vector<const Pred *> Filters;
  const Query *Cur = &Q;
  while (true) {
    switch (Cur->getKind()) {
    case Query::Kind::Project: {
      const auto &P = static_cast<const ProjectQuery &>(*Cur);
      if (Proj.empty())
        Proj = P.getAttrs();
      Cur = &P.getSubQuery();
      break;
    }
    case Query::Kind::Filter: {
      const auto &F = static_cast<const FilterQuery &>(*Cur);
      Filters.push_back(&F.getPred());
      Cur = &F.getSubQuery();
      break;
    }
    case Query::Kind::Chain: {
      OS << "  SELECT ";
      if (Proj.empty()) {
        OS << "*";
      } else {
        for (size_t I = 0; I < Proj.size(); ++I)
          OS << (I ? ", " : "") << sqlAttr(Proj[I]);
      }
      OS << "\n  FROM " << sqlChain(Q.getChain());
      for (size_t I = 0; I < Filters.size(); ++I)
        OS << (I == 0 ? "\n  WHERE " : " AND ") << sqlPred(*Filters[I]);
      OS << ";\n";
      return;
    }
    }
  }
}

} // namespace

std::string migrator::sqlSchema(const Schema &S) {
  std::ostringstream OS;
  OS << "-- schema " << S.getName() << "\n";
  for (const TableSchema &T : S.getTables()) {
    OS << "CREATE TABLE " << T.getName() << " (\n";
    const std::vector<Attribute> &As = T.getAttrs();
    for (size_t I = 0; I < As.size(); ++I)
      OS << "  " << As[I].Name << " " << sqlType(As[I].Type)
         << (I + 1 < As.size() ? ",\n" : "\n");
    OS << ");\n";
  }
  return OS.str();
}

std::string migrator::sqlFunction(const Function &F, const Schema &S) {
  std::ostringstream OS;
  OS << "-- " << (F.isUpdate() ? "update" : "query") << " " << F.getName()
     << "(";
  const std::vector<Param> &Ps = F.getParams();
  for (size_t I = 0; I < Ps.size(); ++I)
    OS << (I ? ", " : "") << ":" << Ps[I].Name << " " << sqlType(Ps[I].Type);
  OS << ")\n";

  unsigned FreshCounter = 0;
  if (F.isQuery()) {
    emitQuery(F.getQuery(), OS);
    return OS.str();
  }
  OS << "  START TRANSACTION;\n";
  for (const StmtPtr &St : F.getBody()) {
    switch (St->getKind()) {
    case Stmt::Kind::Insert:
      emitInsert(static_cast<const InsertStmt &>(*St), S, FreshCounter, OS);
      break;
    case Stmt::Kind::Delete:
      emitDelete(static_cast<const DeleteStmt &>(*St), OS);
      break;
    case Stmt::Kind::Update:
      emitUpdate(static_cast<const UpdateStmt &>(*St), OS);
      break;
    }
  }
  OS << "  COMMIT;\n";
  return OS.str();
}

std::string migrator::sqlProgram(const Program &P, const Schema &S) {
  std::ostringstream OS;
  for (const Function &F : P.getFunctions())
    OS << sqlFunction(F, S) << "\n";
  return OS.str();
}
