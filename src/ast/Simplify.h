//===- ast/Simplify.h - Program normalization ---------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Semantics-preserving simplification of predicates and programs:
/// double-negation elimination, idempotent ∧/∨ collapsing, constant folding
/// of comparisons between identical operands, and removal of trivially-true
/// filters. Used to normalize synthesized programs before presenting them.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_SIMPLIFY_H
#define MIGRATOR_AST_SIMPLIFY_H

#include "ast/Program.h"

namespace migrator {

/// Three-valued outcome of predicate simplification.
enum class PredVerdict {
  Simplified, ///< A (possibly smaller) predicate remains.
  AlwaysTrue,
  AlwaysFalse,
};

/// Result of simplifying one predicate.
struct SimplifiedPred {
  PredVerdict Verdict;
  PredPtr P; ///< Set when Verdict == Simplified.
};

/// Simplifies \p P. The result is semantically equivalent on every database
/// and environment.
SimplifiedPred simplifyPred(const Pred &P);

/// Simplifies every predicate of \p Q; trivially-true filters are dropped,
/// trivially-false filters are kept in minimal form (they make the query
/// empty, which cannot be expressed otherwise).
QueryPtr simplifyQuery(const Query &Q);

/// Returns a simplified, semantically equivalent copy of \p P.
Program simplifyProgram(const Program &P);

} // namespace migrator

#endif // MIGRATOR_AST_SIMPLIFY_H
