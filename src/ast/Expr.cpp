//===- ast/Expr.cpp - Predicates and relational queries --------------------===//

#include "ast/Expr.h"

#include <cassert>
#include <sstream>

using namespace migrator;

const char *migrator::cmpOpName(CmpOp Op) {
  switch (Op) {
  case CmpOp::Eq:
    return "=";
  case CmpOp::Ne:
    return "!=";
  case CmpOp::Lt:
    return "<";
  case CmpOp::Le:
    return "<=";
  case CmpOp::Gt:
    return ">";
  case CmpOp::Ge:
    return ">=";
  }
  assert(false && "unknown comparison operator");
  return "<invalid>";
}

bool migrator::evalCmpOp(CmpOp Op, const Value &L, const Value &R) {
  if (L.kind() != R.kind()) {
    // Heterogeneous comparisons: only disequality holds.
    return Op == CmpOp::Ne;
  }
  switch (Op) {
  case CmpOp::Eq:
    return L == R;
  case CmpOp::Ne:
    return L != R;
  case CmpOp::Lt:
    return L < R;
  case CmpOp::Le:
    return L < R || L == R;
  case CmpOp::Gt:
    return R < L;
  case CmpOp::Ge:
    return R < L || L == R;
  }
  assert(false && "unknown comparison operator");
  return false;
}

//===----------------------------------------------------------------------===//
// Predicates
//===----------------------------------------------------------------------===//

Pred::~Pred() = default;

PredPtr CmpPred::clone() const {
  return std::make_unique<CmpPred>(Lhs, Op, Rhs);
}

std::string CmpPred::str() const {
  std::ostringstream OS;
  OS << Lhs.str() << " " << cmpOpName(Op) << " ";
  OS << (rhsIsAttr() ? getRhsAttr().str() : getRhsOperand().str());
  return OS.str();
}

bool CmpPred::equals(const Pred &O) const {
  if (O.getKind() != Kind::Cmp)
    return false;
  const auto &OC = static_cast<const CmpPred &>(O);
  return Lhs == OC.Lhs && Op == OC.Op && Rhs == OC.Rhs;
}

InPred::InPred(AttrRef Lhs, QueryPtr Sub)
    : Pred(Kind::In), Lhs(std::move(Lhs)), Sub(std::move(Sub)) {
  assert(this->Sub && "IN predicate requires a sub-query");
}

InPred::~InPred() = default;

PredPtr InPred::clone() const {
  return std::make_unique<InPred>(Lhs, Sub->clone());
}

std::string InPred::str() const {
  return Lhs.str() + " in (" + Sub->str() + ")";
}

bool InPred::equals(const Pred &O) const {
  if (O.getKind() != Kind::In)
    return false;
  const auto &OI = static_cast<const InPred &>(O);
  return Lhs == OI.Lhs && Sub->equals(*OI.Sub);
}

PredPtr BinaryPred::clone() const {
  return std::make_unique<BinaryPred>(getKind(), L->clone(), R->clone());
}

std::string BinaryPred::str() const {
  std::ostringstream OS;
  OS << "(" << L->str() << (getKind() == Kind::And ? " and " : " or ")
     << R->str() << ")";
  return OS.str();
}

bool BinaryPred::equals(const Pred &O) const {
  if (O.getKind() != getKind())
    return false;
  const auto &OB = static_cast<const BinaryPred &>(O);
  return L->equals(*OB.L) && R->equals(*OB.R);
}

PredPtr NotPred::clone() const {
  return std::make_unique<NotPred>(Sub->clone());
}

std::string NotPred::str() const { return "not (" + Sub->str() + ")"; }

bool NotPred::equals(const Pred &O) const {
  if (O.getKind() != Kind::Not)
    return false;
  return Sub->equals(static_cast<const NotPred &>(O).getSubPred());
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

Query::~Query() = default;

const JoinChain &Query::getChain() const {
  const Query *Q = this;
  while (true) {
    switch (Q->getKind()) {
    case Kind::Project:
      Q = &static_cast<const ProjectQuery *>(Q)->getSubQuery();
      break;
    case Kind::Filter:
      Q = &static_cast<const FilterQuery *>(Q)->getSubQuery();
      break;
    case Kind::Chain:
      return static_cast<const ChainQuery *>(Q)->getJoinChain();
    }
  }
}

QueryPtr ProjectQuery::clone() const {
  return std::make_unique<ProjectQuery>(Attrs, Sub->clone());
}

std::string ProjectQuery::str() const {
  std::ostringstream OS;
  OS << "select ";
  for (size_t I = 0; I < Attrs.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Attrs[I].str();
  }
  OS << " " << Sub->str();
  return OS.str();
}

bool ProjectQuery::equals(const Query &O) const {
  if (O.getKind() != Kind::Project)
    return false;
  const auto &OP = static_cast<const ProjectQuery &>(O);
  return Attrs == OP.Attrs && Sub->equals(*OP.Sub);
}

QueryPtr FilterQuery::clone() const {
  return std::make_unique<FilterQuery>(P->clone(), Sub->clone());
}

std::string FilterQuery::str() const {
  return Sub->str() + " where " + P->str();
}

bool FilterQuery::equals(const Query &O) const {
  if (O.getKind() != Kind::Filter)
    return false;
  const auto &OF = static_cast<const FilterQuery &>(O);
  return P->equals(*OF.P) && Sub->equals(*OF.Sub);
}

QueryPtr ChainQuery::clone() const {
  return std::make_unique<ChainQuery>(Chain);
}

std::string ChainQuery::str() const { return "from " + Chain.str(); }

bool ChainQuery::equals(const Query &O) const {
  if (O.getKind() != Kind::Chain)
    return false;
  return Chain == static_cast<const ChainQuery &>(O).Chain;
}

//===----------------------------------------------------------------------===//
// Convenience builders
//===----------------------------------------------------------------------===//

PredPtr migrator::makeCmp(AttrRef Lhs, CmpOp Op, Operand Rhs) {
  return std::make_unique<CmpPred>(std::move(Lhs), Op,
                                   CmpPred::Rhs_t(std::move(Rhs)));
}

PredPtr migrator::makeAttrCmp(AttrRef Lhs, CmpOp Op, AttrRef Rhs) {
  return std::make_unique<CmpPred>(std::move(Lhs), Op,
                                   CmpPred::Rhs_t(std::move(Rhs)));
}

PredPtr migrator::makeAnd(PredPtr L, PredPtr R) {
  return std::make_unique<BinaryPred>(Pred::Kind::And, std::move(L),
                                      std::move(R));
}

PredPtr migrator::makeOr(PredPtr L, PredPtr R) {
  return std::make_unique<BinaryPred>(Pred::Kind::Or, std::move(L),
                                      std::move(R));
}

PredPtr migrator::makeNot(PredPtr P) {
  return std::make_unique<NotPred>(std::move(P));
}

QueryPtr migrator::makeSelect(std::vector<AttrRef> Attrs, JoinChain Chain,
                              PredPtr P) {
  QueryPtr Q = std::make_unique<ChainQuery>(std::move(Chain));
  if (P)
    Q = std::make_unique<FilterQuery>(std::move(P), std::move(Q));
  return std::make_unique<ProjectQuery>(std::move(Attrs), std::move(Q));
}
