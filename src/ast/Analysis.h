//===- ast/Analysis.h - Static analyses over database programs ----*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static analyses used by the synthesis pipeline:
///
///  * collectQueriedAttrs — the attributes the program *reads* (projections
///    and predicate operands). These feed the "necessary condition for
///    equivalence" hard constraints of the value-correspondence MaxSAT
///    encoding (Sec. 4.2): every queried attribute must map somewhere.
///  * validateProgram — sanity-checks a program against its schema (every
///    chain/attribute/parameter resolves, constants are well-typed). Used
///    by the parser front-end and the benchmark generator.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_ANALYSIS_H
#define MIGRATOR_AST_ANALYSIS_H

#include "ast/Program.h"
#include "relational/Schema.h"

#include <optional>
#include <set>
#include <string>

namespace migrator {

/// Returns the qualified attributes read anywhere in \p P: projection lists
/// and predicate operands of query bodies, and predicates of update
/// statements. References are resolved against their enclosing join chain.
std::set<QualifiedAttr> collectQueriedAttrs(const Program &P, const Schema &S);

/// Returns every qualified attribute mentioned in \p P (read or written).
std::set<QualifiedAttr> collectUsedAttrs(const Program &P, const Schema &S);

/// Checks that \p P is well-formed over \p S. Returns nullopt on success or
/// a diagnostic message naming the first problem found.
std::optional<std::string> validateProgram(const Program &P, const Schema &S);

/// Checks a single function; returns nullopt on success or a diagnostic.
std::optional<std::string> validateFunction(const Function &F, const Schema &S);

/// The tables function \p F reads (join chains of its queries/predicates,
/// including IN sub-queries) and writes (join chains of its update
/// statements). Used by the tester's relevance slicing.
struct ReadWriteSets {
  std::set<std::string> Reads;
  std::set<std::string> Writes;
};
ReadWriteSets collectReadWriteSets(const Function &F);

} // namespace migrator

#endif // MIGRATOR_AST_ANALYSIS_H
