//===- ast/Program.cpp - Functions and database programs -------------------===//

#include "ast/Program.h"

#include <cassert>
#include <sstream>

using namespace migrator;

Function Function::makeUpdate(std::string Name, std::vector<Param> Params,
                              std::vector<StmtPtr> Body) {
  Function F(Kind::Update, std::move(Name), std::move(Params));
  F.Body = std::move(Body);
  assert(!F.Body.empty() && "update function must contain a statement");
  return F;
}

Function Function::makeQuery(std::string Name, std::vector<Param> Params,
                             QueryPtr Q) {
  assert(Q && "query function requires a body");
  Function F(Kind::Query, std::move(Name), std::move(Params));
  F.Q = std::move(Q);
  return F;
}

std::optional<ValueType> Function::paramType(const std::string &ParamName) const {
  for (const Param &P : Params)
    if (P.Name == ParamName)
      return P.Type;
  return std::nullopt;
}

Function Function::clone() const {
  if (isQuery())
    return makeQuery(Name, Params, Q->clone());
  std::vector<StmtPtr> NewBody;
  NewBody.reserve(Body.size());
  for (const StmtPtr &S : Body)
    NewBody.push_back(S->clone());
  return makeUpdate(Name, Params, std::move(NewBody));
}

std::string Function::str() const {
  std::ostringstream OS;
  OS << (isUpdate() ? "update " : "query ") << Name << "(";
  for (size_t I = 0; I < Params.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Params[I].Name << ": " << typeName(Params[I].Type);
  }
  OS << ") {\n";
  if (isQuery()) {
    OS << "  " << Q->str() << ";\n";
  } else {
    for (const StmtPtr &S : Body)
      OS << "  " << S->str() << "\n";
  }
  OS << "}\n";
  return OS.str();
}

bool Function::equals(const Function &O) const {
  if (TheKind != O.TheKind || Name != O.Name || !(Params == O.Params))
    return false;
  if (isQuery())
    return Q->equals(*O.Q);
  if (Body.size() != O.Body.size())
    return false;
  for (size_t I = 0; I < Body.size(); ++I)
    if (!Body[I]->equals(*O.Body[I]))
      return false;
  return true;
}

void Program::addFunction(Function F) {
  assert(!findFunction(F.getName()) && "duplicate function name in program");
  Funcs.push_back(std::move(F));
}

const Function *Program::findFunction(const std::string &Name) const {
  for (const Function &F : Funcs)
    if (F.getName() == Name)
      return &F;
  return nullptr;
}

const Function &Program::getFunction(const std::string &Name) const {
  const Function *F = findFunction(Name);
  assert(F && "function not declared in program");
  return *F;
}

std::vector<std::string> Program::updateFunctionNames() const {
  std::vector<std::string> Names;
  for (const Function &F : Funcs)
    if (F.isUpdate())
      Names.push_back(F.getName());
  return Names;
}

std::vector<std::string> Program::queryFunctionNames() const {
  std::vector<std::string> Names;
  for (const Function &F : Funcs)
    if (F.isQuery())
      Names.push_back(F.getName());
  return Names;
}

Program Program::clone() const {
  Program P;
  for (const Function &F : Funcs)
    P.addFunction(F.clone());
  return P;
}

std::string Program::str() const {
  std::ostringstream OS;
  for (const Function &F : Funcs)
    OS << F.str() << "\n";
  return OS.str();
}

bool Program::equals(const Program &O) const {
  if (Funcs.size() != O.Funcs.size())
    return false;
  for (size_t I = 0; I < Funcs.size(); ++I)
    if (!Funcs[I].equals(O.Funcs[I]))
      return false;
  return true;
}
