//===- ast/JoinChain.h - Join chains over tables ------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Join chains — the `J := T | J a⋈a J` production of Fig. 5. A chain is an
/// ordered set of tables combined by equi-joins. Two flavours are supported:
///
///  * *natural* chains (the paper's `J1 ⋈ J2` shorthand), whose join
///    predicate equates all identically named attributes across member
///    tables, and
///  * *explicit* chains carrying a list of attribute equalities
///    (`J1 a⋈b J2`).
///
/// The join predicate induces equivalence classes over the chain's
/// attributes; these classes drive both join evaluation and the fresh-UID
/// assignment of join-chain inserts (Sec. 3.1).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_JOINCHAIN_H
#define MIGRATOR_AST_JOINCHAIN_H

#include "relational/Schema.h"

#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace migrator {

/// A possibly-unqualified attribute reference appearing in program text.
/// An empty Table component means the reference must be resolved against the
/// enclosing statement's join chain.
struct AttrRef {
  std::string Table; ///< Empty for unqualified references.
  std::string Attr;

  AttrRef() = default;
  AttrRef(std::string Table, std::string Attr)
      : Table(std::move(Table)), Attr(std::move(Attr)) {}

  /// Builds an unqualified reference.
  static AttrRef unqualified(std::string Attr) { return AttrRef("", std::move(Attr)); }

  /// Builds a qualified reference from \p QA.
  static AttrRef qualified(const QualifiedAttr &QA) {
    return AttrRef(QA.Table, QA.Attr);
  }

  bool isQualified() const { return !Table.empty(); }

  bool operator==(const AttrRef &O) const {
    return Table == O.Table && Attr == O.Attr;
  }
  bool operator!=(const AttrRef &O) const { return !(*this == O); }

  /// Renders as `Attr` or `Table.Attr`.
  std::string str() const { return isQualified() ? Table + "." + Attr : Attr; }
};

/// An equi-join chain over one or more tables.
class JoinChain {
public:
  JoinChain() = default;

  /// A single-table chain.
  static JoinChain table(std::string Name);

  /// A natural-join chain over \p Tables (all same-named attributes are
  /// equated).
  static JoinChain natural(std::vector<std::string> Tables);

  /// An explicit equi-join chain: \p Eqs lists the attribute equalities; any
  /// attribute not mentioned is unconstrained.
  static JoinChain explicitJoin(std::vector<std::string> Tables,
                                std::vector<std::pair<AttrRef, AttrRef>> Eqs);

  const std::vector<std::string> &getTables() const { return Tables; }
  size_t getNumTables() const { return Tables.size(); }
  bool isSingleTable() const { return Tables.size() == 1; }
  bool isNatural() const { return Natural; }
  const std::vector<std::pair<AttrRef, AttrRef>> &getEqs() const { return Eqs; }

  bool containsTable(const std::string &Name) const;

  /// All qualified attributes of the chain's member tables.
  std::vector<QualifiedAttr> allAttrs(const Schema &S) const;

  /// The equivalence classes induced by the join predicate. Every attribute
  /// of every member table appears in exactly one class; unconstrained
  /// attributes form singleton classes.
  std::vector<std::vector<QualifiedAttr>> attrClasses(const Schema &S) const;

  /// attrClasses() plus the lookup tables the evaluator needs per query:
  /// the class of each (member table, attribute index) pair and a by-name
  /// class index. Built once per (chain, schema) by the plan cache
  /// (eval/Plan.h) instead of per evaluation.
  struct AttrClassPartition {
    std::vector<std::vector<QualifiedAttr>> Classes;
    /// [tableIdx][attrIdx] -> class id, aligned with getTables() and the
    /// table schema's attribute order.
    std::vector<std::vector<unsigned>> ClassOf;

    /// Class id of \p QA, or nullopt if it is not a chain attribute.
    std::optional<unsigned> classOf(const QualifiedAttr &QA) const;

  private:
    friend class JoinChain;
    std::map<QualifiedAttr, unsigned> Index;
  };

  /// Builds the full class partition for this chain over \p S.
  AttrClassPartition attrClassPartition(const Schema &S) const;

  /// Resolves \p Ref against this chain: an unqualified reference resolves
  /// to the first member table declaring the attribute (under a natural
  /// join, all declaring tables hold equal values); a qualified reference is
  /// checked for membership. Returns nullopt if the reference does not name
  /// an attribute of the chain.
  std::optional<QualifiedAttr> resolve(const AttrRef &Ref,
                                       const Schema &S) const;

  bool operator==(const JoinChain &O) const {
    return Tables == O.Tables && Eqs == O.Eqs && Natural == O.Natural;
  }
  bool operator!=(const JoinChain &O) const { return !(*this == O); }

  /// Renders as `T`, `T1 join T2 join T3`, or with explicit `on` clauses.
  std::string str() const;

private:
  std::vector<std::string> Tables;
  std::vector<std::pair<AttrRef, AttrRef>> Eqs;
  bool Natural = true;
};

} // namespace migrator

#endif // MIGRATOR_AST_JOINCHAIN_H
