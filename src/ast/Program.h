//===- ast/Program.h - Functions and database programs ------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A database program (Fig. 5) is a set of named transactions: update
/// functions (a sequence of insert/delete/update statements) and query
/// functions (a single relational-algebra expression). An invocation
/// sequence runs zero or more updates followed by one query (Sec. 3.2).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_PROGRAM_H
#define MIGRATOR_AST_PROGRAM_H

#include "ast/Expr.h"
#include "ast/Stmt.h"

#include <string>
#include <vector>

namespace migrator {

/// A typed function parameter.
struct Param {
  std::string Name;
  ValueType Type;

  bool operator==(const Param &O) const {
    return Name == O.Name && Type == O.Type;
  }
};

/// One database transaction: an update or a query.
class Function {
public:
  enum class Kind { Update, Query };

  /// Builds an update function with statement list \p Body.
  static Function makeUpdate(std::string Name, std::vector<Param> Params,
                             std::vector<StmtPtr> Body);

  /// Builds a query function with body \p Q.
  static Function makeQuery(std::string Name, std::vector<Param> Params,
                            QueryPtr Q);

  Kind getKind() const { return TheKind; }
  bool isUpdate() const { return TheKind == Kind::Update; }
  bool isQuery() const { return TheKind == Kind::Query; }

  const std::string &getName() const { return Name; }
  const std::vector<Param> &getParams() const { return Params; }

  /// Statement list of an update function.
  const std::vector<StmtPtr> &getBody() const {
    assert(isUpdate() && "query functions have no statement body");
    return Body;
  }

  /// Query body of a query function.
  const Query &getQuery() const {
    assert(isQuery() && "update functions have no query body");
    return *Q;
  }

  /// Returns the parameter's declared type, or nullopt if \p ParamName is
  /// not a parameter of this function.
  std::optional<ValueType> paramType(const std::string &ParamName) const;

  Function clone() const;
  std::string str() const;
  bool equals(const Function &O) const;

private:
  Function(Kind K, std::string Name, std::vector<Param> Params)
      : TheKind(K), Name(std::move(Name)), Params(std::move(Params)) {}

  Kind TheKind;
  std::string Name;
  std::vector<Param> Params;
  std::vector<StmtPtr> Body; ///< Update functions.
  QueryPtr Q;                ///< Query functions.
};

/// A database program: an ordered set of functions over one schema.
class Program {
public:
  Program() = default;

  void addFunction(Function F);

  const std::vector<Function> &getFunctions() const { return Funcs; }
  size_t getNumFunctions() const { return Funcs.size(); }

  /// Returns the function named \p Name, or nullptr if absent.
  const Function *findFunction(const std::string &Name) const;

  /// Returns the function named \p Name (which must exist).
  const Function &getFunction(const std::string &Name) const;

  /// Names of all update (resp. query) functions, in declaration order.
  std::vector<std::string> updateFunctionNames() const;
  std::vector<std::string> queryFunctionNames() const;

  Program clone() const;
  std::string str() const;
  bool equals(const Program &O) const;

private:
  std::vector<Function> Funcs;
};

} // namespace migrator

#endif // MIGRATOR_AST_PROGRAM_H
