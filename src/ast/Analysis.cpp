//===- ast/Analysis.cpp - Static analyses over database programs -----------===//

#include "ast/Analysis.h"

#include <sstream>

using namespace migrator;

namespace {

/// Shared traversal state for both attribute collectors and the validator.
class Walker {
public:
  Walker(const Schema &S, std::set<QualifiedAttr> *Read,
         std::set<QualifiedAttr> *Used)
      : S(S), Read(Read), Used(Used) {}

  /// First diagnostic encountered, if any.
  std::optional<std::string> Diag;

  void walkFunction(const Function &F) {
    CurFunc = &F;
    if (F.isQuery()) {
      walkQuery(F.getQuery());
      return;
    }
    for (const StmtPtr &St : F.getBody()) {
      if (Diag)
        return; // Stop at the first diagnostic.
      walkStmt(*St);
    }
  }

private:
  const Schema &S;
  std::set<QualifiedAttr> *Read;
  std::set<QualifiedAttr> *Used;
  const Function *CurFunc = nullptr;

  void error(const std::string &Msg) {
    if (Diag)
      return;
    std::ostringstream OS;
    OS << "in function '" << (CurFunc ? CurFunc->getName() : "?") << "': "
       << Msg;
    Diag = OS.str();
  }

  /// Resolves \p Ref against \p Chain, recording it as read and/or used.
  std::optional<QualifiedAttr> resolveAttr(const AttrRef &Ref,
                                           const JoinChain &Chain, bool IsRead) {
    std::optional<QualifiedAttr> QA = Chain.resolve(Ref, S);
    if (!QA) {
      error("attribute '" + Ref.str() + "' does not resolve in chain '" +
            Chain.str() + "'");
      return std::nullopt;
    }
    if (Used)
      Used->insert(*QA);
    if (IsRead && Read)
      Read->insert(*QA);
    return QA;
  }

  void checkChain(const JoinChain &Chain) {
    for (const std::string &T : Chain.getTables())
      if (!S.findTable(T)) {
        error("table '" + T + "' is not declared in the schema");
        return;
      }
    if (!Chain.isNatural())
      for (const auto &[L, R] : Chain.getEqs()) {
        resolveAttr(L, Chain, /*IsRead=*/false);
        resolveAttr(R, Chain, /*IsRead=*/false);
      }
  }

  void checkOperand(const Operand &Op, ValueType Expected,
                    const std::string &Context) {
    if (Op.isParam()) {
      if (!CurFunc)
        return;
      std::optional<ValueType> Ty = CurFunc->paramType(Op.getParamName());
      if (!Ty) {
        error("unknown parameter '" + Op.getParamName() + "' in " + Context);
        return;
      }
      if (*Ty != Expected)
        error("parameter '" + Op.getParamName() + "' has type " +
              typeName(*Ty) + " but " + Context + " expects " +
              typeName(Expected));
      return;
    }
    if (!Op.getConstant().hasType(Expected))
      error("constant " + Op.getConstant().str() + " does not have type " +
            typeName(Expected) + " in " + Context);
  }

  void walkPred(const Pred &P, const JoinChain &Chain) {
    switch (P.getKind()) {
    case Pred::Kind::Cmp: {
      const auto &C = static_cast<const CmpPred &>(P);
      std::optional<QualifiedAttr> L =
          resolveAttr(C.getLhs(), Chain, /*IsRead=*/true);
      if (C.rhsIsAttr()) {
        resolveAttr(C.getRhsAttr(), Chain, /*IsRead=*/true);
      } else if (L) {
        checkOperand(C.getRhsOperand(), S.attrType(*L),
                     "comparison against '" + L->str() + "'");
      }
      return;
    }
    case Pred::Kind::In: {
      const auto &I = static_cast<const InPred &>(P);
      resolveAttr(I.getLhs(), Chain, /*IsRead=*/true);
      walkQuery(I.getSubQuery());
      return;
    }
    case Pred::Kind::And:
    case Pred::Kind::Or: {
      const auto &B = static_cast<const BinaryPred &>(P);
      walkPred(B.getLhs(), Chain);
      walkPred(B.getRhs(), Chain);
      return;
    }
    case Pred::Kind::Not:
      walkPred(static_cast<const NotPred &>(P).getSubPred(), Chain);
      return;
    }
  }

  void walkQuery(const Query &Q) {
    const JoinChain &Chain = Q.getChain();
    checkChain(Chain);
    const Query *Cur = &Q;
    while (true) {
      switch (Cur->getKind()) {
      case Query::Kind::Project: {
        const auto &P = static_cast<const ProjectQuery &>(*Cur);
        for (const AttrRef &A : P.getAttrs())
          resolveAttr(A, Chain, /*IsRead=*/true);
        Cur = &P.getSubQuery();
        break;
      }
      case Query::Kind::Filter: {
        const auto &F = static_cast<const FilterQuery &>(*Cur);
        walkPred(F.getPred(), Chain);
        Cur = &F.getSubQuery();
        break;
      }
      case Query::Kind::Chain:
        return;
      }
    }
  }

  void walkStmt(const Stmt &St) {
    switch (St.getKind()) {
    case Stmt::Kind::Insert: {
      const auto &I = static_cast<const InsertStmt &>(St);
      checkChain(I.getChain());
      for (const auto &[A, Op] : I.getValues()) {
        std::optional<QualifiedAttr> QA =
            resolveAttr(A, I.getChain(), /*IsRead=*/false);
        if (QA)
          checkOperand(Op, S.attrType(*QA), "insert into '" + QA->str() + "'");
      }
      return;
    }
    case Stmt::Kind::Delete: {
      const auto &D = static_cast<const DeleteStmt &>(St);
      checkChain(D.getChain());
      for (const std::string &T : D.getTargets())
        if (!D.getChain().containsTable(T))
          error("delete target '" + T + "' is not part of chain '" +
                D.getChain().str() + "'");
      if (D.getPred())
        walkPred(*D.getPred(), D.getChain());
      return;
    }
    case Stmt::Kind::Update: {
      const auto &U = static_cast<const UpdateStmt &>(St);
      checkChain(U.getChain());
      std::optional<QualifiedAttr> QA =
          resolveAttr(U.getTarget(), U.getChain(), /*IsRead=*/false);
      if (QA)
        checkOperand(U.getValue(), S.attrType(*QA),
                     "update of '" + QA->str() + "'");
      if (U.getPred())
        walkPred(*U.getPred(), U.getChain());
      return;
    }
    }
  }
};

} // namespace

std::set<QualifiedAttr> migrator::collectQueriedAttrs(const Program &P,
                                                      const Schema &S) {
  std::set<QualifiedAttr> Read;
  Walker W(S, &Read, /*Used=*/nullptr);
  for (const Function &F : P.getFunctions())
    W.walkFunction(F);
  return Read;
}

std::set<QualifiedAttr> migrator::collectUsedAttrs(const Program &P,
                                                   const Schema &S) {
  std::set<QualifiedAttr> Used;
  Walker W(S, /*Read=*/nullptr, &Used);
  for (const Function &F : P.getFunctions())
    W.walkFunction(F);
  return Used;
}

std::optional<std::string> migrator::validateProgram(const Program &P,
                                                     const Schema &S) {
  Walker W(S, /*Read=*/nullptr, /*Used=*/nullptr);
  for (const Function &F : P.getFunctions()) {
    W.walkFunction(F);
    if (W.Diag)
      return W.Diag;
  }
  return std::nullopt;
}

std::optional<std::string> migrator::validateFunction(const Function &F,
                                                      const Schema &S) {
  Walker W(S, /*Read=*/nullptr, /*Used=*/nullptr);
  W.walkFunction(F);
  return W.Diag;
}

namespace {

void addChainTables(const JoinChain &Chain, std::set<std::string> &Out) {
  for (const std::string &T : Chain.getTables())
    Out.insert(T);
}

void collectQueryReads(const Query &Q, std::set<std::string> &Out);

void collectPredReads(const Pred &P, std::set<std::string> &Out) {
  switch (P.getKind()) {
  case Pred::Kind::Cmp:
    return;
  case Pred::Kind::In:
    collectQueryReads(static_cast<const InPred &>(P).getSubQuery(), Out);
    return;
  case Pred::Kind::And:
  case Pred::Kind::Or: {
    const auto &B = static_cast<const BinaryPred &>(P);
    collectPredReads(B.getLhs(), Out);
    collectPredReads(B.getRhs(), Out);
    return;
  }
  case Pred::Kind::Not:
    collectPredReads(static_cast<const NotPred &>(P).getSubPred(), Out);
    return;
  }
}

void collectQueryReads(const Query &Q, std::set<std::string> &Out) {
  addChainTables(Q.getChain(), Out);
  const Query *Cur = &Q;
  while (true) {
    switch (Cur->getKind()) {
    case Query::Kind::Project:
      Cur = &static_cast<const ProjectQuery &>(*Cur).getSubQuery();
      break;
    case Query::Kind::Filter: {
      const auto &F = static_cast<const FilterQuery &>(*Cur);
      collectPredReads(F.getPred(), Out);
      Cur = &F.getSubQuery();
      break;
    }
    case Query::Kind::Chain:
      return;
    }
  }
}

} // namespace

ReadWriteSets migrator::collectReadWriteSets(const Function &F) {
  ReadWriteSets RW;
  if (F.isQuery()) {
    collectQueryReads(F.getQuery(), RW.Reads);
    return RW;
  }
  for (const StmtPtr &St : F.getBody()) {
    switch (St->getKind()) {
    case Stmt::Kind::Insert:
      addChainTables(static_cast<const InsertStmt &>(*St).getChain(),
                     RW.Writes);
      break;
    case Stmt::Kind::Delete: {
      const auto &D = static_cast<const DeleteStmt &>(*St);
      for (const std::string &T : D.getTargets())
        RW.Writes.insert(T);
      addChainTables(D.getChain(), RW.Reads);
      if (D.getPred())
        collectPredReads(*D.getPred(), RW.Reads);
      break;
    }
    case Stmt::Kind::Update: {
      const auto &U = static_cast<const UpdateStmt &>(*St);
      // Conservative: the whole chain counts as written and read.
      addChainTables(U.getChain(), RW.Writes);
      addChainTables(U.getChain(), RW.Reads);
      if (U.getPred())
        collectPredReads(*U.getPred(), RW.Reads);
      break;
    }
    }
  }
  return RW;
}
