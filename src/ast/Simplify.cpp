//===- ast/Simplify.cpp - Program normalization -------------------------------===//

#include "ast/Simplify.h"

#include <cassert>

using namespace migrator;

namespace {

SimplifiedPred simplified(PredPtr P) {
  return {PredVerdict::Simplified, std::move(P)};
}

SimplifiedPred verdict(PredVerdict V) { return {V, nullptr}; }

/// `a op a` folds to a constant for reflexive/irreflexive operators.
std::optional<PredVerdict> foldSelfComparison(const CmpPred &C) {
  if (!C.rhsIsAttr() || C.getLhs() != C.getRhsAttr())
    return std::nullopt;
  switch (C.getOp()) {
  case CmpOp::Eq:
  case CmpOp::Le:
  case CmpOp::Ge:
    return PredVerdict::AlwaysTrue;
  case CmpOp::Ne:
  case CmpOp::Lt:
  case CmpOp::Gt:
    return PredVerdict::AlwaysFalse;
  }
  return std::nullopt;
}

} // namespace

SimplifiedPred migrator::simplifyPred(const Pred &P) {
  switch (P.getKind()) {
  case Pred::Kind::Cmp: {
    const auto &C = static_cast<const CmpPred &>(P);
    if (std::optional<PredVerdict> V = foldSelfComparison(C))
      return verdict(*V);
    return simplified(C.clone());
  }
  case Pred::Kind::In: {
    const auto &I = static_cast<const InPred &>(P);
    return simplified(
        std::make_unique<InPred>(I.getLhs(), simplifyQuery(I.getSubQuery())));
  }
  case Pred::Kind::And:
  case Pred::Kind::Or: {
    const auto &B = static_cast<const BinaryPred &>(P);
    bool IsAnd = P.getKind() == Pred::Kind::And;
    SimplifiedPred L = simplifyPred(B.getLhs());
    SimplifiedPred R = simplifyPred(B.getRhs());

    // Units and absorbing elements.
    PredVerdict Unit =
        IsAnd ? PredVerdict::AlwaysTrue : PredVerdict::AlwaysFalse;
    PredVerdict Absorb =
        IsAnd ? PredVerdict::AlwaysFalse : PredVerdict::AlwaysTrue;
    if (L.Verdict == Absorb || R.Verdict == Absorb)
      return verdict(Absorb);
    if (L.Verdict == Unit && R.Verdict == Unit)
      return verdict(Unit);
    if (L.Verdict == Unit)
      return R;
    if (R.Verdict == Unit)
      return L;

    // Idempotence: p ∧ p → p.
    if (L.P->equals(*R.P))
      return L;
    return simplified(IsAnd ? makeAnd(std::move(L.P), std::move(R.P))
                            : makeOr(std::move(L.P), std::move(R.P)));
  }
  case Pred::Kind::Not: {
    const auto &N = static_cast<const NotPred &>(P);
    // Double negation: ¬¬p → p (simplify the inner predicate first).
    if (N.getSubPred().getKind() == Pred::Kind::Not)
      return simplifyPred(
          static_cast<const NotPred &>(N.getSubPred()).getSubPred());
    SimplifiedPred Sub = simplifyPred(N.getSubPred());
    if (Sub.Verdict == PredVerdict::AlwaysTrue)
      return verdict(PredVerdict::AlwaysFalse);
    if (Sub.Verdict == PredVerdict::AlwaysFalse)
      return verdict(PredVerdict::AlwaysTrue);
    return simplified(makeNot(std::move(Sub.P)));
  }
  }
  assert(false && "unknown predicate kind");
  return verdict(PredVerdict::AlwaysTrue);
}

QueryPtr migrator::simplifyQuery(const Query &Q) {
  switch (Q.getKind()) {
  case Query::Kind::Project: {
    const auto &P = static_cast<const ProjectQuery &>(Q);
    return std::make_unique<ProjectQuery>(P.getAttrs(),
                                          simplifyQuery(P.getSubQuery()));
  }
  case Query::Kind::Filter: {
    const auto &F = static_cast<const FilterQuery &>(Q);
    QueryPtr Sub = simplifyQuery(F.getSubQuery());
    SimplifiedPred P = simplifyPred(F.getPred());
    switch (P.Verdict) {
    case PredVerdict::AlwaysTrue:
      return Sub; // The filter keeps everything.
    case PredVerdict::AlwaysFalse:
      // An empty result is only expressible as a filter; keep the original
      // (already minimal-enough) predicate.
      return std::make_unique<FilterQuery>(F.getPred().clone(),
                                           std::move(Sub));
    case PredVerdict::Simplified:
      return std::make_unique<FilterQuery>(std::move(P.P), std::move(Sub));
    }
    return Sub;
  }
  case Query::Kind::Chain:
    return Q.clone();
  }
  assert(false && "unknown query kind");
  return nullptr;
}

namespace {

/// Returns the simplified predicate for a statement: null when trivially
/// true (no filter), the original clone when trivially false.
PredPtr simplifyStmtPred(const Pred *P) {
  if (!P)
    return nullptr;
  SimplifiedPred S = simplifyPred(*P);
  switch (S.Verdict) {
  case PredVerdict::AlwaysTrue:
    return nullptr;
  case PredVerdict::AlwaysFalse:
    return P->clone();
  case PredVerdict::Simplified:
    return std::move(S.P);
  }
  return nullptr;
}

StmtPtr simplifyStmt(const Stmt &St) {
  switch (St.getKind()) {
  case Stmt::Kind::Insert:
    return St.clone();
  case Stmt::Kind::Delete: {
    const auto &D = static_cast<const DeleteStmt &>(St);
    return std::make_unique<DeleteStmt>(D.getTargets(), D.getChain(),
                                        simplifyStmtPred(D.getPred()));
  }
  case Stmt::Kind::Update: {
    const auto &U = static_cast<const UpdateStmt &>(St);
    return std::make_unique<UpdateStmt>(U.getChain(),
                                        simplifyStmtPred(U.getPred()),
                                        U.getTarget(), U.getValue());
  }
  }
  assert(false && "unknown statement kind");
  return nullptr;
}

} // namespace

Program migrator::simplifyProgram(const Program &P) {
  Program Out;
  for (const Function &F : P.getFunctions()) {
    if (F.isQuery()) {
      Out.addFunction(Function::makeQuery(F.getName(), F.getParams(),
                                          simplifyQuery(F.getQuery())));
      continue;
    }
    std::vector<StmtPtr> Body;
    for (const StmtPtr &St : F.getBody())
      Body.push_back(simplifyStmt(*St));
    Out.addFunction(
        Function::makeUpdate(F.getName(), F.getParams(), std::move(Body)));
  }
  return Out;
}
