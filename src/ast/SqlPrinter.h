//===- ast/SqlPrinter.h - SQL rendering of database programs ------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders schemas and database programs as executable SQL (MySQL dialect —
/// the dialect whose multi-table DELETE/UPDATE semantics the paper adopts).
/// Function parameters become named placeholders (`:param`), and the fresh
/// keys of multi-table inserts become session variables (`@fresh0`, ...),
/// mirroring the paper's `UID0` notation.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_SQLPRINTER_H
#define MIGRATOR_AST_SQLPRINTER_H

#include "ast/Program.h"
#include "relational/Schema.h"

#include <string>

namespace migrator {

/// Returns `CREATE TABLE` statements for every table of \p S.
std::string sqlSchema(const Schema &S);

/// Renders one function as a commented SQL transaction. \p S supplies the
/// table layouts needed to expand multi-table inserts.
std::string sqlFunction(const Function &F, const Schema &S);

/// Renders the whole program: one commented transaction per function.
std::string sqlProgram(const Program &P, const Schema &S);

} // namespace migrator

#endif // MIGRATOR_AST_SQLPRINTER_H
