//===- ast/Operand.h - Constants and parameter references --------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The `v ∈ Value ∪ Variable` leaves of Fig. 5: a statement operand is
/// either a literal constant or a reference to one of the enclosing
/// function's parameters, resolved at call time.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_OPERAND_H
#define MIGRATOR_AST_OPERAND_H

#include "relational/Value.h"

#include <cassert>
#include <string>
#include <variant>

namespace migrator {

/// A literal value or a function-parameter reference.
class Operand {
public:
  Operand() : Rep(Value()) {}

  static Operand constant(Value V) { return Operand(Rep_t(std::move(V))); }
  static Operand param(std::string Name) {
    return Operand(Rep_t(std::move(Name)));
  }

  bool isParam() const { return Rep.index() == 1; }
  bool isConstant() const { return Rep.index() == 0; }

  const Value &getConstant() const {
    assert(isConstant() && "operand is not a constant");
    return std::get<0>(Rep);
  }
  const std::string &getParamName() const {
    assert(isParam() && "operand is not a parameter reference");
    return std::get<1>(Rep);
  }

  bool operator==(const Operand &O) const { return Rep == O.Rep; }

  /// Renders in surface syntax: the literal, or the bare parameter name.
  std::string str() const {
    return isParam() ? getParamName() : getConstant().str();
  }

private:
  using Rep_t = std::variant<Value, std::string>;
  explicit Operand(Rep_t R) : Rep(std::move(R)) {}
  Rep_t Rep;
};

} // namespace migrator

#endif // MIGRATOR_AST_OPERAND_H
