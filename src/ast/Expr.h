//===- ast/Expr.h - Predicates and relational queries -------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The predicate and query languages of Fig. 5:
///
///   Query Q := Π a+ (Q) | σ ϕ (Q) | J
///   Pred  ϕ := a op a | a op v | a ∈ Q | ϕ ∧ ϕ | ϕ ∨ ϕ | ¬ϕ
///
/// Nodes are kind-tagged (LLVM-style hand-rolled RTTI via classof) and
/// deep-copyable through clone().
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_EXPR_H
#define MIGRATOR_AST_EXPR_H

#include "ast/JoinChain.h"
#include "ast/Operand.h"

#include <memory>
#include <string>
#include <variant>
#include <vector>

namespace migrator {

class Query;
using QueryPtr = std::unique_ptr<Query>;
class Pred;
using PredPtr = std::unique_ptr<Pred>;

/// Binary comparison operators of the predicate language.
enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/// Returns the surface spelling of \p Op ("=", "!=", "<", ...).
const char *cmpOpName(CmpOp Op);

/// Evaluates `L Op R` over runtime values. Comparisons across different
/// value kinds are false, except `!=` which is true.
bool evalCmpOp(CmpOp Op, const Value &L, const Value &R);

//===----------------------------------------------------------------------===//
// Predicates
//===----------------------------------------------------------------------===//

/// Base class of predicate nodes.
class Pred {
public:
  enum class Kind { Cmp, In, And, Or, Not };

  virtual ~Pred();

  Kind getKind() const { return TheKind; }

  /// Deep-copies the predicate.
  virtual PredPtr clone() const = 0;

  /// Renders in surface syntax.
  virtual std::string str() const = 0;

  /// Structural equality.
  virtual bool equals(const Pred &O) const = 0;

protected:
  explicit Pred(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

/// `a op a` / `a op v`: compares an attribute against another attribute or
/// an operand (constant or parameter).
class CmpPred : public Pred {
public:
  using Rhs_t = std::variant<AttrRef, Operand>;

  CmpPred(AttrRef Lhs, CmpOp Op, Rhs_t Rhs)
      : Pred(Kind::Cmp), Lhs(std::move(Lhs)), Op(Op), Rhs(std::move(Rhs)) {}

  const AttrRef &getLhs() const { return Lhs; }
  CmpOp getOp() const { return Op; }
  bool rhsIsAttr() const { return Rhs.index() == 0; }
  const AttrRef &getRhsAttr() const { return std::get<0>(Rhs); }
  const Operand &getRhsOperand() const { return std::get<1>(Rhs); }

  PredPtr clone() const override;
  std::string str() const override;
  bool equals(const Pred &O) const override;

  static bool classof(const Pred *P) { return P->getKind() == Kind::Cmp; }

private:
  AttrRef Lhs;
  CmpOp Op;
  Rhs_t Rhs;
};

/// `a ∈ Q`: membership of an attribute's value in a sub-query result.
class InPred : public Pred {
public:
  InPred(AttrRef Lhs, QueryPtr Sub);
  ~InPred() override;

  const AttrRef &getLhs() const { return Lhs; }
  const Query &getSubQuery() const { return *Sub; }

  PredPtr clone() const override;
  std::string str() const override;
  bool equals(const Pred &O) const override;

  static bool classof(const Pred *P) { return P->getKind() == Kind::In; }

private:
  AttrRef Lhs;
  QueryPtr Sub;
};

/// Binary conjunction / disjunction.
class BinaryPred : public Pred {
public:
  BinaryPred(Kind K, PredPtr L, PredPtr R)
      : Pred(K), L(std::move(L)), R(std::move(R)) {
    assert((getKind() == Kind::And || getKind() == Kind::Or) &&
           "binary predicate must be And or Or");
  }

  const Pred &getLhs() const { return *L; }
  const Pred &getRhs() const { return *R; }

  PredPtr clone() const override;
  std::string str() const override;
  bool equals(const Pred &O) const override;

  static bool classof(const Pred *P) {
    return P->getKind() == Kind::And || P->getKind() == Kind::Or;
  }

private:
  PredPtr L, R;
};

/// Negation.
class NotPred : public Pred {
public:
  explicit NotPred(PredPtr Sub) : Pred(Kind::Not), Sub(std::move(Sub)) {}

  const Pred &getSubPred() const { return *Sub; }

  PredPtr clone() const override;
  std::string str() const override;
  bool equals(const Pred &O) const override;

  static bool classof(const Pred *P) { return P->getKind() == Kind::Not; }

private:
  PredPtr Sub;
};

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

/// Base class of query nodes.
class Query {
public:
  enum class Kind { Project, Filter, Chain };

  virtual ~Query();

  Kind getKind() const { return TheKind; }

  virtual QueryPtr clone() const = 0;
  virtual std::string str() const = 0;
  virtual bool equals(const Query &O) const = 0;

  /// Returns the join chain at the root of this query's FROM part (every
  /// query bottoms out in a chain).
  const JoinChain &getChain() const;

protected:
  explicit Query(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

/// `Π a1,...,an (Q)`.
class ProjectQuery : public Query {
public:
  ProjectQuery(std::vector<AttrRef> Attrs, QueryPtr Sub)
      : Query(Kind::Project), Attrs(std::move(Attrs)), Sub(std::move(Sub)) {}

  const std::vector<AttrRef> &getAttrs() const { return Attrs; }
  const Query &getSubQuery() const { return *Sub; }

  QueryPtr clone() const override;
  std::string str() const override;
  bool equals(const Query &O) const override;

  static bool classof(const Query *Q) { return Q->getKind() == Kind::Project; }

private:
  std::vector<AttrRef> Attrs;
  QueryPtr Sub;
};

/// `σ ϕ (Q)`.
class FilterQuery : public Query {
public:
  FilterQuery(PredPtr P, QueryPtr Sub)
      : Query(Kind::Filter), P(std::move(P)), Sub(std::move(Sub)) {}

  const Pred &getPred() const { return *P; }
  const Query &getSubQuery() const { return *Sub; }

  QueryPtr clone() const override;
  std::string str() const override;
  bool equals(const Query &O) const override;

  static bool classof(const Query *Q) { return Q->getKind() == Kind::Filter; }

private:
  PredPtr P;
  QueryPtr Sub;
};

/// A join chain used as a query leaf.
class ChainQuery : public Query {
public:
  explicit ChainQuery(JoinChain Chain)
      : Query(Kind::Chain), Chain(std::move(Chain)) {}

  const JoinChain &getJoinChain() const { return Chain; }

  QueryPtr clone() const override;
  std::string str() const override;
  bool equals(const Query &O) const override;

  static bool classof(const Query *Q) { return Q->getKind() == Kind::Chain; }

private:
  JoinChain Chain;
};

//===----------------------------------------------------------------------===//
// Convenience builders
//===----------------------------------------------------------------------===//

/// Builds `attr op operand`.
PredPtr makeCmp(AttrRef Lhs, CmpOp Op, Operand Rhs);
/// Builds `attr op attr`.
PredPtr makeAttrCmp(AttrRef Lhs, CmpOp Op, AttrRef Rhs);
/// Builds `L ∧ R`.
PredPtr makeAnd(PredPtr L, PredPtr R);
/// Builds `L ∨ R`.
PredPtr makeOr(PredPtr L, PredPtr R);
/// Builds `¬P`.
PredPtr makeNot(PredPtr P);

/// Builds `Π Attrs (σ P (Chain))`; \p P may be null for an unfiltered scan.
QueryPtr makeSelect(std::vector<AttrRef> Attrs, JoinChain Chain, PredPtr P);

} // namespace migrator

#endif // MIGRATOR_AST_EXPR_H
