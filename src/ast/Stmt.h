//===- ast/Stmt.h - Update statements -----------------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The update-statement language of Fig. 5:
///
///   InsStmt := ins(J, {(a : v)+})
///   DelStmt := del([T+], J, ϕ)
///   UpdStmt := upd(J, ϕ, a, v)
///
/// Sequencing (`U ; U`) is represented as the statement list of the
/// enclosing function body. An insert whose chain spans several tables is
/// the paper's multi-table insert shorthand (Sec. 3.1): one row is inserted
/// per member table and join-linked attributes share fresh UIDs.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_AST_STMT_H
#define MIGRATOR_AST_STMT_H

#include "ast/Expr.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace migrator {

class Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// Base class of update statements.
class Stmt {
public:
  enum class Kind { Insert, Delete, Update };

  virtual ~Stmt();

  Kind getKind() const { return TheKind; }

  virtual StmtPtr clone() const = 0;
  virtual std::string str() const = 0;
  virtual bool equals(const Stmt &O) const = 0;

protected:
  explicit Stmt(Kind K) : TheKind(K) {}

private:
  const Kind TheKind;
};

/// `ins(J, {a1:v1, ..., an:vn})`.
class InsertStmt : public Stmt {
public:
  using Assignment = std::pair<AttrRef, Operand>;

  InsertStmt(JoinChain Chain, std::vector<Assignment> Values)
      : Stmt(Kind::Insert), Chain(std::move(Chain)), Values(std::move(Values)) {}

  const JoinChain &getChain() const { return Chain; }
  const std::vector<Assignment> &getValues() const { return Values; }

  StmtPtr clone() const override;
  std::string str() const override;
  bool equals(const Stmt &O) const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Insert; }

private:
  JoinChain Chain;
  std::vector<Assignment> Values;
};

/// `del([T1,...,Tn], J, ϕ)`: deletes from the listed tables all source
/// tuples contributing to a join row satisfying ϕ.
class DeleteStmt : public Stmt {
public:
  DeleteStmt(std::vector<std::string> Targets, JoinChain Chain, PredPtr P)
      : Stmt(Kind::Delete), Targets(std::move(Targets)),
        Chain(std::move(Chain)), P(std::move(P)) {}

  const std::vector<std::string> &getTargets() const { return Targets; }
  const JoinChain &getChain() const { return Chain; }
  const Pred *getPred() const { return P.get(); } ///< Null = delete all.

  StmtPtr clone() const override;
  std::string str() const override;
  bool equals(const Stmt &O) const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Delete; }

private:
  std::vector<std::string> Targets;
  JoinChain Chain;
  PredPtr P;
};

/// `upd(J, ϕ, a, v)`: sets attribute a to v on all tuples of a's table that
/// contribute to a join row satisfying ϕ.
class UpdateStmt : public Stmt {
public:
  UpdateStmt(JoinChain Chain, PredPtr P, AttrRef Target, Operand Val)
      : Stmt(Kind::Update), Chain(std::move(Chain)), P(std::move(P)),
        Target(std::move(Target)), Val(std::move(Val)) {}

  const JoinChain &getChain() const { return Chain; }
  const Pred *getPred() const { return P.get(); } ///< Null = update all.
  const AttrRef &getTarget() const { return Target; }
  const Operand &getValue() const { return Val; }

  StmtPtr clone() const override;
  std::string str() const override;
  bool equals(const Stmt &O) const override;

  static bool classof(const Stmt *S) { return S->getKind() == Kind::Update; }

private:
  JoinChain Chain;
  PredPtr P;
  AttrRef Target;
  Operand Val;
};

} // namespace migrator

#endif // MIGRATOR_AST_STMT_H
