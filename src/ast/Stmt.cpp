//===- ast/Stmt.cpp - Update statements ------------------------------------===//

#include "ast/Stmt.h"

#include <sstream>

using namespace migrator;

Stmt::~Stmt() = default;

StmtPtr InsertStmt::clone() const {
  return std::make_unique<InsertStmt>(Chain, Values);
}

std::string InsertStmt::str() const {
  std::ostringstream OS;
  OS << "insert into " << Chain.str() << " values (";
  for (size_t I = 0; I < Values.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Values[I].first.str() << ": " << Values[I].second.str();
  }
  OS << ");";
  return OS.str();
}

bool InsertStmt::equals(const Stmt &O) const {
  if (O.getKind() != Kind::Insert)
    return false;
  const auto &OI = static_cast<const InsertStmt &>(O);
  return Chain == OI.Chain && Values == OI.Values;
}

StmtPtr DeleteStmt::clone() const {
  return std::make_unique<DeleteStmt>(Targets, Chain, P ? P->clone() : nullptr);
}

std::string DeleteStmt::str() const {
  std::ostringstream OS;
  OS << "delete [";
  for (size_t I = 0; I < Targets.size(); ++I) {
    if (I != 0)
      OS << ", ";
    OS << Targets[I];
  }
  OS << "] from " << Chain.str();
  if (P)
    OS << " where " << P->str();
  OS << ";";
  return OS.str();
}

bool DeleteStmt::equals(const Stmt &O) const {
  if (O.getKind() != Kind::Delete)
    return false;
  const auto &OD = static_cast<const DeleteStmt &>(O);
  if (Targets != OD.Targets || Chain != OD.Chain)
    return false;
  if ((P == nullptr) != (OD.P == nullptr))
    return false;
  return !P || P->equals(*OD.P);
}

StmtPtr UpdateStmt::clone() const {
  return std::make_unique<UpdateStmt>(Chain, P ? P->clone() : nullptr, Target,
                                      Val);
}

std::string UpdateStmt::str() const {
  std::ostringstream OS;
  OS << "update " << Chain.str() << " set " << Target.str() << " = "
     << Val.str();
  if (P)
    OS << " where " << P->str();
  OS << ";";
  return OS.str();
}

bool UpdateStmt::equals(const Stmt &O) const {
  if (O.getKind() != Kind::Update)
    return false;
  const auto &OU = static_cast<const UpdateStmt &>(O);
  if (Chain != OU.Chain || !(Target == OU.Target) || !(Val == OU.Val))
    return false;
  if ((P == nullptr) != (OU.P == nullptr))
    return false;
  return !P || P->equals(*OU.P);
}
