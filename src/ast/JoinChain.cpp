//===- ast/JoinChain.cpp - Join chains over tables -------------------------===//

#include "ast/JoinChain.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <numeric>
#include <sstream>

using namespace migrator;

JoinChain JoinChain::table(std::string Name) {
  JoinChain C;
  C.Tables.push_back(std::move(Name));
  C.Natural = true;
  return C;
}

JoinChain JoinChain::natural(std::vector<std::string> Tables) {
  assert(!Tables.empty() && "join chain must contain at least one table");
  JoinChain C;
  C.Tables = std::move(Tables);
  C.Natural = true;
  return C;
}

JoinChain JoinChain::explicitJoin(
    std::vector<std::string> Tables,
    std::vector<std::pair<AttrRef, AttrRef>> Eqs) {
  assert(!Tables.empty() && "join chain must contain at least one table");
  JoinChain C;
  C.Tables = std::move(Tables);
  C.Eqs = std::move(Eqs);
  C.Natural = false;
  return C;
}

bool JoinChain::containsTable(const std::string &Name) const {
  return std::find(Tables.begin(), Tables.end(), Name) != Tables.end();
}

std::vector<QualifiedAttr> JoinChain::allAttrs(const Schema &S) const {
  std::vector<QualifiedAttr> Result;
  for (const std::string &T : Tables) {
    const TableSchema &TS = S.getTable(T);
    for (const Attribute &A : TS.getAttrs())
      Result.push_back({T, A.Name});
  }
  return Result;
}

std::vector<std::vector<QualifiedAttr>>
JoinChain::attrClasses(const Schema &S) const {
  std::vector<QualifiedAttr> Attrs = allAttrs(S);

  if (Natural) {
    // Group by attribute name: a natural chain equates all identically named
    // attributes across its member tables.
    std::map<std::string, std::vector<QualifiedAttr>> ByName;
    std::vector<std::string> Order;
    for (const QualifiedAttr &A : Attrs) {
      auto [It, New] = ByName.try_emplace(A.Attr);
      if (New)
        Order.push_back(A.Attr);
      It->second.push_back(A);
    }
    std::vector<std::vector<QualifiedAttr>> Classes;
    Classes.reserve(Order.size());
    for (const std::string &Name : Order)
      Classes.push_back(std::move(ByName[Name]));
    return Classes;
  }

  // Explicit joins: union-find over the declared equalities; every other
  // attribute is a singleton class.
  std::vector<unsigned> Parent(Attrs.size());
  std::iota(Parent.begin(), Parent.end(), 0u);
  auto Find = [&Parent](unsigned X) {
    while (Parent[X] != X) {
      Parent[X] = Parent[Parent[X]];
      X = Parent[X];
    }
    return X;
  };
  auto IndexOf = [&Attrs, this, &S](const AttrRef &Ref) -> unsigned {
    std::optional<QualifiedAttr> QA = resolve(Ref, S);
    assert(QA && "join equality names an attribute outside the chain");
    for (unsigned I = 0; I < Attrs.size(); ++I)
      if (Attrs[I] == *QA)
        return I;
    assert(false && "resolved attribute missing from chain attribute list");
    return 0;
  };
  for (const auto &[L, R] : Eqs)
    Parent[Find(IndexOf(L))] = Find(IndexOf(R));

  std::map<unsigned, std::vector<QualifiedAttr>> Groups;
  std::vector<unsigned> Order;
  for (unsigned I = 0; I < Attrs.size(); ++I) {
    unsigned Root = Find(I);
    auto [It, New] = Groups.try_emplace(Root);
    if (New)
      Order.push_back(Root);
    It->second.push_back(Attrs[I]);
  }
  std::vector<std::vector<QualifiedAttr>> Classes;
  Classes.reserve(Order.size());
  for (unsigned Root : Order)
    Classes.push_back(std::move(Groups[Root]));
  return Classes;
}

std::optional<unsigned>
JoinChain::AttrClassPartition::classOf(const QualifiedAttr &QA) const {
  auto It = Index.find(QA);
  if (It == Index.end())
    return std::nullopt;
  return It->second;
}

JoinChain::AttrClassPartition
JoinChain::attrClassPartition(const Schema &S) const {
  AttrClassPartition P;
  P.Classes = attrClasses(S);
  for (unsigned C = 0; C < P.Classes.size(); ++C)
    for (const QualifiedAttr &QA : P.Classes[C])
      P.Index.emplace(QA, C);
  P.ClassOf.resize(Tables.size());
  for (size_t T = 0; T < Tables.size(); ++T) {
    const TableSchema &TS = S.getTable(Tables[T]);
    P.ClassOf[T].reserve(TS.getNumAttrs());
    for (const Attribute &A : TS.getAttrs()) {
      std::optional<unsigned> C = P.classOf({Tables[T], A.Name});
      assert(C && "attribute missing from class partition");
      P.ClassOf[T].push_back(*C);
    }
  }
  return P;
}

std::optional<QualifiedAttr> JoinChain::resolve(const AttrRef &Ref,
                                                const Schema &S) const {
  if (Ref.isQualified()) {
    if (!containsTable(Ref.Table))
      return std::nullopt;
    const TableSchema *TS = S.findTable(Ref.Table);
    if (!TS || !TS->hasAttr(Ref.Attr))
      return std::nullopt;
    return QualifiedAttr{Ref.Table, Ref.Attr};
  }
  for (const std::string &T : Tables) {
    const TableSchema *TS = S.findTable(T);
    if (TS && TS->hasAttr(Ref.Attr))
      return QualifiedAttr{T, Ref.Attr};
  }
  return std::nullopt;
}

std::string JoinChain::str() const {
  std::ostringstream OS;
  for (size_t I = 0; I < Tables.size(); ++I) {
    if (I != 0)
      OS << " join ";
    OS << Tables[I];
  }
  if (!Natural && !Eqs.empty()) {
    OS << " on ";
    for (size_t I = 0; I < Eqs.size(); ++I) {
      if (I != 0)
        OS << " and ";
      OS << Eqs[I].first.str() << " = " << Eqs[I].second.str();
    }
  }
  return OS.str();
}
