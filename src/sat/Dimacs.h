//===- sat/Dimacs.h - DIMACS CNF interchange ----------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// DIMACS CNF parsing and serialization for the SAT substrate, so instances
/// can be exchanged with external solvers (e.g. to cross-validate the CDCL
/// implementation) and encoded problems can be dumped for inspection.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SAT_DIMACS_H
#define MIGRATOR_SAT_DIMACS_H

#include "sat/Solver.h"

#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

namespace migrator {
namespace sat {

/// A CNF problem in memory.
struct DimacsProblem {
  int NumVars = 0;
  std::vector<std::vector<Lit>> Clauses;
};

/// Parses DIMACS CNF text (`c` comments, one `p cnf V C` header, clauses
/// terminated by 0). Returns the problem or a diagnostic message.
std::variant<DimacsProblem, std::string> parseDimacs(std::string_view Text);

/// Serializes \p P as DIMACS CNF.
std::string toDimacs(const DimacsProblem &P);

/// Loads \p P into a fresh solver and solves it. Returns the model (indexed
/// by variable) or nullopt for UNSAT.
std::optional<std::vector<bool>> solveDimacs(const DimacsProblem &P);

} // namespace sat
} // namespace migrator

#endif // MIGRATOR_SAT_DIMACS_H
