//===- sat/Solver.h - CDCL SAT solver ------------------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver (the role Sat4J plays in the
/// paper's implementation). Features: two-watched-literal propagation,
/// first-UIP conflict analysis, VSIDS-style variable activities with a
/// binary heap, phase saving, and Luby restarts.
///
/// The solver is incremental at two granularities:
///
///  * Clauses (in particular, blocking clauses) may be added between solve()
///    calls and learned clauses are kept — the per-encoder loop the sketch
///    completion always used.
///  * solve(Assumptions) solves under a temporary set of assumption
///    literals, MiniSat-style: assumptions are asserted as pseudo-decisions
///    at levels 1..k, and when the formula is unsatisfiable *relative to the
///    assumptions* (but not absolutely), getConflict() returns the subset of
///    assumptions the final-conflict analysis blames. This is what lets one
///    long-lived solver serve many queries: sketch encodings guarded by
///    activation literals, MaxSAT soft clauses guarded by relaxation
///    variables — learned clauses, VSIDS activities, and saved phases all
///    survive from one query to the next.
///
/// Because clauses accumulate across thousands of queries in that regime,
/// the incremental engine also tracks LBD ("glue": the number of distinct
/// decision levels in a learned clause) and periodically runs reduceDB(),
/// which deletes the cold half of the learned clauses (keeping glue <= 2 and
/// reason-locked ones) plus any clause already satisfied at the root —
/// which is how retired, deactivated sketch encodings get reclaimed.
///
/// All behaviour new to the incremental engine (trail reuse across calls,
/// non-root clause addition, learnt-clause minimization, clause-DB
/// reduction) is gated on a per-solver flag captured from
/// satIncrementalEnabled() at construction, so `MIGRATOR_NO_INCREMENTAL=1`
/// (or setSatIncrementalEnabled(false)) reproduces the legacy engine —
/// the differential oracle scripts/check.sh runs.
///
/// setFixedOrderDecisions(true) switches branching from VSIDS to a
/// canonical rule: decide the lowest-indexed unassigned variable, always at
/// its user-set phase (setPhase). Under that rule the model returned is the
/// lexicographically least model of the formula with respect to (variable
/// creation order, preferred phase): a variable only ever takes its
/// non-preferred value when it is *forced* — by propagation or by an
/// implied (learned) clause — and anything forced holds in every model
/// extending the earlier-variable prefix. The model is therefore a pure
/// semantic function of the clause set, independent of learned clauses,
/// watch order, restarts, clause deletion, and of whether the search ran
/// from scratch or continued an earlier trail. The sketch encoder runs its
/// completion solvers in this mode on both engines: it is what makes the
/// drawn model *sequence* — and hence the synthesized program — byte
/// identical between the incremental engine and the scratch oracle, while
/// the incremental engine's kept trail still turns each next-model query
/// into a cheap lex-successor step instead of a full re-descent.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SAT_SOLVER_H
#define MIGRATOR_SAT_SOLVER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace migrator {
namespace sat {

/// A propositional variable, numbered from 0.
using Var = int;

/// A literal: variable plus sign, encoded as 2*var (positive) or
/// 2*var + 1 (negated).
struct Lit {
  int Code = -2;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

  std::string str() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }
};

/// Builds the positive literal of \p V.
inline Lit posLit(Var V) { return Lit(V, false); }
/// Builds the negative literal of \p V.
inline Lit negLit(Var V) { return Lit(V, true); }

/// Whether newly constructed solvers use the incremental engine
/// (solve-under-assumptions trail reuse, non-root clause addition, learnt
/// minimization, LBD-guided clause-DB reduction). Defaults to on; the
/// MIGRATOR_NO_INCREMENTAL environment variable or
/// setSatIncrementalEnabled(false) turns it off — the differential oracle,
/// following the `--no-index` / `--no-cow` precedent.
bool satIncrementalEnabled();

/// Programmatic override of the environment policy (benches flip this to
/// measure the ablation in-process).
void setSatIncrementalEnabled(bool On);

/// CDCL SAT solver.
class Solver {
public:
  enum class Result { Sat, Unsat };

  Solver();

  /// Allocates and returns a fresh variable.
  Var newVar();

  int getNumVars() const { return static_cast<int>(Assigns.size()); }

  /// Cumulative search statistics across all solve() calls (the numbers the
  /// observability layer and bench_ablation report).
  uint64_t getNumConflicts() const { return Conflicts; }
  uint64_t getNumDecisions() const { return Decisions; }
  uint64_t getNumPropagations() const { return Propagations; }
  uint64_t getNumLearnedClauses() const { return LearnedClauses; }
  uint64_t getNumRestarts() const { return Restarts; }
  uint64_t getNumAssumptionCalls() const { return AssumptionCalls; }
  uint64_t getNumReduceDbs() const { return ReduceDbs; }
  uint64_t getNumDeletedClauses() const { return DeletedClauses; }
  /// Sum / count of LBD values over all attached learned clauses, for
  /// average-glue reporting (sat.avg_lbd).
  uint64_t getLbdSum() const { return LbdSum; }
  uint64_t getLbdCount() const { return LbdCount; }

  /// Current clause-database size (original + learned still attached).
  size_t getNumClauses() const { return Clauses.size(); }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (which also latches the solver into UNSAT).
  ///
  /// Legacy engine: must be called with an empty trail (root level). The
  /// incremental engine additionally accepts clauses while a trail from a
  /// previous solve(Assumptions) is still in place — it backjumps just far
  /// enough that the new clause is no longer falsified and defers
  /// propagation to the next solve() call.
  bool addClause(std::vector<Lit> Lits);

  /// Adds the exactly-one constraint over \p Vars (at-least-one clause plus
  /// pairwise at-most-one clauses) — the paper's n-ary xor over hole
  /// indicator variables.
  bool addExactlyOne(const std::vector<Var> &Vars);

  /// Sets the preferred phase of \p V: the polarity tried first when
  /// branching. Seeds the phase-saving state, and is the permanent
  /// preferred polarity under fixed-order decisions.
  void setPhase(Var V, bool Positive) {
    assert(V >= 0 && V < getNumVars() && "variable out of range");
    SavedPhase[V] = Positive;
    UserPhase[V] = Positive;
  }

  /// Switches branching to the canonical fixed-order rule (see the file
  /// comment): decisions take the lowest-indexed unassigned variable at its
  /// setPhase() polarity, making every model returned the lex-least one and
  /// the solver's answers independent of search history.
  void setFixedOrderDecisions(bool On) {
    FixedOrder = On;
    FixedCursor = 0;
  }

  /// Sets the initial VSIDS activity of \p V, biasing the branching order
  /// before any conflicts occur (used by the sketch encoder to prefer each
  /// hole's first alternative).
  void setInitialActivity(Var V, double A);

  /// Solves the current formula.
  Result solve();

  /// Solves the current formula under \p Assumptions: every assumption
  /// literal is temporarily asserted true (as a pseudo-decision), without
  /// becoming part of the formula. An Unsat answer is relative to the
  /// assumptions unless the formula itself was refuted at the root;
  /// getConflict() then holds the blamed assumption subset. The incremental
  /// engine keeps the satisfying trail between calls and reuses the longest
  /// decision-level prefix consistent with the next call's assumptions.
  Result solve(const std::vector<Lit> &Assumptions);

  /// After solve(Assumptions) returned Unsat without latching the solver
  /// (the formula is unsatisfiable only *under the assumptions*): the
  /// subset of the assumptions, as given, whose conjunction the final
  /// conflict analysis blames — re-asserting exactly these as unit clauses
  /// yields an unsatisfiable formula. Empty when the formula is
  /// unsatisfiable outright.
  const std::vector<Lit> &getConflict() const { return Conflict; }

  /// After a Sat result: the model value of \p V.
  bool modelValue(Var V) const {
    assert(V >= 0 && V < getNumVars() && "variable out of range");
    assert(Model[V] != LUndef && "model not total");
    return Model[V] == LTrue;
  }

  /// Root-level status of \p V: +1 fixed true, -1 fixed false, 0 not fixed
  /// at the root (free or only assigned above level 0). Used by the sketch
  /// encoder to retire encodings defensively.
  int rootValue(Var V) const {
    assert(V >= 0 && V < getNumVars() && "variable out of range");
    if (Assigns[V] == LUndef || Level[V] != 0)
      return 0;
    return Assigns[V] == LTrue ? 1 : -1;
  }

  /// Reduces the learned-clause database: drops every clause already
  /// satisfied at the root (learned or original — reclaiming retired,
  /// deactivated encodings), keeps learned clauses that are reason-locked
  /// or have glue (LBD) <= 2, and deletes the colder half of the rest
  /// (highest LBD first, older first among ties). Fired automatically on a
  /// geometric schedule by the incremental engine while solving; public so
  /// tests and tools can force a pass (safe on either engine).
  void reduceDB();

  /// Marks an encoding boundary on a persistent solver: reclaims retired
  /// (root-satisfied) clauses via reduceDB(), drops root-assigned variables
  /// from the branching heap, and resets the activity increment and the
  /// reduceDB schedule. After a predecessor encoding has been fully retired
  /// (all its variables root-assigned), the next encoding's search is then
  /// decision-for-decision identical to a fresh solver's — which is what
  /// keeps synthesis results independent of how sketches are distributed
  /// over portfolio ranks (the jobs-determinism contract) while the clause
  /// database, trail machinery, and allocations still carry over.
  void beginEncoding();

private:
  // Three-valued assignment.
  using LBool = uint8_t;
  static constexpr LBool LUndef = 0, LTrue = 1, LFalse = 2;

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
    int Lbd = 0; ///< Glue of learned clauses; 0 for originals.
  };

  static constexpr int NoReason = -1;

  /// Captured from satIncrementalEnabled() at construction; gates every
  /// behavioural difference from the legacy engine.
  const bool Incremental;

  // Clause database; index into Clauses acts as a clause reference.
  std::vector<Clause> Clauses;
  // Watch lists: for each literal code, the clauses watching it.
  std::vector<std::vector<int>> Watches;

  std::vector<LBool> Assigns;
  std::vector<LBool> Model;
  std::vector<int> Level;
  std::vector<int> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropHead = 0;

  // Assumption machinery.
  std::vector<Lit> Conflict;    ///< getConflict() result of the last call.
  std::vector<Lit> LastAssumps; ///< Assumptions of the previous solve, for
                                ///< trail-reuse prefix matching.

  // Reusable analysis buffers (hoisted out of analyze() so the per-conflict
  // cost is amortized).
  std::vector<char> Seen;      ///< Var -> marked during analysis.
  std::vector<Var> ToClear;    ///< Marked vars to unmark after analysis.
  std::vector<int> LevelStamp; ///< Level -> stamp, for computeLbd().
  int CurStamp = 0;

  // reduceDB schedule (incremental engine only).
  uint64_t LearnedSinceReduce = 0;
  uint64_t ReduceLimit = 2000;

  // VSIDS.
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<int> HeapPos; ///< Var -> index in Heap, or -1.
  std::vector<Var> Heap;    ///< Binary max-heap ordered by activity.
  std::vector<bool> SavedPhase;
  std::vector<bool> UserPhase; ///< setPhase() polarity; never overwritten
                               ///< by phase saving.

  // Fixed-order decision mode (see setFixedOrderDecisions).
  bool FixedOrder = false;
  Var FixedCursor = 0; ///< Lower bound on the lowest unassigned variable.

  bool Unsatisfiable = false;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t LearnedClauses = 0;
  uint64_t Restarts = 0;
  uint64_t AssumptionCalls = 0;
  uint64_t ReduceDbs = 0;
  uint64_t DeletedClauses = 0;
  uint64_t LbdSum = 0;
  uint64_t LbdCount = 0;

  // --- assignment helpers ---
  LBool valueOf(Lit L) const {
    LBool A = Assigns[L.var()];
    if (A == LUndef)
      return LUndef;
    bool IsTrue = (A == LTrue) != L.negated();
    return IsTrue ? LTrue : LFalse;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }
  void enqueue(Lit L, int ReasonRef);
  void cancelUntil(int TargetLevel);

  // --- search ---
  int propagate(); ///< Returns conflicting clause ref or NoReason.
  void analyze(int ConflRef, std::vector<Lit> &Learnt);
  void analyzeFinal(Lit P); ///< Fills Conflict with the blamed assumptions.
  void minimizeLearnt(std::vector<Lit> &Learnt);
  int computeLbd(const std::vector<Lit> &Lits);
  Lit pickBranchLit();
  int attachClause(Clause C); ///< Returns clause ref; caller ensures size>=2.
  bool addClauseOnTrail(std::vector<Lit> Lits); ///< Non-root addClause.

  // --- VSIDS heap ---
  void bumpActivity(Var V);
  void decayActivity() { ActivityInc *= (1.0 / 0.95); }
  void rescaleActivities();
  void heapInsert(Var V);
  Var heapPopMax();
  void heapSiftUp(int Pos);
  void heapSiftDown(int Pos);
  bool heapLess(Var A, Var B) const { return Activity[A] < Activity[B]; }
};

} // namespace sat
} // namespace migrator

#endif // MIGRATOR_SAT_SOLVER_H
