//===- sat/Solver.h - CDCL SAT solver ------------------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A conflict-driven clause-learning SAT solver (the role Sat4J plays in the
/// paper's implementation). Features: two-watched-literal propagation,
/// first-UIP conflict analysis, VSIDS-style variable activities with a
/// binary heap, phase saving, and Luby restarts. The solver is incremental
/// in the sense the sketch-completion loop needs: clauses (in particular,
/// blocking clauses) may be added between solve() calls and learned clauses
/// are kept.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SAT_SOLVER_H
#define MIGRATOR_SAT_SOLVER_H

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace migrator {
namespace sat {

/// A propositional variable, numbered from 0.
using Var = int;

/// A literal: variable plus sign, encoded as 2*var (positive) or
/// 2*var + 1 (negated).
struct Lit {
  int Code = -2;

  Lit() = default;
  Lit(Var V, bool Negated) : Code(2 * V + (Negated ? 1 : 0)) {}

  Var var() const { return Code >> 1; }
  bool negated() const { return Code & 1; }
  Lit operator~() const {
    Lit L;
    L.Code = Code ^ 1;
    return L;
  }
  bool operator==(const Lit &O) const { return Code == O.Code; }
  bool operator!=(const Lit &O) const { return Code != O.Code; }
  bool operator<(const Lit &O) const { return Code < O.Code; }

  std::string str() const {
    return (negated() ? "-" : "") + std::to_string(var() + 1);
  }
};

/// Builds the positive literal of \p V.
inline Lit posLit(Var V) { return Lit(V, false); }
/// Builds the negative literal of \p V.
inline Lit negLit(Var V) { return Lit(V, true); }

/// CDCL SAT solver.
class Solver {
public:
  enum class Result { Sat, Unsat };

  Solver() = default;

  /// Allocates and returns a fresh variable.
  Var newVar();

  int getNumVars() const { return static_cast<int>(Assigns.size()); }

  /// Cumulative search statistics across all solve() calls (the numbers the
  /// observability layer and bench_ablation report).
  uint64_t getNumConflicts() const { return Conflicts; }
  uint64_t getNumDecisions() const { return Decisions; }
  uint64_t getNumPropagations() const { return Propagations; }
  uint64_t getNumLearnedClauses() const { return LearnedClauses; }
  uint64_t getNumRestarts() const { return Restarts; }

  /// Adds a clause. Returns false if the formula became trivially
  /// unsatisfiable (which also latches the solver into UNSAT).
  bool addClause(std::vector<Lit> Lits);

  /// Adds the exactly-one constraint over \p Vars (at-least-one clause plus
  /// pairwise at-most-one clauses) — the paper's n-ary xor over hole
  /// indicator variables.
  bool addExactlyOne(const std::vector<Var> &Vars);

  /// Sets the saved phase of \p V: the polarity tried first when branching.
  void setPhase(Var V, bool Positive) {
    assert(V >= 0 && V < getNumVars() && "variable out of range");
    SavedPhase[V] = Positive;
  }

  /// Sets the initial VSIDS activity of \p V, biasing the branching order
  /// before any conflicts occur (used by the sketch encoder to prefer each
  /// hole's first alternative).
  void setInitialActivity(Var V, double A);

  /// Solves the current formula.
  Result solve();

  /// After a Sat result: the model value of \p V.
  bool modelValue(Var V) const {
    assert(V >= 0 && V < getNumVars() && "variable out of range");
    assert(Model[V] != LUndef && "model not total");
    return Model[V] == LTrue;
  }

private:
  // Three-valued assignment.
  using LBool = uint8_t;
  static constexpr LBool LUndef = 0, LTrue = 1, LFalse = 2;

  struct Clause {
    std::vector<Lit> Lits;
    bool Learned = false;
  };

  static constexpr int NoReason = -1;

  // Clause database; index into Clauses acts as a clause reference.
  std::vector<Clause> Clauses;
  // Watch lists: for each literal code, the clauses watching it.
  std::vector<std::vector<int>> Watches;

  std::vector<LBool> Assigns;
  std::vector<LBool> Model;
  std::vector<int> Level;
  std::vector<int> Reason;
  std::vector<Lit> Trail;
  std::vector<int> TrailLim;
  size_t PropHead = 0;

  // VSIDS.
  std::vector<double> Activity;
  double ActivityInc = 1.0;
  std::vector<int> HeapPos; ///< Var -> index in Heap, or -1.
  std::vector<Var> Heap;    ///< Binary max-heap ordered by activity.
  std::vector<bool> SavedPhase;

  bool Unsatisfiable = false;
  uint64_t Conflicts = 0;
  uint64_t Decisions = 0;
  uint64_t Propagations = 0;
  uint64_t LearnedClauses = 0;
  uint64_t Restarts = 0;

  // --- assignment helpers ---
  LBool valueOf(Lit L) const {
    LBool A = Assigns[L.var()];
    if (A == LUndef)
      return LUndef;
    bool IsTrue = (A == LTrue) != L.negated();
    return IsTrue ? LTrue : LFalse;
  }
  int decisionLevel() const { return static_cast<int>(TrailLim.size()); }
  void enqueue(Lit L, int ReasonRef);
  void cancelUntil(int TargetLevel);

  // --- search ---
  int propagate(); ///< Returns conflicting clause ref or NoReason.
  void analyze(int ConflRef, std::vector<Lit> &Learnt, int &BtLevel);
  Lit pickBranchLit();
  int attachClause(Clause C); ///< Returns clause ref; caller ensures size>=2.

  // --- VSIDS heap ---
  void bumpActivity(Var V);
  void decayActivity() { ActivityInc *= (1.0 / 0.95); }
  void rescaleActivities();
  void heapInsert(Var V);
  Var heapPopMax();
  void heapSiftUp(int Pos);
  void heapSiftDown(int Pos);
  bool heapLess(Var A, Var B) const { return Activity[A] < Activity[B]; }
};

} // namespace sat
} // namespace migrator

#endif // MIGRATOR_SAT_SOLVER_H
