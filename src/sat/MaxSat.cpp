//===- sat/MaxSat.cpp - Weighted partial MaxSAT ------------------------------===//

#include "sat/MaxSat.h"

#include <algorithm>
#include <cassert>
#include <numeric>

using namespace migrator;
using namespace migrator::sat;

MaxSatSolver::MaxSatSolver() : Incremental(satIncrementalEnabled()) {}

uint64_t MaxSatSolver::getNumAssumptionCalls() const {
  return Sat ? Sat->getNumAssumptionCalls() : 0;
}

int MaxSatSolver::addVars(int N) {
  assert(N >= 0 && "negative variable count");
  int First = NumVars;
  NumVars += N;
  return First;
}

void MaxSatSolver::addHard(std::vector<Lit> Lits) {
  Hard.push_back(std::move(Lits));
}

void MaxSatSolver::addSoft(std::vector<Lit> Lits, uint64_t Weight) {
  assert(Weight > 0 && "soft clauses must have positive weight");
  Soft.push_back({std::move(Lits), Weight});
}

namespace {
constexpr int8_t Undef = -1;
} // namespace

struct MaxSatSolver::SearchState {
  std::vector<int8_t> Assign; ///< -1 undef / 0 false / 1 true.
  std::vector<Var> Order;     ///< Static branching order.
  std::vector<Var> Trail;

  uint64_t TotalSoft = 0;
  uint64_t BestLost = 0; ///< Lost weight of the best model found (UB).
  bool HaveBest = false;
  std::vector<bool> BestModel;

  uint64_t Nodes = 0;
  uint64_t NodeBudget = 0; ///< 0 = unlimited.
  bool BudgetExhausted = false;
  uint64_t BoundPrunes = 0;
  uint64_t ConflictPrunes = 0;
  uint64_t ModelsFound = 0;

  const std::vector<std::vector<Lit>> *Hard = nullptr;
  const std::vector<SoftClause> *Soft = nullptr;

  int8_t litValue(Lit L) const {
    int8_t A = Assign[L.var()];
    if (A == Undef)
      return Undef;
    return static_cast<int8_t>((A == 1) != L.negated() ? 1 : 0);
  }

  /// Weight of soft clauses falsified under the current (partial)
  /// assignment: every literal assigned false.
  uint64_t lostWeight() const {
    uint64_t Lost = 0;
    for (const SoftClause &C : *Soft) {
      bool AllFalse = true;
      for (const Lit &L : C.Lits)
        if (litValue(L) != 0) {
          AllFalse = false;
          break;
        }
      if (AllFalse)
        Lost += C.Weight;
    }
    return Lost;
  }

  /// Propagates hard units from trail position \p Mark to fixpoint.
  /// Returns false on a falsified hard clause.
  bool propagateHard() {
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const std::vector<Lit> &C : *Hard) {
        int Unassigned = 0;
        Lit UnitLit;
        bool Satisfied = false;
        for (const Lit &L : C) {
          int8_t V = litValue(L);
          if (V == 1) {
            Satisfied = true;
            break;
          }
          if (V == Undef) {
            ++Unassigned;
            UnitLit = L;
            if (Unassigned > 1)
              break;
          }
        }
        if (Satisfied)
          continue;
        if (Unassigned == 0)
          return false;
        if (Unassigned == 1) {
          assign(UnitLit.var(), !UnitLit.negated());
          Changed = true;
        }
      }
    }
    return true;
  }

  void assign(Var V, bool B) {
    assert(Assign[V] == Undef && "assigning an assigned variable");
    Assign[V] = B ? 1 : 0;
    Trail.push_back(V);
  }

  void undoTo(size_t Mark) {
    while (Trail.size() > Mark) {
      Assign[Trail.back()] = Undef;
      Trail.pop_back();
    }
  }
};

bool MaxSatSolver::search(SearchState &St) {
  if (St.NodeBudget != 0 && St.Nodes >= St.NodeBudget) {
    St.BudgetExhausted = true;
    return false;
  }
  ++St.Nodes;

  size_t Mark = St.Trail.size();
  if (!St.propagateHard()) {
    ++St.ConflictPrunes;
    St.undoTo(Mark);
    return false;
  }

  uint64_t Lost = St.lostWeight();
  if (St.HaveBest && Lost >= St.BestLost) {
    ++St.BoundPrunes;
    St.undoTo(Mark);
    return false;
  }

  // Find the next unassigned variable in static order.
  Var Next = -1;
  for (Var V : St.Order)
    if (St.Assign[V] == Undef) {
      Next = V;
      break;
    }

  if (Next < 0) {
    // Total assignment satisfying all hard clauses.
    ++St.ModelsFound;
    St.BestLost = Lost;
    St.HaveBest = true;
    St.BestModel.resize(St.Assign.size());
    for (size_t V = 0; V < St.Assign.size(); ++V)
      St.BestModel[V] = St.Assign[V] == 1;
    St.undoTo(Mark);
    return true;
  }

  // Value ordering: try the phase carrying more direct soft weight first.
  uint64_t PosW = 0, NegW = 0;
  for (const SoftClause &C : *St.Soft)
    for (const Lit &L : C.Lits) {
      if (L.var() != Next)
        continue;
      (L.negated() ? NegW : PosW) += C.Weight;
    }
  bool First = PosW >= NegW;

  for (int Phase = 0; Phase < 2; ++Phase) {
    bool B = Phase == 0 ? First : !First;
    size_t Mark2 = St.Trail.size();
    St.assign(Next, B);
    search(St);
    St.undoTo(Mark2);
    if (St.BudgetExhausted)
      break;
  }
  St.undoTo(Mark);
  return true;
}

//===----------------------------------------------------------------------===//
// Incremental engine: branch-and-bound over assumption probes
//===----------------------------------------------------------------------===//

/// Per-solve() state of the incremental engine. The branching skeleton
/// (Order, phase preference, bound, leaf-only model recording) mirrors
/// SearchState exactly; only the feasibility check differs.
struct MaxSatSolver::ProbeState {
  std::vector<int8_t> Assign; ///< -1 undef / 0 false / 1 true (decisions).
  std::vector<Var> Order;     ///< Static branching order.
  std::vector<Lit> Assumps;   ///< Solver literals of the decisions, in
                              ///< decision order: each node's vector
                              ///< extends its parent's by one literal.

  uint64_t TotalSoft = 0;
  uint64_t BestLost = 0;
  bool HaveBest = false;
  std::vector<bool> BestModel;

  uint64_t Nodes = 0;
  uint64_t NodeBudget = 0;
  bool BudgetExhausted = false;
  uint64_t BoundPrunes = 0;
  uint64_t ConflictPrunes = 0;
  uint64_t ModelsFound = 0;

  const std::vector<SoftClause> *Soft = nullptr;

  int8_t litValue(Lit L) const {
    int8_t A = Assign[L.var()];
    if (A == Undef)
      return Undef;
    return static_cast<int8_t>((A == 1) != L.negated() ? 1 : 0);
  }

  /// Weight of soft clauses every literal of which is decided false. Uses
  /// only the branch-and-bound decisions (the solver's probe models are
  /// never consulted), so the bound is weaker than the legacy engine's
  /// propagation-aware one — it prunes less, never differently.
  uint64_t lostWeight() const {
    uint64_t Lost = 0;
    for (const SoftClause &C : *Soft) {
      bool AllFalse = true;
      for (const Lit &L : C.Lits)
        if (litValue(L) != 0) {
          AllFalse = false;
          break;
        }
      if (AllFalse)
        Lost += C.Weight;
    }
    return Lost;
  }
};

void MaxSatSolver::syncSat() {
  if (!Sat)
    Sat = std::make_unique<Solver>();
  while (OrigToSat.size() < static_cast<size_t>(NumVars))
    OrigToSat.push_back(Sat->newVar());
  auto MapLit = [this](Lit L) {
    Var V = OrigToSat[L.var()];
    return L.negated() ? negLit(V) : posLit(V);
  };
  // Soft clause i becomes the hard relaxation clause (C_i ∨ r_i): setting
  // r_i true "pays" for violating the soft. The branch-and-bound layer
  // accounts the weights itself, so r_i never appears in an assumption —
  // it only keeps the solver from treating softs as mandatory.
  for (; SyncedSoft < Soft.size(); ++SyncedSoft) {
    Var R = Sat->newVar();
    RelaxOf.push_back(R);
    std::vector<Lit> C;
    C.reserve(Soft[SyncedSoft].Lits.size() + 1);
    for (const Lit &L : Soft[SyncedSoft].Lits)
      C.push_back(MapLit(L));
    C.push_back(posLit(R));
    Sat->addClause(std::move(C));
  }
  // New hard clauses (the enumerator's blocking clauses) may land on a
  // standing trail; the incremental solver accepts them there.
  for (; SyncedHard < Hard.size(); ++SyncedHard) {
    std::vector<Lit> C;
    C.reserve(Hard[SyncedHard].size());
    for (const Lit &L : Hard[SyncedHard])
      C.push_back(MapLit(L));
    if (!Sat->addClause(std::move(C)))
      return; // Root-level unsat is latched; probes below report it.
  }
}

bool MaxSatSolver::probeSearch(ProbeState &St) {
  if (St.NodeBudget != 0 && St.Nodes >= St.NodeBudget) {
    St.BudgetExhausted = true;
    return false;
  }
  ++St.Nodes;

  // Feasibility probe: do the hard clauses have a model extending the
  // decisions so far? An unsat answer prunes the whole subtree (strictly
  // stronger than the legacy engine's single-clause conflict check).
  if (Sat->solve(St.Assumps) != Solver::Result::Sat) {
    ++St.ConflictPrunes;
    return false;
  }

  uint64_t Lost = St.lostWeight();
  if (St.HaveBest && Lost >= St.BestLost) {
    ++St.BoundPrunes;
    return false;
  }

  Var Next = -1;
  for (Var V : St.Order)
    if (St.Assign[V] == Undef) {
      Next = V;
      break;
    }

  if (Next < 0) {
    // Total decision assignment; the probe above proved it a model of the
    // hard clauses. Recording only here (never a probe's own model) keeps
    // the returned optimum bit-identical to the legacy engine's.
    ++St.ModelsFound;
    St.BestLost = Lost;
    St.HaveBest = true;
    St.BestModel.resize(St.Assign.size());
    for (size_t V = 0; V < St.Assign.size(); ++V)
      St.BestModel[V] = St.Assign[V] == 1;
    return true;
  }

  uint64_t PosW = 0, NegW = 0;
  for (const SoftClause &C : *St.Soft)
    for (const Lit &L : C.Lits) {
      if (L.var() != Next)
        continue;
      (L.negated() ? NegW : PosW) += C.Weight;
    }
  bool First = PosW >= NegW;

  for (int Phase = 0; Phase < 2; ++Phase) {
    bool B = Phase == 0 ? First : !First;
    St.Assign[Next] = B ? 1 : 0;
    St.Assumps.push_back(B ? posLit(OrigToSat[Next])
                           : negLit(OrigToSat[Next]));
    probeSearch(St);
    St.Assumps.pop_back();
    St.Assign[Next] = Undef;
    if (St.BudgetExhausted)
      break;
  }
  return true;
}

std::optional<MaxSatResult> MaxSatSolver::solve(uint64_t NodeBudget) {
  if (Incremental) {
    syncSat();
    ProbeState St;
    St.Assign.assign(NumVars, Undef);
    St.Soft = &Soft;
    St.NodeBudget = NodeBudget;
    St.TotalSoft = std::accumulate(
        Soft.begin(), Soft.end(), uint64_t(0),
        [](uint64_t Acc, const SoftClause &C) { return Acc + C.Weight; });

    std::vector<uint64_t> VarWeight(NumVars, 0);
    for (const SoftClause &C : Soft)
      for (const Lit &L : C.Lits)
        VarWeight[L.var()] += C.Weight;
    St.Order.resize(NumVars);
    std::iota(St.Order.begin(), St.Order.end(), 0);
    std::stable_sort(St.Order.begin(), St.Order.end(),
                     [&VarWeight](Var A, Var B) {
                       return VarWeight[A] > VarWeight[B];
                     });

    probeSearch(St);

    ++TheStats.Calls;
    TheStats.Nodes += St.Nodes;
    TheStats.BoundPrunes += St.BoundPrunes;
    TheStats.ConflictPrunes += St.ConflictPrunes;
    TheStats.ModelsFound += St.ModelsFound;

    if (!St.HaveBest) {
      // A budget too small to reach any leaf still owes the caller a model
      // of the hard clauses if one exists: take an unconstrained probe's
      // model and report its evaluated soft weight.
      if (St.BudgetExhausted &&
          Sat->solve(std::vector<Lit>()) == Solver::Result::Sat) {
        MaxSatResult R;
        R.Model.resize(NumVars);
        for (int V = 0; V < NumVars; ++V)
          R.Model[V] = Sat->modelValue(OrigToSat[V]);
        R.Weight = 0;
        for (const SoftClause &C : Soft)
          for (const Lit &L : C.Lits)
            if (R.Model[L.var()] != L.negated()) {
              R.Weight += C.Weight;
              break;
            }
        ++TheStats.ModelsFound;
        return R;
      }
      return std::nullopt;
    }
    return MaxSatResult{St.BestModel, St.TotalSoft - St.BestLost};
  }

  SearchState St;
  St.Assign.assign(NumVars, Undef);
  St.Hard = &Hard;
  St.Soft = &Soft;
  St.NodeBudget = NodeBudget;
  St.TotalSoft = std::accumulate(
      Soft.begin(), Soft.end(), uint64_t(0),
      [](uint64_t Acc, const SoftClause &C) { return Acc + C.Weight; });

  // Static branching order: descending total soft weight touching the
  // variable, so decisions settle the objective early and bounds bite.
  std::vector<uint64_t> VarWeight(NumVars, 0);
  for (const SoftClause &C : Soft)
    for (const Lit &L : C.Lits)
      VarWeight[L.var()] += C.Weight;
  St.Order.resize(NumVars);
  std::iota(St.Order.begin(), St.Order.end(), 0);
  std::stable_sort(St.Order.begin(), St.Order.end(), [&VarWeight](Var A, Var B) {
    return VarWeight[A] > VarWeight[B];
  });

  search(St);

  ++TheStats.Calls;
  TheStats.Nodes += St.Nodes;
  TheStats.BoundPrunes += St.BoundPrunes;
  TheStats.ConflictPrunes += St.ConflictPrunes;
  TheStats.ModelsFound += St.ModelsFound;

  if (!St.HaveBest)
    return std::nullopt;
  return MaxSatResult{St.BestModel, St.TotalSoft - St.BestLost};
}
