//===- sat/Dimacs.cpp - DIMACS CNF interchange --------------------------------===//

#include "sat/Dimacs.h"

#include <sstream>

using namespace migrator;
using namespace migrator::sat;

std::variant<DimacsProblem, std::string>
migrator::sat::parseDimacs(std::string_view Text) {
  std::istringstream In{std::string(Text)};
  DimacsProblem P;
  int DeclaredClauses = -1;
  bool SawHeader = false;
  std::vector<Lit> Cur;

  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty() || Line[0] == 'c')
      continue;
    if (Line[0] == 'p') {
      if (SawHeader)
        return std::string("duplicate problem header");
      std::istringstream HS(Line);
      std::string PTok, Fmt;
      HS >> PTok >> Fmt >> P.NumVars >> DeclaredClauses;
      if (Fmt != "cnf" || HS.fail() || P.NumVars < 0 || DeclaredClauses < 0)
        return std::string("malformed problem header: " + Line);
      SawHeader = true;
      continue;
    }
    if (!SawHeader)
      return std::string("clause before the problem header");
    std::istringstream LS(Line);
    long V;
    while (LS >> V) {
      if (V == 0) {
        P.Clauses.push_back(std::move(Cur));
        Cur.clear();
        continue;
      }
      long Abs = V < 0 ? -V : V;
      if (Abs > P.NumVars)
        return std::string("literal out of range: " + std::to_string(V));
      Cur.push_back(Lit(static_cast<Var>(Abs - 1), V < 0));
    }
  }
  if (!SawHeader)
    return std::string("missing problem header");
  if (!Cur.empty())
    return std::string("unterminated clause (missing trailing 0)");
  if (DeclaredClauses >= 0 &&
      static_cast<size_t>(DeclaredClauses) != P.Clauses.size())
    return std::string("clause count mismatch: header declares " +
                       std::to_string(DeclaredClauses) + ", found " +
                       std::to_string(P.Clauses.size()));
  return P;
}

std::string migrator::sat::toDimacs(const DimacsProblem &P) {
  std::ostringstream OS;
  OS << "p cnf " << P.NumVars << " " << P.Clauses.size() << "\n";
  for (const std::vector<Lit> &C : P.Clauses) {
    for (const Lit &L : C)
      OS << (L.negated() ? -(L.var() + 1) : (L.var() + 1)) << " ";
    OS << "0\n";
  }
  return OS.str();
}

std::optional<std::vector<bool>>
migrator::sat::solveDimacs(const DimacsProblem &P) {
  Solver S;
  for (int V = 0; V < P.NumVars; ++V)
    S.newVar();
  for (const std::vector<Lit> &C : P.Clauses)
    if (!S.addClause(C))
      return std::nullopt;
  if (S.solve() != Solver::Result::Sat)
    return std::nullopt;
  std::vector<bool> Model(P.NumVars);
  for (int V = 0; V < P.NumVars; ++V)
    Model[V] = S.modelValue(V);
  return Model;
}
