//===- sat/MaxSat.h - Weighted partial MaxSAT ---------------------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An exact branch-and-bound solver for weighted partial MaxSAT — the
/// (H, S, W) problem of Sec. 4.2: satisfy all hard clauses while maximizing
/// the total weight of satisfied soft clauses. Used by the
/// value-correspondence enumerator for small-to-medium encodings; large
/// schemas use the decomposition-based KBestVcEnumerator, which produces
/// the same assignment order (validated by tests).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_SAT_MAXSAT_H
#define MIGRATOR_SAT_MAXSAT_H

#include "sat/Solver.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace migrator {
namespace sat {

/// A soft clause with a positive weight.
struct SoftClause {
  std::vector<Lit> Lits;
  uint64_t Weight;
};

/// The result of a MaxSAT call: a model of the hard clauses maximizing the
/// satisfied soft weight, plus that weight.
struct MaxSatResult {
  std::vector<bool> Model; ///< Indexed by variable.
  uint64_t Weight;         ///< Total weight of satisfied soft clauses.
};

/// Cumulative search statistics across all solve() calls on one
/// MaxSatSolver (reported by the observability layer: how much work each
/// MaxSAT call does and where candidates die).
struct MaxSatStats {
  uint64_t Calls = 0;          ///< solve() invocations.
  uint64_t Nodes = 0;          ///< Branch-and-bound nodes expanded.
  uint64_t BoundPrunes = 0;    ///< Subtrees cut by the lost-weight bound.
  uint64_t ConflictPrunes = 0; ///< Subtrees cut by a falsified hard clause.
  uint64_t ModelsFound = 0;    ///< Times a (possibly improving) total model
                               ///< of the hard clauses was reached.
};

/// Exact branch-and-bound weighted partial MaxSAT solver.
///
/// Usage: allocate variables, add hard and soft clauses, then call solve().
/// Hard clauses may be added between solve() calls (the VC enumerator adds
/// blocking clauses this way).
///
/// Two engines share the branch-and-bound skeleton (same static branching
/// order, same soft-weight phase preference, model recorded only at total
/// assignments), so both return the same depth-first-first optimum:
///
///  - Legacy: per-node unit propagation over the raw hard-clause list,
///    search state rebuilt from scratch on every solve().
///  - Incremental (default, see satIncrementalEnabled()): one persistent
///    CDCL solver holds the hard clauses plus a relaxation clause
///    (C_i ∨ r_i) per soft; each node is a feasibility probe
///    solve(assumptions) whose assumption vector extends its parent's by
///    one literal, so descending reuses the whole trail, and clauses
///    learned under one probe prune every later probe — including across
///    the blocking clauses the VC enumerator adds between solve() calls.
class MaxSatSolver {
public:
  MaxSatSolver();

  /// Allocates \p N fresh variables; returns the first index.
  int addVars(int N);

  int getNumVars() const { return NumVars; }

  /// Adds a hard clause.
  void addHard(std::vector<Lit> Lits);

  /// Adds a soft clause with weight \p Weight (> 0).
  void addSoft(std::vector<Lit> Lits, uint64_t Weight);

  /// Returns a maximum-weight model, or nullopt if the hard clauses are
  /// unsatisfiable. \p NodeBudget bounds the search (0 = unlimited); if the
  /// budget is exhausted the best model found so far is returned (still a
  /// model of the hard clauses, possibly suboptimal) — callers that need
  /// exactness pass 0.
  std::optional<MaxSatResult> solve(uint64_t NodeBudget = 0);

  const MaxSatStats &getStats() const { return TheStats; }

  /// Assumption-guarded probes issued by the incremental engine (0 under
  /// the legacy engine). Reported as the sat.assumption_calls counter.
  uint64_t getNumAssumptionCalls() const;

private:
  int NumVars = 0;
  MaxSatStats TheStats;
  std::vector<std::vector<Lit>> Hard;
  std::vector<SoftClause> Soft;

  // Search state (rebuilt per solve()).
  struct SearchState;
  bool search(SearchState &St);

  // Incremental engine: persistent CDCL solver, lazily synced with the
  // clause lists above before each solve().
  const bool Incremental;
  std::unique_ptr<Solver> Sat;
  std::vector<Var> OrigToSat; ///< MaxSAT variable -> solver variable.
  std::vector<Var> RelaxOf;   ///< Soft clause index -> relaxation variable.
  size_t SyncedHard = 0;      ///< Hard clauses already in the solver.
  size_t SyncedSoft = 0;      ///< Soft clauses already relaxed-and-added.

  struct ProbeState;
  void syncSat();
  bool probeSearch(ProbeState &St);
};

} // namespace sat
} // namespace migrator

#endif // MIGRATOR_SAT_MAXSAT_H
