//===- sat/Solver.cpp - CDCL SAT solver -------------------------------------===//

#include "sat/Solver.h"

#include <algorithm>

using namespace migrator;
using namespace migrator::sat;

namespace {

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (1-based index).
uint64_t luby(uint64_t I) {
  assert(I >= 1 && "the Luby sequence is 1-based");
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 1)
    ++K;
  while ((1ULL << K) - 1 != I) {
    I -= (1ULL << K) - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ULL << (K - 1);
}

} // namespace

Var Solver::newVar() {
  Var V = getNumVars();
  Assigns.push_back(LUndef);
  Model.push_back(LUndef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  SavedPhase.push_back(false);
  HeapPos.push_back(-1);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  if (Unsatisfiable)
    return false;
  assert(decisionLevel() == 0 && "clauses must be added at the root level");

  // Simplify: sort, dedup, drop root-false literals, detect tautologies and
  // root-satisfied clauses.
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Out;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    assert(L.var() >= 0 && L.var() < getNumVars() && "literal out of range");
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // Tautology.
    if (I > 0 && L == Lits[I - 1])
      continue; // Duplicate.
    LBool V = valueOf(L);
    if (V == LTrue)
      return true; // Already satisfied at the root.
    if (V == LFalse)
      continue; // Falsified at the root; drop.
    Out.push_back(L);
  }

  if (Out.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsatisfiable = true;
      return false;
    }
    return true;
  }
  attachClause(Clause{std::move(Out), /*Learned=*/false});
  return true;
}

bool Solver::addExactlyOne(const std::vector<Var> &Vars) {
  assert(!Vars.empty() && "exactly-one over an empty set is unsatisfiable");
  std::vector<Lit> AtLeastOne;
  AtLeastOne.reserve(Vars.size());
  for (Var V : Vars)
    AtLeastOne.push_back(posLit(V));
  if (!addClause(AtLeastOne))
    return false;
  for (size_t I = 0; I < Vars.size(); ++I)
    for (size_t J = I + 1; J < Vars.size(); ++J)
      if (!addClause({negLit(Vars[I]), negLit(Vars[J])}))
        return false;
  return true;
}

int Solver::attachClause(Clause C) {
  assert(C.Lits.size() >= 2 && "attached clauses must have >= 2 literals");
  int Ref = static_cast<int>(Clauses.size());
  Watches[C.Lits[0].Code].push_back(Ref);
  Watches[C.Lits[1].Code].push_back(Ref);
  Clauses.push_back(std::move(C));
  return Ref;
}

void Solver::enqueue(Lit L, int ReasonRef) {
  assert(valueOf(L) == LUndef && "enqueueing an assigned literal");
  Var V = L.var();
  Assigns[V] = L.negated() ? LFalse : LTrue;
  Level[V] = decisionLevel();
  Reason[V] = ReasonRef;
  Trail.push_back(L);
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  size_t Bound = static_cast<size_t>(TrailLim[TargetLevel]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    Var V = Trail[I - 1].var();
    SavedPhase[V] = Assigns[V] == LTrue;
    Assigns[V] = LUndef;
    Reason[V] = NoReason;
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  PropHead = Trail.size();
}

int Solver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++]; // P is true; visit clauses watching ~P.
    std::vector<int> &WL = Watches[(~P).Code];
    size_t Kept = 0;
    for (size_t I = 0; I < WL.size(); ++I) {
      int Ref = WL[I];
      Clause &C = Clauses[Ref];
      // Normalize so the falsified watch sits at position 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P && "watch list out of sync");

      if (valueOf(C.Lits[0]) == LTrue) {
        WL[Kept++] = Ref;
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (valueOf(C.Lits[K]) == LFalse)
          continue;
        std::swap(C.Lits[1], C.Lits[K]);
        Watches[C.Lits[1].Code].push_back(Ref);
        Moved = true;
        break;
      }
      if (Moved)
        continue;

      // Clause is unit or conflicting.
      WL[Kept++] = Ref;
      if (valueOf(C.Lits[0]) == LFalse) {
        // Conflict: keep the remaining watches and report.
        for (size_t J = I + 1; J < WL.size(); ++J)
          WL[Kept++] = WL[J];
        WL.resize(Kept);
        PropHead = Trail.size();
        return Ref;
      }
      ++Propagations;
      enqueue(C.Lits[0], Ref);
    }
    WL.resize(Kept);
  }
  return NoReason;
}

void Solver::analyze(int ConflRef, std::vector<Lit> &Learnt, int &BtLevel) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Placeholder for the asserting literal.

  std::vector<bool> Seen(getNumVars(), false);
  int PathCount = 0;
  Lit P;
  bool HaveP = false;
  size_t Index = Trail.size();

  int Ref = ConflRef;
  do {
    assert(Ref != NoReason && "conflict analysis ran out of reasons");
    const Clause &C = Clauses[Ref];
    for (const Lit &Q : C.Lits) {
      if (HaveP && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = true;
      bumpActivity(V);
      if (Level[V] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked trail literal.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    P = Trail[Index - 1];
    --Index;
    HaveP = true;
    Ref = Reason[P.var()];
    Seen[P.var()] = false;
    --PathCount;
  } while (PathCount > 0);

  Learnt[0] = ~P;

  // Backtrack level: the highest level among the non-asserting literals.
  BtLevel = 0;
  size_t MaxIdx = 1;
  for (size_t I = 1; I < Learnt.size(); ++I)
    if (Level[Learnt[I].var()] > BtLevel) {
      BtLevel = Level[Learnt[I].var()];
      MaxIdx = I;
    }
  if (Learnt.size() > 1)
    std::swap(Learnt[1], Learnt[MaxIdx]);
}

Lit Solver::pickBranchLit() {
  while (true) {
    if (Heap.empty())
      return Lit();
    Var V = heapPopMax();
    if (Assigns[V] == LUndef)
      return Lit(V, !SavedPhase[V]);
  }
}

Solver::Result Solver::solve() {
  if (Unsatisfiable)
    return Result::Unsat;

  uint64_t RestartCount = 0;
  uint64_t ConflictsSinceRestart = 0;
  uint64_t RestartLimit = luby(RestartCount + 1) * 100;

  if (propagate() != NoReason) {
    Unsatisfiable = true;
    return Result::Unsat;
  }

  while (true) {
    int ConflRef = propagate();
    if (ConflRef != NoReason) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (decisionLevel() == 0) {
        Unsatisfiable = true;
        return Result::Unsat;
      }
      std::vector<Lit> Learnt;
      int BtLevel = 0;
      analyze(ConflRef, Learnt, BtLevel);
      cancelUntil(BtLevel);
      ++LearnedClauses;
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        int Ref = attachClause(Clause{Learnt, /*Learned=*/true});
        enqueue(Learnt[0], Ref);
      }
      decayActivity();
      continue;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = luby(++RestartCount + 1) * 100;
      ++Restarts;
      cancelUntil(0);
      continue;
    }

    Lit Next = pickBranchLit();
    if (Next.Code < 0) {
      // Total assignment: record the model and reset to the root so more
      // clauses can be added afterwards.
      Model = Assigns;
      cancelUntil(0);
      return Result::Sat;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, NoReason);
  }
}

//===----------------------------------------------------------------------===//
// VSIDS activity heap
//===----------------------------------------------------------------------===//

void Solver::setInitialActivity(Var V, double A) {
  assert(V >= 0 && V < getNumVars() && "variable out of range");
  Activity[V] = A;
  if (HeapPos[V] >= 0) {
    heapSiftUp(HeapPos[V]);
    heapSiftDown(HeapPos[V]);
  }
}

void Solver::bumpActivity(Var V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100)
    rescaleActivities();
  if (HeapPos[V] >= 0)
    heapSiftUp(HeapPos[V]);
}

void Solver::rescaleActivities() {
  for (double &A : Activity)
    A *= 1e-100;
  ActivityInc *= 1e-100;
}

void Solver::heapInsert(Var V) {
  assert(HeapPos[V] < 0 && "variable already in heap");
  HeapPos[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapSiftUp(HeapPos[V]);
}

Var Solver::heapPopMax() {
  assert(!Heap.empty() && "pop from empty heap");
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[Last] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void Solver::heapSiftUp(int Pos) {
  Var V = Heap[Pos];
  while (Pos > 0) {
    int Parent = (Pos - 1) / 2;
    if (!heapLess(Heap[Parent], V))
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void Solver::heapSiftDown(int Pos) {
  Var V = Heap[Pos];
  int N = static_cast<int>(Heap.size());
  while (true) {
    int Child = 2 * Pos + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && heapLess(Heap[Child], Heap[Child + 1]))
      ++Child;
    if (!heapLess(V, Heap[Child]))
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}
