//===- sat/Solver.cpp - CDCL SAT solver -------------------------------------===//

#include "sat/Solver.h"

#include <algorithm>
#include <atomic>
#include <climits>
#include <cstdlib>
#include <string_view>

using namespace migrator;
using namespace migrator::sat;

namespace {

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ... (1-based index).
uint64_t luby(uint64_t I) {
  assert(I >= 1 && "the Luby sequence is 1-based");
  uint64_t K = 1;
  while ((1ULL << (K + 1)) <= I + 1)
    ++K;
  while ((1ULL << K) - 1 != I) {
    I -= (1ULL << K) - 1;
    K = 1;
    while ((1ULL << (K + 1)) <= I + 1)
      ++K;
  }
  return 1ULL << (K - 1);
}

/// -1: follow the environment; 0/1: explicit override.
std::atomic<int> IncrementalOverride{-1};

bool envDisablesIncremental() {
  static const bool Disabled = [] {
    const char *E = std::getenv("MIGRATOR_NO_INCREMENTAL");
    return E && *E && std::string_view(E) != "0";
  }();
  return Disabled;
}

} // namespace

bool sat::satIncrementalEnabled() {
  int O = IncrementalOverride.load(std::memory_order_relaxed);
  if (O >= 0)
    return O != 0;
  return !envDisablesIncremental();
}

void sat::setSatIncrementalEnabled(bool On) {
  IncrementalOverride.store(On ? 1 : 0, std::memory_order_relaxed);
}

Solver::Solver() : Incremental(satIncrementalEnabled()) {}

Var Solver::newVar() {
  Var V = getNumVars();
  Assigns.push_back(LUndef);
  Model.push_back(LUndef);
  Level.push_back(0);
  Reason.push_back(NoReason);
  Activity.push_back(0.0);
  SavedPhase.push_back(false);
  UserPhase.push_back(false);
  HeapPos.push_back(-1);
  Seen.push_back(0);
  LevelStamp.push_back(0);
  Watches.emplace_back();
  Watches.emplace_back();
  heapInsert(V);
  return V;
}

bool Solver::addClause(std::vector<Lit> Lits) {
  if (Unsatisfiable)
    return false;
  if (decisionLevel() > 0) {
    assert(Incremental && "clauses must be added at the root level");
    return addClauseOnTrail(std::move(Lits));
  }

  // Simplify: sort, dedup, drop root-false literals, detect tautologies and
  // root-satisfied clauses.
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Out;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    assert(L.var() >= 0 && L.var() < getNumVars() && "literal out of range");
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // Tautology.
    if (I > 0 && L == Lits[I - 1])
      continue; // Duplicate.
    LBool V = valueOf(L);
    if (V == LTrue)
      return true; // Already satisfied at the root.
    if (V == LFalse)
      continue; // Falsified at the root; drop.
    Out.push_back(L);
  }

  if (Out.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Out.size() == 1) {
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsatisfiable = true;
      return false;
    }
    return true;
  }
  attachClause(Clause{std::move(Out), /*Learned=*/false});
  return true;
}

bool Solver::addClauseOnTrail(std::vector<Lit> Lits) {
  // Incremental engine: a clause arrives while a trail from a previous
  // solve(Assumptions) is still standing (e.g. a blocking clause over the
  // model just returned). Simplify against level-0 facts only — assignments
  // above the root are tentative — then backjump just far enough that the
  // clause is no longer falsified, attach it, and leave propagation to the
  // next solve() (PropHead trails any literal enqueued here).
  std::sort(Lits.begin(), Lits.end());
  std::vector<Lit> Out;
  for (size_t I = 0; I < Lits.size(); ++I) {
    Lit L = Lits[I];
    assert(L.var() >= 0 && L.var() < getNumVars() && "literal out of range");
    if (I + 1 < Lits.size() && Lits[I + 1] == ~L)
      return true; // Tautology.
    if (I > 0 && L == Lits[I - 1])
      continue; // Duplicate.
    int RV = rootValue(L.var());
    if (RV != 0) {
      bool TrueAtRoot = (RV > 0) != L.negated();
      if (TrueAtRoot)
        return true; // Permanently satisfied.
      continue;      // Permanently falsified; drop.
    }
    Out.push_back(L);
  }

  if (Out.empty()) {
    Unsatisfiable = true;
    return false;
  }
  if (Out.size() == 1) {
    // A unit over a root-free variable is a root fact: return to the root
    // and take the legacy unit path.
    cancelUntil(0);
    enqueue(Out[0], NoReason);
    if (propagate() != NoReason) {
      Unsatisfiable = true;
      return false;
    }
    return true;
  }

  // Order literals so the two best watch candidates sit at positions 0/1:
  // non-false literals first, then false literals by descending assignment
  // level. The input is sorted by literal code, so the stable sort keeps the
  // result deterministic.
  auto RankOf = [&](Lit L) {
    return valueOf(L) == LFalse ? Level[L.var()] : INT_MAX;
  };
  std::stable_sort(Out.begin(), Out.end(),
                   [&](Lit A, Lit B) { return RankOf(A) > RankOf(B); });
  size_t NumNonFalse = 0;
  while (NumNonFalse < Out.size() && valueOf(Out[NumNonFalse]) != LFalse)
    ++NumNonFalse;

  if (NumNonFalse >= 2) {
    attachClause(Clause{std::move(Out), /*Learned=*/false});
    return true;
  }
  if (NumNonFalse == 1) {
    bool Undef = valueOf(Out[0]) == LUndef;
    Lit First = Out[0];
    int Ref = attachClause(Clause{std::move(Out), /*Learned=*/false});
    if (Undef) {
      // Unit under the current trail: assert it here; the next solve()
      // propagates it (and a conflict on a later backtrack is caught by the
      // watches).
      ++Propagations;
      enqueue(First, Ref);
    }
    return true;
  }

  // Fully falsified under the current trail. Backjump so it no longer is:
  // Out[0]/Out[1] carry the two highest assignment levels.
  int L0 = Level[Out[0].var()];
  int L1 = Level[Out[1].var()];
  assert(L0 >= L1 && L0 >= 1 && "root-false literals were dropped above");
  if (L0 == L1) {
    // Undo the shared level: both watches become unassigned.
    cancelUntil(L0 - 1);
    attachClause(Clause{std::move(Out), /*Learned=*/false});
    return true;
  }
  // Undo down to the second-highest level: the clause becomes unit on
  // Out[0], which we assert with the clause as its reason.
  cancelUntil(L1);
  Lit First = Out[0];
  int Ref = attachClause(Clause{std::move(Out), /*Learned=*/false});
  ++Propagations;
  enqueue(First, Ref);
  return true;
}

bool Solver::addExactlyOne(const std::vector<Var> &Vars) {
  assert(!Vars.empty() && "exactly-one over an empty set is unsatisfiable");
  std::vector<Lit> AtLeastOne;
  AtLeastOne.reserve(Vars.size());
  for (Var V : Vars)
    AtLeastOne.push_back(posLit(V));
  if (!addClause(AtLeastOne))
    return false;
  for (size_t I = 0; I < Vars.size(); ++I)
    for (size_t J = I + 1; J < Vars.size(); ++J)
      if (!addClause({negLit(Vars[I]), negLit(Vars[J])}))
        return false;
  return true;
}

int Solver::attachClause(Clause C) {
  assert(C.Lits.size() >= 2 && "attached clauses must have >= 2 literals");
  int Ref = static_cast<int>(Clauses.size());
  Watches[C.Lits[0].Code].push_back(Ref);
  Watches[C.Lits[1].Code].push_back(Ref);
  Clauses.push_back(std::move(C));
  return Ref;
}

void Solver::enqueue(Lit L, int ReasonRef) {
  assert(valueOf(L) == LUndef && "enqueueing an assigned literal");
  Var V = L.var();
  Assigns[V] = L.negated() ? LFalse : LTrue;
  Level[V] = decisionLevel();
  Reason[V] = ReasonRef;
  Trail.push_back(L);
}

void Solver::cancelUntil(int TargetLevel) {
  if (decisionLevel() <= TargetLevel)
    return;
  size_t Bound = static_cast<size_t>(TrailLim[TargetLevel]);
  for (size_t I = Trail.size(); I > Bound; --I) {
    Var V = Trail[I - 1].var();
    SavedPhase[V] = Assigns[V] == LTrue;
    Assigns[V] = LUndef;
    Reason[V] = NoReason;
    if (V < FixedCursor)
      FixedCursor = V;
    if (HeapPos[V] < 0)
      heapInsert(V);
  }
  Trail.resize(Bound);
  TrailLim.resize(TargetLevel);
  PropHead = Trail.size();
}

int Solver::propagate() {
  while (PropHead < Trail.size()) {
    Lit P = Trail[PropHead++]; // P is true; visit clauses watching ~P.
    std::vector<int> &WL = Watches[(~P).Code];
    size_t Kept = 0;
    for (size_t I = 0; I < WL.size(); ++I) {
      int Ref = WL[I];
      Clause &C = Clauses[Ref];
      // Normalize so the falsified watch sits at position 1.
      if (C.Lits[0] == ~P)
        std::swap(C.Lits[0], C.Lits[1]);
      assert(C.Lits[1] == ~P && "watch list out of sync");

      if (valueOf(C.Lits[0]) == LTrue) {
        WL[Kept++] = Ref;
        continue;
      }
      // Look for a replacement watch.
      bool Moved = false;
      for (size_t K = 2; K < C.Lits.size(); ++K) {
        if (valueOf(C.Lits[K]) == LFalse)
          continue;
        std::swap(C.Lits[1], C.Lits[K]);
        Watches[C.Lits[1].Code].push_back(Ref);
        Moved = true;
        break;
      }
      if (Moved)
        continue;

      // Clause is unit or conflicting.
      WL[Kept++] = Ref;
      if (valueOf(C.Lits[0]) == LFalse) {
        // Conflict: keep the remaining watches and report.
        for (size_t J = I + 1; J < WL.size(); ++J)
          WL[Kept++] = WL[J];
        WL.resize(Kept);
        PropHead = Trail.size();
        return Ref;
      }
      ++Propagations;
      enqueue(C.Lits[0], Ref);
    }
    WL.resize(Kept);
  }
  return NoReason;
}

int Solver::computeLbd(const std::vector<Lit> &Lits) {
  ++CurStamp;
  int Count = 0;
  for (const Lit &L : Lits) {
    int Lv = Level[L.var()];
    if (Lv == 0)
      continue;
    if (LevelStamp[Lv] != CurStamp) {
      LevelStamp[Lv] = CurStamp;
      ++Count;
    }
  }
  return Count;
}

void Solver::analyze(int ConflRef, std::vector<Lit> &Learnt) {
  Learnt.clear();
  Learnt.push_back(Lit()); // Placeholder for the asserting literal.

  int PathCount = 0;
  Lit P;
  bool HaveP = false;
  size_t Index = Trail.size();

  int Ref = ConflRef;
  do {
    assert(Ref != NoReason && "conflict analysis ran out of reasons");
    Clause &C = Clauses[Ref];
    // Glucose-style refresh: a learned clause that keeps showing up in
    // conflicts gets its glue re-measured (it can only shrink), protecting
    // it from the next reduceDB pass.
    if (Incremental && C.Learned) {
      int NewLbd = computeLbd(C.Lits);
      if (NewLbd < C.Lbd)
        C.Lbd = NewLbd;
    }
    for (const Lit &Q : C.Lits) {
      if (HaveP && Q == P)
        continue;
      Var V = Q.var();
      if (Seen[V] || Level[V] == 0)
        continue;
      Seen[V] = 1;
      ToClear.push_back(V);
      bumpActivity(V);
      if (Level[V] >= decisionLevel())
        ++PathCount;
      else
        Learnt.push_back(Q);
    }
    // Walk back to the next marked trail literal.
    while (!Seen[Trail[Index - 1].var()])
      --Index;
    P = Trail[Index - 1];
    --Index;
    HaveP = true;
    Ref = Reason[P.var()];
    Seen[P.var()] = 0;
    --PathCount;
  } while (PathCount > 0);

  Learnt[0] = ~P;
  // On exit, Seen is still set exactly for the variables of Learnt[1..]
  // (plus resolved-away current-level variables already cleared above);
  // minimizeLearnt() relies on this, and the caller clears via ToClear.
}

void Solver::minimizeLearnt(std::vector<Lit> &Learnt) {
  // Basic (non-recursive) learnt minimization: a literal is redundant if its
  // reason clause is entirely covered by other learnt literals and root
  // facts. Relies on the Seen marks analyze() left behind.
  size_t Kept = 1;
  for (size_t I = 1; I < Learnt.size(); ++I) {
    Lit Q = Learnt[I];
    int Ref = Reason[Q.var()];
    bool Removable = Ref != NoReason;
    if (Removable) {
      for (const Lit &X : Clauses[Ref].Lits) {
        if (X.var() == Q.var())
          continue;
        if (!Seen[X.var()] && Level[X.var()] != 0) {
          Removable = false;
          break;
        }
      }
    }
    if (!Removable)
      Learnt[Kept++] = Q;
  }
  Learnt.resize(Kept);
}

void Solver::analyzeFinal(Lit P) {
  // solve(Assumptions) found assumption P falsified by the standing trail:
  // collect the subset of assumption pseudo-decisions whose propagation
  // forced ~P. Together with P they form an unsatisfiable conjunction.
  Conflict.clear();
  Conflict.push_back(P);
  if (decisionLevel() == 0 || Level[P.var()] == 0)
    return;

  Seen[P.var()] = 1;
  for (size_t I = Trail.size(); I > static_cast<size_t>(TrailLim[0]); --I) {
    Var V = Trail[I - 1].var();
    if (!Seen[V])
      continue;
    Seen[V] = 0;
    if (Reason[V] == NoReason) {
      // A decision above the root; while asserting assumptions every such
      // decision is itself an assumption.
      assert(Level[V] > 0 && "level-0 assignments have no decision");
      Conflict.push_back(Trail[I - 1]);
    } else {
      const Clause &C = Clauses[Reason[V]];
      for (const Lit &Q : C.Lits)
        if (Q.var() != V && Level[Q.var()] > 0)
          Seen[Q.var()] = 1;
    }
  }
  Seen[P.var()] = 0;
}

Lit Solver::pickBranchLit() {
  if (FixedOrder) {
    // Canonical rule: lowest-indexed unassigned variable at its preferred
    // phase. The cursor only moves forward within a descent and rewinds in
    // cancelUntil(), so a whole descent scans each index at most once.
    Var V = FixedCursor;
    int N = getNumVars();
    while (V < N && Assigns[V] != LUndef)
      ++V;
    FixedCursor = V;
    if (V >= N)
      return Lit();
    ++FixedCursor;
    return Lit(V, !UserPhase[V]);
  }
  while (true) {
    if (Heap.empty())
      return Lit();
    Var V = heapPopMax();
    if (Assigns[V] == LUndef)
      return Lit(V, !SavedPhase[V]);
  }
}

void Solver::reduceDB() {
  // Which clauses are locked (serving as the reason of a standing
  // assignment)? Those must survive so Reason[] stays valid.
  std::vector<char> Locked(Clauses.size(), 0);
  for (Var V = 0; V < getNumVars(); ++V)
    if (Assigns[V] != LUndef && Reason[V] != NoReason)
      Locked[Reason[V]] = 1;

  auto RootSatisfied = [&](const Clause &C) {
    for (const Lit &L : C.Lits)
      if (Level[L.var()] == 0 && valueOf(L) == LTrue)
        return true;
    return false;
  };

  std::vector<char> Drop(Clauses.size(), 0);
  std::vector<int> Cold;
  for (int Ref = 0; Ref < static_cast<int>(Clauses.size()); ++Ref) {
    if (Locked[Ref])
      continue;
    const Clause &C = Clauses[Ref];
    if (RootSatisfied(C)) {
      // Permanently satisfied — this is how retired (deactivated) sketch
      // encodings get reclaimed, learned or original alike.
      Drop[Ref] = 1;
      continue;
    }
    if (!C.Learned || C.Lbd <= 2)
      continue; // Originals and glue clauses are kept.
    Cold.push_back(Ref);
  }
  // Delete the colder half: highest glue first, older first among ties.
  std::stable_sort(Cold.begin(), Cold.end(), [&](int A, int B) {
    if (Clauses[A].Lbd != Clauses[B].Lbd)
      return Clauses[A].Lbd > Clauses[B].Lbd;
    return A < B;
  });
  for (size_t I = 0; I < Cold.size() / 2; ++I)
    Drop[Cold[I]] = 1;

  uint64_t NumDropped = 0;
  for (char D : Drop)
    NumDropped += D;
  ++ReduceDbs;
  if (NumDropped == 0)
    return;

  // Compact the clause database and remap reason references (locked clauses
  // were never dropped, so every live reference survives).
  std::vector<int> Remap(Clauses.size(), -1);
  std::vector<Clause> Compacted;
  Compacted.reserve(Clauses.size() - NumDropped);
  for (size_t Ref = 0; Ref < Clauses.size(); ++Ref) {
    if (Drop[Ref])
      continue;
    Remap[Ref] = static_cast<int>(Compacted.size());
    Compacted.push_back(std::move(Clauses[Ref]));
  }
  Clauses = std::move(Compacted);
  for (Var V = 0; V < getNumVars(); ++V)
    if (Reason[V] != NoReason) {
      assert(Remap[Reason[V]] >= 0 && "dropped a locked clause");
      Reason[V] = Remap[Reason[V]];
    }
  // Rebuild the watch lists; watches are always positions 0/1, so the exact
  // watch pairs are preserved.
  for (auto &WL : Watches)
    WL.clear();
  for (int Ref = 0; Ref < static_cast<int>(Clauses.size()); ++Ref) {
    Watches[Clauses[Ref].Lits[0].Code].push_back(Ref);
    Watches[Clauses[Ref].Lits[1].Code].push_back(Ref);
  }
  DeletedClauses += NumDropped;
}

void Solver::beginEncoding() {
  // Reclaim whatever the previous encoding left behind. Every clause of a
  // retired encoding — original or learned — is root-satisfied (an implied
  // clause always has a negative literal, and retirement root-falsifies the
  // encoding's variables), so this pass deletes them all and never touches
  // live state.
  reduceDB();
  // Root-assigned variables can never be branched on again; dropping them
  // from the heap makes the next encoding's heap layout (and hence its
  // activity tie-breaking) identical to a fresh solver's.
  size_t Kept = 0;
  for (Var V : Heap) {
    if (Assigns[V] == LUndef) {
      Heap[Kept] = V;
      HeapPos[V] = static_cast<int>(Kept);
      ++Kept;
    } else {
      HeapPos[V] = -1;
    }
  }
  Heap.resize(Kept);
  for (int Pos = static_cast<int>(Kept) / 2 - 1; Pos >= 0; --Pos)
    heapSiftDown(Pos);
  // Per-encoding search scale: bumps and the reduction schedule restart
  // exactly as on a fresh solver.
  ActivityInc = 1.0;
  LearnedSinceReduce = 0;
  ReduceLimit = 2000;
}

Solver::Result Solver::solve() { return solve({}); }

Solver::Result Solver::solve(const std::vector<Lit> &Assumptions) {
  if (!Assumptions.empty())
    ++AssumptionCalls;
  Conflict.clear();
  if (Unsatisfiable)
    return Result::Unsat;

  if (Incremental) {
    // Trail reuse: keep the longest decision-level prefix consistent with
    // this call's assumptions. Levels map 1:1 to assumption indices (each
    // assumption claims exactly one level, vacuous or not), so matching
    // against the previous assumption vector is exact.
    if (Assumptions != LastAssumps) {
      size_t K = 0;
      size_t Max = std::min(Assumptions.size(), LastAssumps.size());
      while (K < Max && Assumptions[K] == LastAssumps[K])
        ++K;
      cancelUntil(static_cast<int>(std::min(
          K, static_cast<size_t>(decisionLevel()))));
      LastAssumps = Assumptions;
    }
  } else {
    assert(decisionLevel() == 0 && "legacy engine solves from the root");
  }

  uint64_t RestartCount = 0;
  uint64_t ConflictsSinceRestart = 0;
  uint64_t RestartLimit = luby(RestartCount + 1) * 100;

  if (decisionLevel() == 0 && propagate() != NoReason) {
    Unsatisfiable = true;
    return Result::Unsat;
  }

  while (true) {
    int ConflRef = propagate();
    if (ConflRef != NoReason) {
      ++Conflicts;
      ++ConflictsSinceRestart;
      if (decisionLevel() == 0) {
        Unsatisfiable = true;
        return Result::Unsat;
      }
      std::vector<Lit> Learnt;
      analyze(ConflRef, Learnt);
      if (Incremental && Learnt.size() > 1)
        minimizeLearnt(Learnt);
      for (Var V : ToClear)
        Seen[V] = 0;
      ToClear.clear();
      int Lbd = computeLbd(Learnt);

      // Backtrack level: the highest level among the non-asserting
      // literals, which moves to position 1 to be watched.
      int BtLevel = 0;
      size_t MaxIdx = 1;
      for (size_t I = 1; I < Learnt.size(); ++I)
        if (Level[Learnt[I].var()] > BtLevel) {
          BtLevel = Level[Learnt[I].var()];
          MaxIdx = I;
        }
      if (Learnt.size() > 1)
        std::swap(Learnt[1], Learnt[MaxIdx]);

      cancelUntil(BtLevel);
      ++LearnedClauses;
      ++LearnedSinceReduce;
      LbdSum += static_cast<uint64_t>(Lbd);
      ++LbdCount;
      if (Learnt.size() == 1) {
        enqueue(Learnt[0], NoReason);
      } else {
        Clause C{std::move(Learnt), /*Learned=*/true};
        C.Lbd = Lbd;
        Lit Asserting = C.Lits[0];
        int Ref = attachClause(std::move(C));
        enqueue(Asserting, Ref);
      }
      decayActivity();
      if (Incremental && LearnedSinceReduce >= ReduceLimit) {
        reduceDB();
        LearnedSinceReduce = 0;
        ReduceLimit += ReduceLimit / 2;
      }
      continue;
    }

    // Assert pending assumptions, one per iteration.
    if (decisionLevel() < static_cast<int>(Assumptions.size())) {
      Lit P = Assumptions[decisionLevel()];
      LBool V = valueOf(P);
      if (V == LTrue) {
        // Already implied: claim the level without a decision so levels
        // stay aligned with assumption indices.
        TrailLim.push_back(static_cast<int>(Trail.size()));
        continue;
      }
      if (V == LFalse) {
        // Unsat relative to the assumptions: blame a subset and leave the
        // solver un-latched.
        analyzeFinal(P);
        if (!Incremental)
          cancelUntil(0);
        return Result::Unsat;
      }
      TrailLim.push_back(static_cast<int>(Trail.size()));
      enqueue(P, NoReason);
      continue;
    }

    if (ConflictsSinceRestart >= RestartLimit) {
      ConflictsSinceRestart = 0;
      RestartLimit = luby(++RestartCount + 1) * 100;
      ++Restarts;
      cancelUntil(0);
      continue;
    }

    Lit Next = pickBranchLit();
    if (Next.Code < 0) {
      // Total assignment: record the model. The legacy engine resets to the
      // root so more clauses can be added afterwards; the incremental
      // engine keeps the trail for the next query to extend or rewind.
      Model = Assigns;
      if (!Incremental)
        cancelUntil(0);
      return Result::Sat;
    }
    ++Decisions;
    TrailLim.push_back(static_cast<int>(Trail.size()));
    enqueue(Next, NoReason);
  }
}

//===----------------------------------------------------------------------===//
// VSIDS activity heap
//===----------------------------------------------------------------------===//

void Solver::setInitialActivity(Var V, double A) {
  assert(V >= 0 && V < getNumVars() && "variable out of range");
  Activity[V] = A;
  if (HeapPos[V] >= 0) {
    heapSiftUp(HeapPos[V]);
    heapSiftDown(HeapPos[V]);
  }
}

void Solver::bumpActivity(Var V) {
  Activity[V] += ActivityInc;
  if (Activity[V] > 1e100)
    rescaleActivities();
  if (HeapPos[V] >= 0)
    heapSiftUp(HeapPos[V]);
}

void Solver::rescaleActivities() {
  for (double &A : Activity)
    A *= 1e-100;
  ActivityInc *= 1e-100;
}

void Solver::heapInsert(Var V) {
  assert(HeapPos[V] < 0 && "variable already in heap");
  HeapPos[V] = static_cast<int>(Heap.size());
  Heap.push_back(V);
  heapSiftUp(HeapPos[V]);
}

Var Solver::heapPopMax() {
  assert(!Heap.empty() && "pop from empty heap");
  Var Top = Heap[0];
  HeapPos[Top] = -1;
  Var Last = Heap.back();
  Heap.pop_back();
  if (!Heap.empty()) {
    Heap[0] = Last;
    HeapPos[Last] = 0;
    heapSiftDown(0);
  }
  return Top;
}

void Solver::heapSiftUp(int Pos) {
  Var V = Heap[Pos];
  while (Pos > 0) {
    int Parent = (Pos - 1) / 2;
    if (!heapLess(Heap[Parent], V))
      break;
    Heap[Pos] = Heap[Parent];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Parent;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}

void Solver::heapSiftDown(int Pos) {
  Var V = Heap[Pos];
  int N = static_cast<int>(Heap.size());
  while (true) {
    int Child = 2 * Pos + 1;
    if (Child >= N)
      break;
    if (Child + 1 < N && heapLess(Heap[Child], Heap[Child + 1]))
      ++Child;
    if (!heapLess(V, Heap[Child]))
      break;
    Heap[Pos] = Heap[Child];
    HeapPos[Heap[Pos]] = Pos;
    Pos = Child;
  }
  Heap[Pos] = V;
  HeapPos[V] = Pos;
}
