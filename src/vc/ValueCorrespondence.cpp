//===- vc/ValueCorrespondence.cpp - Attribute correspondences ---------------===//

#include "vc/ValueCorrespondence.h"

#include <algorithm>
#include <sstream>

using namespace migrator;

void ValueCorrespondence::add(const QualifiedAttr &Src,
                              const QualifiedAttr &Tgt) {
  std::vector<QualifiedAttr> &Image = Map[Src];
  if (std::find(Image.begin(), Image.end(), Tgt) != Image.end())
    return;
  Image.push_back(Tgt);
  std::sort(Image.begin(), Image.end());
}

const std::vector<QualifiedAttr> &
ValueCorrespondence::image(const QualifiedAttr &Src) const {
  static const std::vector<QualifiedAttr> Empty;
  auto It = Map.find(Src);
  return It == Map.end() ? Empty : It->second;
}

bool ValueCorrespondence::maps(const QualifiedAttr &Src,
                               const QualifiedAttr &Tgt) const {
  const std::vector<QualifiedAttr> &Image = image(Src);
  return std::find(Image.begin(), Image.end(), Tgt) != Image.end();
}

size_t ValueCorrespondence::getNumPairs() const {
  size_t N = 0;
  for (const auto &[Src, Image] : Map)
    N += Image.size();
  return N;
}

std::string ValueCorrespondence::str() const {
  std::ostringstream OS;
  for (const auto &[Src, Image] : Map) {
    OS << Src.str() << " ->";
    for (const QualifiedAttr &T : Image)
      OS << " " << T.str();
    OS << "\n";
  }
  return OS.str();
}
