//===- vc/VcEnumerator.h - Lazy enumeration of correspondences ----*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lazy enumeration of value correspondences in decreasing order of
/// likelihood (Sec. 4.2). The scoring follows the paper's partial weighted
/// MaxSAT encoding:
///
///  * hard: a variable x_ij exists only for type-compatible pairs, and every
///    attribute queried by the source program must map to at least one
///    target attribute;
///  * soft: x_ij with weight sim(a_i, a'_j) = Alpha - levenshtein(a_i, a'_j)
///    (omitted when non-positive), and x_ij -> ¬x_ik with weight Alpha to
///    de-prioritize one-to-many images.
///
/// Two interchangeable backends produce the assignments:
///
///  * `Backend::MaxSat` — the literal encoding solved with the exact
///    branch-and-bound MaxSatSolver, blocking each returned assignment with
///    a hard clause (the paper's loop);
///  * `Backend::KBest` (default) — exploits that the objective and the hard
///    constraints decompose per source attribute: each attribute's candidate
///    images (up to MaxImageSize) are ranked locally, and global assignments
///    are enumerated best-first over the product with a priority queue.
///    This yields the same maximum-weight-first order while scaling to the
///    real-world schemas (hundreds of attributes).
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_VC_VCENUMERATOR_H
#define MIGRATOR_VC_VCENUMERATOR_H

#include "vc/ValueCorrespondence.h"

#include <cstdint>
#include <memory>
#include <optional>
#include <set>
#include <vector>

namespace migrator {

/// Options controlling VC enumeration.
struct VcOptions {
  /// The fixed constant α of the soft-constraint weights.
  unsigned Alpha = 10;

  /// Maximum image cardinality |Φ(a)| considered per source attribute.
  /// Real-world refactorings duplicate an attribute into at most a few
  /// copies; bounding the image keeps the per-attribute choice space
  /// polynomial.
  unsigned MaxImageSize = 3;

  /// Backend selection.
  enum class Backend { KBest, MaxSat } TheBackend = Backend::KBest;

  /// Ablation switch: when false, name-similarity soft constraints are
  /// dropped (all sims treated as 0), so enumeration order is driven only
  /// by the one-to-one preference.
  bool UseNameSimilarity = true;

  /// Exact-name preemption: a target attribute that has an exact-name
  /// source candidate only accepts exact-name sources. Without this rule,
  /// attributes dropped by the refactoring drift onto similarly named
  /// surviving columns, and the correct correspondence (empty images) sits
  /// so far down the weight order that enumeration cannot reach it on
  /// larger schemas. Two identically named source attributes (shared join
  /// keys) may still map to one target column.
  bool ExactNamePreemption = true;

  /// Node budget for the MaxSat backend (0 = unlimited).
  uint64_t MaxSatNodeBudget = 0;
};

/// Enumerates candidate value correspondences, best first.
class VcEnumerator {
public:
  /// \p Queried is the set of source attributes the program reads (see
  /// collectQueriedAttrs); each must be mapped in every produced VC.
  VcEnumerator(const Schema &Source, const Schema &Target,
               const std::set<QualifiedAttr> &Queried, VcOptions Opts = {});
  ~VcEnumerator();

  VcEnumerator(const VcEnumerator &) = delete;
  VcEnumerator &operator=(const VcEnumerator &) = delete;

  /// Returns the next-best unseen value correspondence, or nullopt when the
  /// space is exhausted (or a queried attribute has no compatible target,
  /// making the hard constraints unsatisfiable).
  std::optional<ValueCorrespondence> next();

  /// Objective value (total satisfied soft weight) of the last VC returned.
  uint64_t lastWeight() const { return LastWeight; }

  /// Number of VCs returned so far (the "Value Corr" column of Table 1).
  size_t getNumEnumerated() const { return NumEnumerated; }

private:
  struct Impl;
  std::unique_ptr<Impl> P;
  uint64_t LastWeight = 0;
  size_t NumEnumerated = 0;
};

/// The base similarity metric: max(Alpha - levenshtein(A, B), 0).
unsigned nameSimilarity(const std::string &A, const std::string &B,
                        unsigned Alpha);

/// The soft-clause weight of mapping \p Src to \p Tgt: zero when the
/// attribute names are dissimilar (no soft clause is emitted), otherwise
/// `4 * attrSim + tableSim`, so attribute-name similarity dominates and
/// table-name similarity breaks ties between same-named attributes living
/// in different tables (e.g. `Instructor.InstId` vs `Class.InstId`).
unsigned pairWeight(const QualifiedAttr &Src, const QualifiedAttr &Tgt,
                    unsigned Alpha);

/// The weight of each one-to-one soft clause, scaled so that duplicating
/// even an exact-name match into a second table is never part of the first
/// (maximum-weight) assignment: the duplicate's gain is at most
/// 4*Alpha + (Alpha - 1) < 5*Alpha. Duplication-based correspondences (the
/// paper's denormalization scenarios) are reached by the lazy enumeration
/// on subsequent assignments.
inline unsigned oneToOnePenalty(unsigned Alpha) { return 5 * Alpha; }

} // namespace migrator

#endif // MIGRATOR_VC_VCENUMERATOR_H
