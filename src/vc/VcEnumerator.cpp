//===- vc/VcEnumerator.cpp - Lazy enumeration of correspondences ------------===//

#include "vc/VcEnumerator.h"

#include "obs/Metrics.h"
#include "sat/MaxSat.h"
#include "support/StringExtras.h"

#include <algorithm>
#include <cassert>
#include <queue>

using namespace migrator;

unsigned migrator::nameSimilarity(const std::string &A, const std::string &B,
                                  unsigned Alpha) {
  unsigned Dist = levenshtein(A, B);
  return Dist >= Alpha ? 0 : Alpha - Dist;
}

unsigned migrator::pairWeight(const QualifiedAttr &Src, const QualifiedAttr &Tgt,
                              unsigned Alpha) {
  unsigned AttrSim = nameSimilarity(Src.Attr, Tgt.Attr, Alpha);
  if (AttrSim == 0)
    return 0;
  return 4 * AttrSim + nameSimilarity(Src.Table, Tgt.Table, Alpha);
}

namespace {

/// One possible image (subset of target attributes) for a source attribute,
/// with its local objective contribution: sum of similarities minus
/// Alpha * C(|S|, 2) for the violated one-to-one soft clauses.
struct AttrChoice {
  int64_t Score;
  std::vector<unsigned> Subset; ///< Target attribute ids, ascending.
};

bool choiceBetter(const AttrChoice &A, const AttrChoice &B) {
  if (A.Score != B.Score)
    return A.Score > B.Score;
  if (A.Subset.size() != B.Subset.size())
    return A.Subset.size() < B.Subset.size();
  return A.Subset < B.Subset;
}

/// A frontier node of the best-first product enumeration.
struct HeapEntry {
  int64_t Score;
  std::vector<unsigned> Idx; ///< Choice index per source attribute.

  bool operator<(const HeapEntry &O) const {
    if (Score != O.Score)
      return Score < O.Score; // priority_queue is a max-heap.
    return Idx > O.Idx;       // Deterministic tie-break.
  }
};

} // namespace

struct VcEnumerator::Impl {
  VcOptions Opts;
  std::vector<QualifiedAttr> SrcAttrs;
  std::vector<QualifiedAttr> TgtAttrs;
  std::vector<std::vector<unsigned>> Candidates; ///< Compatible targets per src.
  std::vector<std::vector<unsigned>> Sims;       ///< sim per candidate.
  std::vector<bool> IsQueried;
  bool Infeasible = false;
  uint64_t ConstOffset = 0; ///< Alpha * sum_i C(|C_i|, 2).

  // KBest backend state.
  std::vector<std::vector<AttrChoice>> Choices;
  std::priority_queue<HeapEntry> Heap;
  std::set<std::vector<unsigned>> Visited;

  // MaxSat backend state.
  sat::MaxSatSolver MS;
  std::vector<std::pair<unsigned, unsigned>> VarPair; ///< var -> (src, cand).
  bool MaxSatBuilt = false;

  /// How many of the highest-similarity candidates participate in
  /// multi-attribute images. Singleton images consider every compatible
  /// candidate; images of size >= 2 (attribute duplication) draw from this
  /// pool, which keeps the per-attribute choice space polynomial.
  static constexpr unsigned MultiImagePool = 8;

  void buildCommon(const Schema &Source, const Schema &Target,
                   const std::set<QualifiedAttr> &Queried) {
    SrcAttrs = Source.allAttrs();
    TgtAttrs = Target.allAttrs();
    Candidates.resize(SrcAttrs.size());
    Sims.resize(SrcAttrs.size());
    IsQueried.resize(SrcAttrs.size(), false);

    // Exact-name preemption (see VcOptions): target attributes with an
    // exact-name source candidate of compatible type.
    std::vector<bool> HasExactSource(TgtAttrs.size(), false);
    if (Opts.ExactNamePreemption)
      for (unsigned J = 0; J < TgtAttrs.size(); ++J)
        for (const QualifiedAttr &A : SrcAttrs)
          if (A.Attr == TgtAttrs[J].Attr &&
              Source.attrType(A) == Target.attrType(TgtAttrs[J])) {
            HasExactSource[J] = true;
            break;
          }

    for (unsigned I = 0; I < SrcAttrs.size(); ++I) {
      ValueType SrcTy = Source.attrType(SrcAttrs[I]);
      IsQueried[I] = Queried.count(SrcAttrs[I]) > 0;
      for (unsigned J = 0; J < TgtAttrs.size(); ++J) {
        if (Target.attrType(TgtAttrs[J]) != SrcTy)
          continue;
        if (HasExactSource[J] && SrcAttrs[I].Attr != TgtAttrs[J].Attr)
          continue;
        Candidates[I].push_back(J);
        unsigned Sim = Opts.UseNameSimilarity
                           ? pairWeight(SrcAttrs[I], TgtAttrs[J], Opts.Alpha)
                           : 0;
        Sims[I].push_back(Sim);
      }
      if (IsQueried[I] && Candidates[I].empty())
        Infeasible = true;
      uint64_t C = Candidates[I].size();
      ConstOffset +=
          static_cast<uint64_t>(oneToOnePenalty(Opts.Alpha)) * (C * (C - 1) / 2);
    }
  }

  void buildKBest() {
    Choices.resize(SrcAttrs.size());
    for (unsigned I = 0; I < SrcAttrs.size(); ++I) {
      std::vector<AttrChoice> &Out = Choices[I];
      if (!IsQueried[I])
        Out.push_back({0, {}});
      // Singletons over all compatible candidates.
      for (unsigned K = 0; K < Candidates[I].size(); ++K)
        Out.push_back({static_cast<int64_t>(Sims[I][K]), {Candidates[I][K]}});

      // Multi-attribute images from the highest-similarity pool.
      if (Opts.MaxImageSize >= 2 && Candidates[I].size() >= 2) {
        std::vector<unsigned> Pool(Candidates[I].size());
        for (unsigned K = 0; K < Pool.size(); ++K)
          Pool[K] = K;
        std::stable_sort(Pool.begin(), Pool.end(), [&](unsigned A, unsigned B) {
          return Sims[I][A] > Sims[I][B];
        });
        if (Pool.size() > MultiImagePool)
          Pool.resize(MultiImagePool);
        std::sort(Pool.begin(), Pool.end());

        // All subsets of the pool with size in [2, MaxImageSize].
        std::vector<unsigned> Stack;
        auto Rec = [&](auto &&Self, unsigned From) -> void {
          if (Stack.size() >= 2) {
            int64_t Score = 0;
            std::vector<unsigned> Subset;
            for (unsigned K : Stack) {
              Score += Sims[I][K];
              Subset.push_back(Candidates[I][K]);
            }
            uint64_t N = Stack.size();
            Score -= static_cast<int64_t>(oneToOnePenalty(Opts.Alpha)) *
                     (N * (N - 1) / 2);
            std::sort(Subset.begin(), Subset.end());
            Out.push_back({Score, std::move(Subset)});
          }
          if (Stack.size() >= Opts.MaxImageSize)
            return;
          for (unsigned K = From; K < Pool.size(); ++K) {
            Stack.push_back(Pool[K]);
            Self(Self, K + 1);
            Stack.pop_back();
          }
        };
        Rec(Rec, 0);
      }
      std::sort(Out.begin(), Out.end(), choiceBetter);
      assert(!Out.empty() || IsQueried[I]);
      if (Out.empty())
        Infeasible = true;
    }
    if (Infeasible)
      return;

    HeapEntry Root;
    Root.Idx.assign(SrcAttrs.size(), 0);
    Root.Score = 0;
    for (unsigned I = 0; I < SrcAttrs.size(); ++I)
      Root.Score += Choices[I][0].Score;
    Visited.insert(Root.Idx);
    Heap.push(std::move(Root));
  }

  void buildMaxSat() {
    MaxSatBuilt = true;
    std::vector<std::vector<int>> Var(SrcAttrs.size());
    for (unsigned I = 0; I < SrcAttrs.size(); ++I) {
      Var[I].resize(Candidates[I].size());
      for (unsigned K = 0; K < Candidates[I].size(); ++K) {
        Var[I][K] = MS.addVars(1);
        VarPair.emplace_back(I, K);
      }
    }
    for (unsigned I = 0; I < SrcAttrs.size(); ++I) {
      // Hard: queried attributes must map somewhere.
      if (IsQueried[I]) {
        std::vector<sat::Lit> Clause;
        for (int V : Var[I])
          Clause.push_back(sat::posLit(V));
        MS.addHard(std::move(Clause));
      }
      // Soft: name similarity.
      for (unsigned K = 0; K < Candidates[I].size(); ++K)
        if (Sims[I][K] > 0)
          MS.addSoft({sat::posLit(Var[I][K])}, Sims[I][K]);
      // Soft: one-to-one preference.
      for (unsigned K = 0; K < Candidates[I].size(); ++K)
        for (unsigned L = K + 1; L < Candidates[I].size(); ++L)
          MS.addSoft({sat::negLit(Var[I][K]), sat::negLit(Var[I][L])},
                     oneToOnePenalty(Opts.Alpha));
    }
  }

  std::optional<std::pair<ValueCorrespondence, uint64_t>> nextKBest() {
    if (Heap.empty())
      return std::nullopt;
    HeapEntry Top = Heap.top();
    Heap.pop();

    // Push the frontier successors. Candidates already visited through a
    // different parent are pruned — report both so the frontier's branching
    // factor is visible.
    uint64_t Pushed = 0, Pruned = 0;
    for (unsigned I = 0; I < Top.Idx.size(); ++I) {
      if (Top.Idx[I] + 1 >= Choices[I].size())
        continue;
      HeapEntry Child = Top;
      Child.Score += Choices[I][Top.Idx[I] + 1].Score -
                     Choices[I][Top.Idx[I]].Score;
      ++Child.Idx[I];
      if (Visited.insert(Child.Idx).second) {
        Heap.push(std::move(Child));
        ++Pushed;
      } else {
        ++Pruned;
      }
    }
    MIGRATOR_COUNTER_ADD("vc.kbest_pushed", Pushed);
    MIGRATOR_COUNTER_ADD("vc.kbest_dedup_pruned", Pruned);

    ValueCorrespondence VC;
    for (unsigned I = 0; I < Top.Idx.size(); ++I)
      for (unsigned J : Choices[I][Top.Idx[I]].Subset)
        VC.add(SrcAttrs[I], TgtAttrs[J]);
    uint64_t Weight = static_cast<uint64_t>(
        std::max<int64_t>(0, Top.Score + static_cast<int64_t>(ConstOffset)));
    return std::make_pair(std::move(VC), Weight);
  }

  std::optional<std::pair<ValueCorrespondence, uint64_t>> nextMaxSat() {
    if (!MaxSatBuilt)
      buildMaxSat();
    sat::MaxSatStats Pre = MS.getStats(); // Cumulative; report the delta.
    uint64_t PreAssump = MS.getNumAssumptionCalls();
    std::optional<sat::MaxSatResult> R = MS.solve(Opts.MaxSatNodeBudget);
    if (obs::metricsEnabled()) {
      const sat::MaxSatStats &Post = MS.getStats();
      MIGRATOR_COUNTER_ADD("vc.maxsat_calls", 1);
      MIGRATOR_COUNTER_ADD("sat.assumption_calls",
                           MS.getNumAssumptionCalls() - PreAssump);
      MIGRATOR_COUNTER_ADD("vc.maxsat_nodes", Post.Nodes - Pre.Nodes);
      MIGRATOR_COUNTER_ADD("vc.maxsat_bound_prunes",
                           Post.BoundPrunes - Pre.BoundPrunes);
      MIGRATOR_COUNTER_ADD("vc.maxsat_conflict_prunes",
                           Post.ConflictPrunes - Pre.ConflictPrunes);
      MIGRATOR_COUNTER_ADD("vc.maxsat_models_found",
                           Post.ModelsFound - Pre.ModelsFound);
    }
    if (!R)
      return std::nullopt;

    ValueCorrespondence VC;
    std::vector<sat::Lit> Blocking;
    for (int V = 0; V < MS.getNumVars(); ++V) {
      auto [I, K] = VarPair[V];
      if (R->Model[V]) {
        VC.add(SrcAttrs[I], TgtAttrs[Candidates[I][K]]);
        Blocking.push_back(sat::negLit(V));
      } else {
        Blocking.push_back(sat::posLit(V));
      }
    }
    // Block this exact assignment (Sec. 4.2, "Blocking clauses").
    MS.addHard(std::move(Blocking));
    return std::make_pair(std::move(VC), R->Weight);
  }
};

VcEnumerator::VcEnumerator(const Schema &Source, const Schema &Target,
                           const std::set<QualifiedAttr> &Queried,
                           VcOptions Opts)
    : P(std::make_unique<Impl>()) {
  P->Opts = Opts;
  P->buildCommon(Source, Target, Queried);
  if (!P->Infeasible && Opts.TheBackend == VcOptions::Backend::KBest)
    P->buildKBest();
}

VcEnumerator::~VcEnumerator() = default;

std::optional<ValueCorrespondence> VcEnumerator::next() {
  if (P->Infeasible)
    return std::nullopt;
  std::optional<std::pair<ValueCorrespondence, uint64_t>> R =
      P->Opts.TheBackend == VcOptions::Backend::KBest ? P->nextKBest()
                                                      : P->nextMaxSat();
  if (!R)
    return std::nullopt;
  LastWeight = R->second;
  ++NumEnumerated;
  MIGRATOR_COUNTER_ADD("vc.enumerated", 1);
  MIGRATOR_HISTOGRAM_RECORD("vc.weight", LastWeight);
  return std::move(R->first);
}
