//===- vc/ValueCorrespondence.h - Attribute correspondences -------*- C++ -*-===//
//
// Part of the Migrator project: a reproduction of "Synthesizing Database
// Programs for Schema Refactoring" (Wang et al., PLDI 2019).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A value correspondence Φ (Sec. 4.1, after Miller et al.) maps each
/// attribute of the source schema to a *set* of attributes of the target
/// schema: `T'.b ∈ Φ(T.a)` asserts that column b of T' stores the same
/// entries as column a of T. An empty image means the attribute was dropped;
/// an image with several attributes means it was duplicated.
///
//===----------------------------------------------------------------------===//

#ifndef MIGRATOR_VC_VALUECORRESPONDENCE_H
#define MIGRATOR_VC_VALUECORRESPONDENCE_H

#include "relational/Schema.h"

#include <map>
#include <string>
#include <vector>

namespace migrator {

/// A candidate value correspondence between two schemas.
class ValueCorrespondence {
public:
  /// Adds \p Tgt to Φ(\p Src). Duplicate insertions are ignored.
  void add(const QualifiedAttr &Src, const QualifiedAttr &Tgt);

  /// Returns Φ(\p Src); the empty set if unmapped.
  const std::vector<QualifiedAttr> &image(const QualifiedAttr &Src) const;

  /// Returns true if \p Tgt ∈ Φ(\p Src).
  bool maps(const QualifiedAttr &Src, const QualifiedAttr &Tgt) const;

  /// Number of source attributes with a non-empty image.
  size_t getNumMappedAttrs() const { return Map.size(); }

  /// Total number of (source, target) pairs.
  size_t getNumPairs() const;

  bool operator==(const ValueCorrespondence &O) const { return Map == O.Map; }
  bool operator!=(const ValueCorrespondence &O) const { return !(*this == O); }
  bool operator<(const ValueCorrespondence &O) const { return Map < O.Map; }

  /// Renders one mapping per line, e.g. `Instructor.IPic -> Picture.Pic`.
  std::string str() const;

private:
  std::map<QualifiedAttr, std::vector<QualifiedAttr>> Map;
};

} // namespace migrator

#endif // MIGRATOR_VC_VALUECORRESPONDENCE_H
