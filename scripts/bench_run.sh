#!/usr/bin/env bash
#===- scripts/bench_run.sh - Engine benchmark sweep -------------------------===#
#
# Builds the Release tree and runs bench_sweep, producing the
# machine-readable BENCH_PR6.json report: a `meta` block (git SHA, compiler,
# nproc, CPU model, UTC timestamp) so ledger entries are attributable; per
# benchmark, wall-clock at jobs = 1, 2, and 4 (deterministic, batch 4) plus
# a source-cache on/off pair; the join-engine ablation (indexed vs naive
# nested-loop); the state-engine ablation (COW snapshots on/off x failure
# corpus on/off, with peak RSS and a synthesized-program hash that must
# match across configurations); and a `contention` section — per-lock-site
# acquisition/wait/hold totals and wait percentiles from a dedicated
# profiled re-run at the widest jobs setting. See docs/PERFORMANCE.md for
# how to read the numbers — thread scaling is only meaningful on a
# multi-core host, and the sweep refuses to run when the affinity mask
# disagrees with hardware_concurrency (set MIGRATOR_SWEEP_IGNORE_NPROC=1 to
# override).
#
# Compare two reports with scripts/bench_diff.py — the regression ledger:
#   scripts/bench_diff.py BENCH_PR5.json BENCH_PR6.json
#
# Usage: scripts/bench_run.sh [build-dir] [output.json]
#        (defaults: build, BENCH_PR6.json at the repo root)
#
# Environment: MIGRATOR_BENCH_BUDGET (per-run seconds cap),
# MIGRATOR_SWEEP_BENCHMARKS (comma-separated names), MIGRATOR_SWEEP_QUICK=1
# (jobs {1,2}, small join, 3s default budget — for CI smoke runs).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"
OUT="${2:-$REPO/BENCH_PR6.json}"

echo "== configure + build (Release) =="
cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target bench_sweep

echo "== sweep =="
"$BUILD/bench/bench_sweep" "$OUT"
echo "report: $OUT"
