#!/usr/bin/env bash
#===- scripts/bench_run.sh - Engine benchmark sweep -------------------------===#
#
# Builds the Release tree and runs bench_sweep, producing the
# machine-readable BENCH_PR5.json report: per benchmark, wall-clock at
# jobs = 1, 2, and 4 (deterministic, batch 4) plus a source-cache on/off
# pair; the join-engine ablation (indexed vs naive nested-loop, with
# eval.tuples_scanned / eval.index_probes deltas); and the state-engine
# ablation (COW snapshots on/off x failure corpus on/off, with peak RSS,
# cow_shares/cow_clones, corpus counters, and a synthesized-program hash
# that must match across configurations). See docs/PERFORMANCE.md for how
# to read the numbers — thread scaling is only meaningful on a multi-core
# host (the report records hardware_concurrency).
#
# Usage: scripts/bench_run.sh [build-dir] [output.json]
#        (defaults: build, BENCH_PR5.json at the repo root)
#
# Environment: MIGRATOR_BENCH_BUDGET (per-run seconds cap),
# MIGRATOR_SWEEP_BENCHMARKS (comma-separated names).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"
OUT="${2:-$REPO/BENCH_PR5.json}"

echo "== configure + build (Release) =="
cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target bench_sweep

echo "== sweep =="
"$BUILD/bench/bench_sweep" "$OUT"
echo "report: $OUT"
