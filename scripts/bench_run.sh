#!/usr/bin/env bash
#===- scripts/bench_run.sh - Engine benchmark sweep -------------------------===#
#
# Builds the Release tree and runs bench_sweep, producing the
# machine-readable BENCH_PR10.json report: a `meta` block (git SHA, compiler,
# nproc, CPU model, UTC timestamp) so ledger entries are attributable; per
# benchmark, wall-clock at jobs = 1, 2, and 4 (deterministic, batch 4) plus
# a source-cache on/off pair; a `scaling` section — the jobs {1,2,4,8}
# speedup/efficiency curve with per-row program hashes, truncated with a
# machine-readable `skipped` marker on hosts without the cores; the
# join-engine ablation (indexed vs naive nested-loop); the state-engine
# ablation (COW snapshots on/off x failure corpus on/off, with peak RSS and
# a synthesized-program hash that must match across configurations); the
# solver-engine ablation (persistent assumption-based SAT solver vs the
# scratch-per-encoding oracle, in both the completing pipeline config and a
# fixed-budget enumerative stress config, with `solver.sat_call_us` totals
# and cross-engine program hashes that must agree); and a
# `contention` section — per-lock-site acquisition/wait/hold totals and
# wait percentiles from a dedicated profiled re-run at the widest jobs
# setting (striped src_cache.s<I> sites plus a summed `src_cache` row for
# ledger continuity). See docs/PERFORMANCE.md for how to read the numbers.
# When the affinity mask disagrees with hardware_concurrency the sweep
# warns and self-labels (meta + skip marker) instead of refusing to run.
#
# Compare two reports with scripts/bench_diff.py — the regression ledger:
#   scripts/bench_diff.py BENCH_PR8.json BENCH_PR10.json
#
# Usage: scripts/bench_run.sh [build-dir] [output.json]
#        (defaults: build, BENCH_PR10.json at the repo root)
#
# Environment: MIGRATOR_BENCH_BUDGET (per-run seconds cap),
# MIGRATOR_SWEEP_BENCHMARKS (comma-separated names), MIGRATOR_SWEEP_QUICK=1
# (jobs {1,2}, small join, 3s default budget — for CI smoke runs).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build}"
OUT="${2:-$REPO/BENCH_PR10.json}"

echo "== configure + build (Release) =="
cmake -B "$BUILD" -S "$REPO" -DCMAKE_BUILD_TYPE=Release
cmake --build "$BUILD" -j"$(nproc)" --target bench_sweep

echo "== sweep =="
"$BUILD/bench/bench_sweep" "$OUT"
echo "report: $OUT"
