#!/usr/bin/env bash
#===- scripts/check.sh - Sanitized build + tests + obs smoke run ------------===#
#
# The tier-1 verification script, strengthened: Debug build under
# Address/UndefinedBehaviorSanitizer, the full ctest suite, and a
# migrate_tool observability smoke run whose emitted trace/stats JSON is
# validated with trace_check.
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build-check}"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== configure (Debug + ASan/UBSan) =="
cmake -B "$BUILD" -S "$REPO" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

echo "== build =="
cmake --build "$BUILD" -j"$(nproc)"

echo "== ctest =="
ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== observability smoke run =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/dump_benchmarks" "$TMP/dbp" > /dev/null

"$BUILD/examples/migrate_tool" "$TMP/dbp/Oracle-2.dbp" App \
  Oracle_2Src Oracle_2Tgt \
  --trace="$TMP/run.trace.json" --stats-json="$TMP/run.stats.json" 120 \
  > /dev/null

"$BUILD/examples/trace_check" --trace \
  --expect synthesize --expect vc.next --expect sketch.generate \
  --expect solve.sketch "$TMP/run.trace.json"
"$BUILD/examples/trace_check" "$TMP/run.stats.json"

# The MIGRATOR_TRACE env var must work without the flag.
MIGRATOR_TRACE="$TMP/env.trace.json" \
  "$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-2.dbp" App \
  Ambler_2Src Ambler_2Tgt 120 > /dev/null
"$BUILD/examples/trace_check" --trace --expect synthesize "$TMP/env.trace.json"

echo "== all checks passed =="
