#!/usr/bin/env bash
#===- scripts/check.sh - Sanitized build + tests + obs smoke run ------------===#
#
# The tier-1 verification script, strengthened: Debug build under
# Address/UndefinedBehaviorSanitizer, the full ctest suite (run three times:
# with the default engines, with MIGRATOR_NO_INDEX=1 forcing the naive
# nested-loop join oracle, and with MIGRATOR_NO_COW=1 forcing the deep-copy
# table-storage oracle), a migrate_tool observability smoke run whose emitted
# trace/stats JSON is validated with trace_check, and a ThreadSanitizer pass
# over the parallel synthesis engine (thread pool, portfolio, batched
# tester, source cache, shared plan cache, lazy index builds, and COW
# payload sharing across worker threads).
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
#
# Set MIGRATOR_SKIP_TSAN=1 to skip the ThreadSanitizer stage (it builds a
# second tree).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build-check}"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== configure (Debug + ASan/UBSan) =="
cmake -B "$BUILD" -S "$REPO" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

echo "== build =="
cmake --build "$BUILD" -j"$(nproc)"

echo "== ctest (indexed join engine) =="
ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== ctest (MIGRATOR_NO_INDEX=1: naive join oracle) =="
MIGRATOR_NO_INDEX=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== ctest (MIGRATOR_NO_COW=1: deep-copy storage oracle) =="
MIGRATOR_NO_COW=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== observability smoke run =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/dump_benchmarks" "$TMP/dbp" > /dev/null

"$BUILD/examples/migrate_tool" "$TMP/dbp/Oracle-2.dbp" App \
  Oracle_2Src Oracle_2Tgt \
  --trace="$TMP/run.trace.json" --stats-json="$TMP/run.stats.json" 120 \
  > /dev/null

"$BUILD/examples/trace_check" --trace \
  --expect synthesize --expect vc.next --expect sketch.generate \
  --expect solve.sketch "$TMP/run.trace.json"
"$BUILD/examples/trace_check" "$TMP/run.stats.json"

# The MIGRATOR_TRACE env var must work without the flag.
MIGRATOR_TRACE="$TMP/env.trace.json" \
  "$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-2.dbp" App \
  Ambler_2Src Ambler_2Tgt 120 > /dev/null
"$BUILD/examples/trace_check" --trace --expect synthesize "$TMP/env.trace.json"

# Deep-copy storage oracle end to end under ASan/UBSan.
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --no-cow 120 > /dev/null

if [ "${MIGRATOR_SKIP_TSAN:-0}" != "1" ]; then
  echo "== ThreadSanitizer: parallel engine =="
  TSAN_BUILD="$BUILD-tsan"
  TSAN_FLAGS="-fsanitize=thread"
  cmake -B "$TSAN_BUILD" -S "$REPO" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
  cmake --build "$TSAN_BUILD" -j"$(nproc)" --target migrator_tests \
    --target migrate_tool --target dump_benchmarks
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
    -R 'ThreadPool|ParallelSynth|SourceCache|SolveStats|TableCow|CowDifferential'
  # A real parallel run under TSan: portfolio + batching + shared cache +
  # COW payloads shared across workers; then the same with the deep-copy
  # storage oracle.
  "$TSAN_BUILD/examples/dump_benchmarks" "$TMP/dbp-tsan" > /dev/null
  "$TSAN_BUILD/examples/migrate_tool" "$TMP/dbp-tsan/Ambler-8.dbp" App \
    Ambler_8Src Ambler_8Tgt --jobs=4 --batch=4 --deterministic 120 \
    > /dev/null
  "$TSAN_BUILD/examples/migrate_tool" "$TMP/dbp-tsan/Ambler-8.dbp" App \
    Ambler_8Src Ambler_8Tgt --jobs=4 --batch=4 --deterministic --no-cow 120 \
    > /dev/null
fi

echo "== all checks passed =="
