#!/usr/bin/env bash
#===- scripts/check.sh - Sanitized build + tests + obs smoke run ------------===#
#
# The tier-1 verification script, strengthened: Debug build under
# Address/UndefinedBehaviorSanitizer, the full ctest suite (run four times:
# with the default engines, with MIGRATOR_NO_INDEX=1 forcing the naive
# nested-loop join oracle, with MIGRATOR_NO_COW=1 forcing the deep-copy
# table-storage oracle, and with MIGRATOR_NO_INCREMENTAL=1 forcing the
# scratch-per-encoding SAT oracle), a migrate_tool observability smoke run whose
# emitted trace/stats/flight JSON is validated with trace_check (per-worker
# trace lanes, lock-contention metrics, flight-recorder dump), a
# deterministic-mode byte-identity check across jobs=1/2/4 (and with
# profiling enabled), a bench_diff.py self-check (quick sweep vs itself
# must report zero regressions; an injected wall-clock regression must be
# caught), and a ThreadSanitizer pass over the parallel synthesis engine,
# the striped source cache, the lock-free COW index path, and the
# concurrency-observability layer (lock profiling, sharded counters, flight
# recorder, worker lanes).
#
# Usage: scripts/check.sh [build-dir]     (default: build-check)
#
# Set MIGRATOR_SKIP_TSAN=1 to skip the ThreadSanitizer stage (it builds a
# second tree).
#
#===----------------------------------------------------------------------===#

set -euo pipefail

REPO="$(cd "$(dirname "$0")/.." && pwd)"
BUILD="${1:-$REPO/build-check}"
SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all"

echo "== configure (Debug + ASan/UBSan) =="
cmake -B "$BUILD" -S "$REPO" \
  -DCMAKE_BUILD_TYPE=Debug \
  -DCMAKE_CXX_FLAGS="$SAN_FLAGS" \
  -DCMAKE_EXE_LINKER_FLAGS="$SAN_FLAGS"

echo "== build =="
cmake --build "$BUILD" -j"$(nproc)"

echo "== ctest (indexed join engine) =="
ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== ctest (MIGRATOR_NO_INDEX=1: naive join oracle) =="
MIGRATOR_NO_INDEX=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== ctest (MIGRATOR_NO_COW=1: deep-copy storage oracle) =="
MIGRATOR_NO_COW=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== ctest (MIGRATOR_NO_INCREMENTAL=1: scratch SAT-solver oracle) =="
MIGRATOR_NO_INCREMENTAL=1 ctest --test-dir "$BUILD" --output-on-failure -j"$(nproc)"

echo "== observability smoke run =="
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

"$BUILD/examples/dump_benchmarks" "$TMP/dbp" > /dev/null

# Parallel run with every exporter on: Chrome trace (with per-worker
# lanes), stats JSON (with lock.* contention metrics and pool.w<I>.*
# per-worker counters), lock-contention table, flight-recorder dump.
"$BUILD/examples/migrate_tool" "$TMP/dbp/Oracle-2.dbp" App \
  Oracle_2Src Oracle_2Tgt --jobs=2 \
  --trace="$TMP/run.trace.json" --stats-json="$TMP/run.stats.json" \
  --profile-locks --flight-dump="$TMP/run.flight.json" 120 \
  > /dev/null

"$BUILD/examples/trace_check" --trace \
  --expect synthesize --expect vc.next --expect sketch.generate \
  --expect solve.sketch --expect pool.task \
  --lanes --min-tids 2 "$TMP/run.trace.json"
"$BUILD/examples/trace_check" --stats \
  --expect-counter lock.plan_cache.acquisitions \
  --expect-hist lock.plan_cache.wait_us \
  --expect-counter pool.w0.tasks "$TMP/run.stats.json"
"$BUILD/examples/trace_check" --flight "$TMP/run.flight.json"

# The MIGRATOR_TRACE env var must work without the flag.
MIGRATOR_TRACE="$TMP/env.trace.json" \
  "$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-2.dbp" App \
  Ambler_2Src Ambler_2Tgt 120 > /dev/null
"$BUILD/examples/trace_check" --trace --expect synthesize "$TMP/env.trace.json"

# Deep-copy storage oracle end to end under ASan/UBSan.
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --no-cow 120 > /dev/null

# Scratch SAT-solver oracle end to end under ASan/UBSan, plus a CNF dump
# that must produce at least one well-formed DIMACS file.
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --no-incremental 120 > /dev/null
mkdir -p "$TMP/cnf"
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-2.dbp" App \
  Ambler_2Src Ambler_2Tgt --dump-cnf="$TMP/cnf" 120 > /dev/null
grep -q '^p cnf ' "$TMP/cnf/sketch_0.cnf"

echo "== deterministic mode is byte-identical across thread counts =="
# jobs=1 is the reference; jobs=2 and jobs=4 (plus profiling at jobs=2)
# must reproduce it byte for byte — the acceptance gate for every change
# to the striped source cache and the lock-free COW index path.
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --jobs=1 --deterministic 120 \
  > "$TMP/det.j1.out"
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --jobs=2 --deterministic 120 \
  > "$TMP/det.plain.out"
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --jobs=4 --deterministic 120 \
  > "$TMP/det.j4.out"
"$BUILD/examples/migrate_tool" "$TMP/dbp/Ambler-8.dbp" App \
  Ambler_8Src Ambler_8Tgt --jobs=2 --deterministic --profile-locks \
  --flight-dump="$TMP/det.flight.json" 120 \
  > "$TMP/det.profiled.out"
cmp "$TMP/det.j1.out" "$TMP/det.plain.out"
cmp "$TMP/det.j1.out" "$TMP/det.j4.out"
cmp "$TMP/det.plain.out" "$TMP/det.profiled.out"

echo "== bench_diff.py regression-ledger self-check =="
# A quick sweep compared against itself must be clean; the same file with
# an injected wall-clock regression must trip the ledger.
MIGRATOR_SWEEP_QUICK=1 MIGRATOR_SWEEP_BENCHMARKS=Ambler-8 \
  "$BUILD/bench/bench_sweep" "$TMP/bench_a.json" > /dev/null
python3 "$REPO/scripts/bench_diff.py" --min-wall-sec 0 \
  "$TMP/bench_a.json" "$TMP/bench_a.json"
python3 - "$TMP/bench_a.json" "$TMP/bench_b.json" <<'PY'
import json, sys
doc = json.load(open(sys.argv[1]))
for row in doc.get("results") or []:
    row["wall_sec"] = row.get("wall_sec", 0.0) * 1.5
json.dump(doc, open(sys.argv[2], "w"))
PY
if python3 "$REPO/scripts/bench_diff.py" --min-wall-sec 0 \
    "$TMP/bench_a.json" "$TMP/bench_b.json" > /dev/null; then
  echo "error: bench_diff.py missed an injected 50% wall regression" >&2
  exit 1
fi
echo "injected regression caught, self-comparison clean"

if [ "${MIGRATOR_SKIP_TSAN:-0}" != "1" ]; then
  echo "== ThreadSanitizer: parallel engine + observability =="
  TSAN_BUILD="$BUILD-tsan"
  TSAN_FLAGS="-fsanitize=thread"
  cmake -B "$TSAN_BUILD" -S "$REPO" \
    -DCMAKE_BUILD_TYPE=Debug \
    -DCMAKE_CXX_FLAGS="$TSAN_FLAGS" \
    -DCMAKE_EXE_LINKER_FLAGS="$TSAN_FLAGS"
  cmake --build "$TSAN_BUILD" -j"$(nproc)" --target migrator_tests \
    --target migrate_tool --target dump_benchmarks --target trace_check
  ctest --test-dir "$TSAN_BUILD" --output-on-failure \
    -R 'ThreadPool|ParallelSynth|SourceCache|StripedSourceCache|CowIndexStress|ScalingDeterminism|SolveStats|TableCow|CowDifferential|LockProfile|MetricShard|Flight|WorkerLane|SatAssumption|SatReduceDb'
  # A real parallel run under TSan: portfolio + batching + shared cache +
  # COW payloads shared across workers — with lock profiling and the
  # flight recorder live; then the same with the deep-copy storage oracle.
  "$TSAN_BUILD/examples/dump_benchmarks" "$TMP/dbp-tsan" > /dev/null
  "$TSAN_BUILD/examples/migrate_tool" "$TMP/dbp-tsan/Ambler-8.dbp" App \
    Ambler_8Src Ambler_8Tgt --jobs=4 --batch=4 --deterministic \
    --profile-locks --flight-dump="$TMP/tsan.flight.json" 120 \
    > /dev/null
  "$TSAN_BUILD/examples/trace_check" --flight "$TMP/tsan.flight.json"
  "$TSAN_BUILD/examples/migrate_tool" "$TMP/dbp-tsan/Ambler-8.dbp" App \
    Ambler_8Src Ambler_8Tgt --jobs=4 --batch=4 --deterministic --no-cow 120 \
    > /dev/null
fi

echo "== all checks passed =="
