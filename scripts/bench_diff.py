#!/usr/bin/env python3
"""Benchmark regression ledger: compare two bench_sweep BENCH_*.json files.

Usage:
    scripts/bench_diff.py [options] BASELINE.json NEW.json

Compares the two reports section by section — `results` (the parallel
engine sweep), `state_engine`, `join_engine`, `solver` (the incremental
SAT-engine ablation), `contention`, and `scaling` (the jobs-sweep speedup
curve) — matching rows by their configuration key and flagging regressions
beyond tolerance. `--section NAME` (repeatable) restricts the comparison
to the named section(s):

  * wall-clock per row            (--wall-tol, default +10%)
  * peak RSS per state-engine row (--rss-tol, default +15%)
  * sequences_run / work counters (--work-tol, default +25%)
  * total lock wait per site      (--wait-tol, default +50%)
  * per-thread scaling efficiency (--eff-tol, default -20%; efficiency is
    higher-is-better, so the tolerance bounds *loss*)
  * a benchmark that succeeded in the baseline but fails in the new run
  * a state-engine prog_hash that changed between runs of the same config
  * a baseline row with no matching row in the new run (coverage loss)

The scaling section additionally self-checks the NEW report: within one
benchmark, raising the thread count must never cost more than --eff-tol
wall-clock over the jobs=1 row (even on a single-core host, where the
curve is truncated and `scaling.skipped` is true), and the deterministic
program hash must be identical at every swept thread count. Rows a
truncated (skipped) new-run sweep could not produce are reported as notes,
not regressions — the skip marker is machine-readable on purpose.

Rows whose baseline wall time is below --min-wall-sec (default 0.25s) skip
the wall comparison: sub-quarter-second runs are scheduler noise. Counter
comparisons skip baselines below --min-work (default 100).

The meta blocks (git SHA, host) of both files are echoed so a ledger entry
is attributable; files from before the meta block are tolerated.

Exit status: 0 = no regressions, 1 = regressions found, 2 = bad usage or
unreadable/mismatched input.
"""

import argparse
import json
import sys


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"bench_diff: cannot read '{path}': {e}", file=sys.stderr)
        sys.exit(2)


def fmt_meta(doc):
    meta = doc.get("meta")
    if not isinstance(meta, dict):
        return "no meta block (pre-ledger format)"
    sha = meta.get("git_sha") or "?"
    build = meta.get("build", "?")
    nproc = meta.get("nproc", "?")
    ts = meta.get("timestamp_utc") or "?"
    quick = " QUICK" if meta.get("quick") else ""
    return f"sha={sha[:12]} build={build} nproc={nproc} time={ts}{quick}"


def index_rows(doc, section, key_fields):
    """Maps each row's configuration key to the row; ignores missing
    sections (older files) and rows lacking a key field."""
    out = {}
    for row in doc.get(section) or []:
        try:
            key = tuple(row[f] for f in key_fields)
        except (KeyError, TypeError):
            continue
        out[key] = row
    return out


class Ledger:
    def __init__(self):
        self.regressions = []
        self.improvements = []
        self.notes = []

    def regress(self, msg):
        self.regressions.append(msg)

    def improve(self, msg):
        self.improvements.append(msg)

    def note(self, msg):
        self.notes.append(msg)


def key_str(section, key):
    return f"{section}[{', '.join(str(k) for k in key)}]"


def cmp_metric(ledger, where, name, base, new, tol, floor=0.0, unit=""):
    """Flags new > base * (1 + tol); reports improvements beyond the same
    tolerance. Skips baselines at/below the noise floor."""
    if base is None or new is None or base <= floor:
        return
    if new > base * (1.0 + tol):
        ledger.regress(
            f"{where}: {name} {base:g}{unit} -> {new:g}{unit} "
            f"(+{100.0 * (new - base) / base:.1f}%, tol +{100.0 * tol:.0f}%)")
    elif new < base * (1.0 - tol):
        ledger.improve(
            f"{where}: {name} {base:g}{unit} -> {new:g}{unit} "
            f"({100.0 * (new - base) / base:+.1f}%)")


def cmp_section(ledger, base_doc, new_doc, section, key_fields, metrics,
                args, check_ok=False, check_hash=False):
    base = index_rows(base_doc, section, key_fields)
    new = index_rows(new_doc, section, key_fields)
    if not base:
        return
    for key, brow in sorted(base.items(), key=lambda kv: str(kv[0])):
        where = key_str(section, key)
        nrow = new.get(key)
        if nrow is None:
            ledger.regress(f"{where}: present in baseline, missing in new run")
            continue
        if check_ok and brow.get("ok") and not nrow.get("ok"):
            ledger.regress(f"{where}: succeeded in baseline, FAILS in new run")
            continue
        for name, tol, floor, unit in metrics:
            cmp_metric(ledger, where, name, brow.get(name), nrow.get(name),
                       tol, floor, unit)
        if (check_hash and brow.get("ok") and nrow.get("ok")
                and brow.get("prog_hash") not in (None, "-")
                and nrow.get("prog_hash") not in (None, "-")
                and brow["prog_hash"] != nrow["prog_hash"]):
            ledger.regress(
                f"{where}: synthesized program changed "
                f"({brow['prog_hash']} -> {nrow['prog_hash']})")
    extra = set(new) - set(base)
    if extra:
        ledger.note(f"{section}: {len(extra)} new row(s) not in baseline")


def scaling_rows(doc):
    """The scaling section stores its rows nested under the skip marker."""
    sec = doc.get("scaling")
    if not isinstance(sec, dict):
        return {}, {}
    out = {}
    for row in sec.get("rows") or []:
        try:
            key = (row["benchmark"], row["jobs"])
        except (KeyError, TypeError):
            continue
        out[key] = row
    return sec, out


def cmp_scaling(ledger, base_doc, new_doc, args):
    bsec, base = scaling_rows(base_doc)
    nsec, new = scaling_rows(new_doc)
    if nsec and nsec.get("skipped"):
        ledger.note(f"scaling: new run truncated "
                    f"({nsec.get('skip_reason') or 'no reason recorded'})")
    swept = set(nsec.get("jobs_swept") or []) if nsec else set()
    for key, brow in sorted(base.items(), key=lambda kv: str(kv[0])):
        where = key_str("scaling", key)
        nrow = new.get(key)
        if nrow is None:
            if nsec.get("skipped") and key[1] not in swept:
                ledger.note(f"{where}: not swept by truncated new run")
            else:
                ledger.regress(
                    f"{where}: present in baseline, missing in new run")
            continue
        if brow.get("ok") and not nrow.get("ok"):
            ledger.regress(f"{where}: succeeded in baseline, FAILS in new run")
            continue
        cmp_metric(ledger, where, "wall_sec", brow.get("wall_sec"),
                   nrow.get("wall_sec"), args.wall_tol, args.min_wall_sec,
                   "s")
        # Efficiency is higher-is-better: regress on *loss* beyond --eff-tol.
        beff, neff = brow.get("efficiency"), nrow.get("efficiency")
        if (beff is not None and neff is not None and beff > 0
                and brow.get("wall_sec", 0) >= args.min_wall_sec):
            if neff < beff * (1.0 - args.eff_tol):
                ledger.regress(
                    f"{where}: efficiency {beff:.2f} -> {neff:.2f} "
                    f"({100.0 * (neff - beff) / beff:+.1f}%, "
                    f"tol -{100.0 * args.eff_tol:.0f}%)")
            elif neff > beff * (1.0 + args.eff_tol):
                ledger.improve(
                    f"{where}: efficiency {beff:.2f} -> {neff:.2f} "
                    f"({100.0 * (neff - beff) / beff:+.1f}%)")
        if (brow.get("ok") and nrow.get("ok")
                and brow.get("prog_hash") not in (None, "-")
                and nrow.get("prog_hash") not in (None, "-")
                and brow["prog_hash"] != nrow["prog_hash"]):
            ledger.regress(
                f"{where}: synthesized program changed "
                f"({brow['prog_hash']} -> {nrow['prog_hash']})")


def check_scaling_invariants(ledger, doc, name, args):
    """In-file gates on one report's scaling rows: more threads must not
    cost wall-clock beyond --eff-tol, and deterministic mode must produce
    one program hash per benchmark across every swept thread count."""
    _, rows = scaling_rows(doc)
    by_bench = {}
    for (bench, jobs), row in rows.items():
        by_bench.setdefault(bench, {})[jobs] = row
    for bench, sweep in sorted(by_bench.items()):
        base = sweep.get(1)
        if base is None or not base.get("ok"):
            continue
        hashes = {j: r.get("prog_hash") for j, r in sweep.items()
                  if r.get("ok") and r.get("prog_hash") not in (None, "-")}
        if len(set(hashes.values())) > 1:
            ledger.regress(
                f"scaling[{bench}] ({name}): program hash differs across "
                f"thread counts: "
                + ", ".join(f"jobs={j}:{h}" for j, h in sorted(hashes.items())))
        # Quick-mode numbers are schema checks, not ledger entries (the
        # sweep says so) — thread startup overhead dominates their tiny
        # runs, so only the hash gate applies to them.
        meta = doc.get("meta")
        if isinstance(meta, dict) and meta.get("quick"):
            continue
        bwall = base.get("wall_sec", 0)
        if bwall < args.min_wall_sec:
            continue
        for jobs, row in sorted(sweep.items()):
            if jobs == 1 or not row.get("ok"):
                continue
            nwall = row.get("wall_sec")
            if nwall is not None and nwall > bwall * (1.0 + args.eff_tol):
                ledger.regress(
                    f"scaling[{bench}, jobs={jobs}] ({name}): slower than "
                    f"jobs=1 ({bwall:.2f}s -> {nwall:.2f}s, "
                    f"+{100.0 * (nwall - bwall) / bwall:.1f}%, "
                    f"tol +{100.0 * args.eff_tol:.0f}%)")


def main():
    ap = argparse.ArgumentParser(
        description="Compare two bench_sweep BENCH_*.json reports.")
    ap.add_argument("baseline")
    ap.add_argument("new")
    ap.add_argument("--wall-tol", type=float, default=0.10,
                    help="allowed wall-clock growth (fraction, default 0.10)")
    ap.add_argument("--rss-tol", type=float, default=0.15,
                    help="allowed peak-RSS growth (default 0.15)")
    ap.add_argument("--work-tol", type=float, default=0.25,
                    help="allowed work-counter growth (default 0.25)")
    ap.add_argument("--wait-tol", type=float, default=0.50,
                    help="allowed lock-wait growth (default 0.50)")
    ap.add_argument("--eff-tol", type=float, default=0.20,
                    help="allowed scaling-efficiency loss and in-file "
                         "threads-cost-wall allowance (default 0.20)")
    ap.add_argument("--min-wall-sec", type=float, default=0.25,
                    help="skip wall comparison below this baseline (s)")
    ap.add_argument("--min-work", type=float, default=100,
                    help="skip counter comparison below this baseline")
    ap.add_argument("--min-wait-ms", type=float, default=5.0,
                    help="skip wait comparison below this baseline (ms)")
    ap.add_argument("--section", action="append",
                    choices=["results", "state_engine", "join_engine",
                             "solver", "contention", "scaling"],
                    help="compare only this section (repeatable; "
                         "default: every section)")
    args = ap.parse_args()

    base_doc = load(args.baseline)
    new_doc = load(args.new)
    for name, doc in ((args.baseline, base_doc), (args.new, new_doc)):
        if not isinstance(doc, dict) or not any(
                k in doc for k in ("results", "state_engine", "join_engine")):
            print(f"bench_diff: '{name}' is not a bench_sweep report",
                  file=sys.stderr)
            sys.exit(2)

    print(f"baseline: {args.baseline}  ({fmt_meta(base_doc)})")
    print(f"new:      {args.new}  ({fmt_meta(new_doc)})")

    ledger = Ledger()
    sections = set(args.section or ["results", "state_engine", "join_engine",
                                    "solver", "contention", "scaling"])
    wall = ("wall_sec", args.wall_tol, args.min_wall_sec, "s")
    if "results" in sections:
        cmp_section(
            ledger, base_doc, new_doc, "results",
            ("benchmark", "jobs", "batch", "src_cache"),
            [wall, ("sequences_run", args.work_tol, args.min_work, ""),
             ("iters", args.work_tol, args.min_work, "")],
            args, check_ok=True)
    if "state_engine" in sections:
        cmp_section(
            ledger, base_doc, new_doc, "state_engine",
            ("benchmark", "cow", "corpus"),
            [wall, ("peak_rss_kb", args.rss_tol, 0, "KB"),
             ("sequences_run", args.work_tol, args.min_work, "")],
            args, check_ok=True, check_hash=True)
    if "join_engine" in sections:
        cmp_section(
            ledger, base_doc, new_doc, "join_engine",
            ("indexed",),
            [wall, ("tuples_scanned", args.work_tol, args.min_work, "")],
            args)
    if "solver" in sections:
        cmp_section(
            ledger, base_doc, new_doc, "solver",
            ("benchmark", "mode", "incremental"),
            [wall, ("peak_rss_kb", args.rss_tol, 0, "KB"),
             ("sat_call_us_total", args.work_tol, args.min_work, "us"),
             ("conflicts", args.work_tol, args.min_work, "")],
            args, check_ok=True, check_hash=True)
    if "contention" in sections:
        cmp_section(
            ledger, base_doc, new_doc, "contention",
            ("benchmark", "jobs", "site"),
            [("wait_ns", args.wait_tol, args.min_wait_ms * 1e6, "ns")],
            args)
    if "scaling" in sections:
        cmp_scaling(ledger, base_doc, new_doc, args)
        check_scaling_invariants(ledger, new_doc, args.new, args)

    for msg in ledger.notes:
        print(f"note:       {msg}")
    for msg in ledger.improvements:
        print(f"improvement: {msg}")
    for msg in ledger.regressions:
        print(f"REGRESSION: {msg}")
    print(f"bench_diff: {len(ledger.regressions)} regression(s), "
          f"{len(ledger.improvements)} improvement(s)")
    return 1 if ledger.regressions else 0


if __name__ == "__main__":
    sys.exit(main())
