# Empty compiler generated dependencies file for migrator_tests.
# This may be replaced when dependencies are built.
