
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/api_test.cpp" "tests/CMakeFiles/migrator_tests.dir/api_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/api_test.cpp.o.d"
  "/root/repo/tests/ast_test.cpp" "tests/CMakeFiles/migrator_tests.dir/ast_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/ast_test.cpp.o.d"
  "/root/repo/tests/benchsuite_test.cpp" "tests/CMakeFiles/migrator_tests.dir/benchsuite_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/benchsuite_test.cpp.o.d"
  "/root/repo/tests/coverage_test.cpp" "tests/CMakeFiles/migrator_tests.dir/coverage_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/coverage_test.cpp.o.d"
  "/root/repo/tests/dimacs_test.cpp" "tests/CMakeFiles/migrator_tests.dir/dimacs_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/dimacs_test.cpp.o.d"
  "/root/repo/tests/eval_test.cpp" "tests/CMakeFiles/migrator_tests.dir/eval_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/eval_test.cpp.o.d"
  "/root/repo/tests/generator_test.cpp" "tests/CMakeFiles/migrator_tests.dir/generator_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/generator_test.cpp.o.d"
  "/root/repo/tests/parser_test.cpp" "tests/CMakeFiles/migrator_tests.dir/parser_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/parser_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/migrator_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/relational_test.cpp" "tests/CMakeFiles/migrator_tests.dir/relational_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/relational_test.cpp.o.d"
  "/root/repo/tests/sat_test.cpp" "tests/CMakeFiles/migrator_tests.dir/sat_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/sat_test.cpp.o.d"
  "/root/repo/tests/schemadiff_test.cpp" "tests/CMakeFiles/migrator_tests.dir/schemadiff_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/schemadiff_test.cpp.o.d"
  "/root/repo/tests/simplify_test.cpp" "tests/CMakeFiles/migrator_tests.dir/simplify_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/simplify_test.cpp.o.d"
  "/root/repo/tests/sketch_test.cpp" "tests/CMakeFiles/migrator_tests.dir/sketch_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/sketch_test.cpp.o.d"
  "/root/repo/tests/solver_test.cpp" "tests/CMakeFiles/migrator_tests.dir/solver_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/solver_test.cpp.o.d"
  "/root/repo/tests/sqlprinter_test.cpp" "tests/CMakeFiles/migrator_tests.dir/sqlprinter_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/sqlprinter_test.cpp.o.d"
  "/root/repo/tests/stress_test.cpp" "tests/CMakeFiles/migrator_tests.dir/stress_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/stress_test.cpp.o.d"
  "/root/repo/tests/support_test.cpp" "tests/CMakeFiles/migrator_tests.dir/support_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/support_test.cpp.o.d"
  "/root/repo/tests/synth_test.cpp" "tests/CMakeFiles/migrator_tests.dir/synth_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/synth_test.cpp.o.d"
  "/root/repo/tests/vc_test.cpp" "tests/CMakeFiles/migrator_tests.dir/vc_test.cpp.o" "gcc" "tests/CMakeFiles/migrator_tests.dir/vc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchsuite/CMakeFiles/migrator_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/migrator_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/migrator_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/migrator_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/migrator_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/migrator_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/migrator_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/migrator_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/migrator_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
