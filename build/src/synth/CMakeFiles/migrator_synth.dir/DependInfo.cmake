
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/Encoder.cpp" "src/synth/CMakeFiles/migrator_synth.dir/Encoder.cpp.o" "gcc" "src/synth/CMakeFiles/migrator_synth.dir/Encoder.cpp.o.d"
  "/root/repo/src/synth/RandomWorkload.cpp" "src/synth/CMakeFiles/migrator_synth.dir/RandomWorkload.cpp.o" "gcc" "src/synth/CMakeFiles/migrator_synth.dir/RandomWorkload.cpp.o.d"
  "/root/repo/src/synth/SketchSolver.cpp" "src/synth/CMakeFiles/migrator_synth.dir/SketchSolver.cpp.o" "gcc" "src/synth/CMakeFiles/migrator_synth.dir/SketchSolver.cpp.o.d"
  "/root/repo/src/synth/Synthesizer.cpp" "src/synth/CMakeFiles/migrator_synth.dir/Synthesizer.cpp.o" "gcc" "src/synth/CMakeFiles/migrator_synth.dir/Synthesizer.cpp.o.d"
  "/root/repo/src/synth/Tester.cpp" "src/synth/CMakeFiles/migrator_synth.dir/Tester.cpp.o" "gcc" "src/synth/CMakeFiles/migrator_synth.dir/Tester.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sketch/CMakeFiles/migrator_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/migrator_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/migrator_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/migrator_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/migrator_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/migrator_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
