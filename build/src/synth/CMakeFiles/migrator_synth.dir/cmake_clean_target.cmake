file(REMOVE_RECURSE
  "libmigrator_synth.a"
)
