# Empty dependencies file for migrator_synth.
# This may be replaced when dependencies are built.
