file(REMOVE_RECURSE
  "CMakeFiles/migrator_synth.dir/Encoder.cpp.o"
  "CMakeFiles/migrator_synth.dir/Encoder.cpp.o.d"
  "CMakeFiles/migrator_synth.dir/RandomWorkload.cpp.o"
  "CMakeFiles/migrator_synth.dir/RandomWorkload.cpp.o.d"
  "CMakeFiles/migrator_synth.dir/SketchSolver.cpp.o"
  "CMakeFiles/migrator_synth.dir/SketchSolver.cpp.o.d"
  "CMakeFiles/migrator_synth.dir/Synthesizer.cpp.o"
  "CMakeFiles/migrator_synth.dir/Synthesizer.cpp.o.d"
  "CMakeFiles/migrator_synth.dir/Tester.cpp.o"
  "CMakeFiles/migrator_synth.dir/Tester.cpp.o.d"
  "libmigrator_synth.a"
  "libmigrator_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
