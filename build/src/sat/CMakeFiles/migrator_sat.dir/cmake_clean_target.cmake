file(REMOVE_RECURSE
  "libmigrator_sat.a"
)
