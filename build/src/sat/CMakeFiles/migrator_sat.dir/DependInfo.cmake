
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sat/Dimacs.cpp" "src/sat/CMakeFiles/migrator_sat.dir/Dimacs.cpp.o" "gcc" "src/sat/CMakeFiles/migrator_sat.dir/Dimacs.cpp.o.d"
  "/root/repo/src/sat/MaxSat.cpp" "src/sat/CMakeFiles/migrator_sat.dir/MaxSat.cpp.o" "gcc" "src/sat/CMakeFiles/migrator_sat.dir/MaxSat.cpp.o.d"
  "/root/repo/src/sat/Solver.cpp" "src/sat/CMakeFiles/migrator_sat.dir/Solver.cpp.o" "gcc" "src/sat/CMakeFiles/migrator_sat.dir/Solver.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
