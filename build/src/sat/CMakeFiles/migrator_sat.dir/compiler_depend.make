# Empty compiler generated dependencies file for migrator_sat.
# This may be replaced when dependencies are built.
