file(REMOVE_RECURSE
  "CMakeFiles/migrator_sat.dir/Dimacs.cpp.o"
  "CMakeFiles/migrator_sat.dir/Dimacs.cpp.o.d"
  "CMakeFiles/migrator_sat.dir/MaxSat.cpp.o"
  "CMakeFiles/migrator_sat.dir/MaxSat.cpp.o.d"
  "CMakeFiles/migrator_sat.dir/Solver.cpp.o"
  "CMakeFiles/migrator_sat.dir/Solver.cpp.o.d"
  "libmigrator_sat.a"
  "libmigrator_sat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_sat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
