file(REMOVE_RECURSE
  "libmigrator_relational.a"
)
