file(REMOVE_RECURSE
  "CMakeFiles/migrator_relational.dir/Database.cpp.o"
  "CMakeFiles/migrator_relational.dir/Database.cpp.o.d"
  "CMakeFiles/migrator_relational.dir/ResultTable.cpp.o"
  "CMakeFiles/migrator_relational.dir/ResultTable.cpp.o.d"
  "CMakeFiles/migrator_relational.dir/Schema.cpp.o"
  "CMakeFiles/migrator_relational.dir/Schema.cpp.o.d"
  "CMakeFiles/migrator_relational.dir/SchemaDiff.cpp.o"
  "CMakeFiles/migrator_relational.dir/SchemaDiff.cpp.o.d"
  "CMakeFiles/migrator_relational.dir/Table.cpp.o"
  "CMakeFiles/migrator_relational.dir/Table.cpp.o.d"
  "CMakeFiles/migrator_relational.dir/Value.cpp.o"
  "CMakeFiles/migrator_relational.dir/Value.cpp.o.d"
  "libmigrator_relational.a"
  "libmigrator_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
