# Empty dependencies file for migrator_relational.
# This may be replaced when dependencies are built.
