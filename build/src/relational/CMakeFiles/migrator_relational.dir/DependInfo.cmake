
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/Database.cpp" "src/relational/CMakeFiles/migrator_relational.dir/Database.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/Database.cpp.o.d"
  "/root/repo/src/relational/ResultTable.cpp" "src/relational/CMakeFiles/migrator_relational.dir/ResultTable.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/ResultTable.cpp.o.d"
  "/root/repo/src/relational/Schema.cpp" "src/relational/CMakeFiles/migrator_relational.dir/Schema.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/Schema.cpp.o.d"
  "/root/repo/src/relational/SchemaDiff.cpp" "src/relational/CMakeFiles/migrator_relational.dir/SchemaDiff.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/SchemaDiff.cpp.o.d"
  "/root/repo/src/relational/Table.cpp" "src/relational/CMakeFiles/migrator_relational.dir/Table.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/Table.cpp.o.d"
  "/root/repo/src/relational/Value.cpp" "src/relational/CMakeFiles/migrator_relational.dir/Value.cpp.o" "gcc" "src/relational/CMakeFiles/migrator_relational.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
