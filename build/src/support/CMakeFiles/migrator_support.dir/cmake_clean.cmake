file(REMOVE_RECURSE
  "CMakeFiles/migrator_support.dir/StringExtras.cpp.o"
  "CMakeFiles/migrator_support.dir/StringExtras.cpp.o.d"
  "libmigrator_support.a"
  "libmigrator_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
