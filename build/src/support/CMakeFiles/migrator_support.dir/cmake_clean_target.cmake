file(REMOVE_RECURSE
  "libmigrator_support.a"
)
