# Empty dependencies file for migrator_support.
# This may be replaced when dependencies are built.
