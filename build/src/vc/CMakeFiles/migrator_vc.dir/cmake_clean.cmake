file(REMOVE_RECURSE
  "CMakeFiles/migrator_vc.dir/ValueCorrespondence.cpp.o"
  "CMakeFiles/migrator_vc.dir/ValueCorrespondence.cpp.o.d"
  "CMakeFiles/migrator_vc.dir/VcEnumerator.cpp.o"
  "CMakeFiles/migrator_vc.dir/VcEnumerator.cpp.o.d"
  "libmigrator_vc.a"
  "libmigrator_vc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_vc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
