file(REMOVE_RECURSE
  "libmigrator_vc.a"
)
