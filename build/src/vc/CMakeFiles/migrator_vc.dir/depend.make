# Empty dependencies file for migrator_vc.
# This may be replaced when dependencies are built.
