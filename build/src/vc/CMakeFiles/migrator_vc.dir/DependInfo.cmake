
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vc/ValueCorrespondence.cpp" "src/vc/CMakeFiles/migrator_vc.dir/ValueCorrespondence.cpp.o" "gcc" "src/vc/CMakeFiles/migrator_vc.dir/ValueCorrespondence.cpp.o.d"
  "/root/repo/src/vc/VcEnumerator.cpp" "src/vc/CMakeFiles/migrator_vc.dir/VcEnumerator.cpp.o" "gcc" "src/vc/CMakeFiles/migrator_vc.dir/VcEnumerator.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/migrator_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/migrator_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
