# Empty compiler generated dependencies file for migrator_benchsuite.
# This may be replaced when dependencies are built.
