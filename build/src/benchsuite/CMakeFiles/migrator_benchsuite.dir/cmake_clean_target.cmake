file(REMOVE_RECURSE
  "libmigrator_benchsuite.a"
)
