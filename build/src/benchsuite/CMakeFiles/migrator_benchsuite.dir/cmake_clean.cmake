file(REMOVE_RECURSE
  "CMakeFiles/migrator_benchsuite.dir/Benchmarks.cpp.o"
  "CMakeFiles/migrator_benchsuite.dir/Benchmarks.cpp.o.d"
  "CMakeFiles/migrator_benchsuite.dir/Generator.cpp.o"
  "CMakeFiles/migrator_benchsuite.dir/Generator.cpp.o.d"
  "CMakeFiles/migrator_benchsuite.dir/Textbook.cpp.o"
  "CMakeFiles/migrator_benchsuite.dir/Textbook.cpp.o.d"
  "libmigrator_benchsuite.a"
  "libmigrator_benchsuite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_benchsuite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
