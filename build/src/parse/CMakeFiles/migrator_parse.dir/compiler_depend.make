# Empty compiler generated dependencies file for migrator_parse.
# This may be replaced when dependencies are built.
