file(REMOVE_RECURSE
  "libmigrator_parse.a"
)
