file(REMOVE_RECURSE
  "CMakeFiles/migrator_parse.dir/Lexer.cpp.o"
  "CMakeFiles/migrator_parse.dir/Lexer.cpp.o.d"
  "CMakeFiles/migrator_parse.dir/Parser.cpp.o"
  "CMakeFiles/migrator_parse.dir/Parser.cpp.o.d"
  "libmigrator_parse.a"
  "libmigrator_parse.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_parse.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
