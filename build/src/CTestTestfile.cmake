# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("relational")
subdirs("ast")
subdirs("parse")
subdirs("eval")
subdirs("sat")
subdirs("vc")
subdirs("sketch")
subdirs("synth")
subdirs("benchsuite")
