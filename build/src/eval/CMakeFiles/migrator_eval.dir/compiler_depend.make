# Empty compiler generated dependencies file for migrator_eval.
# This may be replaced when dependencies are built.
