file(REMOVE_RECURSE
  "CMakeFiles/migrator_eval.dir/Evaluator.cpp.o"
  "CMakeFiles/migrator_eval.dir/Evaluator.cpp.o.d"
  "libmigrator_eval.a"
  "libmigrator_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
