file(REMOVE_RECURSE
  "libmigrator_eval.a"
)
