file(REMOVE_RECURSE
  "libmigrator_sketch.a"
)
