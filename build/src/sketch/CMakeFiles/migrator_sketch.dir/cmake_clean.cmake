file(REMOVE_RECURSE
  "CMakeFiles/migrator_sketch.dir/JoinGraph.cpp.o"
  "CMakeFiles/migrator_sketch.dir/JoinGraph.cpp.o.d"
  "CMakeFiles/migrator_sketch.dir/Sketch.cpp.o"
  "CMakeFiles/migrator_sketch.dir/Sketch.cpp.o.d"
  "CMakeFiles/migrator_sketch.dir/SketchGen.cpp.o"
  "CMakeFiles/migrator_sketch.dir/SketchGen.cpp.o.d"
  "libmigrator_sketch.a"
  "libmigrator_sketch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_sketch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
