# Empty compiler generated dependencies file for migrator_sketch.
# This may be replaced when dependencies are built.
