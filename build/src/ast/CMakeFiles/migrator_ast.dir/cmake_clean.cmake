file(REMOVE_RECURSE
  "CMakeFiles/migrator_ast.dir/Analysis.cpp.o"
  "CMakeFiles/migrator_ast.dir/Analysis.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/Expr.cpp.o"
  "CMakeFiles/migrator_ast.dir/Expr.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/JoinChain.cpp.o"
  "CMakeFiles/migrator_ast.dir/JoinChain.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/Program.cpp.o"
  "CMakeFiles/migrator_ast.dir/Program.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/Simplify.cpp.o"
  "CMakeFiles/migrator_ast.dir/Simplify.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/SqlPrinter.cpp.o"
  "CMakeFiles/migrator_ast.dir/SqlPrinter.cpp.o.d"
  "CMakeFiles/migrator_ast.dir/Stmt.cpp.o"
  "CMakeFiles/migrator_ast.dir/Stmt.cpp.o.d"
  "libmigrator_ast.a"
  "libmigrator_ast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrator_ast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
