# Empty compiler generated dependencies file for migrator_ast.
# This may be replaced when dependencies are built.
