file(REMOVE_RECURSE
  "libmigrator_ast.a"
)
