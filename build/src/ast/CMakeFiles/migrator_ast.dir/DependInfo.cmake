
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/Analysis.cpp" "src/ast/CMakeFiles/migrator_ast.dir/Analysis.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/Analysis.cpp.o.d"
  "/root/repo/src/ast/Expr.cpp" "src/ast/CMakeFiles/migrator_ast.dir/Expr.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/Expr.cpp.o.d"
  "/root/repo/src/ast/JoinChain.cpp" "src/ast/CMakeFiles/migrator_ast.dir/JoinChain.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/JoinChain.cpp.o.d"
  "/root/repo/src/ast/Program.cpp" "src/ast/CMakeFiles/migrator_ast.dir/Program.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/Program.cpp.o.d"
  "/root/repo/src/ast/Simplify.cpp" "src/ast/CMakeFiles/migrator_ast.dir/Simplify.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/Simplify.cpp.o.d"
  "/root/repo/src/ast/SqlPrinter.cpp" "src/ast/CMakeFiles/migrator_ast.dir/SqlPrinter.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/SqlPrinter.cpp.o.d"
  "/root/repo/src/ast/Stmt.cpp" "src/ast/CMakeFiles/migrator_ast.dir/Stmt.cpp.o" "gcc" "src/ast/CMakeFiles/migrator_ast.dir/Stmt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/relational/CMakeFiles/migrator_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
