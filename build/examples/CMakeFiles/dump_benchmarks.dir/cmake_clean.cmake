file(REMOVE_RECURSE
  "CMakeFiles/dump_benchmarks.dir/dump_benchmarks.cpp.o"
  "CMakeFiles/dump_benchmarks.dir/dump_benchmarks.cpp.o.d"
  "dump_benchmarks"
  "dump_benchmarks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dump_benchmarks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
