# Empty compiler generated dependencies file for dump_benchmarks.
# This may be replaced when dependencies are built.
