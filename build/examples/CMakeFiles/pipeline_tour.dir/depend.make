# Empty dependencies file for pipeline_tour.
# This may be replaced when dependencies are built.
