file(REMOVE_RECURSE
  "CMakeFiles/pipeline_tour.dir/pipeline_tour.cpp.o"
  "CMakeFiles/pipeline_tour.dir/pipeline_tour.cpp.o.d"
  "pipeline_tour"
  "pipeline_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pipeline_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
