file(REMOVE_RECURSE
  "CMakeFiles/migrate_tool.dir/migrate_tool.cpp.o"
  "CMakeFiles/migrate_tool.dir/migrate_tool.cpp.o.d"
  "migrate_tool"
  "migrate_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/migrate_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
