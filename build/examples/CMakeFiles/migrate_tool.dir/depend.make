# Empty dependencies file for migrate_tool.
# This may be replaced when dependencies are built.
