# Empty compiler generated dependencies file for split_blog_tables.
# This may be replaced when dependencies are built.
