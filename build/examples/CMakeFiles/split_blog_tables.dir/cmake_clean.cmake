file(REMOVE_RECURSE
  "CMakeFiles/split_blog_tables.dir/split_blog_tables.cpp.o"
  "CMakeFiles/split_blog_tables.dir/split_blog_tables.cpp.o.d"
  "split_blog_tables"
  "split_blog_tables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/split_blog_tables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
