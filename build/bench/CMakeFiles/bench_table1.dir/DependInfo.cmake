
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1.cpp" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o" "gcc" "bench/CMakeFiles/bench_table1.dir/bench_table1.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/benchsuite/CMakeFiles/migrator_benchsuite.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/migrator_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sketch/CMakeFiles/migrator_sketch.dir/DependInfo.cmake"
  "/root/repo/build/src/vc/CMakeFiles/migrator_vc.dir/DependInfo.cmake"
  "/root/repo/build/src/sat/CMakeFiles/migrator_sat.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/migrator_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/parse/CMakeFiles/migrator_parse.dir/DependInfo.cmake"
  "/root/repo/build/src/ast/CMakeFiles/migrator_ast.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/migrator_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/migrator_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
