//===- tests/benchsuite_test.cpp - Benchmark corpus tests --------------------===//

#include "ast/Analysis.h"
#include "benchsuite/Benchmark.h"
#include "synth/Synthesizer.h"

#include "parse/Parser.h"

#include <gtest/gtest.h>

using namespace migrator;

namespace {

/// Expected Table 1 source-side statistics.
struct Stats {
  const char *Name;
  size_t Funcs;
  size_t SrcTables, SrcAttrs;
  size_t TgtTables, TgtAttrs; ///< 0 = unchecked (generated targets).
};

const Stats Expected[] = {
    {"Oracle-1", 4, 2, 8, 1, 6},
    {"Oracle-2", 19, 3, 17, 7, 25},
    {"Ambler-1", 10, 1, 6, 2, 8},
    {"Ambler-2", 10, 2, 7, 1, 6},
    {"Ambler-3", 7, 2, 5, 2, 5},
    {"Ambler-4", 5, 1, 2, 1, 2},
    {"Ambler-5", 8, 2, 5, 3, 7},
    {"Ambler-6", 10, 2, 9, 2, 8},
    {"Ambler-7", 8, 2, 7, 2, 8},
    {"Ambler-8", 14, 3, 10, 3, 13},
    {"cdx", 138, 16, 125, 17, 0},
    {"coachup", 45, 4, 51, 5, 0},
    {"2030Club", 125, 15, 155, 16, 0},
    {"rails-ecomm", 65, 8, 69, 9, 0},
    {"royk", 151, 19, 152, 19, 0},
    {"MathHotSpot", 54, 7, 38, 7, 0},
    {"gallery", 58, 7, 52, 8, 0},
    {"DeeJBase", 70, 10, 92, 11, 0},
    {"visible-closet", 263, 26, 248, 27, 0},
    {"probable-engine", 85, 12, 83, 11, 0},
};

class BenchmarkStats : public ::testing::TestWithParam<Stats> {};
class TextbookSynthesis : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST(BenchmarkRegistry, TwentyBenchmarksRegistered) {
  EXPECT_EQ(textbookBenchmarkNames().size(), 10u);
  EXPECT_EQ(realWorldBenchmarkNames().size(), 10u);
  EXPECT_EQ(allBenchmarkNames().size(), 20u);
}

TEST_P(BenchmarkStats, MatchesTable1SourceShape) {
  const Stats &S = GetParam();
  Benchmark B = loadBenchmark(S.Name);
  EXPECT_EQ(B.Name, S.Name);
  EXPECT_EQ(B.numFuncs(), S.Funcs);
  EXPECT_EQ(B.Source.getNumTables(), S.SrcTables);
  EXPECT_EQ(B.Source.getNumAttrs(), S.SrcAttrs);
  EXPECT_EQ(B.Target.getNumTables(), S.TgtTables);
  if (S.TgtAttrs != 0) {
    EXPECT_EQ(B.Target.getNumAttrs(), S.TgtAttrs);
  }
}

TEST_P(BenchmarkStats, ProgramIsWellFormedOverSourceSchema) {
  Benchmark B = loadBenchmark(GetParam().Name);
  std::optional<std::string> Diag = validateProgram(B.Prog, B.Source);
  EXPECT_FALSE(Diag.has_value()) << *Diag;
}

TEST_P(BenchmarkStats, LoadingIsDeterministic) {
  Benchmark A = loadBenchmark(GetParam().Name);
  Benchmark B = loadBenchmark(GetParam().Name);
  EXPECT_TRUE(A.Prog.equals(B.Prog));
  EXPECT_EQ(A.Source.str(), B.Source.str());
  EXPECT_EQ(A.Target.str(), B.Target.str());
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkStats,
                         ::testing::ValuesIn(Expected),
                         [](const ::testing::TestParamInfo<Stats> &Info) {
                           std::string N = Info.param.Name;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });

TEST_P(TextbookSynthesis, SynthesizesEquivalentProgram) {
  Benchmark B = loadBenchmark(GetParam());
  SynthOptions Opts;
  Opts.TimeBudgetSec = 120;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  ASSERT_TRUE(R.succeeded()) << "VCs=" << R.Stats.NumVcs
                             << " iters=" << R.Stats.Iters
                             << " timedOut=" << R.Stats.TimedOut;

  // Confirm with an independent deep tester.
  TesterOptions Deep;
  Deep.MaxSeqLen = 4;
  EquivalenceTester T(B.Source, B.Prog, B.Target, Deep);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

INSTANTIATE_TEST_SUITE_P(
    Textbook, TextbookSynthesis,
    ::testing::Values("Oracle-1", "Oracle-2", "Ambler-1", "Ambler-2",
                      "Ambler-3", "Ambler-4", "Ambler-5", "Ambler-6",
                      "Ambler-7", "Ambler-8"),
    [](const ::testing::TestParamInfo<const char *> &Info) {
      std::string N = Info.param;
      for (char &C : N)
        if (C == '-')
          C = '_';
      return N;
    });

TEST(RealWorldSynthesis, CoachupSynthesizes) {
  // The smallest real-world-scale benchmark runs as part of the test suite;
  // the full set runs in bench/bench_table1.
  Benchmark B = loadBenchmark("coachup");
  SynthOptions Opts;
  Opts.TimeBudgetSec = 300;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  ASSERT_TRUE(R.succeeded()) << "VCs=" << R.Stats.NumVcs
                             << " iters=" << R.Stats.Iters;
  EquivalenceTester T(B.Source, B.Prog, B.Target);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

TEST(BenchmarkRoundTrip, TextbookBenchmarksPrintAndReparse) {
  for (const std::string &Name : textbookBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);
    std::string Text = B.Source.str() + B.Target.str() + "program P on " +
                       B.Source.getName() + " {\n" + B.Prog.str() + "}\n";
    std::variant<ParseOutput, ParseError> R = parseUnit(Text);
    ASSERT_TRUE(std::holds_alternative<ParseOutput>(R))
        << Name << ": " << std::get<ParseError>(R).str();
    EXPECT_TRUE(std::get<ParseOutput>(R).findProgram("P")->Prog.equals(B.Prog))
        << Name;
  }
}
