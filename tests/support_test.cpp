//===- tests/support_test.cpp - Support library tests -----------------------===//

#include "support/Rng.h"
#include "support/StringExtras.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

using namespace migrator;

TEST(Levenshtein, IdenticalStringsHaveZeroDistance) {
  EXPECT_EQ(levenshtein("Instructor", "Instructor"), 0u);
  EXPECT_EQ(levenshtein("", ""), 0u);
}

TEST(Levenshtein, EmptyVersusNonEmptyIsLength) {
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("abcd", ""), 4u);
}

TEST(Levenshtein, SingleEdit) {
  EXPECT_EQ(levenshtein("IPic", "Pic"), 1u);  // Deletion.
  EXPECT_EQ(levenshtein("Pic", "Pik"), 1u);   // Substitution.
  EXPECT_EQ(levenshtein("Pic", "Pics"), 1u);  // Insertion.
}

TEST(Levenshtein, PaperExampleDistances) {
  EXPECT_EQ(levenshtein("TPic", "Pic"), 1u);
  EXPECT_EQ(levenshtein("IName", "TName"), 1u);
  EXPECT_EQ(levenshtein("InstId", "TaId"), 4u);
}

TEST(Levenshtein, SymmetricOnRandomPairs) {
  Rng R(42);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string A, B;
    for (int I = R.nextInt(0, 8); I > 0; --I)
      A.push_back(static_cast<char>('a' + R.nextInt(0, 3)));
    for (int I = R.nextInt(0, 8); I > 0; --I)
      B.push_back(static_cast<char>('a' + R.nextInt(0, 3)));
    EXPECT_EQ(levenshtein(A, B), levenshtein(B, A));
  }
}

TEST(Levenshtein, TriangleInequalityOnRandomTriples) {
  Rng R(7);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string S[3];
    for (auto &Str : S)
      for (int I = R.nextInt(0, 6); I > 0; --I)
        Str.push_back(static_cast<char>('a' + R.nextInt(0, 2)));
    unsigned AB = levenshtein(S[0], S[1]);
    unsigned BC = levenshtein(S[1], S[2]);
    unsigned AC = levenshtein(S[0], S[2]);
    EXPECT_LE(AC, AB + BC);
  }
}

TEST(StringExtras, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " join "), "a join b join c");
}

TEST(StringExtras, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringExtras, ToLowerAndStartsWith) {
  EXPECT_EQ(toLower("InstId"), "instid");
  EXPECT_TRUE(startsWith("Instructor", "Inst"));
  EXPECT_FALSE(startsWith("In", "Inst"));
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.next(7), 7u);
    int V = R.nextInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer T;
  double A = T.elapsedSeconds();
  double B = T.elapsedSeconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}
