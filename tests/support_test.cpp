//===- tests/support_test.cpp - Support library tests -----------------------===//

#include "support/Rng.h"
#include "support/StringExtras.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

using namespace migrator;

TEST(Levenshtein, IdenticalStringsHaveZeroDistance) {
  EXPECT_EQ(levenshtein("Instructor", "Instructor"), 0u);
  EXPECT_EQ(levenshtein("", ""), 0u);
}

TEST(Levenshtein, EmptyVersusNonEmptyIsLength) {
  EXPECT_EQ(levenshtein("", "abc"), 3u);
  EXPECT_EQ(levenshtein("abcd", ""), 4u);
}

TEST(Levenshtein, SingleEdit) {
  EXPECT_EQ(levenshtein("IPic", "Pic"), 1u);  // Deletion.
  EXPECT_EQ(levenshtein("Pic", "Pik"), 1u);   // Substitution.
  EXPECT_EQ(levenshtein("Pic", "Pics"), 1u);  // Insertion.
}

TEST(Levenshtein, PaperExampleDistances) {
  EXPECT_EQ(levenshtein("TPic", "Pic"), 1u);
  EXPECT_EQ(levenshtein("IName", "TName"), 1u);
  EXPECT_EQ(levenshtein("InstId", "TaId"), 4u);
}

TEST(Levenshtein, SymmetricOnRandomPairs) {
  Rng R(42);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string A, B;
    for (int I = R.nextInt(0, 8); I > 0; --I)
      A.push_back(static_cast<char>('a' + R.nextInt(0, 3)));
    for (int I = R.nextInt(0, 8); I > 0; --I)
      B.push_back(static_cast<char>('a' + R.nextInt(0, 3)));
    EXPECT_EQ(levenshtein(A, B), levenshtein(B, A));
  }
}

TEST(Levenshtein, TriangleInequalityOnRandomTriples) {
  Rng R(7);
  for (int Iter = 0; Iter < 200; ++Iter) {
    std::string S[3];
    for (auto &Str : S)
      for (int I = R.nextInt(0, 6); I > 0; --I)
        Str.push_back(static_cast<char>('a' + R.nextInt(0, 2)));
    unsigned AB = levenshtein(S[0], S[1]);
    unsigned BC = levenshtein(S[1], S[2]);
    unsigned AC = levenshtein(S[0], S[2]);
    EXPECT_LE(AC, AB + BC);
  }
}

TEST(StringExtras, JoinConcatenatesWithSeparator) {
  EXPECT_EQ(join({}, ", "), "");
  EXPECT_EQ(join({"a"}, ", "), "a");
  EXPECT_EQ(join({"a", "b", "c"}, " join "), "a join b join c");
}

TEST(StringExtras, SplitPreservesEmptyFields) {
  EXPECT_EQ(split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
}

TEST(StringExtras, ToLowerAndStartsWith) {
  EXPECT_EQ(toLower("InstId"), "instid");
  EXPECT_TRUE(startsWith("Instructor", "Inst"));
  EXPECT_FALSE(startsWith("In", "Inst"));
}

TEST(Rng, DeterministicForEqualSeeds) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next(), B.next());
}

TEST(Rng, BoundedValuesStayInRange) {
  Rng R(5);
  for (int I = 0; I < 1000; ++I) {
    EXPECT_LT(R.next(7), 7u);
    int V = R.nextInt(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
  }
}

TEST(TimerTest, ElapsedIsMonotone) {
  Timer T;
  double A = T.elapsedSeconds();
  double B = T.elapsedSeconds();
  EXPECT_GE(B, A);
  EXPECT_GE(A, 0.0);
}

//===----------------------------------------------------------------------===//
// ThreadPool
//===----------------------------------------------------------------------===//

TEST(ThreadPoolTest, RunsEveryTaskExactlyOnce) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.getWorkerCount(), 4u);
  std::atomic<int> Count{0};
  {
    TaskGroup Group(&Pool);
    for (int I = 0; I < 1000; ++I)
      Group.run([&Count]() { Count.fetch_add(1, std::memory_order_relaxed); });
    Group.wait();
  }
  EXPECT_EQ(Count.load(), 1000);
  EXPECT_GE(Pool.getNumTasks(), 1000u);
}

TEST(ThreadPoolTest, NullPoolRunsInline) {
  // The degenerate sequential mode: no pool, run() executes on the caller.
  std::thread::id Caller = std::this_thread::get_id();
  int Count = 0;
  TaskGroup Group(nullptr);
  for (int I = 0; I < 10; ++I)
    Group.run([&Count, Caller]() {
      EXPECT_EQ(std::this_thread::get_id(), Caller);
      ++Count;
    });
  Group.wait();
  EXPECT_EQ(Count, 10);
}

TEST(ThreadPoolTest, NestedGroupsDoNotDeadlock) {
  // Every worker fans out a nested group onto the same pool and waits on
  // it — the shape the batched solver produces under the portfolio. The
  // helping wait() must keep making progress even when all workers are
  // themselves waiting.
  ThreadPool Pool(2);
  std::atomic<int> Inner{0};
  {
    TaskGroup Outer(&Pool);
    for (int I = 0; I < 8; ++I)
      Outer.run([&Pool, &Inner]() {
        TaskGroup Group(&Pool);
        for (int J = 0; J < 16; ++J)
          Group.run(
              [&Inner]() { Inner.fetch_add(1, std::memory_order_relaxed); });
        Group.wait();
      });
    Outer.wait();
  }
  EXPECT_EQ(Inner.load(), 8 * 16);
}

TEST(ThreadPoolTest, WaitHelpsOnSaturatedPool) {
  // One worker, many tasks: the waiting main thread must execute queued
  // tasks itself rather than sleep until the lone worker drains them.
  ThreadPool Pool(1);
  std::atomic<int> Count{0};
  TaskGroup Group(&Pool);
  for (int I = 0; I < 200; ++I)
    Group.run([&Count]() { Count.fetch_add(1, std::memory_order_relaxed); });
  Group.wait();
  EXPECT_EQ(Count.load(), 200);
}

TEST(ThreadPoolTest, GroupsWaitOnlyOnTheirOwnTasks) {
  // A group's wait() must return once its own tasks are done, not when the
  // whole pool drains. The foreign task spins with a deadline rather than
  // an unconditional flag wait: the helping Quick.wait() may legitimately
  // execute it inline, and an unbounded spin would then deadlock.
  ThreadPool Pool(2);
  std::atomic<bool> Release{false};
  std::atomic<int> Fast{0};
  TaskGroup Slow(&Pool);
  Slow.run([&Release]() {
    Timer Deadline;
    while (!Release.load(std::memory_order_acquire) &&
           Deadline.elapsedSeconds() < 2.0)
      std::this_thread::yield();
  });
  {
    TaskGroup Quick(&Pool);
    for (int I = 0; I < 4; ++I)
      Quick.run([&Fast]() { Fast.fetch_add(1, std::memory_order_relaxed); });
    Quick.wait();
    EXPECT_EQ(Fast.load(), 4);
  }
  Release.store(true, std::memory_order_release);
  Slow.wait();
}
