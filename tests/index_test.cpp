//===- tests/index_test.cpp - Indexed join engine tests ---------------------===//
//
// Guards the correctness contracts of the indexed, plan-compiled evaluation
// engine (docs/PERFORMANCE.md, "Join engine"): Value hashing agrees with
// equality, table hash indexes are lazy and incrementally maintained, plans
// are cached per chain, and — the load-bearing property — the indexed engine
// is byte-identical to the naive nested-loop oracle (MIGRATOR_NO_INDEX), on
// direct evaluation, on randomized program workloads, and through the full
// synthesis pipeline.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Generator.h"
#include "eval/Evaluator.h"
#include "eval/Plan.h"
#include "obs/Metrics.h"
#include "relational/Database.h"
#include "relational/Table.h"
#include "relational/Value.h"
#include "support/Rng.h"
#include "synth/RandomWorkload.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

using namespace migrator;
using namespace migrator::test;

namespace {

/// Restores the global index-engine switch (and metrics enablement) on scope
/// exit, so a failing assertion cannot leak naive mode into other tests.
struct EngineGuard {
  ~EngineGuard() {
    setEvalIndexEnabled(true);
    obs::setMetricsEnabled(false);
  }
};

TableSchema pairSchema(const char *Name, const char *A, const char *B) {
  return TableSchema(Name, {{A, ValueType::Int}, {B, ValueType::Int}});
}

/// Exact comparison: optional-ness, column labels, row order, values.
void expectIdentical(const std::optional<ResultTable> &A,
                     const std::optional<ResultTable> &B,
                     const std::string &What) {
  ASSERT_EQ(A.has_value(), B.has_value()) << What;
  if (!A)
    return;
  EXPECT_EQ(A->Columns, B->Columns) << What;
  ASSERT_EQ(A->Rows.size(), B->Rows.size()) << What;
  for (size_t R = 0; R < A->Rows.size(); ++R)
    EXPECT_TRUE(A->Rows[R] == B->Rows[R]) << What << " row " << R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Value hashing
//===----------------------------------------------------------------------===//

TEST(ValueHash, AgreesWithEquality) {
  std::vector<Value> Vs = {Value::makeInt(0),      Value::makeInt(7),
                           Value::makeString("A"), Value::makeString("B"),
                           Value::makeBinary("A"), Value::makeBool(true),
                           Value::makeBool(false), Value::makeUid(7)};
  for (const Value &A : Vs)
    for (const Value &B : Vs)
      if (A == B)
        EXPECT_EQ(A.hash(), B.hash());
  EXPECT_EQ(Value::makeInt(7).hash(), Value::makeInt(7).hash());
  EXPECT_EQ(Value::makeString("x").hash(), Value::makeString("x").hash());
}

TEST(ValueHash, CrossKindPayloadsDoNotCollide) {
  // Not a guarantee of the hash in general, but the kind-salted mixing must
  // at minimum separate the payload aliases the evaluator actually meets:
  // int 7 vs uid#7 vs bool-as-0/1, and string vs binary of the same bytes.
  EXPECT_NE(Value::makeInt(7).hash(), Value::makeUid(7).hash());
  EXPECT_NE(Value::makeInt(1).hash(), Value::makeBool(true).hash());
  EXPECT_NE(Value::makeInt(0).hash(), Value::makeBool(false).hash());
  EXPECT_NE(Value::makeString("b0").hash(), Value::makeBinary("b0").hash());
}

TEST(ValueHash, UsableAsUnorderedKey) {
  std::unordered_set<Value> S;
  for (int I = 0; I < 100; ++I)
    S.insert(Value::makeInt(I % 10));
  S.insert(Value::makeString("A"));
  S.insert(Value::makeUid(3));
  EXPECT_EQ(S.size(), 12u);
  EXPECT_TRUE(S.count(Value::makeInt(9)));
  EXPECT_FALSE(S.count(Value::makeInt(10)));
  EXPECT_TRUE(S.count(Value::makeUid(3)));
  EXPECT_FALSE(S.count(Value::makeUid(4)));
}

//===----------------------------------------------------------------------===//
// Table hash indexes
//===----------------------------------------------------------------------===//

namespace {

/// Reference implementation: ascending indices of rows with R[Col] == V.
std::vector<size_t> scanColumn(const Table &T, unsigned Col, const Value &V) {
  std::vector<size_t> Out;
  for (size_t R = 0; R < T.size(); ++R)
    if (T.getRow(R)[Col] == V)
      Out.push_back(R);
  return Out;
}

/// Probe must agree with a linear scan (null probe == empty scan).
void expectProbeMatchesScan(const Table &T, unsigned Col, const Value &V) {
  const std::vector<size_t> *B = T.probeIndex(Col, V);
  std::vector<size_t> Ref = scanColumn(T, Col, V);
  if (!B) {
    EXPECT_TRUE(Ref.empty());
    return;
  }
  EXPECT_EQ(*B, Ref);
}

} // namespace

TEST(TableIndex, BuildsLazilyOnFirstProbe) {
  Table T(pairSchema("T", "a", "b"));
  T.insertRow({Value::makeInt(1), Value::makeInt(10)});
  T.insertRow({Value::makeInt(2), Value::makeInt(20)});
  T.insertRow({Value::makeInt(1), Value::makeInt(30)});

  EXPECT_FALSE(T.hasIndex(0));
  EXPECT_FALSE(T.hasIndex(1));

  const std::vector<size_t> *B = T.probeIndex(0, Value::makeInt(1));
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(*B, (std::vector<size_t>{0, 2}));
  EXPECT_TRUE(T.hasIndex(0));
  EXPECT_FALSE(T.hasIndex(1)); // Only the probed column got an index.

  EXPECT_EQ(T.probeIndex(0, Value::makeInt(99)), nullptr);
}

TEST(TableIndex, MaintainedAcrossMutations) {
  Table T(pairSchema("T", "a", "b"));
  for (int I = 0; I < 8; ++I)
    T.insertRow({Value::makeInt(I % 3), Value::makeInt(I)});
  T.probeIndex(0, Value::makeInt(0)); // Build the index, then mutate.
  ASSERT_TRUE(T.hasIndex(0));

  // Insert: new row must appear in subsequent probes.
  T.insertRow({Value::makeInt(0), Value::makeInt(100)});
  EXPECT_TRUE(T.hasIndex(0));
  for (int K = 0; K < 4; ++K)
    expectProbeMatchesScan(T, 0, Value::makeInt(K));

  // Erase (with a duplicate index): survivors must be remapped, erased rows
  // dropped, and bucket order kept ascending.
  T.eraseRows({1, 4, 1});
  for (int K = 0; K < 4; ++K)
    expectProbeMatchesScan(T, 0, Value::makeInt(K));

  // Update: the row must move between buckets.
  T.setValue(0, 0, Value::makeInt(2));
  for (int K = 0; K < 4; ++K)
    expectProbeMatchesScan(T, 0, Value::makeInt(K));

  // clear() drops rows and indexes.
  T.clear();
  EXPECT_FALSE(T.hasIndex(0));
  EXPECT_EQ(T.probeIndex(0, Value::makeInt(0)), nullptr);
}

TEST(TableIndex, CopyKeepsBuiltIndexesWarm) {
  Table T(pairSchema("T", "a", "b"));
  T.insertRow({Value::makeInt(5), Value::makeInt(1)});
  T.insertRow({Value::makeInt(5), Value::makeInt(2)});
  T.probeIndex(0, Value::makeInt(5));
  ASSERT_TRUE(T.hasIndex(0));

  Table C = T; // Snapshot copy, as the tester takes per prefix.
  EXPECT_TRUE(C.hasIndex(0));
  expectProbeMatchesScan(C, 0, Value::makeInt(5));

  // The copy's index is independent of the original's.
  C.insertRow({Value::makeInt(5), Value::makeInt(3)});
  expectProbeMatchesScan(C, 0, Value::makeInt(5));
  expectProbeMatchesScan(T, 0, Value::makeInt(5));
  EXPECT_EQ(T.size(), 2u);
}

//===----------------------------------------------------------------------===//
// Plan cache
//===----------------------------------------------------------------------===//

TEST(PlanCache, SecondEvaluationHitsCache) {
  EngineGuard Guard;
  // Plans are only compiled by the indexed engine; pin it on so the
  // assertions hold even under MIGRATOR_NO_INDEX=1 (the oracle ctest run).
  setEvalIndexEnabled(true);
  obs::setMetricsEnabled(true);

  ParseOutput PO = parseOrDie(overviewSource());
  const Schema &S = *PO.findSchema("CourseDB");
  const Program &P = PO.findProgram("CourseApp")->Prog;

  Evaluator Eval(S);
  Database DB(S);
  UidGen Uids;
  const Function &Add = P.getFunction("addInstructor");
  const Function &Get = P.getFunction("getInstructorInfo");
  ASSERT_TRUE(Eval.callUpdate(
      Add, {Value::makeInt(1), Value::makeString("A"), Value::makeBinary("b0")},
      DB, Uids));

  obs::MetricsSnapshot Before = obs::registry().snapshot();
  ASSERT_TRUE(Eval.callQuery(Get, {Value::makeInt(1)}, DB).has_value());
  ASSERT_TRUE(Eval.callQuery(Get, {Value::makeInt(1)}, DB).has_value());
  obs::MetricsSnapshot Delta = obs::registry().snapshot() - Before;

  // The first call may compile the chain's plan; the second must be served
  // from the cache.
  EXPECT_GE(Delta.Counters["plan.cache_hits"], 1u);
  EXPECT_LE(Delta.Counters["eval.plan_compiles"], 1u);
}

//===----------------------------------------------------------------------===//
// Indexed engine vs naive oracle: direct evaluation
//===----------------------------------------------------------------------===//

TEST(IndexDifferential, OverviewQueriesMatchNaive) {
  EngineGuard Guard;
  ParseOutput PO = parseOrDie(overviewSource());
  const Schema &S = *PO.findSchema("CourseDB");
  const Program &P = PO.findProgram("CourseApp")->Prog;

  // A few updates, then every query under both engines, on fresh databases
  // so each engine sees identical UID numbering.
  auto RunAll = [&](bool Indexed) {
    setEvalIndexEnabled(Indexed);
    Evaluator Eval(S);
    Database DB(S);
    UidGen Uids;
    auto Call = [&](const char *F, std::vector<Value> Args) {
      EXPECT_TRUE(Eval.callUpdate(P.getFunction(F), Args, DB, Uids)) << F;
    };
    Call("addInstructor", {Value::makeInt(1), Value::makeString("A"),
                           Value::makeBinary("b0")});
    Call("addInstructor", {Value::makeInt(2), Value::makeString("B"),
                           Value::makeBinary("b1")});
    Call("addTA", {Value::makeInt(1), Value::makeString("T"),
                   Value::makeBinary("b0")});
    Call("deleteInstructor", {Value::makeInt(2)});
    std::vector<std::optional<ResultTable>> Rs;
    for (int Id : {0, 1, 2}) {
      Rs.push_back(Eval.callQuery(P.getFunction("getInstructorInfo"),
                                  {Value::makeInt(Id)}, DB));
      Rs.push_back(
          Eval.callQuery(P.getFunction("getTAInfo"), {Value::makeInt(Id)}, DB));
    }
    return Rs;
  };

  std::vector<std::optional<ResultTable>> Indexed = RunAll(true);
  std::vector<std::optional<ResultTable>> Naive = RunAll(false);
  ASSERT_EQ(Indexed.size(), Naive.size());
  for (size_t I = 0; I < Indexed.size(); ++I)
    expectIdentical(Indexed[I], Naive[I], "query " + std::to_string(I));
}

//===----------------------------------------------------------------------===//
// Indexed engine vs naive oracle: randomized program workloads
//===----------------------------------------------------------------------===//

TEST(IndexDifferential, RandomWorkloadsMatchNaive) {
  EngineGuard Guard;

  // Generated benchmarks exercise joins, provenance deletes, updates, and
  // IN-subquery shapes the hand-written example does not.
  std::vector<GenSpec> Specs(2);
  Specs[0].Name = "idx-diff-0";
  Specs[0].NumTables = 4;
  Specs[0].NumAttrs = 16;
  Specs[0].NumFuncs = 10;
  Specs[0].Splits = 1;
  Specs[1].Name = "idx-diff-1";
  Specs[1].NumTables = 5;
  Specs[1].NumAttrs = 18;
  Specs[1].NumFuncs = 12;
  Specs[1].SatellitePairs = 2;
  Specs[1].SharedSplits = 1;

  Rng R(0xC0FFEE);
  RandomWorkloadOptions WOpts;
  WOpts.MaxUpdates = 6;
  for (const GenSpec &Spec : Specs) {
    Benchmark B = generateBenchmark(Spec);
    for (int Trial = 0; Trial < 25; ++Trial) {
      InvocationSeq Seq = randomSequence(B.Prog, R, WOpts);
      setEvalIndexEnabled(true);
      std::optional<ResultTable> WithIdx = runSequence(B.Prog, B.Source, Seq);
      setEvalIndexEnabled(false);
      std::optional<ResultTable> Oracle = runSequence(B.Prog, B.Source, Seq);
      expectIdentical(WithIdx, Oracle,
                      Spec.Name + " trial " + std::to_string(Trial) + ": " +
                          sequenceStr(Seq));
    }
  }
}

//===----------------------------------------------------------------------===//
// Indexed engine vs naive oracle: full synthesis pipeline
//===----------------------------------------------------------------------===//

TEST(IndexDifferential, SynthesisIsIdenticalWithAndWithoutIndexes) {
  EngineGuard Guard;
  Benchmark B = loadBenchmark("Ambler-3");

  std::string Reference;
  for (bool Indexed : {true, false}) {
    setEvalIndexEnabled(Indexed);
    for (unsigned Jobs : {1u, 2u, 8u}) {
      SynthOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Solver.Batch = 4;
      Opts.Deterministic = true;
      SynthResult Res = synthesize(B.Source, B.Prog, B.Target, Opts);
      ASSERT_TRUE(Res.succeeded())
          << "indexed=" << Indexed << " jobs=" << Jobs;
      std::string Text = Res.Prog->str();
      if (Reference.empty())
        Reference = Text;
      else
        EXPECT_EQ(Text, Reference)
            << "diverged at indexed=" << Indexed << " jobs=" << Jobs;
    }
  }
}
