//===- tests/relational_test.cpp - Relational substrate tests ---------------===//

#include "relational/Database.h"
#include "relational/ResultTable.h"
#include "relational/Schema.h"
#include "relational/Table.h"
#include "relational/Value.h"

#include <gtest/gtest.h>

using namespace migrator;

namespace {

TableSchema carSchema() {
  return TableSchema("Car", {{"cid", ValueType::Int},
                             {"model", ValueType::String},
                             {"year", ValueType::Int}});
}

} // namespace

//===----------------------------------------------------------------------===//
// Value
//===----------------------------------------------------------------------===//

TEST(Value, KindsAndAccessors) {
  EXPECT_EQ(Value::makeInt(42).getInt(), 42);
  EXPECT_EQ(Value::makeString("x").getString(), "x");
  EXPECT_EQ(Value::makeBinary("img").getBinary(), "img");
  EXPECT_TRUE(Value::makeBool(true).getBool());
  EXPECT_EQ(Value::makeUid(7).getUid(), 7u);
}

TEST(Value, EqualityIsKindAndPayload) {
  EXPECT_EQ(Value::makeInt(1), Value::makeInt(1));
  EXPECT_NE(Value::makeInt(1), Value::makeInt(2));
  EXPECT_NE(Value::makeInt(1), Value::makeString("1"));
  EXPECT_EQ(Value::makeUid(3), Value::makeUid(3));
  EXPECT_NE(Value::makeUid(3), Value::makeUid(4));
  EXPECT_NE(Value::makeUid(3), Value::makeInt(3));
}

TEST(Value, UidInhabitsEveryStaticType) {
  Value U = Value::makeUid(1);
  EXPECT_TRUE(U.hasType(ValueType::Int));
  EXPECT_TRUE(U.hasType(ValueType::String));
  EXPECT_TRUE(U.hasType(ValueType::Binary));
  EXPECT_TRUE(U.hasType(ValueType::Bool));
  EXPECT_FALSE(Value::makeInt(1).hasType(ValueType::String));
  EXPECT_TRUE(Value::makeBinary("b").hasType(ValueType::Binary));
}

TEST(Value, TotalOrderIsStrict) {
  std::vector<Value> Vs = {Value::makeInt(1),      Value::makeInt(2),
                           Value::makeString("a"), Value::makeBinary("a"),
                           Value::makeBool(false), Value::makeUid(1)};
  for (const Value &A : Vs)
    for (const Value &B : Vs) {
      EXPECT_EQ(A == B, !(A < B) && !(B < A));
      EXPECT_FALSE(A < B && B < A);
    }
}

TEST(Value, StrRendersSurfaceSyntax) {
  EXPECT_EQ(Value::makeInt(-3).str(), "-3");
  EXPECT_EQ(Value::makeString("hi").str(), "\"hi\"");
  EXPECT_EQ(Value::makeBinary("b0").str(), "b\"b0\"");
  EXPECT_EQ(Value::makeBool(false).str(), "false");
  EXPECT_EQ(Value::makeUid(9).str(), "uid#9");
}

TEST(Value, DefaultOfMatchesType) {
  for (ValueType Ty : {ValueType::Int, ValueType::String, ValueType::Binary,
                       ValueType::Bool})
    EXPECT_TRUE(Value::defaultOf(Ty).hasType(Ty));
}

//===----------------------------------------------------------------------===//
// Schema
//===----------------------------------------------------------------------===//

TEST(SchemaTest, TableAndAttrLookup) {
  Schema S("Test");
  S.addTable(carSchema());
  EXPECT_EQ(S.getNumTables(), 1u);
  EXPECT_NE(S.findTable("Car"), nullptr);
  EXPECT_EQ(S.findTable("Nope"), nullptr);
  EXPECT_TRUE(S.hasAttr({"Car", "model"}));
  EXPECT_FALSE(S.hasAttr({"Car", "nope"}));
  EXPECT_FALSE(S.hasAttr({"Nope", "model"}));
  EXPECT_EQ(S.attrType({"Car", "year"}), ValueType::Int);
}

TEST(SchemaTest, AllAttrsInDeclarationOrder) {
  Schema S;
  S.addTable(carSchema());
  S.addTable(TableSchema("Part", {{"name", ValueType::String},
                                  {"cid", ValueType::Int}}));
  std::vector<QualifiedAttr> All = S.allAttrs();
  ASSERT_EQ(All.size(), 5u);
  EXPECT_EQ(All[0].str(), "Car.cid");
  EXPECT_EQ(All[4].str(), "Part.cid");
  EXPECT_EQ(S.getNumAttrs(), 5u);
}

TEST(SchemaTest, TablesWithAttrFiltersByType) {
  Schema S;
  S.addTable(carSchema());
  S.addTable(TableSchema("Part", {{"cid", ValueType::Int}}));
  S.addTable(TableSchema("Odd", {{"cid", ValueType::String}}));
  std::vector<std::string> Ts = S.tablesWithAttr("cid", ValueType::Int);
  EXPECT_EQ(Ts, (std::vector<std::string>{"Car", "Part"}));
}

TEST(SchemaTest, StrRendersSurfaceSyntax) {
  Schema S("X");
  S.addTable(TableSchema("T", {{"a", ValueType::Int}}));
  EXPECT_EQ(S.str(), "schema X {\n  table T(a: int)\n}\n");
}

//===----------------------------------------------------------------------===//
// Table
//===----------------------------------------------------------------------===//

TEST(TableTest, InsertAndBagSemantics) {
  Table T(carSchema());
  Row R = {Value::makeInt(1), Value::makeString("M1"), Value::makeInt(2016)};
  T.insertRow(R);
  T.insertRow(R); // Duplicates allowed.
  EXPECT_EQ(T.size(), 2u);
  EXPECT_EQ(T.getRow(0), T.getRow(1));
}

TEST(TableTest, EraseRowsRemovesExactOccurrences) {
  Table T(carSchema());
  for (int I = 0; I < 5; ++I)
    T.insertRow({Value::makeInt(I), Value::makeString("M"),
                 Value::makeInt(2000 + I)});
  T.eraseRows({1, 3, 3}); // Duplicate indices tolerated.
  ASSERT_EQ(T.size(), 3u);
  EXPECT_EQ(T.getRow(0)[0].getInt(), 0);
  EXPECT_EQ(T.getRow(1)[0].getInt(), 2);
  EXPECT_EQ(T.getRow(2)[0].getInt(), 4);
}

TEST(TableTest, EraseNothingIsNoop) {
  Table T(carSchema());
  T.insertRow({Value::makeInt(1), Value::makeString("M"), Value::makeInt(1)});
  T.eraseRows({});
  EXPECT_EQ(T.size(), 1u);
}

TEST(TableTest, SetValueUpdatesInPlace) {
  Table T(carSchema());
  T.insertRow({Value::makeInt(1), Value::makeString("M"), Value::makeInt(1)});
  T.setValue(0, 1, Value::makeString("N"));
  EXPECT_EQ(T.getRow(0)[1].getString(), "N");
}

//===----------------------------------------------------------------------===//
// Database
//===----------------------------------------------------------------------===//

TEST(DatabaseTest, EmptyInstanceFromSchema) {
  Schema S;
  S.addTable(carSchema());
  S.addTable(TableSchema("Part", {{"cid", ValueType::Int}}));
  Database DB(S);
  EXPECT_EQ(DB.getTables().size(), 2u);
  EXPECT_EQ(DB.totalRows(), 0u);
  EXPECT_TRUE(DB.getTable("Car").empty());
  EXPECT_EQ(DB.findTable("Nope"), nullptr);
}

TEST(DatabaseTest, CopyIsDeepSnapshot) {
  Schema S;
  S.addTable(carSchema());
  Database DB(S);
  DB.getTable("Car").insertRow(
      {Value::makeInt(1), Value::makeString("M"), Value::makeInt(1)});
  Database Snap = DB;
  DB.getTable("Car").insertRow(
      {Value::makeInt(2), Value::makeString("N"), Value::makeInt(2)});
  EXPECT_EQ(Snap.getTable("Car").size(), 1u);
  EXPECT_EQ(DB.getTable("Car").size(), 2u);
  EXPECT_FALSE(Snap == DB);
}

TEST(DatabaseTest, ClearEmptiesAllTables) {
  Schema S;
  S.addTable(carSchema());
  Database DB(S);
  DB.getTable("Car").insertRow(
      {Value::makeInt(1), Value::makeString("M"), Value::makeInt(1)});
  DB.clear();
  EXPECT_EQ(DB.totalRows(), 0u);
}

//===----------------------------------------------------------------------===//
// ResultTable comparison
//===----------------------------------------------------------------------===//

namespace {

ResultTable makeResult(std::vector<Row> Rows, size_t Cols) {
  ResultTable R;
  for (size_t I = 0; I < Cols; ++I)
    R.Columns.push_back("c" + std::to_string(I));
  R.Rows = std::move(Rows);
  return R;
}

} // namespace

TEST(ResultEquiv, ColumnNamesIgnoredArityChecked) {
  ResultTable A = makeResult({{Value::makeInt(1)}}, 1);
  ResultTable B = makeResult({{Value::makeInt(1)}}, 1);
  B.Columns[0] = "other";
  EXPECT_TRUE(resultsEquivalent(A, B));
  ResultTable C = makeResult({{Value::makeInt(1), Value::makeInt(1)}}, 2);
  EXPECT_FALSE(resultsEquivalent(A, C));
}

TEST(ResultEquiv, MultisetOrderInsensitive) {
  ResultTable A = makeResult({{Value::makeInt(1)}, {Value::makeInt(2)}}, 1);
  ResultTable B = makeResult({{Value::makeInt(2)}, {Value::makeInt(1)}}, 1);
  EXPECT_TRUE(resultsEquivalent(A, B));
}

TEST(ResultEquiv, MultiplicityMatters) {
  ResultTable A = makeResult({{Value::makeInt(1)}, {Value::makeInt(1)}}, 1);
  ResultTable B = makeResult({{Value::makeInt(1)}}, 1);
  EXPECT_FALSE(resultsEquivalent(A, B));
}

TEST(ResultEquiv, UidsCompareUpToBijection) {
  // (uid1, uid1) vs (uid9, uid9): consistent bijection 1 -> 9.
  ResultTable A =
      makeResult({{Value::makeUid(1), Value::makeUid(1)}}, 2);
  ResultTable B =
      makeResult({{Value::makeUid(9), Value::makeUid(9)}}, 2);
  EXPECT_TRUE(resultsEquivalent(A, B));

  // (uid1, uid1) vs (uid9, uid8): not a function.
  ResultTable C =
      makeResult({{Value::makeUid(9), Value::makeUid(8)}}, 2);
  EXPECT_FALSE(resultsEquivalent(A, C));

  // (uid1, uid2) vs (uid9, uid9): not injective.
  ResultTable D =
      makeResult({{Value::makeUid(1), Value::makeUid(2)}}, 2);
  EXPECT_FALSE(resultsEquivalent(D, B));
}

TEST(ResultEquiv, UidNeverMatchesConcreteValue) {
  ResultTable A = makeResult({{Value::makeUid(1)}}, 1);
  ResultTable B = makeResult({{Value::makeInt(1)}}, 1);
  EXPECT_FALSE(resultsEquivalent(A, B));
}

TEST(ResultEquiv, BijectionAcrossRows) {
  ResultTable A = makeResult(
      {{Value::makeUid(1)}, {Value::makeUid(1)}, {Value::makeUid(2)}}, 1);
  ResultTable B = makeResult(
      {{Value::makeUid(5)}, {Value::makeUid(5)}, {Value::makeUid(6)}}, 1);
  EXPECT_TRUE(resultsEquivalent(A, B));
  ResultTable C = makeResult(
      {{Value::makeUid(5)}, {Value::makeUid(6)}, {Value::makeUid(6)}}, 1);
  EXPECT_FALSE(resultsEquivalent(A, C));
}
