//===- tests/synth_test.cpp - Tester, solver, and synthesizer tests ----------===//

#include "ast/Analysis.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

struct OverviewPipeline {
  ParseOutput Out;
  ParseOutput Exp;
  const Schema *Src = nullptr;
  const Schema *Tgt = nullptr;
  const Program *Prog = nullptr;
  const Program *Expected = nullptr;

  OverviewPipeline()
      : Out(parseOrDie(overviewSource())),
        Exp(parseOrDie(overviewExpected())), Src(Out.findSchema("CourseDB")),
        Tgt(Out.findSchema("CourseDBNew")),
        Prog(&Out.findProgram("CourseApp")->Prog),
        Expected(&Exp.findProgram("CourseAppNew")->Prog) {}
};

} // namespace

//===----------------------------------------------------------------------===//
// EquivalenceTester
//===----------------------------------------------------------------------===//

TEST(TesterTest, Fig4ProgramPassesBoundedTesting) {
  OverviewPipeline F;
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  TestOutcome O = T.test(*F.Expected);
  EXPECT_TRUE(O.isEquivalent());
  EXPECT_GT(T.getNumSequencesRun(), 0u);
}

TEST(TesterTest, WrongChainYieldsMinimumFailingInput) {
  OverviewPipeline F;
  // Break getTAInfo: read TA info through the Instructor chain.
  ParseOutput Bad = parseOrDie(R"(
program Broken on CourseDBNew {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Picture join Instructor values (InstId: id, IName: name, Pic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
}
)");
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  TestOutcome O = T.test(Bad.findProgram("Broken")->Prog);
  ASSERT_EQ(O.TheKind, TestOutcome::Kind::Failing);
  // The paper's MFI shape: one update then the query (length 2). Several
  // minimum failing inputs exist (adding either staff member exposes the
  // bug); any of them is acceptable.
  ASSERT_EQ(O.Mfi.size(), 2u);
  EXPECT_EQ(O.Mfi.back().Func, "getTAInfo");
  EXPECT_TRUE(O.Mfi.front().Func == "addTA" ||
              O.Mfi.front().Func == "addInstructor")
      << O.Mfi.front().Func;
}

TEST(TesterTest, IllFormedCandidateBlamesTheFunction) {
  OverviewPipeline F;
  ParseOutput Bad = parseOrDie(R"(
program Ill on Whatever {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Nonexistent values (InstId: id);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, Pic from Picture join TA where TaId = id;
  }
}
)");
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  TestOutcome O = T.test(Bad.findProgram("Ill")->Prog);
  ASSERT_EQ(O.TheKind, TestOutcome::Kind::IllFormed);
  EXPECT_EQ(O.IllFormedFunc, "addInstructor");
}

TEST(TesterTest, DeleteBugNeedsLengthThreeSequence) {
  OverviewPipeline F;
  // deleteTA joins through Instructor, so with no instructor present it
  // deletes nothing: only add + delete + query exposes the bug.
  ParseOutput Bad = parseOrDie(R"(
program BadDel on CourseDBNew {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Picture join Instructor values (InstId: id, IName: name, Pic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join Instructor join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, Pic from Picture join TA where TaId = id;
  }
}
)");
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  TestOutcome O = T.test(Bad.findProgram("BadDel")->Prog);
  ASSERT_EQ(O.TheKind, TestOutcome::Kind::Failing);
  EXPECT_EQ(O.Mfi.size(), 3u);
  EXPECT_EQ(O.Mfi[1].Func, "deleteTA");
}

TEST(TesterTest, RelevanceSlicingAgreesWithFullSearch) {
  OverviewPipeline F;
  TesterOptions Sliced;
  TesterOptions Full;
  Full.UseRelevanceSlicing = false;
  EquivalenceTester TS(*F.Src, *F.Prog, *F.Tgt, Sliced);
  EquivalenceTester TF(*F.Src, *F.Prog, *F.Tgt, Full);
  TestOutcome A = TS.test(*F.Expected);
  TestOutcome B = TF.test(*F.Expected);
  EXPECT_TRUE(A.isEquivalent());
  EXPECT_TRUE(B.isEquivalent());
  // Slicing must run no more sequences than the full search.
  EXPECT_LE(TS.getNumSequencesRun(), TF.getNumSequencesRun());
}

//===----------------------------------------------------------------------===//
// SketchEncoder
//===----------------------------------------------------------------------===//

TEST(EncoderTest, EnumeratesExactlyTheCompatibleSpace) {
  Sketch Sk;
  Hole A;
  A.TheKind = Hole::Kind::Chain;
  A.Func = "f";
  A.Chains = {JoinChain::table("X"), JoinChain::table("Y")};
  unsigned HA = Sk.addHole(std::move(A));
  Hole B;
  B.TheKind = Hole::Kind::Attr;
  B.Func = "f";
  B.Attrs = {{"X", "a"}, {"Y", "a"}, {"Y", "b"}};
  unsigned HB = Sk.addHole(std::move(B));
  // Chain X is incompatible with the two Y attributes.
  Sk.addIncompatibility({HA, 0, HB, 1});
  Sk.addIncompatibility({HA, 0, HB, 2});

  SketchEncoder Enc(Sk);
  int Count = 0;
  while (std::optional<std::vector<unsigned>> Assign = Enc.nextAssignment()) {
    ++Count;
    ASSERT_LE(Count, 4);
    if ((*Assign)[0] == 0) {
      EXPECT_EQ((*Assign)[1], 0u);
    }
    Enc.blockAll(*Assign);
  }
  // 2 * 3 = 6 total minus 2 incompatible = 4.
  EXPECT_EQ(Count, 4);
}

TEST(EncoderTest, PartialBlockingPrunesAllExtensions) {
  Sketch Sk;
  for (int H = 0; H < 3; ++H) {
    Hole X;
    X.TheKind = Hole::Kind::Attr;
    X.Func = "f" + std::to_string(H);
    X.Attrs = {{"T", "a"}, {"T", "b"}};
    Sk.addHole(std::move(X));
  }
  SketchEncoder Enc(Sk);
  EXPECT_DOUBLE_EQ(Enc.blockedCount({0}), 4.0);

  std::optional<std::vector<unsigned>> First = Enc.nextAssignment();
  ASSERT_TRUE(First.has_value());
  // Block hole 0's value: removes half the space.
  Enc.block(*First, {0});
  int Remaining = 0;
  while (std::optional<std::vector<unsigned>> A = Enc.nextAssignment()) {
    EXPECT_NE((*A)[0], (*First)[0]);
    Enc.blockAll(*A);
    ++Remaining;
    ASSERT_LE(Remaining, 4);
  }
  EXPECT_EQ(Remaining, 4);
}

//===----------------------------------------------------------------------===//
// End-to-end synthesis (Sec. 2)
//===----------------------------------------------------------------------===//

TEST(SynthesizerTest, OverviewSynthesizesEquivalentProgram) {
  OverviewPipeline F;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt);
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.NumVcs, 1u); // The paper's first VC works.
  EXPECT_GE(R.Stats.Iters, 1u);
  EXPECT_DOUBLE_EQ(R.Stats.SketchSpace, 164025.0);

  // The synthesized program must be equivalent under deep bounded testing.
  TesterOptions Deep;
  Deep.MaxSeqLen = 4;
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt, Deep);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

TEST(SynthesizerTest, EnumerativeBaselineAlsoSolvesOverview) {
  OverviewPipeline F;
  SynthOptions Opts;
  Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
  Opts.Solver.MaxIters = 200000;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
  ASSERT_TRUE(R.succeeded());
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

TEST(SynthesizerTest, CegisBaselineAlsoSolvesOverview) {
  OverviewPipeline F;
  SynthOptions Opts;
  Opts.Solver.TheMode = SolverOptions::Mode::Cegis;
  Opts.Solver.MaxIters = 200000;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
  ASSERT_TRUE(R.succeeded());
  EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

TEST(SynthesizerTest, MfiNeverExploresMoreThanEnumerative) {
  OverviewPipeline F;
  SynthOptions Mfi;
  SynthResult A = synthesize(*F.Src, *F.Prog, *F.Tgt, Mfi);
  SynthOptions Enum;
  Enum.Solver.TheMode = SolverOptions::Mode::Enumerative;
  SynthResult B = synthesize(*F.Src, *F.Prog, *F.Tgt, Enum);
  ASSERT_TRUE(A.succeeded());
  ASSERT_TRUE(B.succeeded());
  EXPECT_LE(A.Stats.Iters, B.Stats.Iters);
}

TEST(SynthesizerTest, SimpleAttributeRename) {
  ParseOutput Out = parseOrDie(R"(
schema Old { table Person(pid: int, fullname: string) }
schema New { table Person(pid: int, name: string) }
program App on Old {
  update addPerson(id: int, n: string) {
    insert into Person values (pid: id, fullname: n);
  }
  query getPerson(id: int) {
    select fullname from Person where pid = id;
  }
}
)");
  SynthResult R = synthesize(*Out.findSchema("Old"),
                             Out.findProgram("App")->Prog,
                             *Out.findSchema("New"));
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Stats.NumVcs, 1u);
  // The rename is forced: the result must read Person.name.
  std::string Str = R.Prog->str();
  EXPECT_NE(Str.find("name"), std::string::npos);
}

TEST(SynthesizerTest, ReportsFailureWhenNoEquivalentExists) {
  // The queried attribute has no type-compatible target: synthesis must
  // return ⊥ rather than a bogus program.
  ParseOutput Out = parseOrDie(R"(
schema Old { table T(a: int, note: string) }
schema New { table T(a: int) }
program App on Old {
  update add(x: int, s: string) { insert into T values (a: x, note: s); }
  query get(x: int) { select note from T where a = x; }
}
)");
  SynthResult R = synthesize(*Out.findSchema("Old"),
                             Out.findProgram("App")->Prog,
                             *Out.findSchema("New"));
  EXPECT_FALSE(R.succeeded());
  EXPECT_FALSE(R.Stats.TimedOut);
}

TEST(SynthesizerTest, SynthTimeExcludesVerification) {
  OverviewPipeline F;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt);
  ASSERT_TRUE(R.succeeded());
  EXPECT_GE(R.Stats.TotalTimeSec, R.Stats.SynthTimeSec);
  EXPECT_NEAR(R.Stats.SynthTimeSec + R.Stats.VerifyTimeSec,
              R.Stats.TotalTimeSec, 1e-9);
}
