//===- tests/sketch_test.cpp - Join graph and sketch generation tests --------===//

#include "ast/Analysis.h"
#include "sketch/JoinGraph.h"
#include "sketch/SketchGen.h"
#include "synth/Encoder.h"
#include "vc/VcEnumerator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace migrator;
using namespace migrator::test;

namespace {

struct OverviewSketch {
  ParseOutput Out;
  const Schema *Src = nullptr;
  const Schema *Tgt = nullptr;
  const Program *Prog = nullptr;
  ValueCorrespondence FirstVc;

  OverviewSketch()
      : Out(parseOrDie(overviewSource())), Src(Out.findSchema("CourseDB")),
        Tgt(Out.findSchema("CourseDBNew")),
        Prog(&Out.findProgram("CourseApp")->Prog) {
    VcEnumerator E(*Src, *Tgt, collectQueriedAttrs(*Prog, *Src));
    std::optional<ValueCorrespondence> VC = E.next();
    EXPECT_TRUE(VC.has_value());
    if (VC)
      FirstVc = *VC;
  }
};

bool containsCover(const std::vector<std::vector<std::string>> &Covers,
                   std::vector<std::string> Want) {
  std::sort(Want.begin(), Want.end());
  for (std::vector<std::string> C : Covers) {
    std::sort(C.begin(), C.end());
    if (C == Want)
      return true;
  }
  return false;
}

} // namespace

//===----------------------------------------------------------------------===//
// JoinGraph
//===----------------------------------------------------------------------===//

TEST(JoinGraphTest, EdgesOfOverviewTarget) {
  OverviewSketch F;
  JoinGraph G(*F.Tgt);
  EXPECT_TRUE(G.joinable("Class", "Instructor"));  // InstId.
  EXPECT_TRUE(G.joinable("Class", "TA"));          // TaId.
  EXPECT_TRUE(G.joinable("Instructor", "TA"));     // PicId.
  EXPECT_TRUE(G.joinable("Instructor", "Picture")); // PicId.
  EXPECT_TRUE(G.joinable("TA", "Picture"));        // PicId.
  EXPECT_FALSE(G.joinable("Class", "Picture"));    // No shared attribute.
}

TEST(JoinGraphTest, SharedNameWithDifferentTypeIsNotAnEdge) {
  Schema S;
  S.addTable(TableSchema("A", {{"k", ValueType::Int}}));
  S.addTable(TableSchema("B", {{"k", ValueType::String}}));
  JoinGraph G(S);
  EXPECT_FALSE(G.joinable("A", "B"));
}

TEST(JoinGraphTest, SteinerCoversOfOverviewMatchFig3) {
  // Terminals {Picture, Instructor} with slack 2 must give exactly the three
  // chains of the Fig. 3 sketch.
  OverviewSketch F;
  JoinGraph G(*F.Tgt);
  std::vector<std::vector<std::string>> Covers =
      G.steinerCovers({"Picture", "Instructor"}, 2);
  ASSERT_EQ(Covers.size(), 3u);
  EXPECT_TRUE(containsCover(Covers, {"Picture", "Instructor"}));
  EXPECT_TRUE(containsCover(Covers, {"Picture", "TA", "Instructor"}));
  EXPECT_TRUE(containsCover(Covers, {"Picture", "TA", "Class", "Instructor"}));
  // {Picture, Class, Instructor} is NOT a Steiner cover: Class would be a
  // pendant non-terminal.
  EXPECT_FALSE(containsCover(Covers, {"Picture", "Class", "Instructor"}));
  // Ordered smallest-first.
  EXPECT_EQ(Covers[0].size(), 2u);
  EXPECT_EQ(Covers[2].size(), 4u);
}

TEST(JoinGraphTest, SingleTerminalIncludesItself) {
  OverviewSketch F;
  JoinGraph G(*F.Tgt);
  std::vector<std::vector<std::string>> Covers =
      G.steinerCovers({"Picture"}, 0);
  ASSERT_EQ(Covers.size(), 1u);
  EXPECT_EQ(Covers[0], (std::vector<std::string>{"Picture"}));
}

TEST(JoinGraphTest, DisconnectedTerminalsHaveNoCover) {
  Schema S;
  S.addTable(TableSchema("A", {{"x", ValueType::Int}}));
  S.addTable(TableSchema("B", {{"y", ValueType::Int}}));
  JoinGraph G(S);
  EXPECT_TRUE(G.steinerCovers({"A", "B"}, 2).empty());
}

TEST(JoinGraphTest, UnknownTerminalYieldsNoCover) {
  OverviewSketch F;
  JoinGraph G(*F.Tgt);
  EXPECT_TRUE(G.steinerCovers({"Nope"}, 1).empty());
}

//===----------------------------------------------------------------------===//
// Sketch generation (the Fig. 3 sketch)
//===----------------------------------------------------------------------===//

TEST(SketchGenTest, OverviewSketchSpaceIs164025) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  EXPECT_DOUBLE_EQ(Sk->spaceSize(), 164025.0);
}

TEST(SketchGenTest, OverviewChainHolesHaveThreeAlternatives) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  size_t ChainHoles = 0, TableListHoles = 0, AttrHoles = 0;
  for (const Hole &H : Sk->getHoles()) {
    switch (H.TheKind) {
    case Hole::Kind::Chain:
    case Hole::Kind::ChainSet: // Inserts carry chain-set holes.
      ++ChainHoles;
      EXPECT_EQ(H.size(), 3u);
      break;
    case Hole::Kind::TableList:
      ++TableListHoles;
      EXPECT_EQ(H.size(), 15u); // Non-empty subsets of 4 tables.
      break;
    case Hole::Kind::Attr:
      ++AttrHoles;
      EXPECT_EQ(H.size(), 1u); // The first VC maps each attr uniquely.
      break;
    }
  }
  EXPECT_EQ(ChainHoles, 6u);     // One per statement/query.
  EXPECT_EQ(TableListHoles, 2u); // The two deletes.
  // Attribute occurrences: 3 per insert, 1 per delete predicate, 3 per
  // query (2 projections + 1 predicate), for each of the two table pairs.
  EXPECT_EQ(AttrHoles, 14u);
}

TEST(SketchGenTest, HolesAreAttributedToTheirFunctions) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  size_t Sum = 0;
  for (const Function &Fn : F.Prog->getFunctions()) {
    std::vector<unsigned> Ids = Sk->holesOfFunction(Fn.getName());
    EXPECT_FALSE(Ids.empty());
    Sum += Ids.size();
  }
  EXPECT_EQ(Sum, Sk->getNumHoles());
}

TEST(SketchGenTest, IncompatibilitiesEnforceChainMembership) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  // The delete table-list holes must exclude lists not contained in the
  // 2-table chain alternative.
  EXPECT_FALSE(Sk->getIncompatibilities().empty());
  for (const Incompatibility &I : Sk->getIncompatibilities()) {
    const Hole &A = Sk->getHole(I.HoleA);
    const Hole &B = Sk->getHole(I.HoleB);
    EXPECT_TRUE(A.TheKind == Hole::Kind::Chain ||
                A.TheKind == Hole::Kind::ChainSet);
    EXPECT_TRUE(B.TheKind == Hole::Kind::TableList ||
                B.TheKind == Hole::Kind::Attr);
  }
}

TEST(SketchGenTest, InstantiationProducesWellFormedPrograms) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  // Any assignment respecting the incompatibility constraints instantiates
  // to a well-formed program over the target schema.
  SketchEncoder Enc(*Sk);
  for (int I = 0; I < 10; ++I) {
    std::optional<std::vector<unsigned>> Assign = Enc.nextAssignment();
    ASSERT_TRUE(Assign.has_value());
    Program P = Sk->instantiate(*Assign);
    EXPECT_EQ(P.getNumFunctions(), F.Prog->getNumFunctions());
    EXPECT_FALSE(validateProgram(P, *F.Tgt).has_value());
    Enc.blockAll(*Assign);
  }
}

TEST(SketchGenTest, FailsWhenVcCannotSupportAStatement) {
  // A VC that leaves a required attribute unmapped must be rejected.
  OverviewSketch F;
  ValueCorrespondence Partial;
  // Map only the instructor attributes; TA attrs unmapped.
  Partial.add({"Instructor", "InstId"}, {"Instructor", "InstId"});
  Partial.add({"Instructor", "IName"}, {"Instructor", "IName"});
  Partial.add({"Instructor", "IPic"}, {"Picture", "Pic"});
  EXPECT_FALSE(
      generateSketch(*F.Prog, *F.Src, *F.Tgt, Partial).has_value());
}

TEST(SketchGenTest, SketchPrintingMentionsEveryHole) {
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  std::string Str = Sk->str();
  for (unsigned I = 0; I < Sk->getNumHoles(); ++I)
    EXPECT_NE(Str.find("??" + std::to_string(I)), std::string::npos);
}

TEST(JoinGraphTest, ComponentsOfGroupsByReachability) {
  Schema S;
  S.addTable(TableSchema("A", {{"k", ValueType::Int}}));
  S.addTable(TableSchema("B", {{"k", ValueType::Int}}));
  S.addTable(TableSchema("C", {{"x", ValueType::Int}}));
  JoinGraph G(S);
  std::vector<std::vector<std::string>> Comps = G.componentsOf({"A", "B", "C"});
  ASSERT_EQ(Comps.size(), 2u);
  EXPECT_EQ(Comps[0], (std::vector<std::string>{"A", "B"}));
  EXPECT_EQ(Comps[1], (std::vector<std::string>{"C"}));
  // Unknown terminals are dropped; duplicates collapse.
  EXPECT_EQ(G.componentsOf({"A", "A", "Nope"}).size(), 1u);
}

TEST(SketchGenTest, DisconnectedInsertUsesMultiChainComposition) {
  // A table split into two *unlinked* tables: the insert must decompose
  // into the paper's Fig. 9/10 composition (one insert per component).
  ParseOutput Out = parseOrDie(R"(
schema Src { table Settings(theme: string, fontSize: int) }
schema Tgt {
  table ThemeCfg(theme: string)
  table FontCfg(fontSize: int)
}
program App on Src {
  update setup(t: string, f: int) {
    insert into Settings values (theme: t, fontSize: f);
  }
  query getTheme(t: string) { select theme from Settings where theme = t; }
  query getFont(f: int) { select fontSize from Settings where fontSize = f; }
}
)");
  const Schema &Src = *Out.findSchema("Src");
  const Schema &Tgt = *Out.findSchema("Tgt");
  const Program &Prog = Out.findProgram("App")->Prog;

  VcEnumerator E(Src, Tgt, collectQueriedAttrs(Prog, Src));
  std::optional<ValueCorrespondence> Phi = E.next();
  ASSERT_TRUE(Phi.has_value());
  std::optional<Sketch> Sk = generateSketch(Prog, Src, Tgt, *Phi);
  ASSERT_TRUE(Sk.has_value());
  bool SawMultiChain = false;
  for (const Hole &H : Sk->getHoles())
    if (H.TheKind == Hole::Kind::ChainSet)
      for (const std::vector<JoinChain> &Set : H.ChainSets)
        SawMultiChain |= Set.size() == 2;
  EXPECT_TRUE(SawMultiChain);
}

TEST(SketchGenTest, OverviewMfiBlockingClausePrunes18225Programs) {
  // Sec. 2: the MFI `addTA; getTAInfo` yields a blocking clause over the
  // holes of those two functions, eliminating 18,225 of the 164,025
  // completions (164,025 / (3 chains x 3 chains)).
  OverviewSketch F;
  std::optional<Sketch> Sk =
      generateSketch(*F.Prog, *F.Src, *F.Tgt, F.FirstVc);
  ASSERT_TRUE(Sk.has_value());
  SketchEncoder Enc(*Sk);
  std::vector<unsigned> HoleIds;
  for (unsigned H : Sk->holesOfFunction("addTA"))
    HoleIds.push_back(H);
  for (unsigned H : Sk->holesOfFunction("getTAInfo"))
    HoleIds.push_back(H);
  EXPECT_DOUBLE_EQ(Enc.blockedCount(HoleIds), 18225.0);
}
