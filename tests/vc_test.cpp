//===- tests/vc_test.cpp - Value correspondence tests -------------------------===//

#include "ast/Analysis.h"
#include "vc/VcEnumerator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

struct OverviewVc {
  ParseOutput Out;
  const Schema *Src = nullptr;
  const Schema *Tgt = nullptr;
  std::set<QualifiedAttr> Queried;

  OverviewVc()
      : Out(parseOrDie(overviewSource())), Src(Out.findSchema("CourseDB")),
        Tgt(Out.findSchema("CourseDBNew")) {
    Queried = collectQueriedAttrs(Out.findProgram("CourseApp")->Prog, *Src);
  }
};

} // namespace

TEST(ValueCorrespondenceTest, AddImageAndLookup) {
  ValueCorrespondence VC;
  VC.add({"T", "a"}, {"U", "x"});
  VC.add({"T", "a"}, {"U", "y"});
  VC.add({"T", "a"}, {"U", "x"}); // Duplicate ignored.
  EXPECT_EQ(VC.image({"T", "a"}).size(), 2u);
  EXPECT_TRUE(VC.maps({"T", "a"}, {"U", "y"}));
  EXPECT_FALSE(VC.maps({"T", "a"}, {"U", "z"}));
  EXPECT_TRUE(VC.image({"T", "b"}).empty());
  EXPECT_EQ(VC.getNumPairs(), 2u);
  EXPECT_EQ(VC.getNumMappedAttrs(), 1u);
}

TEST(PairWeightTest, AttrSimilarityDominatesTableSimilarity) {
  unsigned Alpha = 10;
  // Exact attribute + exact table.
  unsigned Exact = pairWeight({"Instructor", "InstId"},
                              {"Instructor", "InstId"}, Alpha);
  // Exact attribute, different table.
  unsigned CrossTable =
      pairWeight({"Instructor", "InstId"}, {"Class", "InstId"}, Alpha);
  EXPECT_GT(Exact, CrossTable);
  // Attribute names at Levenshtein distance >= Alpha contribute nothing,
  // regardless of table similarity.
  EXPECT_EQ(pairWeight({"Instructor", "x"}, {"Instructor", "longcolumnname"},
                       Alpha),
            0u);
  // The overview's key mapping has positive weight.
  EXPECT_GT(pairWeight({"Instructor", "IPic"}, {"Picture", "Pic"}, Alpha), 0u);
}

TEST(VcEnumeratorTest, FirstVcOfOverviewMatchesPaper) {
  OverviewVc F;
  VcEnumerator E(*F.Src, *F.Tgt, F.Queried);
  std::optional<ValueCorrespondence> VC = E.next();
  ASSERT_TRUE(VC.has_value());
  // The paper's first VC: IPic -> Picture.Pic, TPic -> Picture.Pic, and all
  // other attributes map to their identically-named counterparts.
  EXPECT_TRUE(VC->maps({"Instructor", "IPic"}, {"Picture", "Pic"}));
  EXPECT_TRUE(VC->maps({"TA", "TPic"}, {"Picture", "Pic"}));
  EXPECT_TRUE(VC->maps({"Instructor", "InstId"}, {"Instructor", "InstId"}));
  EXPECT_TRUE(VC->maps({"Instructor", "IName"}, {"Instructor", "IName"}));
  EXPECT_TRUE(VC->maps({"TA", "TaId"}, {"TA", "TaId"}));
  EXPECT_TRUE(VC->maps({"TA", "TName"}, {"TA", "TName"}));
  EXPECT_TRUE(VC->maps({"Class", "ClassId"}, {"Class", "ClassId"}));
  // No spurious duplication of the similar attributes.
  EXPECT_EQ(VC->image({"Instructor", "IPic"}).size(), 1u);
  EXPECT_EQ(VC->image({"Instructor", "InstId"}).size(), 1u);
}

TEST(VcEnumeratorTest, EnumerationIsLazyDistinctAndWeightDecreasing) {
  OverviewVc F;
  VcEnumerator E(*F.Src, *F.Tgt, F.Queried);
  std::set<ValueCorrespondence> Seen;
  uint64_t PrevWeight = ~0ull;
  for (int I = 0; I < 25; ++I) {
    std::optional<ValueCorrespondence> VC = E.next();
    ASSERT_TRUE(VC.has_value()) << "space exhausted too early";
    EXPECT_TRUE(Seen.insert(*VC).second) << "duplicate VC at step " << I;
    EXPECT_LE(E.lastWeight(), PrevWeight);
    PrevWeight = E.lastWeight();
  }
  EXPECT_EQ(E.getNumEnumerated(), 25u);
}

TEST(VcEnumeratorTest, QueriedAttrsAlwaysMapped) {
  OverviewVc F;
  VcEnumerator E(*F.Src, *F.Tgt, F.Queried);
  for (int I = 0; I < 10; ++I) {
    std::optional<ValueCorrespondence> VC = E.next();
    ASSERT_TRUE(VC.has_value());
    for (const QualifiedAttr &Q : F.Queried)
      EXPECT_FALSE(VC->image(Q).empty())
          << Q.str() << " unmapped in VC " << I;
  }
}

TEST(VcEnumeratorTest, InfeasibleWhenQueriedAttrHasNoCompatibleTarget) {
  Schema Src("S"), Tgt("T");
  Src.addTable(TableSchema("A", {{"x", ValueType::Binary}}));
  Tgt.addTable(TableSchema("B", {{"y", ValueType::Int}}));
  std::set<QualifiedAttr> Queried = {{"A", "x"}};
  VcEnumerator E(Src, Tgt, Queried);
  EXPECT_FALSE(E.next().has_value());
}

TEST(VcEnumeratorTest, MaxSatBackendAgreesOnFirstAssignments) {
  // Small schemas where the branch-and-bound encoding is tractable: both
  // backends must produce the same best-first weights.
  Schema Src("S"), Tgt("T");
  Src.addTable(TableSchema("Person", {{"name", ValueType::String},
                                      {"age", ValueType::Int}}));
  Tgt.addTable(TableSchema("People", {{"name", ValueType::String},
                                      {"age", ValueType::Int},
                                      {"nick", ValueType::String}}));
  std::set<QualifiedAttr> Queried = {{"Person", "name"}, {"Person", "age"}};

  VcOptions KOpts;
  VcEnumerator K(Src, Tgt, Queried, KOpts);
  VcOptions MOpts;
  MOpts.TheBackend = VcOptions::Backend::MaxSat;
  VcEnumerator M(Src, Tgt, Queried, MOpts);

  // The space has exactly three assignments: name maps to {name}, {nick},
  // or {name, nick}, while age is forced. Both backends enumerate all three
  // in the same weight order and then report exhaustion.
  for (int I = 0; I < 3; ++I) {
    std::optional<ValueCorrespondence> KV = K.next();
    std::optional<ValueCorrespondence> MV = M.next();
    ASSERT_TRUE(KV.has_value());
    ASSERT_TRUE(MV.has_value());
    EXPECT_EQ(K.lastWeight(), M.lastWeight()) << "diverged at step " << I;
  }
  EXPECT_FALSE(K.next().has_value());
  EXPECT_FALSE(M.next().has_value());
  // And the very first assignment is identical, not just equal in weight.
  VcEnumerator K2(Src, Tgt, Queried, KOpts);
  VcEnumerator M2(Src, Tgt, Queried, MOpts);
  EXPECT_TRUE(*K2.next() == *M2.next());
}

TEST(VcEnumeratorTest, DuplicationReachedLazily) {
  // Denormalization: the same attribute name appears twice in the target
  // (the paper's Ambler-8 scenario needing |Φ(a)| > 1). The one-to-one soft
  // constraints keep the first VC injective; the duplicate follows lazily.
  Schema Src("S"), Tgt("T");
  Src.addTable(TableSchema("Order", {{"total", ValueType::Int}}));
  Tgt.addTable(TableSchema("Order", {{"total", ValueType::Int}}));
  Tgt.addTable(TableSchema("Report", {{"total", ValueType::Int}}));
  std::set<QualifiedAttr> Queried = {{"Order", "total"}};
  VcEnumerator E(Src, Tgt, Queried);
  std::optional<ValueCorrespondence> VC = E.next();
  ASSERT_TRUE(VC.has_value());
  // The first VC maps to the same-named table; the duplicated image is
  // reached lazily within the next assignments.
  EXPECT_TRUE(VC->maps({"Order", "total"}, {"Order", "total"}));
  EXPECT_EQ(VC->image({"Order", "total"}).size(), 1u);
  bool SawDuplicate = false;
  for (int I = 0; I < 3 && !SawDuplicate; ++I) {
    VC = E.next();
    if (VC && VC->image({"Order", "total"}).size() == 2)
      SawDuplicate = true;
  }
  EXPECT_TRUE(SawDuplicate);
}

TEST(VcEnumeratorTest, NameSimilarityAblationStillEnumerates) {
  OverviewVc F;
  VcOptions Opts;
  Opts.UseNameSimilarity = false;
  VcEnumerator E(*F.Src, *F.Tgt, F.Queried, Opts);
  std::optional<ValueCorrespondence> VC = E.next();
  ASSERT_TRUE(VC.has_value());
  for (const QualifiedAttr &Q : F.Queried)
    EXPECT_FALSE(VC->image(Q).empty());
}
