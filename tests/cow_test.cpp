//===- tests/cow_test.cpp - Copy-on-write state engine tests ----------------===//
//
// Guards the correctness contracts of the copy-on-write table storage and
// the failure corpus (docs/PERFORMANCE.md, "State engine"): snapshots share
// payloads until the first mutation, mutation never leaks into sibling
// snapshots (row content and index state alike), the deep-copy oracle
// (MIGRATOR_NO_COW) never shares, and — the load-bearing property — COW and
// deep-copy storage are byte-identical on direct evaluation, on randomized
// program workloads, and through the full synthesis pipeline; likewise
// synthesis with and without the failure corpus returns the same program.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"
#include "benchsuite/Generator.h"
#include "eval/Evaluator.h"
#include "obs/Metrics.h"
#include "relational/Database.h"
#include "relational/Table.h"
#include "relational/Value.h"
#include "support/Rng.h"
#include "synth/RandomWorkload.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

/// Restores the global COW switch (and metrics enablement) on scope exit,
/// so a failing assertion cannot leak deep-copy mode into other tests.
struct CowGuard {
  ~CowGuard() {
    setTableCowEnabled(true);
    obs::setMetricsEnabled(false);
  }
};

TableSchema pairSchema(const char *Name, const char *A, const char *B) {
  return TableSchema(Name, {{A, ValueType::Int}, {B, ValueType::Int}});
}

Table smallTable() {
  Table T(pairSchema("T", "a", "b"));
  for (int I = 0; I < 4; ++I)
    T.insertRow({Value::makeInt(I % 2), Value::makeInt(I)});
  return T;
}

/// Reference implementation: ascending indices of rows with R[Col] == V.
std::vector<size_t> scanColumn(const Table &T, unsigned Col, const Value &V) {
  std::vector<size_t> Out;
  for (size_t R = 0; R < T.size(); ++R)
    if (T.getRow(R)[Col] == V)
      Out.push_back(R);
  return Out;
}

/// Probe must agree with a linear scan (null probe == empty scan).
void expectProbeMatchesScan(const Table &T, unsigned Col, const Value &V) {
  const std::vector<size_t> *B = T.probeIndex(Col, V);
  std::vector<size_t> Ref = scanColumn(T, Col, V);
  if (!B) {
    EXPECT_TRUE(Ref.empty());
    return;
  }
  EXPECT_EQ(*B, Ref);
}

/// Exact comparison: optional-ness, column labels, row order, values.
void expectIdentical(const std::optional<ResultTable> &A,
                     const std::optional<ResultTable> &B,
                     const std::string &What) {
  ASSERT_EQ(A.has_value(), B.has_value()) << What;
  if (!A)
    return;
  EXPECT_EQ(A->Columns, B->Columns) << What;
  ASSERT_EQ(A->Rows.size(), B->Rows.size()) << What;
  for (size_t R = 0; R < A->Rows.size(); ++R)
    EXPECT_TRUE(A->Rows[R] == B->Rows[R]) << What << " row " << R;
}

} // namespace

//===----------------------------------------------------------------------===//
// Payload sharing and detachment
//===----------------------------------------------------------------------===//

TEST(TableCow, CopySharesUntilFirstMutation) {
  CowGuard Guard;
  setTableCowEnabled(true);

  Table T = smallTable();
  Table C = T;
  EXPECT_TRUE(C.sharesStorageWith(T));
  EXPECT_TRUE(T == C);

  // First mutation detaches the copy; the original is untouched.
  C.insertRow({Value::makeInt(9), Value::makeInt(9)});
  EXPECT_FALSE(C.sharesStorageWith(T));
  EXPECT_EQ(T.size(), 4u);
  EXPECT_EQ(C.size(), 5u);

  // A table mutating with exclusive ownership does not re-clone.
  C.insertRow({Value::makeInt(8), Value::makeInt(8)});
  EXPECT_EQ(C.size(), 6u);
}

TEST(TableCow, EveryMutatorIsolatesSiblingSnapshots) {
  CowGuard Guard;
  setTableCowEnabled(true);

  Table T = smallTable();
  const std::vector<Row> Original = T.getRows();

  {
    Table C = T;
    C.insertRow({Value::makeInt(7), Value::makeInt(7)});
    EXPECT_TRUE(T.getRows() == Original);
  }
  {
    Table C = T;
    C.eraseRows({0, 2});
    EXPECT_TRUE(T.getRows() == Original);
    EXPECT_EQ(C.size(), 2u);
  }
  {
    Table C = T;
    C.setValue(1, 1, Value::makeInt(42));
    EXPECT_TRUE(T.getRows() == Original);
    EXPECT_EQ(C.getRow(1)[1], Value::makeInt(42));
  }
  {
    Table C = T;
    C.clear();
    EXPECT_TRUE(T.getRows() == Original);
    EXPECT_TRUE(C.empty());
  }
}

TEST(TableCow, IndexStateDoesNotLeakAcrossDetachedSnapshots) {
  CowGuard Guard;
  setTableCowEnabled(true);

  Table T = smallTable();
  T.probeIndex(0, Value::makeInt(0)); // Build column 0's index.
  ASSERT_TRUE(T.hasIndex(0));

  Table C = T;
  EXPECT_TRUE(C.hasIndex(0)); // Shared payload carries the warm index.

  // Mutating the copy detaches it; its index must track its own rows while
  // the original's index keeps answering for the original rows.
  C.insertRow({Value::makeInt(0), Value::makeInt(100)});
  C.eraseRows({1});
  C.setValue(0, 0, Value::makeInt(5));
  for (int K : {0, 1, 2, 5}) {
    expectProbeMatchesScan(C, 0, Value::makeInt(K));
    expectProbeMatchesScan(T, 0, Value::makeInt(K));
  }
  EXPECT_EQ(T.size(), 4u);

  // An index built through a shared alias is payload state (a cache), so
  // the sibling sees it too — but never each other's mutations.
  Table D = T;
  D.probeIndex(1, Value::makeInt(2));
  EXPECT_TRUE(T.hasIndex(1));
  D.setValue(2, 1, Value::makeInt(77));
  expectProbeMatchesScan(D, 1, Value::makeInt(77));
  expectProbeMatchesScan(T, 1, Value::makeInt(2));
  EXPECT_EQ(T.getRow(2)[1], Value::makeInt(2));
}

TEST(TableCow, DatabaseCopyIsSharedPerTable) {
  CowGuard Guard;
  setTableCowEnabled(true);

  ParseOutput PO = parseOrDie(overviewSource());
  const Schema *S = PO.findSchema("CourseDB");
  ASSERT_NE(S, nullptr);
  Database DB(*S);
  DB.getTable("Class").insertRow(
      {Value::makeInt(1), Value::makeInt(2), Value::makeInt(3)});

  Database Snap = DB;
  for (size_t I = 0; I < DB.getTables().size(); ++I)
    EXPECT_TRUE(Snap.getTables()[I].sharesStorageWith(DB.getTables()[I]));

  // Mutating one table of the copy detaches only that table.
  Snap.getTable("Class").clear();
  EXPECT_FALSE(Snap.getTable("Class").sharesStorageWith(DB.getTable("Class")));
  EXPECT_TRUE(Snap.getTable("TA").sharesStorageWith(DB.getTable("TA")));
  EXPECT_TRUE(
      Snap.getTable("Instructor").sharesStorageWith(DB.getTable("Instructor")));
  EXPECT_EQ(DB.getTable("Class").size(), 1u);
}

TEST(TableCow, DeepCopyOracleNeverShares) {
  CowGuard Guard;
  setTableCowEnabled(false);

  Table T = smallTable();
  T.probeIndex(0, Value::makeInt(0));
  Table C = T;
  EXPECT_FALSE(C.sharesStorageWith(T));
  EXPECT_TRUE(C.hasIndex(0)); // Indexes still copied warm, just eagerly.
  C.insertRow({Value::makeInt(9), Value::makeInt(9)});
  EXPECT_EQ(T.size(), 4u);
  for (int K : {0, 1, 9})
    expectProbeMatchesScan(C, 0, Value::makeInt(K));
}

//===----------------------------------------------------------------------===//
// COW vs deep-copy oracle: randomized program workloads
//===----------------------------------------------------------------------===//

TEST(CowDifferential, RandomWorkloadsMatchDeepCopy) {
  CowGuard Guard;

  // Generated benchmarks exercise joins, provenance deletes, updates, and
  // IN-subquery shapes; every run is repeated under both storage engines on
  // fresh databases so UID numbering is identical.
  std::vector<GenSpec> Specs(2);
  Specs[0].Name = "cow-diff-0";
  Specs[0].NumTables = 4;
  Specs[0].NumAttrs = 16;
  Specs[0].NumFuncs = 10;
  Specs[0].Splits = 1;
  Specs[1].Name = "cow-diff-1";
  Specs[1].NumTables = 5;
  Specs[1].NumAttrs = 18;
  Specs[1].NumFuncs = 12;
  Specs[1].SatellitePairs = 2;
  Specs[1].SharedSplits = 1;

  Rng R(0xC0FFEE);
  RandomWorkloadOptions WOpts;
  WOpts.MaxUpdates = 6;
  for (const GenSpec &Spec : Specs) {
    Benchmark B = generateBenchmark(Spec);
    for (int Trial = 0; Trial < 25; ++Trial) {
      InvocationSeq Seq = randomSequence(B.Prog, R, WOpts);
      setTableCowEnabled(true);
      std::optional<ResultTable> Cow = runSequence(B.Prog, B.Source, Seq);
      setTableCowEnabled(false);
      std::optional<ResultTable> Deep = runSequence(B.Prog, B.Source, Seq);
      expectIdentical(Cow, Deep,
                      Spec.Name + " trial " + std::to_string(Trial) + ": " +
                          sequenceStr(Seq));
    }
  }
}

//===----------------------------------------------------------------------===//
// COW vs deep-copy oracle: full synthesis pipeline
//===----------------------------------------------------------------------===//

TEST(CowDifferential, SynthesisIsIdenticalWithAndWithoutCow) {
  CowGuard Guard;
  Benchmark B = loadBenchmark("Ambler-3");

  std::string Reference;
  for (bool Cow : {true, false}) {
    setTableCowEnabled(Cow);
    for (unsigned Jobs : {1u, 2u}) {
      SynthOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Solver.Batch = 4;
      Opts.Deterministic = true;
      SynthResult Res = synthesize(B.Source, B.Prog, B.Target, Opts);
      ASSERT_TRUE(Res.succeeded()) << "cow=" << Cow << " jobs=" << Jobs;
      std::string Text = Res.Prog->str();
      if (Reference.empty())
        Reference = Text;
      else
        EXPECT_EQ(Text, Reference)
            << "diverged at cow=" << Cow << " jobs=" << Jobs;
    }
  }
}

//===----------------------------------------------------------------------===//
// Failure corpus
//===----------------------------------------------------------------------===//

TEST(FailureCorpus, SynthesisIsIdenticalWithAndWithoutCorpus) {
  CowGuard Guard;
  setTableCowEnabled(true);
  Benchmark B = loadBenchmark("Ambler-3");

  std::string Reference;
  for (bool Corpus : {true, false}) {
    SynthOptions Opts;
    Opts.Deterministic = true;
    // Bias off so the search wades through failing candidates — the corpus
    // must actually screen, not ride along unused.
    Opts.Solver.BiasFirstAlternatives = false;
    Opts.Solver.UseFailureCorpus = Corpus;
    SynthResult Res = synthesize(B.Source, B.Prog, B.Target, Opts);
    ASSERT_TRUE(Res.succeeded()) << "corpus=" << Corpus;
    std::string Text = Res.Prog->str();
    if (Reference.empty())
      Reference = Text;
    else
      EXPECT_EQ(Text, Reference) << "diverged at corpus=" << Corpus;
  }
}
