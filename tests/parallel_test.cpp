//===- tests/parallel_test.cpp - Parallel engine and source cache ------------===//
//
// Guards the two correctness contracts of the parallel synthesis engine
// (docs/PERFORMANCE.md): deterministic mode produces byte-identical programs
// at any thread count, and the cross-candidate source-result cache never
// changes a test outcome — including the minimality of the failing input.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"
#include "eval/Evaluator.h"
#include "synth/SourceCache.h"
#include "synth/Synthesizer.h"
#include "synth/Tester.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

std::string invocationStr(const InvocationSeq &Seq) { return sequenceStr(Seq); }

} // namespace

//===----------------------------------------------------------------------===//
// Deterministic parallel synthesis
//===----------------------------------------------------------------------===//

TEST(ParallelSynthTest, DeterministicAcrossThreadCounts) {
  // Three textbook benchmarks, synthesized at 1, 2, and 8 threads in
  // deterministic mode: the pretty-printed result must be byte-identical.
  for (const char *Name : {"Ambler-3", "Ambler-5", "Ambler-6"}) {
    Benchmark B = loadBenchmark(Name);
    std::string Reference;
    for (unsigned Jobs : {1u, 2u, 8u}) {
      SynthOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Solver.Batch = 4;
      Opts.Deterministic = true;
      SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
      ASSERT_TRUE(R.succeeded()) << Name << " jobs=" << Jobs;
      std::string Text = R.Prog->str();
      if (Reference.empty())
        Reference = Text;
      else
        EXPECT_EQ(Text, Reference) << Name << " diverged at jobs=" << Jobs;
    }
  }
}

TEST(ParallelSynthTest, BatchingMatchesSingleDraw) {
  // Batch size changes how many models are in flight, not which candidate
  // ultimately wins: the sequential engine at Batch=1 and Batch=4 must
  // agree (both deterministic by construction).
  Benchmark B = loadBenchmark("Ambler-3");
  std::string Reference;
  for (unsigned Batch : {1u, 4u}) {
    SynthOptions Opts;
    Opts.Solver.Batch = Batch;
    SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
    ASSERT_TRUE(R.succeeded()) << "batch=" << Batch;
    std::string Text = R.Prog->str();
    if (Reference.empty())
      Reference = Text;
    else
      EXPECT_EQ(Text, Reference) << "diverged at batch=" << Batch;
  }
}

TEST(ParallelSynthTest, StatsAggregateAcrossWaves) {
  Benchmark B = loadBenchmark("Ambler-5");
  SynthOptions Opts;
  Opts.Jobs = 2;
  Opts.Solver.Batch = 2;
  Opts.Deterministic = true;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  ASSERT_TRUE(R.succeeded());
  // The mirrored Table 1 fields come from the merged SolveStats.
  EXPECT_EQ(R.Stats.Iters, R.Stats.Solve.Iters);
  EXPECT_EQ(R.Stats.VerifyTimeSec, R.Stats.Solve.VerifyTimeSec);
  EXPECT_GE(R.Stats.Solve.SatCalls, R.Stats.Solve.Iters);
}

//===----------------------------------------------------------------------===//
// Source-result cache
//===----------------------------------------------------------------------===//

namespace {

/// A source program over a join-chain schema whose queries return the
/// chain-linking attribute — a fresh-UID value — so cached results exercise
/// the UID-bijection comparison path.
struct UidFixture {
  ParseOutput Out;
  const Schema *S = nullptr;
  const Program *Prog = nullptr;

  UidFixture()
      : Out(parseOrDie(R"(
schema Media {
  table Picture(PicId: int, Pic: binary)
  table TA(TaId: int, TName: string, PicId: int)
}
program MediaApp on Media {
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTA(id: int) {
    select TName, PicId from Picture join TA where TaId = id;
  }
}
)")),
        S(Out.findSchema("Media")), Prog(&Out.findProgram("MediaApp")->Prog) {}
};

} // namespace

TEST(SourceCacheTest, KeysAreUnambiguous) {
  // Length-prefixed components: sequences that would collide under naive
  // concatenation must map to distinct keys.
  InvocationSeq A = {{"ab", {Value::makeString("c")}}};
  InvocationSeq B = {{"a", {Value::makeString("bc")}}};
  InvocationSeq C = {{"a", {Value::makeString("b"), Value::makeString("c")}}};
  EXPECT_NE(invocationSeqKey(A), invocationSeqKey(B));
  EXPECT_NE(invocationSeqKey(B), invocationSeqKey(C));
  EXPECT_NE(invocationSeqKey(A), invocationSeqKey(C));
  // Value kinds are tagged: int 1 vs string "1" vs uid 1.
  InvocationSeq I = {{"f", {Value::makeInt(1)}}};
  InvocationSeq St = {{"f", {Value::makeString("1")}}};
  InvocationSeq U = {{"f", {Value::makeUid(1)}}};
  EXPECT_NE(invocationSeqKey(I), invocationSeqKey(St));
  EXPECT_NE(invocationSeqKey(I), invocationSeqKey(U));
}

TEST(SourceCacheTest, CachedRunMatchesDirectExecution) {
  UidFixture F;
  SourceResultCache Cache(*F.S, *F.Prog);
  InvocationSeq Seq = {
      {"addTA", {Value::makeInt(1), Value::makeString("A"),
                 Value::makeBinary("b0")}},
      {"addTA", {Value::makeInt(2), Value::makeString("B"),
                 Value::makeBinary("b1")}},
      {"getTA", {Value::makeInt(2)}},
  };
  std::shared_ptr<const ResultTable> Cached = Cache.run(Seq);
  std::optional<ResultTable> Direct = runSequence(*F.Prog, *F.S, Seq);
  ASSERT_TRUE(Cached);
  ASSERT_TRUE(Direct);
  // Byte-identical, not merely bijection-equivalent: deterministic UID
  // numbering makes the memoized run reproduce the direct one exactly.
  EXPECT_EQ(Cached->str(), Direct->str());

  // Replaying the sequence is pure hits; a shared prefix reuses states.
  uint64_t MissesBefore = Cache.misses();
  std::shared_ptr<const ResultTable> Again = Cache.run(Seq);
  ASSERT_TRUE(Again);
  EXPECT_EQ(Cache.misses(), MissesBefore);
  EXPECT_GT(Cache.hits(), 0u);
}

TEST(SourceCacheTest, CachedOutcomesMatchUncached) {
  // The tester with a cache must produce the same verdict — and the same
  // minimum failing input — as without, on candidates whose results carry
  // fresh UIDs.
  UidFixture F;
  ParseOutput Cands = parseOrDie(R"(
schema Media2 {
  table Picture(PicId: int, Pic: binary)
  table TA(TaId: int, TName: string, PicId: int)
}
program Good on Media2 {
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTA(id: int) {
    select TName, PicId from Picture join TA where TaId = id;
  }
}
program Bad on Media2 {
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    insert into TA values (TaId: id, TName: "X", PicId: id);
  }
  query getTA(id: int) {
    select TName, PicId from Picture join TA where TaId = id;
  }
}
)");
  const Schema *Tgt = Cands.findSchema("Media2");
  ASSERT_NE(Tgt, nullptr);

  SourceResultCache Cache(*F.S, *F.Prog);
  EquivalenceTester Plain(*F.S, *F.Prog, *Tgt);
  EquivalenceTester Caching(*F.S, *F.Prog, *Tgt, {}, &Cache);

  for (const char *Name : {"Good", "Bad"}) {
    const Program &Cand = Cands.findProgram(Name)->Prog;
    TestOutcome P = Plain.test(Cand);
    TestOutcome C = Caching.test(Cand);
    EXPECT_EQ(P.TheKind, C.TheKind) << Name;
    // MFI minimality: identical failing input, invocation for invocation.
    EXPECT_EQ(invocationStr(P.Mfi), invocationStr(C.Mfi)) << Name;
    EXPECT_EQ(P.IllFormedFunc, C.IllFormedFunc) << Name;
  }
  EXPECT_EQ(Plain.test(Cands.findProgram("Good")->Prog).TheKind,
            TestOutcome::Kind::Equivalent);
  EXPECT_EQ(Plain.test(Cands.findProgram("Bad")->Prog).TheKind,
            TestOutcome::Kind::Failing);

  // Testing a second candidate against the same source reuses cached
  // source-side work.
  EXPECT_GT(Cache.hits(), 0u);
}

TEST(SourceCacheTest, SynthesisResultUnchangedByCache) {
  Benchmark B = loadBenchmark("Ambler-3");
  SynthOptions WithCache, Without;
  WithCache.SourceCacheMinJobs = 1; // Force the cache on even at Jobs = 1.
  Without.UseSourceCache = false;
  SynthResult R1 = synthesize(B.Source, B.Prog, B.Target, WithCache);
  SynthResult R2 = synthesize(B.Source, B.Prog, B.Target, Without);
  ASSERT_TRUE(R1.succeeded());
  ASSERT_TRUE(R2.succeeded());
  EXPECT_EQ(R1.Prog->str(), R2.Prog->str());
  EXPECT_EQ(R1.Stats.Iters, R2.Stats.Iters);
}
