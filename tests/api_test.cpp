//===- tests/api_test.cpp - Remaining public API surface -----------------------===//

#include "ast/Analysis.h"
#include "sketch/Sketch.h"
#include "vc/ValueCorrespondence.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

TEST(ApiSurface, InvocationAndSequenceRendering) {
  Invocation I{"addTA",
               {Value::makeInt(1), Value::makeString("A"),
                Value::makeBinary("p")}};
  EXPECT_EQ(I.str(), "addTA(1, \"A\", b\"p\")");
  InvocationSeq Seq = {I, {"getTAInfo", {Value::makeInt(1)}}};
  EXPECT_EQ(sequenceStr(Seq), "addTA(1, \"A\", b\"p\"); getTAInfo(1)");
  EXPECT_EQ(sequenceStr({}), "");
}

TEST(ApiSurface, HoleDomainRenderingPerKind) {
  Hole A;
  A.TheKind = Hole::Kind::Attr;
  A.Attrs = {{"T", "x"}, {"U", "y"}};
  EXPECT_EQ(A.domainStr(), "??{T.x, U.y}");

  Hole C;
  C.TheKind = Hole::Kind::Chain;
  C.Chains = {JoinChain::table("T"), JoinChain::natural({"T", "U"})};
  EXPECT_EQ(C.domainStr(), "??{T, T join U}");

  Hole CS;
  CS.TheKind = Hole::Kind::ChainSet;
  CS.ChainSets = {{JoinChain::table("T")},
                  {JoinChain::table("T"), JoinChain::table("U")}};
  EXPECT_EQ(CS.domainStr(), "??{T, T ; U}");

  Hole L;
  L.TheKind = Hole::Kind::TableList;
  L.TableLists = {{"T"}, {"T", "U"}};
  EXPECT_EQ(L.domainStr(), "??{[T], [T, U]}");
  EXPECT_EQ(L.size(), 2u);
}

TEST(ApiSurface, ValueCorrespondenceRendering) {
  ValueCorrespondence VC;
  VC.add({"T", "a"}, {"U", "x"});
  VC.add({"T", "a"}, {"U", "y"});
  VC.add({"S", "b"}, {"U", "z"});
  std::string Str = VC.str();
  EXPECT_NE(Str.find("S.b -> U.z"), std::string::npos);
  EXPECT_NE(Str.find("T.a -> U.x U.y"), std::string::npos);
}

TEST(ApiSurface, CollectUsedAttrsCoversWrites) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  std::set<QualifiedAttr> Used = collectUsedAttrs(P, S);
  std::set<QualifiedAttr> Read = collectQueriedAttrs(P, S);
  // Every read attribute is used; insert-only attributes are used but not
  // read — here every attribute is both inserted and read, so the sets
  // coincide and cover all six Instructor/TA columns.
  for (const QualifiedAttr &A : Read)
    EXPECT_TRUE(Used.count(A));
  EXPECT_EQ(Used.size(), 6u);
}

TEST(ApiSurface, ResultTableRendering) {
  ResultTable R;
  R.Columns = {"IName", "Pic"};
  R.Rows = {{Value::makeString("Ada"), Value::makeBinary("img")}};
  std::string Str = R.str();
  EXPECT_NE(Str.find("(IName, Pic)"), std::string::npos);
  EXPECT_NE(Str.find("(\"Ada\", b\"img\")"), std::string::npos);
}

TEST(ApiSurface, SchemaStrReparsesToIdenticalSchema) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDBNew");
  ParseOutput Again = parseOrDie(S.str());
  const Schema *S2 = Again.findSchema("CourseDBNew");
  ASSERT_NE(S2, nullptr);
  EXPECT_EQ(S2->str(), S.str());
  EXPECT_EQ(S2->getNumAttrs(), S.getNumAttrs());
}

TEST(ApiSurface, FunctionParamTypeLookup) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Function &F =
      Out.findProgram("CourseApp")->Prog.getFunction("addInstructor");
  EXPECT_EQ(F.paramType("id"), ValueType::Int);
  EXPECT_EQ(F.paramType("name"), ValueType::String);
  EXPECT_EQ(F.paramType("pic"), ValueType::Binary);
  EXPECT_FALSE(F.paramType("nope").has_value());
}
