//===- tests/solver_test.cpp - Sketch solver and edge-case tests -------------===//

#include "sat/MaxSat.h"
#include "synth/SketchSolver.h"
#include "synth/Synthesizer.h"
#include "vc/VcEnumerator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

struct OverviewSolve {
  ParseOutput Out;
  const Schema *Src = nullptr;
  const Schema *Tgt = nullptr;
  const Program *Prog = nullptr;

  OverviewSolve()
      : Out(parseOrDie(overviewSource())), Src(Out.findSchema("CourseDB")),
        Tgt(Out.findSchema("CourseDBNew")),
        Prog(&Out.findProgram("CourseApp")->Prog) {}
};

} // namespace

//===----------------------------------------------------------------------===//
// SketchSolver behaviour
//===----------------------------------------------------------------------===//

TEST(SketchSolverTest, MaxItersBoundIsRespected) {
  OverviewSolve F;
  SynthOptions Opts;
  Opts.Solver.MaxIters = 0;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
  EXPECT_FALSE(R.succeeded());
  EXPECT_EQ(R.Stats.Iters, 0u);
}

TEST(SketchSolverTest, TimeBudgetZeroTimesOut) {
  OverviewSolve F;
  SynthOptions Opts;
  Opts.TimeBudgetSec = 0.0;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
  EXPECT_FALSE(R.succeeded());
  EXPECT_TRUE(R.Stats.TimedOut);
}

TEST(SketchSolverTest, BlockedTotalGrowsWithFailures) {
  // Force iteration by making the solver see failing candidates: use the
  // enumerative mode, whose blocking is one model at a time.
  OverviewSolve F;
  SynthOptions Opts;
  Opts.Solver.TheMode = SolverOptions::Mode::Enumerative;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
  ASSERT_TRUE(R.succeeded());
  EXPECT_GE(R.Stats.Iters, 1u);
}

TEST(SketchSolverTest, AllThreeModesAgreeOnEquivalence) {
  OverviewSolve F;
  for (SolverOptions::Mode M :
       {SolverOptions::Mode::Mfi, SolverOptions::Mode::Enumerative,
        SolverOptions::Mode::Cegis}) {
    SynthOptions Opts;
    Opts.Solver.TheMode = M;
    SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt, Opts);
    ASSERT_TRUE(R.succeeded());
    TesterOptions Deep;
    Deep.MaxSeqLen = 4;
    EquivalenceTester T(*F.Src, *F.Prog, *F.Tgt, Deep);
    EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
  }
}

TEST(SketchSolverTest, FirstModelPrefersSmallestChains) {
  // The encoder's bias makes the first completion use two-table chains
  // (the paper's Fig. 4 shape), not the four-table alternatives.
  OverviewSolve F;
  SynthResult R = synthesize(*F.Src, *F.Prog, *F.Tgt);
  ASSERT_TRUE(R.succeeded());
  const Function &AddTa = R.Prog->getFunction("addTA");
  const auto &Ins = static_cast<const InsertStmt &>(*AddTa.getBody()[0]);
  EXPECT_EQ(Ins.getChain().getNumTables(), 2u);
  EXPECT_TRUE(Ins.getChain().containsTable("Picture"));
  EXPECT_TRUE(Ins.getChain().containsTable("TA"));
}

//===----------------------------------------------------------------------===//
// Tester options
//===----------------------------------------------------------------------===//

TEST(TesterOptionsTest, ArgTupleCapRetainsPerParameterVariation) {
  // A function with many parameters gets a capped tuple set in which every
  // parameter still varies.
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a0: int, a1: int, a2: int, a3: int, a4: int, a5: int,
                   a6: int) }
program P on S {
  update add(p0: int, p1: int, p2: int, p3: int, p4: int, p5: int, p6: int) {
    insert into T values (a0: p0, a1: p1, a2: p2, a3: p3, a4: p4, a5: p5,
                          a6: p6);
  }
  query q(x: int) { select a1 from T where a0 = x; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  // Identity migration: testing the program against itself must succeed and
  // must not enumerate all 2^7 argument tuples.
  TesterOptions Opts;
  Opts.MaxArgTuplesPerFunc = 10;
  EquivalenceTester T(S, P, S, Opts);
  TestOutcome O = T.test(P.clone());
  EXPECT_TRUE(O.isEquivalent());
  EXPECT_LT(T.getNumSequencesRun(), 2000u);
}

TEST(TesterOptionsTest, LongerSequencesFindDeeperBugs) {
  // A candidate that diverges only after two updates: deleteTA joins
  // through Instructor. MaxSeqLen=2 misses it; MaxSeqLen=3 finds it.
  ParseOutput Out = parseOrDie(overviewSource());
  ParseOutput Bad = parseOrDie(R"(
program BadDel on CourseDBNew {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Picture join Instructor values (InstId: id, IName: name, Pic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Picture join Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, Pic from Picture join Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join Instructor join TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, Pic from Picture join TA where TaId = id;
  }
}
)");
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  const Program &BadProg = Bad.findProgram("BadDel")->Prog;

  TesterOptions Shallow;
  Shallow.MaxSeqLen = 2;
  EquivalenceTester TS(Src, P, Tgt, Shallow);
  EXPECT_TRUE(TS.test(BadProg).isEquivalent()) << "shallow bound sees no bug";

  TesterOptions Deep;
  Deep.MaxSeqLen = 3;
  EquivalenceTester TD(Src, P, Tgt, Deep);
  EXPECT_EQ(TD.test(BadProg).TheKind, TestOutcome::Kind::Failing);
}

//===----------------------------------------------------------------------===//
// MaxSAT budget behaviour
//===----------------------------------------------------------------------===//

TEST(MaxSatBudget, BudgetedSolveStillReturnsAModel) {
  sat::MaxSatSolver M;
  int A = M.addVars(12);
  for (int I = 0; I + 1 < 12; ++I)
    M.addHard({sat::posLit(A + I), sat::posLit(A + I + 1)});
  for (int I = 0; I < 12; ++I)
    M.addSoft({sat::negLit(A + I)}, 1 + I % 3);
  std::optional<sat::MaxSatResult> Budgeted = M.solve(/*NodeBudget=*/50);
  ASSERT_TRUE(Budgeted.has_value());
  std::optional<sat::MaxSatResult> Exact = M.solve();
  ASSERT_TRUE(Exact.has_value());
  EXPECT_LE(Budgeted->Weight, Exact->Weight);
  // The budgeted model still satisfies the hard clauses.
  for (int I = 0; I + 1 < 12; ++I)
    EXPECT_TRUE(Budgeted->Model[A + I] || Budgeted->Model[A + I + 1]);
}

//===----------------------------------------------------------------------===//
// VC enumeration options
//===----------------------------------------------------------------------===//

TEST(VcOptionsTest, MaxImageSizeOneForbidsDuplication) {
  Schema Src("S"), Tgt("T");
  Src.addTable(TableSchema("A", {{"total", ValueType::Int}}));
  Tgt.addTable(TableSchema("B", {{"total", ValueType::Int}}));
  Tgt.addTable(TableSchema("C", {{"total", ValueType::Int}}));
  std::set<QualifiedAttr> Queried = {{"A", "total"}};
  VcOptions Opts;
  Opts.MaxImageSize = 1;
  VcEnumerator E(Src, Tgt, Queried, Opts);
  int Count = 0;
  while (std::optional<ValueCorrespondence> VC = E.next()) {
    EXPECT_LE(VC->image({"A", "total"}).size(), 1u);
    ++Count;
    ASSERT_LE(Count, 10);
  }
  EXPECT_EQ(Count, 2); // {B.total} and {C.total}.
}

TEST(VcOptionsTest, PreemptionAblationAllowsCrossNameMappings) {
  // With preemption off, a dropped attribute may map onto a column that has
  // an exact-name source; with it on, that column is reserved.
  Schema Src("S"), Tgt("T");
  Src.addTable(TableSchema("A", {{"name", ValueType::String},
                                 {"nick", ValueType::String}}));
  Tgt.addTable(TableSchema("A", {{"name", ValueType::String}}));
  std::set<QualifiedAttr> Queried = {{"A", "name"}};

  VcOptions On; // Default: preemption enabled.
  VcEnumerator EOn(Src, Tgt, Queried, On);
  std::optional<ValueCorrespondence> V1 = EOn.next();
  ASSERT_TRUE(V1.has_value());
  EXPECT_TRUE(V1->image({"A", "nick"}).empty());
  // The whole space never maps nick anywhere.
  while (std::optional<ValueCorrespondence> V = EOn.next())
    EXPECT_TRUE(V->image({"A", "nick"}).empty());

  VcOptions Off;
  Off.ExactNamePreemption = false;
  VcEnumerator EOff(Src, Tgt, Queried, Off);
  bool SawNickMapping = false;
  for (int I = 0; I < 5; ++I) {
    std::optional<ValueCorrespondence> V = EOff.next();
    if (!V)
      break;
    SawNickMapping |= !V->image({"A", "nick"}).empty();
  }
  EXPECT_TRUE(SawNickMapping);
}

//===----------------------------------------------------------------------===//
// Evaluator edge cases
//===----------------------------------------------------------------------===//

TEST(EvalEdgeCases, ConflictingChainInsertIsIllFormed) {
  // Two explicit values for one join class must conflict at runtime when
  // they differ and succeed when they agree.
  ParseOutput Out = parseOrDie(R"(
schema S { table A(k: int, x: string) table B(k: int, y: string) }
program P on S {
  update two(a: int, b: int, x: string, y: string) {
    insert into A join B values (A.k: a, B.k: b, x: x, y: y);
  }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  Evaluator E(S);
  UidGen U;
  Database DB(S);
  EXPECT_FALSE(E.callUpdate(P.getFunction("two"),
                            {Value::makeInt(1), Value::makeInt(2),
                             Value::makeString("x"), Value::makeString("y")},
                            DB, U));
  Database DB2(S);
  EXPECT_TRUE(E.callUpdate(P.getFunction("two"),
                           {Value::makeInt(1), Value::makeInt(1),
                            Value::makeString("x"), Value::makeString("y")},
                           DB2, U));
  EXPECT_EQ(DB2.getTable("A").size(), 1u);
  EXPECT_EQ(DB2.getTable("B").size(), 1u);
}

TEST(EvalEdgeCases, ExplicitJoinLeavesSameNamedAttrsUnlinked) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(k: int, v: int) table B(k: int, w: int) }
program P on S {
  update addA(k: int, v: int) { insert into A values (k: k, v: v); }
  update addB(k: int, w: int) { insert into B values (k: k, w: w); }
  query natural() { select v, w from A join B; }
  query onVW() { select A.k, B.k from A join B on A.v = B.w; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(
      P, S,
      {{"addA", {Value::makeInt(1), Value::makeInt(7)}},
       {"addB", {Value::makeInt(2), Value::makeInt(7)}},
       {"natural", {}}});
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getNumRows(), 0u); // k differs: natural join empty.
  R = runSequence(P, S,
                  {{"addA", {Value::makeInt(1), Value::makeInt(7)}},
                   {"addB", {Value::makeInt(2), Value::makeInt(7)}},
                   {"onVW", {}}});
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->getNumRows(), 1u); // Explicit v=w join matches; k unlinked.
  EXPECT_EQ(R->Rows[0][0].getInt(), 1);
  EXPECT_EQ(R->Rows[0][1].getInt(), 2);
}

TEST(EvalEdgeCases, UpdateOverJoinOnlyTouchesContributingRows) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(k: int, v: int) table B(k: int, tag: string) }
program P on S {
  update addA(k: int, v: int) { insert into A values (k: k, v: v); }
  update addB(k: int, tag: string) { insert into B values (k: k, tag: tag); }
  update bump(tag: string, nv: int) {
    update A join B set v = nv where tag = tag;
  }
}
)");
  // Note: `tag = tag` compares the attribute against the parameter of the
  // same name — the parser resolves the right-hand side as the parameter.
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  Evaluator E(S);
  UidGen U;
  Database DB(S);
  ASSERT_TRUE(E.callUpdate(P.getFunction("addA"),
                           {Value::makeInt(1), Value::makeInt(10)}, DB, U));
  ASSERT_TRUE(E.callUpdate(P.getFunction("addA"),
                           {Value::makeInt(2), Value::makeInt(20)}, DB, U));
  ASSERT_TRUE(E.callUpdate(P.getFunction("addB"),
                           {Value::makeInt(1), Value::makeString("hot")}, DB,
                           U));
  ASSERT_TRUE(E.callUpdate(P.getFunction("bump"),
                           {Value::makeString("hot"), Value::makeInt(99)}, DB,
                           U));
  EXPECT_EQ(DB.getTable("A").getRow(0)[1].getInt(), 99); // Joined row.
  EXPECT_EQ(DB.getTable("A").getRow(1)[1].getInt(), 20); // Unjoined row.
}

TEST(SketchSolverTest, DisconnectedSplitSynthesizesTwoInserts) {
  ParseOutput Out = parseOrDie(R"(
schema Src { table Settings(theme: string, fontSize: int) }
schema Tgt {
  table ThemeCfg(theme: string)
  table FontCfg(fontSize: int)
}
program App on Src {
  update setup(t: string, f: int) {
    insert into Settings values (theme: t, fontSize: f);
  }
  query getTheme(t: string) { select theme from Settings where theme = t; }
  query getFont(f: int) { select fontSize from Settings where fontSize = f; }
}
)");
  const Schema &Src = *Out.findSchema("Src");
  const Schema &Tgt = *Out.findSchema("Tgt");
  const Program &Prog = Out.findProgram("App")->Prog;
  SynthResult R = synthesize(Src, Prog, Tgt);
  ASSERT_TRUE(R.succeeded());
  const Function &Setup = R.Prog->getFunction("setup");
  // The migrated insert writes both unlinked tables.
  ASSERT_EQ(Setup.getBody().size(), 2u);
  std::set<std::string> Tables;
  for (const StmtPtr &St : Setup.getBody()) {
    ASSERT_EQ(St->getKind(), Stmt::Kind::Insert);
    const auto &I = static_cast<const InsertStmt &>(*St);
    for (const std::string &T : I.getChain().getTables())
      Tables.insert(T);
  }
  EXPECT_TRUE(Tables.count("ThemeCfg"));
  EXPECT_TRUE(Tables.count("FontCfg"));
  TesterOptions Deep;
  Deep.MaxSeqLen = 4;
  EquivalenceTester T(Src, Prog, Tgt, Deep);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

//===----------------------------------------------------------------------===//
// SolveStats aggregation
//===----------------------------------------------------------------------===//

TEST(SolveStatsTest, PlusEqualsSumsCountersAndOrsFlags) {
  SolveStats A;
  A.Iters = 3;
  A.BlockedTotal = 10.5;
  A.VerifyTimeSec = 0.25;
  A.SatCalls = 4;
  A.SatConflicts = 7;
  A.SatDecisions = 11;
  A.SatPropagations = 13;
  A.SatLearnedClauses = 5;
  A.SatRestarts = 1;
  A.MfiPruneHits = 2;
  A.MfiPruneMisses = 1;
  A.Rejected = 3;
  A.TimedOut = false;
  A.Exhausted = true;
  A.Cancelled = false;

  SolveStats B;
  B.Iters = 9;
  B.BlockedTotal = 2.0;
  B.VerifyTimeSec = 0.75;
  B.SatCalls = 10;
  B.SatConflicts = 1;
  B.SatDecisions = 2;
  B.SatPropagations = 3;
  B.SatLearnedClauses = 4;
  B.SatRestarts = 0;
  B.MfiPruneHits = 6;
  B.MfiPruneMisses = 2;
  B.Rejected = 8;
  B.TimedOut = true;
  B.Exhausted = false;
  B.Cancelled = true;

  A += B;
  EXPECT_EQ(A.Iters, 12u);
  EXPECT_DOUBLE_EQ(A.BlockedTotal, 12.5);
  EXPECT_DOUBLE_EQ(A.VerifyTimeSec, 1.0);
  EXPECT_EQ(A.SatCalls, 14u);
  EXPECT_EQ(A.SatConflicts, 8u);
  EXPECT_EQ(A.SatDecisions, 13u);
  EXPECT_EQ(A.SatPropagations, 16u);
  EXPECT_EQ(A.SatLearnedClauses, 9u);
  EXPECT_EQ(A.SatRestarts, 1u);
  EXPECT_EQ(A.MfiPruneHits, 8u);
  EXPECT_EQ(A.MfiPruneMisses, 3u);
  EXPECT_EQ(A.Rejected, 11u);
  EXPECT_TRUE(A.TimedOut);
  EXPECT_TRUE(A.Exhausted);
  EXPECT_TRUE(A.Cancelled);

  // Identity: accumulating a default-constructed stats changes nothing.
  SolveStats Copy = A;
  A += SolveStats();
  EXPECT_EQ(A.Iters, Copy.Iters);
  EXPECT_DOUBLE_EQ(A.BlockedTotal, Copy.BlockedTotal);
  EXPECT_EQ(A.TimedOut, Copy.TimedOut);
}
