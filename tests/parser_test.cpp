//===- tests/parser_test.cpp - Lexer and parser tests ------------------------===//

#include "parse/Lexer.h"
#include "parse/Parser.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(LexerTest, PunctuationAndOperators) {
  std::vector<Token> Ts = lex("( ) { } [ ] , : ; . = != < <= > >=");
  std::vector<TokenKind> Kinds;
  for (const Token &T : Ts)
    Kinds.push_back(T.Kind);
  std::vector<TokenKind> Expected = {
      TokenKind::LParen, TokenKind::RParen, TokenKind::LBrace,
      TokenKind::RBrace, TokenKind::LBracket, TokenKind::RBracket,
      TokenKind::Comma, TokenKind::Colon, TokenKind::Semi, TokenKind::Dot,
      TokenKind::Eq, TokenKind::Ne, TokenKind::Lt, TokenKind::Le,
      TokenKind::Gt, TokenKind::Ge, TokenKind::Eof};
  EXPECT_EQ(Kinds, Expected);
}

TEST(LexerTest, KeywordsVersusIdentifiers) {
  std::vector<Token> Ts = lex("select selector b binary");
  EXPECT_EQ(Ts[0].Kind, TokenKind::KwSelect);
  EXPECT_EQ(Ts[1].Kind, TokenKind::Identifier);
  EXPECT_EQ(Ts[1].Text, "selector");
  EXPECT_EQ(Ts[2].Kind, TokenKind::Identifier);
  EXPECT_EQ(Ts[3].Kind, TokenKind::Identifier);
}

TEST(LexerTest, Literals) {
  std::vector<Token> Ts = lex(R"(42 -7 "hi\n" b"img" true false)");
  EXPECT_EQ(Ts[0].Kind, TokenKind::IntLiteral);
  EXPECT_EQ(Ts[0].IntVal, 42);
  EXPECT_EQ(Ts[1].IntVal, -7);
  EXPECT_EQ(Ts[2].Kind, TokenKind::StringLiteral);
  EXPECT_EQ(Ts[2].Text, "hi\n");
  EXPECT_EQ(Ts[3].Kind, TokenKind::BinaryLiteral);
  EXPECT_EQ(Ts[3].Text, "img");
  EXPECT_EQ(Ts[4].Kind, TokenKind::KwTrue);
  EXPECT_EQ(Ts[5].Kind, TokenKind::KwFalse);
}

TEST(LexerTest, CommentsAndLocations) {
  std::vector<Token> Ts = lex("a // comment\n  b");
  ASSERT_GE(Ts.size(), 3u);
  EXPECT_EQ(Ts[0].Text, "a");
  EXPECT_EQ(Ts[0].Line, 1u);
  EXPECT_EQ(Ts[1].Text, "b");
  EXPECT_EQ(Ts[1].Line, 2u);
  EXPECT_EQ(Ts[1].Col, 3u);
}

TEST(LexerTest, ErrorsOnBadInput) {
  std::vector<Token> Ts = lex("\"unterminated");
  EXPECT_EQ(Ts[0].Kind, TokenKind::Error);
  Ts = lex("a ! b");
  bool HasError = false;
  for (const Token &T : Ts)
    HasError |= T.Kind == TokenKind::Error;
  EXPECT_TRUE(HasError);
  Ts = lex("a # b");
  HasError = false;
  for (const Token &T : Ts)
    HasError |= T.Kind == TokenKind::Error;
  EXPECT_TRUE(HasError);
}

//===----------------------------------------------------------------------===//
// Parser
//===----------------------------------------------------------------------===//

TEST(ParserTest, ParsesOverviewUnit) {
  ParseOutput Out = parseOrDie(overviewSource());
  EXPECT_EQ(Out.Schemas.size(), 2u);
  EXPECT_EQ(Out.Programs.size(), 1u);
  const Schema *Src = Out.findSchema("CourseDB");
  ASSERT_NE(Src, nullptr);
  EXPECT_EQ(Src->getNumTables(), 3u);
  EXPECT_EQ(Src->getNumAttrs(), 9u);
  const NamedProgram *NP = Out.findProgram("CourseApp");
  ASSERT_NE(NP, nullptr);
  EXPECT_EQ(NP->SchemaName, "CourseDB");
  EXPECT_EQ(NP->Prog.getNumFunctions(), 6u);
}

TEST(ParserTest, PrintedProgramReparsesToEqualAst) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Program &P = Out.findProgram("CourseApp")->Prog;
  std::string Printed = "program Again {\n" + P.str() + "}\n";
  ParseOutput Out2 = parseOrDie(Printed);
  ASSERT_NE(Out2.findProgram("Again"), nullptr);
  EXPECT_TRUE(Out2.findProgram("Again")->Prog.equals(P));
}

TEST(ParserTest, ExplicitJoinAndPredicates) {
  ParseOutput Out = parseOrDie(R"(
schema S {
  table A(x: int, k: int)
  table B(y: int, k: int)
}
program P on S {
  query q(v: int) {
    select x, y from A join B on A.k = B.k
      where (x = v or y != 3) and not (x < y);
  }
}
)");
  const Function &F = Out.findProgram("P")->Prog.getFunction("q");
  ASSERT_TRUE(F.isQuery());
  const JoinChain &C = F.getQuery().getChain();
  EXPECT_FALSE(C.isNatural());
  ASSERT_EQ(C.getEqs().size(), 1u);
  EXPECT_EQ(F.getQuery().str(),
            "select x, y from A join B on A.k = B.k where ((x = v or y != 3) "
            "and not (x < y))");
}

TEST(ParserTest, InSubquery) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(x: int) table B(x: int) }
program P on S {
  query q() { select x from A where x in (select x from B); }
}
)");
  const Function &F = Out.findProgram("P")->Prog.getFunction("q");
  EXPECT_EQ(F.getQuery().str(),
            "select x from A where x in (select x from B)");
}

TEST(ParserTest, UpdateAndDeleteStatements) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int, b: string) table U(a: int) }
program P on S {
  update m(x: int, s: string) {
    insert into T values (a: x, b: s);
    update T set b = s where a = x;
    delete from T where a = x;
    delete [T, U] from T join U where a = x;
  }
}
)");
  const Function &F = Out.findProgram("P")->Prog.getFunction("m");
  ASSERT_EQ(F.getBody().size(), 4u);
  EXPECT_EQ(F.getBody()[0]->getKind(), Stmt::Kind::Insert);
  EXPECT_EQ(F.getBody()[1]->getKind(), Stmt::Kind::Update);
  EXPECT_EQ(F.getBody()[2]->getKind(), Stmt::Kind::Delete);
  const auto &D = static_cast<const DeleteStmt &>(*F.getBody()[3]);
  EXPECT_EQ(D.getTargets(), (std::vector<std::string>{"T", "U"}));
}

TEST(ParserTest, UnqualifiedRhsPrefersParamsOverAttrs) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int, b: int) }
program P on S {
  query q(a: int) { select b from T where b = a; }
  query r() { select b from T where b = a; }
}
)");
  // In q, `a` is a parameter; in r it must be the attribute.
  const auto &QF = Out.findProgram("P")->Prog.getFunction("q");
  const auto &QFilter =
      static_cast<const FilterQuery &>(
          static_cast<const ProjectQuery &>(QF.getQuery()).getSubQuery());
  const auto &QC = static_cast<const CmpPred &>(QFilter.getPred());
  EXPECT_FALSE(QC.rhsIsAttr());

  const auto &RF = Out.findProgram("P")->Prog.getFunction("r");
  const auto &RFilter =
      static_cast<const FilterQuery &>(
          static_cast<const ProjectQuery &>(RF.getQuery()).getSubQuery());
  const auto &RC = static_cast<const CmpPred &>(RFilter.getPred());
  EXPECT_TRUE(RC.rhsIsAttr());
}

TEST(ParserTest, DiagnosticsCarryLocations) {
  std::variant<ParseOutput, ParseError> R = parseUnit("schema S { table }");
  ASSERT_TRUE(std::holds_alternative<ParseError>(R));
  const ParseError &E = std::get<ParseError>(R);
  EXPECT_EQ(E.Line, 1u);
  EXPECT_GT(E.Col, 1u);
  EXPECT_NE(E.Msg.find("identifier"), std::string::npos);
}

TEST(ParserTest, RejectsDuplicates) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(
      parseUnit("schema S { table T(a: int) table T(b: int) }")));
  EXPECT_TRUE(std::holds_alternative<ParseError>(
      parseUnit("schema S { table T(a: int) } schema S { table U(a: int) }")));
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
schema S { table T(a: int) }
program P on S {
  update u(x: int) { insert into T values (a: x); }
  update u(x: int) { insert into T values (a: x); }
}
)")));
}

TEST(ParserTest, RejectsUnknownParamReference) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
schema S { table T(a: int) }
program P on S {
  update u(x: int) { insert into T values (a: y); }
}
)")));
}

TEST(ParserTest, RejectsJoinDeleteWithoutTargets) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
schema S { table T(a: int) table U(a: int) }
program P on S {
  update u(x: int) { delete from T join U where a = x; }
}
)")));
}

TEST(ParserTest, RejectsEmptyUpdateBody) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
schema S { table T(a: int) }
program P on S { update u(x: int) { } }
)")));
}

TEST(ParserTest, WorkloadDeclarations) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int, b: string) }
program P on S {
  update add(a: int, b: string) { insert into T values (a: a, b: b); }
  query get(a: int) { select b from T where a = a; }
}
workload W1 on P {
  add(1, "x");
  add(2, "y");
  get(1);
}
workload W2 on P { get(0); }
workload Other on Q { get(0); }
)");
  ASSERT_EQ(Out.Workloads.size(), 3u);
  std::vector<const NamedWorkload *> Ws = Out.workloadsFor("P");
  ASSERT_EQ(Ws.size(), 2u);
  EXPECT_EQ(Ws[0]->Name, "W1");
  ASSERT_EQ(Ws[0]->Seq.size(), 3u);
  EXPECT_EQ(Ws[0]->Seq[0].Func, "add");
  ASSERT_EQ(Ws[0]->Seq[0].Args.size(), 2u);
  EXPECT_EQ(Ws[0]->Seq[0].Args[0].getInt(), 1);
  EXPECT_EQ(Ws[0]->Seq[0].Args[1].getString(), "x");

  // The workload replays against the program.
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(P, S, Ws[0]->Seq);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getNumRows(), 1u);
}

TEST(ParserTest, WorkloadRejectsNonLiteralArgs) {
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
workload W on P { f(x); }
)")));
  EXPECT_TRUE(std::holds_alternative<ParseError>(parseUnit(R"(
workload W on P { }
)")));
}
