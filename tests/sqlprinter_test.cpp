//===- tests/sqlprinter_test.cpp - SQL rendering tests ------------------------===//

#include "ast/SqlPrinter.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

struct SqlFixture {
  ParseOutput Out;
  const Schema *Src = nullptr;
  const Program *Prog = nullptr;

  SqlFixture()
      : Out(parseOrDie(overviewSource())), Src(Out.findSchema("CourseDB")),
        Prog(&Out.findProgram("CourseApp")->Prog) {}
};

} // namespace

TEST(SqlPrinter, SchemaBecomesCreateTables) {
  SqlFixture F;
  std::string Sql = sqlSchema(*F.Src);
  EXPECT_NE(Sql.find("CREATE TABLE Instructor ("), std::string::npos);
  EXPECT_NE(Sql.find("InstId INT"), std::string::npos);
  EXPECT_NE(Sql.find("IName VARCHAR(255)"), std::string::npos);
  EXPECT_NE(Sql.find("IPic BLOB"), std::string::npos);
  EXPECT_NE(Sql.find("CREATE TABLE TA ("), std::string::npos);
}

TEST(SqlPrinter, SimpleInsertListsAllColumns) {
  SqlFixture F;
  std::string Sql = sqlFunction(F.Prog->getFunction("addInstructor"), *F.Src);
  EXPECT_NE(Sql.find("-- update addInstructor(:id INT, :name VARCHAR(255), "
                     ":pic BLOB)"),
            std::string::npos);
  EXPECT_NE(
      Sql.find("INSERT INTO Instructor (InstId, IName, IPic)"),
      std::string::npos);
  EXPECT_NE(Sql.find("VALUES (:id, :name, :pic)"), std::string::npos);
  EXPECT_NE(Sql.find("START TRANSACTION"), std::string::npos);
  EXPECT_NE(Sql.find("COMMIT"), std::string::npos);
}

TEST(SqlPrinter, DeleteUsesMySqlMultiTableForm) {
  SqlFixture F;
  std::string Sql =
      sqlFunction(F.Prog->getFunction("deleteInstructor"), *F.Src);
  EXPECT_NE(Sql.find("DELETE Instructor FROM Instructor"), std::string::npos);
  EXPECT_NE(Sql.find("WHERE InstId = :id"), std::string::npos);
}

TEST(SqlPrinter, QueryBecomesSelect) {
  SqlFixture F;
  std::string Sql =
      sqlFunction(F.Prog->getFunction("getInstructorInfo"), *F.Src);
  EXPECT_NE(Sql.find("SELECT IName, IPic"), std::string::npos);
  EXPECT_NE(Sql.find("FROM Instructor"), std::string::npos);
  EXPECT_NE(Sql.find("WHERE InstId = :id"), std::string::npos);
}

TEST(SqlPrinter, ChainInsertSharesFreshVariables) {
  // The Fig. 4 chain insert: both rows reference @fresh0 for the new PicId.
  ParseOutput Out = parseOrDie(overviewSource());
  ParseOutput Exp = parseOrDie(overviewExpected());
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &PNew = Exp.findProgram("CourseAppNew")->Prog;
  std::string Sql = sqlFunction(PNew.getFunction("addInstructor"), Tgt);
  EXPECT_NE(Sql.find("INSERT INTO Picture (PicId, Pic)"), std::string::npos);
  EXPECT_NE(Sql.find("INSERT INTO Instructor (InstId, IName, PicId)"),
            std::string::npos);
  // @fresh0 appears in both inserts.
  size_t First = Sql.find("@fresh0");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Sql.find("@fresh0", First + 1), std::string::npos);
}

TEST(SqlPrinter, NaturalJoinAndUpdateForms) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(k: int, v: int) table B(k: int, w: int) }
program P on S {
  update bump(k: int, nv: int) {
    update A join B set v = nv where w >= 3 and not (k != 1);
  }
  query q(k: int) { select v from A join B on A.k = B.k where A.k = k; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::string Upd = sqlFunction(P.getFunction("bump"), S);
  EXPECT_NE(Upd.find("UPDATE A NATURAL JOIN B"), std::string::npos);
  EXPECT_NE(Upd.find("SET v = :nv"), std::string::npos);
  EXPECT_NE(Upd.find("(w >= 3 AND NOT (k <> 1))"), std::string::npos);
  std::string Qry = sqlFunction(P.getFunction("q"), S);
  EXPECT_NE(Qry.find("FROM A JOIN B ON A.k = B.k"), std::string::npos);
}

TEST(SqlPrinter, InSubqueryRendered) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(x: int) table B(x: int) }
program P on S {
  query q() { select x from A where x in (select x from B); }
}
)");
  std::string Sql = sqlFunction(
      Out.findProgram("P")->Prog.getFunction("q"), *Out.findSchema("S"));
  EXPECT_NE(Sql.find("x IN (SELECT x FROM B)"), std::string::npos);
}

TEST(SqlPrinter, WholeProgramRendersEveryFunction) {
  SqlFixture F;
  std::string Sql = sqlProgram(*F.Prog, *F.Src);
  for (const Function &Fn : F.Prog->getFunctions())
    EXPECT_NE(Sql.find(Fn.getName()), std::string::npos);
}
