//===- tests/obs_test.cpp - Observability layer tests ------------------------===//
//
// Coverage for migrator_obs: span nesting in the Chrome trace export,
// histogram bucket/percentile math, registry thread safety, JSON
// well-formedness of both exporters, and the zero-cost contract when
// collection is disabled.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "relational/Table.h"
#include "relational/Value.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

using namespace migrator;
using namespace migrator::obs;

namespace {

/// RAII: enables metrics for one test and restores the disabled default,
/// resetting the (global) registry on both ends so tests are independent.
struct MetricsOn {
  MetricsOn() {
    registry().reset();
    setMetricsEnabled(true);
  }
  ~MetricsOn() {
    setMetricsEnabled(false);
    registry().reset();
  }
};

//===----------------------------------------------------------------------===//
// JSON helpers
//===----------------------------------------------------------------------===//

TEST(ObsJson, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(jsonEscape("plain"), "plain");
  EXPECT_EQ(jsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(jsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(jsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(jsonString("x"), "\"x\"");
}

TEST(ObsJson, NumbersAreAlwaysFinite) {
  EXPECT_EQ(jsonNumber(2.5), "2.5");
  EXPECT_EQ(jsonNumber(3), "3");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(jsonNumber(std::numeric_limits<double>::infinity()), "0");
}

TEST(ObsJson, ValidatorAcceptsWellFormedDocuments) {
  for (const char *Doc :
       {"{}", "[]", "null", "true", "42", "-1.5e3", "\"s\"",
        "{\"a\":[1,2,{\"b\":null}],\"c\":\"\\u0041\"}", "  [1, 2]  "})
    EXPECT_TRUE(validateJson(Doc)) << Doc;
}

TEST(ObsJson, ValidatorRejectsMalformedDocuments) {
  for (const char *Doc :
       {"", "{", "[1,]", "{\"a\":}", "{'a':1}", "01", "1 2", "nul",
        "\"unterminated", "{\"a\":1,}", "[1 2]"}) {
    std::string Error;
    EXPECT_FALSE(validateJson(Doc, &Error)) << Doc;
    EXPECT_FALSE(Error.empty()) << Doc;
  }
}

//===----------------------------------------------------------------------===//
// Histograms
//===----------------------------------------------------------------------===//

TEST(ObsHistogram, BucketBoundariesArePowersOfTwo) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(4), 3u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(~uint64_t(0)), 64u - 1u + 1u);
}

TEST(ObsHistogram, CountSumAndMean) {
  Histogram H;
  for (uint64_t V : {1, 2, 3, 10, 100})
    H.record(V);
  HistogramSnapshot S = H.snapshot();
  EXPECT_EQ(S.Count, 5u);
  EXPECT_EQ(S.Sum, 116u);
  EXPECT_DOUBLE_EQ(S.mean(), 116.0 / 5);
}

TEST(ObsHistogram, PercentilesLandInTheRightBucket) {
  Histogram H;
  // 90 small samples and 10 large ones: p50 must be small, p99 large.
  for (int I = 0; I < 90; ++I)
    H.record(4); // Bucket [4,8).
  for (int I = 0; I < 10; ++I)
    H.record(1024); // Bucket [1024,2048).
  HistogramSnapshot S = H.snapshot();
  double P50 = S.percentile(0.50);
  double P99 = S.percentile(0.99);
  EXPECT_GE(P50, 4.0);
  EXPECT_LT(P50, 8.0);
  EXPECT_GE(P99, 1024.0);
  EXPECT_LT(P99, 2048.0);
  // Quantiles are monotone.
  EXPECT_LE(S.percentile(0.1), S.percentile(0.9));
  // Empty histogram yields 0 everywhere.
  EXPECT_DOUBLE_EQ(HistogramSnapshot().percentile(0.99), 0.0);
}

TEST(ObsHistogram, SnapshotsSubtract) {
  Histogram H;
  H.record(5);
  H.record(7);
  HistogramSnapshot Before = H.snapshot();
  H.record(1000);
  HistogramSnapshot Delta = H.snapshot() - Before;
  EXPECT_EQ(Delta.Count, 1u);
  EXPECT_EQ(Delta.Sum, 1000u);
  EXPECT_EQ(Delta.Buckets[Histogram::bucketOf(1000)], 1u);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(ObsRegistry, InstrumentsAreNamedAndStable) {
  MetricsOn Guard;
  Counter &C1 = registry().counter("test.reg.counter");
  Counter &C2 = registry().counter("test.reg.counter");
  EXPECT_EQ(&C1, &C2); // Same name, same instrument.
  C1.add(3);
  EXPECT_EQ(C2.value(), 3u);

  registry().gauge("test.reg.gauge").set(2.5);
  registry().histogram("test.reg.hist").record(7);

  MetricsSnapshot S = registry().snapshot();
  EXPECT_EQ(S.Counters.at("test.reg.counter"), 3u);
  EXPECT_DOUBLE_EQ(S.Gauges.at("test.reg.gauge"), 2.5);
  EXPECT_EQ(S.Histograms.at("test.reg.hist").Count, 1u);
}

TEST(ObsRegistry, ManyThreadsIncrementOneCounter) {
  MetricsOn Guard;
  constexpr int NumThreads = 8;
  constexpr int PerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([] {
      // Each thread resolves the instrument itself: exercises concurrent
      // first-lookup as well as concurrent increments.
      Counter &C = registry().counter("test.threads.counter");
      Histogram &H = registry().histogram("test.threads.hist");
      for (int I = 0; I < PerThread; ++I) {
        C.add(1);
        H.record(static_cast<uint64_t>(I % 37));
      }
    });
  for (std::thread &T : Threads)
    T.join();
  MetricsSnapshot S = registry().snapshot();
  EXPECT_EQ(S.Counters.at("test.threads.counter"),
            uint64_t(NumThreads) * PerThread);
  EXPECT_EQ(S.Histograms.at("test.threads.hist").Count,
            uint64_t(NumThreads) * PerThread);
}

TEST(ObsRegistry, SnapshotDeltaIsolatesARegion) {
  MetricsOn Guard;
  registry().counter("test.delta.c").add(10);
  MetricsSnapshot Before = registry().snapshot();
  registry().counter("test.delta.c").add(5);
  registry().counter("test.delta.fresh").add(2);
  MetricsSnapshot Delta = registry().snapshot() - Before;
  EXPECT_EQ(Delta.Counters.at("test.delta.c"), 5u);
  EXPECT_EQ(Delta.Counters.at("test.delta.fresh"), 2u);
}

TEST(ObsRegistry, TextAndJsonDumpsAreWellFormed) {
  MetricsOn Guard;
  registry().counter("test.dump.counter").add(42);
  registry().gauge("test.dump.gauge").set(1.5);
  Histogram &H = registry().histogram("test.dump.hist");
  for (uint64_t V = 0; V < 100; ++V)
    H.record(V);
  MetricsSnapshot S = registry().snapshot();

  std::string Text = S.str();
  EXPECT_NE(Text.find("test.dump.counter"), std::string::npos);
  EXPECT_NE(Text.find("42"), std::string::npos);
  EXPECT_NE(Text.find("p95"), std::string::npos);
  EXPECT_NE(Text.find("p99"), std::string::npos);

  std::string Json = S.json();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"test.dump.counter\":42"), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Json.find("\"p95\""), std::string::npos);
}

TEST(ObsRegistry, MacrosAreInertWhenDisabled) {
  registry().reset();
  ASSERT_FALSE(metricsEnabled()); // The process-wide default.
  MIGRATOR_COUNTER_ADD("test.disabled.counter", 1);
  MIGRATOR_HISTOGRAM_RECORD("test.disabled.hist", 5);
  MIGRATOR_GAUGE_SET("test.disabled.gauge", 1.0);
  { MIGRATOR_LATENCY_SCOPE("test.disabled.lat"); }
  MetricsSnapshot S = registry().snapshot();
  EXPECT_EQ(S.Counters.count("test.disabled.counter"), 0u);
  EXPECT_EQ(S.Histograms.count("test.disabled.hist"), 0u);
  EXPECT_EQ(S.Gauges.count("test.disabled.gauge"), 0u);
}

TEST(ObsRegistry, LatencyScopeRecordsMicroseconds) {
  MetricsOn Guard;
  {
    MIGRATOR_LATENCY_SCOPE("test.lat.us");
  }
  MetricsSnapshot S = registry().snapshot();
  ASSERT_EQ(S.Histograms.count("test.lat.us"), 1u);
  EXPECT_EQ(S.Histograms.at("test.lat.us").Count, 1u);
}

//===----------------------------------------------------------------------===//
// Tracing
//===----------------------------------------------------------------------===//

TEST(ObsTrace, DisabledByDefaultAndScopesAreInactive) {
  ASSERT_FALSE(tracingEnabled());
  {
    MIGRATOR_TRACE_SCOPE_NAMED(Span, "test.inactive");
    EXPECT_FALSE(Span.active());
    Span.arg("k", 1); // Must be a safe no-op.
    MIGRATOR_TRACE_INSTANT("test.inactive.instant");
  }
  EXPECT_TRUE(traceEvents().empty());
}

TEST(ObsTrace, SpansNestByContainment) {
  startTracing();
  {
    MIGRATOR_TRACE_SCOPE_NAMED(Outer, "test.outer");
    EXPECT_TRUE(Outer.active());
    {
      MIGRATOR_TRACE_SCOPE("test.inner");
      MIGRATOR_TRACE_INSTANT("test.mark");
    }
  }
  stopTracing();

  std::vector<TraceEvent> Events = traceEvents();
  ASSERT_EQ(Events.size(), 3u);

  auto Find = [&](const std::string &Name) -> const TraceEvent & {
    auto It = std::find_if(Events.begin(), Events.end(),
                           [&](const TraceEvent &E) { return E.Name == Name; });
    EXPECT_NE(It, Events.end()) << Name;
    return *It;
  };
  const TraceEvent &Outer = Find("test.outer");
  const TraceEvent &Inner = Find("test.inner");
  const TraceEvent &Mark = Find("test.mark");

  // Chrome stacks spans by [ts, ts+dur) containment on one thread.
  EXPECT_EQ(Outer.Phase, 'X');
  EXPECT_EQ(Inner.Phase, 'X');
  EXPECT_EQ(Mark.Phase, 'i');
  EXPECT_EQ(Outer.Tid, Inner.Tid);
  EXPECT_LE(Outer.TsUs, Inner.TsUs);
  EXPECT_GE(Outer.TsUs + Outer.DurUs, Inner.TsUs + Inner.DurUs);
  EXPECT_GE(Mark.TsUs, Inner.TsUs);
}

TEST(ObsTrace, ArgsAreRenderedIntoTheJson) {
  startTracing();
  {
    MIGRATOR_TRACE_SCOPE_NAMED(Span, "test.args");
    Span.arg("count", uint64_t(7))
        .arg("label", "hello \"world\"")
        .arg("ratio", 0.5)
        .arg("flag", true);
  }
  stopTracing();

  std::string Json = traceJson();
  std::string Error;
  ASSERT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"count\":7"), std::string::npos);
  EXPECT_NE(Json.find("hello \\\"world\\\""), std::string::npos);
  EXPECT_NE(Json.find("\"flag\":true"), std::string::npos);
}

TEST(ObsTrace, ExportIsWellFormedChromeTraceJson) {
  startTracing();
  for (int I = 0; I < 5; ++I) {
    MIGRATOR_TRACE_SCOPE("test.export.span");
  }
  stopTracing();

  std::string Json = traceJson();
  std::string Error;
  ASSERT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(Json.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);

  // A restart clears the buffer.
  startTracing();
  stopTracing();
  EXPECT_TRUE(traceEvents().empty());
  EXPECT_TRUE(validateJson(traceJson(), &Error)) << Error;
}

//===----------------------------------------------------------------------===//
// State-engine counters (docs/OBSERVABILITY.md)
//===----------------------------------------------------------------------===//

/// Throw-free counter lookup: 0 when the counter was never touched.
uint64_t counterOr0(const MetricsSnapshot &S, const std::string &Name) {
  auto It = S.Counters.find(Name);
  return It == S.Counters.end() ? 0 : It->second;
}

TEST(ObsStateEngine, CowCountersTrackSharesAndClones) {
  MetricsOn Guard;
  setTableCowEnabled(true);

  TableSchema TS("T", {{"a", ValueType::Int}});
  Table T(TS);
  T.insertRow({Value::makeInt(1)});

  // One COW copy: a share, no clone yet.
  Table C = T;
  MetricsSnapshot S1 = registry().snapshot();
  EXPECT_GE(counterOr0(S1, "table.cow_shares"), 1u);
  EXPECT_EQ(counterOr0(S1, "table.cow_clones"), 0u);

  // First mutation of the shared copy: exactly one clone; further mutations
  // with exclusive ownership add none.
  C.insertRow({Value::makeInt(2)});
  C.insertRow({Value::makeInt(3)});
  MetricsSnapshot S2 = registry().snapshot();
  EXPECT_EQ(counterOr0(S2, "table.cow_clones"), 1u);

  // The deep-copy oracle records neither.
  setTableCowEnabled(false);
  Table D = T;
  D.insertRow({Value::makeInt(4)});
  MetricsSnapshot S3 = registry().snapshot();
  EXPECT_EQ(counterOr0(S3, "table.cow_shares"), counterOr0(S2, "table.cow_shares"));
  EXPECT_EQ(counterOr0(S3, "table.cow_clones"), 1u);
  setTableCowEnabled(true);
}

TEST(ObsStateEngine, CorpusCountersTrackReplaysAndKills) {
  MetricsOn Guard;
  // MathHotSpot is the smallest benchmark on which the corpus screen is
  // known to fire (deterministic mode, bias off): the search wades through
  // failing candidates, the corpus accumulates their killer sequences, and
  // at least one later candidate dies on replay before full enumeration.
  Benchmark B = loadBenchmark("MathHotSpot");
  SynthOptions Opts;
  Opts.Deterministic = true;
  Opts.Solver.BiasFirstAlternatives = false;
  SynthResult Res = synthesize(B.Source, B.Prog, B.Target, Opts);
  ASSERT_TRUE(Res.succeeded());

  MetricsSnapshot S = registry().snapshot();
  EXPECT_GT(counterOr0(S, "tester.corpus_replays"), 0u);
  EXPECT_GT(counterOr0(S, "tester.corpus_kills"), 0u);
  // Every kill was established by at least one replay.
  EXPECT_GE(counterOr0(S, "tester.corpus_replays"),
            counterOr0(S, "tester.corpus_kills"));
}

TEST(ObsTrace, EventsFromMultipleThreadsGetDistinctTids) {
  startTracing();
  std::thread A([] { MIGRATOR_TRACE_SCOPE("test.tid.a"); });
  std::thread B([] { MIGRATOR_TRACE_SCOPE("test.tid.b"); });
  A.join();
  B.join();
  stopTracing();

  std::vector<TraceEvent> Events = traceEvents();
  ASSERT_EQ(Events.size(), 2u);
  EXPECT_NE(Events[0].Tid, Events[1].Tid);
}

} // namespace
