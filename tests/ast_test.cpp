//===- tests/ast_test.cpp - AST, join chains, analysis tests ----------------===//

#include "ast/Analysis.h"
#include "ast/Program.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

Schema courseTarget() {
  Schema S("New");
  S.addTable(TableSchema("Class", {{"ClassId", ValueType::Int},
                                   {"InstId", ValueType::Int},
                                   {"TaId", ValueType::Int}}));
  S.addTable(TableSchema("Instructor", {{"InstId", ValueType::Int},
                                        {"IName", ValueType::String},
                                        {"PicId", ValueType::Int}}));
  S.addTable(TableSchema("TA", {{"TaId", ValueType::Int},
                                {"TName", ValueType::String},
                                {"PicId", ValueType::Int}}));
  S.addTable(TableSchema("Picture", {{"PicId", ValueType::Int},
                                     {"Pic", ValueType::Binary}}));
  return S;
}

} // namespace

//===----------------------------------------------------------------------===//
// JoinChain
//===----------------------------------------------------------------------===//

TEST(JoinChainTest, SingleTableChain) {
  Schema S = courseTarget();
  JoinChain C = JoinChain::table("Picture");
  EXPECT_TRUE(C.isSingleTable());
  EXPECT_TRUE(C.containsTable("Picture"));
  EXPECT_FALSE(C.containsTable("TA"));
  EXPECT_EQ(C.allAttrs(S).size(), 2u);
  // Every class is a singleton for a single table.
  EXPECT_EQ(C.attrClasses(S).size(), 2u);
}

TEST(JoinChainTest, NaturalChainGroupsSameNamedAttrs) {
  Schema S = courseTarget();
  JoinChain C = JoinChain::natural({"Picture", "TA"});
  std::vector<std::vector<QualifiedAttr>> Classes = C.attrClasses(S);
  // Attributes: Picture{PicId, Pic}, TA{TaId, TName, PicId} -> classes:
  // {P.PicId, TA.PicId}, {Pic}, {TaId}, {TName}.
  ASSERT_EQ(Classes.size(), 4u);
  bool FoundShared = false;
  for (const auto &Cl : Classes)
    if (Cl.size() == 2) {
      FoundShared = true;
      EXPECT_EQ(Cl[0].Attr, "PicId");
      EXPECT_EQ(Cl[1].Attr, "PicId");
    }
  EXPECT_TRUE(FoundShared);
}

TEST(JoinChainTest, FourTableNaturalChainLinksTransitively) {
  Schema S = courseTarget();
  JoinChain C = JoinChain::natural({"Picture", "TA", "Class", "Instructor"});
  // PicId spans Picture, TA, Instructor; TaId spans TA, Class; InstId spans
  // Class, Instructor.
  std::vector<std::vector<QualifiedAttr>> Classes = C.attrClasses(S);
  size_t Sizes[4] = {0, 0, 0, 0};
  for (const auto &Cl : Classes) {
    ASSERT_LE(Cl.size(), 3u);
    ++Sizes[Cl.size()];
  }
  EXPECT_EQ(Sizes[3], 1u); // PicId.
  EXPECT_EQ(Sizes[2], 2u); // TaId, InstId.
  // Singletons: ClassId, IName, TName, Pic.
  EXPECT_EQ(Sizes[1], 4u);
}

TEST(JoinChainTest, ExplicitJoinUsesDeclaredEqualitiesOnly) {
  Schema S;
  S.addTable(TableSchema("A", {{"x", ValueType::Int}, {"k", ValueType::Int}}));
  S.addTable(TableSchema("B", {{"x", ValueType::Int}, {"k", ValueType::Int}}));
  JoinChain C = JoinChain::explicitJoin(
      {"A", "B"}, {{AttrRef("A", "k"), AttrRef("B", "k")}});
  std::vector<std::vector<QualifiedAttr>> Classes = C.attrClasses(S);
  // Only A.k ~ B.k; A.x and B.x stay separate.
  ASSERT_EQ(Classes.size(), 3u);
  size_t Pairs = 0;
  for (const auto &Cl : Classes)
    if (Cl.size() == 2)
      ++Pairs;
  EXPECT_EQ(Pairs, 1u);
}

TEST(JoinChainTest, ResolveUnqualifiedPicksFirstDeclaringTable) {
  Schema S = courseTarget();
  JoinChain C = JoinChain::natural({"Picture", "TA"});
  std::optional<QualifiedAttr> QA = C.resolve(AttrRef::unqualified("PicId"), S);
  ASSERT_TRUE(QA.has_value());
  EXPECT_EQ(QA->Table, "Picture");
  EXPECT_FALSE(C.resolve(AttrRef::unqualified("InstId"), S).has_value());
  EXPECT_FALSE(C.resolve(AttrRef("Class", "TaId"), S).has_value());
  std::optional<QualifiedAttr> Q2 = C.resolve(AttrRef("TA", "PicId"), S);
  ASSERT_TRUE(Q2.has_value());
  EXPECT_EQ(Q2->Table, "TA");
}

TEST(JoinChainTest, StrRendersJoins) {
  EXPECT_EQ(JoinChain::natural({"Picture", "TA"}).str(), "Picture join TA");
  JoinChain E = JoinChain::explicitJoin(
      {"A", "B"}, {{AttrRef("A", "k"), AttrRef("B", "k")}});
  EXPECT_EQ(E.str(), "A join B on A.k = B.k");
}

//===----------------------------------------------------------------------===//
// Expr / Stmt
//===----------------------------------------------------------------------===//

TEST(ExprTest, EvalCmpOpOnValues) {
  Value A = Value::makeInt(1), B = Value::makeInt(2);
  EXPECT_TRUE(evalCmpOp(CmpOp::Lt, A, B));
  EXPECT_FALSE(evalCmpOp(CmpOp::Gt, A, B));
  EXPECT_TRUE(evalCmpOp(CmpOp::Le, A, A));
  EXPECT_TRUE(evalCmpOp(CmpOp::Ge, B, B));
  EXPECT_TRUE(evalCmpOp(CmpOp::Ne, A, B));
  EXPECT_FALSE(evalCmpOp(CmpOp::Eq, A, B));
  // Heterogeneous kinds: only != holds.
  EXPECT_FALSE(evalCmpOp(CmpOp::Eq, A, Value::makeString("1")));
  EXPECT_TRUE(evalCmpOp(CmpOp::Ne, A, Value::makeString("1")));
  EXPECT_FALSE(evalCmpOp(CmpOp::Lt, A, Value::makeString("1")));
  // UIDs never equal concrete values.
  EXPECT_FALSE(evalCmpOp(CmpOp::Eq, Value::makeUid(1), Value::makeInt(1)));
}

TEST(ExprTest, CloneIsDeepAndEqual) {
  PredPtr P = makeAnd(
      makeCmp(AttrRef::unqualified("a"), CmpOp::Eq, Operand::param("x")),
      makeNot(makeCmp(AttrRef::unqualified("b"), CmpOp::Lt,
                      Operand::constant(Value::makeInt(3)))));
  PredPtr Q = P->clone();
  EXPECT_TRUE(P->equals(*Q));
  EXPECT_NE(P.get(), Q.get());
  EXPECT_EQ(P->str(), "(a = x and not (b < 3))");
}

TEST(ExprTest, QueryGetChainReachesLeaf) {
  QueryPtr Q = makeSelect({AttrRef::unqualified("IName")},
                          JoinChain::natural({"Picture", "Instructor"}),
                          makeCmp(AttrRef::unqualified("InstId"), CmpOp::Eq,
                                  Operand::param("id")));
  EXPECT_EQ(Q->getChain().str(), "Picture join Instructor");
  EXPECT_EQ(Q->str(),
            "select IName from Picture join Instructor where InstId = id");
}

TEST(StmtTest, PrintingAndEquality) {
  InsertStmt I(JoinChain::table("T"),
               {{AttrRef::unqualified("a"), Operand::param("x")}});
  EXPECT_EQ(I.str(), "insert into T values (a: x);");
  StmtPtr C = I.clone();
  EXPECT_TRUE(I.equals(*C));

  DeleteStmt D({"T"}, JoinChain::table("T"),
               makeCmp(AttrRef::unqualified("a"), CmpOp::Eq,
                       Operand::constant(Value::makeInt(1))));
  EXPECT_EQ(D.str(), "delete [T] from T where a = 1;");
  EXPECT_FALSE(D.equals(I));

  UpdateStmt U(JoinChain::table("T"), nullptr, AttrRef::unqualified("a"),
               Operand::constant(Value::makeInt(5)));
  EXPECT_EQ(U.str(), "update T set a = 5;");
  EXPECT_TRUE(U.equals(*U.clone()));
}

TEST(ProgramTest, LookupAndClone) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Program &P = Out.findProgram("CourseApp")->Prog;
  EXPECT_EQ(P.getNumFunctions(), 6u);
  EXPECT_NE(P.findFunction("addTA"), nullptr);
  EXPECT_EQ(P.findFunction("nope"), nullptr);
  EXPECT_EQ(P.updateFunctionNames().size(), 4u);
  EXPECT_EQ(P.queryFunctionNames().size(), 2u);
  Program C = P.clone();
  EXPECT_TRUE(C.equals(P));
}

//===----------------------------------------------------------------------===//
// Analysis
//===----------------------------------------------------------------------===//

TEST(AnalysisTest, CollectQueriedAttrsOfOverview) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  std::set<QualifiedAttr> Queried = collectQueriedAttrs(P, S);
  // Projections: IName, IPic, TName, TPic; predicates: InstId, TaId.
  EXPECT_EQ(Queried.size(), 6u);
  EXPECT_TRUE(Queried.count({"Instructor", "IPic"}));
  EXPECT_TRUE(Queried.count({"TA", "TaId"}));
  EXPECT_FALSE(Queried.count({"Class", "ClassId"}));
}

TEST(AnalysisTest, ValidateAcceptsOverview) {
  ParseOutput Out = parseOrDie(overviewSource());
  EXPECT_FALSE(validateProgram(Out.findProgram("CourseApp")->Prog,
                               *Out.findSchema("CourseDB"))
                   .has_value());
}

TEST(AnalysisTest, ValidateRejectsUnknownTable) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int) }
program P on S {
  query q(x: int) { select a from Nope where a = x; }
}
)");
  std::optional<std::string> Diag =
      validateProgram(Out.findProgram("P")->Prog, *Out.findSchema("S"));
  ASSERT_TRUE(Diag.has_value());
  EXPECT_NE(Diag->find("Nope"), std::string::npos);
}

TEST(AnalysisTest, ValidateRejectsTypeMismatchedConstant) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int) }
program P on S {
  query q() { select a from T where a = "x"; }
}
)");
  EXPECT_TRUE(validateProgram(Out.findProgram("P")->Prog,
                              *Out.findSchema("S"))
                  .has_value());
}

TEST(AnalysisTest, ValidateRejectsDeleteTargetOutsideChain) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int) table U(a: int) }
program P on S {
  update d(x: int) { delete [U] from T where a = x; }
}
)");
  EXPECT_TRUE(validateProgram(Out.findProgram("P")->Prog,
                              *Out.findSchema("S"))
                  .has_value());
}

TEST(AnalysisTest, ReadWriteSetsOfCrudFunctions) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Program &P = Out.findProgram("CourseApp")->Prog;
  ReadWriteSets Add = collectReadWriteSets(P.getFunction("addInstructor"));
  EXPECT_TRUE(Add.Writes.count("Instructor"));
  EXPECT_TRUE(Add.Reads.empty());
  ReadWriteSets Del = collectReadWriteSets(P.getFunction("deleteInstructor"));
  EXPECT_TRUE(Del.Writes.count("Instructor"));
  EXPECT_TRUE(Del.Reads.count("Instructor"));
  ReadWriteSets Get = collectReadWriteSets(P.getFunction("getTAInfo"));
  EXPECT_TRUE(Get.Writes.empty());
  EXPECT_TRUE(Get.Reads.count("TA"));
}
