//===- tests/simplify_test.cpp - Program normalization tests ------------------===//

#include "ast/Simplify.h"
#include "synth/RandomWorkload.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

AttrRef A(const char *Name) { return AttrRef::unqualified(Name); }

} // namespace

TEST(SimplifyPred, SelfComparisonsFold) {
  EXPECT_EQ(simplifyPred(*makeAttrCmp(A("x"), CmpOp::Eq, A("x"))).Verdict,
            PredVerdict::AlwaysTrue);
  EXPECT_EQ(simplifyPred(*makeAttrCmp(A("x"), CmpOp::Le, A("x"))).Verdict,
            PredVerdict::AlwaysTrue);
  EXPECT_EQ(simplifyPred(*makeAttrCmp(A("x"), CmpOp::Ne, A("x"))).Verdict,
            PredVerdict::AlwaysFalse);
  EXPECT_EQ(simplifyPred(*makeAttrCmp(A("x"), CmpOp::Lt, A("x"))).Verdict,
            PredVerdict::AlwaysFalse);
  // Different attributes do not fold.
  EXPECT_EQ(simplifyPred(*makeAttrCmp(A("x"), CmpOp::Eq, A("y"))).Verdict,
            PredVerdict::Simplified);
}

TEST(SimplifyPred, ConnectiveUnitsAndAbsorption) {
  PredPtr True = makeAttrCmp(A("x"), CmpOp::Eq, A("x"));
  PredPtr False = makeAttrCmp(A("x"), CmpOp::Ne, A("x"));
  PredPtr P = makeCmp(A("a"), CmpOp::Eq, Operand::param("v"));

  // true ∧ p → p.
  SimplifiedPred S = simplifyPred(*makeAnd(True->clone(), P->clone()));
  ASSERT_EQ(S.Verdict, PredVerdict::Simplified);
  EXPECT_TRUE(S.P->equals(*P));
  // false ∧ p → false.
  EXPECT_EQ(simplifyPred(*makeAnd(False->clone(), P->clone())).Verdict,
            PredVerdict::AlwaysFalse);
  // false ∨ p → p.
  S = simplifyPred(*makeOr(False->clone(), P->clone()));
  ASSERT_EQ(S.Verdict, PredVerdict::Simplified);
  EXPECT_TRUE(S.P->equals(*P));
  // true ∨ p → true.
  EXPECT_EQ(simplifyPred(*makeOr(True->clone(), P->clone())).Verdict,
            PredVerdict::AlwaysTrue);
  // p ∧ p → p.
  S = simplifyPred(*makeAnd(P->clone(), P->clone()));
  ASSERT_EQ(S.Verdict, PredVerdict::Simplified);
  EXPECT_TRUE(S.P->equals(*P));
}

TEST(SimplifyPred, NegationRules) {
  PredPtr P = makeCmp(A("a"), CmpOp::Lt, Operand::constant(Value::makeInt(3)));
  // ¬¬p → p.
  SimplifiedPred S = simplifyPred(*makeNot(makeNot(P->clone())));
  ASSERT_EQ(S.Verdict, PredVerdict::Simplified);
  EXPECT_TRUE(S.P->equals(*P));
  // ¬true → false.
  EXPECT_EQ(
      simplifyPred(*makeNot(makeAttrCmp(A("x"), CmpOp::Eq, A("x")))).Verdict,
      PredVerdict::AlwaysFalse);
  // ¬false → true.
  EXPECT_EQ(
      simplifyPred(*makeNot(makeAttrCmp(A("x"), CmpOp::Ne, A("x")))).Verdict,
      PredVerdict::AlwaysTrue);
}

TEST(SimplifyQuery, TrueFiltersDropFalseFiltersStay) {
  JoinChain T = JoinChain::table("T");
  QueryPtr TrueFilter = makeSelect(
      {A("a")}, T, makeAttrCmp(A("a"), CmpOp::Eq, A("a")));
  QueryPtr Simp = simplifyQuery(*TrueFilter);
  EXPECT_EQ(Simp->str(), "select a from T");

  QueryPtr FalseFilter = makeSelect(
      {A("a")}, T, makeAttrCmp(A("a"), CmpOp::Ne, A("a")));
  QueryPtr Simp2 = simplifyQuery(*FalseFilter);
  EXPECT_EQ(Simp2->str(), "select a from T where a != a");
}

TEST(SimplifyProgram, PreservesSemanticsOnRandomWorkloads) {
  ParseOutput Out = parseOrDie(R"(
schema S { table T(a: int, b: int) }
program P on S {
  update add(a: int, b: int) { insert into T values (a: a, b: b); }
  update clean(x: int) { delete from T where a = x and b = b; }
  update touch(x: int, v: int) {
    update T set b = v where not (not (a = x)) or a != a;
  }
  query q(x: int) { select b from T where a = x and a = a; }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  Program Simp = simplifyProgram(P);

  // The simplifications actually fired.
  std::string Str = Simp.str();
  EXPECT_EQ(Str.find("a = a"), std::string::npos);
  EXPECT_EQ(Str.find("not"), std::string::npos);
  EXPECT_EQ(Str.find("b = b"), std::string::npos);

  // And semantics are preserved.
  EXPECT_FALSE(findRandomCounterexample(P, S, Simp, S, 200, 7).has_value());
}

TEST(SimplifyProgram, IdentityOnAlreadySimplePrograms) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Program &P = Out.findProgram("CourseApp")->Prog;
  EXPECT_TRUE(simplifyProgram(P).equals(P));
}

//===----------------------------------------------------------------------===//
// RandomWorkload API
//===----------------------------------------------------------------------===//

TEST(RandomWorkloadApi, SequencesAreWellFormed) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  Rng R(99);
  for (int I = 0; I < 100; ++I) {
    InvocationSeq Seq = randomSequence(P, R);
    ASSERT_FALSE(Seq.empty());
    EXPECT_TRUE(P.getFunction(Seq.back().Func).isQuery());
    for (size_t K = 0; K + 1 < Seq.size(); ++K)
      EXPECT_TRUE(P.getFunction(Seq[K].Func).isUpdate());
    EXPECT_TRUE(runSequence(P, S, Seq).has_value());
  }
}

TEST(RandomWorkloadApi, DetectsInequivalentPrograms) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  // A broken variant: getTAInfo projects the instructor name instead.
  ParseOutput Bad = parseOrDie(R"(
program Mut on CourseDB {
  update addInstructor(id: int, name: string, pic: binary) {
    insert into Instructor values (InstId: id, IName: name, IPic: pic);
  }
  update deleteInstructor(id: int) {
    delete [Instructor] from Instructor where InstId = id;
  }
  query getInstructorInfo(id: int) {
    select IName, IPic from Instructor where InstId = id;
  }
  update addTA(id: int, name: string, pic: binary) {
    insert into TA values (TaId: id, TName: name, TPic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from TA where TaId = id;
  }
  query getTAInfo(id: int) {
    select TName, TPic from TA where TaId != id;
  }
}
)");
  std::optional<InvocationSeq> Cex = findRandomCounterexample(
      P, S, Bad.findProgram("Mut")->Prog, S, 500, 3);
  ASSERT_TRUE(Cex.has_value());
  EXPECT_EQ(Cex->back().Func, "getTAInfo");
}

TEST(RandomWorkloadApi, SelfComparisonFindsNoCounterexample) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  EXPECT_FALSE(
      findRandomCounterexample(P, S, P.clone(), S, 100, 11).has_value());
}
