//===- tests/schemadiff_test.cpp - Schema diff tests ---------------------------===//

#include "benchsuite/Benchmark.h"
#include "relational/SchemaDiff.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

bool hasChange(const std::vector<SchemaChange> &Cs, SchemaChange::Kind K,
               const std::string &DetailFragment) {
  for (const SchemaChange &C : Cs)
    if (C.TheKind == K && C.Detail.find(DetailFragment) != std::string::npos)
      return true;
  return false;
}

size_t countKind(const std::vector<SchemaChange> &Cs, SchemaChange::Kind K) {
  size_t N = 0;
  for (const SchemaChange &C : Cs)
    N += C.TheKind == K;
  return N;
}

} // namespace

TEST(SchemaDiff, IdenticalSchemasProduceNoChanges) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &S = *Out.findSchema("CourseDB");
  EXPECT_TRUE(diffSchemas(S, S).empty());
}

TEST(SchemaDiff, OverviewRefactoringIsClassified) {
  ParseOutput Out = parseOrDie(overviewSource());
  std::vector<SchemaChange> Cs =
      diffSchemas(*Out.findSchema("CourseDB"), *Out.findSchema("CourseDBNew"));
  EXPECT_TRUE(hasChange(Cs, SchemaChange::Kind::TableAdded, "Picture"));
  // IPic/TPic leave their tables; PicId columns arrive.
  EXPECT_TRUE(hasChange(Cs, SchemaChange::Kind::AttrRemoved,
                        "Instructor.IPic") ||
              hasChange(Cs, SchemaChange::Kind::AttrRenamed,
                        "Instructor.IPic"));
  EXPECT_TRUE(hasChange(Cs, SchemaChange::Kind::AttrAdded, "PicId") ||
              hasChange(Cs, SchemaChange::Kind::AttrRenamed, "PicId"));
}

TEST(SchemaDiff, DetectsAttributeRename) {
  Schema A("A"), B("B");
  A.addTable(TableSchema("T", {{"taskTitle", ValueType::String}}));
  B.addTable(TableSchema("T", {{"taskTitleText", ValueType::String}}));
  std::vector<SchemaChange> Cs = diffSchemas(A, B);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].TheKind, SchemaChange::Kind::AttrRenamed);
  EXPECT_EQ(Cs[0].Detail, "T.taskTitle -> T.taskTitleText");
}

TEST(SchemaDiff, DissimilarNamesAreRemoveAndAdd) {
  Schema A("A"), B("B");
  A.addTable(TableSchema("T", {{"x", ValueType::String}}));
  B.addTable(TableSchema("T", {{"completelyDifferent", ValueType::String}}));
  std::vector<SchemaChange> Cs = diffSchemas(A, B);
  EXPECT_EQ(countKind(Cs, SchemaChange::Kind::AttrRemoved), 1u);
  EXPECT_EQ(countKind(Cs, SchemaChange::Kind::AttrAdded), 1u);
}

TEST(SchemaDiff, DetectsMoveAcrossTables) {
  Schema A("A"), B("B");
  A.addTable(TableSchema("Emp", {{"empId", ValueType::Int},
                                 {"roomNo", ValueType::Int}}));
  A.addTable(TableSchema("Office", {{"empId", ValueType::Int}}));
  B.addTable(TableSchema("Emp", {{"empId", ValueType::Int}}));
  B.addTable(TableSchema("Office", {{"empId", ValueType::Int},
                                    {"roomNo", ValueType::Int}}));
  std::vector<SchemaChange> Cs = diffSchemas(A, B);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].TheKind, SchemaChange::Kind::AttrMoved);
  EXPECT_EQ(Cs[0].Detail, "Emp.roomNo -> Office.roomNo");
}

TEST(SchemaDiff, DetectsTableRenameByStructure) {
  Schema A("A"), B("B");
  A.addTable(TableSchema("users", {{"usersId", ValueType::Int},
                                   {"name", ValueType::String}}));
  B.addTable(TableSchema("usersTbl", {{"usersId", ValueType::Int},
                                      {"name", ValueType::String}}));
  std::vector<SchemaChange> Cs = diffSchemas(A, B);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].TheKind, SchemaChange::Kind::TableRenamed);
  EXPECT_EQ(Cs[0].Detail, "users -> usersTbl");
}

TEST(SchemaDiff, DetectsTypeChange) {
  Schema A("A"), B("B");
  A.addTable(TableSchema("T", {{"v", ValueType::Int}}));
  B.addTable(TableSchema("T", {{"v", ValueType::String}}));
  std::vector<SchemaChange> Cs = diffSchemas(A, B);
  ASSERT_EQ(Cs.size(), 1u);
  EXPECT_EQ(Cs[0].TheKind, SchemaChange::Kind::AttrTypeChanged);
  EXPECT_NE(Cs[0].str().find("int -> string"), std::string::npos);
}

TEST(SchemaDiff, GeneratedBenchmarksMatchTheirDescriptions) {
  // The generator's refactorings must be visible in the diff.
  {
    Benchmark B = loadBenchmark("MathHotSpot"); // Rename tables, move attrs.
    std::vector<SchemaChange> Cs = diffSchemas(B.Source, B.Target);
    EXPECT_EQ(countKind(Cs, SchemaChange::Kind::TableRenamed), 2u);
    EXPECT_GE(countKind(Cs, SchemaChange::Kind::AttrMoved), 1u);
  }
  {
    Benchmark B = loadBenchmark("probable-engine"); // Merge tables.
    std::vector<SchemaChange> Cs = diffSchemas(B.Source, B.Target);
    EXPECT_EQ(countKind(Cs, SchemaChange::Kind::TableRemoved), 1u);
    EXPECT_GE(countKind(Cs, SchemaChange::Kind::AttrMoved), 1u);
  }
  {
    Benchmark B = loadBenchmark("coachup"); // Split tables (shared).
    std::vector<SchemaChange> Cs = diffSchemas(B.Source, B.Target);
    EXPECT_EQ(countKind(Cs, SchemaChange::Kind::TableAdded), 1u);
  }
}
