//===- tests/lockprof_test.cpp - Concurrency-observability tests -------------===//
//
// Coverage for the concurrency-observability layer: ProfiledMutex wait/hold
// accounting (LockProfile*), sharded counter merging under concurrent flush
// (MetricShard*), the per-thread flight recorder (Flight*), and the thread
// pool's per-worker lanes and counters (WorkerLane*). scripts/check.sh runs
// these suites under ThreadSanitizer as well.
//
//===----------------------------------------------------------------------===//

#include "obs/Flight.h"
#include "obs/Json.h"
#include "obs/LockProfile.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fcntl.h>
#include <fstream>
#include <sstream>
#include <thread>
#include <unistd.h>

using namespace migrator;
using namespace migrator::obs;

namespace {

/// Scoped lock-profiling enable; restores the default (off) on exit so
/// suites stay independent of execution order.
struct LockProfilingOn {
  LockProfilingOn() { setLockProfilingEnabled(true); }
  ~LockProfilingOn() { setLockProfilingEnabled(false); }
};

struct MetricsOn {
  MetricsOn() { setMetricsEnabled(true); }
  ~MetricsOn() { setMetricsEnabled(false); }
};

struct FlightOn {
  FlightOn() {
    flightClear();
    setFlightRecorderEnabled(true);
  }
  ~FlightOn() { setFlightRecorderEnabled(false); }
};

/// The calling thread's flight lane, or nullptr.
const FlightLane *laneFor(const std::vector<FlightLane> &Lanes,
                          uint32_t Tid) {
  for (const FlightLane &L : Lanes)
    if (L.Tid == Tid)
      return &L;
  return nullptr;
}

//===----------------------------------------------------------------------===//
// LockProfile: the instrumented mutex wrappers
//===----------------------------------------------------------------------===//

TEST(LockProfile, UncontendedAcquisitionsAreCounted) {
  static LockSite Site("test.lock.uncontended");
  Site.reset();
  LockProfilingOn Guard;
  ProfiledMutex M(Site);
  for (int I = 0; I < 10; ++I) {
    std::lock_guard<ProfiledMutex> Lock(M);
  }
  EXPECT_EQ(Site.acquisitions(), 10u);
  EXPECT_EQ(Site.contended(), 0u);
  // Every exclusive hold lands one histogram sample, however short.
  EXPECT_EQ(Site.holdHistogram().snapshot().Count, 10u);
  EXPECT_EQ(Site.waitHistogram().snapshot().Count, 10u);
}

TEST(LockProfile, HoldTimeIsAttributed) {
  static LockSite Site("test.lock.hold");
  Site.reset();
  LockProfilingOn Guard;
  ProfiledMutex M(Site);
  {
    std::lock_guard<ProfiledMutex> Lock(M);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // The 5ms sleep happened under the lock: >= 1ms of hold, ~0 wait.
  EXPECT_GE(Site.holdNs(), 1000000u);
  EXPECT_LT(Site.waitNs(), Site.holdNs());
}

TEST(LockProfile, ContendedWaitIsAttributed) {
  static LockSite Site("test.lock.contended");
  Site.reset();
  LockProfilingOn Guard;
  ProfiledMutex M(Site);
  std::atomic<bool> Held{false};
  std::thread Holder([&] {
    std::lock_guard<ProfiledMutex> Lock(M);
    Held.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  });
  while (!Held.load())
    std::this_thread::yield();
  {
    // The holder sleeps ~10ms with the lock: this acquisition must fail
    // its try_lock and attribute the wait.
    std::lock_guard<ProfiledMutex> Lock(M);
  }
  Holder.join();
  EXPECT_EQ(Site.acquisitions(), 2u);
  EXPECT_EQ(Site.contended(), 1u);
  EXPECT_GE(Site.waitNs(), 1000000u);
}

TEST(LockProfile, DisabledPathRecordsNothing) {
  static LockSite Site("test.lock.disabled");
  Site.reset();
  ASSERT_FALSE(lockProfilingEnabled());
  ProfiledMutex M(Site);
  for (int I = 0; I < 100; ++I) {
    std::lock_guard<ProfiledMutex> Lock(M);
  }
  EXPECT_EQ(Site.acquisitions(), 0u);
  EXPECT_EQ(Site.contended(), 0u);
  EXPECT_EQ(Site.waitNs(), 0u);
  EXPECT_EQ(Site.holdNs(), 0u);
  EXPECT_EQ(Site.waitHistogram().snapshot().Count, 0u);
  EXPECT_EQ(Site.holdHistogram().snapshot().Count, 0u);
}

TEST(LockProfile, ToggledMidHoldRecordsNoHold) {
  static LockSite Site("test.lock.toggle");
  Site.reset();
  ProfiledMutex M(Site);
  // Acquired unprofiled, released profiled: the unlock must not invent a
  // hold interval it never timed (AcqNs == 0 sentinel).
  M.lock();
  setLockProfilingEnabled(true);
  M.unlock();
  setLockProfilingEnabled(false);
  EXPECT_EQ(Site.acquisitions(), 0u);
  EXPECT_EQ(Site.holdNs(), 0u);
}

TEST(LockProfile, SharedAcquisitionsCountWaitOnly) {
  static LockSite Site("test.lock.shared");
  Site.reset();
  LockProfilingOn Guard;
  ProfiledSharedMutex M(Site);
  {
    std::shared_lock<ProfiledSharedMutex> R(M);
  }
  EXPECT_EQ(Site.acquisitions(), 1u);
  EXPECT_EQ(Site.holdHistogram().snapshot().Count, 0u);
  {
    std::lock_guard<ProfiledSharedMutex> W(M);
  }
  EXPECT_EQ(Site.acquisitions(), 2u);
  EXPECT_EQ(Site.holdHistogram().snapshot().Count, 1u);
}

TEST(LockProfile, SnapshotRanksByTotalWait) {
  static LockSite Quiet("test.lock.rank_quiet");
  static LockSite Loud("test.lock.rank_loud");
  Quiet.reset();
  Loud.reset();
  Quiet.recordWait(1000, false);
  Loud.recordWait(50000000, true);
  std::vector<LockSiteSnapshot> Snap = lockProfileSnapshot();
  size_t QuietAt = Snap.size(), LoudAt = Snap.size();
  for (size_t I = 0; I < Snap.size(); ++I) {
    if (Snap[I].Name == "test.lock.rank_quiet")
      QuietAt = I;
    if (Snap[I].Name == "test.lock.rank_loud")
      LoudAt = I;
  }
  ASSERT_LT(QuietAt, Snap.size());
  ASSERT_LT(LoudAt, Snap.size());
  EXPECT_LT(LoudAt, QuietAt) << "higher total wait must rank first";
  Quiet.reset();
  Loud.reset();
}

TEST(LockProfile, ReportAndJsonAreWellFormed) {
  static LockSite Site("test.lock.report");
  Site.reset();
  Site.recordWait(2000, true);
  Site.recordHold(5000);
  std::string Report = lockProfileReport();
  EXPECT_NE(Report.find("test.lock.report"), std::string::npos);
  std::string Json = lockProfileJson();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"site\":\"test.lock.report\""), std::string::npos);
  Site.reset();
}

TEST(LockProfile, TouchedSitesFoldIntoMetricsSnapshot) {
  static LockSite Site("test.lock.folded");
  Site.reset();
  LockProfilingOn LockGuard;
  MetricsOn MetricsGuard;
  ProfiledMutex M(Site);
  {
    std::lock_guard<ProfiledMutex> Lock(M);
  }
  MetricsSnapshot S = registry().snapshot();
  ASSERT_TRUE(S.Counters.count("lock.test.lock.folded.acquisitions"));
  EXPECT_EQ(S.Counters.at("lock.test.lock.folded.acquisitions"), 1u);
  EXPECT_TRUE(S.Histograms.count("lock.test.lock.folded.wait_us"));
  EXPECT_TRUE(S.Histograms.count("lock.test.lock.folded.hold_us"));
  Site.reset();
}

TEST(LockProfile, ResetZeroesEverySite) {
  static LockSite Site("test.lock.resettable");
  Site.recordWait(123, true);
  Site.recordHold(456);
  resetLockProfile();
  EXPECT_EQ(Site.acquisitions(), 0u);
  EXPECT_EQ(Site.contended(), 0u);
  EXPECT_EQ(Site.waitNs(), 0u);
  EXPECT_EQ(Site.holdNs(), 0u);
}

//===----------------------------------------------------------------------===//
// MetricShard: the per-worker counter shards
//===----------------------------------------------------------------------===//

TEST(MetricShard, ConcurrentAddsMergeExactly) {
  Counter C;
  constexpr int Threads = 8, PerThread = 10000;
  std::vector<std::thread> Pool;
  for (int T = 0; T < Threads; ++T)
    Pool.emplace_back([&C] {
      for (int I = 0; I < PerThread; ++I)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  EXPECT_EQ(C.value(), static_cast<uint64_t>(Threads) * PerThread);
}

TEST(MetricShard, ValueIsMonotoneUnderConcurrentFlush) {
  // Each shard is monotone, so a merged read can never go backwards even
  // while writers race the flush — the property delta subtraction needs.
  Counter C;
  std::atomic<bool> Stop{false};
  std::thread Writer([&] {
    while (!Stop.load(std::memory_order_relaxed))
      C.add(3);
  });
  uint64_t Prev = 0;
  for (int I = 0; I < 200; ++I) {
    uint64_t Now = C.value();
    EXPECT_GE(Now, Prev);
    Prev = Now;
  }
  Stop.store(true);
  Writer.join();
  EXPECT_GE(C.value(), Prev);
}

TEST(MetricShard, DeltaAcrossThreadsIsExact) {
  MetricsOn Guard;
  Counter &C = registry().counter("test.shard.delta");
  MetricsSnapshot Before = registry().snapshot();
  std::vector<std::thread> Pool;
  for (int T = 0; T < 4; ++T)
    Pool.emplace_back([&C] {
      for (int I = 0; I < 1000; ++I)
        C.add(1);
    });
  for (std::thread &T : Pool)
    T.join();
  MetricsSnapshot Delta = registry().snapshot() - Before;
  EXPECT_EQ(Delta.Counters.at("test.shard.delta"), 4000u);
}

TEST(MetricShard, ResetZeroesAllShards) {
  Counter C;
  std::vector<std::thread> Pool;
  for (int T = 0; T < 4; ++T)
    Pool.emplace_back([&C] { C.add(7); });
  for (std::thread &T : Pool)
    T.join();
  ASSERT_GT(C.value(), 0u);
  C.reset();
  EXPECT_EQ(C.value(), 0u);
}

//===----------------------------------------------------------------------===//
// Flight: the per-thread flight recorder
//===----------------------------------------------------------------------===//

TEST(Flight, RecordsWithoutTracing) {
  FlightOn Guard;
  ASSERT_FALSE(tracingEnabled());
  MIGRATOR_TRACE_INSTANT("test.flight.instant");
  {
    MIGRATOR_TRACE_SCOPE("test.flight.span");
  }
  std::vector<FlightLane> Lanes = flightLanes();
  const FlightLane *Lane = laneFor(Lanes, obs::detail::traceCurrentTid());
  ASSERT_NE(Lane, nullptr);
  ASSERT_EQ(Lane->Events.size(), 2u);
  EXPECT_STREQ(Lane->Events[0].Name, "test.flight.instant");
  EXPECT_EQ(Lane->Events[0].Phase, 'i');
  EXPECT_STREQ(Lane->Events[1].Name, "test.flight.span");
  EXPECT_EQ(Lane->Events[1].Phase, 'X');
  // The ring fed, the trace stream did not.
  for (const TraceEvent &E : traceEvents())
    EXPECT_NE(E.Name, "test.flight.span");
}

TEST(Flight, RingIsBoundedAndCountsDrops) {
  FlightOn Guard;
  constexpr size_t Extra = 100;
  for (size_t I = 0; I < FlightRingCapacity + Extra; ++I)
    MIGRATOR_TRACE_INSTANT("test.flight.flood");
  std::vector<FlightLane> Lanes = flightLanes();
  const FlightLane *Lane = laneFor(Lanes, obs::detail::traceCurrentTid());
  ASSERT_NE(Lane, nullptr);
  EXPECT_EQ(Lane->Events.size(), FlightRingCapacity);
  EXPECT_EQ(Lane->Dropped, Extra);
  // Oldest-first: the survivors are the *last* FlightRingCapacity events.
  EXPECT_LE(Lane->Events.front().TsUs, Lane->Events.back().TsUs);
}

TEST(Flight, CleanJsonDumpIsWellFormed) {
  FlightOn Guard;
  MIGRATOR_TRACE_INSTANT("test.flight.json");
  std::string Json = flightJson();
  std::string Error;
  EXPECT_TRUE(validateJson(Json, &Error)) << Error;
  EXPECT_NE(Json.find("\"flightLanes\""), std::string::npos);
  EXPECT_NE(Json.find("\"dropped\""), std::string::npos);
  EXPECT_NE(Json.find("test.flight.json"), std::string::npos);
}

TEST(Flight, CrashPathDumpMatchesCleanShape) {
  FlightOn Guard;
  MIGRATOR_TRACE_INSTANT("test.flight.crash");
  char Path[] = "/tmp/migrator_flight_XXXXXX";
  int Fd = ::mkstemp(Path);
  ASSERT_GE(Fd, 0);
  flightDumpToFd(Fd);
  ::close(Fd);
  std::ifstream In(Path);
  std::ostringstream Buf;
  Buf << In.rdbuf();
  ::unlink(Path);
  std::string Text = Buf.str();
  // Quiescent rings: the racy crash-path dump must agree with the clean
  // shape and still be parseable JSON.
  std::string Error;
  EXPECT_TRUE(validateJson(Text, &Error)) << Error;
  EXPECT_NE(Text.find("\"flightLanes\""), std::string::npos);
  EXPECT_NE(Text.find("test.flight.crash"), std::string::npos);
}

TEST(Flight, ClearEmptiesEveryLane) {
  FlightOn Guard;
  MIGRATOR_TRACE_INSTANT("test.flight.cleared");
  flightClear();
  std::vector<FlightLane> Lanes = flightLanes();
  const FlightLane *Lane = laneFor(Lanes, obs::detail::traceCurrentTid());
  if (Lane) {
    EXPECT_TRUE(Lane->Events.empty());
    EXPECT_EQ(Lane->Dropped, 0u);
  }
}

//===----------------------------------------------------------------------===//
// WorkerLane: per-worker pool counters and trace lanes
//===----------------------------------------------------------------------===//

TEST(WorkerLane, WorkersPublishPerWorkerCounters) {
  MetricsOn Guard;
  registry().reset();
  constexpr int NumTasks = 8;
  std::atomic<int> Done{0};
  {
    ThreadPool Pool(2);
    TaskGroup Group(&Pool);
    for (int I = 0; I < NumTasks; ++I)
      Group.run([&Done] {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
        Done.fetch_add(1);
      });
    // Spin on our own flag instead of Group.wait(): a helping waiter would
    // run tasks on this thread and they would escape the per-worker
    // breakdown.
    while (Done.load() < NumTasks)
      std::this_thread::yield();
  }
  MetricsSnapshot S = registry().snapshot();
  for (int W = 0; W < 2; ++W) {
    std::string Prefix = "pool.w" + std::to_string(W) + ".";
    EXPECT_TRUE(S.Counters.count(Prefix + "tasks")) << Prefix;
    EXPECT_TRUE(S.Counters.count(Prefix + "steals")) << Prefix;
    EXPECT_TRUE(S.Counters.count(Prefix + "run_us")) << Prefix;
    EXPECT_TRUE(S.Counters.count(Prefix + "idle_us")) << Prefix;
  }
  EXPECT_EQ(S.Counters.at("pool.w0.tasks") + S.Counters.at("pool.w1.tasks"),
            static_cast<uint64_t>(NumTasks));
  EXPECT_GT(S.Counters.at("pool.w0.run_us") + S.Counters.at("pool.w1.run_us"),
            0u);
}

TEST(WorkerLane, LanesAreNamedInTheTrace) {
  startTracing();
  {
    ThreadPool Pool(2);
    TaskGroup Group(&Pool);
    std::atomic<int> Done{0};
    for (int I = 0; I < 4; ++I)
      Group.run([&Done] { Done.fetch_add(1); });
    Group.wait();
  }
  stopTracing();
  bool SawW0 = false, SawW1 = false;
  for (const auto &[Tid, Name] : traceThreadNames()) {
    SawW0 |= Name == "pool-worker-0";
    SawW1 |= Name == "pool-worker-1";
  }
  EXPECT_TRUE(SawW0);
  EXPECT_TRUE(SawW1);
  std::string Json = traceJson();
  EXPECT_NE(Json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(Json.find("pool-worker-0"), std::string::npos);
  // Workers wrap their idle waits in spans, so a traced pool always has
  // pool.idle events even if the main thread helped with every task.
  bool SawIdle = false;
  for (const TraceEvent &E : traceEvents())
    SawIdle |= E.Name == "pool.idle";
  EXPECT_TRUE(SawIdle);
}

TEST(WorkerLane, PoolLockSitesAreRegistered) {
  // The sites register on first pool construction (each test runs in its
  // own ctest process, so build one here).
  { ThreadPool Pool(1); }
  bool SawQueue = false, SawIdleCv = false;
  for (const LockSite *S : lockSites()) {
    SawQueue |= std::string(S->name()) == "pool.queue";
    SawIdleCv |= std::string(S->name()) == "pool.idle_cv";
  }
  EXPECT_TRUE(SawQueue);
  EXPECT_TRUE(SawIdleCv);
}

} // namespace
