//===- tests/generator_test.cpp - Synthetic benchmark generator tests --------===//

#include "ast/Analysis.h"
#include "benchsuite/Generator.h"
#include "parse/Parser.h"

#include <gtest/gtest.h>

#include <algorithm>

using namespace migrator;

namespace {

GenSpec smallSpec() {
  GenSpec S;
  S.Name = "toy";
  S.Description = "test";
  S.NumTables = 4;
  S.NumAttrs = 24;
  S.NumFuncs = 18;
  return S;
}

} // namespace

TEST(GeneratorTest, SourceShapeMatchesSpecExactly) {
  GenSpec S = smallSpec();
  Benchmark B = generateBenchmark(S);
  EXPECT_EQ(B.Source.getNumTables(), 4u);
  EXPECT_EQ(B.Source.getNumAttrs(), 24u);
  EXPECT_EQ(B.numFuncs(), 18u);
  EXPECT_FALSE(validateProgram(B.Prog, B.Source).has_value());
}

TEST(GeneratorTest, NoOpsMeansIdenticalSchemas) {
  Benchmark B = generateBenchmark(smallSpec());
  EXPECT_EQ(B.Source.getNumTables(), B.Target.getNumTables());
  EXPECT_EQ(B.Source.getNumAttrs(), B.Target.getNumAttrs());
  for (const TableSchema &T : B.Source.getTables()) {
    const TableSchema *TT = B.Target.findTable(T.getName());
    ASSERT_NE(TT, nullptr);
    EXPECT_EQ(TT->getAttrs(), T.getAttrs());
  }
}

TEST(GeneratorTest, SplitCreatesExtTableWithSurrogateLink) {
  GenSpec S = smallSpec();
  S.Splits = 1;
  S.SplitAttrs = 2;
  Benchmark B = generateBenchmark(S);
  EXPECT_EQ(B.Target.getNumTables(), 5u);
  // One table gained an Ext partner linked by a fresh shared key.
  const TableSchema *Ext = nullptr;
  for (const TableSchema &T : B.Target.getTables())
    if (T.getName().size() > 3 &&
        T.getName().substr(T.getName().size() - 3) == "Ext")
      Ext = &T;
  ASSERT_NE(Ext, nullptr);
  std::string Main = Ext->getName().substr(0, Ext->getName().size() - 3);
  std::string Link = Main + "ExtId";
  EXPECT_TRUE(Ext->hasAttr(Link));
  EXPECT_TRUE(B.Target.getTable(Main).hasAttr(Link));
  // The moved attributes exist in Ext but no longer in the main table.
  for (const Attribute &A : Ext->getAttrs()) {
    if (A.Name == Link)
      continue;
    EXPECT_FALSE(B.Target.getTable(Main).hasAttr(A.Name));
    // Source keeps them in the main table.
    EXPECT_TRUE(B.Source.getTable(Main).hasAttr(A.Name));
  }
}

TEST(GeneratorTest, MergeRemovesSatelliteTable) {
  GenSpec S = smallSpec();
  S.NumTables = 5;
  S.NumAttrs = 32;
  S.SatellitePairs = 1;
  S.Merges = 1;
  Benchmark B = generateBenchmark(S);
  EXPECT_EQ(B.Source.getNumTables(), 5u);
  EXPECT_EQ(B.Target.getNumTables(), 4u);
  // The satellite's surviving data attributes moved into the main table.
  const TableSchema &Sat = B.Source.getTables()[1];
  EXPECT_EQ(B.Target.findTable(Sat.getName()), nullptr);
  const TableSchema &Main = *B.Target.findTable(
      B.Source.getTables()[0].getName());
  EXPECT_TRUE(Main.hasAttr(Sat.getAttrs()[1].Name));
}

TEST(GeneratorTest, MoveRelocatesLastMainAttr) {
  GenSpec S = smallSpec();
  S.NumTables = 5;
  S.NumAttrs = 32;
  S.SatellitePairs = 1;
  S.MovedAttrs = 1;
  Benchmark B = generateBenchmark(S);
  const TableSchema &SrcMain = B.Source.getTables()[0];
  const TableSchema &SrcSat = B.Source.getTables()[1];
  const std::string &Moved = SrcMain.getAttrs().back().Name;
  EXPECT_FALSE(B.Target.getTable(SrcMain.getName()).hasAttr(Moved));
  EXPECT_TRUE(B.Target.getTable(SrcSat.getName()).hasAttr(Moved));
}

TEST(GeneratorTest, RenamesApplySuffixes) {
  GenSpec S = smallSpec();
  S.RenamedAttrs = 2;
  S.RenamedTables = 1;
  Benchmark B = generateBenchmark(S);
  size_t FldCount = 0, TblCount = 0;
  for (const TableSchema &T : B.Target.getTables()) {
    if (T.getName().size() > 3 &&
        T.getName().substr(T.getName().size() - 3) == "Tbl")
      ++TblCount;
    for (const Attribute &A : T.getAttrs())
      if (A.Name.size() > 3 &&
          A.Name.substr(A.Name.size() - 3) == "Fld")
        ++FldCount;
  }
  EXPECT_EQ(FldCount, 2u);
  EXPECT_EQ(TblCount, 1u);
}

TEST(GeneratorTest, AddedAttrsOnlyInTarget) {
  GenSpec S = smallSpec();
  S.AddedAttrs = 3;
  Benchmark B = generateBenchmark(S);
  EXPECT_EQ(B.Target.getNumAttrs(), B.Source.getNumAttrs() + 3);
}

TEST(GeneratorTest, FunctionMixContainsAllCrudKinds) {
  GenSpec S = smallSpec();
  S.NumFuncs = 26; // Deep enough to reach the foreign-key join pattern.
  Benchmark B = generateBenchmark(S);
  bool HasInsert = false, HasDelete = false, HasUpdate = false,
       HasQuery = false, HasJoinQuery = false;
  for (const Function &F : B.Prog.getFunctions()) {
    if (F.isQuery()) {
      HasQuery = true;
      HasJoinQuery |= F.getQuery().getChain().getNumTables() > 1;
      continue;
    }
    for (const StmtPtr &St : F.getBody()) {
      HasInsert |= St->getKind() == Stmt::Kind::Insert;
      HasDelete |= St->getKind() == Stmt::Kind::Delete;
      HasUpdate |= St->getKind() == Stmt::Kind::Update;
    }
  }
  EXPECT_TRUE(HasInsert);
  EXPECT_TRUE(HasDelete);
  EXPECT_TRUE(HasUpdate);
  EXPECT_TRUE(HasQuery);
  EXPECT_TRUE(HasJoinQuery);
}

TEST(GeneratorTest, GeneratedProgramsPrintAndReparse) {
  // The printed form of every generated benchmark reparses to an equal AST
  // (exercises printer/parser round-tripping at scale).
  for (const std::string &Name : realWorldBenchmarkNames()) {
    Benchmark B = loadBenchmark(Name);
    std::string Text =
        B.Source.str() + B.Target.str() + "program P on " +
        B.Source.getName() + " {\n" + B.Prog.str() + "}\n";
    std::variant<ParseOutput, ParseError> R = parseUnit(Text);
    ASSERT_TRUE(std::holds_alternative<ParseOutput>(R))
        << Name << ": " << std::get<ParseError>(R).str();
    ParseOutput &Out = std::get<ParseOutput>(R);
    ASSERT_NE(Out.findProgram("P"), nullptr);
    EXPECT_TRUE(Out.findProgram("P")->Prog.equals(B.Prog)) << Name;
    EXPECT_EQ(Out.findSchema(B.Source.getName())->str(), B.Source.str());
    EXPECT_EQ(Out.findSchema(B.Target.getName())->str(), B.Target.str());
  }
}

TEST(GeneratorTest, SatellitePairsShareTheMainKey) {
  GenSpec S = smallSpec();
  S.NumTables = 6;
  S.NumAttrs = 36;
  S.SatellitePairs = 2;
  Benchmark B = generateBenchmark(S);
  for (unsigned P = 0; P < 2; ++P) {
    const TableSchema &Main = B.Source.getTables()[2 * P];
    const TableSchema &Sat = B.Source.getTables()[2 * P + 1];
    EXPECT_EQ(Sat.getName(), Main.getName() + "Info");
    EXPECT_TRUE(Sat.hasAttr(Main.getAttrs()[0].Name))
        << "satellite missing the shared key";
  }
}
