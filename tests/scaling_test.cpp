//===- tests/scaling_test.cpp - Multicore-scaling correctness stress ---------===//
//
// PR 8 removed the cross-worker serialization points of the parallel
// engine: the source-result cache is lock-striped, the COW lazy index
// build publishes through a per-column once_flag + atomic pointer instead
// of a per-payload mutex, and the plan cache is read-mostly. These tests
// hammer each redesigned structure from many threads (they are the TSan
// targets scripts/check.sh names) and pin the engine's one non-negotiable
// contract: Deterministic mode produces byte-identical programs at every
// thread count.
//
//===----------------------------------------------------------------------===//

#include "benchsuite/Benchmark.h"
#include "eval/Evaluator.h"
#include "relational/Table.h"
#include "synth/SourceCache.h"
#include "synth/Synthesizer.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string>
#include <thread>
#include <vector>

using namespace migrator;
using namespace migrator::test;

namespace {

/// FNV-1a over the synthesized program text — the same hash bench_sweep's
/// scaling section records, so a ledger row and this test agree on what
/// "byte-identical" means.
uint64_t fnv1a(const std::string &S) {
  uint64_t H = 1469598103934665603ull;
  for (unsigned char C : S) {
    H ^= C;
    H *= 1099511628211ull;
  }
  return H;
}

/// A source program whose queries return fresh-UID values (the cache's
/// hardest case: byte-identical UID numbering is load-bearing).
struct MediaFixture {
  ParseOutput Out;
  const Schema *S = nullptr;
  const Program *Prog = nullptr;

  MediaFixture()
      : Out(parseOrDie(R"(
schema Media {
  table Picture(PicId: int, Pic: binary)
  table TA(TaId: int, TName: string, PicId: int)
}
program MediaApp on Media {
  update addTA(id: int, name: string, pic: binary) {
    insert into Picture join TA values (TaId: id, TName: name, Pic: pic);
  }
  update deleteTA(id: int) {
    delete [TA] from Picture join TA where TaId = id;
  }
  query getTA(id: int) {
    select TName, PicId from Picture join TA where TaId = id;
  }
}
)")),
        S(Out.findSchema("Media")), Prog(&Out.findProgram("MediaApp")->Prog) {}
};

Invocation addTA(int Id) {
  return {"addTA",
          {Value::makeInt(Id), Value::makeString("N" + std::to_string(Id)),
           Value::makeBinary("b" + std::to_string(Id))}};
}

Invocation getTA(int Id) { return {"getTA", {Value::makeInt(Id)}}; }

} // namespace

//===----------------------------------------------------------------------===//
// Striped source cache
//===----------------------------------------------------------------------===//

TEST(StripedSourceCacheTest, StripePickerSpreadsSequentialIds) {
  // Parent ids are handed out sequentially; the stripe picker must not map
  // runs of neighbouring ids onto one stripe (that would re-serialize the
  // exact access pattern striping exists for).
  std::set<unsigned> Seen;
  std::vector<size_t> Load(SourceResultCache::NumStripes, 0);
  for (uint64_t Id = 0; Id < 4096; ++Id) {
    unsigned St = SourceResultCache::stripeOf(Id);
    ASSERT_LT(St, SourceResultCache::NumStripes);
    Seen.insert(St);
    ++Load[St];
  }
  EXPECT_EQ(Seen.size(), SourceResultCache::NumStripes);
  // No stripe should carry more than 2x its fair share of a uniform id
  // range (splitmix64 mixing keeps the distribution tight in practice).
  for (size_t L : Load)
    EXPECT_LT(L, 2 * 4096 / SourceResultCache::NumStripes);
}

TEST(StripedSourceCacheTest, EightThreadStressMatchesDirectExecution) {
  // Eight threads hammer one cache with overlapping sequences: shared
  // prefixes (cross-thread hits on the same stripe), disjoint suffixes
  // (concurrent inserts on many stripes), and repeated replays (pure
  // hits). Every memoized result must be byte-identical to an uncached
  // direct execution of the same sequence.
  MediaFixture F;
  SourceResultCache Cache(*F.S, *F.Prog);
  constexpr unsigned NumThreads = 8;
  constexpr int RoundsPerThread = 24;

  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R < RoundsPerThread; ++R) {
        // Sequences deliberately collide across threads: the prefix cycles
        // through a small set so most extends are hits racing inserts.
        InvocationSeq Seq;
        Seq.push_back(addTA(R % 5));
        Seq.push_back(addTA(static_cast<int>(T % 3) + 10));
        if (R % 2)
          Seq.push_back(addTA(R % 7 + 20));
        Seq.push_back(getTA((R % 2) ? R % 7 + 20 : R % 5));
        std::shared_ptr<const ResultTable> Cached = Cache.run(Seq);
        std::optional<ResultTable> Direct = runSequence(*F.Prog, *F.S, Seq);
        if (!Cached || !Direct || Cached->str() != Direct->str())
          Failures.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  // The workload replays overlapping sequences, so the memo must have both
  // served hits and absorbed inserts.
  EXPECT_GT(Cache.hits(), 0u);
  EXPECT_GT(Cache.misses(), 0u);
}

//===----------------------------------------------------------------------===//
// Contention-free COW detach + lazy index build
//===----------------------------------------------------------------------===//

TEST(CowIndexStressTest, ConcurrentProbeAndDetach) {
  // One hot shared snapshot: half the threads probe (racing lazy builds of
  // three different columns), half copy the snapshot and immediately
  // mutate their copy (detach-clone racing the builds). Before PR 8 every
  // one of these operations funneled through the payload's `table.index`
  // mutex; now only the first build of each column synchronizes at all.
  TableSchema TS("T", {{"a", ValueType::Int},
                       {"b", ValueType::Int},
                       {"c", ValueType::String}});
  Table Base(TS);
  constexpr int NumRows = 256;
  for (int I = 0; I < NumRows; ++I)
    Base.insertRow({Value::makeInt(I), Value::makeInt(I % 17),
                    Value::makeString("s" + std::to_string(I % 5))});
  const Table &Shared = Base;

  constexpr unsigned NumThreads = 8;
  constexpr int Rounds = 64;
  std::atomic<unsigned> Failures{0};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&, T] {
      for (int R = 0; R < Rounds; ++R) {
        if (T % 2 == 0) {
          // Prober: exercise all three columns on the shared snapshot.
          const std::vector<size_t> *Hit =
              Shared.probeIndex(0, Value::makeInt(R % NumRows));
          if (!Hit || Hit->size() != 1 || (*Hit)[0] != size_t(R % NumRows))
            Failures.fetch_add(1, std::memory_order_relaxed);
          const std::vector<size_t> *Mod =
              Shared.probeIndex(1, Value::makeInt(R % 17));
          if (!Mod || Mod->empty())
            Failures.fetch_add(1, std::memory_order_relaxed);
          if (!Shared.probeIndex(2, Value::makeString("s0")))
            Failures.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Snapshotter: COW-copy the shared table (refcount bump), then
          // mutate the copy — the detach clone must observe either a fully
          // published index or none, never a half-built one.
          Table Copy(Shared);
          Copy.insertRow({Value::makeInt(NumRows + R), Value::makeInt(99),
                          Value::makeString("x")});
          const std::vector<size_t> *Mine =
              Copy.probeIndex(1, Value::makeInt(99));
          if (!Mine || Mine->empty() || Mine->back() != size_t(NumRows))
            Failures.fetch_add(1, std::memory_order_relaxed);
          if (Copy.size() != size_t(NumRows) + 1)
            Failures.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(Failures.load(), 0u);
  // The base snapshot itself must be untouched by the copies' mutations.
  EXPECT_EQ(Base.size(), size_t(NumRows));
  EXPECT_TRUE(Base.hasIndex(0));
  EXPECT_TRUE(Base.hasIndex(1));
  EXPECT_TRUE(Base.hasIndex(2));
}

TEST(CowIndexStressTest, CloneSkipsUnpublishedBuildSafely) {
  // A clone taken while no index exists starts cold and builds its own;
  // a clone taken after a build starts warm. Both must answer probes
  // identically.
  TableSchema TS("U", {{"k", ValueType::Int}});
  Table Cold(TS);
  for (int I = 0; I < 32; ++I)
    Cold.insertRow({Value::makeInt(I % 4)});

  Table WarmSource(Cold);     // Shares the payload (COW).
  Table ColdClone(Cold);      // Also shares — no index exists yet.
  ColdClone.insertRow({Value::makeInt(4)}); // Detach before any build.
  ASSERT_FALSE(ColdClone.sharesStorageWith(Cold));
  EXPECT_FALSE(ColdClone.hasIndex(0));

  ASSERT_NE(WarmSource.probeIndex(0, Value::makeInt(1)), nullptr);
  Table WarmClone(WarmSource);
  WarmClone.insertRow({Value::makeInt(4)}); // Detach copies the built index.
  EXPECT_TRUE(WarmClone.hasIndex(0));

  const std::vector<size_t> *A = ColdClone.probeIndex(0, Value::makeInt(2));
  const std::vector<size_t> *B = WarmClone.probeIndex(0, Value::makeInt(2));
  ASSERT_NE(A, nullptr);
  ASSERT_NE(B, nullptr);
  EXPECT_EQ(*A, *B);
}

//===----------------------------------------------------------------------===//
// Determinism across thread counts
//===----------------------------------------------------------------------===//

TEST(ScalingDeterminismTest, ProgramHashIdenticalAcrossJobs) {
  // The acceptance bar for every scaling change: Deterministic mode is
  // byte-identical at jobs 1, 2, 4, and 8 — asserted on the FNV-1a program
  // hash, the same fingerprint the BENCH_PR8.json scaling rows carry.
  for (const char *Name : {"Ambler-3", "Ambler-6"}) {
    Benchmark B = loadBenchmark(Name);
    uint64_t Reference = 0;
    bool HaveRef = false;
    for (unsigned Jobs : {1u, 2u, 4u, 8u}) {
      SynthOptions Opts;
      Opts.Jobs = Jobs;
      Opts.Solver.Batch = 4;
      Opts.Deterministic = true;
      SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
      ASSERT_TRUE(R.succeeded()) << Name << " jobs=" << Jobs;
      uint64_t H = fnv1a(R.Prog->str());
      if (!HaveRef) {
        Reference = H;
        HaveRef = true;
      } else {
        EXPECT_EQ(H, Reference) << Name << " hash diverged at jobs=" << Jobs;
      }
    }
  }
}
