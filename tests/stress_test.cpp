//===- tests/stress_test.cpp - Stress and robustness tests --------------------===//

#include "benchsuite/Benchmark.h"
#include "parse/Parser.h"
#include "sat/Solver.h"
#include "support/Rng.h"
#include "synth/Synthesizer.h"

#include <gtest/gtest.h>

using namespace migrator;

//===----------------------------------------------------------------------===//
// SAT solver under real search pressure
//===----------------------------------------------------------------------===//

TEST(SatStress, PigeonholeFiveIntoFourLearnsClauses) {
  // PHP(5,4) needs genuine conflict analysis; check UNSAT plus that the
  // statistics counters moved.
  sat::Solver S;
  sat::Var X[5][4];
  for (auto &Row : X)
    for (sat::Var &V : Row)
      V = S.newVar();
  for (int P = 0; P < 5; ++P) {
    std::vector<sat::Lit> C;
    for (int H = 0; H < 4; ++H)
      C.push_back(sat::posLit(X[P][H]));
    ASSERT_TRUE(S.addClause(C));
  }
  for (int H = 0; H < 4; ++H)
    for (int P = 0; P < 5; ++P)
      for (int Q = P + 1; Q < 5; ++Q)
        ASSERT_TRUE(S.addClause({sat::negLit(X[P][H]), sat::negLit(X[Q][H])}));
  EXPECT_EQ(S.solve(), sat::Solver::Result::Unsat);
  EXPECT_GT(S.getNumConflicts(), 0u);
  EXPECT_GT(S.getNumDecisions(), 0u);
}

TEST(SatStress, LargeRandomSatisfiableChains) {
  // Long implication chains with random extra clauses stay satisfiable and
  // solve quickly.
  Rng R(404);
  for (int Iter = 0; Iter < 5; ++Iter) {
    sat::Solver S;
    const int N = 300;
    std::vector<sat::Var> V;
    for (int I = 0; I < N; ++I)
      V.push_back(S.newVar());
    for (int I = 0; I + 1 < N; ++I)
      ASSERT_TRUE(S.addClause({sat::negLit(V[I]), sat::posLit(V[I + 1])}));
    // Random positive 3-clauses cannot make it UNSAT.
    for (int I = 0; I < 200; ++I)
      ASSERT_TRUE(S.addClause({sat::posLit(V[R.nextInt(0, N - 1)]),
                               sat::posLit(V[R.nextInt(0, N - 1)]),
                               sat::posLit(V[R.nextInt(0, N - 1)])}));
    EXPECT_EQ(S.solve(), sat::Solver::Result::Sat);
  }
}

TEST(SatStress, ManyIncrementalBlockingRounds) {
  // The sketch-completion usage pattern: exactly-one groups plus hundreds of
  // alternating solve/block rounds.
  sat::Solver S;
  std::vector<std::vector<sat::Var>> Groups;
  for (int G = 0; G < 6; ++G) {
    std::vector<sat::Var> Vars;
    for (int A = 0; A < 4; ++A)
      Vars.push_back(S.newVar());
    ASSERT_TRUE(S.addExactlyOne(Vars));
    Groups.push_back(std::move(Vars));
  }
  int Models = 0;
  while (S.solve() == sat::Solver::Result::Sat) {
    ++Models;
    ASSERT_LE(Models, 4096);
    std::vector<sat::Lit> Block;
    for (const std::vector<sat::Var> &G : Groups)
      for (sat::Var V : G)
        if (S.modelValue(V))
          Block.push_back(sat::negLit(V));
    if (!S.addClause(Block))
      break;
  }
  EXPECT_EQ(Models, 4096); // 4^6.
}

//===----------------------------------------------------------------------===//
// Parser robustness: random inputs never crash, always diagnose
//===----------------------------------------------------------------------===//

namespace {

class ParserFuzz : public ::testing::TestWithParam<uint64_t> {};

} // namespace

TEST_P(ParserFuzz, RandomTokenSoupNeverCrashes) {
  static const char *Tokens[] = {
      "schema", "table",  "program", "update", "query", "insert", "into",
      "values", "delete", "from",    "where",  "select", "set",   "join",
      "on",     "and",    "or",      "not",    "in",     "true",  "false",
      "T",      "a",      "x",       "int",    "string", "(",     ")",
      "{",      "}",      "[",       "]",      ",",      ":",     ";",
      ".",      "=",      "!=",      "<",      "<=",     ">",     ">=",
      "42",     "-7",     "\"s\"",   "b\"x\"", "@",      "\"un",
  };
  Rng R(GetParam());
  for (int Iter = 0; Iter < 300; ++Iter) {
    std::string Input;
    for (int K = R.nextInt(0, 60); K > 0; --K) {
      Input += Tokens[R.next(std::size(Tokens))];
      Input += ' ';
    }
    std::variant<ParseOutput, ParseError> Res = parseUnit(Input);
    if (auto *E = std::get_if<ParseError>(&Res)) {
      EXPECT_FALSE(E->Msg.empty());
      EXPECT_GE(E->Line, 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz,
                         ::testing::Values(1001, 1002, 1003, 1004));

TEST(ParserFuzz, RandomBytesNeverCrash) {
  Rng R(555);
  for (int Iter = 0; Iter < 300; ++Iter) {
    std::string Input;
    for (int K = R.nextInt(0, 120); K > 0; --K)
      Input += static_cast<char>(R.nextInt(1, 126));
    (void)parseUnit(Input);
  }
}

//===----------------------------------------------------------------------===//
// Further real-world syntheses (the heavier ones live in bench_table1)
//===----------------------------------------------------------------------===//

namespace {

class MoreRealWorld : public ::testing::TestWithParam<const char *> {};

} // namespace

TEST_P(MoreRealWorld, Synthesizes) {
  Benchmark B = loadBenchmark(GetParam());
  SynthOptions Opts;
  Opts.TimeBudgetSec = 300;
  SynthResult R = synthesize(B.Source, B.Prog, B.Target, Opts);
  ASSERT_TRUE(R.succeeded()) << "VCs=" << R.Stats.NumVcs
                             << " iters=" << R.Stats.Iters;
  EquivalenceTester T(B.Source, B.Prog, B.Target);
  EXPECT_TRUE(T.test(*R.Prog).isEquivalent());
}

INSTANTIATE_TEST_SUITE_P(RealWorld, MoreRealWorld,
                         ::testing::Values("MathHotSpot", "probable-engine",
                                           "gallery"),
                         [](const ::testing::TestParamInfo<const char *> &I) {
                           std::string N = I.param;
                           for (char &C : N)
                             if (C == '-')
                               C = '_';
                           return N;
                         });
