//===- tests/eval_test.cpp - Interpreter tests -------------------------------===//

#include "eval/Evaluator.h"

#include "TestUtil.h"

#include <gtest/gtest.h>

using namespace migrator;
using namespace migrator::test;

namespace {

/// The Car/Part database of Example 3.1.
const char *carPartSource() {
  return R"(
schema CarDB {
  table Car(cid: int, model: string, year: int)
  table Part(name: string, amount: int, cid: int)
}
program CarApp on CarDB {
  update addCar(c: int, m: string, y: int) {
    insert into Car values (cid: c, model: m, year: y);
  }
  update addPart(n: string, a: int, c: int) {
    insert into Part values (name: n, amount: a, cid: c);
  }
  update delByModel(m: string) {
    delete [Car, Part] from Car join Part where model = m;
  }
  update setAmount(m: string, n: string, a: int) {
    update Car join Part set amount = a where model = m and name = n;
  }
  query partsOf(c: int) {
    select name, amount from Part where cid = c;
  }
  query carModels() {
    select model from Car;
  }
}
)";
}

struct CarFixture {
  ParseOutput Out;
  const Schema *S = nullptr;
  const Program *P = nullptr;
  Database DB;
  Evaluator Eval;
  UidGen Uids;

  CarFixture()
      : Out(parseOrDie(carPartSource())), S(Out.findSchema("CarDB")),
        P(&Out.findProgram("CarApp")->Prog), DB(*S), Eval(*S) {
    // Populate Example 3.1's instance.
    call("addCar", {Value::makeInt(1), Value::makeString("M1"),
                    Value::makeInt(2016)});
    call("addCar", {Value::makeInt(2), Value::makeString("M2"),
                    Value::makeInt(2018)});
    call("addPart",
         {Value::makeString("tire"), Value::makeInt(10), Value::makeInt(1)});
    call("addPart",
         {Value::makeString("brake"), Value::makeInt(20), Value::makeInt(1)});
    call("addPart",
         {Value::makeString("tire"), Value::makeInt(20), Value::makeInt(2)});
    call("addPart",
         {Value::makeString("brake"), Value::makeInt(30), Value::makeInt(2)});
  }

  void call(const std::string &F, const std::vector<Value> &Args) {
    ASSERT_TRUE(Eval.callUpdate(P->getFunction(F), Args, DB, Uids));
  }

  ResultTable query(const std::string &F, const std::vector<Value> &Args) {
    std::optional<ResultTable> R =
        Eval.callQuery(P->getFunction(F), Args, DB);
    EXPECT_TRUE(R.has_value());
    return R.value_or(ResultTable());
  }
};

} // namespace

TEST(EvalTest, InsertAndSelect) {
  CarFixture F;
  ResultTable R = F.query("partsOf", {Value::makeInt(1)});
  ASSERT_EQ(R.getNumRows(), 2u);
  EXPECT_EQ(R.getNumCols(), 2u);
  EXPECT_EQ(R.Rows[0][0].getString(), "tire");
  EXPECT_EQ(R.Rows[0][1].getInt(), 10);
}

TEST(EvalTest, Example31DeleteOverJoin) {
  // del([Car, Part], Car ⋈ Part, model = M1) removes car 1 and its parts.
  CarFixture F;
  F.call("delByModel", {Value::makeString("M1")});
  EXPECT_EQ(F.DB.getTable("Car").size(), 1u);
  EXPECT_EQ(F.DB.getTable("Car").getRow(0)[1].getString(), "M2");
  ASSERT_EQ(F.DB.getTable("Part").size(), 2u);
  EXPECT_EQ(F.DB.getTable("Part").getRow(0)[2].getInt(), 2);
  EXPECT_EQ(F.DB.getTable("Part").getRow(1)[2].getInt(), 2);
}

TEST(EvalTest, Example31UpdateOverJoin) {
  // upd(Car ⋈ Part, model = M2 ∧ name = tire, amount, 30) modifies only the
  // third Part record.
  CarFixture F;
  F.call("setAmount",
         {Value::makeString("M2"), Value::makeString("tire"),
          Value::makeInt(30)});
  const Table &Part = F.DB.getTable("Part");
  ASSERT_EQ(Part.size(), 4u);
  EXPECT_EQ(Part.getRow(0)[1].getInt(), 10);
  EXPECT_EQ(Part.getRow(1)[1].getInt(), 20);
  EXPECT_EQ(Part.getRow(2)[1].getInt(), 30); // (tire, 30, 2).
  EXPECT_EQ(Part.getRow(3)[1].getInt(), 30);
}

TEST(EvalTest, DeleteFromSingleListedTableKeepsOther) {
  CarFixture F;
  // Delete only the Car side of the join.
  ParseOutput Out2 = parseOrDie(R"(
schema CarDB2 {
  table Car(cid: int, model: string, year: int)
  table Part(name: string, amount: int, cid: int)
}
program OnlyCar on CarDB2 {
  update delCarByModel(m: string) {
    delete [Car] from Car join Part where model = m;
  }
}
)");
  const Program &P2 = Out2.findProgram("OnlyCar")->Prog;
  Evaluator E2(*F.S);
  UidGen U2;
  ASSERT_TRUE(E2.callUpdate(P2.getFunction("delCarByModel"),
                            {Value::makeString("M1")}, F.DB, U2));
  EXPECT_EQ(F.DB.getTable("Car").size(), 1u);
  EXPECT_EQ(F.DB.getTable("Part").size(), 4u);
}

TEST(EvalTest, DeleteOnlyAffectsJoinedTuples) {
  CarFixture F;
  // A car with no parts joins nothing, so delete-over-join keeps it.
  F.call("addCar",
         {Value::makeInt(3), Value::makeString("M1"), Value::makeInt(2020)});
  // Wait: cid=3 car has model M1 but no parts; delByModel(M1) should delete
  // car 1 (joined) but keep car 3 (unjoined).
  F.call("delByModel", {Value::makeString("M1")});
  ASSERT_EQ(F.DB.getTable("Car").size(), 2u);
  EXPECT_EQ(F.DB.getTable("Car").getRow(0)[0].getInt(), 2);
  EXPECT_EQ(F.DB.getTable("Car").getRow(1)[0].getInt(), 3);
}

TEST(EvalTest, ChainInsertSharesFreshUids) {
  // Sec. 3.1: inserting into Picture ⋈ Instructor gives both rows the same
  // fresh PicId (the overview's UID0).
  ParseOutput Out = parseOrDie(overviewSource());
  ParseOutput Exp = parseOrDie(overviewExpected());
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &PNew = Exp.findProgram("CourseAppNew")->Prog;

  Database DB(Tgt);
  Evaluator Eval(Tgt);
  UidGen Uids;
  ASSERT_TRUE(Eval.callUpdate(
      PNew.getFunction("addInstructor"),
      {Value::makeInt(7), Value::makeString("Ada"), Value::makeBinary("img")},
      DB, Uids));

  const Table &Inst = DB.getTable("Instructor");
  const Table &Pic = DB.getTable("Picture");
  ASSERT_EQ(Inst.size(), 1u);
  ASSERT_EQ(Pic.size(), 1u);
  EXPECT_EQ(Inst.getRow(0)[0].getInt(), 7);
  EXPECT_EQ(Inst.getRow(0)[1].getString(), "Ada");
  ASSERT_TRUE(Inst.getRow(0)[2].isUid());
  ASSERT_TRUE(Pic.getRow(0)[0].isUid());
  EXPECT_EQ(Inst.getRow(0)[2], Pic.getRow(0)[0]); // Shared fresh key.
  EXPECT_EQ(Pic.getRow(0)[1].getBinary(), "img");
  EXPECT_EQ(DB.getTable("TA").size(), 0u);
  EXPECT_EQ(DB.getTable("Class").size(), 0u);
}

TEST(EvalTest, OverviewMigratedProgramBehavesLikeSource) {
  ParseOutput Out = parseOrDie(overviewSource());
  ParseOutput Exp = parseOrDie(overviewExpected());
  const Schema &Src = *Out.findSchema("CourseDB");
  const Schema &Tgt = *Out.findSchema("CourseDBNew");
  const Program &POld = Out.findProgram("CourseApp")->Prog;
  const Program &PNew = Exp.findProgram("CourseAppNew")->Prog;

  InvocationSeq Seq = {
      {"addTA",
       {Value::makeInt(1), Value::makeString("T"), Value::makeBinary("p1")}},
      {"addInstructor",
       {Value::makeInt(1), Value::makeString("I"), Value::makeBinary("p2")}},
      {"getTAInfo", {Value::makeInt(1)}},
  };
  std::optional<ResultTable> A = runSequence(POld, Src, Seq);
  std::optional<ResultTable> B = runSequence(PNew, Tgt, Seq);
  ASSERT_TRUE(A && B);
  ASSERT_EQ(A->getNumRows(), 1u);
  EXPECT_TRUE(resultsEquivalent(*A, *B));

  // After deletion both report empty.
  InvocationSeq Seq2 = {
      {"addTA",
       {Value::makeInt(1), Value::makeString("T"), Value::makeBinary("p1")}},
      {"deleteTA", {Value::makeInt(1)}},
      {"getTAInfo", {Value::makeInt(1)}},
  };
  A = runSequence(POld, Src, Seq2);
  B = runSequence(PNew, Tgt, Seq2);
  ASSERT_TRUE(A && B);
  EXPECT_EQ(A->getNumRows(), 0u);
  EXPECT_TRUE(resultsEquivalent(*A, *B));
}

TEST(EvalTest, RunSequenceRejectsMalformedSequences) {
  ParseOutput Out = parseOrDie(overviewSource());
  const Schema &Src = *Out.findSchema("CourseDB");
  const Program &P = Out.findProgram("CourseApp")->Prog;
  // Final call must be a query.
  EXPECT_FALSE(runSequence(P, Src,
                           {{"addTA",
                             {Value::makeInt(1), Value::makeString("T"),
                              Value::makeBinary("p")}}})
                   .has_value());
  // Unknown function.
  EXPECT_FALSE(runSequence(P, Src, {{"nope", {}}}).has_value());
  // Arity mismatch.
  EXPECT_FALSE(
      runSequence(P, Src, {{"getTAInfo", {}}}).has_value());
  // Empty sequence.
  EXPECT_FALSE(runSequence(P, Src, {}).has_value());
}

TEST(EvalTest, InSubqueryMembership) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(x: int) table B(x: int) }
program P on S {
  update addA(v: int) { insert into A values (x: v); }
  update addB(v: int) { insert into B values (x: v); }
  query q() { select x from A where x in (select x from B); }
}
)");
  const Schema &S = *Out.findSchema("S");
  const Program &P = Out.findProgram("P")->Prog;
  std::optional<ResultTable> R = runSequence(
      P, S,
      {{"addA", {Value::makeInt(1)}},
       {"addA", {Value::makeInt(2)}},
       {"addB", {Value::makeInt(2)}},
       {"q", {}}});
  ASSERT_TRUE(R.has_value());
  ASSERT_EQ(R->getNumRows(), 1u);
  EXPECT_EQ(R->Rows[0][0].getInt(), 2);
}

TEST(EvalTest, NaturalJoinMatchesOnSharedColumn) {
  CarFixture F;
  ParseOutput Out2 = parseOrDie(R"(
schema CarDB3 {
  table Car(cid: int, model: string, year: int)
  table Part(name: string, amount: int, cid: int)
}
program J on CarDB3 {
  query partsWithModels() { select model, name from Car join Part; }
}
)");
  Evaluator E(*F.S);
  std::optional<ResultTable> R = E.callQuery(
      Out2.findProgram("J")->Prog.getFunction("partsWithModels"), {}, F.DB);
  ASSERT_TRUE(R.has_value());
  EXPECT_EQ(R->getNumRows(), 4u); // Each part joins exactly its car.
}

TEST(EvalTest, IllFormedQueryReportsFailure) {
  ParseOutput Out = parseOrDie(R"(
schema S { table A(x: int) }
program Ill {
  query q() { select nope from A; }
}
)");
  const Schema &S = *Out.findSchema("S");
  Evaluator E(S);
  Database DB(S);
  EXPECT_FALSE(
      E.callQuery(Out.findProgram("Ill")->Prog.getFunction("q"), {}, DB)
          .has_value());
}
