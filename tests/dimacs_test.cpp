//===- tests/dimacs_test.cpp - DIMACS CNF interchange tests -------------------===//

#include "sat/Dimacs.h"
#include "sketch/Sketch.h"
#include "support/Rng.h"
#include "synth/Encoder.h"

#include <gtest/gtest.h>

#include <optional>

using namespace migrator;
using namespace migrator::sat;

TEST(DimacsTest, ParsesWellFormedInput) {
  auto R = parseDimacs("c a comment\np cnf 3 2\n1 -2 0\n2 3 0\n");
  ASSERT_TRUE(std::holds_alternative<DimacsProblem>(R));
  const DimacsProblem &P = std::get<DimacsProblem>(R);
  EXPECT_EQ(P.NumVars, 3);
  ASSERT_EQ(P.Clauses.size(), 2u);
  EXPECT_EQ(P.Clauses[0][0], posLit(0));
  EXPECT_EQ(P.Clauses[0][1], negLit(1));
}

TEST(DimacsTest, ClausesMaySpanLines) {
  auto R = parseDimacs("p cnf 2 2\n1\n2 0 -1\n-2 0\n");
  ASSERT_TRUE(std::holds_alternative<DimacsProblem>(R));
  EXPECT_EQ(std::get<DimacsProblem>(R).Clauses.size(), 2u);
}

TEST(DimacsTest, DiagnosesMalformedInput) {
  EXPECT_TRUE(std::holds_alternative<std::string>(parseDimacs("1 2 0\n")));
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseDimacs("p cnf 2 1\n1 3 0\n"))); // Out-of-range literal.
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseDimacs("p cnf 2 1\n1 2\n"))); // Missing terminating zero.
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseDimacs("p cnf 2 5\n1 0\n"))); // Clause count mismatch.
  EXPECT_TRUE(std::holds_alternative<std::string>(
      parseDimacs("p cnf 2 1\np cnf 2 1\n1 0\n1 0\n"))); // Duplicate header.
  EXPECT_TRUE(std::holds_alternative<std::string>(parseDimacs("")));
}

TEST(DimacsTest, RoundTripsThroughSerialization) {
  Rng R(31);
  for (int Iter = 0; Iter < 20; ++Iter) {
    DimacsProblem P;
    P.NumVars = R.nextInt(1, 12);
    for (int C = R.nextInt(1, 20); C > 0; --C) {
      std::vector<Lit> Clause;
      for (int K = R.nextInt(1, 4); K > 0; --K)
        Clause.push_back(Lit(R.nextInt(0, P.NumVars - 1), R.chance(1, 2)));
      P.Clauses.push_back(std::move(Clause));
    }
    auto Reparsed = parseDimacs(toDimacs(P));
    ASSERT_TRUE(std::holds_alternative<DimacsProblem>(Reparsed));
    const DimacsProblem &Q = std::get<DimacsProblem>(Reparsed);
    EXPECT_EQ(Q.NumVars, P.NumVars);
    ASSERT_EQ(Q.Clauses.size(), P.Clauses.size());
    for (size_t I = 0; I < P.Clauses.size(); ++I)
      EXPECT_EQ(Q.Clauses[I], P.Clauses[I]);
  }
}

TEST(DimacsTest, SolveDimacsFindsModels) {
  auto R = parseDimacs("p cnf 2 2\n1 2 0\n-1 0\n");
  ASSERT_TRUE(std::holds_alternative<DimacsProblem>(R));
  std::optional<std::vector<bool>> Model =
      solveDimacs(std::get<DimacsProblem>(R));
  ASSERT_TRUE(Model.has_value());
  EXPECT_FALSE((*Model)[0]);
  EXPECT_TRUE((*Model)[1]);

  auto U = parseDimacs("p cnf 1 2\n1 0\n-1 0\n");
  EXPECT_FALSE(solveDimacs(std::get<DimacsProblem>(U)).has_value());
}

//===----------------------------------------------------------------------===//
// Sketch-encoding dumps (--dump-cnf)
//===----------------------------------------------------------------------===//

TEST(DimacsTest, SketchEncodingRoundTripReSolvesIdentically) {
  // The EncoderTest space: a 2-chain hole and a 3-attribute hole with two
  // incompatible pairs — 4 valid assignments. The dumped CNF is standalone
  // (fresh numbering, no activation literal, no learned state), so a
  // serialize/parse/solve round trip must enumerate exactly the same
  // space as the live encoder.
  Sketch Sk;
  Hole A;
  A.TheKind = Hole::Kind::Chain;
  A.Func = "f";
  A.Chains = {JoinChain::table("X"), JoinChain::table("Y")};
  unsigned HA = Sk.addHole(std::move(A));
  Hole B;
  B.TheKind = Hole::Kind::Attr;
  B.Func = "f";
  B.Attrs = {{"X", "a"}, {"Y", "a"}, {"Y", "b"}};
  unsigned HB = Sk.addHole(std::move(B));
  Sk.addIncompatibility({HA, 0, HB, 1});
  Sk.addIncompatibility({HA, 0, HB, 2});

  SketchEncoder Enc(Sk);
  int LiveCount = 0;
  while (std::optional<std::vector<unsigned>> Assign = Enc.nextAssignment()) {
    ++LiveCount;
    ASSERT_LE(LiveCount, 4);
    Enc.blockAll(*Assign);
  }
  EXPECT_EQ(LiveCount, 4);

  auto Reparsed = parseDimacs(toDimacs(Enc.exportDimacs()));
  ASSERT_TRUE(std::holds_alternative<DimacsProblem>(Reparsed));
  DimacsProblem P = std::get<DimacsProblem>(Reparsed);
  EXPECT_EQ(P.NumVars, 5); // 2 + 3 hole variables, nothing else.
  int DumpCount = 0;
  while (std::optional<std::vector<bool>> M = solveDimacs(P)) {
    ++DumpCount;
    ASSERT_LE(DumpCount, 4);
    std::vector<Lit> Block;
    for (int V = 0; V < P.NumVars; ++V)
      Block.push_back((*M)[V] ? negLit(V) : posLit(V));
    P.Clauses.push_back(std::move(Block));
  }
  EXPECT_EQ(DumpCount, LiveCount);
}
